package mario

import (
	"encoding/json"
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/profile"
	"mario/internal/tuner"
)

// The Plan JSON codec makes optimized plans durable, cacheable artifacts:
// the planning service (internal/serve) stores and serves them, and the
// remote client reconstructs a fully functional *Plan — Run, Drift and
// Visualize all work on a decoded plan, because the profiler is rebuilt from
// its deterministic inputs (model, hardware, machine spec, probe shape).
//
// The encoding is deterministic: the same plan always marshals to the same
// bytes (struct-field order is fixed and encoding/json's float formatting is
// canonical), which is what lets the service promise cache hits that are
// byte-identical to a fresh Optimize.

// planVersion guards the wire format; bump it on incompatible changes.
// Version 2 added the partitioning/placement fields (Candidate.PlaceMode,
// Candidate.Place); their omitempty encoding keeps an axis-free version-2
// body identical to a version-1 body, so version-1 plans decode unchanged.
const planVersion = 2

// minPlanVersion is the oldest wire format UnmarshalJSON still accepts.
const minPlanVersion = 1

// profilerJSON captures the deterministic inputs of a profile.Profiler. The
// probe-fit cache is deliberately absent: it is rebuilt on demand and, with
// the same inputs, refits to identical estimators.
type profilerJSON struct {
	Model   cost.ModelConfig    `json:"model"`
	HW      cost.Hardware       `json:"hw"`
	Spec    profile.MachineSpec `json:"spec"`
	Devices int                 `json:"devices"`
	Iters   int                 `json:"iters"`
}

// planJSON is the wire form of a Plan.
type planJSON struct {
	Version     int               `json:"version"`
	Best        tuner.Candidate   `json:"best"`
	Trace       []tuner.Candidate `json:"trace"`
	SearchStats tuner.SearchStats `json:"search_stats"`
	Profiler    profilerJSON      `json:"profiler"`
	MemLimit    float64           `json:"mem_limit"`
	TP          int               `json:"tp"`
}

// MarshalJSON implements json.Marshaler. The full tuning trace is included
// (schedules and simulation results and all), so a decoded plan supports the
// same post-hoc analysis — Rank, Robustness, drift — as the original.
func (p *Plan) MarshalJSON() ([]byte, error) {
	if p.Profiler == nil {
		return nil, fmt.Errorf("mario: plan has no profiler; only plans built by Optimize are serialisable")
	}
	return json.Marshal(planJSON{
		Version:     planVersion,
		Best:        p.Best,
		Trace:       p.Trace,
		SearchStats: p.SearchStats,
		Profiler: profilerJSON{
			Model:   p.Profiler.Model,
			HW:      p.Profiler.HW,
			Spec:    p.Profiler.Spec,
			Devices: p.Profiler.Devices,
			Iters:   p.Profiler.Iters,
		},
		MemLimit: p.memLimit,
		TP:       p.tp,
	})
}

// UnmarshalJSON implements json.Unmarshaler. Schedules embedded in the plan
// are re-validated by the pipeline codec, so corrupted or hand-edited files
// are rejected; the profiler is reconstructed with an empty probe cache.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("mario: decoding plan: %w", err)
	}
	if in.Version < minPlanVersion || in.Version > planVersion {
		return fmt.Errorf("mario: plan version %d not supported (want %d..%d)", in.Version, minPlanVersion, planVersion)
	}
	if in.Best.Schedule == nil {
		return fmt.Errorf("mario: decoded plan has no schedule")
	}
	p.Best = in.Best
	p.Trace = in.Trace
	p.SearchStats = in.SearchStats
	p.Profiler = &profile.Profiler{
		Model:   in.Profiler.Model,
		HW:      in.Profiler.HW,
		Spec:    in.Profiler.Spec,
		Devices: in.Profiler.Devices,
		Iters:   in.Profiler.Iters,
	}
	p.memLimit = in.MemLimit
	p.tp = in.TP
	return nil
}

// SavePlan writes a plan as JSON — the durable artifact the planning service
// caches and serves. LoadPlan restores it.
func SavePlan(w io.Writer, p *Plan) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadPlan reads a JSON plan written by SavePlan (or returned by the
// planning service) and reconstructs a runnable *Plan.
func LoadPlan(data []byte) (*Plan, error) {
	p := new(Plan)
	if err := json.Unmarshal(data, p); err != nil {
		return nil, err
	}
	return p, nil
}
