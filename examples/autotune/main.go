// Autotune reproduces the cluster experiment of §6.7 at a 16-GPU scale:
// tuning GPT3-13B over pipeline scheme × PP dimension × micro-batch size
// with data parallelism filling the remaining devices (DP = devices/PP),
// and printing the throughput curve along tuning iterations (Fig. 11).
package main

import (
	"fmt"
	"log"
	"strings"

	"mario"
)

func main() {
	conf := mario.Config{
		PipelineScheme:  "Auto",
		GlobalBatchSize: 128,
		NumDevices:      16,
		MemoryPerDevice: "40G",
		MicroBatchSizes: []int{1, 2, 4, 8},
	}
	model := mario.Model("GPT3-13B")

	plan, err := mario.Optimize(conf, model)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}

	fmt.Println("throughput curve along tuning iterations (x-y-z = scheme-PP-mbs):")
	var bestSoFar float64
	for i, c := range plan.Trace {
		marker := ""
		if c.OOM {
			marker = " OOM (zero-throughput penalty)"
		} else if c.Throughput > bestSoFar {
			bestSoFar = c.Throughput
			marker = " <- new best"
		}
		bar := strings.Repeat("#", int(c.Throughput/plan.Best.Throughput*40))
		fmt.Printf("iter %3d %-18s %8.2f |%-40s|%s\n", i, c.Label(), c.Throughput, bar, marker)
	}
	fmt.Printf("\nbest: %s at %.2f samples/s (pp=%d dp=%d mbs=%d ckpt=%v)\n",
		plan.Best.Label(), plan.Best.Throughput,
		plan.Best.PP, plan.Best.DP, plan.Best.MicroBatch, plan.Best.Ckpt)
}
