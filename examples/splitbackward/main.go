// Splitbackward demonstrates the ZB-H1-style extension (the paper's §8
// future work): splitting each backward into its input-gradient and
// weight-gradient halves and sinking the weight halves into bubbles. On the
// Figure-2 pipeline this takes the Mario-optimized 22t schedule down to 19t
// and the plain 1F1B 21t baseline down to 17t, at the cost of holding
// activations longer.
package main

import (
	"fmt"
	"log"

	"mario"
)

func main() {
	const devices, micros = 4, 4
	base, err := mario.BuildSchedule("1F1B", devices, micros)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, s *mario.Schedule) {
		chart, err := mario.Render(s)
		if err != nil {
			log.Fatalf("render %s: %v", name, err)
		}
		fmt.Printf("--- %s ---\n%s\n", name, chart)
	}

	show("1F1B baseline (21t)", base)

	split, err := mario.SplitBackward(base)
	if err != nil {
		log.Fatal(err)
	}
	show("1F1B + ZB-H1 split backward (b = input-grad, w = weight-grad)", split)

	ckpt, err := mario.Checkpoint(base)
	if err != nil {
		log.Fatal(err)
	}
	show("1F1B + Mario checkpointing (22t)", ckpt)

	both, err := mario.SplitBackward(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	show("1F1B + Mario + split backward composed", both)
}
