// Quickstart mirrors the paper's Listing 1: describe the cluster and the
// model, let Mario search Equation 1's space for the best configuration,
// visualise the winning schedule, and execute it on the emulated cluster.
package main

import (
	"fmt"
	"log"
	"os"

	"mario"
)

func main() {
	conf := mario.Config{
		PipelineScheme:  "Auto", // search V (1F1B), X (Chimera) and W (Interleave)
		GlobalBatchSize: 64,
		NumDevices:      8,
		MemoryPerDevice: "40G",
	}
	model := mario.Model("GPT3-1.6B")

	plan, err := mario.Optimize(conf, model)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	best := plan.Best
	fmt.Printf("best configuration: %s (pp=%d, dp=%d, micro-batch=%d, checkpointing=%v)\n",
		best.Label(), best.PP, best.DP, best.MicroBatch, best.Ckpt)
	fmt.Printf("estimated throughput: %.2f samples/s\n", best.Throughput)
	lo, hi := best.Result.MinMaxPeak()
	fmt.Printf("estimated peak memory per device: [%.2f, %.2f] GB\n", lo/(1<<30), hi/(1<<30))

	fmt.Println("\nwinning schedule timeline:")
	if err := mario.Visualize(os.Stdout, plan); err != nil {
		log.Fatalf("visualize: %v", err)
	}

	report, err := mario.Run(plan, 5)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("\nexecuted 5 iterations on the emulated cluster:\n")
	fmt.Printf("  measured throughput: %.2f samples/s\n", report.SamplesPerSec)
	fmt.Printf("  measured peak memory: [%.2f, %.2f] GB\n",
		report.PeakMemMin/(1<<30), report.PeakMemMax/(1<<30))
}
