// Longseq demonstrates §6.5: Mario's freed activation memory accommodates
// longer sequences. For an 8-stage GPT3-1.6B pipeline it sweeps the
// sequence length upward and reports the longest feasible one with and
// without Mario's checkpointing.
package main

import (
	"fmt"
	"log"

	"mario"
)

func main() {
	base := mario.Model("GPT3-1.6B")
	const devices = 8

	for _, withMario := range []bool{false, true} {
		ckpt := withMario
		label := "baseline 1F1B"
		if withMario {
			label = "1F1B + Mario "
		}
		maxSeq := 0
		// Sweep in steps of 256 from the paper's base length of 1024.
		for seq := 1024; seq <= 64*1024; seq += 256 {
			model := base.WithSeqLen(seq)
			plan, err := mario.Optimize(mario.Config{
				PipelineScheme:  "1F1B",
				GlobalBatchSize: 2 * devices,
				NumDevices:      devices,
				MemoryPerDevice: "40G",
				MicroBatchSizes: []int{1},
				MinPP:           devices,
				Checkpoint:      &ckpt,
			}, model)
			if err != nil || plan.Best.Throughput <= 0 {
				break
			}
			maxSeq = seq
		}
		if maxSeq == 0 {
			log.Fatalf("%s: no feasible sequence length", label)
		}
		fmt.Printf("%s: longest feasible sequence length = %d tokens\n", label, maxSeq)
	}
}
