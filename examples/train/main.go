// Train runs the miniature real-tensor training stack under five schedules
// — GPipe, 1F1B, Chimera, and their Mario-optimized checkpointed variants —
// and shows that the per-iteration loss is bit-identical across all of them
// while Mario's peak live activation memory is dramatically lower and
// balanced across devices. This is the semantic counterpart of the paper's
// Megatron-DeepSpeed deployment.
package main

import (
	"fmt"
	"log"

	"mario"
)

func main() {
	const (
		devices = 4
		micros  = 8
	)
	cfg := mario.TrainConfig{
		Devices:        devices,
		BlocksPerStage: 1,
		Dim:            32,
		SeqLen:         16,
		Micros:         micros,
		BatchPerMicro:  2,
		Seed:           42,
		LR:             1e-3,
	}

	build := func(scheme string, checkpoint bool) *mario.Schedule {
		s, err := mario.BuildSchedule(scheme, devices, micros)
		if err != nil {
			log.Fatalf("build %s: %v", scheme, err)
		}
		if checkpoint {
			s, err = mario.Checkpoint(s)
			if err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
		}
		return s
	}

	schedules := []struct {
		name  string
		sched *mario.Schedule
	}{
		{"GPipe", build("GPipe", false)},
		{"1F1B", build("1F1B", false)},
		{"1F1B+Mario", build("1F1B", true)},
		// Chimera runs two weight replicas whose gradients merge at the
		// AllReduce barrier — the losses still match bit for bit.
		{"Chimera", build("X", false)},
		{"Chimera+Mario", build("X", true)},
	}

	fmt.Printf("%-12s %14s   %s\n", "schedule", "loss (iter 0)", "peak live activation KB per device")
	for _, tc := range schedules {
		tr, err := mario.NewTrainer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := tr.RunIteration(tc.sched)
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Printf("%-12s %14.8f  ", tc.name, st.Loss)
		for _, p := range st.PeakActBytes {
			fmt.Printf(" %6.0f", float64(p)/1024)
		}
		fmt.Println()
	}

	fmt.Println("\ntraining 10 iterations under the Mario schedule:")
	tr, err := mario.NewTrainer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sched := build("1F1B", true)
	for it := 0; it < 10; it++ {
		st, err := tr.RunIteration(sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iter %2d  loss %.8f\n", it, st.Loss)
	}

	// Language-model mode: the first stage embeds tokens, the last stage
	// projects to logits, and the loss is next-token cross-entropy — a real
	// (toy) GPT trained through the Mario pipeline.
	fmt.Println("\nlanguage-model mode (next-token cross-entropy, vocab 16):")
	lmCfg := cfg
	lmCfg.Vocab = 16
	lmCfg.LR = 5e-2
	lm, err := mario.NewTrainer(lmCfg)
	if err != nil {
		log.Fatal(err)
	}
	for it := 0; it < 10; it++ {
		st, err := lm.RunIteration(sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iter %2d  CE loss %.6f (per micro, uniform baseline %.4f)\n",
			it, st.Loss/float64(cfg.Micros), 2.7726)
	}
}
