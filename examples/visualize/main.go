// Visualize renders the V / X / W pipeline shapes and their Mario-optimized
// counterparts as ASCII Gantt charts (the paper's Fig. 5), and exports the
// optimized 1F1B timeline as SVG and Chrome-trace JSON for external
// viewers.
package main

import (
	"fmt"
	"log"
	"os"

	"mario"
)

func main() {
	const devices, micros = 4, 8
	for _, scheme := range []string{"V", "X", "W"} {
		s, err := mario.BuildSchedule(scheme, devices, micros)
		if err != nil {
			log.Fatalf("build %s: %v", scheme, err)
		}
		chart, err := mario.Render(s)
		if err != nil {
			log.Fatalf("render %s: %v", scheme, err)
		}
		fmt.Printf("--- %s shape, baseline ---\n%s\n", scheme, chart)

		opt, err := mario.Checkpoint(s)
		if err != nil {
			log.Fatalf("checkpoint %s: %v", scheme, err)
		}
		chart, err = mario.Render(opt)
		if err != nil {
			log.Fatalf("render %s+mario: %v", scheme, err)
		}
		fmt.Printf("--- %s shape, Mario checkpointing tessellated ---\n%s\n", scheme, chart)
	}

	s, err := mario.BuildSchedule("1F1B", devices, micros)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := mario.Checkpoint(s)
	if err != nil {
		log.Fatal(err)
	}
	svg, err := os.Create("mario_1f1b.svg")
	if err != nil {
		log.Fatal(err)
	}
	if err := mario.RenderSVG(svg, opt); err != nil {
		log.Fatal(err)
	}
	if err := svg.Close(); err != nil {
		log.Fatal(err)
	}
	trace, err := os.Create("mario_1f1b_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := mario.RenderChromeTrace(trace, opt); err != nil {
		log.Fatal(err)
	}
	if err := trace.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote mario_1f1b.svg and mario_1f1b_trace.json")
}
