// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), one benchmark per artifact, plus microbenchmarks of the library's
// hot paths. The experiment benches run the reduced "fast" sizes so the
// whole suite completes quickly; run cmd/experiments for the paper-scale
// numbers.
package mario_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"mario"
	"mario/internal/cluster"
	"mario/internal/cost"
	"mario/internal/experiments"
	"mario/internal/graph"
	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/profile"
	"mario/internal/scheme"
	"mario/internal/sim"
	"mario/internal/telemetry"
	"mario/internal/train"
	"mario/internal/tuner"
)

var fast = experiments.Opts{Fast: true}

// BenchmarkTable1MemoryFormulas regenerates Table 1 (peak memory footprint
// across pipeline schemes).
func BenchmarkTable1MemoryFormulas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Steps regenerates Figure 2 (the 21/28/25/23/22 t
// optimization staircase).
func BenchmarkFigure2Steps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps, err := experiments.Figure2(fast)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range steps {
			if s.Time != s.Paper {
				b.Fatalf("%s: %v != paper %v", s.Name, s.Time, s.Paper)
			}
		}
	}
}

// BenchmarkFigure5Visualization regenerates Figure 5 (pipeline charts).
func BenchmarkFigure5Visualization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure5(io.Discard, fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Throughput regenerates Figure 6 (8-GPU throughput grid).
func BenchmarkFigure6Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Performance regenerates Table 5 (32-GPU performance and
// memory table).
func BenchmarkTable5Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7MemoryPerDevice regenerates Figure 7 (per-device peaks).
func BenchmarkFigure7MemoryPerDevice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8ParamScaling regenerates Figure 8 (hidden-size sweep to
// OOM).
func BenchmarkFigure8ParamScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9SeqScaling regenerates Figure 9 (sequence-length sweep).
func BenchmarkFigure9SeqScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10SimAccuracy regenerates Figure 10 (simulator accuracy).
func BenchmarkFigure10SimAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11Tuning regenerates Figure 11 (tuning curve with DP).
func BenchmarkFigure11Tuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(fast); err != nil {
			b.Fatal(err)
		}
	}
}

// --- library microbenchmarks ---

// BenchmarkSimulate1F1B measures the DP simulator on the paper's §5.2
// reference point: GPT3-13B-shaped costs, 64 micro-batches, 32 devices
// (the paper's own simulator takes ~700 ms on this size).
func BenchmarkSimulate1F1B(b *testing.B) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 32, Micros: 64})
	if err != nil {
		b.Fatal(err)
	}
	est, err := cost.Analytic(cost.AnalyticConfig{Model: cost.GPT3_13B, HW: cost.A100_40G, Stages: 32, MicroBatch: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(s, est, sim.Options{NoTimeline: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateChimera measures the simulator on the bidirectional
// scheme at the same reference size.
func BenchmarkSimulateChimera(b *testing.B) {
	s, err := scheme.Build(pipeline.SchemeChimera, scheme.Config{Devices: 32, Micros: 64})
	if err != nil {
		b.Fatal(err)
	}
	est, err := cost.Analytic(cost.AnalyticConfig{Model: cost.GPT3_13B, HW: cost.A100_40G, Stages: 32, MicroBatch: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(s, est, sim.Options{NoTimeline: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphOptimize measures the full four-pass tuner on a 8-device,
// 32-micro 1F1B pipeline.
func BenchmarkGraphOptimize(b *testing.B) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 32})
	if err != nil {
		b.Fatal(err)
	}
	est := cost.Uniform(8, 1, 2, 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.Optimize(s, graph.Options{Estimator: est}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateReuse contrasts a fresh package-level Simulate (rebuilds
// every lookup table per call) against a reused Simulator engine (warm caches,
// O(1) steady-state allocations) on the paper's three scheme shapes at
// Figure-6-like sizes. The "reused" numbers are the graph tuner's actual
// inner-loop cost.
func BenchmarkSimulateReuse(b *testing.B) {
	for _, tc := range []struct {
		name   string
		scheme pipeline.Scheme
		cfg    scheme.Config
		stages int
	}{
		{"V-1f1b-8x32", pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 32}, 8},
		{"X-chimera-8x16", pipeline.SchemeChimera, scheme.Config{Devices: 8, Micros: 16}, 8},
		{"W-interleave-8x32", pipeline.SchemeInterleave, scheme.Config{Devices: 8, Micros: 32, Chunks: 2}, 16},
	} {
		s, err := scheme.Build(tc.scheme, tc.cfg)
		if err != nil {
			b.Fatal(err)
		}
		est := cost.Uniform(tc.stages, 1, 2, 0.25)
		opt := sim.Options{NoTimeline: true}
		b.Run(tc.name+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Simulate(s, est, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/reused", func(b *testing.B) {
			eng := &sim.Simulator{}
			if _, err := eng.Simulate(s, est, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Simulate(s, est, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaSim measures dirty-cone delta re-simulation against a full
// engine re-run on the tuner's inner-loop shape: one local edit per iteration
// against a warm engine. "delta" is the default path (replay only the dirty
// cone, splice the untouched suffix); "full" disables it via Options.NoDelta.
// Bit-exact equivalence of the two paths is pinned by internal/sim/difftest.
func BenchmarkDeltaSim(b *testing.B) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 32})
	if err != nil {
		b.Fatal(err)
	}
	est := cost.Uniform(8, 1, 2, 0.25)
	// Swap the last adjacent compute pair on the last device: a localized
	// late edit whose dirty cone stays small, the shape the graph tuner's
	// prepose candidates produce. (An edit at the head of device 0 dirties
	// nearly the whole pipeline and degenerates into a full replay.)
	edit := s.Clone()
	list := edit.MutableList(len(edit.Lists) - 1)
	swapped := false
	for i := len(list) - 2; i >= 0; i-- {
		if list[i].Kind.IsCompute() && list[i+1].Kind.IsCompute() {
			list[i], list[i+1] = list[i+1], list[i]
			swapped = true
			break
		}
	}
	if !swapped {
		b.Fatal("no adjacent compute pair to swap")
	}
	for _, tc := range []struct {
		name string
		opt  sim.Options
	}{
		{"delta", sim.Options{NoTimeline: true}},
		{"full", sim.Options{NoTimeline: true, NoDelta: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := &sim.Simulator{}
			for _, warm := range []*pipeline.Schedule{s, edit} {
				if _, err := eng.Simulate(warm, est, tc.opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur := s
				if i%2 == 0 {
					cur = edit
				}
				if _, err := eng.Simulate(cur, est, tc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleBuild measures schedule expansion for all schemes.
func BenchmarkScheduleBuild(b *testing.B) {
	for _, sch := range []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave, pipeline.SchemeGPipe} {
		b.Run(string(sch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scheme.Build(sch, scheme.Config{Devices: 16, Micros: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterRun measures the goroutine-per-device emulated execution.
func BenchmarkClusterRun(b *testing.B) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 32})
	if err != nil {
		b.Fatal(err)
	}
	m := &cluster.Machine{Truth: cost.Uniform(8, 1, 2, 0.25), Noise: 0.05, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(s, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterRunObs compares the emulated execution with no sink, with
// a recording sink, and with a JSONL sink. Run with -benchmem: the "nil"
// case is the zero-cost-when-disabled guard — it must allocate no event
// storage on top of BenchmarkClusterRun.
func BenchmarkClusterRunObs(b *testing.B) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 32})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		sink func() obs.Sink
	}{
		{"nil", func() obs.Sink { return nil }},
		{"recorder", func() obs.Sink { return &obs.Recorder{} }},
		{"jsonl", func() obs.Sink { return obs.NewJSONL(io.Discard) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := &cluster.Machine{Truth: cost.Uniform(8, 1, 2, 0.25), Noise: 0.05, Seed: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Sink = mode.sink()
				if _, err := m.Run(s, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDriftReport measures stats + drift derivation from a measured
// event stream (the post-run analysis path, off the hot loop).
func BenchmarkDriftReport(b *testing.B) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 32})
	if err != nil {
		b.Fatal(err)
	}
	est := cost.Uniform(8, 1, 2, 0.25)
	pred, err := sim.Simulate(s, est, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := &obs.Recorder{}
	m := &cluster.Machine{Truth: est, Noise: 0.05, Seed: 1, Sink: rec}
	rep, err := m.Run(s, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := obs.Compute(rec.Events, rep.Total)
		if st.Instrs == 0 {
			b.Fatal("no instructions")
		}
		if r := obs.ComputeDrift(rec.Events, pred, rep.PeakMem); len(r.Kinds) == 0 {
			b.Fatal("empty drift report")
		}
	}
}

// BenchmarkProfile measures the lightweight profiling sweep (10 iterations,
// block-count regression), corresponding to the paper's 142 s profiling of
// LLaMA2-13B on real GPUs.
func BenchmarkProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := &profile.Profiler{Model: cost.LLaMA2_13B, HW: cost.A100_40G, Spec: profile.DefaultMachine, Devices: 4, Iters: 10}
		if _, err := p.EstimatorFor(8, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainIteration measures one real-tensor pipeline training
// iteration under the Mario-optimized schedule.
func BenchmarkTrainIteration(b *testing.B) {
	cfg := train.Config{
		Devices: 4, BlocksPerStage: 1, Dim: 16, SeqLen: 8,
		Micros: 8, BatchPerMicro: 2, Seed: 7, LR: 1e-3,
	}
	tr, err := train.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := mario.BuildSchedule("1F1B", 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := mario.Checkpoint(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RunIteration(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPasses isolates the contribution of each graph-tuner
// pass (and the ZB-H1 split-backward extension) on the Figure-2 pipeline,
// reporting the resulting makespans as custom metrics: the design-choice
// ablation called out in DESIGN.md.
func BenchmarkAblationPasses(b *testing.B) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	if err != nil {
		b.Fatal(err)
	}
	est := cost.Uniform(4, 1, 2, 0.25)
	var tCkpt, tOvlp, tDedup, tFull, tSplit float64
	for i := 0; i < b.N; i++ {
		s1 := s.Clone()
		graph.ApplyCheckpoint(s1)
		r1, err := sim.Simulate(s1, est, sim.Options{NoTimeline: true})
		if err != nil {
			b.Fatal(err)
		}
		s2 := s1.Clone()
		graph.OverlapRecompute(s2)
		r2, err := sim.Simulate(s2, est, sim.Options{NoTimeline: true})
		if err != nil {
			b.Fatal(err)
		}
		s3 := s2.Clone()
		graph.RemoveRedundancy(s3)
		r3, err := sim.Simulate(s3, est, sim.Options{NoTimeline: true})
		if err != nil {
			b.Fatal(err)
		}
		s4, r4, err := graph.Optimize(s, graph.Options{Estimator: est})
		if err != nil {
			b.Fatal(err)
		}
		_, r5, err := graph.SplitBackward(s4, graph.Options{Estimator: est})
		if err != nil {
			b.Fatal(err)
		}
		tCkpt, tOvlp, tDedup, tFull, tSplit = r1.Total, r2.Total, r3.Total, r4.Total, r5.Total
	}
	b.ReportMetric(tCkpt, "t-ckpt")
	b.ReportMetric(tOvlp, "t-overlap")
	b.ReportMetric(tDedup, "t-dedup")
	b.ReportMetric(tFull, "t-prepose")
	b.ReportMetric(tSplit, "t-splitbw")
}

// BenchmarkAblationLinkSemantics compares eager FIFO links against fully
// synchronous rendezvous sends on a fill-drain pipeline (the only schedule
// shape that is deadlock-free under pure rendezvous).
func BenchmarkAblationLinkSemantics(b *testing.B) {
	s, err := scheme.Build(pipeline.SchemeGPipe, scheme.Config{Devices: 8, Micros: 16})
	if err != nil {
		b.Fatal(err)
	}
	est, err := cost.Analytic(cost.AnalyticConfig{Model: cost.GPT3_1_6B, HW: cost.A100_40G, Stages: 8, MicroBatch: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		rdv  bool
	}{{"eager", false}, {"rendezvous", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Simulate(s, est, sim.Options{Rendezvous: mode.rdv, NoTimeline: true})
				if err != nil {
					b.Fatal(err)
				}
				total = r.Total
			}
			b.ReportMetric(total, "makespan-s")
		})
	}
}

// BenchmarkTuning1024GPU reproduces the paper's large-cluster tuning check
// (§6.7: "we have tested the tuning on 1024-GPU scenario and it only takes
// 1060 ms per iteration with 240 configurations"): a 1024-device space with
// PP up to 64 and DP filling the rest, reporting per-candidate latency.
func BenchmarkTuning1024GPU(b *testing.B) {
	tn := &tuner.Tuner{
		Prof: &profile.Profiler{
			Model: cost.GPT3_13B, HW: cost.H100_80G,
			Spec: profile.DefaultMachine, Devices: 4, Iters: 4,
		},
		MaxRounds: 1,
	}
	space := tuner.Space{
		Devices:      1024,
		GlobalBatch:  2048,
		MicroBatches: []int{1, 2, 4},
		MaxPP:        64,
		DeviceMem:    cost.H100_80G.MemBytes,
	}
	var candidates int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, trace, err := tn.Search(space)
		if err != nil {
			b.Fatal(err)
		}
		candidates = len(trace)
	}
	b.ReportMetric(float64(candidates), "configs")
}

// BenchmarkTunerSearch compares sequential and parallel grid search on a
// large space (a 64-device GPT3-13B grid with four schemes and six
// micro-batch sizes, well over 200 evaluated configurations). NoPrune keeps
// the amount of simulation work identical across worker counts, and each
// iteration uses a fresh Tuner so the memoization cache cannot carry results
// between iterations; the profiler is shared since its output is immutable.
// The results are byte-identical across sub-benchmarks — only the wall time
// differs. The pruned variant runs the same grid with the upper-bound prune
// enabled, showing how many simulations it avoids ("explored" vs "bound-pruned").
func BenchmarkTunerSearch(b *testing.B) {
	prof := &profile.Profiler{
		Model: cost.GPT3_13B, HW: cost.A100_40G,
		Spec: profile.DefaultMachine, Devices: 4, Iters: 4,
	}
	space := tuner.Space{
		Devices:      64,
		GlobalBatch:  512,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave, pipeline.SchemeGPipe},
		MicroBatches: []int{1, 2, 4, 8, 16, 32},
		DeviceMem:    cost.A100_40G.MemBytes,
		NoPrune:      true,
	}
	run := func(b *testing.B, space tuner.Space) {
		var explored, pruned int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tn := &tuner.Tuner{Prof: prof, MaxRounds: 1}
			if _, _, err := tn.Search(space); err != nil {
				b.Fatal(err)
			}
			st := tn.StatsSnapshot()
			explored, pruned = st.Explored, st.BoundPruned
		}
		b.ReportMetric(float64(explored), "explored")
		b.ReportMetric(float64(pruned), "bound-pruned")
	}
	par := runtime.GOMAXPROCS(0)
	b.Run("workers=1", func(b *testing.B) {
		s := space
		s.Workers = 1
		run(b, s)
	})
	b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
		s := space
		s.Workers = par
		run(b, s)
	})
	b.Run(fmt.Sprintf("workers=%d/pruned", par), func(b *testing.B) {
		s := space
		s.Workers = par
		s.NoPrune = false
		run(b, s)
	})
}

// BenchmarkTunerSearchBnB contrasts the branch-and-bound search against the
// canonical pruned grid walk on the same 220-configuration GPT3-13B space as
// BenchmarkTunerSearch. Both return the identical argmax (pinned by
// TestBnBExplorationEfficiency); the reported metrics show how much of the
// grid each strategy actually simulates.
func BenchmarkTunerSearchBnB(b *testing.B) {
	prof := &profile.Profiler{
		Model: cost.GPT3_13B, HW: cost.A100_40G,
		Spec: profile.DefaultMachine, Devices: 4, Iters: 4,
	}
	space := tuner.Space{
		Devices:      64,
		GlobalBatch:  512,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave, pipeline.SchemeGPipe},
		MicroBatches: []int{1, 2, 4, 8, 16, 32},
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      runtime.GOMAXPROCS(0),
	}
	run := func(b *testing.B, space tuner.Space) {
		var st tuner.SearchStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tn := &tuner.Tuner{Prof: prof, MaxRounds: 1}
			if _, _, err := tn.Search(space); err != nil {
				b.Fatal(err)
			}
			st = tn.StatsSnapshot()
		}
		b.ReportMetric(float64(st.Explored), "explored")
		b.ReportMetric(float64(st.BoundPruned), "bound-pruned")
		b.ReportMetric(float64(st.MemPruned), "mem-pruned")
	}
	b.Run("bnb", func(b *testing.B) { run(b, space) })
	b.Run("grid", func(b *testing.B) {
		s := space
		s.NoBnB = true
		run(b, s)
	})
}

// BenchmarkOptimizeAPI measures the end-to-end public Optimize call
// (profiling, grid search, graph tuning) at a small scale.
func BenchmarkOptimizeAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mario.Optimize(mario.Config{
			PipelineScheme:  "1F1B",
			GlobalBatchSize: 16,
			NumDevices:      4,
			MemoryPerDevice: "40G",
			MinPP:           4,
			MicroBatchSizes: []int{1, 2},
		}, mario.Model("LLaMA2-3B"))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOff prices the disabled-telemetry fast path: the exact
// span and metrics calls an instrumented grid-point evaluation makes, driven
// through a zero Span and a nil *telemetry.SearchMetrics. This is the
// "near zero-cost when off" contract — it must stay at 0 allocs/op.
func BenchmarkTelemetryOff(b *testing.B) {
	var root telemetry.Span
	var m *telemetry.SearchMetrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := root.Child(telemetry.PhasePoint, "0000 X-4-2(mario)")
		bd := p.Child(telemetry.PhaseBuild, "")
		bd.SetInt("stages", 4)
		bd.End()
		g := p.Child(telemetry.PhaseGraph, "")
		g.Memo("key")
		g.End()
		s := p.Child(telemetry.PhaseSim, "")
		s.SetFloat("throughput", 12.5)
		s.SetBool("improved", true)
		s.End()
		p.End()
		p.AttachTo(root)
		m.AddSims(1)
		m.AddGraphRounds(1)
	}
}

// BenchmarkTelemetryOn is the enabled-path sibling: the same call shape
// against a live Tracer and registry-backed metrics, so the per-span cost of
// actually tracing is visible next to the off path.
func BenchmarkTelemetryOn(b *testing.B) {
	tr := telemetry.New("benchfingerprint").WithMetrics(telemetry.NewSearchMetrics(telemetry.NewRegistry()))
	root := tr.Root(telemetry.PhaseOptimize, "")
	m := tr.Metrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := tr.Detached(telemetry.PhasePoint, "0000 X-4-2(mario)")
		bd := p.Child(telemetry.PhaseBuild, "")
		bd.SetInt("stages", 4)
		bd.End()
		g := p.Child(telemetry.PhaseGraph, "")
		g.Memo("key")
		g.End()
		s := p.Child(telemetry.PhaseSim, "")
		s.SetFloat("throughput", 12.5)
		s.SetBool("improved", true)
		s.End()
		p.End()
		p.Discard() // keep the arena from growing the timed region
		m.AddSims(1)
		m.AddGraphRounds(1)
	}
	b.StopTimer()
	root.End()
}
