# Development entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: all build vet test race bench check fmt fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

# Short fuzz smoke: each target gets FUZZTIME of coverage-guided input
# generation on top of its checked-in seeds.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSchemeBuild -fuzztime $(FUZZTIME) ./internal/scheme
	$(GO) test -run '^$$' -fuzz FuzzGraphPassInvariants -fuzztime $(FUZZTIME) ./internal/graph

check: vet build race fuzz

fmt:
	gofmt -l -w .
