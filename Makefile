# Development entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: all build vet test race bench bench-json bench-gate bench-serve-json check fmt fuzz lint docs-check schemes-smoke serve-smoke fleet-smoke telemetry-smoke hetero-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

# Machine-readable benchmark artifact for the simulator/tuner hot paths; CI
# runs this non-gatingly and uploads BENCH_sim.json. The microbenchmarks get
# BENCHTIME iterations to average out noise; the full grid search is seconds
# per op, so it runs once.
BENCHTIME ?= 100x
BENCH_MICRO = BenchmarkGraphOptimize$$|BenchmarkSimulateReuse|BenchmarkSimulate1F1B|BenchmarkSimulateChimera|BenchmarkDeltaSim|BenchmarkTelemetry
bench-json:
	{ $(GO) test -run '^$$' -bench '$(BENCH_MICRO)' \
		-benchtime $(BENCHTIME) -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkTunerSearch' -benchtime 1x -benchmem . ; } \
		| $(GO) run ./cmd/benchjson > BENCH_sim.json

# Regression gate over the committed artifact: re-runs the hot-path
# microbenchmarks and fails if any ns/op regressed by more than GATEPCT
# percent vs BENCH_sim.json. CI runs this non-gatingly (runner noise); run it
# locally before regenerating the baseline.
GATEPCT ?= 15
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkGraphOptimize$$|BenchmarkSimulateReuse|BenchmarkDeltaSim' \
		-benchtime $(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchjson -gate $(GATEPCT) -baseline BENCH_sim.json \
			-only BenchmarkGraphOptimize,BenchmarkSimulateReuse,BenchmarkDeltaSim

# Service-layer latency artifact: the mariod request path (cache hit, fresh
# run, traced run, /metrics scrape) against an instant run stub, so the
# numbers isolate serve/telemetry overhead from tuner work, plus the loadgen
# bursts (single member and routed 3-member fleet) whose p50/p99/req-s land
# under "extra".
bench-serve-json:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchtime $(BENCHTIME) -benchmem ./internal/serve \
		| $(GO) run ./cmd/benchjson > BENCH_serve.json

# Short fuzz smoke: each target gets FUZZTIME of coverage-guided input
# generation on top of its checked-in seeds.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSchemeBuild -fuzztime $(FUZZTIME) ./internal/scheme
	$(GO) test -run '^$$' -fuzz FuzzGraphPassInvariants -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz FuzzDeltaSimEquivalence -fuzztime $(FUZZTIME) ./internal/sim/difftest
	$(GO) test -run '^$$' -fuzz FuzzBnBArgmaxEquivalence -fuzztime $(FUZZTIME) ./internal/tuner

# Doc-comment lint for the packages whose contracts must live in the source:
# internal/sim (engine identity/caching rules), internal/pipeline (COW
# schedule rules), internal/scheme (the generator registry contract) and the
# planning service's public surface (internal/serve and its client).
# Dependency-free (cmd/exportlint, go/ast).
lint:
	$(GO) run ./cmd/exportlint ./internal/sim ./internal/pipeline ./internal/scheme ./internal/serve ./internal/serve/api ./internal/serve/client ./internal/serve/loadgen ./internal/telemetry ./internal/place

# End-to-end smoke of the mariod planning service: boots the daemon on a
# loopback port, plans a small workload through the Go client (fresh run,
# then a byte-identical cache hit), checks /healthz and /metrics, and walks
# the SIGTERM drain path. Exits non-zero on any failure.
serve-smoke:
	$(GO) run ./cmd/mariod -selfcheck

# Fleet smoke: boots a loopback three-member mesh (every member is
# coordinator + shard worker + router), proves the distributed search
# byte-identical to an in-process Optimize, proves peer-routed cache hits
# from every member, pushes a loadgen burst through (no errors, no 429/503),
# and drains. Exits non-zero on any failure.
fleet-smoke:
	$(GO) run ./cmd/mariod -fleet-selfcheck

# Telemetry smoke: the span-tree determinism tests under the race detector
# (canonical exports byte-identical for Workers ∈ {1,4,GOMAXPROCS}), the
# export golden files, and a traced cmd/mario search writing all three trace
# artifacts to a scratch dir.
telemetry-smoke:
	$(GO) test -race -run 'TestTraceWorkerIndependence|TestSelfTimeTelescopes' ./internal/tuner
	$(GO) test -run 'TestGoldenExports' ./internal/telemetry
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/mario -model LLaMA2-3B -devices 4 -gbs 16 \
		-search-trace "$$tmp/trace.json" -search-spans "$$tmp/spans.jsonl" \
		-search-trace-measured "$$tmp/measured.json" -search-summary >/dev/null && \
	test -s "$$tmp/trace.json" && test -s "$$tmp/spans.jsonl" && test -s "$$tmp/measured.json"

# Heterogeneity smoke: the placement subsystem's acceptance contract (co-opt
# strictly beats the uniform baseline in predicted AND measured throughput on
# the pinned scenario), worker-count independence and bnb-vs-grid equivalence
# over the placement axis under the race detector, and one CLI run through
# -device-speeds/-placement.
hetero-smoke:
	$(GO) test -race -run 'TestHeteroCoOptBeatsUniform|TestHeteroAutoExploresBothModes' .
	$(GO) test -race -run 'TestHeteroDeterministicAcrossWorkers|TestHeteroBnBMatchesGridArgmax|TestAllOnesSpeedsAreLegacy' ./internal/tuner
	$(GO) run ./cmd/mario -model GPT3-13B -devices 8 -gbs 32 -mem 72G -scheme V \
		-device-speeds 3=0.8 -placement coopt -run 1 >/dev/null

# Markdown link + heading-anchor check over the repo docs plus the golden
# snippets in EXPERIMENTS.md and docs/SCHEMES.md (TestGoldenDocs re-runs the
# fast-mode experiments and the scheme-catalogue renderer and byte-compares
# their output against the documented blocks).
docs-check:
	$(GO) run ./cmd/docscheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md docs
	$(GO) test -run TestGoldenDocs ./internal/experiments

# Scheme-family smoke: every registered generator (incl. the split-backward
# ZB-H1 and DualPipe-D) builds and validates on the demo grid, the list
# scheduler is deterministic under the race detector, the zero-bubble
# comparison runs end to end, and the docs/SCHEMES.md diagrams match the
# renderer byte-for-byte.
schemes-smoke:
	$(GO) test -race -run 'TestAllSchemesValidate|TestSplitSchemesValidate|TestSchemeBuildDeterministic' ./internal/scheme
	$(GO) run ./cmd/experiments -fast -run zerobubble >/dev/null
	$(GO) test -run 'TestGoldenDocs|TestZeroBubbleFast' ./internal/experiments

check: vet build race fuzz lint docs-check schemes-smoke hetero-smoke serve-smoke fleet-smoke telemetry-smoke

fmt:
	gofmt -l -w .
