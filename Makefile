# Development entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: all build vet test race bench check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

check: vet build race

fmt:
	gofmt -l -w .
