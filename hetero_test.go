package mario_test

import (
	"testing"

	"mario"
)

// heteroConf is the pinned heterogeneous scenario: GPT3-13B on 8 devices,
// one of which runs at 0.8× nominal speed. The 72G cap rules out pp=4 (its
// checkpointed peak is ~84G per device for any placement), so the search
// settles at pp=8 where the uneven stack gives the co-optimizer real freedom.
func heteroConf(placement string) mario.Config {
	return mario.Config{
		PipelineScheme:  "1F1B",
		GlobalBatchSize: 32,
		NumDevices:      8,
		MemoryPerDevice: "72G",
		MicroBatchSizes: []int{2},
		DeviceSpeeds:    []float64{1, 1, 1, 0.8, 1, 1, 1, 1},
		Placement:       placement,
	}
}

// TestHeteroCoOptBeatsUniform is the subsystem's acceptance contract: on the
// pinned heterogeneous scenario the co-optimized partitioning+placement plan
// strictly beats the uniform-split identity-placement baseline in both the
// predicted (simulator) and the measured (emulated cluster) throughput.
func TestHeteroCoOptBeatsUniform(t *testing.T) {
	model := mario.Model("GPT3-13B")

	uniform, err := mario.Optimize(heteroConf("uniform"), model)
	if err != nil {
		t.Fatal(err)
	}
	coopt, err := mario.Optimize(heteroConf("coopt"), model)
	if err != nil {
		t.Fatal(err)
	}

	// The uniform baseline keeps the even split and identity placement (the
	// rank speeds it carries merely describe the cluster).
	for r, d := range uniform.Best.Place.DeviceOf {
		if d != r {
			t.Fatalf("uniform baseline moved devices: %v", uniform.Best.Place.DeviceOf)
		}
	}
	mn, mx, total := model.Layers, 0, 0
	for _, n := range uniform.Best.Place.LayersPerStage {
		if n < mn {
			mn = n
		}
		if n > mx {
			mx = n
		}
		total += n
	}
	if mx-mn > 1 || total != model.Layers {
		t.Fatalf("uniform baseline split unevenly: %v", uniform.Best.Place.LayersPerStage)
	}
	if coopt.Best.Place == nil || coopt.Best.Place.Key() == uniform.Best.Place.Key() {
		t.Fatalf("co-opt did not move anything: %v", coopt.Best.Place)
	}

	if !(coopt.Best.Throughput > uniform.Best.Throughput) {
		t.Errorf("predicted: co-opt %.4f samples/s does not beat uniform %.4f",
			coopt.Best.Throughput, uniform.Best.Throughput)
	}

	mu, err := mario.Run(uniform, 2)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := mario.Run(coopt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(mc.SamplesPerSec > mu.SamplesPerSec) {
		t.Errorf("measured: co-opt %.4f samples/s does not beat uniform %.4f",
			mc.SamplesPerSec, mu.SamplesPerSec)
	}
	t.Logf("predicted: uniform %.3f vs co-opt %.3f samples/s (%.2f%%)",
		uniform.Best.Throughput, coopt.Best.Throughput,
		100*(coopt.Best.Throughput/uniform.Best.Throughput-1))
	t.Logf("measured:  uniform %.3f vs co-opt %.3f samples/s (%.2f%%)",
		mu.SamplesPerSec, mc.SamplesPerSec,
		100*(mc.SamplesPerSec/mu.SamplesPerSec-1))
}

// TestHeteroAutoExploresBothModes: with the default auto placement the
// search carries both the uniform baseline and the co-optimized assignment
// in its trace, and the winner is at least as good as either forced mode.
func TestHeteroAutoExploresBothModes(t *testing.T) {
	model := mario.Model("GPT3-13B")
	auto, err := mario.Optimize(heteroConf(""), model)
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]bool{}
	for _, c := range auto.Trace {
		modes[string(c.PlaceMode)] = true
	}
	if !modes["uniform"] || !modes["coopt"] {
		t.Errorf("auto trace modes = %v, want both uniform and coopt", modes)
	}
	coopt, err := mario.Optimize(heteroConf("coopt"), model)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Best.Throughput < coopt.Best.Throughput {
		t.Errorf("auto best %.4f worse than forced co-opt %.4f",
			auto.Best.Throughput, coopt.Best.Throughput)
	}
}
