package mario_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mario"
)

// TestParseMemoryErrors pins the error message of every ParseMemory reject
// path, so CLI and server users get a diagnosable failure rather than a
// silent zero.
func TestParseMemoryErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty memory spec"},
		{"whitespace", "   ", "empty memory spec"},
		{"bare unit suffix", "B", "empty memory spec"},
		{"bare multiplier", "G", "invalid memory spec"},
		{"not a number", "abc", "invalid memory spec"},
		{"unknown unit", "4X", "invalid memory spec"},
		{"double suffix", "4GG", "invalid memory spec"},
		{"negative", "-4G", "memory must be positive"},
		{"zero", "0", "memory must be positive"},
		{"zero with unit", "0M", "memory must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := mario.ParseMemory(tc.in)
			if err == nil {
				t.Fatalf("ParseMemory(%q) = %v, want error containing %q", tc.in, v, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseMemory(%q) error = %q, want it to contain %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

// TestParseMemoryTolerantForms covers the lenient spellings the parser
// accepts on purpose (suffix "B", embedded spaces, lower case).
func TestParseMemoryTolerantForms(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"40g", 40 * (1 << 30)},
		{"40 G", 40 * (1 << 30)},
		{" 512mb ", 512 * (1 << 20)},
		{"1.5G", 1.5 * (1 << 30)},
		{"2tb", 2 * (1 << 40)},
	}
	for _, tc := range cases {
		got, err := mario.ParseMemory(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMemory(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
}

// TestParseFaultsErrors pins the reject paths of the inline fault-spec
// grammar (`cmd/mario -faults`).
func TestParseFaultsErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"bare word", "bogus", "neither kind:args nor key=value"},
		{"unknown kind", "melt:dev=1", "unknown clause kind"},
		{"unknown top-level key", "foo=1", "unknown top-level key"},
		{"bad seed", "seed=abc", "seed"},
		{"bad retries", "retries=many", "retries"},
		{"bad backoff", "backoff=soon", "neither seconds nor a duration"},
		{"arg missing value", "slow:dev", "not key=value"},
		{"slow unknown key", "slow:dev=1,speed=2", "unknown slow key"},
		{"slow bad device", "slow:dev=first", "invalid syntax"},
		{"slow bad factor", "slow:dev=1,factor=fast", "invalid syntax"},
		{"slow bad window", "slow:dev=1,from=later", "neither seconds nor a duration"},
		{"link unknown key", "link:from=0,to=1,mtu=9000", "unknown link key"},
		{"link bad drop", "link:from=0,to=1,drop=often", "invalid syntax"},
		{"link bad latency", "link:from=0,to=1,latency=big", "neither seconds nor a duration"},
		{"stall unknown key", "stall:dev=1,until=5", "unknown stall key"},
		{"stall bad at", "stall:dev=1,at=noon", "neither seconds nor a duration"},
		{"stall bad wall", "stall:dev=1,at=0.5,dur=0.1,wall=ages", "time: invalid duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := mario.ParseFaults(tc.in)
			if err == nil {
				t.Fatalf("ParseFaults(%q) = %+v, want error containing %q", tc.in, p, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseFaults(%q) error = %q, want it to contain %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

// TestParseFaultsAccepts covers the grammar's happy paths: wildcards,
// duration spellings, multiple clauses, and the file-loading branch.
func TestParseFaultsAccepts(t *testing.T) {
	p, err := mario.ParseFaults("slow:dev=*,factor=1.5; link:from=0,to=1,latency=250ms,drop=0.05; stall:dev=2,at=0.5,dur=0.2; seed=42; retries=5; backoff=1ms; name=scenario")
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if len(p.Slowdowns) != 1 || p.Slowdowns[0].Device != -1 || p.Slowdowns[0].Factor != 1.5 {
		t.Errorf("slowdowns = %+v", p.Slowdowns)
	}
	if len(p.Links) != 1 || p.Links[0].ExtraLatency != 0.25 || p.Links[0].DropProb != 0.05 {
		t.Errorf("links = %+v", p.Links)
	}
	if len(p.Stalls) != 1 || p.Stalls[0].At != 0.5 {
		t.Errorf("stalls = %+v", p.Stalls)
	}
	if p.Seed != 42 || p.MaxRetries != 5 || p.RetryBackoff != 0.001 || p.Name != "scenario" {
		t.Errorf("top-level fields = %+v", p)
	}

	// The same argument names a JSON file → the loading branch.
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(path, []byte(`{"name":"from-file","seed":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fp, err := mario.ParseFaults(path)
	if err != nil {
		t.Fatalf("ParseFaults(file): %v", err)
	}
	if fp.Name != "from-file" || fp.Seed != 7 {
		t.Errorf("loaded plan = %+v", fp)
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mario.ParseFaults(path); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Errorf("ParseFaults(bad file) error = %v, want a parsing error", err)
	}
}

// TestParseFaultsValidateDevices pins the cmd/mario sequence: a plan whose
// clauses name devices outside the cluster parses fine (the grammar does not
// know the device count) but is rejected by Validate before any run starts,
// with the offending clause and the valid range in the message.
func TestParseFaultsValidateDevices(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"slow device", "slow:dev=7,factor=2", "slowdown 0: device 7 out of range [0,4)"},
		{"link endpoint", "link:from=0,to=9,drop=0.1", "link fault 0: endpoint 0->9 out of range [0,4)"},
		{"stall device", "stall:dev=4,at=0,dur=1", "stall 0: device 4 out of range [0,4)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := mario.ParseFaults(tc.in)
			if err != nil {
				t.Fatalf("ParseFaults(%q): %v", tc.in, err)
			}
			err = p.Validate(4)
			if err == nil {
				t.Fatalf("Validate(4) accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate error = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
	// Wildcards (-1) address every device and pass validation at any count.
	p, err := mario.ParseFaults("slow:dev=*,factor=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(2); err != nil {
		t.Errorf("wildcard slowdown rejected: %v", err)
	}
}
