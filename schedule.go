package mario

import (
	"encoding/json"
	"fmt"
	"io"

	"mario/internal/pipeline"
)

// SaveSchedule writes a schedule as JSON — the durable artifact of Mario's
// ahead-of-time optimization, loadable later by LoadSchedule or an external
// executor.
func SaveSchedule(w io.Writer, s *Schedule) error {
	if s == nil {
		return fmt.Errorf("mario: nil schedule")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// LoadSchedule reads a JSON schedule written by SaveSchedule, re-validating
// all structural invariants.
func LoadSchedule(r io.Reader) (*Schedule, error) {
	var s pipeline.Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
