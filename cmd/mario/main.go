// Command mario is the CLI front end of the pipeline optimizer: it searches
// for the best (scheme, pp, dp, micro-batch, checkpointing) configuration
// for a model and cluster (Equation 1), prints the tuning trace, visualises
// the winning schedule, and optionally executes it on the emulated cluster
// or exports the timeline.
//
// Usage:
//
//	mario -model GPT3-13B -devices 32 -gbs 128 -mem 40G [-scheme Auto]
//	      [-tp 1] [-workers 0] [-no-prune] [-no-bnb] [-no-delta]
//	      [-run 3] [-viz] [-svg out.svg]
//	      [-trace out.json] [-trace-measured out.json] [-events out.jsonl]
//	      [-search-trace out.json] [-search-spans out.jsonl]
//	      [-search-trace-measured out.json] [-search-summary]
//	      [-stats] [-drift] [-faults <spec|file>] [-pprof cpu.out]
//	      [-remote http://host:8347]
//
// The -search-* flags trace the tuner search itself (as opposed to -trace,
// which exports the winning schedule's timeline): -search-trace writes the
// canonical Chrome trace of the search (structural, byte-identical across
// worker counts), -search-spans the canonical span JSONL, and
// -search-trace-measured the wall-clock Chrome trace of this particular
// run. -search-summary prints the per-phase self-time table.
//
// With -remote the search runs on a mariod planning server instead of in
// process: the flags are sent as a plan request, repeated invocations hit
// the server's plan cache, and everything downstream of the plan (-run,
// -viz, -drift, …) still executes locally. -pprof and the -search-* flags
// observe the local tuner only and are rejected together with -remote
// (remotely, ask mariod for ?trace=1 or /debug/flight).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"mario"
	"mario/internal/obs"
	"mario/internal/place"
	"mario/internal/serve"
	"mario/internal/serve/client"
	"mario/internal/telemetry"
	"mario/internal/tuner"
	"mario/internal/viz"
)

func main() {
	var (
		modelName = flag.String("model", "GPT3-1.6B", "model preset (GPT3-1.6B, GPT3-13B, LLaMA2-3B, LLaMA2-13B)")
		devices   = flag.Int("devices", 8, "total number of devices")
		gbs       = flag.Int("gbs", 128, "global batch size")
		mem       = flag.String("mem", "40G", "memory per device")
		schemeStr = flag.String("scheme", "Auto", "pipeline scheme: Auto, V/1F1B, X/Chimera, W/Interleave, GPipe, Z/ZB-H1, D/DualPipe-D")
		tp        = flag.Int("tp", 1, "tensor-parallel degree (held constant)")
		workers   = flag.Int("workers", 0, "concurrent tuner evaluations (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		gWorkers  = flag.Int("graph-workers", 0, "concurrent prepose-candidate simulations inside each graph-tuner call (0/1 = inline; results are identical)")
		noPrune   = flag.Bool("no-prune", false, "disable the tuner's upper-bound prune (simulate every feasible configuration)")
		noBnB     = flag.Bool("no-bnb", false, "use the canonical-order grid walk instead of branch-and-bound search (same best plan, more points simulated)")
		noDelta   = flag.Bool("no-delta", false, "disable delta re-simulation in the graph passes (same plan, full fixpoint per candidate)")
		split     = flag.Bool("split", false, "also try ZB-H1 split-backward on checkpointed candidates")
		runIters  = flag.Int("run", 0, "execute the winning schedule for N iterations on the emulated cluster")
		showViz   = flag.Bool("viz", false, "print the winning schedule's timeline as ASCII")
		svgPath   = flag.String("svg", "", "write the winning timeline as SVG to this path")
		tracePath = flag.String("trace", "", "write the winning timeline as Chrome trace JSON to this path")
		emitPath  = flag.String("emit", "", "write the winning instruction-list schedule as JSON to this path")
		traceAll  = flag.Bool("full-trace", false, "print the full tuning trace")

		measuredPath = flag.String("trace-measured", "", "write the measured run's timeline as Chrome trace JSON to this path")
		eventsPath   = flag.String("events", "", "write the measured run's event stream as JSONL to this path")
		showStats    = flag.Bool("stats", false, "print per-device measured stats and tuner search counters")
		showDrift    = flag.Bool("drift", false, "print the predicted-vs-measured drift report")
		faultsArg    = flag.String("faults", "", "degrade the measured run under a fault plan: inline spec (\"slow:dev=1,factor=1.5; link:from=0,to=1,drop=0.05\") or JSON file path")
		speedsArg    = flag.String("device-speeds", "", "per-device relative compute speeds: full list (\"1,0.8,1,1\") or sparse dev=speed overrides (\"2=0.8\"); heterogeneous speeds open the partitioning/placement search")
		placementArg = flag.String("placement", "", "partitioning/placement search mode: auto (default), uniform, coopt")
		pprofPath    = flag.String("pprof", "", "write a CPU profile of the tuner search to this path")
		remoteAddr   = flag.String("remote", "", "plan on a mariod server at this base URL instead of in process")

		searchTracePath    = flag.String("search-trace", "", "write the canonical Chrome trace of the tuner search to this path (byte-identical across worker counts)")
		searchSpansPath    = flag.String("search-spans", "", "write the canonical span JSONL of the tuner search to this path")
		searchMeasuredPath = flag.String("search-trace-measured", "", "write the wall-clock Chrome trace of the tuner search to this path")
		searchSummary      = flag.Bool("search-summary", false, "print the search's per-phase self-time summary")
	)
	flag.Parse()

	if *remoteAddr != "" && *pprofPath != "" {
		fmt.Fprintln(os.Stderr, "mario: -pprof profiles the in-process search; it cannot be combined with -remote")
		os.Exit(2)
	}
	wantSearchTrace := *searchTracePath != "" || *searchSpansPath != "" || *searchMeasuredPath != "" || *searchSummary
	if *remoteAddr != "" && wantSearchTrace {
		fmt.Fprintln(os.Stderr, "mario: the -search-* flags trace the in-process search; with -remote ask the server for ?trace=1 or /debug/flight")
		os.Exit(2)
	}

	models := mario.Models()
	model, ok := models[*modelName]
	if !ok {
		fmt.Fprintf(os.Stderr, "mario: unknown model %q; available:", *modelName)
		for name := range models {
			fmt.Fprintf(os.Stderr, " %s", name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	deviceSpeeds, err := place.ParseSpeeds(*speedsArg, *devices)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mario: %v\n", err)
		os.Exit(2)
	}
	if _, err := place.ParseMode(*placementArg); err != nil {
		fmt.Fprintf(os.Stderr, "mario: %v\n", err)
		os.Exit(2)
	}

	var faults *mario.FaultPlan
	if *faultsArg != "" {
		var err error
		if faults, err = mario.ParseFaults(*faultsArg); err != nil {
			fmt.Fprintf(os.Stderr, "mario: %v\n", err)
			os.Exit(2)
		}
		// Validate device indices at parse time rather than letting the spec
		// fail deep inside the measured run: the cluster can never have more
		// devices than -devices declares.
		if err := faults.Validate(*devices); err != nil {
			fmt.Fprintf(os.Stderr, "mario: -faults: %v\n", err)
			os.Exit(2)
		}
	}

	wantObs := *measuredPath != "" || *eventsPath != "" || *showStats || *showDrift
	if wantObs && *runIters <= 0 {
		fmt.Fprintln(os.Stderr, "mario: -trace-measured/-events/-stats/-drift need a measured run; assuming -run 1")
		*runIters = 1
	}
	if faults != nil && *runIters <= 0 {
		fmt.Fprintln(os.Stderr, "mario: -faults needs a measured run; assuming -run 1")
		*runIters = 1
	}

	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mario: pprof: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mario: pprof: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var plan *mario.Plan
	if *remoteAddr != "" {
		req := serve.PlanRequest{
			Model:         *modelName,
			Scheme:        *schemeStr,
			GlobalBatch:   *gbs,
			Devices:       *devices,
			Memory:        *mem,
			TP:            *tp,
			SplitBackward: *split,
			NoPrune:       *noPrune,
			NoBnB:         *noBnB,
			NoDelta:       *noDelta,
			Workers:       *workers,
			DeviceSpeeds:  deviceSpeeds,
			Placement:     *placementArg,
		}
		plan, err = remotePlan(*remoteAddr, req, *showStats)
	} else {
		conf := mario.Config{
			PipelineScheme:  *schemeStr,
			GlobalBatchSize: *gbs,
			NumDevices:      *devices,
			MemoryPerDevice: *mem,
			TP:              *tp,
			SplitBackward:   *split,
			Workers:         *workers,
			GraphWorkers:    *gWorkers,
			NoPrune:         *noPrune,
			NoBnB:           *noBnB,
			NoDelta:         *noDelta,
			DeviceSpeeds:    deviceSpeeds,
			Placement:       *placementArg,
		}
		var tracer *telemetry.Tracer
		if wantSearchTrace {
			// Fingerprint the search the same way mariod would, so span IDs
			// agree between local traces and the planning service.
			req := serve.PlanRequest{
				Model:         *modelName,
				Scheme:        *schemeStr,
				GlobalBatch:   *gbs,
				Devices:       *devices,
				Memory:        *mem,
				TP:            *tp,
				SplitBackward: *split,
				NoPrune:       *noPrune,
				NoBnB:         *noBnB,
				DeviceSpeeds:  deviceSpeeds,
				Placement:     *placementArg,
			}
			reqModel, verr := req.Validate()
			if verr != nil {
				fmt.Fprintf(os.Stderr, "mario: %v\n", verr)
				os.Exit(2)
			}
			tracer = telemetry.New(req.Fingerprint(reqModel))
			conf.Tracer = tracer
		}
		if *showStats {
			conf.Progress = func(explored int, bestLabel string, bestThroughput float64) {
				fmt.Fprintf(os.Stderr, "\rtuner: explored %4d  best %-18s %10.2f samples/s", explored, bestLabel, bestThroughput)
			}
		}
		plan, err = mario.Optimize(conf, model)
		if conf.Progress != nil {
			fmt.Fprintln(os.Stderr)
		}
		if err == nil && tracer != nil {
			if terr := writeSearchTraces(tracer.Snapshot(), *searchTracePath, *searchSpansPath, *searchMeasuredPath, *searchSummary); terr != nil {
				fmt.Fprintf(os.Stderr, "mario: %v\n", terr)
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mario: %v\n", err)
		os.Exit(1)
	}

	best := plan.Best
	fmt.Printf("model %s on %d devices (gbs %d, mem %s, tp %d)\n", model.Name, *devices, *gbs, *mem, *tp)
	fmt.Printf("best configuration: %s  pp=%d dp=%d mbs=%d micros=%d ckpt=%v\n",
		best.Label(), best.PP, best.DP, best.MicroBatch, best.Micros, best.Ckpt)
	fmt.Printf("estimated throughput: %.2f samples/s\n", best.Throughput)
	if best.Result != nil {
		lo, hi := best.Result.MinMaxPeak()
		fmt.Printf("estimated peak memory: [%.2f, %.2f] GB\n", lo/(1<<30), hi/(1<<30))
	}
	if *showStats {
		st := plan.SearchStats
		fmt.Printf("tuner search: explored %d, OOM-rejected %d, pruned %d structural + %d by bound + %d by memory, best improved %d times\n",
			st.Explored, st.OOMRejected, st.Pruned, st.BoundPruned, st.MemPruned, st.Improved)
	}

	if *traceAll {
		fmt.Println("\ntuning trace:")
		for i, c := range plan.Trace {
			oom := ""
			if c.OOM {
				oom = " OOM"
			}
			fmt.Printf("  iter %3d %-18s %10.2f%s\n", i, c.Label(), c.Throughput, oom)
		}
		fmt.Println("\nranked:")
		for i, c := range tuner.Rank(plan.Trace) {
			if i >= 10 {
				break
			}
			fmt.Printf("  #%2d %-18s %10.2f\n", i+1, c.Label(), c.Throughput)
		}
	}

	if *showViz {
		fmt.Println()
		if err := mario.Visualize(os.Stdout, plan); err != nil {
			fmt.Fprintf(os.Stderr, "mario: %v\n", err)
			os.Exit(1)
		}
	}
	if *svgPath != "" && best.Result != nil {
		f, err := os.Create(*svgPath)
		if err == nil {
			err = viz.SVG(f, best.Result)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mario: writing SVG: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *tracePath != "" && best.Result != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = viz.ChromeTrace(f, best.Result)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mario: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *tracePath)
	}

	if *emitPath != "" {
		f, err := os.Create(*emitPath)
		if err == nil {
			err = mario.SaveSchedule(f, best.Schedule)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mario: writing schedule: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *emitPath)
	}

	if *runIters > 0 {
		rep, err := mario.RunWithOptions(plan, *runIters, mario.RunOptions{CollectEvents: wantObs, Faults: faults})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mario: run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nexecuted %d iterations on the emulated cluster:\n", *runIters)
		fmt.Printf("  measured iteration time: %.4f s\n", rep.IterTime)
		fmt.Printf("  measured throughput:     %.2f samples/s\n", rep.SamplesPerSec)
		fmt.Printf("  measured peak memory:    [%.2f, %.2f] GB\n", rep.PeakMemMin/(1<<30), rep.PeakMemMax/(1<<30))
		if rep.FaultPlan != "" {
			fmt.Printf("  injected faults (%s):    %d slowed instrs, %d dropped p2p attempts, %.4g s stalled, %d stall-absorbed watchdog firings\n",
				rep.FaultPlan, rep.FaultSlowed, rep.FaultDrops, rep.FaultStall, rep.StallResets)
		}

		if *measuredPath != "" {
			f, err := os.Create(*measuredPath)
			if err == nil {
				err = viz.ChromeTraceMeasured(f, rep.Events)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mario: writing measured trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *measuredPath)
		}
		if *eventsPath != "" {
			f, err := os.Create(*eventsPath)
			if err == nil {
				sink := obs.NewJSONL(f)
				for _, e := range rep.Events {
					sink.Emit(e)
				}
				err = sink.Flush()
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mario: writing events: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *eventsPath)
		}
		if *showStats && rep.Stats != nil {
			fmt.Println("\nmeasured per-device stats:")
			fmt.Print(rep.Stats.Table())
		}
		if *showDrift {
			dr, err := mario.Drift(plan, rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mario: drift: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			fmt.Print(dr.Format())
		}
	}
}

// writeSearchTraces exports the search trace in the requested forms and
// prints the per-phase summary when asked.
func writeSearchTraces(tr *telemetry.Trace, tracePath, spansPath, measuredPath string, summary bool) error {
	writeFile := func(path string, data []byte) error {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("writing search trace: %w", err)
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	if tracePath != "" {
		if err := writeFile(tracePath, tr.ChromeTrace()); err != nil {
			return err
		}
	}
	if spansPath != "" {
		if err := writeFile(spansPath, tr.JSONL()); err != nil {
			return err
		}
	}
	if measuredPath != "" {
		if err := writeFile(measuredPath, tr.ChromeTraceMeasured()); err != nil {
			return err
		}
	}
	if summary {
		fmt.Println("\nsearch phase summary (self time):")
		var total time.Duration
		for _, row := range tr.PhaseSummary() {
			total += row.Self
			fmt.Printf("  %-12s n=%-5d self=%v\n", row.Phase, row.Count, row.Self.Round(time.Microsecond))
		}
		fmt.Printf("  %-12s %8s total=%v\n", "", "", total.Round(time.Microsecond))
	}
	return nil
}

// remotePlan fetches the plan from a mariod server, streaming progress to
// stderr when showStats is set, and reports whether the server answered
// from its cache.
func remotePlan(addr string, req serve.PlanRequest, showStats bool) (*mario.Plan, error) {
	c := client.New(addr)
	ctx := context.Background()
	var resp *serve.PlanResponse
	var err error
	if showStats {
		resp, err = c.PlanStream(ctx, req, func(ev serve.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\rtuner: explored %4d  best %-18s %10.2f samples/s", ev.Explored, ev.Best, ev.BestThroughput)
		})
		fmt.Fprintln(os.Stderr)
	} else {
		resp, err = c.Plan(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	switch {
	case resp.Cached:
		fmt.Fprintf(os.Stderr, "mario: plan served from %s cache (%.12s…)\n", addr, resp.Fingerprint)
	case resp.Shared:
		fmt.Fprintf(os.Stderr, "mario: plan shared with an identical in-flight request on %s\n", addr)
	}
	return client.Decode(resp)
}
