// Command mariod runs the mario planning service: an HTTP/JSON daemon that
// answers Optimize requests from a fingerprint-keyed plan cache, collapses
// concurrent identical requests onto one tuner run, streams tuner progress
// as NDJSON, traces every tuner run into a flight recorder, and drains
// gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	mariod [-addr :8347] [-cache 64] [-workers 2] [-queue 16]
//	       [-timeout 5m] [-max-timeout 15m] [-tuner-workers 0]
//	       [-drain-timeout 30s] [-debug-addr ""] [-flight-ring 64]
//	       [-fleet url1,url2] [-self url] [-shards 0] [-shard-chunk 0]
//	       [-selfcheck] [-fleet-selfcheck]
//
// Endpoints: POST /v1/plan (?trace=1 embeds the search trace),
// POST /v1/plan/stream, POST /v1/shard (fleet shard batches),
// GET /v1/models, GET /healthz, GET /metrics, GET /debug/flight.
//
// -fleet lists the other members of a planning fleet: branch-and-bound
// searches dispatch shard batches to them over /v1/shard, and with -self
// set (this member's URL as peers see it) blocking plan requests are
// routed to each workload's consistent-hash owner so the fleet computes
// every plan once. The merged plan is byte-identical to a single-node run
// for any fleet size. See DESIGN.md §11 and docs/TUNING.md for the knobs.
//
// -debug-addr starts a second listener with the net/http/pprof profiling
// endpoints plus /debug/flight and /metrics — keep it loopback-only in
// production. SIGQUIT dumps the flight recorder (recent request traces and
// the slow log) to stderr without stopping the daemon.
//
// -selfcheck starts the server on a loopback port, exercises it end to end
// with the Go client (concurrent streamed fan-out, traced fresh run, cache
// hit, byte identity, flight recorder, metrics, debug listener), then
// delivers itself a SIGTERM to walk the real shutdown path, and exits 0 on
// success — the build's smoke test.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"mario/internal/serve"
	"mario/internal/serve/client"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		cacheSize    = flag.Int("cache", 64, "plan-cache capacity (plans)")
		workers      = flag.Int("workers", 2, "concurrent plan computations")
		queue        = flag.Int("queue", 16, "admission queue depth beyond running flights")
		timeout      = flag.Duration("timeout", 5*time.Minute, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 15*time.Minute, "ceiling for request-supplied deadlines")
		tunerWorkers = flag.Int("tuner-workers", 0, "cap on per-run tuner parallelism (0 = uncapped)")
		noDelta      = flag.Bool("no-delta", false, "force full-fixpoint re-simulation on every run (plans are identical; escape hatch)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight plans")
		debugAddr    = flag.String("debug-addr", "", "optional second listener with pprof + /debug/flight + /metrics (keep loopback-only)")
		flightRing   = flag.Int("flight-ring", 64, "recent request traces the flight recorder keeps")
		flightSlow   = flag.Int("flight-slow", 8, "slowest-requests log size")
		maxBody      = flag.Int64("max-body", 0, "request-body byte limit, 413 beyond it (0 = 1 MiB default)")
		fleetList    = flag.String("fleet", "", "comma-separated base URLs of the other fleet members")
		self         = flag.String("self", "", "this member's base URL as peers reach it (enables plan routing)")
		shards       = flag.Int("shards", 0, "shards per search wave (0 = one per fleet peer)")
		shardChunk   = flag.Int("shard-chunk", 0, "grid points per shard batch (0 = tuner default)")
		fleetRetries = flag.Int("fleet-retries", 2, "retries for fleet-internal requests (shard dispatch, routing)")
		fleetBackoff = flag.Duration("fleet-backoff", 50*time.Millisecond, "base backoff between fleet-internal retries")
		noShare      = flag.Bool("no-share-incumbent", false, "do not ship the global incumbent with shard batches (workers skip less; plans identical)")
		workerCache  = flag.Int("worker-cache", 0, "shard-worker cache size, workloads memoized for /v1/shard (0 = default)")
		selfcheck    = flag.Bool("selfcheck", false, "start on loopback, exercise the service end to end, then shut down")
		fleetCheck   = flag.Bool("fleet-selfcheck", false, "boot a loopback 3-member fleet, prove byte-identity + peer caching + a loadgen burst, then drain")
	)
	flag.Parse()

	var fleet []string
	for _, u := range strings.Split(*fleetList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			fleet = append(fleet, u)
		}
	}
	opts := serve.Options{
		CacheSize:        *cacheSize,
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		TunerWorkers:     *tunerWorkers,
		NoDelta:          *noDelta,
		FlightRing:       *flightRing,
		FlightSlow:       *flightSlow,
		MaxBodyBytes:     *maxBody,
		Fleet:            fleet,
		Self:             *self,
		Shards:           *shards,
		ShardChunk:       *shardChunk,
		FleetRetries:     *fleetRetries,
		FleetBackoff:     *fleetBackoff,
		NoShareIncumbent: *noShare,
		WorkerCache:      *workerCache,
	}

	if *selfcheck {
		os.Exit(runSelfcheck(opts, *drainTimeout))
	}
	if *fleetCheck {
		// The selfcheck boots its own loopback mesh; a configured fleet
		// would fight it.
		opts.Fleet, opts.Self = nil, ""
		os.Exit(runFleetSelfcheck(opts, *drainTimeout))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mariod: %v\n", err)
		os.Exit(1)
	}
	s := serve.New(opts)
	if *debugAddr != "" {
		if _, err := startDebugServer(s, *debugAddr); err != nil {
			fmt.Fprintf(os.Stderr, "mariod: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "mariod: listening on %s\n", ln.Addr())
	if err := serveUntilSignal(ln, s, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "mariod: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mariod: drained, bye")
}

// startDebugServer listens on debugAddr and serves the profiling and
// introspection endpoints: /debug/pprof/*, /debug/flight and /metrics.
// These are deliberately off the main listener so operators can firewall
// them separately.
func startDebugServer(s *serve.Server, debugAddr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", debugAddr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(s.FlightRecorder().Dump())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.Registry().WriteProm(w)
	})
	go http.Serve(ln, mux)
	fmt.Fprintf(os.Stderr, "mariod: debug endpoints on %s\n", ln.Addr())
	return ln.Addr(), nil
}

// serveUntilSignal serves HTTP on ln until SIGINT/SIGTERM, then drains the
// planning service (in-flight and queued plans finish) and shuts the HTTP
// server down. SIGQUIT dumps the flight recorder to stderr without
// stopping the daemon. Returns nil on a clean drain.
func serveUntilSignal(ln net.Listener, s *serve.Server, drainTimeout time.Duration) error {
	httpSrv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT is the black-box dump: print the flight recorder and keep
	// serving (the Go runtime's default stack dump is suppressed while the
	// handler is registered).
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "mariod: SIGQUIT — flight recorder dump:")
			os.Stderr.Write(s.FlightRecorder().Dump())
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	fmt.Fprintln(os.Stderr, "mariod: draining…")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		s.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// runSelfcheck is the -selfcheck body; returns the process exit code.
func runSelfcheck(opts serve.Options, drainTimeout time.Duration) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "mariod selfcheck: FAIL: "+format+"\n", args...)
		return 1
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen: %v", err)
	}
	s := serve.New(opts)
	debugAddr, err := startDebugServer(s, "127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(ln, s, drainTimeout) }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New("http://" + ln.Addr().String())
	c.Trace = true
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return fail("%v", err)
	}

	req := serve.PlanRequest{
		Model:        "LLaMA2-3B",
		Devices:      4,
		GlobalBatch:  16,
		Memory:       "40G",
		MicroBatches: []int{1, 2},
	}

	// Fresh run, requested twice concurrently over the streaming endpoint:
	// the singleflight layer must collapse the pair onto one tuner run and
	// the NDJSON fan-out must deliver both subscribers a coherent story —
	// progress records then byte-identical terminal plans.
	type streamOut struct {
		resp   *serve.PlanResponse
		events int
		err    error
	}
	outs := make([]streamOut, 2)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i].resp, outs[i].err = c.PlanStream(ctx, req, func(serve.ProgressEvent) { outs[i].events++ })
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			return fail("streamed plan %d: %v", i, o.err)
		}
	}
	if outs[0].events+outs[1].events == 0 {
		return fail("neither concurrent stream reported progress events")
	}
	if !bytes.Equal(outs[0].resp.Plan, outs[1].resp.Plan) {
		return fail("concurrent streams returned different plan bytes")
	}
	if outs[0].resp.Fingerprint != outs[1].resp.Fingerprint {
		return fail("concurrent streams disagree on the fingerprint")
	}
	fresh := outs[0]
	if fresh.resp.Cached {
		fresh = outs[1]
	}
	if fresh.resp.Cached {
		return fail("both concurrent requests answered from cache")
	}
	if len(fresh.resp.Trace) == 0 {
		return fail("traced request returned no search trace")
	}
	if !bytes.Contains(fresh.resp.Trace, []byte(`"phase":"optimize"`)) ||
		!bytes.Contains(fresh.resp.Trace, []byte(`"phase":"point"`)) {
		return fail("search trace misses optimize/point spans: %.200s", fresh.resp.Trace)
	}

	// Same request again: must be a cache hit with byte-identical plan and
	// no trace (the run's trace lives in the flight recorder).
	hit, err := c.Plan(ctx, req)
	if err != nil {
		return fail("cached plan: %v", err)
	}
	if !hit.Cached {
		return fail("third request missed the cache")
	}
	if hit.Fingerprint != fresh.resp.Fingerprint {
		return fail("fingerprints differ: %s vs %s", fresh.resp.Fingerprint, hit.Fingerprint)
	}
	if !bytes.Equal(fresh.resp.Plan, hit.Plan) {
		return fail("cache hit not byte-identical to fresh plan")
	}
	if len(hit.Trace) != 0 {
		return fail("cache hit carried a trace")
	}
	plan, err := client.Decode(hit)
	if err != nil {
		return fail("decoding plan: %v", err)
	}
	fmt.Fprintf(os.Stderr, "mariod selfcheck: plan %s at %.2f samples/s (%d progress events across 2 streams)\n",
		plan.Best.Label(), plan.Best.Throughput, outs[0].events+outs[1].events)

	h, err := c.Health(ctx)
	if err != nil {
		return fail("healthz: %v", err)
	}
	if !h.OK || h.CachedPlans != 1 {
		return fail("unexpected health %+v", h)
	}

	// The flight recorder holds the one tuner run with its phase summary.
	flight, err := c.Flight(ctx)
	if err != nil {
		return fail("flight: %v", err)
	}
	for _, want := range []string{
		"1 recent request(s)", "outcome=completed", "optimize", "point", "sim",
		hit.Fingerprint[:12],
	} {
		if !strings.Contains(flight, want) {
			return fail("flight dump missing %q in:\n%s", want, flight)
		}
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		return fail("metrics: %v", err)
	}
	// The second concurrent stream either shared the first one's flight
	// (singleflight collapse) or — small tuner runs finish in milliseconds
	// with the delta engine and branch-and-bound — arrived after completion
	// and was answered from the cache. Both are correct, so the expected hit
	// count derives from the observed responses: the explicit repeat request
	// plus any concurrent stream that reported cached.
	hits := 1
	for _, o := range outs {
		if o.resp.Cached {
			hits++
		}
	}
	for _, want := range []string{
		"mario_serve_tuner_runs_total 1",
		fmt.Sprintf("mario_serve_cache_hits_total %d", hits),
		"mario_serve_completed_total 3",
		"mario_search_runs_total 1",
		"mario_search_points_total{outcome=",
		"mario_search_sims_total",
		"mario_serve_request_seconds_count 3",
	} {
		if !strings.Contains(metrics, want) {
			return fail("metrics missing %q", want)
		}
	}

	// The debug listener answers pprof, the flight dump and metrics.
	for _, path := range []string{"/debug/pprof/cmdline", "/debug/flight", "/metrics"} {
		body, err := httpGet(ctx, "http://"+debugAddr.String()+path)
		if err != nil {
			return fail("debug %s: %v", path, err)
		}
		if len(body) == 0 {
			return fail("debug %s: empty body", path)
		}
	}

	// Walk the real shutdown path: deliver ourselves the signal systemd
	// (or ^C) would send and require a clean drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fail("sigterm: %v", err)
	}
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail("shutdown: %v", err)
		}
	case <-time.After(drainTimeout + 10*time.Second):
		return fail("server did not drain within %v", drainTimeout)
	}
	fmt.Fprintln(os.Stderr, "mariod selfcheck: OK")
	return 0
}

// httpGet fetches one URL and returns the body of a 200 response.
func httpGet(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
