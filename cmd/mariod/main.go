// Command mariod runs the mario planning service: an HTTP/JSON daemon that
// answers Optimize requests from a fingerprint-keyed plan cache, collapses
// concurrent identical requests onto one tuner run, streams tuner progress
// as NDJSON, and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	mariod [-addr :8347] [-cache 64] [-workers 2] [-queue 16]
//	       [-timeout 5m] [-max-timeout 15m] [-tuner-workers 0]
//	       [-drain-timeout 30s] [-selfcheck]
//
// Endpoints: POST /v1/plan, POST /v1/plan/stream, GET /v1/models,
// GET /healthz, GET /metrics.
//
// -selfcheck starts the server on a loopback port, exercises it end to end
// with the Go client (fresh run, cache hit, byte identity, metrics), then
// delivers itself a SIGTERM to walk the real shutdown path, and exits 0 on
// success — the build's smoke test.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mario/internal/serve"
	"mario/internal/serve/client"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		cacheSize    = flag.Int("cache", 64, "plan-cache capacity (plans)")
		workers      = flag.Int("workers", 2, "concurrent plan computations")
		queue        = flag.Int("queue", 16, "admission queue depth beyond running flights")
		timeout      = flag.Duration("timeout", 5*time.Minute, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 15*time.Minute, "ceiling for request-supplied deadlines")
		tunerWorkers = flag.Int("tuner-workers", 0, "cap on per-run tuner parallelism (0 = uncapped)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight plans")
		selfcheck    = flag.Bool("selfcheck", false, "start on loopback, exercise the service end to end, then shut down")
	)
	flag.Parse()

	opts := serve.Options{
		CacheSize:      *cacheSize,
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		TunerWorkers:   *tunerWorkers,
	}

	if *selfcheck {
		os.Exit(runSelfcheck(opts, *drainTimeout))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mariod: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mariod: listening on %s\n", ln.Addr())
	if err := serveUntilSignal(ln, serve.New(opts), *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "mariod: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mariod: drained, bye")
}

// serveUntilSignal serves HTTP on ln until SIGINT/SIGTERM, then drains the
// planning service (in-flight and queued plans finish) and shuts the HTTP
// server down. Returns nil on a clean drain.
func serveUntilSignal(ln net.Listener, s *serve.Server, drainTimeout time.Duration) error {
	httpSrv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	fmt.Fprintln(os.Stderr, "mariod: draining…")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		s.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// runSelfcheck is the -selfcheck body; returns the process exit code.
func runSelfcheck(opts serve.Options, drainTimeout time.Duration) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "mariod selfcheck: FAIL: "+format+"\n", args...)
		return 1
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(ln, serve.New(opts), drainTimeout) }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New("http://" + ln.Addr().String())
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return fail("%v", err)
	}

	req := serve.PlanRequest{
		Model:        "LLaMA2-3B",
		Devices:      4,
		GlobalBatch:  16,
		Memory:       "40G",
		MicroBatches: []int{1, 2},
	}

	// Fresh run over the streaming endpoint: progress then a plan.
	events := 0
	fresh, err := c.PlanStream(ctx, req, func(serve.ProgressEvent) { events++ })
	if err != nil {
		return fail("streamed plan: %v", err)
	}
	if fresh.Cached {
		return fail("first request answered from cache")
	}
	if events == 0 {
		return fail("streamed plan reported no progress events")
	}

	// Same request again: must be a cache hit with byte-identical plan.
	hit, err := c.Plan(ctx, req)
	if err != nil {
		return fail("cached plan: %v", err)
	}
	if !hit.Cached {
		return fail("second request missed the cache")
	}
	if hit.Fingerprint != fresh.Fingerprint {
		return fail("fingerprints differ: %s vs %s", fresh.Fingerprint, hit.Fingerprint)
	}
	if !bytes.Equal(fresh.Plan, hit.Plan) {
		return fail("cache hit not byte-identical to fresh plan")
	}
	plan, err := client.Decode(hit)
	if err != nil {
		return fail("decoding plan: %v", err)
	}
	fmt.Fprintf(os.Stderr, "mariod selfcheck: plan %s at %.2f samples/s (%d progress events)\n",
		plan.Best.Label(), plan.Best.Throughput, events)

	h, err := c.Health(ctx)
	if err != nil {
		return fail("healthz: %v", err)
	}
	if !h.OK || h.CachedPlans != 1 {
		return fail("unexpected health %+v", h)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		return fail("metrics: %v", err)
	}
	for _, want := range []string{
		"mario_serve_tuner_runs_total 1",
		"mario_serve_cache_hits_total 1",
		"mario_serve_cache_misses_total 1",
		"mario_serve_completed_total 2",
	} {
		if !strings.Contains(metrics, want) {
			return fail("metrics missing %q", want)
		}
	}

	// Walk the real shutdown path: deliver ourselves the signal systemd
	// (or ^C) would send and require a clean drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fail("sigterm: %v", err)
	}
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail("shutdown: %v", err)
		}
	case <-time.After(drainTimeout + 10*time.Second):
		return fail("server did not drain within %v", drainTimeout)
	}
	fmt.Fprintln(os.Stderr, "mariod selfcheck: OK")
	return 0
}
