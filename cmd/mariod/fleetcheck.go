package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mario"
	"mario/internal/serve"
	"mario/internal/serve/client"
	"mario/internal/serve/loadgen"
)

// fleetMember is one loopback fleet member booted by the fleet selfcheck:
// a full server (coordinator + shard worker + router) on an ephemeral port.
type fleetMember struct {
	url  string
	s    *serve.Server
	hs   *http.Server
	done chan error
}

// bootFleet starts n full-mesh fleet members on loopback: each knows its
// own URL (Self) and the others (Fleet), so consistent-hash routing and
// shard dispatch are live between all of them.
func bootFleet(n int, base serve.Options) ([]*fleetMember, error) {
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	members := make([]*fleetMember, n)
	for i, l := range listeners {
		opts := base
		opts.Self = urls[i]
		for j, u := range urls {
			if j != i {
				opts.Fleet = append(opts.Fleet, u)
			}
		}
		s := serve.New(opts)
		m := &fleetMember{url: urls[i], s: s, hs: &http.Server{Handler: s.Handler()}, done: make(chan error, 1)}
		go func(l net.Listener) { m.done <- m.hs.Serve(l) }(l)
		members[i] = m
	}
	return members, nil
}

// drainFleet walks every member through the real shutdown path: drain the
// planning service, then stop the HTTP listener.
func drainFleet(members []*fleetMember, budget time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	for _, m := range members {
		if err := m.s.Drain(ctx); err != nil {
			return fmt.Errorf("draining %s: %w", m.url, err)
		}
		if err := m.hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("stopping %s: %w", m.url, err)
		}
	}
	return nil
}

// fleetMetric extracts one series' value from a member's /metrics text.
func fleetMetric(metrics, series string) (float64, bool) {
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return v, err == nil
		}
	}
	return 0, false
}

// runFleetSelfcheck is the -fleet-selfcheck body: boot a loopback fleet of
// three full-mesh members, prove the distributed search byte-identical to a
// single-process mario.Optimize, prove peer routing answers repeats from
// the owner's cache, push a loadgen burst through the fleet, and drain.
// Returns the process exit code.
func runFleetSelfcheck(opts serve.Options, drainTimeout time.Duration) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "mariod fleet-selfcheck: FAIL: "+format+"\n", args...)
		return 1
	}
	const members = 3 // one request entrypoint + two peers; every member plays all roles

	fleet, err := bootFleet(members, opts)
	if err != nil {
		return fail("boot: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	clients := make([]*client.Client, members)
	urls := make([]string, members)
	for i, m := range fleet {
		clients[i] = client.New(m.url)
		urls[i] = m.url
		if err := clients[i].WaitReady(ctx, 10*time.Second); err != nil {
			return fail("member %d not ready: %v", i, err)
		}
	}
	fmt.Fprintf(os.Stderr, "mariod fleet-selfcheck: %d members up: %s\n", members, strings.Join(urls, " "))

	req := serve.PlanRequest{
		Model:        "LLaMA2-3B",
		Devices:      4,
		GlobalBatch:  16,
		Memory:       "40G",
		MicroBatches: []int{1, 2},
	}

	// The reference: the same workload computed in-process, no fleet.
	model, err := req.Validate()
	if err != nil {
		return fail("workload: %v", err)
	}
	direct, err := mario.Optimize(req.Config(0), model)
	if err != nil {
		return fail("direct optimize: %v", err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		return fail("encoding direct plan: %v", err)
	}

	// Fresh run through member 0. Routing may forward it to the workload's
	// owner; either way the distributed search must reproduce the direct
	// plan byte for byte.
	fresh, err := clients[0].Plan(ctx, req)
	if err != nil {
		return fail("fresh plan: %v", err)
	}
	if fresh.Cached {
		return fail("fresh request answered from cache")
	}
	if !bytes.Equal(fresh.Plan, want) {
		return fail("fleet plan differs from single-process Optimize (%d vs %d bytes)", len(fresh.Plan), len(want))
	}
	owner := fresh.Peer // "" means member 0 owned it
	if owner == "" {
		owner = fleet[0].url
	}

	// Repeat the workload via every member: byte-identical everywhere, and
	// every non-owner answer must be a routed peer cache hit — the fleet
	// computes each plan once.
	peerHits := 0
	for i, cl := range clients {
		resp, err := cl.Plan(ctx, req)
		if err != nil {
			return fail("repeat via member %d: %v", i, err)
		}
		if !bytes.Equal(resp.Plan, want) {
			return fail("member %d served different plan bytes", i)
		}
		if !resp.Cached {
			return fail("repeat via member %d missed every cache", i)
		}
		if fleet[i].url != owner {
			if resp.Peer != owner {
				return fail("member %d answered the owner's workload itself (peer=%q, owner=%s)", i, resp.Peer, owner)
			}
			peerHits++
		}
	}
	if peerHits != members-1 {
		return fail("peer cache hits = %d, want %d", peerHits, members-1)
	}

	// The owner's search must have actually used the fleet: shard batches
	// dispatched to peers, fleet waves recorded, and some peer served them.
	ownerMetrics := ""
	for i, m := range fleet {
		if m.url == owner {
			ownerMetrics, err = clients[i].Metrics(ctx)
			if err != nil {
				return fail("owner metrics: %v", err)
			}
		}
	}
	for _, series := range []string{
		`mario_serve_shard_dispatch_total{result="ok"}`,
		"mario_search_fleet_waves_total",
	} {
		if v, ok := fleetMetric(ownerMetrics, series); !ok || v == 0 {
			return fail("owner series %s = %v (present=%v), want > 0", series, v, ok)
		}
	}
	served := 0
	for i, m := range fleet {
		if m.url == owner {
			continue
		}
		mtx, err := clients[i].Metrics(ctx)
		if err != nil {
			return fail("member %d metrics: %v", i, err)
		}
		if v, _ := fleetMetric(mtx, "mario_serve_shard_requests_total"); v > 0 {
			served++
		}
	}
	if served == 0 {
		return fail("no peer served a shard batch")
	}
	fmt.Fprintf(os.Stderr, "mariod fleet-selfcheck: fleet plan byte-identical, %d peer cache hits, shards served by %d peers\n", peerHits, served)

	// Loadgen burst across all members: a mixed-fingerprint load must come
	// back clean — no errors, no pushback at this depth — and mostly cached.
	burst, err := loadgen.Run(ctx, loadgen.Options{
		Targets:     urls,
		Workloads:   loadgen.MixedWorkloads(req, 3),
		Requests:    240,
		Concurrency: 24,
	})
	if err != nil {
		return fail("loadgen: %v", err)
	}
	os.Stderr.WriteString("mariod fleet-selfcheck: burst:\n" + burst.Summary())
	if burst.Errors > 0 || burst.Rej429 > 0 || burst.Rej503 > 0 {
		return fail("burst degraded: %+v", burst)
	}
	if burst.Cached == 0 || burst.Peer == 0 {
		return fail("burst saw no cache or peer hits: %+v", burst)
	}

	if err := drainFleet(fleet, drainTimeout); err != nil {
		return fail("%v", err)
	}
	fmt.Fprintln(os.Stderr, "mariod fleet-selfcheck: OK")
	return 0
}
