// Command exportlint enforces doc comments on exported identifiers — a
// dependency-free stand-in for `revive`'s exported rule, scoped to the
// packages whose invariants must live in the source rather than in commit
// messages (internal/sim's engine contract, internal/pipeline's copy-on-write
// rules).
//
// Usage:
//
//	exportlint ./internal/sim ./internal/pipeline
//
// For every exported top-level declaration (func, type, const, var, method
// with an exported receiver) in the named package directories, a leading doc
// comment is required and must start with the identifier's name (the standard
// Go doc convention). Test files are skipped. Violations are printed as
// file:line: messages and the exit status is 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: exportlint <package-dir> [package-dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		dir = strings.TrimPrefix(dir, "./")
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exportlint: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "exportlint: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and reports undocumented
// exported declarations.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	for _, pkg := range pkgs {
		// Deterministic file order for stable output.
		var files []string
		for name := range pkg.Files {
			files = append(files, name)
		}
		sortStrings(files)
		for _, name := range files {
			bad += lintFile(fset, pkg.Files[name])
		}
	}
	return bad, nil
}

// lintFile walks one file's top-level declarations.
func lintFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: exported %s %s has no doc comment starting with %q\n",
			fset.Position(pos), what, name, name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || unexportedReceiver(d) {
				continue
			}
			if !docOK(d.Doc, d.Name.Name) {
				report(d.Pos(), "function", d.Name.Name)
				bad++
			}
		case *ast.GenDecl:
			bad += lintGenDecl(report, d)
		}
	}
	return bad
}

// lintGenDecl handles type/const/var blocks. A doc comment on the grouped
// declaration covers its specs (the convention for const/var blocks); a type
// spec inside a group still needs its own comment unless the group documents
// it.
func lintGenDecl(report func(token.Pos, string, string), d *ast.GenDecl) int {
	bad := 0
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if docOK(s.Doc, s.Name.Name) || docOK(d.Doc, s.Name.Name) {
				continue
			}
			report(s.Pos(), "type", s.Name.Name)
			bad++
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if !n.IsExported() {
					continue
				}
				// A const/var group's doc comment documents all members;
				// per-spec comments also count, with any leading word.
				if s.Doc.Text() != "" || s.Comment.Text() != "" || d.Doc.Text() != "" {
					continue
				}
				report(n.Pos(), d.Tok.String(), n.Name)
				bad++
			}
		}
	}
	return bad
}

// unexportedReceiver reports whether a method hangs off an unexported type —
// such methods are not part of the package's exported API surface.
func unexportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return !x.IsExported()
		default:
			return false
		}
	}
}

// docOK reports whether the comment exists and begins with the identifier
// name (allowing the "A Foo ..."/"The Foo ..." article forms gofmt accepts).
func docOK(doc *ast.CommentGroup, name string) bool {
	text := strings.TrimSpace(doc.Text())
	if text == "" {
		return false
	}
	for _, prefix := range []string{"", "A ", "An ", "The ", "Deprecated: "} {
		if strings.HasPrefix(text, prefix+name) {
			return true
		}
	}
	return false
}

// sortStrings is an allocation-free insertion sort (avoids importing sort for
// one call site — keeps the tool trivially auditable).
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
