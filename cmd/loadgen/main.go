// Command loadgen drives synthetic plan-request load against a mariod
// planning fleet and prints latency quantiles (p50/p90/p99), cache and
// peer-routing hit rates, and 429/503 admission pushback.
//
// Point it at running daemons:
//
//	loadgen -targets http://10.0.0.1:8347,http://10.0.0.2:8347 -n 5000 -c 128
//
// or let it boot a loopback fleet in-process (coordinator + routed members,
// useful for a self-contained benchmark on one machine):
//
//	loadgen -loopback 3 -n 2000 -c 64 -mix 4
//
// The workload mix is -mix distinct fingerprints (global batch stepped per
// variant) cycled deterministically, so a long run converges to the cache-
// hit-dominated steady state a planning fleet actually serves. With -json
// the aggregate Result is printed as one JSON object instead of text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mario/internal/serve"
	"mario/internal/serve/api"
	"mario/internal/serve/loadgen"
)

func main() {
	var (
		targets  = flag.String("targets", "", "comma-separated fleet base URLs to load")
		loopback = flag.Int("loopback", 0, "boot this many loopback fleet members in-process instead of using -targets")
		n        = flag.Int("n", 2000, "total requests")
		c        = flag.Int("c", 64, "concurrent requests in flight")
		mix      = flag.Int("mix", 4, "distinct workload fingerprints in the mix")
		model    = flag.String("model", "LLaMA2-3B", "model preset for the workload")
		devices  = flag.Int("devices", 4, "cluster size for the workload")
		batch    = flag.Int("batch", 16, "base global batch size (stepped per mix variant)")
		memory   = flag.String("memory", "40G", "per-device memory budget")
		micros   = flag.String("micros", "1,2", "comma-separated micro-batch sizes to search")
		workers  = flag.Int("serve-workers", 0, "loopback members' tuner pool size (0 = serve default)")
		queue    = flag.Int("serve-queue", 0, "loopback members' admission queue depth (0 = serve default)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall run budget")
		jsonOut  = flag.Bool("json", false, "print the aggregate result as JSON")
	)
	flag.Parse()

	mbs, err := parseInts(*micros)
	if err != nil {
		fatal("parsing -micros: %v", err)
	}
	base := api.PlanRequest{
		Model:        *model,
		Devices:      *devices,
		GlobalBatch:  *batch,
		Memory:       *memory,
		MicroBatches: mbs,
	}
	if _, err := base.Validate(); err != nil {
		fatal("workload invalid: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	urls := splitNonEmpty(*targets)
	if *loopback > 0 {
		if len(urls) > 0 {
			fatal("-targets and -loopback are mutually exclusive")
		}
		var stop func()
		urls, stop, err = bootLoopback(*loopback, *workers, *queue)
		if err != nil {
			fatal("booting loopback fleet: %v", err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "loadgen: loopback fleet up: %s\n", strings.Join(urls, " "))
	}
	if len(urls) == 0 {
		fatal("no targets: pass -targets or -loopback")
	}

	res, err := loadgen.Run(ctx, loadgen.Options{
		Targets:     urls,
		Workloads:   loadgen.MixedWorkloads(base, *mix),
		Requests:    *n,
		Concurrency: *c,
	})
	if err != nil {
		fatal("%v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
		return
	}
	fmt.Print(res.Summary())
}

// bootLoopback starts n fleet members on ephemeral loopback ports, each
// configured with Self and the others as Fleet, so consistent-hash routing
// and shard dispatch are live. It returns their base URLs and a stopper.
func bootLoopback(n, workers, queue int) ([]string, func(), error) {
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	var stops []func()
	for i, l := range listeners {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		s := serve.New(serve.Options{
			Self:         urls[i],
			Fleet:        peers,
			Workers:      workers,
			QueueDepth:   queue,
			TunerWorkers: workers,
		})
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(l)
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
			s.Close()
		})
	}
	return urls, func() {
		for _, stop := range stops {
			stop()
		}
	}, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitNonEmpty(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
