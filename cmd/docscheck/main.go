// Command docscheck is a dependency-free markdown link checker: it scans the
// given markdown files (and directories, recursively) for inline links,
// images and reference definitions, and verifies that every relative target
// exists on disk. External links (http, https, mailto) are not fetched.
// Fragment-only links (#section) and fragments on existing files are accepted
// without anchor resolution.
//
// Usage:
//
//	docscheck README.md DESIGN.md docs
//
// Dangling targets are printed as file:line: messages; the exit status is 1
// when any link dangles.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline links and images: [text](target) / ![alt](target).
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// refRE matches reference-style definitions: [label]: target
var refRE = regexp.MustCompile(`^\s*\[[^\]]+\]:\s+(\S+)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <file.md|dir> [...]")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		st, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
	}

	dangling := 0
	for _, f := range files {
		dangling += checkFile(f)
	}
	if dangling > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d dangling links\n", dangling)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d files, all links resolve\n", len(files))
}

// checkFile scans one markdown file and reports dangling relative targets.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	dir := filepath.Dir(path)
	bad := 0
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		var targets []string
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
		if m := refRE.FindStringSubmatch(line); m != nil {
			targets = append(targets, m[1])
		}
		for _, tgt := range targets {
			if skippable(tgt) {
				continue
			}
			tgt = strings.SplitN(tgt, "#", 2)[0]
			if tgt == "" {
				continue // fragment-only link into the same file
			}
			if _, err := os.Stat(filepath.Join(dir, tgt)); err != nil {
				fmt.Printf("%s:%d: dangling link target %q\n", path, i+1, tgt)
				bad++
			}
		}
	}
	return bad
}

// skippable reports whether the target is external (not a relative path).
func skippable(t string) bool {
	for _, p := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(t, p) {
			return true
		}
	}
	return false
}
