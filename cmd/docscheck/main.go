// Command docscheck is a dependency-free markdown link checker: it scans the
// given markdown files (and directories, recursively) for inline links,
// images and reference definitions, and verifies that every relative target
// exists on disk. External links (http, https, mailto) are not fetched.
// Fragment links are resolved against the target document's headings using
// GitHub's anchor-slug rules: #section must name a heading in the same file,
// and file.md#section a heading in the linked file.
//
// Usage:
//
//	docscheck README.md DESIGN.md docs
//
// Dangling targets are printed as file:line: messages; the exit status is 1
// when any link dangles.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRE matches inline links and images: [text](target) / ![alt](target).
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// refRE matches reference-style definitions: [label]: target
var refRE = regexp.MustCompile(`^\s*\[[^\]]+\]:\s+(\S+)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <file.md|dir> [...]")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		st, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
	}

	dangling := 0
	for _, f := range files {
		dangling += checkFile(f)
	}
	if dangling > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d dangling links\n", dangling)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d files, all links and anchors resolve\n", len(files))
}

// checkFile scans one markdown file and reports dangling relative targets
// and unresolved heading anchors.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	dir := filepath.Dir(path)
	bad := 0
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		var targets []string
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
		if m := refRE.FindStringSubmatch(line); m != nil {
			targets = append(targets, m[1])
		}
		for _, tgt := range targets {
			if skippable(tgt) {
				continue
			}
			file, frag, _ := strings.Cut(tgt, "#")
			resolved := path // fragment-only links point into this file
			if file != "" {
				resolved = filepath.Join(dir, file)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s:%d: dangling link target %q\n", path, i+1, file)
					bad++
					continue
				}
			}
			if frag == "" || !strings.HasSuffix(resolved, ".md") {
				continue
			}
			if !anchorsOf(resolved)[strings.ToLower(frag)] {
				fmt.Printf("%s:%d: no heading for anchor %q in %s\n", path, i+1, frag, resolved)
				bad++
			}
		}
	}
	return bad
}

// anchorCache memoizes per-file heading anchors across the run.
var anchorCache = map[string]map[string]bool{}

// anchorsOf returns the set of GitHub-style heading slugs of a markdown
// file, applying the duplicate -1/-2… suffix rule.
func anchorsOf(path string) map[string]bool {
	if a, ok := anchorCache[path]; ok {
		return a
	}
	anchors := map[string]bool{}
	data, err := os.ReadFile(path)
	if err == nil {
		seen := map[string]int{}
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			trim := strings.TrimSpace(line)
			if strings.HasPrefix(trim, "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			hashes := 0
			for hashes < len(trim) && trim[hashes] == '#' {
				hashes++
			}
			if hashes == 0 || hashes > 6 || hashes == len(trim) || trim[hashes] != ' ' {
				continue
			}
			s := slugify(trim[hashes+1:])
			if n := seen[s]; n > 0 {
				anchors[fmt.Sprintf("%s-%d", s, n)] = true
			} else {
				anchors[s] = true
			}
			seen[s]++
		}
	}
	anchorCache[path] = anchors
	return anchors
}

// slugify converts a heading to its GitHub anchor: lowercase, punctuation
// stripped, spaces become hyphens (hyphens and underscores survive).
func slugify(h string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(h)) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// skippable reports whether the target is external (not a relative path).
func skippable(t string) bool {
	for _, p := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(t, p) {
			return true
		}
	}
	return false
}
