// Command experiments regenerates the paper's evaluation tables and figures
// (§6) on the emulated substrate.
//
// Usage:
//
//	experiments [-fast] [-run name] [-workers n]
//
// where name is one of: table1, figure2, figure5, figure6, table5, figure7,
// figure8, figure9, figure10, figure11, drift, faults, searchtrace, hetero,
// extension, zerobubble, summary, all (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mario/internal/experiments"
)

func main() {
	fast := flag.Bool("fast", false, "run reduced-size experiments")
	run := flag.String("run", "all", "experiment to run (table1, figure2, figure5, figure6, table5, figure7, figure8, figure9, figure10, figure11, drift, faults, searchtrace, hetero, extension, zerobubble, summary, all)")
	workers := flag.Int("workers", 0, "concurrent tuner evaluations in figure11 (0 = GOMAXPROCS; output is identical)")
	flag.Parse()

	opt := experiments.Opts{Fast: *fast, Workers: *workers}
	w := os.Stdout
	want := func(name string) bool {
		return *run == "all" || strings.EqualFold(*run, name)
	}
	header := func(name, caption string) {
		fmt.Fprintf(w, "\n=== %s — %s ===\n", name, caption)
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	start := time.Now()
	if want("table1") {
		header("Table 1", "peak memory footprint across pipeline schemes")
		rows, err := experiments.Table1(opt)
		if err != nil {
			fail("table1", err)
		}
		experiments.PrintTable1(w, rows)
	}
	if want("figure2") {
		header("Figure 2", "near zero-cost checkpointing on a 4-stage 1F1B pipeline")
		steps, err := experiments.Figure2(opt)
		if err != nil {
			fail("figure2", err)
		}
		experiments.PrintFigure2(w, steps)
	}
	if want("figure5") {
		header("Figure 5", "pipeline visualisation through the Mario simulator")
		if err := experiments.Figure5(w, opt); err != nil {
			fail("figure5", err)
		}
	}
	var fig6Rows, table5Rows []experiments.ThroughputRow
	if want("figure6") || want("summary") {
		header("Figure 6", "throughput on GPT3-1.6B and LLaMA2-3B with 8 GPUs")
		rows, err := experiments.Figure6(opt)
		if err != nil {
			fail("figure6", err)
		}
		fig6Rows = rows
		experiments.PrintThroughput(w, rows)
	}
	if want("table5") || want("summary") {
		header("Table 5", "performance on GPT3-13B and LLaMA2-13B with 32 GPUs")
		rows, err := experiments.Table5(opt)
		if err != nil {
			fail("table5", err)
		}
		table5Rows = rows
		experiments.PrintThroughput(w, rows)
	}
	if want("figure7") {
		header("Figure 7", "peak memory footprint across devices")
		rows, err := experiments.Figure7(opt)
		if err != nil {
			fail("figure7", err)
		}
		experiments.PrintFigure7(w, rows)
	}
	if want("figure8") {
		header("Figure 8", "model parameter scaling on GPT3 with 16 GPUs")
		rows, err := experiments.Figure8(opt)
		if err != nil {
			fail("figure8", err)
		}
		experiments.PrintFigure8(w, rows)
	}
	if want("figure9") {
		header("Figure 9", "sequence length scaling on GPT3-1.6B with 16 GPUs")
		rows, err := experiments.Figure9(opt)
		if err != nil {
			fail("figure9", err)
		}
		experiments.PrintFigure9(w, rows)
	}
	if want("figure10") {
		header("Figure 10", "accuracy of the Mario simulator")
		r, err := experiments.Figure10(opt)
		if err != nil {
			fail("figure10", err)
		}
		experiments.PrintFigure10(w, r)
	}
	if want("figure11") {
		header("Figure 11", "throughput curve along tuning iterations (64-GPU cluster)")
		r, err := experiments.Figure11(opt)
		if err != nil {
			fail("figure11", err)
		}
		experiments.PrintFigure11(w, r)
	}
	if want("drift") {
		header("Drift", "per-instruction predicted-vs-measured alignment (observability demo)")
		r, err := experiments.Drift(opt)
		if err != nil {
			fail("drift", err)
		}
		experiments.PrintDrift(w, r)
	}
	if want("faults") {
		header("Faults", "schedule robustness under the fault ensemble (straggler, flaky links, stall)")
		r, err := experiments.Faults(opt)
		if err != nil {
			fail("faults", err)
		}
		experiments.PrintFaults(w, r)
	}
	if want("searchtrace") {
		header("Search trace", "telemetry walkthrough: canonical span tree + counters of one traced search")
		r, err := experiments.SearchTrace(opt)
		if err != nil {
			fail("searchtrace", err)
		}
		experiments.PrintSearchTrace(w, r)
	}
	if want("hetero") {
		header("Hetero", "heterogeneity-aware partitioning & placement vs the uniform baseline")
		r, err := experiments.Hetero(opt)
		if err != nil {
			fail("hetero", err)
		}
		experiments.PrintHetero(w, r)
	}
	if want("extension") {
		header("Extension", "ZB-H1 split-backward study (the paper's §8 future work)")
		rows, err := experiments.ExtensionZB(opt)
		if err != nil {
			fail("extension", err)
		}
		experiments.PrintExtensionZB(w, rows)
	}
	if want("zerobubble") {
		header("Zero bubble", "native split-backward schemes vs 1F1B (bubble ratio and peak memory)")
		rows, err := experiments.ZeroBubble(opt)
		if err != nil {
			fail("zerobubble", err)
		}
		experiments.PrintZeroBubble(w, rows)
	}
	if want("summary") {
		header("Speedup summary", "aggregate claims of §6.1/§6.2")
		if fig6Rows != nil {
			experiments.PrintSpeedups(w, "8-GPU grid (Fig. 6)", experiments.Summarise(fig6Rows))
		}
		if table5Rows != nil {
			experiments.PrintSpeedups(w, "32-GPU grid (Table 5)", experiments.Summarise(table5Rows))
		}
	}
	fmt.Fprintf(w, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
