package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkGraphOptimize-8   4070   559046 ns/op   634984 B/op   427 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid bench line")
	}
	if r.Name != "BenchmarkGraphOptimize" || r.Procs != 8 || r.Iterations != 4070 {
		t.Errorf("parsed header = %q/%d/%d", r.Name, r.Procs, r.Iterations)
	}
	if r.NsPerOp == nil || *r.NsPerOp != 559046 || r.BytesPerOp == nil || *r.BytesPerOp != 634984 || r.AllocsPerOp == nil || *r.AllocsPerOp != 427 {
		t.Errorf("parsed values = %+v", r)
	}

	r, ok = parseLine("BenchmarkTunerSearch/workers=1 1 9070527158 ns/op 220 explored")
	if !ok || r.Name != "BenchmarkTunerSearch/workers=1" || r.Extra["explored"] != 220 {
		t.Errorf("custom-metric line parsed as %+v (ok=%v)", r, ok)
	}

	for _, line := range []string{
		"ok   mario   0.026s",
		"PASS",
		"Benchmark only-name-no-iters",
		"BenchmarkX notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted non-result line %q", line)
		}
	}
}

// writeBaseline writes a minimal baseline artifact and returns its path.
func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseJSON = `[
  {"name": "BenchmarkA", "iterations": 100, "ns_per_op": 1000},
  {"name": "BenchmarkB", "iterations": 100, "ns_per_op": 2000},
  {"name": "BenchmarkGone", "iterations": 100, "ns_per_op": 3000}
]`

func curResults(t *testing.T, bench string) []result {
	t.Helper()
	rs, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestGateAgainst(t *testing.T) {
	base := writeBaseline(t, baseJSON)

	t.Run("within threshold passes", func(t *testing.T) {
		var out strings.Builder
		cur := curResults(t, "BenchmarkA 100 1100 ns/op\nBenchmarkB 100 1900 ns/op\n")
		regressed, err := gateAgainst(&out, cur, base, 15, nil)
		if err != nil || regressed {
			t.Fatalf("regressed=%v err=%v\n%s", regressed, err, out.String())
		}
		if !strings.Contains(out.String(), "GONE   BenchmarkGone") {
			t.Errorf("missing GONE report:\n%s", out.String())
		}
	})

	t.Run("regression fails", func(t *testing.T) {
		var out strings.Builder
		cur := curResults(t, "BenchmarkA 100 1200 ns/op\n")
		regressed, err := gateAgainst(&out, cur, base, 15, nil)
		if err != nil || !regressed {
			t.Fatalf("regressed=%v err=%v\n%s", regressed, err, out.String())
		}
		if !strings.Contains(out.String(), "SLOWER BenchmarkA") {
			t.Errorf("missing SLOWER verdict:\n%s", out.String())
		}
	})

	t.Run("prefix filter scopes the gate", func(t *testing.T) {
		var out strings.Builder
		// BenchmarkA regresses hugely but is filtered out; only B is gated.
		cur := curResults(t, "BenchmarkA 100 9000 ns/op\nBenchmarkB 100 2000 ns/op\n")
		regressed, err := gateAgainst(&out, cur, base, 15, []string{"BenchmarkB"})
		if err != nil || regressed {
			t.Fatalf("regressed=%v err=%v\n%s", regressed, err, out.String())
		}
	})

	t.Run("new benchmark never fails the gate", func(t *testing.T) {
		var out strings.Builder
		cur := curResults(t, "BenchmarkNew 100 99999 ns/op\nBenchmarkA 100 1000 ns/op\n")
		regressed, err := gateAgainst(&out, cur, base, 15, nil)
		if err != nil || regressed {
			t.Fatalf("regressed=%v err=%v\n%s", regressed, err, out.String())
		}
		if !strings.Contains(out.String(), "NEW    BenchmarkNew") {
			t.Errorf("missing NEW report:\n%s", out.String())
		}
	})

	t.Run("empty selection is an error", func(t *testing.T) {
		var out strings.Builder
		cur := curResults(t, "BenchmarkA 100 1000 ns/op\n")
		if _, err := gateAgainst(&out, cur, base, 15, []string{"BenchmarkZ"}); err == nil || !strings.Contains(err.Error(), "no benchmarks matched") {
			t.Fatalf("err = %v, want no-match error", err)
		}
	})

	t.Run("unreadable baseline", func(t *testing.T) {
		var out strings.Builder
		cur := curResults(t, "BenchmarkA 100 1000 ns/op\n")
		if _, err := gateAgainst(&out, cur, filepath.Join(t.TempDir(), "missing.json"), 15, nil); err == nil {
			t.Fatal("want error for missing baseline")
		}
		bad := writeBaseline(t, "{not json")
		if _, err := gateAgainst(&out, cur, bad, 15, nil); err == nil || !strings.Contains(err.Error(), "parsing") {
			t.Fatalf("err = %v, want parsing error", err)
		}
	})
}
