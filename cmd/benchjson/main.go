// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result line. It exists so CI
// can archive benchmark runs as a machine-readable artifact (BENCH_sim.json)
// that regression tooling can diff without re-parsing Go's bench format.
//
// Only the standard library is used. Result lines look like
//
//	BenchmarkGraphOptimize-8   4070   559046 ns/op   634984 B/op   427 allocs/op
//
// i.e. a name (with an optional -GOMAXPROCS suffix), an iteration count, and
// then value/unit pairs. Unrecognised units (custom b.ReportMetric metrics,
// MB/s, ...) are preserved under "extra". Non-benchmark lines are ignored, so
// the full `go test` output can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     *float64           `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	results := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark results\n", len(results))
}

func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Iterations: iters}
	r.Name, r.Procs = splitProcs(f[0])
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = &v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}

// splitProcs strips the trailing -GOMAXPROCS suffix Go appends to benchmark
// names (absent when GOMAXPROCS is 1), keeping artifact names comparable
// across machines.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 0
	}
	return name[:i], p
}
