// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result line. It exists so CI
// can archive benchmark runs as a machine-readable artifact (BENCH_sim.json)
// that regression tooling can diff without re-parsing Go's bench format.
//
// Only the standard library is used. Result lines look like
//
//	BenchmarkGraphOptimize-8   4070   559046 ns/op   634984 B/op   427 allocs/op
//
// i.e. a name (with an optional -GOMAXPROCS suffix), an iteration count, and
// then value/unit pairs. Unrecognised units (custom b.ReportMetric metrics,
// MB/s, ...) are preserved under "extra". Non-benchmark lines are ignored, so
// the full `go test` output can be piped through unfiltered.
//
// With -gate PCT the command becomes a regression check instead of a
// converter: stdin is still bench text, but the parsed ns/op values are
// compared against the artifact named by -baseline, and the exit status is 1
// if any benchmark slowed down by more than PCT percent. -only restricts the
// comparison to benchmarks whose name starts with one of the given
// comma-separated prefixes. Benchmarks present on only one side are reported
// but never fail the gate, so adding or retiring a benchmark does not require
// a lockstep baseline update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     *float64           `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	gate := flag.Float64("gate", 0, "fail if any ns/op regresses by more than this percent vs -baseline (0 = convert to JSON)")
	baseline := flag.String("baseline", "", "baseline JSON artifact to gate against (required with -gate)")
	only := flag.String("only", "", "comma-separated benchmark name prefixes to gate (default: all)")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	if *gate > 0 {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate requires -baseline")
			os.Exit(2)
		}
		regressed, err := gateAgainst(os.Stdout, results, *baseline, *gate, splitPrefixes(*only))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark results\n", len(results))
}

func parseBench(r io.Reader) ([]result, error) {
	results := []result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

// gateAgainst compares ns/op for every benchmark present in both the current
// run and the baseline artifact, prints one line per comparison, and reports
// whether any selected benchmark regressed by more than pct percent.
func gateAgainst(w io.Writer, cur []result, baselinePath string, pct float64, prefixes []string) (bool, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base []result
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	baseNs := make(map[string]float64, len(base))
	for _, b := range base {
		if b.NsPerOp != nil {
			baseNs[b.Name] = *b.NsPerOp
		}
	}

	regressed := false
	compared := 0
	for _, c := range cur {
		if c.NsPerOp == nil || !matchesPrefix(c.Name, prefixes) {
			continue
		}
		old, ok := baseNs[c.Name]
		if !ok {
			fmt.Fprintf(w, "NEW    %-55s %12.0f ns/op (not in baseline)\n", c.Name, *c.NsPerOp)
			continue
		}
		delete(baseNs, c.Name)
		compared++
		delta := 100 * (*c.NsPerOp - old) / old
		verdict := "ok    "
		if delta > pct {
			verdict = "SLOWER"
			regressed = true
		}
		fmt.Fprintf(w, "%s %-55s %12.0f -> %12.0f ns/op (%+.1f%%)\n", verdict, c.Name, old, *c.NsPerOp, delta)
	}
	for name := range baseNs {
		if matchesPrefix(name, prefixes) {
			fmt.Fprintf(w, "GONE   %-55s (in baseline, not in this run)\n", name)
		}
	}
	if compared == 0 {
		return false, fmt.Errorf("no benchmarks matched the gate selection")
	}
	fmt.Fprintf(w, "benchjson: gated %d benchmarks at +%.0f%% ns/op\n", compared, pct)
	return regressed, nil
}

func splitPrefixes(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func matchesPrefix(name string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Iterations: iters}
	r.Name, r.Procs = splitProcs(f[0])
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = &v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}

// splitProcs strips the trailing -GOMAXPROCS suffix Go appends to benchmark
// names (absent when GOMAXPROCS is 1), keeping artifact names comparable
// across machines.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 0
	}
	return name[:i], p
}
