module mario

go 1.22
