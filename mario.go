// Package mario is a Go reproduction of "Mario: Near Zero-cost Activation
// Checkpointing in Pipeline Parallelism" (PPoPP '25): a pipeline optimizer
// that tessellates activation checkpointing into existing pipeline schemes
// (1F1B "V", Chimera "X", Interleave "W"), hiding the recomputation in
// pipeline bubbles and balancing activation memory across devices.
//
// The public interface mirrors the paper's Listing 1: describe the cluster
// and the model, call Optimize to search for the best (scheme, pp, dp,
// micro-batch, checkpointing) configuration, and Run to execute the chosen
// schedule — here on an emulated cluster with one goroutine per device,
// since no GPUs are attached.
//
//	conf := mario.Config{PipelineScheme: "Auto", GlobalBatchSize: 128,
//	    NumDevices: 32, MemoryPerDevice: "40G"}
//	model := mario.Model("GPT3-13B")
//	plan, err := mario.Optimize(conf, model)
//	report, err := mario.Run(plan, 10)
package mario

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mario/internal/cluster"
	"mario/internal/cost"
	"mario/internal/fault"
	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/place"
	"mario/internal/profile"
	"mario/internal/telemetry"
	"mario/internal/tuner"
	"mario/internal/viz"
)

// Config is the mario_conf of Listing 1.
type Config struct {
	// PipelineScheme is "Auto" (search the paper's three schemes), a
	// scheme name ("1F1B", "Chimera", "Interleave", "GPipe", "ZB-H1",
	// "DualPipe-D") or a shape alias ("V", "X", "W", "Z", "D"). The
	// split-backward schemes Z and D are opt-in, not part of Auto.
	PipelineScheme string
	// GlobalBatchSize is the fixed number of samples per training
	// iteration.
	GlobalBatchSize int
	// NumDevices is the total accelerator count.
	NumDevices int
	// MemoryPerDevice is the per-device capacity, e.g. "40G", "80G" or
	// "12345678" (bytes).
	MemoryPerDevice string
	// TP is the fixed tensor-parallel degree (Equation 1 keeps TP
	// constant); 0 means 1.
	TP int
	// Checkpoint forces Mario's checkpointing on (true) or off (false);
	// nil lets the tuner decide.
	Checkpoint *bool
	// SplitBackward additionally tries the ZB-H1-style split-backward
	// transformation on checkpointed candidates (the paper's §8 future
	// work), kept only when the simulator confirms a win within the memory
	// budget.
	SplitBackward bool
	// MicroBatchSizes restricts the candidate micro-batch sizes; nil means
	// powers of two.
	MicroBatchSizes []int
	// MinPP/MaxPP bound the pipeline dimension (defaults: 4..NumDevices).
	MinPP, MaxPP int
	// Machine overrides the emulated hardware imperfections; zero value
	// uses profile.DefaultMachine.
	Machine profile.MachineSpec
	// DeviceSpeeds declares the relative compute speed of each device
	// (1 = nominal, 0.8 = 25% slower compute); nil or all-ones means a
	// homogeneous cluster. When set it must hold exactly NumDevices positive
	// entries, in data-parallel-replica-major order (replica k runs on
	// devices [k·pp, (k+1)·pp)). Heterogeneous speeds open the tuner's
	// partitioning/placement axis and carry through to the emulated cluster.
	DeviceSpeeds []float64
	// Placement selects the layer-partitioning/placement search mode:
	// "auto" (default — co-optimized assignment explored alongside the
	// uniform baseline on heterogeneous clusters, legacy behaviour on
	// homogeneous ones), "uniform" (force the even split with identity
	// placement) or "coopt" (force the co-optimized assignment; useful even
	// on homogeneous clusters, where the partition DP offloads the
	// embedding- and LM-head-heavy boundary stages).
	Placement string
	// Hardware overrides the device description; zero value uses A100-40G
	// with the memory limit from MemoryPerDevice.
	Hardware *cost.Hardware
	// Progress, when non-nil, is invoked after every tuner candidate with
	// the number of candidates explored so far and the best configuration
	// found (its Label and estimated throughput). Callbacks arrive in
	// canonical grid order regardless of Workers.
	Progress func(explored int, bestLabel string, bestThroughput float64)
	// Workers bounds the number of concurrent tuner evaluations; 0 means
	// GOMAXPROCS, 1 searches sequentially. The chosen plan, trace and
	// search stats are identical for every value.
	Workers int
	// GraphWorkers bounds the goroutines each graph-tuner invocation uses
	// to simulate prepose candidates concurrently; 0 or 1 keeps that inner
	// loop inline (the default — the outer Workers already parallelise the
	// search). The plan is identical for every value.
	GraphWorkers int
	// NoPrune disables the tuner's admissible upper-bound prune so every
	// feasible configuration is simulated and appears in the trace.
	NoPrune bool
	// NoBnB falls back to the canonical-order grid walk instead of the
	// branch-and-bound search. Both strategies return the byte-identical
	// best plan; branch-and-bound typically simulates far fewer grid points,
	// so the trace and the search stats differ. Implied by NoPrune.
	NoBnB bool
	// NoDelta disables delta re-simulation inside the graph passes: every
	// candidate re-sim runs the full fixpoint instead of recomputing only
	// the dirty cone. The plan is bit-identical either way; this is an
	// escape hatch and a benchmarking control.
	NoDelta bool
	// Tracer, when non-nil, records the search's own telemetry: a
	// PhaseOptimize root span with the tuner grid, graph-pass, simulator
	// and robustness work nested under it (see internal/telemetry). The
	// canonical exports of the resulting trace are byte-identical for
	// every Workers/GraphWorkers value; a nil Tracer costs nothing.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, receives the search counters (grid outcomes,
	// memoization, simulator executions) as registry series.
	Metrics *telemetry.SearchMetrics
	// Sharder, when non-nil, distributes the branch-and-bound expansion
	// across a planning fleet (tuner.ShardDispatcher): the probe pass runs
	// locally and the sorted grid points are dispatched in shard waves with
	// incumbent-bound sharing. The plan is byte-identical to a local search
	// for every fleet shape. Ignored when NoPrune/NoBnB selects the grid
	// walk.
	Sharder tuner.ShardDispatcher
}

// ModelConfig is the model_conf of Listing 1.
type ModelConfig = cost.ModelConfig

// Model returns a named preset (Table 4): "GPT3-1.6B", "GPT3-13B",
// "LLaMA2-3B", "LLaMA2-13B". It panics on unknown names (a deliberate
// fail-fast for a fixed catalogue; use Models for lookup).
func Model(name string) ModelConfig {
	m, ok := cost.Models[name]
	if !ok {
		panic(fmt.Sprintf("mario: unknown model %q", name))
	}
	return m
}

// Models lists the built-in model presets by name.
func Models() map[string]ModelConfig {
	out := make(map[string]ModelConfig, len(cost.Models))
	for k, v := range cost.Models {
		out[k] = v
	}
	return out
}

// Plan is the optimized schedule returned by Optimize — the paper's
// "schedule" object, ready for Run.
type Plan struct {
	// Best is the winning configuration.
	Best tuner.Candidate
	// Trace is the full tuning trace in search order (Fig. 11's curve).
	Trace []tuner.Candidate
	// Profiler retains the fitted estimators for re-simulation.
	Profiler *profile.Profiler
	// SearchStats counts what the tuner explored, rejected for memory and
	// pruned while producing the plan.
	SearchStats tuner.SearchStats

	memLimit float64
	tp       int
}

// ParseMemory converts "40G", "512M", "1T" or a plain byte count to bytes.
func ParseMemory(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	s = strings.TrimSuffix(s, "B") // tolerate "40GB", "512MB", …
	if s == "" {
		return 0, fmt.Errorf("mario: empty memory spec")
	}
	mult := 1.0
	switch s[len(s)-1] {
	case 'K':
		mult = 1 << 10
	case 'M':
		mult = 1 << 20
	case 'G':
		mult = 1 << 30
	case 'T':
		mult = 1 << 40
	}
	if mult != 1 {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("mario: invalid memory spec: %w", err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("mario: memory must be positive")
	}
	return v * mult, nil
}

// Optimize searches Equation 1's space for the configuration with the best
// estimated throughput under the memory budget and returns the executable
// plan. It never aborts early; use OptimizeContext to bound or cancel the
// search.
func Optimize(conf Config, model ModelConfig) (*Plan, error) {
	return OptimizeContext(context.Background(), conf, model)
}

// OptimizeContext is Optimize with cancellation: when ctx is cancelled or
// its deadline passes, the tuner's worker pool stops evaluating grid points
// and the call returns ctx's error. A completed OptimizeContext returns a
// plan byte-identical to Optimize for the same inputs and any worker count —
// the property the planning service's cache relies on.
func OptimizeContext(ctx context.Context, conf Config, model ModelConfig) (*Plan, error) {
	tn, space, memLimit, tp, err := searchSetup(conf, model)
	if err != nil {
		return nil, err
	}
	root := conf.Tracer.Root(telemetry.PhaseOptimize, "")
	root.SetInt("devices", int64(conf.NumDevices))
	root.SetInt("global_batch", int64(conf.GlobalBatchSize))
	defer root.End()
	metrics := conf.Metrics
	if metrics == nil {
		metrics = conf.Tracer.Metrics()
	}
	tn.Span = root
	tn.Metrics = metrics
	tn.Sharder = conf.Sharder
	if cb := conf.Progress; cb != nil {
		explored := 0
		tn.Progress = func(_ tuner.Candidate, best tuner.Candidate) {
			explored++
			cb(explored, best.Label(), best.Throughput)
		}
	}
	best, trace, err := tn.SearchContext(ctx, space)
	if err != nil {
		return nil, err
	}
	return &Plan{Best: *best, Trace: trace, Profiler: tn.Prof, SearchStats: tn.Stats, memLimit: memLimit, tp: tp}, nil
}

// searchSetup resolves a Config + model pair into a ready Tuner and its
// search Space — the shared front half of OptimizeContext and the fleet
// worker path (NewShardWorker), which must construct the byte-identical
// search a coordinator probes in order to evaluate shards of it.
func searchSetup(conf Config, model ModelConfig) (*tuner.Tuner, tuner.Space, float64, int, error) {
	var space tuner.Space
	if err := model.Validate(); err != nil {
		return nil, space, 0, 0, err
	}
	if conf.NumDevices <= 0 || conf.GlobalBatchSize <= 0 {
		return nil, space, 0, 0, fmt.Errorf("mario: NumDevices (%d) and GlobalBatchSize (%d) must be positive",
			conf.NumDevices, conf.GlobalBatchSize)
	}
	hw := cost.A100_40G
	if conf.Hardware != nil {
		hw = *conf.Hardware
	}
	memLimit := hw.MemBytes
	if conf.MemoryPerDevice != "" {
		v, err := ParseMemory(conf.MemoryPerDevice)
		if err != nil {
			return nil, space, 0, 0, err
		}
		memLimit = v
		hw.MemBytes = v
	}
	spec := conf.Machine
	if spec == (profile.MachineSpec{}) {
		spec = profile.DefaultMachine
	}

	var schemes []pipeline.Scheme
	if name := strings.TrimSpace(conf.PipelineScheme); name != "" && !strings.EqualFold(name, "auto") {
		s, err := pipeline.ParseScheme(name)
		if err != nil {
			return nil, space, 0, 0, err
		}
		schemes = []pipeline.Scheme{s}
	}
	var ckpt []bool
	if conf.Checkpoint != nil {
		ckpt = []bool{*conf.Checkpoint}
	}
	if len(conf.DeviceSpeeds) != 0 && len(conf.DeviceSpeeds) != conf.NumDevices {
		return nil, space, 0, 0, fmt.Errorf("mario: %d device speeds for %d devices", len(conf.DeviceSpeeds), conf.NumDevices)
	}
	for d, v := range conf.DeviceSpeeds {
		if v <= 0 {
			return nil, space, 0, 0, fmt.Errorf("mario: device %d speed %g must be positive", d, v)
		}
	}
	pmode, err := place.ParseMode(conf.Placement)
	if err != nil {
		return nil, space, 0, 0, err
	}

	prof := &profile.Profiler{Model: model, HW: hw, Spec: spec, Devices: 4, Iters: 10}
	tn := &tuner.Tuner{Prof: prof, SplitBackward: conf.SplitBackward, GraphWorkers: conf.GraphWorkers,
		NoDelta: conf.NoDelta}
	space = tuner.Space{
		Devices:      conf.NumDevices,
		GlobalBatch:  conf.GlobalBatchSize,
		Schemes:      schemes,
		Checkpoint:   ckpt,
		MicroBatches: conf.MicroBatchSizes,
		MinPP:        conf.MinPP,
		MaxPP:        conf.MaxPP,
		TP:           conf.TP,
		DeviceMem:    memLimit,
		Workers:      conf.Workers,
		NoPrune:      conf.NoPrune,
		NoBnB:        conf.NoBnB,
		DeviceSpeeds: conf.DeviceSpeeds,
		Placement:    pmode,
	}
	tp := conf.TP
	if tp <= 0 {
		tp = 1
	}
	return tn, space, memLimit, tp, nil
}

// ShardWorker is the worker half of the distributed planning fleet: it
// holds the profiler-backed tuner for one workload (one Config + model
// pair) and evaluates shard batches a coordinator dispatches. Schedule
// builds and graph-pass results are memoized on the worker across calls,
// so evaluating many shards of the same workload shares work exactly like
// a local search does. Methods are safe for concurrent use.
type ShardWorker struct {
	tn    *tuner.Tuner
	space tuner.Space
}

// NewShardWorker resolves the workload like OptimizeContext does and
// returns the reusable worker. Metrics, when non-nil, receives the
// worker's simulation counts.
func NewShardWorker(conf Config, model ModelConfig, metrics *telemetry.SearchMetrics) (*ShardWorker, error) {
	tn, space, _, _, err := searchSetup(conf, model)
	if err != nil {
		return nil, err
	}
	tn.Metrics = metrics
	return &ShardWorker{tn: tn, space: space}, nil
}

// EvalShard evaluates one dispatched shard batch in order, skipping points
// the incumbent dooms (nil means no incumbent yet). The outcomes are
// exactly what a coordinator's local evaluation of the batch would
// produce — the contract the fleet's byte-identity rests on.
func (w *ShardWorker) EvalShard(ctx context.Context, points []tuner.ShardPoint, incumbent *float64) ([]tuner.ShardOutcome, error) {
	inc, hasInc := 0.0, false
	if incumbent != nil {
		inc, hasInc = *incumbent, true
	}
	return w.tn.EvalShard(ctx, w.space, points, inc, hasInc)
}

// Sink receives one Event per executed instruction of a measured run; see
// the obs package for the delivery contract and ready-made sinks.
type Sink = obs.Sink

// Event is one measured instruction execution.
type Event = obs.Event

// Recorder is a Sink that retains every event in memory.
type Recorder = obs.Recorder

// MeasuredStats is the per-device metrics digest derived from a measured
// run's event stream.
type MeasuredStats = obs.Stats

// DriftReport quantifies predicted-vs-measured disagreement; see Drift.
type DriftReport = obs.DriftReport

// FaultPlan is a deterministic fault scenario for RunOptions.Faults; see the
// fault package for the plan vocabulary (slowdowns, link faults, stalls).
type FaultPlan = fault.Plan

// ParseFaults resolves a fault-plan argument: a path to a JSON plan file, or
// an inline spec like "slow:dev=1,factor=1.5; link:from=0,to=1,drop=0.05".
func ParseFaults(arg string) (*FaultPlan, error) {
	return fault.ParseOrLoad(arg)
}

// RunReport summarises an execution of the plan on the emulated cluster.
type RunReport struct {
	// IterTime is the measured time per training iteration in seconds.
	IterTime float64
	// Total is the measured virtual time for all iterations in seconds.
	Total float64
	// SamplesPerSec is the measured training throughput.
	SamplesPerSec float64
	// PeakMemMin and PeakMemMax are the per-device peak-memory extremes in
	// bytes (the (Min,Max GB) columns of Table 5).
	PeakMemMin, PeakMemMax float64
	// PeakMem is the full per-device peak memory in bytes.
	PeakMem []float64
	// WatchdogResets counts how often the deadlock watchdog re-armed
	// because the cluster was slow but still making progress.
	WatchdogResets int
	// StallResets counts watchdog firings absorbed by an injected
	// wall-clock stall instead of being declared deadlocks.
	StallResets int
	// FaultDrops, FaultStall and FaultSlowed summarise the injected faults
	// of a run made with RunOptions.Faults: dropped-and-retried p2p
	// attempts, total injected stall time in virtual seconds, and slowed
	// compute instructions. All zero on a healthy run.
	FaultDrops  int
	FaultStall  float64
	FaultSlowed int
	// FaultPlan is the name of the fault plan the run executed under
	// (empty for a healthy run); Drift uses it to label faulted reports.
	FaultPlan string
	// Events is the measured per-instruction event stream (nil unless
	// RunOptions.CollectEvents was set or a Recorder sink was attached).
	Events []Event
	// Stats is the per-device metrics digest derived from Events (nil when
	// no events were collected).
	Stats *MeasuredStats
}

// RunOptions configures observability for RunWithOptions. The zero value
// records nothing and adds no overhead.
type RunOptions struct {
	// Sink, when non-nil, receives every measured instruction event after
	// the run completes (deterministic device-major order).
	Sink Sink
	// CollectEvents additionally retains the event stream in
	// RunReport.Events and derives RunReport.Stats from it.
	CollectEvents bool
	// Faults, when non-nil and non-empty, degrades the emulated hardware
	// under the fault plan (see internal/fault): compute slowdowns, link
	// degradation with bounded retry, and whole-device stalls — all in
	// virtual time, so faulted runs stay deterministic.
	Faults *fault.Plan
}

// Run executes the plan's schedule for iters training iterations on the
// emulated cluster and reports measured throughput and memory.
func Run(p *Plan, iters int) (*RunReport, error) {
	return RunWithOptions(p, iters, RunOptions{})
}

// RunWithOptions is Run with observability attached: an optional event sink
// and optional in-report event collection with derived per-device stats.
func RunWithOptions(p *Plan, iters int, opts RunOptions) (*RunReport, error) {
	if p == nil || p.Best.Schedule == nil {
		return nil, fmt.Errorf("mario: plan has no schedule")
	}
	stages := p.Best.Schedule.NumStages()
	tp := p.tp
	if tp <= 0 {
		tp = 1
	}
	// Plans tuned with a partitioning/placement assignment run on a machine
	// that mirrors it: the truth estimator carries the same layer split and
	// the emulator applies the same per-rank speed factors the simulator
	// scored with.
	var mach *cluster.Machine
	var err error
	if pa := p.Best.Place; pa != nil {
		mach, err = p.Profiler.NewMachinePartitioned(p.Profiler.Model, stages, p.Best.MicroBatch, tp,
			pa.LayersPerStage, pa.RankSpeed)
	} else {
		mach, err = p.Profiler.NewMachine(p.Profiler.Model, stages, p.Best.MicroBatch, tp)
	}
	if err != nil {
		return nil, err
	}
	mach.DP = p.Best.DP
	mach.Faults = opts.Faults
	var rec *Recorder
	if opts.CollectEvents {
		rec = &Recorder{}
		mach.Sink = obs.Multi(rec, opts.Sink)
	} else {
		mach.Sink = opts.Sink
	}
	rep, err := mach.Run(p.Best.Schedule, iters)
	if err != nil {
		return nil, err
	}
	out := &RunReport{
		IterTime:       rep.IterTime,
		Total:          rep.Total,
		SamplesPerSec:  rep.SamplesPerSec,
		PeakMem:        rep.PeakMem,
		WatchdogResets: rep.WatchdogResets,
		StallResets:    rep.StallResets,
		FaultDrops:     rep.FaultDrops,
		FaultStall:     rep.FaultStall,
		FaultSlowed:    rep.FaultSlowed,
	}
	if !opts.Faults.Empty() {
		out.FaultPlan = opts.Faults.Name
		if out.FaultPlan == "" {
			out.FaultPlan = "unnamed plan"
		}
	}
	out.PeakMemMin, out.PeakMemMax = rep.PeakMem[0], rep.PeakMem[0]
	for _, v := range rep.PeakMem[1:] {
		if v < out.PeakMemMin {
			out.PeakMemMin = v
		}
		if v > out.PeakMemMax {
			out.PeakMemMax = v
		}
	}
	if rec != nil {
		out.Events = rec.Events
		out.Stats = obs.Compute(rec.Events, rep.Total)
		out.Stats.WatchdogResets = rep.WatchdogResets
	}
	return out, nil
}

// Drift aligns a measured run's event stream with the plan's predicted
// timeline and quantifies the disagreement (per-kind latency MAPE, memory
// MAPE, worst-offending instructions). The report requires rep.Events, i.e.
// a run made with RunOptions.CollectEvents.
func Drift(p *Plan, rep *RunReport) (*DriftReport, error) {
	if p == nil || p.Best.Result == nil {
		return nil, fmt.Errorf("mario: plan has no simulation result")
	}
	if rep == nil || len(rep.Events) == 0 {
		return nil, fmt.Errorf("mario: run report has no events (use RunOptions.CollectEvents)")
	}
	dr := obs.ComputeDrift(rep.Events, p.Best.Result, rep.PeakMem)
	dr.FaultPlan = rep.FaultPlan
	return dr, nil
}

// Visualize writes the plan's simulated timeline as an ASCII Gantt chart —
// the paper's Fig. 5 visualisation.
func Visualize(w io.Writer, p *Plan) error {
	if p == nil || p.Best.Result == nil {
		return fmt.Errorf("mario: plan has no simulation result")
	}
	_, err := io.WriteString(w, viz.ASCII(p.Best.Result, 0))
	return err
}
