// Package place is the heterogeneity-aware partitioning and placement
// subsystem: it decides how many transformer layers each pipeline stage
// holds (layer→stage partitioning) and which physical device executes each
// pipeline rank (stage→device placement) for clusters whose devices do not
// all run at the same speed.
//
// The subsystem deliberately does not introduce a new pipeline.Placement:
// the schedule's (part, stage)→rank mapping is untouched, so the IR, the
// graph passes and the communication structure all stay byte-identical.
// What changes is which physical speed slot plays which rank — captured as a
// deterministic permutation in Assignment.DeviceOf — and how many layers each
// stage carries — Assignment.LayersPerStage, fed to the estimator as a
// cost.AnalyticConfig.Partition override. The per-rank speeds that result
// thread through cost.Estimator.DeviceSpeed (simulator) and
// cluster.Machine.SpeedFactors (emulator).
//
// Both decisions are co-optimized by a deterministic fixpoint iteration
// (CoOptimize): a dynamic program over layer prefix sums partitions layers
// to minimize the bottleneck stage duration under a per-device memory cap,
// and a sorted matching assigns heavy ranks to fast devices; each step uses
// the other's latest answer until neither changes.
package place

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// Mode selects how the tuner uses the placement subsystem.
type Mode string

// Placement-search modes. ModeAuto explores the co-optimized assignment
// alongside the uniform baseline when the cluster is heterogeneous and
// collapses to the legacy uniform behaviour when it is not; ModeUniform
// forces the even split with identity placement; ModeCoOpt forces the
// co-optimized assignment.
const (
	ModeAuto    Mode = "auto"
	ModeUniform Mode = "uniform"
	ModeCoOpt   Mode = "coopt"
)

// ParseMode canonicalizes a placement-mode string; the empty string means
// ModeAuto.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", string(ModeAuto):
		return ModeAuto, nil
	case string(ModeUniform):
		return ModeUniform, nil
	case string(ModeCoOpt):
		return ModeCoOpt, nil
	}
	return "", fmt.Errorf("place: unknown placement mode %q (want auto, uniform or coopt)", s)
}

// ParseSpeeds parses a per-device speed specification against a known device
// count. Two forms are accepted: a full comma-separated list with one entry
// per device ("1,0.8,1,1"), or a sparse list of dev=speed overrides on a
// nominal-1 baseline ("2=0.8" or "1=0.9,3=0.75"). Speeds must be positive;
// sparse indices must be in range. An empty spec returns nil (homogeneous).
func ParseSpeeds(spec string, devices int) ([]float64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	fields := strings.Split(spec, ",")
	sparse := strings.Contains(fields[0], "=")
	out := make([]float64, devices)
	for i := range out {
		out[i] = 1
	}
	if sparse {
		for _, f := range fields {
			f = strings.TrimSpace(f)
			dev, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("place: speed entry %q: want dev=speed", f)
			}
			d, err := strconv.Atoi(strings.TrimSpace(dev))
			if err != nil {
				return nil, fmt.Errorf("place: speed entry %q: bad device index: %v", f, err)
			}
			if d < 0 || d >= devices {
				return nil, fmt.Errorf("place: speed entry %q: device %d out of range (cluster has %d devices)", f, d, devices)
			}
			s, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return nil, fmt.Errorf("place: speed entry %q: bad speed: %v", f, err)
			}
			if s <= 0 {
				return nil, fmt.Errorf("place: speed entry %q: speed must be positive", f)
			}
			out[d] = s
		}
	} else {
		if len(fields) != devices {
			return nil, fmt.Errorf("place: %d speed entries for %d devices", len(fields), devices)
		}
		for i, f := range fields {
			s, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("place: speed entry %q: %v", f, err)
			}
			if s <= 0 {
				return nil, fmt.Errorf("place: speed entry %q: speed must be positive", f)
			}
			out[i] = s
		}
	}
	if Homogeneous(out) {
		return nil, nil
	}
	return out, nil
}

// Homogeneous reports whether every declared speed is the nominal 1 (or the
// list is empty) — the cases where the placement axis has nothing to
// exploit.
func Homogeneous(speeds []float64) bool {
	for _, s := range speeds {
		if s != 1 {
			return false
		}
	}
	return true
}

// Assignment is the canonical output of the subsystem: one concrete
// partitioning + placement decision for a (scheme, pipeline-depth) point.
type Assignment struct {
	// LayersPerStage[s] is the number of transformer layers stage s holds.
	LayersPerStage []int `json:"layers_per_stage"`
	// DeviceOf[r] is the physical speed slot pipeline rank r runs on — a
	// permutation of 0..D-1 within one pipeline replica. The identity
	// permutation is the legacy placement.
	DeviceOf []int `json:"device_of"`
	// RankSpeed[r] is the relative compute speed of the device playing rank
	// r after the permutation (1 = nominal). nil means homogeneous.
	RankSpeed []float64 `json:"rank_speed,omitempty"`
}

// Key renders the assignment as a canonical string for memo keys, telemetry
// and fingerprints. Equal assignments produce equal keys; a nil assignment
// yields the empty string.
func (a *Assignment) Key() string {
	if a == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('L')
	for i, n := range a.LayersPerStage {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	b.WriteString("|D")
	for i, d := range a.DeviceOf {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(d))
	}
	b.WriteString("|S")
	for i, s := range a.RankSpeed {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(s, 'g', -1, 64))
	}
	return b.String()
}

// IsIdentity reports whether the assignment is the legacy uniform split with
// identity placement for the given layer count: the estimator it steers is
// then bit-identical to one built without any assignment.
func (a *Assignment) IsIdentity(layers int) bool {
	if a == nil {
		return true
	}
	even := cost.Partition(layers, len(a.LayersPerStage))
	for s, n := range a.LayersPerStage {
		if n != even[s] {
			return false
		}
	}
	for r, d := range a.DeviceOf {
		if d != r {
			return false
		}
	}
	for _, s := range a.RankSpeed {
		if s != 1 {
			return false
		}
	}
	return true
}

// LayerModel is the per-layer cost model of an uneven transformer stack: the
// compute time and training-state bytes of each individual layer, with the
// embedding cost folded into the first layer and the LM-head cost into the
// last — exactly the asymmetry that makes uniform splits suboptimal.
type LayerModel struct {
	// Work[l] is the fw+bw compute time of layer l in seconds (the DP's
	// bottleneck currency).
	Work []float64
	// WeightBytes[l] is the training state of layer l in bytes (weights,
	// gradients, optimizer states), used for the memory cap.
	WeightBytes []float64
	// ActBytes[l] is the full activation footprint of one micro-batch of
	// layer l in bytes. Even under full checkpointing a stage cannot go
	// below static state plus one micro-batch's activations — the recompute
	// rematerializes them for the backward — so the memory cap prices each
	// layer at WeightBytes+ActBytes. nil means activations are not modelled.
	ActBytes []float64
	// StashBytes[l] is the checkpointed footprint of layer l in bytes (the
	// layer input a CkptForward retains); each in-flight micro-batch keeps
	// one stash of its stage's first layer. nil means stashes are not
	// modelled.
	StashBytes []float64
}

// NewLayerModel derives the per-layer model from a per-layer estimator: one
// built with a partition of all ones, i.e. Stages == Layers, so stage l's
// costs are layer l's costs (first/last-stage extras land on the first and
// last layer).
func NewLayerModel(e *cost.Estimator) *LayerModel {
	lm := &LayerModel{
		Work:        make([]float64, e.Stages),
		WeightBytes: make([]float64, e.Stages),
		ActBytes:    make([]float64, e.Stages),
		StashBytes:  make([]float64, e.Stages),
	}
	for l := 0; l < e.Stages; l++ {
		lm.Work[l] = e.FwTime[l] + e.BwTime[l]
		lm.WeightBytes[l] = e.WeightBytes[l]
		lm.ActBytes[l] = e.ActFull[l]
		lm.StashBytes[l] = e.ActStash[l]
	}
	return lm
}

// Layers returns the number of layers the model describes.
func (lm *LayerModel) Layers() int { return len(lm.Work) }

// RankSpeeds collapses the physical per-device speed list onto the pipeline
// ranks of one replica: data-parallel replica k runs on devices
// [k·pp, (k+1)·pp), replicas execute in lockstep, so rank r is gated by the
// slowest device playing it across replicas — min over k of
// speeds[k·pp+r]. Missing, zero or negative entries count as nominal speed
// 1. A nil or empty speeds list returns nil (homogeneous).
func RankSpeeds(speeds []float64, pp, dp int) []float64 {
	if len(speeds) == 0 {
		return nil
	}
	out := make([]float64, pp)
	for r := 0; r < pp; r++ {
		mn := 1.0
		first := true
		for k := 0; k < dp; k++ {
			s := 1.0
			if i := k*pp + r; i < len(speeds) && speeds[i] > 0 {
				s = speeds[i]
			}
			if first || s < mn {
				mn, first = s, false
			}
		}
		out[r] = mn
	}
	return out
}

// Uniform returns the legacy baseline assignment for the given placement:
// the even layer split, identity rank→device mapping, and the given
// per-rank speeds (nil for a homogeneous cluster).
func Uniform(layers int, pl pipeline.Placement, rankSpeed []float64) *Assignment {
	d := pl.NumDevices()
	a := &Assignment{
		LayersPerStage: cost.Partition(layers, pl.NumStages()),
		DeviceOf:       make([]int, d),
	}
	for r := range a.DeviceOf {
		a.DeviceOf[r] = r
	}
	if rankSpeed != nil {
		a.RankSpeed = append([]float64(nil), rankSpeed...)
	}
	return a
}

// Options bounds the co-optimization search.
type Options struct {
	// MemCap is the per-device memory budget in bytes for static training
	// state (framework + weights); 0 disables the cap.
	MemCap float64
	// FrameworkMem is the static framework footprint per device in bytes,
	// subtracted from MemCap before the weight budget is split.
	FrameworkMem float64
	// InFlight[st] is the number of micro-batches stage st retains at its
	// in-flight high water (the schedule's warmup depth); it multiplies the
	// per-micro checkpoint stash in the memory cap. nil means 1 per stage.
	InFlight []int
	// BufBytes is a per-stage byte reserve for transfer staging buffers
	// (activation and gradient p2p), added on top of each stage's floor.
	BufBytes float64
	// MaxIters bounds the partition⇄placement fixpoint iterations; 0 means
	// 4 (the loop converges in 2-3 iterations in practice).
	MaxIters int
}

// CoOptimize runs the deterministic partition⇄placement fixpoint: starting
// from the identity placement, it alternates (a) the bottleneck-minimizing
// layer→stage DP under the current per-rank slowdowns and the memory cap
// with (b) the sorted matching of stage loads onto speed slots, until the
// assignment stops changing. rankSpeed lists the speed slots of one pipeline
// replica (see RankSpeeds); nil means homogeneous, in which case the result
// is the partition-only optimum with identity placement.
func CoOptimize(lm *LayerModel, pl pipeline.Placement, rankSpeed []float64, opts Options) (*Assignment, error) {
	D := pl.NumDevices()
	S := pl.NumStages()
	L := lm.Layers()
	if L < S {
		return nil, fmt.Errorf("place: %d layers cannot fill %d stages", L, S)
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 4
	}
	slots := rankSpeed
	if slots == nil {
		slots = ones(D)
	} else if len(slots) != D {
		return nil, fmt.Errorf("place: %d rank speeds for %d devices", len(slots), D)
	}

	deviceOf := identity(D)
	var part []int
	for iter := 0; iter < maxIters; iter++ {
		next := partitionDP(lm, pl, slowOfRanks(slots, deviceOf), opts)
		perm := matchDevices(lm, pl, next, slots)
		if part != nil && equalInts(next, part) && equalInts(perm, deviceOf) {
			break
		}
		part, deviceOf = next, perm
	}
	a := &Assignment{LayersPerStage: part, DeviceOf: deviceOf}
	if rankSpeed != nil {
		a.RankSpeed = make([]float64, D)
		for r, d := range deviceOf {
			a.RankSpeed[r] = slots[d]
		}
	}
	return a, nil
}

// ones returns a slice of n nominal speeds.
func ones(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// identity returns the identity permutation of size n.
func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// slowOfRanks converts speed slots + a rank→slot permutation into per-rank
// slowdown multipliers (1/speed).
func slowOfRanks(slots []float64, deviceOf []int) []float64 {
	slow := make([]float64, len(deviceOf))
	for r, d := range deviceOf {
		s := 1.0
		if d >= 0 && d < len(slots) && slots[d] > 0 {
			s = slots[d]
		}
		slow[r] = 1 / s
	}
	return slow
}

// stageSlow is the effective slowdown of stage st: the slowest rank that
// executes it across partitions (replicated stages are gated by their
// slowest replica).
func stageSlow(pl pipeline.Placement, rankSlow []float64, st int) float64 {
	mx := 1.0
	for p := 0; p < pl.NumParts(); p++ {
		d := pl.Device(p, st)
		if d >= 0 && d < len(rankSlow) && rankSlow[d] > mx {
			mx = rankSlow[d]
		}
	}
	return mx
}

// partitionDP is the layer→stage dynamic program: minimize over partitions
// the maximum per-stage duration sum(Work[i..j])·stageSlow(s), each stage
// holding at least one layer, subject to each stage's memory floor —
// training state, one micro-batch's full activations, the recompute working
// set, the in-flight checkpoint stashes and the transfer buffers — fitting
// its share of the per-device memory cap. Ties keep the earliest split so
// the answer is deterministic. If the cap is infeasible the even split is
// returned unchanged (the tuner's memory checks reject the point downstream
// exactly as they do today).
func partitionDP(lm *LayerModel, pl pipeline.Placement, rankSlow []float64, opts Options) []int {
	L := lm.Layers()
	S := pl.NumStages()
	workPfx := prefix(lm.Work)
	// A stage's memory floor is its training state plus one micro-batch's
	// full activations (which the checkpointing pass cannot eliminate: the
	// recompute rebuilds them for the backward), so the cap prices each
	// layer at WeightBytes+ActBytes.
	memPerLayer := lm.WeightBytes
	if len(lm.ActBytes) == L {
		memPerLayer = make([]float64, L)
		for i := range memPerLayer {
			memPerLayer[i] = lm.WeightBytes[i] + lm.ActBytes[i]
		}
	}
	bytePfx := prefix(memPerLayer)

	// Per-stage weight budget: the owning device's cap minus framework
	// memory, split evenly over the stages it owns (replicas each hold their
	// own copy, so no further division).
	caps := make([]float64, S)
	for st := range caps {
		caps[st] = -1 // unlimited
	}
	if opts.MemCap > 0 {
		owned := make([]int, pl.NumDevices())
		for st := 0; st < S; st++ {
			seenDev := -1
			for p := 0; p < pl.NumParts(); p++ {
				if d := pl.Device(p, st); d != seenDev {
					owned[d]++
					seenDev = d
				}
			}
		}
		for st := 0; st < S; st++ {
			budget := opts.MemCap - opts.FrameworkMem
			n := owned[pl.Device(0, st)]
			if n > 1 {
				budget /= float64(n)
			}
			caps[st] = budget
		}
	}

	const inf = 1e300
	// f[s][l]: minimal bottleneck placing the first l layers on the first s
	// stages; choice[s][l]: the l' the optimum cut at.
	f := make([][]float64, S+1)
	choice := make([][]int, S+1)
	for s := range f {
		f[s] = make([]float64, L+1)
		choice[s] = make([]int, L+1)
		for l := range f[s] {
			f[s][l] = inf
			choice[s][l] = -1
		}
	}
	f[0][0] = 0
	for s := 1; s <= S; s++ {
		slow := stageSlow(pl, rankSlow, s-1)
		inFlight := 1.0
		if st := s - 1; st < len(opts.InFlight) && opts.InFlight[st] > 1 {
			inFlight = float64(opts.InFlight[st])
		}
		for l := s; l <= L-(S-s); l++ {
			// k descends so the recompute working set — the largest single
			// layer's activations in (k..l] — is a running max; accepting on
			// <= keeps the earliest split on ties, like the ascending strict-<
			// walk would.
			var maxAct float64
			for k := l - 1; k >= s-1; k-- {
				if k < len(lm.ActBytes) && lm.ActBytes[k] > maxAct {
					maxAct = lm.ActBytes[k]
				}
				if f[s-1][k] >= inf {
					continue
				}
				if c := caps[s-1]; c >= 0 {
					need := bytePfx[l] - bytePfx[k] + maxAct + opts.BufBytes
					if k < len(lm.StashBytes) {
						need += inFlight * lm.StashBytes[k]
					}
					if need > c {
						continue
					}
				}
				dur := (workPfx[l] - workPfx[k]) * slow
				if dur < f[s-1][k] {
					dur = f[s-1][k]
				}
				if dur <= f[s][l] {
					f[s][l] = dur
					choice[s][l] = k
				}
			}
		}
	}
	if f[S][L] >= inf {
		return cost.Partition(L, S)
	}
	part := make([]int, S)
	l := L
	for s := S; s >= 1; s-- {
		k := choice[s][l]
		part[s-1] = l - k
		l = k
	}
	return part
}

// prefix returns the prefix-sum array of xs (len+1 entries, pfx[0] = 0).
func prefix(xs []float64) []float64 {
	pfx := make([]float64, len(xs)+1)
	for i, x := range xs {
		pfx[i+1] = pfx[i] + x
	}
	return pfx
}

// matchDevices assigns ranks to speed slots by sorted matching: ranks in
// decreasing order of the compute load their owned stages carry under the
// partition, speed slots in decreasing speed — the heaviest rank gets the
// fastest device. Ties break on the lower index on both sides, so the
// matching is deterministic; when every slot has the same speed the matching
// is irrelevant and the identity is returned outright.
func matchDevices(lm *LayerModel, pl pipeline.Placement, part []int, slots []float64) []int {
	D := pl.NumDevices()
	equal := true
	for _, s := range slots {
		if s != slots[0] {
			equal = false
			break
		}
	}
	if equal {
		return identity(D)
	}
	workPfx := prefix(lm.Work)
	stageLo := make([]int, len(part))
	lo := 0
	for s, n := range part {
		stageLo[s] = lo
		lo += n
	}
	load := make([]float64, D)
	for st := 0; st < pl.NumStages(); st++ {
		w := workPfx[stageLo[st]+part[st]] - workPfx[stageLo[st]]
		seenDev := -1
		for p := 0; p < pl.NumParts(); p++ {
			if d := pl.Device(p, st); d != seenDev {
				load[d] += w
				seenDev = d
			}
		}
	}
	ranks := identity(D)
	sort.SliceStable(ranks, func(i, j int) bool { return load[ranks[i]] > load[ranks[j]] })
	devs := identity(D)
	sort.SliceStable(devs, func(i, j int) bool { return slots[devs[i]] > slots[devs[j]] })
	deviceOf := make([]int, D)
	for i, r := range ranks {
		deviceOf[r] = devs[i]
	}
	return deviceOf
}
