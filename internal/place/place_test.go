package place

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeAuto, true},
		{"auto", ModeAuto, true},
		{"  Uniform ", ModeUniform, true},
		{"COOPT", ModeCoOpt, true},
		{"greedy", "", false},
	}
	for _, tc := range cases {
		got, err := ParseMode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseMode(%q) accepted", tc.in)
		}
	}
}

func TestParseSpeeds(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		devices int
		want    []float64
		wantErr string
	}{
		{"empty", "", 4, nil, ""},
		{"full list", "1,0.8,1,1", 4, []float64{1, 0.8, 1, 1}, ""},
		{"full list spaces", " 1 , 0.8 , 1 , 1 ", 4, []float64{1, 0.8, 1, 1}, ""},
		{"all ones collapses", "1,1,1,1", 4, nil, ""},
		{"wrong count", "1,0.8", 4, nil, "2 speed entries for 4 devices"},
		{"bad float", "1,x,1,1", 4, nil, "speed entry"},
		{"nonpositive", "1,0,1,1", 4, nil, "must be positive"},
		{"sparse", "2=0.8", 4, []float64{1, 1, 0.8, 1}, ""},
		{"sparse multi", "1=0.9, 3=0.75", 4, []float64{1, 0.9, 1, 0.75}, ""},
		{"sparse all ones collapses", "2=1", 4, nil, ""},
		{"sparse out of range", "4=0.8", 4, nil, "out of range"},
		{"sparse negative index", "-1=0.8", 4, nil, "out of range"},
		{"sparse bad speed", "2=fast", 4, nil, "bad speed"},
		{"sparse nonpositive", "2=-0.5", 4, nil, "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSpeeds(tc.spec, tc.devices)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseSpeeds(%q) err = %v, want containing %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpeeds(%q): %v", tc.spec, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ParseSpeeds(%q) = %v, want %v", tc.spec, got, tc.want)
			}
		})
	}
}

func TestHomogeneous(t *testing.T) {
	if !Homogeneous(nil) || !Homogeneous([]float64{1, 1}) {
		t.Error("nominal lists must report homogeneous")
	}
	if Homogeneous([]float64{1, 0.8}) {
		t.Error("0.8 entry reported homogeneous")
	}
}

func TestAssignmentKeyAndIdentity(t *testing.T) {
	var nilA *Assignment
	if nilA.Key() != "" {
		t.Errorf("nil Key = %q, want empty", nilA.Key())
	}
	if !nilA.IsIdentity(16) {
		t.Error("nil assignment must be identity")
	}
	a := &Assignment{
		LayersPerStage: []int{4, 4, 4, 4},
		DeviceOf:       []int{0, 1, 2, 3},
	}
	if got, want := a.Key(), "L4,4,4,4|D0,1,2,3|S"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	if !a.IsIdentity(16) {
		t.Error("even split + identity permutation must be identity")
	}
	b := &Assignment{LayersPerStage: []int{5, 4, 4, 3}, DeviceOf: []int{0, 1, 2, 3}}
	if b.IsIdentity(16) {
		t.Error("uneven split reported identity")
	}
	c := &Assignment{LayersPerStage: []int{4, 4, 4, 4}, DeviceOf: []int{1, 0, 2, 3}}
	if c.IsIdentity(16) {
		t.Error("permuted placement reported identity")
	}
	d := &Assignment{
		LayersPerStage: []int{4, 4, 4, 4},
		DeviceOf:       []int{0, 1, 2, 3},
		RankSpeed:      []float64{1, 1, 0.8, 1},
	}
	if d.IsIdentity(16) {
		t.Error("non-nominal speeds reported identity")
	}
	if d.Key() == a.Key() {
		t.Error("speeds must change the key")
	}
}

func TestRankSpeeds(t *testing.T) {
	if RankSpeeds(nil, 4, 2) != nil {
		t.Error("nil speeds must collapse to nil")
	}
	// pp=2, dp=2: replica 0 on devices {0,1}, replica 1 on {2,3}. Rank r is
	// gated by the slowest of its replicas.
	got := RankSpeeds([]float64{1, 0.9, 0.8, 1}, 2, 2)
	want := []float64{0.8, 0.9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RankSpeeds = %v, want %v", got, want)
	}
	// Missing and non-positive entries count as nominal.
	got = RankSpeeds([]float64{0.5, -1}, 2, 2)
	want = []float64{0.5, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RankSpeeds short list = %v, want %v", got, want)
	}
}

func TestUniform(t *testing.T) {
	pl := pipeline.LinearPlacement{D: 4}
	a := Uniform(14, pl, []float64{1, 1, 0.8, 1})
	if !reflect.DeepEqual(a.LayersPerStage, cost.Partition(14, 4)) {
		t.Errorf("uniform split = %v", a.LayersPerStage)
	}
	if !reflect.DeepEqual(a.DeviceOf, []int{0, 1, 2, 3}) {
		t.Errorf("uniform placement = %v, want identity", a.DeviceOf)
	}
	if !reflect.DeepEqual(a.RankSpeed, []float64{1, 1, 0.8, 1}) {
		t.Errorf("uniform rank speeds = %v", a.RankSpeed)
	}
	if Uniform(14, pl, nil).RankSpeed != nil {
		t.Error("homogeneous uniform must carry nil speeds")
	}
}

// skewedModel builds a 12-layer stack where the first layer carries an extra
// embedding-like load and the last an extra LM-head-like load.
func skewedModel() *LayerModel {
	lm := &LayerModel{Work: make([]float64, 12), WeightBytes: make([]float64, 12)}
	for l := range lm.Work {
		lm.Work[l] = 1
		lm.WeightBytes[l] = 1e9
	}
	lm.Work[0] += 2   // embedding
	lm.Work[11] += 3  // LM head
	lm.WeightBytes[0] += 2e9
	lm.WeightBytes[11] += 2e9
	return lm
}

// bottleneck computes the max per-stage duration of a partition under the
// assignment's rank speeds.
func bottleneck(lm *LayerModel, a *Assignment) float64 {
	var worst float64
	l := 0
	for st, n := range a.LayersPerStage {
		var w float64
		for i := 0; i < n; i++ {
			w += lm.Work[l]
			l++
		}
		speed := 1.0
		if st < len(a.RankSpeed) && a.RankSpeed[st] > 0 {
			speed = a.RankSpeed[st]
		}
		if d := w / speed; d > worst {
			worst = d
		}
	}
	return worst
}

// TestCoOptimizeBalancesSkewedStack: on a homogeneous cluster the DP must
// shrink the embedding-heavy first and LM-head-heavy last stages, strictly
// beating the uniform split's bottleneck, with identity placement.
func TestCoOptimizeBalancesSkewedStack(t *testing.T) {
	lm := skewedModel()
	pl := pipeline.LinearPlacement{D: 4}
	a, err := CoOptimize(lm, pl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range a.LayersPerStage {
		total += n
	}
	if total != 12 {
		t.Fatalf("partition %v does not cover 12 layers", a.LayersPerStage)
	}
	if !reflect.DeepEqual(a.DeviceOf, []int{0, 1, 2, 3}) {
		t.Errorf("homogeneous co-opt moved devices: %v", a.DeviceOf)
	}
	if a.RankSpeed != nil {
		t.Errorf("homogeneous co-opt carries speeds: %v", a.RankSpeed)
	}
	uni := Uniform(12, pl, nil)
	if got, base := bottleneck(lm, a), bottleneck(lm, uni); !(got < base) {
		t.Errorf("co-opt bottleneck %g does not beat uniform %g (partition %v)", got, base, a.LayersPerStage)
	}
	if a.LayersPerStage[0] >= 3 || a.LayersPerStage[3] >= 3 {
		t.Errorf("boundary stages not offloaded: %v", a.LayersPerStage)
	}
}

// TestCoOptimizeHetero: with one slow speed slot, the fixpoint must route the
// lightest stage load onto it and strictly beat the uniform identity
// baseline's bottleneck. Two runs on the same inputs must agree exactly.
func TestCoOptimizeHetero(t *testing.T) {
	lm := skewedModel()
	pl := pipeline.LinearPlacement{D: 4}
	speeds := []float64{1, 1, 0.5, 1}
	a, err := CoOptimize(lm, pl, speeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoOptimize(lm, pl, speeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("co-optimize not deterministic: %q vs %q", a.Key(), b.Key())
	}
	// The slow slot (device 2) must play the rank with the smallest load.
	slowRank := -1
	for r, d := range a.DeviceOf {
		if d == 2 {
			slowRank = r
		}
	}
	if slowRank < 0 {
		t.Fatalf("DeviceOf %v is not a permutation", a.DeviceOf)
	}
	if a.RankSpeed[slowRank] != 0.5 {
		t.Errorf("rank %d on slow slot has speed %g", slowRank, a.RankSpeed[slowRank])
	}
	loads := stageLoads(lm, a.LayersPerStage)
	for r, w := range loads {
		if w < loads[slowRank]-1e-12 {
			t.Errorf("rank %d load %g lighter than slow rank's %g", r, w, loads[slowRank])
		}
	}
	uni := Uniform(12, pl, RankSpeeds(speeds, 4, 1))
	if got, base := bottleneck(lm, a), bottleneck(lm, uni); !(got < base) {
		t.Errorf("hetero co-opt bottleneck %g does not beat uniform %g", got, base)
	}
}

// stageLoads sums each stage's layer work under a partition.
func stageLoads(lm *LayerModel, part []int) []float64 {
	loads := make([]float64, len(part))
	l := 0
	for st, n := range part {
		for i := 0; i < n; i++ {
			loads[st] += lm.Work[l]
			l++
		}
	}
	return loads
}

// TestCoOptimizeMemCap: a cap that cannot hold the unconstrained optimum
// steers the DP to a feasible partition; an infeasible cap falls back to the
// even split so the tuner's own memory checks reject the point downstream.
func TestCoOptimizeMemCap(t *testing.T) {
	lm := skewedModel() // 1e9 bytes/layer + 2e9 extra on layers 0 and 11
	pl := pipeline.LinearPlacement{D: 4}
	// 4.5e9 budget per stage: at most 4 plain layers, at most 2 with a heavy
	// boundary layer in the stage.
	a, err := CoOptimize(lm, pl, nil, Options{MemCap: 5e9, FrameworkMem: 0.5e9})
	if err != nil {
		t.Fatal(err)
	}
	l := 0
	for st, n := range a.LayersPerStage {
		var b float64
		for i := 0; i < n; i++ {
			b += lm.WeightBytes[l]
			l++
		}
		if b > 4.5e9 {
			t.Errorf("stage %d holds %g bytes over the 4.5e9 budget (partition %v)", st, b, a.LayersPerStage)
		}
	}
	// No partition fits 1e9-per-layer stacks in a 0.1e9 budget.
	a, err = CoOptimize(lm, pl, nil, Options{MemCap: 0.1e9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.LayersPerStage, cost.Partition(12, 4)) {
		t.Errorf("infeasible cap did not fall back to the even split: %v", a.LayersPerStage)
	}
}

func TestCoOptimizeErrors(t *testing.T) {
	lm := &LayerModel{Work: []float64{1, 1}, WeightBytes: []float64{1, 1}}
	pl := pipeline.LinearPlacement{D: 4}
	if _, err := CoOptimize(lm, pl, nil, Options{}); err == nil {
		t.Error("2 layers over 4 stages accepted")
	}
	lm12 := skewedModel()
	if _, err := CoOptimize(lm12, pl, []float64{1, 1}, Options{}); err == nil {
		t.Error("wrong rank-speed length accepted")
	}
}

// TestCoOptimizeInterleaved: on an interleaved placement each device owns
// several stages; the memory budget is split across them and the result still
// covers every layer exactly once.
func TestCoOptimizeInterleaved(t *testing.T) {
	lm := skewedModel()
	pl := pipeline.InterleavedPlacement{D: 2, V: 2}
	a, err := CoOptimize(lm, pl, []float64{1, 0.8}, Options{MemCap: 20e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.LayersPerStage) != 4 {
		t.Fatalf("want 4 stages, got %v", a.LayersPerStage)
	}
	total := 0
	for _, n := range a.LayersPerStage {
		if n < 1 {
			t.Fatalf("empty stage in %v", a.LayersPerStage)
		}
		total += n
	}
	if total != 12 {
		t.Errorf("partition %v does not cover 12 layers", a.LayersPerStage)
	}
	if len(a.DeviceOf) != 2 || len(a.RankSpeed) != 2 {
		t.Errorf("placement sized %d/%d, want per-device 2", len(a.DeviceOf), len(a.RankSpeed))
	}
}

// TestNewLayerModelFromEstimator: a Stages==Layers estimator maps one stage
// per layer, so the boundary extras land on the first and last entries.
func TestNewLayerModelFromEstimator(t *testing.T) {
	model := cost.LLaMA2_3B
	part := make([]int, model.Layers)
	for i := range part {
		part[i] = 1
	}
	e, err := cost.Analytic(cost.AnalyticConfig{
		Model: model, HW: cost.A100_40G, Stages: model.Layers, MicroBatch: 1, Partition: part,
	})
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLayerModel(e)
	if lm.Layers() != model.Layers {
		t.Fatalf("layer model has %d layers, want %d", lm.Layers(), model.Layers)
	}
	// The token embedding adds parameters to the first layer; the LM-head
	// matmul adds compute (and tied parameters) to the last.
	midW, midB := lm.Work[model.Layers/2], lm.WeightBytes[model.Layers/2]
	if !(lm.WeightBytes[0] > midB) {
		t.Errorf("first layer bytes %g not heavier than mid %g", lm.WeightBytes[0], midB)
	}
	if !(lm.Work[model.Layers-1] > midW) || !(lm.WeightBytes[model.Layers-1] > midB) {
		t.Errorf("last layer not heavier: work %g/%g bytes %g/%g",
			lm.Work[model.Layers-1], midW, lm.WeightBytes[model.Layers-1], midB)
	}
	for l, w := range lm.Work {
		if w <= 0 || math.IsNaN(w) {
			t.Errorf("layer %d work %g", l, w)
		}
	}
}
