package sim_test

import (
	"errors"
	"math"
	"testing"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

func build(t *testing.T, s pipeline.Scheme, cfg scheme.Config) *pipeline.Schedule {
	t.Helper()
	sched, err := scheme.Build(s, cfg)
	if err != nil {
		t.Fatalf("Build(%s, %+v): %v", s, cfg, err)
	}
	return sched
}

func simulate(t *testing.T, s *pipeline.Schedule, e *cost.Estimator, opt sim.Options) *sim.Result {
	t.Helper()
	r, err := sim.Simulate(s, e, opt)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return r
}

// TestRendezvousDeadlockDetected: a crossed schedule (receive posted before
// the send it transitively depends on) is reported as sim.ErrDeadlock under
// rendezvous semantics instead of looping forever.
func TestRendezvousDeadlockDetected(t *testing.T) {
	pl := pipeline.NewLinearPlacement(2)
	s := &pipeline.Schedule{
		Scheme:    pipeline.Scheme1F1B,
		Placement: pl,
		Micros:    1,
		Lists: [][]pipeline.Instr{
			{
				{Kind: pipeline.RecvGrad, Micro: 0, Stage: 0},
				{Kind: pipeline.Forward, Micro: 0, Stage: 0},
				{Kind: pipeline.SendAct, Micro: 0, Stage: 0},
				{Kind: pipeline.Backward, Micro: 0, Stage: 0},
			},
			{
				{Kind: pipeline.RecvAct, Micro: 0, Stage: 1},
				{Kind: pipeline.Forward, Micro: 0, Stage: 1},
				{Kind: pipeline.Backward, Micro: 0, Stage: 1},
				{Kind: pipeline.SendGrad, Micro: 0, Stage: 1},
			},
		},
	}
	e := cost.Uniform(2, 1, 2, 0.25)
	if _, err := sim.Simulate(s, e, sim.Options{Rendezvous: true}); !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// The same cross also deadlocks under eager FIFO semantics (the recv
	// waits on a message whose producer is blocked behind it).
	if _, err := sim.Simulate(s, e, sim.Options{}); !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("eager err = %v, want ErrDeadlock", err)
	}
}

// TestNoTimelineMatchesTimeline: the NoTimeline fast path yields identical
// totals and memory.
func TestNoTimelineMatchesTimeline(t *testing.T) {
	s := build(t, pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	a := simulate(t, s, e, sim.Options{})
	b := simulate(t, s, e, sim.Options{NoTimeline: true})
	if a.Total != b.Total {
		t.Errorf("totals differ: %v vs %v", a.Total, b.Total)
	}
	for d := range a.PeakMem {
		if a.PeakMem[d] != b.PeakMem[d] {
			t.Errorf("dev%d peaks differ", d)
		}
	}
	if b.Timeline != nil {
		t.Error("NoTimeline recorded spans")
	}
}

// TestBottleneckStageDominates: with one slow stage, the makespan grows by
// ≈N × the extra time (the slow stage becomes the pipeline's drum beat).
func TestBottleneckStageDominates(t *testing.T) {
	const d, n = 4, 16
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	e := cost.Uniform(d, 1, 2, 0.25)
	base := simulate(t, s, e, sim.Options{})
	slow := cost.Uniform(d, 1, 2, 0.25)
	slow.FwTime[2] = 2 // stage 2 forward doubles
	slow.BwTime[2] = 4
	r := simulate(t, s, slow, sim.Options{})
	extra := r.Total - base.Total
	// Each of the N micros pays roughly (1 + 2) extra on the slow stage.
	want := float64(n) * 3
	if math.Abs(extra-want) > want*0.35 {
		t.Errorf("slow stage added %v, want ≈%v", extra, want)
	}
}

// TestCommLatencyStretchesPipeline: non-zero p2p time increases the
// makespan and the effect scales with the number of cross-stage hops on the
// critical path.
func TestCommLatencyStretchesPipeline(t *testing.T) {
	const d, n = 4, 8
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	free := cost.Uniform(d, 1, 2, 0.25)
	costly := cost.Uniform(d, 1, 2, 0.25)
	costly.ActP2PBytes = 1
	costly.GradP2PBytes = 1
	costly.LinkBandwidth = 10 // 0.1 per hop
	a := simulate(t, s, free, sim.Options{})
	b := simulate(t, s, costly, sim.Options{})
	if b.Total <= a.Total {
		t.Errorf("comm cost did not stretch the pipeline: %v vs %v", b.Total, a.Total)
	}
}

// TestLaunchOverheadCountsPerInstruction: the framework bias b adds to every
// instruction, so the checkpointed schedule (more instructions) pays more —
// the mechanism behind §6.1's ovlp slowdown on small models.
func TestLaunchOverheadCountsPerInstruction(t *testing.T) {
	const d, n = 4, 8
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	e := cost.Uniform(d, 1, 2, 0.25)
	opt, _, err := graph.Optimize(s, graph.Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	withOvh := cost.Uniform(d, 1, 2, 0.25)
	withOvh.LaunchOverhead = 0.2
	rBase := simulate(t, s, withOvh, sim.Options{})
	rOpt := simulate(t, opt, withOvh, sim.Options{})
	noOvh := cost.Uniform(d, 1, 2, 0.25)
	rBase0 := simulate(t, s, noOvh, sim.Options{})
	rOpt0 := simulate(t, opt, noOvh, sim.Options{})
	gapWith := rOpt.Total / rBase.Total
	gapWithout := rOpt0.Total / rBase0.Total
	if gapWith <= gapWithout {
		t.Errorf("launch overhead should widen the ckpt gap: %v vs %v", gapWith, gapWithout)
	}
}

// TestSplitBackwardSimDurations: BI+WG durations sum to the whole backward.
func TestSplitBackwardSimDurations(t *testing.T) {
	const d, n = 2, 2
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	e := cost.Uniform(d, 1, 2, 0.25)
	e.BwSplitRatio = 0.5
	split, _, err := graph.SplitBackward(s, graph.Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	r := simulate(t, split, e, sim.Options{})
	var bi, wg float64
	for _, spans := range r.Timeline {
		for _, sp := range spans {
			switch sp.Instr.Kind {
			case pipeline.BackwardInput:
				bi += sp.End - sp.Start
			case pipeline.BackwardWeight:
				wg += sp.End - sp.Start
			}
		}
	}
	want := float64(d*n) * 2 / 2 // half of each 2-unit backward per half
	if math.Abs(bi-want) > 1e-9 || math.Abs(wg-want) > 1e-9 {
		t.Errorf("BI time %v, WG time %v, want %v each", bi, wg, want)
	}
}

// TestEstimatorStageMismatchRejected guards the precondition.
func TestEstimatorStageMismatchRejected(t *testing.T) {
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	if _, err := sim.Simulate(s, cost.Uniform(5, 1, 2, 0.25), sim.Options{}); err == nil {
		t.Error("stage mismatch accepted")
	}
}

// TestPeakMemoryStandalone: the exported sim.PeakMemory agrees with Simulate's
// memory accounting.
func TestPeakMemoryStandalone(t *testing.T) {
	s := build(t, pipeline.SchemeInterleave, scheme.Config{Devices: 4, Micros: 8, Chunks: 2})
	e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
	r := simulate(t, s, e, sim.Options{})
	peaks := sim.PeakMemory(s, e)
	for d := range peaks {
		if peaks[d] != r.PeakMem[d] {
			t.Errorf("dev%d: standalone %v vs simulate %v", d, peaks[d], r.PeakMem[d])
		}
	}
}
