package sim

import (
	"fmt"
	"math"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// fifoMsg is one in-flight eager message on a link: which receive it is for
// and when it lands on the receiver.
type fifoMsg struct {
	dev, idx int32
	arrive   float64
}

// commLoc is one slot of the flat communication index: the registered
// instruction's device + 1 (zero = no instruction at this coordinate) and its
// list index.
type commLoc struct {
	dev1, idx int32
}

// commKindIdx maps the four communication kinds onto 0..3 for the flat index.
func commKindIdx(k pipeline.Kind) int {
	switch k {
	case pipeline.SendAct:
		return 0
	case pipeline.RecvAct:
		return 1
	case pipeline.SendGrad:
		return 2
	default: // RecvGrad; callers only pass communication kinds
		return 3
	}
}

// devState is the Simulator's cached per-device view of a schedule.
type devState struct {
	// list is the instruction list the cached metadata was built from. It
	// doubles as the cache key (identity of the backing array + length) and,
	// because the engine retains the reference, guarantees the allocator
	// cannot hand the same address to a different list while the cache entry
	// is alive.
	list  []pipeline.Instr
	metas []meta
	// comm indexes the communication instructions of list, in list order.
	comm []int32
	// posted[i] is the time the device reached instruction i (NaN before);
	// done[i] the completion time of rendezvous receive i. Only maintained in
	// rendezvous mode — eager propagation never reads them.
	posted, done []float64
	// peers accumulates the distinct devices this device's communication
	// matches resolve to — a conservative superset (entries are added on
	// resolution, never removed), used to skip match re-resolution scans for
	// devices with no match into a changed list.
	peers []int32
	// stages lists the distinct stages whose weights the device holds.
	stages []int
	static float64 // framework + owned-weight bytes
	peak   float64 // cached peak memory of list
	busy   float64 // cached compute-busy total of list

	// prev* snapshot the previous list's cached metadata. The graph tuner
	// alternates every device between the current schedule's list and one
	// candidate list, so keeping a depth-2 cache turns the revert back to the
	// current list into a buffer swap instead of a rebuild (durations and the
	// memory walk are recomputed only for genuinely new lists).
	prevList   []pipeline.Instr
	prevMetas  []meta
	prevComm   []int32
	prevPosted []float64
	prevDone   []float64
	prevPeers  []int32
	prevPeak   float64
	prevBusy   float64
}

// swapPrev exchanges the active cached metadata with the snapshot.
func (ds *devState) swapPrev() {
	ds.list, ds.prevList = ds.prevList, ds.list
	ds.metas, ds.prevMetas = ds.prevMetas, ds.metas
	ds.comm, ds.prevComm = ds.prevComm, ds.comm
	ds.posted, ds.prevPosted = ds.prevPosted, ds.posted
	ds.done, ds.prevDone = ds.prevDone, ds.done
	ds.peers, ds.prevPeers = ds.prevPeers, ds.peers
	ds.peak, ds.prevPeak = ds.prevPeak, ds.peak
	ds.busy, ds.prevBusy = ds.prevBusy, ds.busy
}

// Simulator is a reusable simulation engine. Its results are bit-identical to
// the package-level Simulate, but it caches — across calls — everything that
// survives a schedule edit:
//
//   - per-device instruction metadata (durations, communication matches,
//     link ids), keyed on the identity of each device's instruction list, so
//     re-simulating a schedule that shares most lists with a previous call
//     (a copy-on-write Clone candidate) rebuilds metadata only for the
//     devices that actually changed;
//   - per-device peak memory and compute-busy totals, which are pure
//     functions of one device's list;
//   - all propagation working buffers (ready queue, FIFO links, rendezvous
//     scratch), so steady-state re-simulation performs O(1) heap
//     allocations per call regardless of schedule size.
//
// The zero value is ready to use. A Simulator is not safe for concurrent use;
// give each worker goroutine its own.
//
// Caching contract: metadata is keyed on list identity, so instruction lists
// must not be edited in place between calls that hand them to the same
// Simulator. Schedules mutated through pipeline.Schedule's copy-on-write API
// (Clone + MutableList/SetList) always satisfy this, because every edit lands
// in a freshly copied list. The *cost.Estimator must likewise not be mutated
// between calls that pass the same pointer.
type Simulator struct {
	// Sims counts Simulate calls on this engine. It is a plain field — a
	// Simulator is single-goroutine by contract — that the graph and tuner
	// layers read to fold simulation counts into the telemetry registry.
	Sims int64

	// cache key of the bound (schedule family, estimator, options) tuple.
	est       *cost.Estimator
	placement pipeline.Placement
	micros    int
	dp        int
	rdv       bool

	nParts  int
	nStages int

	devs []devState
	// idx locates communication instructions by their dense
	// (kind, part, micro, stage) coordinate — see commSlot. Entries store
	// device+1 so the zero value means "absent" and reset is a memclr.
	idx []commLoc
	// linkLookup maps the dense (from, to, channel) coordinate to a compact
	// link id + 1 (zero = unassigned); nLinks counts assigned ids so the
	// propagation scratch is sized and reset by actual links, not D².
	linkLookup []int32
	nLinks     int

	mem MemSim // reusable memory-walk scratch

	// propagation scratch, reset (not reallocated) every run.
	clock    []float64
	pc       []int
	fifos    [][]fifoMsg
	fifoHead []int
	queue    []int32
	inQueue  []bool
	// linkWait[l] is the device blocked on link l's empty FIFO (-1 none);
	// each link has exactly one receiver, so one slot suffices.
	linkWait []int32
	// rdvWaiters[d] lists devices blocked on a rendezvous peer post by d;
	// waitIdx[w] is the peer instruction index waiter w is watching.
	rdvWaiters [][]int32
	waitIdx    []int32

	changed    []bool
	changedIDs []int32
}

// Simulate runs the dynamic-programming timeline and memory simulation,
// reusing every cache and buffer that is still valid from the previous call.
func (m *Simulator) Simulate(s *pipeline.Schedule, e *cost.Estimator, opt Options) (*Result, error) {
	m.Sims++
	if e.Stages != s.NumStages() {
		return nil, fmt.Errorf("sim: estimator built for %d stages, schedule has %d", e.Stages, s.NumStages())
	}
	dp := opt.DP
	if dp <= 0 {
		dp = 1
	}
	m.bind(s, e, dp, opt.Rendezvous)
	if err := m.refresh(s, e, dp); err != nil {
		// The caches are partially updated; force a full rebuild next call.
		m.est = nil
		return nil, err
	}

	D := len(m.devs)
	res := &Result{
		PeakMem:     make([]float64, D),
		ComputeBusy: make([]float64, D),
	}
	if !opt.NoTimeline {
		// Each instruction records at most one span; exact-capacity slices
		// avoid append's growth-doubling garbage on the timeline path.
		res.Timeline = make([][]Span, D)
		for d := range res.Timeline {
			res.Timeline[d] = make([]Span, 0, len(m.devs[d].list))
		}
	}
	if err := m.propagate(e, opt, res); err != nil {
		return nil, err
	}
	for d := range m.devs {
		res.PeakMem[d] = m.devs[d].peak
		res.ComputeBusy[d] = m.devs[d].busy
	}
	if opt.MemLimit > 0 {
		for d, p := range res.PeakMem {
			if p > opt.MemLimit {
				res.OOM = true
				res.OOMDevices = append(res.OOMDevices, d)
			}
		}
	}
	if res.Total > 0 {
		res.SamplesPerSec = float64(s.Micros*e.MicroBatch*dp) / res.Total
	}
	return res, nil
}

// bind checks the coarse cache key (estimator, placement, micro count, DP,
// rendezvous mode) and resets every cache when it changed. Per-list caches
// are handled separately by refresh.
func (m *Simulator) bind(s *pipeline.Schedule, e *cost.Estimator, dp int, rdv bool) {
	D := s.NumDevices()
	if m.est == e && m.placement == s.Placement && m.micros == s.Micros &&
		m.dp == dp && m.rdv == rdv && len(m.devs) == D {
		return
	}
	m.est, m.placement, m.micros, m.dp, m.rdv = e, s.Placement, s.Micros, dp, rdv
	m.nParts, m.nStages = s.Placement.NumParts(), s.Placement.NumStages()
	if cap(m.devs) >= D {
		m.devs = m.devs[:D]
	} else {
		m.devs = make([]devState, D)
	}
	for d := range m.devs {
		ds := &m.devs[d]
		ds.list = nil
		ds.prevList = nil // snapshots carry the old estimator's durations
		ds.comm = ds.comm[:0]
		ds.peers = ds.peers[:0]
		ds.stages = appendDeviceStages(ds.stages[:0], s.Placement, d)
		static := e.FrameworkMem
		for _, st := range ds.stages {
			static += e.WeightBytes[st]
		}
		ds.static = static
	}
	if need := 4 * m.nParts * m.micros * m.nStages; len(m.idx) == need {
		clear(m.idx)
	} else {
		m.idx = make([]commLoc, need)
	}
	if need := 2 * D * D; len(m.linkLookup) == need {
		clear(m.linkLookup)
	} else {
		m.linkLookup = make([]int32, need)
	}
	m.nLinks = 0
	if cap(m.changed) >= D {
		m.changed = m.changed[:D]
	} else {
		m.changed = make([]bool, D)
	}
}

// refresh re-derives the per-device metadata for every list whose identity
// changed since the previous call, leaving unchanged devices untouched.
func (m *Simulator) refresh(s *pipeline.Schedule, e *cost.Estimator, dp int) error {
	D := len(m.devs)
	m.changedIDs = m.changedIDs[:0]
	for d := 0; d < D; d++ {
		list := s.Lists[d]
		ds := &m.devs[d]
		if len(ds.list) == len(list) && (len(list) == 0 || &ds.list[0] == &list[0]) {
			m.changed[d] = false
			continue
		}
		m.changed[d] = true
		m.changedIDs = append(m.changedIDs, int32(d))
	}
	if len(m.changedIDs) == 0 {
		return nil
	}
	// Drop the stale communication keys of every changed device before any
	// re-registration, so a key that moved between devices resolves to its
	// new location.
	for _, d := range m.changedIDs {
		ds := &m.devs[d]
		for _, ci := range ds.comm {
			if slot := m.commSlot(ds.list[ci].Key()); slot >= 0 {
				m.idx[slot] = commLoc{}
			}
		}
	}
	for _, d := range m.changedIDs {
		m.rebuildDevice(s, e, dp, int(d))
	}
	// Resolve communication matches. A match needs (re-)resolution when its
	// own list changed or when it points into a changed list; matchDev is
	// placement-determined and never changes for an unchanged list. The scan
	// runs device-major in list order — the same order the from-scratch
	// precompute discovered unmatched instructions in, so the first error is
	// byte-identical.
	for d := 0; d < D; d++ {
		ds := &m.devs[d]
		if !m.changed[d] && !anyChanged(m.changed, ds.peers) {
			// No match of this device can point into a changed list: peers
			// is a superset of the devices its resolved matches live on.
			continue
		}
		for _, ci := range ds.comm {
			mt := &ds.metas[ci]
			if !m.changed[d] && mt.matchDev >= 0 && !m.changed[mt.matchDev] {
				continue
			}
			in := ds.list[ci]
			var loc commLoc
			if slot := m.commSlot(s.MatchKey(in)); slot >= 0 {
				loc = m.idx[slot]
			}
			if loc.dev1 == 0 {
				return fmt.Errorf("sim: %s on device %d has no matching instruction", in, d)
			}
			mt.matchDev, mt.matchIdx = loc.dev1-1, loc.idx
			addPeer(&ds.peers, mt.matchDev)
		}
	}
	return nil
}

// anyChanged reports whether any listed device's list changed this refresh.
func anyChanged(changed []bool, devs []int32) bool {
	for _, d := range devs {
		if changed[d] {
			return true
		}
	}
	return false
}

// addPeer records device p in the (tiny, deduplicated) peer set.
func addPeer(peers *[]int32, p int32) {
	for _, q := range *peers {
		if q == p {
			return
		}
	}
	*peers = append(*peers, p)
}

// Holds reports whether the engine's per-device cache still references list
// as device dev's active or snapshot entry. Buffer pools recycling dead
// candidate lists must check this: reusing a buffer the engine still keys on
// would alias new content at a cached identity and poison the cache.
func (m *Simulator) Holds(dev int, list []pipeline.Instr) bool {
	if len(list) == 0 || dev < 0 || dev >= len(m.devs) {
		return false
	}
	ds := &m.devs[dev]
	return (len(ds.list) == len(list) && &ds.list[0] == &list[0]) ||
		(len(ds.prevList) == len(list) && &ds.prevList[0] == &list[0])
}

// Forget drops any cache entry keying device dev on the given list identity,
// making it safe to recycle the list's buffer. Only the identity keys are
// cleared — the metadata buffers stay for capacity reuse — so the next
// Simulate falls back to a full rebuild for entries dropped this way.
func (m *Simulator) Forget(dev int, list []pipeline.Instr) {
	if len(list) == 0 || dev < 0 || dev >= len(m.devs) {
		return
	}
	ds := &m.devs[dev]
	if len(ds.list) == len(list) && &ds.list[0] == &list[0] {
		// The active entry owns this device's registrations in the comm
		// index; retract them now, since the next refresh's stale-key drop
		// walks the (cleared) list.
		for _, ci := range ds.comm {
			if slot := m.commSlot(ds.list[ci].Key()); slot >= 0 {
				m.idx[slot] = commLoc{}
			}
		}
		ds.list = nil
		ds.comm = ds.comm[:0]
	}
	if len(ds.prevList) == len(list) && &ds.prevList[0] == &list[0] {
		// Snapshot entries hold no comm-index registrations.
		ds.prevList = nil
	}
}

// commSlot returns the flat m.idx slot of a communication key, or -1 when its
// coordinates fall outside the schedule's (part, micro, stage) space — such
// keys are simply never found, the behaviour a hash index gave them.
func (m *Simulator) commSlot(k pipeline.Key) int {
	if k.Micro < 0 || k.Micro >= m.micros ||
		k.Part < 0 || k.Part >= m.nParts ||
		k.Stage < 0 || k.Stage >= m.nStages {
		return -1
	}
	return ((commKindIdx(k.Kind)*m.nParts+k.Part)*m.micros+k.Micro)*m.nStages + k.Stage
}

// rebuildDevice recomputes device d's cached metadata, memory peak, and busy
// total from its current list. Communication matches are left unresolved;
// refresh resolves them after all changed devices re-registered their keys.
func (m *Simulator) rebuildDevice(s *pipeline.Schedule, e *cost.Estimator, dp int, d int) {
	list := s.Lists[d]
	ds := &m.devs[d]
	// The snapshot of the second-to-last list restores with a buffer swap
	// plus key re-registration (refresh's delete phase dropped this device's
	// keys); durations, matches-so-far, peak and busy are all still valid.
	if len(ds.prevList) == len(list) && (len(list) == 0 || &ds.prevList[0] == &list[0]) {
		ds.swapPrev()
		for _, ci := range ds.comm {
			if slot := m.commSlot(ds.list[ci].Key()); slot >= 0 {
				m.idx[slot] = commLoc{dev1: int32(d) + 1, idx: ci}
			}
		}
		if m.rdv {
			ds.posted = growF64(ds.posted, len(list))
			ds.done = growF64(ds.done, len(list))
		}
		return
	}
	ds.swapPrev() // retire the outgoing metadata into the snapshot slot
	ds.list = list
	if cap(ds.metas) >= len(list) {
		ds.metas = ds.metas[:len(list)]
	} else {
		ds.metas = make([]meta, len(list))
	}
	ds.comm = ds.comm[:0]
	ds.peers = ds.peers[:0]
	busy := 0.0
	for i, in := range list {
		mt := &ds.metas[i]
		*mt = meta{matchDev: -1, matchIdx: -1}
		switch in.Kind {
		case pipeline.Forward, pipeline.CkptForward:
			mt.dur = e.LaunchOverhead + e.FwTime[in.Stage]
			mt.compute = true
		case pipeline.Backward:
			mt.dur = e.LaunchOverhead + e.BwTime[in.Stage]
			mt.compute = true
		case pipeline.BackwardInput:
			mt.dur = e.LaunchOverhead + e.BwTime[in.Stage]*e.BwSplitRatio
			mt.compute = true
		case pipeline.BackwardWeight:
			mt.dur = e.LaunchOverhead + e.BwTime[in.Stage]*(1-e.BwSplitRatio)
			mt.compute = true
		case pipeline.Recompute:
			mt.dur = e.LaunchOverhead + e.RcTime[in.Stage]
			mt.compute = true
		case pipeline.AllReduce:
			mt.dur = e.LaunchOverhead + e.AllReduceTime(dp, ds.stages)
			mt.compute = true
		case pipeline.OptimizerStep:
			mt.dur = e.LaunchOverhead + e.OptTime
			mt.compute = true
		case pipeline.SendAct, pipeline.SendGrad, pipeline.RecvAct, pipeline.RecvGrad:
			bytes := e.ActP2PBytes
			if in.Kind == pipeline.SendGrad || in.Kind == pipeline.RecvGrad {
				bytes = e.GradP2PBytes
			}
			mt.comm = e.CommTime(bytes)
			peer := s.PeerDevice(d, in)
			var from, to int
			if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
				mt.class = classSend
				from, to = d, peer
			} else {
				mt.class = classRecv
				from, to = peer, d
			}
			// An out-of-range peer means the match is missing; refresh
			// reports that before propagation can touch the dummy link.
			if D := len(m.devs); peer >= 0 && peer < D {
				ls := (from*D+to)*2 + channelOf(in.Kind)
				id := m.linkLookup[ls] - 1
				if id < 0 {
					id = int32(m.nLinks)
					m.nLinks++
					m.linkLookup[ls] = id + 1
				}
				mt.link = id
			}
			if slot := m.commSlot(in.Key()); slot >= 0 {
				m.idx[slot] = commLoc{dev1: int32(d) + 1, idx: int32(i)}
			}
			ds.comm = append(ds.comm, int32(i))
		default:
			mt.dur = e.LaunchOverhead
		}
		if mt.compute {
			busy += mt.dur
		}
	}
	ds.busy = busy

	m.mem.rebind(e, s.Micros, s.NumStages(), ds.static, list)
	for _, in := range list {
		m.mem.Step(in)
	}
	ds.peak = m.mem.Peak()

	if m.rdv {
		ds.posted = growF64(ds.posted, len(list))
		ds.done = growF64(ds.done, len(list))
	}
}

// propagate runs the event-driven earliest-start-time propagation: each
// device advances until it blocks on a dependency, registers itself as a
// waiter, and is re-enqueued exactly when the dependency is satisfied —
// replacing the O(D × passes) round-robin retry sweep. The computed times are
// a pure dataflow fixpoint, so they are independent of wake order and
// bit-identical to the round-robin result.
func (m *Simulator) propagate(e *cost.Estimator, opt Options, res *Result) error {
	D := len(m.devs)
	m.clock = growF64(m.clock, D)
	m.pc = growInt(m.pc, D)
	for d := 0; d < D; d++ {
		m.clock[d] = 0
		m.pc[d] = 0
	}
	nLinks := m.nLinks
	if cap(m.fifos) >= nLinks {
		m.fifos = m.fifos[:nLinks]
	} else {
		grown := make([][]fifoMsg, nLinks)
		copy(grown, m.fifos) // keep the per-link buffers already allocated
		m.fifos = grown
	}
	m.fifoHead = growInt(m.fifoHead, nLinks)
	m.linkWait = growInt32(m.linkWait, nLinks)
	for l := 0; l < nLinks; l++ {
		m.fifos[l] = m.fifos[l][:0]
		m.fifoHead[l] = 0
		m.linkWait[l] = -1
	}
	if opt.Rendezvous {
		for d := range m.devs {
			ds := &m.devs[d]
			fillNaN(ds.posted)
			fillNaN(ds.done)
		}
		if cap(m.rdvWaiters) >= D {
			m.rdvWaiters = m.rdvWaiters[:D]
		} else {
			grown := make([][]int32, D)
			copy(grown, m.rdvWaiters)
			m.rdvWaiters = grown
		}
		for d := 0; d < D; d++ {
			m.rdvWaiters[d] = m.rdvWaiters[d][:0]
		}
		m.waitIdx = growInt32(m.waitIdx, D)
	}
	m.inQueue = growBool(m.inQueue, D)
	m.queue = m.queue[:0]
	for d := 0; d < D; d++ {
		m.inQueue[d] = true
		m.queue = append(m.queue, int32(d))
	}

	for head := 0; head < len(m.queue); head++ {
		d := int(m.queue[head])
		m.inQueue[d] = false
		if err := m.runDevice(d, e, opt, res); err != nil {
			return err
		}
		if opt.Rendezvous {
			m.wakeRendezvous(d)
		}
	}

	for d := 0; d < D; d++ {
		if m.pc[d] < len(m.devs[d].list) {
			return fmt.Errorf("%w: device %d blocked at %s", ErrDeadlock, d, m.devs[d].list[m.pc[d]])
		}
		if m.clock[d] > res.Total {
			res.Total = m.clock[d]
		}
	}
	return nil
}

// runDevice advances device d until it finishes or blocks.
func (m *Simulator) runDevice(d int, e *cost.Estimator, opt Options, res *Result) error {
	ds := &m.devs[d]
	list := ds.list
	metas := ds.metas
	i := m.pc[d]
	clock := m.clock[d]
	for i < len(list) {
		mt := &metas[i]
		start := clock
		if opt.Rendezvous && math.IsNaN(ds.posted[i]) {
			ds.posted[i] = start
		}
		switch mt.class {
		case classCompute:
			clock = start + mt.dur
		case classSend:
			if opt.Rendezvous {
				peer := &m.devs[mt.matchDev]
				peerPost := peer.posted[mt.matchIdx]
				if math.IsNaN(peerPost) {
					m.waitIdx[d] = mt.matchIdx
					m.rdvWaiters[mt.matchDev] = append(m.rdvWaiters[mt.matchDev], int32(d))
					goto blocked
				}
				t := max64(start, peerPost) + e.LaunchOverhead + mt.comm
				peer.done[mt.matchIdx] = t
				clock = t
			} else {
				m.fifos[mt.link] = append(m.fifos[mt.link], fifoMsg{
					dev: mt.matchDev, idx: mt.matchIdx,
					arrive: start + e.LaunchOverhead + mt.comm,
				})
				clock = start + e.LaunchOverhead
				if w := m.linkWait[mt.link]; w >= 0 {
					m.linkWait[mt.link] = -1
					m.enqueue(w)
				}
			}
		case classRecv:
			if opt.Rendezvous {
				if t := ds.done[i]; !math.IsNaN(t) {
					clock = t
					break
				}
				peerPost := m.devs[mt.matchDev].posted[mt.matchIdx]
				if math.IsNaN(peerPost) {
					m.waitIdx[d] = mt.matchIdx
					m.rdvWaiters[mt.matchDev] = append(m.rdvWaiters[mt.matchDev], int32(d))
					goto blocked
				}
				t := max64(start, peerPost) + e.LaunchOverhead + mt.comm
				ds.done[i] = t
				clock = t
			} else {
				q := m.fifos[mt.link]
				h := m.fifoHead[mt.link]
				if h >= len(q) {
					m.linkWait[mt.link] = int32(d)
					goto blocked
				}
				msg := q[h]
				if int(msg.dev) != d || int(msg.idx) != i {
					m.pc[d], m.clock[d] = i, clock
					return fmt.Errorf("%w: device %d expects %s but link head is for dev%d[%d]",
						ErrCommMismatch, d, list[i], msg.dev, msg.idx)
				}
				m.fifoHead[mt.link] = h + 1
				clock = max64(start+e.LaunchOverhead, msg.arrive)
			}
		}
		if !opt.NoTimeline {
			res.Timeline[d] = append(res.Timeline[d], Span{Instr: list[i], Start: start, End: clock})
		}
		i++
	}
blocked:
	m.pc[d], m.clock[d] = i, clock
	return nil
}

// wakeRendezvous re-enqueues every device whose awaited post on d appeared
// during d's last run segment.
func (m *Simulator) wakeRendezvous(d int) {
	ws := m.rdvWaiters[d]
	if len(ws) == 0 {
		return
	}
	posted := m.devs[d].posted
	kept := ws[:0]
	for _, w := range ws {
		if math.IsNaN(posted[m.waitIdx[w]]) {
			kept = append(kept, w)
		} else {
			m.enqueue(w)
		}
	}
	m.rdvWaiters[d] = kept
}

func (m *Simulator) enqueue(d int32) {
	if !m.inQueue[d] {
		m.inQueue[d] = true
		m.queue = append(m.queue, d)
	}
}

func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growInt(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growBool(s []bool, n int) []bool {
	if cap(s) >= n {
		s = s[:n]
	} else {
		s = make([]bool, n)
	}
	for i := range s {
		s[i] = false
	}
	return s
}

func fillNaN(s []float64) {
	nan := math.NaN()
	for i := range s {
		s[i] = nan
	}
}
