package sim

import (
	"fmt"
	"math"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// fifoMsg is one in-flight eager message on a link: which receive it is for
// and when it lands on the receiver.
type fifoMsg struct {
	dev, idx int32
	arrive   float64
}

// commLoc is one slot of the flat communication index: the registered
// instruction's device + 1 (zero = no instruction at this coordinate) and its
// list index.
type commLoc struct {
	dev1, idx int32
}

// commKindIdx maps the four communication kinds onto 0..3 for the flat index.
func commKindIdx(k pipeline.Kind) int {
	switch k {
	case pipeline.SendAct:
		return 0
	case pipeline.RecvAct:
		return 1
	case pipeline.SendGrad:
		return 2
	default: // RecvGrad; callers only pass communication kinds
		return 3
	}
}

// devState is the Simulator's cached per-device view of a schedule.
type devState struct {
	// list is the instruction list the cached metadata was built from. It
	// doubles as the cache key (identity of the backing array + length) and,
	// because the engine retains the reference, guarantees the allocator
	// cannot hand the same address to a different list while the cache entry
	// is alive.
	list  []pipeline.Instr
	metas []meta
	// comm indexes the communication instructions of list, in list order.
	comm []int32
	// posted[i] is the time the device reached instruction i (NaN before);
	// done[i] the completion time of rendezvous receive i. Only maintained in
	// rendezvous mode — eager propagation never reads them.
	posted, done []float64
	// peers accumulates the distinct devices this device's communication
	// matches resolve to — a conservative superset (entries are added on
	// resolution, never removed), used to skip match re-resolution scans for
	// devices with no match into a changed list.
	peers []int32
	// stages lists the distinct stages whose weights the device holds.
	stages []int
	arDur  float64 // AllReduce duration for this device's stage set
	slow   float64 // compute slowdown multiplier (1 = nominal speed)
	static float64 // framework + owned-weight bytes
	peak   float64 // cached peak memory of list
	busy   float64 // cached compute-busy total of list

	// prev* snapshot the previous list's cached metadata. The graph tuner
	// alternates every device between the current schedule's list and one
	// candidate list, so keeping a depth-2 cache turns the revert back to the
	// current list into a buffer swap instead of a rebuild (durations and the
	// memory walk are recomputed only for genuinely new lists).
	prevList   []pipeline.Instr
	prevMetas  []meta
	prevComm   []int32
	prevPosted []float64
	prevDone   []float64
	prevPeers  []int32
	prevPeak   float64
	prevBusy   float64

	// own is the engine-owned copy buffer Detach re-keys list onto when the
	// caller reclaims the simulated schedule's storage.
	own []pipeline.Instr
}

// swapPrev exchanges the active cached metadata with the snapshot.
func (ds *devState) swapPrev() {
	ds.list, ds.prevList = ds.prevList, ds.list
	ds.metas, ds.prevMetas = ds.prevMetas, ds.metas
	ds.comm, ds.prevComm = ds.prevComm, ds.comm
	ds.posted, ds.prevPosted = ds.prevPosted, ds.posted
	ds.done, ds.prevDone = ds.prevDone, ds.done
	ds.peers, ds.prevPeers = ds.prevPeers, ds.peers
	ds.peak, ds.prevPeak = ds.prevPeak, ds.peak
	ds.busy, ds.prevBusy = ds.prevBusy, ds.busy
}

// Simulator is a reusable simulation engine. Its results are bit-identical to
// the package-level Simulate, but it caches — across calls — everything that
// survives a schedule edit:
//
//   - per-device instruction metadata (durations, communication matches,
//     link ids), keyed on the identity of each device's instruction list, so
//     re-simulating a schedule that shares most lists with a previous call
//     (a copy-on-write Clone candidate) rebuilds metadata only for the
//     devices that actually changed;
//   - per-device peak memory and compute-busy totals, which are pure
//     functions of one device's list;
//   - all propagation working buffers (ready queue, FIFO links, rendezvous
//     scratch), so steady-state re-simulation performs O(1) heap
//     allocations per call regardless of schedule size.
//
// The zero value is ready to use. A Simulator is not safe for concurrent use;
// give each worker goroutine its own.
//
// Caching contract: metadata is keyed on list identity, so instruction lists
// must not be edited in place between calls that hand them to the same
// Simulator. Schedules mutated through pipeline.Schedule's copy-on-write API
// (Clone + MutableList/SetList) always satisfy this, because every edit lands
// in a freshly copied list. The *cost.Estimator must likewise not be mutated
// between calls that pass the same pointer.
type Simulator struct {
	// Sims counts Simulate calls on this engine. It is a plain field — a
	// Simulator is single-goroutine by contract — that the graph and tuner
	// layers read to fold simulation counts into the telemetry registry.
	Sims int64

	// cache key of the bound (schedule family, estimator, options) tuple.
	est       *cost.Estimator
	placement pipeline.Placement
	micros    int
	dp        int
	rdv       bool

	nParts  int
	nStages int

	devs []devState
	// idx locates communication instructions by their dense
	// (kind, part, micro, stage) coordinate — see commSlot. Entries store
	// device+1 so the zero value means "absent" and reset is a memclr.
	idx []commLoc
	// linkLookup maps the dense (from, to, channel) coordinate to a compact
	// link id + 1 (zero = unassigned); nLinks counts assigned ids so the
	// propagation scratch is sized and reset by actual links, not D².
	linkLookup []int32
	nLinks     int

	mem MemSim // reusable memory-walk scratch

	// durTab caches per-(kind, stage) compute durations and actComm/gradComm
	// the two p2p transfer latencies, all derived from the bound estimator;
	// rebuildDevice fills metas from these instead of re-deriving per
	// instruction. peerTab lazily caches the placement-determined peer
	// device of each (comm kind, part, stage) coordinate (-2 = not yet
	// derived).
	durTab            []float64
	actComm, gradComm float64
	peerTab           []int32

	// propagation scratch, reset (not reallocated) every run.
	clock    []float64
	pc       []int
	fifos    [][]fifoMsg
	fifoHead []int
	queue    []int32
	inQueue  []bool
	// linkWait[l] is the device blocked on link l's empty FIFO (-1 none);
	// each link has exactly one receiver, so one slot suffices.
	linkWait []int32
	// rdvWaiters[d] lists devices blocked on a rendezvous peer post by d;
	// waitIdx[w] is the peer instruction index waiter w is watching.
	rdvWaiters [][]int32
	waitIdx    []int32

	changed    []bool
	changedIDs []int32
	// plan[d] is the rebuild strategy refresh chose for device d this call;
	// moved[d] marks devices whose instruction positions inside
	// [winLo[d], winHi[d]) may have changed, so only matches pointing into
	// that range need re-resolution.
	plan         []int8
	moved        []bool
	winLo, winHi []int32

	// last is the delta-simulation snapshot of the previous successful run;
	// restart/coneStack are the dirty-cone scratch (see delta.go).
	last fixpoint
	// base is a pinned copy of the first adopting run's fixpoint after a
	// Detach (or engine reset): an optimization run's search walks away from
	// its starting schedule, but the NEXT run over the same inputs starts
	// from that same content again — restoring base turns its baseline
	// simulation into a pure splice. basePinned marks base as holding this
	// run's starting fixpoint; baseUse arms the one-shot restore.
	base       fixpoint
	basePinned bool
	baseUse    bool
	restart    []int
	coneStack  []int32
	// convIdx[d] is the replay index from which device d may converge back
	// onto the snapshot timings (maxInt outside delta replays); convSuf,
	// resolved and lastDiffSend are its inputs — see propagateDelta.
	convIdx []int
	convSuf []int
	// resolved[d] reports that every send of device d has a determined
	// arrival this run (the device finished or spliced); lastDiffSend[d] is
	// the last send index whose replayed completion differed bitwise from
	// the snapshot, -1 when none did.
	resolved     []bool
	lastDiffSend []int
	// outT[d] is runDevice's completion-clock write target: the snapshot
	// arrays for runs that adopt their fixpoint, the probeT scratch for
	// probe runs. inDelta gates the per-send snapshot comparison.
	outT    [][]float64
	probeT  [][]float64
	inDelta bool
	// wrote[d] bounds the probeT entries the last delta run actually wrote
	// for device d ([restart, wrote)); a spliced device stops early and the
	// rest stays snapshot data. probeOK marks that the engine's most recent
	// call was a successful probe delta run, making Commit applicable.
	wrote   []int
	probeOK bool
	stats   DeltaStats
}

// Simulate runs the dynamic-programming timeline and memory simulation,
// reusing every cache and buffer that is still valid from the previous call.
func (m *Simulator) Simulate(s *pipeline.Schedule, e *cost.Estimator, opt Options) (*Result, error) {
	m.Sims++
	m.probeOK = false
	if e.Stages != s.NumStages() {
		return nil, fmt.Errorf("sim: estimator built for %d stages, schedule has %d", e.Stages, s.NumStages())
	}
	dp := opt.DP
	if dp <= 0 {
		dp = 1
	}
	m.bind(s, e, dp, opt.Rendezvous)
	if err := m.refresh(s, e, dp); err != nil {
		// The caches are partially updated; force a full rebuild next call.
		m.est = nil
		return nil, err
	}
	if m.baseUse {
		m.baseUse = false
		if m.base.valid {
			m.restoreBase()
		}
	}

	D := len(m.devs)
	res := &Result{
		PeakMem:     make([]float64, D),
		ComputeBusy: make([]float64, D),
	}
	if !opt.NoTimeline {
		// Each instruction records at most one span; exact-capacity slices
		// avoid append's growth-doubling garbage on the timeline path.
		res.Timeline = make([][]Span, D)
		for d := range res.Timeline {
			res.Timeline[d] = make([]Span, 0, len(m.devs[d].list))
		}
	}
	if m.deltaEligible(opt) {
		// The replay-and-splice path never records spans inline (spliced
		// instructions are not executed); run it span-free and synthesize the
		// timeline from the completion clocks afterwards.
		dopt := opt
		dopt.NoTimeline = true
		if err := m.propagateDelta(e, dopt, res); err != nil {
			return nil, err
		}
		if !opt.NoTimeline {
			m.synthTimeline(res)
		}
	} else {
		m.stats.Full++
		m.ensureEndT()
		m.outT = m.last.endT
		m.inDelta = false
		if err := m.propagate(e, opt, res); err != nil {
			m.last.valid = false
			return nil, err
		}
		m.saveFixpoint(opt)
	}
	for d := range m.devs {
		res.PeakMem[d] = m.devs[d].peak
		res.ComputeBusy[d] = m.devs[d].busy
	}
	if opt.MemLimit > 0 {
		for d, p := range res.PeakMem {
			if p > opt.MemLimit {
				res.OOM = true
				res.OOMDevices = append(res.OOMDevices, d)
			}
		}
	}
	if res.Total > 0 {
		res.SamplesPerSec = float64(s.Micros*e.MicroBatch*dp) / res.Total
	}
	if !opt.Probe && m.last.valid && !m.basePinned {
		m.pinBase()
	}
	return res, nil
}

// Invalidate drops every cached list identity and the delta snapshot while
// keeping the engine's buffers for capacity reuse. Callers that pool warm
// engines across independent optimization runs must call it before an engine
// changes hands: cached identities may alias memory the previous run's
// caller now owns (and may mutate), so the next Simulate must rebuild from
// the actual schedule contents.
func (m *Simulator) Invalidate() {
	m.est = nil // bind treats a nil estimator as "rebuild everything"
	m.last.valid = false
	m.probeOK = false
	m.base.valid = false
	m.basePinned = false
	m.baseUse = false
}

// Detach re-keys every cached list onto an engine-owned copy so a pooled
// engine survives its caller reclaiming — and later mutating — the result
// schedule's lists. It is the cheap alternative to Invalidate when the next
// run is likely a near-identical schedule (a tuner sweeping neighbouring
// grid points, a benchmark loop): contents are copied verbatim, the next
// Simulate sees every device as identity-changed and diffs by value against
// the copies, so warm metadata, cached memory walks and the delta snapshot
// keep paying off instead of being rebuilt from scratch. The depth-2 revert
// snapshot is dropped — its lists may alias recycled candidate buffers the
// caller's pools are free to overwrite.
func (m *Simulator) Detach() {
	m.probeOK = false
	for d := range m.devs {
		ds := &m.devs[d]
		ds.prevList = nil
		if ds.list == nil {
			continue
		}
		old := ds.list
		ds.own = append(ds.own[:0], old...)
		ds.list = ds.own
		if d < len(m.last.lists) {
			if sameIdent(m.last.lists[d], old) {
				m.last.lists[d] = ds.own
			} else {
				// The snapshot ran on some other identity we no longer
				// retain; forget the device so it replays from scratch.
				m.last.lists[d] = nil
			}
		}
		if d < len(m.base.lists) && sameIdent(m.base.lists[d], old) {
			m.base.lists[d] = ds.own
		}
	}
	// Arm the one-shot base restore: the next caller's first simulation is
	// usually the same starting content this run began from. Unpin so that
	// first adopting run re-pins base onto its fresh identities.
	m.baseUse = m.base.valid && m.basePinned
	m.basePinned = false
}

// sameIdent reports whether two slices share identity: same length and same
// backing array start.
func sameIdent(a, b []pipeline.Instr) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// bind checks the coarse cache key (estimator, placement, micro count, DP,
// rendezvous mode) and resets every cache when it changed. Per-list caches
// are handled separately by refresh.
func (m *Simulator) bind(s *pipeline.Schedule, e *cost.Estimator, dp int, rdv bool) {
	D := s.NumDevices()
	if m.est == e && m.placement == s.Placement && m.micros == s.Micros &&
		m.dp == dp && m.rdv == rdv && len(m.devs) == D {
		return
	}
	m.est, m.placement, m.micros, m.dp, m.rdv = e, s.Placement, s.Micros, dp, rdv
	m.last.valid = false
	m.base.valid = false
	m.basePinned = false
	m.baseUse = false
	m.nParts, m.nStages = s.Placement.NumParts(), s.Placement.NumStages()
	if cap(m.devs) >= D {
		m.devs = m.devs[:D]
	} else {
		m.devs = make([]devState, D)
	}
	for d := range m.devs {
		ds := &m.devs[d]
		ds.list = nil
		ds.prevList = nil // snapshots carry the old estimator's durations
		ds.comm = ds.comm[:0]
		ds.peers = ds.peers[:0]
		ds.stages = appendDeviceStages(ds.stages[:0], s.Placement, d)
		// Multiplying by the homogeneous slowdown 1 is bit-exact, so the
		// scale is applied unconditionally.
		ds.slow = e.SlowOf(d)
		ds.arDur = e.LaunchOverhead + e.AllReduceTime(dp, ds.stages)*ds.slow
		static := e.FrameworkMem
		for _, st := range ds.stages {
			static += e.WeightBytes[st]
		}
		ds.static = static
	}
	m.durTab = growF64(m.durTab, int(pipeline.BackwardWeight+1)*m.nStages)
	for st := 0; st < m.nStages; st++ {
		m.durTab[int(pipeline.Forward)*m.nStages+st] = e.LaunchOverhead + e.FwTime[st]
		m.durTab[int(pipeline.CkptForward)*m.nStages+st] = e.LaunchOverhead + e.FwTime[st]
		m.durTab[int(pipeline.Backward)*m.nStages+st] = e.LaunchOverhead + e.BwTime[st]
		m.durTab[int(pipeline.BackwardInput)*m.nStages+st] = e.LaunchOverhead + e.BwTime[st]*e.BwSplitRatio
		m.durTab[int(pipeline.BackwardWeight)*m.nStages+st] = e.LaunchOverhead + e.BwTime[st]*(1-e.BwSplitRatio)
		m.durTab[int(pipeline.Recompute)*m.nStages+st] = e.LaunchOverhead + e.RcTime[st]
		m.durTab[int(pipeline.OptimizerStep)*m.nStages+st] = e.LaunchOverhead + e.OptTime
	}
	m.actComm, m.gradComm = e.CommTime(e.ActP2PBytes), e.CommTime(e.GradP2PBytes)
	nCoord := 4 * m.nParts * m.nStages
	m.peerTab = growInt32(m.peerTab, nCoord)
	for i := 0; i < nCoord; i++ {
		m.peerTab[i] = -2 // not yet derived
	}
	if need := 4 * m.nParts * m.micros * m.nStages; len(m.idx) == need {
		clear(m.idx)
	} else {
		m.idx = make([]commLoc, need)
	}
	if need := 2 * D * D; len(m.linkLookup) == need {
		clear(m.linkLookup)
	} else {
		m.linkLookup = make([]int32, need)
	}
	m.nLinks = 0
	if cap(m.changed) >= D {
		m.changed = m.changed[:D]
	} else {
		m.changed = make([]bool, D)
	}
}

// refresh re-derives the per-device metadata for every list whose identity
// changed since the previous call, leaving unchanged devices untouched.
// Rebuild plans refresh assigns to changed devices. A permutation window
// (planRekey, planWindow) preserves the communication key multiset exactly —
// Buffered is not part of the key — so those devices keep their registry
// entries and skip the stale-key drop; only moved indices re-register.
const (
	planNone   int8 = iota // identity unchanged
	planSwap               // depth-2 snapshot restore (buffer swap)
	planRekey              // content-identical list under a new identity
	planWindow             // permutation window rebuild
	planFull               // full metadata rebuild
)

func (m *Simulator) refresh(s *pipeline.Schedule, e *cost.Estimator, dp int) error {
	D := len(m.devs)
	m.changedIDs = m.changedIDs[:0]
	if cap(m.plan) >= D {
		m.plan = m.plan[:D]
		m.moved = m.moved[:D]
		m.winLo = m.winLo[:D]
		m.winHi = m.winHi[:D]
	} else {
		m.plan = make([]int8, D)
		m.moved = make([]bool, D)
		m.winLo = make([]int32, D)
		m.winHi = make([]int32, D)
	}
	for d := 0; d < D; d++ {
		list := s.Lists[d]
		ds := &m.devs[d]
		if len(ds.list) == len(list) && (len(list) == 0 || &ds.list[0] == &list[0]) {
			m.changed[d] = false
			m.plan[d] = planNone
			m.moved[d] = false
			continue
		}
		m.changed[d] = true
		m.changedIDs = append(m.changedIDs, int32(d))
		if len(ds.prevList) == len(list) && (len(list) == 0 || &ds.prevList[0] == &list[0]) {
			m.plan[d] = planSwap
			m.moved[d] = true
			m.winLo[d], m.winHi[d] = 0, int32(len(list))
			continue
		}
		if old := ds.list; old != nil && !m.rdv && len(old) == len(list) {
			if lo, hi, flips, nFlips, ok := permWindow(old, list); ok &&
				suffixFlipFree(list, hi, &flips, nFlips) &&
				windowPairingPreserved(old, list, lo, hi) {
				if lo == len(list) {
					m.plan[d] = planRekey
					m.moved[d] = false
				} else {
					m.plan[d] = planWindow
					m.moved[d] = true
					m.winLo[d], m.winHi[d] = int32(lo), int32(hi)
				}
				continue
			}
		}
		m.plan[d] = planFull
		m.moved[d] = true
		m.winLo[d], m.winHi[d] = 0, int32(len(list))
	}
	if len(m.changedIDs) == 0 {
		return nil
	}
	// Drop the stale communication keys of every device whose key set may
	// change, before any re-registration, so a key that moved between
	// devices resolves to its new location. Permutation-window devices
	// (planRekey/planWindow) keep the exact key multiset and skip the drop;
	// their moved indices re-register during the rebuild.
	for _, d := range m.changedIDs {
		if p := m.plan[d]; p == planRekey || p == planWindow {
			continue
		}
		ds := &m.devs[d]
		for _, ci := range ds.comm {
			if slot := m.commSlot(ds.list[ci].Key()); slot >= 0 {
				m.idx[slot] = commLoc{}
			}
		}
	}
	for _, d := range m.changedIDs {
		m.rebuildDevice(s, e, dp, int(d))
	}
	// Resolve communication matches. A match needs (re-)resolution when its
	// own metadata was rebuilt from scratch (planSwap restores two-
	// generations-old matches, planFull starts unresolved) or when it points
	// into a moved index range of a peer; matchDev is placement-determined
	// and never changes for an unchanged list, and positions outside a
	// peer's window are untouched by its rebuild. The scan runs device-major
	// in list order — the same order the from-scratch precompute discovered
	// unmatched instructions in, so the first error is byte-identical.
	for d := 0; d < D; d++ {
		ds := &m.devs[d]
		if !m.changed[d] && !anyChanged(m.moved, ds.peers) {
			// No match of this device can point into a moved list region:
			// peers is a superset of the devices its matches resolve to.
			continue
		}
		ownFresh := m.plan[d] == planSwap || m.plan[d] == planFull
		for _, ci := range ds.comm {
			mt := &ds.metas[ci]
			if !ownFresh && mt.matchDev >= 0 {
				if p := mt.matchDev; !m.moved[p] || mt.matchIdx < m.winLo[p] || mt.matchIdx >= m.winHi[p] {
					continue
				}
			}
			in := ds.list[ci]
			var loc commLoc
			if slot := m.commSlot(s.MatchKey(in)); slot >= 0 {
				loc = m.idx[slot]
			}
			if loc.dev1 == 0 {
				return fmt.Errorf("sim: %s on device %d has no matching instruction", in, d)
			}
			mt.matchDev, mt.matchIdx = loc.dev1-1, loc.idx
			addPeer(&ds.peers, mt.matchDev)
		}
	}
	return nil
}

// anyChanged reports whether any listed device's list changed this refresh.
func anyChanged(changed []bool, devs []int32) bool {
	for _, d := range devs {
		if changed[d] {
			return true
		}
	}
	return false
}

// addPeer records device p in the (tiny, deduplicated) peer set.
func addPeer(peers *[]int32, p int32) {
	for _, q := range *peers {
		if q == p {
			return
		}
	}
	*peers = append(*peers, p)
}

// Holds reports whether the engine's per-device cache still references list
// as device dev's active or snapshot entry. Buffer pools recycling dead
// candidate lists must check this: reusing a buffer the engine still keys on
// would alias new content at a cached identity and poison the cache.
func (m *Simulator) Holds(dev int, list []pipeline.Instr) bool {
	if len(list) == 0 || dev < 0 || dev >= len(m.devs) {
		return false
	}
	ds := &m.devs[dev]
	if (len(ds.list) == len(list) && &ds.list[0] == &list[0]) ||
		(len(ds.prevList) == len(list) && &ds.prevList[0] == &list[0]) {
		return true
	}
	// The delta snapshot also keys on list identity (the value diff reads the
	// old contents), so it pins buffers the same way the metadata cache does.
	if dev < len(m.last.lists) {
		if old := m.last.lists[dev]; len(old) == len(list) && &old[0] == &list[0] {
			return true
		}
	}
	// So does the pinned base fixpoint: restoreBase re-installs its lists as
	// the next delta run's diff targets, which firstDiff then reads by value.
	if dev < len(m.base.lists) {
		if old := m.base.lists[dev]; len(old) == len(list) && &old[0] == &list[0] {
			return true
		}
	}
	return false
}

// Forget drops any cache entry keying device dev on the given list identity,
// making it safe to recycle the list's buffer. Only the identity keys are
// cleared — the metadata buffers stay for capacity reuse — so the next
// Simulate falls back to a full rebuild for entries dropped this way.
func (m *Simulator) Forget(dev int, list []pipeline.Instr) {
	if len(list) == 0 || dev < 0 || dev >= len(m.devs) {
		return
	}
	ds := &m.devs[dev]
	if len(ds.list) == len(list) && &ds.list[0] == &list[0] {
		// The active entry owns this device's registrations in the comm
		// index; retract them now, since the next refresh's stale-key drop
		// walks the (cleared) list.
		for _, ci := range ds.comm {
			if slot := m.commSlot(ds.list[ci].Key()); slot >= 0 {
				m.idx[slot] = commLoc{}
			}
		}
		ds.list = nil
		ds.comm = ds.comm[:0]
	}
	if len(ds.prevList) == len(list) && &ds.prevList[0] == &list[0] {
		// Snapshot entries hold no comm-index registrations.
		ds.prevList = nil
	}
	if dev < len(m.last.lists) {
		if old := m.last.lists[dev]; len(old) == len(list) && &old[0] == &list[0] {
			// Only this device's delta entry dies: a nil snapshot list makes
			// the next delta run replay the device from scratch, which is
			// handled by the ordinary dirty-cone machinery.
			m.last.lists[dev] = nil
		}
	}
	if dev < len(m.base.lists) {
		if old := m.base.lists[dev]; len(old) == len(list) && &old[0] == &list[0] {
			// Same per-device semantics for the pinned base: a restore
			// installs a nil entry and the device replays from scratch.
			m.base.lists[dev] = nil
		}
	}
}

// commSlot returns the flat m.idx slot of a communication key, or -1 when its
// coordinates fall outside the schedule's (part, micro, stage) space — such
// keys are simply never found, the behaviour a hash index gave them.
func (m *Simulator) commSlot(k pipeline.Key) int {
	if k.Micro < 0 || k.Micro >= m.micros ||
		k.Part < 0 || k.Part >= m.nParts ||
		k.Stage < 0 || k.Stage >= m.nStages {
		return -1
	}
	return ((commKindIdx(k.Kind)*m.nParts+k.Part)*m.micros+k.Micro)*m.nStages + k.Stage
}

// peerOf resolves the placement peer of a communication instruction through
// the lazy (kind, part, stage) cache; PeerDevice is placement-determined and
// device-independent for communication kinds, so the coordinate fully keys
// the answer.
func (m *Simulator) peerOf(s *pipeline.Schedule, d int, in pipeline.Instr) int {
	if in.Part < 0 || in.Part >= m.nParts || in.Stage < 0 || in.Stage >= m.nStages {
		return s.PeerDevice(d, in)
	}
	ci := (commKindIdx(in.Kind)*m.nParts+in.Part)*m.nStages + in.Stage
	if p := m.peerTab[ci]; p != -2 {
		return int(p)
	}
	p := s.PeerDevice(d, in)
	m.peerTab[ci] = int32(p)
	return p
}

// rebuildDevice recomputes device d's cached metadata, memory peak, and busy
// total from its current list. Communication matches are left unresolved;
// refresh resolves them after all changed devices re-registered their keys.
func (m *Simulator) rebuildDevice(s *pipeline.Schedule, e *cost.Estimator, dp int, d int) {
	list := s.Lists[d]
	ds := &m.devs[d]
	switch m.plan[d] {
	case planSwap:
		// The snapshot of the second-to-last list restores with a buffer
		// swap plus key re-registration (refresh's delete phase dropped this
		// device's keys); durations, peak and busy are all still valid.
		m.stats.SwapRebuilds++
		ds.swapPrev()
		for _, ci := range ds.comm {
			if slot := m.commSlot(ds.list[ci].Key()); slot >= 0 {
				m.idx[slot] = commLoc{dev1: int32(d) + 1, idx: ci}
			}
		}
		if m.rdv {
			ds.posted = growF64(ds.posted, len(list))
			ds.done = growF64(ds.done, len(list))
		}
		return
	case planRekey:
		// Content-identical list under a new identity: every cached
		// artifact — including the registry entries refresh left in place —
		// still applies verbatim.
		m.stats.WindowRebuilds++
		ds.list = list
		return
	case planWindow:
		m.stats.WindowRebuilds++
		m.rebuildWindowed(s, e, d, list, int(m.winLo[d]), int(m.winHi[d]))
		return
	}
	m.stats.FullRebuilds++
	ds.swapPrev() // retire the outgoing metadata into the snapshot slot
	ds.list = list
	if cap(ds.metas) >= len(list) {
		ds.metas = ds.metas[:len(list)]
	} else {
		ds.metas = make([]meta, len(list))
	}
	ds.comm = ds.comm[:0]
	ds.peers = ds.peers[:0]
	busy := 0.0
	for i, in := range list {
		if m.fillMeta(s, e, ds, d, i, in) {
			ds.comm = append(ds.comm, int32(i))
		}
		if mt := &ds.metas[i]; mt.compute {
			busy += mt.dur
		}
	}
	ds.busy = busy

	m.mem.rebind(e, s.Micros, s.NumStages(), ds.static, list)
	for _, in := range list {
		m.mem.Step(in)
	}
	ds.peak = m.mem.Peak()

	if m.rdv {
		ds.posted = growF64(ds.posted, len(list))
		ds.done = growF64(ds.done, len(list))
	}
}

// fillMeta derives device d's metadata for instruction i — duration or comm
// latency, class, link id — registers communication keys in the comm index,
// and reports whether the instruction is a communication (the caller indexes
// it in ds.comm). Shared by the full and windowed rebuild paths so both
// derive bit-identical metadata.
func (m *Simulator) fillMeta(s *pipeline.Schedule, e *cost.Estimator, ds *devState, d, i int, in pipeline.Instr) bool {
	mt := &ds.metas[i]
	*mt = meta{matchDev: -1, matchIdx: -1}
	switch in.Kind {
	case pipeline.Forward, pipeline.CkptForward, pipeline.Backward,
		pipeline.BackwardInput, pipeline.BackwardWeight,
		pipeline.Recompute, pipeline.OptimizerStep:
		if ds.slow != 1 {
			// Heterogeneous rank: re-derive the base from the estimator with
			// the same expression ComputeBase exposes to the tuner bounds, so
			// a bound's lo + base·slow term and the simulated duration are the
			// same float value — admissibility holds at the bit level.
			mt.dur = e.LaunchOverhead + ComputeBase(e, in.Kind, in.Stage)*ds.slow
		} else {
			// Same arithmetic as the estimator calls, hoisted into the
			// bind-time duration table.
			mt.dur = m.durTab[int(in.Kind)*m.nStages+in.Stage]
		}
		mt.compute = true
	case pipeline.AllReduce:
		mt.dur = ds.arDur
		mt.compute = true
	case pipeline.SendAct, pipeline.SendGrad, pipeline.RecvAct, pipeline.RecvGrad:
		mt.comm = m.actComm
		if in.Kind == pipeline.SendGrad || in.Kind == pipeline.RecvGrad {
			mt.comm = m.gradComm
		}
		peer := m.peerOf(s, d, in)
		var from, to int
		if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
			mt.class = classSend
			from, to = d, peer
		} else {
			mt.class = classRecv
			from, to = peer, d
		}
		// An out-of-range peer means the match is missing; refresh
		// reports that before propagation can touch the dummy link.
		if D := len(m.devs); peer >= 0 && peer < D {
			ls := (from*D+to)*2 + channelOf(in.Kind)
			id := m.linkLookup[ls] - 1
			if id < 0 {
				id = int32(m.nLinks)
				m.nLinks++
				m.linkLookup[ls] = id + 1
			}
			mt.link = id
		}
		if slot := m.commSlot(in.Key()); slot >= 0 {
			m.idx[slot] = commLoc{dev1: int32(d) + 1, idx: int32(i)}
		}
		return true
	default:
		mt.dur = e.LaunchOverhead
	}
	return false
}

// ComputeBase returns the unscaled estimator latency of a compute kind on the
// given stage — the value the engine's duration table stores before launch
// overhead and per-device slowdown are applied. The tuner's admissible bounds
// call it so their per-device lo + base·slow terms are bit-identical to the
// simulated durations. Non-compute kinds return 0.
func ComputeBase(e *cost.Estimator, k pipeline.Kind, stage int) float64 {
	switch k {
	case pipeline.Forward, pipeline.CkptForward:
		return e.FwTime[stage]
	case pipeline.Backward:
		return e.BwTime[stage]
	case pipeline.BackwardInput:
		return e.BwTime[stage] * e.BwSplitRatio
	case pipeline.BackwardWeight:
		return e.BwTime[stage] * (1 - e.BwSplitRatio)
	case pipeline.Recompute:
		return e.RcTime[stage]
	case pipeline.OptimizerStep:
		return e.OptTime
	}
	return 0
}

// permWindow diffs two equal-length lists and reports the window [lo, hi)
// outside which they are element-identical, provided the window contents are
// a permutation of each other up to Buffered-flag flips on otherwise
// identical instructions. flips returns the (micro, stage) cells whose
// SendAct changed its Buffered flag — the caller must verify no suffix
// CkptForward reads the flipped staging-buffer bitmap. Only windows up to 32
// instructions with at most 8 flips qualify; larger or structural edits fall
// back to the full rebuild. lo == hi == len means element-identical lists.
func permWindow(old, list []pipeline.Instr) (lo, hi int, flips [8][2]int32, nFlips int, ok bool) {
	n := len(list)
	for lo < n && old[lo] == list[lo] {
		lo++
	}
	if lo == n {
		return n, n, flips, 0, true
	}
	hi = n
	for hi > lo && old[hi-1] == list[hi-1] {
		hi--
	}
	if hi-lo > 32 {
		return 0, 0, flips, 0, false
	}
	var used [32]bool
	nf := 0
	for i := lo; i < hi; i++ {
		// Prefer an exact unused match; interchangeable entries make the
		// greedy choice safe.
		found := false
		for j := lo; j < hi; j++ {
			if !used[j-lo] && old[j] == list[i] {
				used[j-lo] = true
				found = true
				break
			}
		}
		if found {
			continue
		}
		// Otherwise pair with an old entry differing only in the Buffered
		// flag (every other field must agree).
		for j := lo; j < hi; j++ {
			if used[j-lo] {
				continue
			}
			o := old[j]
			if o.Buffered != list[i].Buffered {
				o.Buffered = list[i].Buffered
				if o == list[i] {
					if nf == len(flips) {
						return 0, 0, flips, 0, false
					}
					flips[nf] = [2]int32{int32(o.Micro), int32(o.Stage)}
					nf++
					used[j-lo] = true
					found = true
					break
				}
			}
		}
		if !found {
			return 0, 0, flips, 0, false
		}
	}
	return lo, hi, flips, nf, true
}

// suffixFlipFree reports whether the suffix [hi, len) is unaffected by the
// Buffered flips permWindow found. A flip changes the list-wide staging
// bitmap for its (micro, stage) cell, which alters the memory delta of that
// cell's CkptForward; if such a CkptForward sits in the suffix, the cached
// suffix levels no longer apply and the splice would be unsound. A schedule
// always places the CkptForward before its SendAct — which is inside the
// window — so the scan only rejects malformed lists.
func suffixFlipFree(list []pipeline.Instr, hi int, flips *[8][2]int32, nFlips int) bool {
	if nFlips == 0 {
		return true
	}
	for _, in := range list[hi:] {
		if in.Kind != pipeline.CkptForward {
			continue
		}
		for _, f := range flips[:nFlips] {
			if int32(in.Micro) == f[0] && int32(in.Stage) == f[1] {
				return false
			}
		}
	}
	return true
}

// pairedConsumers returns the instruction kinds whose memory effect depends
// on state the given producer kind wrote for its (micro, stage) cell: a
// CkptForward sets the checkpoint bit the cell's Backward or BackwardInput
// consumes (the stash is subtracted only while the bit is set), and a
// BackwardInput records the weight-gradient stash its BackwardWeight
// releases. nil means the kind produces no such state.
func pairedConsumers(k pipeline.Kind) []pipeline.Kind {
	switch k {
	case pipeline.CkptForward:
		return ckptConsumerKinds
	case pipeline.BackwardInput:
		return wgradConsumerKinds
	}
	return nil
}

var (
	ckptConsumerKinds  = []pipeline.Kind{pipeline.Backward, pipeline.BackwardInput}
	wgradConsumerKinds = []pipeline.Kind{pipeline.BackwardWeight}
)

// windowPairingPreserved reports whether the permutation window [lo, hi)
// keeps every stateful producer (CkptForward, BackwardInput) in its order
// relative to the consumer instructions of its (micro, stage) cell — a
// window that moves a consumer across its cell's producer changes the
// residual level after the window and invalidates the spliced suffix peaks.
// Pairs with one endpoint outside the window cannot flip, since prefix and
// suffix positions are identical in both lists. Cells with duplicate
// same-kind entries inside the window are rejected conservatively.
func windowPairingPreserved(old, list []pipeline.Instr, lo, hi int) bool {
	for i := lo; i < hi; i++ {
		in := list[i]
		consumers := pairedConsumers(in.Kind)
		if consumers == nil {
			continue
		}
		oi := -1
		for j := lo; j < hi; j++ {
			if k := list[j]; j != i && k.Kind == in.Kind && k.Micro == in.Micro && k.Stage == in.Stage {
				return false
			}
			if o := old[j]; o.Kind == in.Kind && o.Micro == in.Micro && o.Stage == in.Stage {
				oi = j
			}
		}
		if oi < 0 {
			return false
		}
		for j := lo; j < hi; j++ {
			b := list[j]
			if !kindIn(b.Kind, consumers) || b.Micro != in.Micro || b.Stage != in.Stage {
				continue
			}
			oj := -1
			for k := lo; k < hi; k++ {
				if o := old[k]; o.Kind == b.Kind && o.Micro == b.Micro && o.Stage == b.Stage {
					if oj >= 0 {
						return false
					}
					oj = k
				}
			}
			if oj < 0 || (oi < oj) != (i < j) {
				return false
			}
		}
	}
	return true
}

// kindIn reports whether k is one of the given kinds.
func kindIn(k pipeline.Kind, kinds []pipeline.Kind) bool {
	for _, c := range kinds {
		if k == c {
			return true
		}
	}
	return false
}

// rebuildWindowed rebuilds device d's metadata when the new list differs from
// the cached one only by a permutation window [lo, hi): metadata outside the
// window is copied from the retiring entry (positions and content match),
// window metadata is re-derived. Durations and peer sets are multiset
// properties and carry over; the busy total and the memory walk are
// recomputed in the new list order, since float addition is order-sensitive.
// The resulting cache entry is bit-identical to a full rebuild's; matches are
// re-resolved by refresh like on any other changed device.
func (m *Simulator) rebuildWindowed(s *pipeline.Schedule, e *cost.Estimator, d int, list []pipeline.Instr, lo, hi int) {
	ds := &m.devs[d]
	ds.swapPrev() // the outgoing entry becomes the revert snapshot
	ds.list = list
	n := len(list)
	if cap(ds.metas) >= n {
		ds.metas = ds.metas[:n]
	} else {
		ds.metas = make([]meta, n)
	}
	copy(ds.metas[:lo], ds.prevMetas[:lo])
	copy(ds.metas[hi:], ds.prevMetas[hi:])
	// Rebuild the comm index list: outside the window the indices are
	// unchanged; inside it the window fill discovers them in list order.
	ds.comm = ds.comm[:0]
	for _, ci := range ds.prevComm {
		if int(ci) >= lo {
			break
		}
		ds.comm = append(ds.comm, ci)
	}
	for i := lo; i < hi; i++ {
		if m.fillMeta(s, e, ds, d, i, list[i]) {
			ds.comm = append(ds.comm, int32(i))
		}
	}
	for _, ci := range ds.prevComm {
		if int(ci) >= hi {
			ds.comm = append(ds.comm, ci)
		}
	}
	// Keys outside the window were never dropped (refresh skips the stale-
	// key scan for permutation windows) and their indices are unchanged;
	// fillMeta re-registered the moved window keys above.
	ds.peers = append(ds.peers[:0], ds.prevPeers...)
	// The busy total is a sum over the same durations, but float addition is
	// order-sensitive and the full rebuild accumulates in list order — re-sum
	// in the new order so the cached value stays bit-identical to a full
	// rebuild's.
	busy := 0.0
	for i := range ds.metas {
		if mt := &ds.metas[i]; mt.compute {
			busy += mt.dur
		}
	}
	ds.busy = busy

	// Memory: walk the full list. In exact arithmetic the level after a
	// permutation window is unchanged (per-instruction memory deltas depend
	// on content and on bitmap state determined by the multiset of earlier
	// instructions) and the suffix peak could splice from a cached
	// suffix-maximum array, but the level is a float accumulator: permuting
	// the window perturbs the low mantissa bits entering the suffix, and a
	// cached suffix maximum embeds the old bits. Re-walk the suffix so the
	// peak stays bit-identical to a full rebuild's — the same reason busy
	// re-sums above.
	m.mem.rebind(e, s.Micros, s.NumStages(), ds.static, list)
	for _, in := range list {
		m.mem.Step(in)
	}
	ds.peak = m.mem.Peak()
}

// propagate runs the event-driven earliest-start-time propagation: each
// device advances until it blocks on a dependency, registers itself as a
// waiter, and is re-enqueued exactly when the dependency is satisfied —
// replacing the O(D × passes) round-robin retry sweep. The computed times are
// a pure dataflow fixpoint, so they are independent of wake order and
// bit-identical to the round-robin result.
func (m *Simulator) propagate(e *cost.Estimator, opt Options, res *Result) error {
	D := len(m.devs)
	m.clock = growF64(m.clock, D)
	m.pc = growInt(m.pc, D)
	for d := 0; d < D; d++ {
		m.clock[d] = 0
		m.pc[d] = 0
	}
	nLinks := m.nLinks
	if cap(m.fifos) >= nLinks {
		m.fifos = m.fifos[:nLinks]
	} else {
		grown := make([][]fifoMsg, nLinks)
		copy(grown, m.fifos) // keep the per-link buffers already allocated
		m.fifos = grown
	}
	m.fifoHead = growInt(m.fifoHead, nLinks)
	m.linkWait = growInt32(m.linkWait, nLinks)
	for l := 0; l < nLinks; l++ {
		m.fifos[l] = m.fifos[l][:0]
		m.fifoHead[l] = 0
		m.linkWait[l] = -1
	}
	if opt.Rendezvous {
		for d := range m.devs {
			ds := &m.devs[d]
			fillNaN(ds.posted)
			fillNaN(ds.done)
		}
		if cap(m.rdvWaiters) >= D {
			m.rdvWaiters = m.rdvWaiters[:D]
		} else {
			grown := make([][]int32, D)
			copy(grown, m.rdvWaiters)
			m.rdvWaiters = grown
		}
		for d := 0; d < D; d++ {
			m.rdvWaiters[d] = m.rdvWaiters[d][:0]
		}
		m.waitIdx = growInt32(m.waitIdx, D)
	}
	m.inQueue = growBool(m.inQueue, D)
	m.queue = m.queue[:0]
	m.convIdx = growInt(m.convIdx, D)
	for d := 0; d < D; d++ {
		m.inQueue[d] = true
		m.queue = append(m.queue, int32(d))
		m.convIdx[d] = noConverge
	}

	for head := 0; head < len(m.queue); head++ {
		d := int(m.queue[head])
		m.inQueue[d] = false
		if err := m.runDevice(d, e, opt, res); err != nil {
			return err
		}
		if opt.Rendezvous {
			m.wakeRendezvous(d)
		}
	}

	for d := 0; d < D; d++ {
		if m.pc[d] < len(m.devs[d].list) {
			return fmt.Errorf("%w: device %d blocked at %s", ErrDeadlock, d, m.devs[d].list[m.pc[d]])
		}
		if m.clock[d] > res.Total {
			res.Total = m.clock[d]
		}
	}
	return nil
}

// runDevice advances device d until it finishes or blocks.
func (m *Simulator) runDevice(d int, e *cost.Estimator, opt Options, res *Result) error {
	ds := &m.devs[d]
	list := ds.list
	metas := ds.metas
	base := m.last.endT[d] // snapshot completion clocks (reads)
	out := m.outT[d]       // completion clocks feeding the next delta run
	i := m.pc[d]
	clock := m.clock[d]
	// Snapshot comparison state for the per-send convergence tracking; only
	// consulted during delta replays.
	var oldL []pipeline.Instr
	hz := 0
	if m.inDelta {
		oldL = m.last.lists[d]
		hz = m.last.horizon[d]
	}
	for i < len(list) {
		mt := &metas[i]
		start := clock
		if opt.Rendezvous && math.IsNaN(ds.posted[i]) {
			ds.posted[i] = start
		}
		switch mt.class {
		case classCompute:
			clock = start + mt.dur
		case classSend:
			if opt.Rendezvous {
				peer := &m.devs[mt.matchDev]
				peerPost := peer.posted[mt.matchIdx]
				if math.IsNaN(peerPost) {
					m.waitIdx[d] = mt.matchIdx
					m.rdvWaiters[mt.matchDev] = append(m.rdvWaiters[mt.matchDev], int32(d))
					goto blocked
				}
				t := max64(start, peerPost) + e.LaunchOverhead + mt.comm
				peer.done[mt.matchIdx] = t
				clock = t
			} else {
				clock = start + e.LaunchOverhead
				if m.inDelta {
					// A replayed send whose completion bit-equals the
					// snapshot's (same instruction, trusted entry) delivers a
					// snapshot-identical arrival; track the last one that did
					// not, so receivers' convergence thresholds can relax once
					// this device resolves.
					if !(i < hz && i < len(oldL) && oldL[i] == list[i] && clock == base[i]) {
						m.lastDiffSend[d] = i
					}
				}
				m.fifos[mt.link] = append(m.fifos[mt.link], fifoMsg{
					dev: mt.matchDev, idx: mt.matchIdx, arrive: clock + mt.comm,
				})
				if w := m.linkWait[mt.link]; w >= 0 {
					m.linkWait[mt.link] = -1
					m.enqueue(w)
				}
			}
		case classRecv:
			if opt.Rendezvous {
				if t := ds.done[i]; !math.IsNaN(t) {
					clock = t
					break
				}
				peerPost := m.devs[mt.matchDev].posted[mt.matchIdx]
				if math.IsNaN(peerPost) {
					m.waitIdx[d] = mt.matchIdx
					m.rdvWaiters[mt.matchDev] = append(m.rdvWaiters[mt.matchDev], int32(d))
					goto blocked
				}
				t := max64(start, peerPost) + e.LaunchOverhead + mt.comm
				ds.done[i] = t
				clock = t
			} else {
				q := m.fifos[mt.link]
				h := m.fifoHead[mt.link]
				if h >= len(q) {
					m.linkWait[mt.link] = int32(d)
					goto blocked
				}
				msg := q[h]
				if int(msg.dev) != d || int(msg.idx) != i {
					m.pc[d], m.clock[d] = i, clock
					return fmt.Errorf("%w: device %d expects %s but link head is for dev%d[%d]",
						ErrCommMismatch, d, list[i], msg.dev, msg.idx)
				}
				m.fifoHead[mt.link] = h + 1
				clock = max64(start+e.LaunchOverhead, msg.arrive)
			}
		}
		if !opt.NoTimeline {
			res.Timeline[d] = append(res.Timeline[d], Span{Instr: list[i], Start: start, End: clock})
		}
		if i >= m.convIdx[d] && clock == base[i] {
			// The replayed clock re-converged onto the snapshot and every
			// remaining input of this device is snapshot-identical: the rest
			// of the suffix would replay bit-identically, so splice it.
			clock = m.spliceSuffix(d, i)
			i = len(list)
			break
		}
		out[i] = clock
		i++
	}
blocked:
	m.pc[d], m.clock[d] = i, clock
	return nil
}

// wakeRendezvous re-enqueues every device whose awaited post on d appeared
// during d's last run segment.
func (m *Simulator) wakeRendezvous(d int) {
	ws := m.rdvWaiters[d]
	if len(ws) == 0 {
		return
	}
	posted := m.devs[d].posted
	kept := ws[:0]
	for _, w := range ws {
		if math.IsNaN(posted[m.waitIdx[w]]) {
			kept = append(kept, w)
		} else {
			m.enqueue(w)
		}
	}
	m.rdvWaiters[d] = kept
}

func (m *Simulator) enqueue(d int32) {
	if !m.inQueue[d] {
		m.inQueue[d] = true
		m.queue = append(m.queue, d)
	}
}

func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growInt(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growBool(s []bool, n int) []bool {
	if cap(s) >= n {
		s = s[:n]
	} else {
		s = make([]bool, n)
	}
	for i := range s {
		s[i] = false
	}
	return s
}

func fillNaN(s []float64) {
	nan := math.NaN()
	for i := range s {
		s[i] = nan
	}
}
