package sim

import (
	"fmt"
	"math"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// noConverge disables the convergence check for a device: no replay index
// ever reaches it.
const noConverge = math.MaxInt

// fixpoint is the delta-simulation snapshot of the engine's last successful
// propagation: which instruction lists it ran on (by identity), the
// completion clock of every instruction, and each device's final clock.
// Together with the per-device metadata caches this is everything a later
// call needs to re-derive only the dirty cone of a mutated schedule and
// splice the unchanged prefix/suffix timings instead of re-running the full
// fixpoint.
//
// The snapshot references the old instruction lists so mutated devices can
// be diffed by value against them. Buffer pools recycling candidate lists
// must therefore treat a snapshot reference like a cache entry: Holds
// reports it and Forget retracts it (clearing just that device's entry —
// the rest of the snapshot stays usable, the forgotten device simply
// replays from scratch on the next delta run).
type fixpoint struct {
	valid bool
	// lists[d] is the identity the snapshot timings were computed on; nil
	// marks a device whose entry was forgotten (replay it fully).
	lists [][]pipeline.Instr
	// endT[d][i] is the clock after device d completed instruction i.
	endT [][]float64
	// clock[d] is device d's final clock (the per-device makespan).
	clock []float64
	// horizon[d] bounds the trustworthy prefix of endT[d]: entries at
	// indices >= horizon[d] were partially overwritten by a delta replay
	// that ended in an error (a rejected candidate that deadlocks or
	// mismatches) and no longer describe the snapshot fixpoint. Probe runs
	// write to scratch and never poison; only an adopting replay that
	// errors shrinks the horizon, and a successful one restores it to the
	// full list length.
	horizon []int
}

// DeltaStats counts what the engine's delta path did; the graph and tuner
// layers fold them into telemetry. Plain fields — a Simulator is
// single-goroutine by contract.
type DeltaStats struct {
	// Runs counts Simulate calls answered by delta re-simulation; Full
	// counts calls that ran the complete propagation (first calls, timeline
	// requests, rendezvous mode, NoDelta).
	Runs, Full int64
	// Replayed and Spliced count instructions re-propagated versus carried
	// over from the snapshot across all delta runs.
	Replayed, Spliced int64
	// SwapRebuilds, WindowRebuilds, and FullRebuilds count how refresh
	// reconstructed changed devices' metadata: a depth-2 snapshot restore
	// (buffer swap), a permutation-window splice (re-key or windowed
	// rebuild), or the full walk.
	SwapRebuilds, WindowRebuilds, FullRebuilds int64
}

// deltaEligible reports whether the engine can answer this call by replaying
// only the dirty cone. Rendezvous timing flows both ways through a match
// (the send waits on the recv), which the one-directional cone rule does not
// model, so it falls back to the full propagation. Timeline requests stay
// eligible: spans never record idle time separately — an instruction's span
// starts at its predecessor's completion (the device clock is continuous) —
// so Simulate synthesizes them from the completion clocks after the replay.
func (m *Simulator) deltaEligible(opt Options) bool {
	return m.last.valid && !opt.NoDelta && !opt.Rendezvous
}

// synthTimeline reconstructs the per-device spans after a successful delta
// run. runDevice appends a span [clock-before, clock-after] per instruction
// in list order and the device clock starts at zero and never resets, so
// Start[i] is End[i-1] and the timeline is fully determined by the
// completion clocks: replayed entries from the run's write target (the
// snapshot for adopting runs, scratch for probes), everything else from the
// snapshot. The synthesized spans are bit-identical to a full propagation's.
func (m *Simulator) synthTimeline(res *Result) {
	for d := range m.devs {
		list := m.devs[d].list
		ends := m.last.endT[d]
		r := m.restart[d]
		w := -1
		var outs []float64
		if r < len(list) && d < len(m.outT) {
			// Dirty device: entries in [restart, wrote) were replayed into the
			// run's output buffer; the spliced remainder kept snapshot values.
			outs, w = m.outT[d], m.wrote[d]
		}
		spans := res.Timeline[d]
		start := 0.0
		for i, in := range list {
			var end float64
			if i >= r && i < w {
				end = outs[i]
			} else {
				end = ends[i]
			}
			spans = append(spans, Span{Instr: in, Start: start, End: end})
			start = end
		}
		res.Timeline[d] = spans
	}
}

// saveFixpoint records the just-completed full propagation as the delta
// baseline. endT was filled by runDevice during the run.
func (m *Simulator) saveFixpoint(opt Options) {
	D := len(m.devs)
	if cap(m.last.lists) >= D {
		m.last.lists = m.last.lists[:D]
	} else {
		m.last.lists = make([][]pipeline.Instr, D)
	}
	m.last.clock = growF64(m.last.clock, D)
	m.last.horizon = growInt(m.last.horizon, D)
	for d := 0; d < D; d++ {
		m.last.lists[d] = m.devs[d].list
		m.last.clock[d] = m.clock[d]
		m.last.horizon[d] = len(m.devs[d].list)
	}
	m.last.valid = !opt.Rendezvous
}

// pinBase deep-copies the current snapshot into the pinned base fixpoint.
// Simulate calls it after the first successful adopting run following a
// Detach or reset, capturing that run's starting fixpoint; see the base
// field's comment for why.
func (m *Simulator) pinBase() {
	D := len(m.devs)
	if cap(m.base.lists) >= D {
		m.base.lists = m.base.lists[:D]
	} else {
		m.base.lists = make([][]pipeline.Instr, D)
	}
	if cap(m.base.endT) >= D {
		m.base.endT = m.base.endT[:D]
	} else {
		grown := make([][]float64, D)
		copy(grown, m.base.endT)
		m.base.endT = grown
	}
	m.base.clock = growF64(m.base.clock, D)
	m.base.horizon = growInt(m.base.horizon, D)
	for d := 0; d < D; d++ {
		l := m.last.lists[d]
		m.base.lists[d] = l
		m.base.endT[d] = growF64(m.base.endT[d], len(l))
		copy(m.base.endT[d], m.last.endT[d][:len(l)])
		m.base.clock[d] = m.last.clock[d]
		m.base.horizon[d] = m.last.horizon[d]
	}
	m.base.valid = m.last.valid
	m.basePinned = true
}

// restoreBase rewinds the active snapshot to the pinned base fixpoint, so
// the next delta run diffs against the optimization run's starting content
// instead of wherever the previous run's search ended up.
func (m *Simulator) restoreBase() {
	D := len(m.base.lists)
	if cap(m.last.lists) >= D {
		m.last.lists = m.last.lists[:D]
	} else {
		m.last.lists = make([][]pipeline.Instr, D)
	}
	if cap(m.last.endT) >= D {
		m.last.endT = m.last.endT[:D]
	} else {
		grown := make([][]float64, D)
		copy(grown, m.last.endT)
		m.last.endT = grown
	}
	m.last.clock = growF64(m.last.clock, D)
	m.last.horizon = growInt(m.last.horizon, D)
	for d := 0; d < D; d++ {
		l := m.base.lists[d]
		m.last.lists[d] = l
		m.last.endT[d] = growF64(m.last.endT[d], len(l))
		copy(m.last.endT[d], m.base.endT[d][:len(l)])
		m.last.clock[d] = m.base.clock[d]
		m.last.horizon[d] = m.base.horizon[d]
	}
	m.last.valid = m.base.valid
	m.probeOK = false
}

// ensureEndT sizes the per-device completion-clock arrays for the current
// lists ahead of a full propagation (which rewrites every entry).
func (m *Simulator) ensureEndT() {
	D := len(m.devs)
	if cap(m.last.endT) >= D {
		m.last.endT = m.last.endT[:D]
	} else {
		grown := make([][]float64, D)
		copy(grown, m.last.endT)
		m.last.endT = grown
	}
	for d := 0; d < D; d++ {
		m.last.endT[d] = growF64(m.last.endT[d], len(m.devs[d].list))
	}
}

// setOut points runDevice's completion-clock write target at the snapshot
// arrays (adopting runs) or at the probe scratch, sized for the current
// lists. Must run after the snapshot arrays reached their final size for
// the run.
func (m *Simulator) setOut(probe bool) {
	if !probe {
		m.outT = m.last.endT
		return
	}
	D := len(m.devs)
	if cap(m.probeT) >= D {
		m.probeT = m.probeT[:D]
	} else {
		grown := make([][]float64, D)
		copy(grown, m.probeT)
		m.probeT = grown
	}
	for d := 0; d < D; d++ {
		m.probeT[d] = growF64(m.probeT[d], len(m.devs[d].list))
	}
	m.outT = m.probeT
}

// firstDiff returns the index of the first instruction where the two lists
// disagree (comparing by value), which is len(a) == len(b) when they are
// equal element-wise.
func firstDiff(a, b []pipeline.Instr) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) == len(b) {
		return n
	}
	return n
}

// propagateDelta re-derives the timing fixpoint after a schedule edit by
// replaying only the affected cone of the dependency DAG:
//
//  1. seed a per-device restart index from the first instruction where each
//     mutated device's new list diverges from the snapshot;
//  2. close the dirty set through the comm-match index — a send at or past
//     its device's restart point dirties the matched receive, and dirtiness
//     spreads forward within a device by construction (the restart index
//     marks a suffix) — iterating until the restart indices stabilise;
//  3. splice every clean device (and every dirty device's clean prefix)
//     from the snapshot: final clocks of untouched devices, the clock at
//     the restart boundary, and the in-flight messages of clean sends whose
//     matched receive replays (prefilled into the link FIFOs in sender
//     order, with arrival times derived from the snapshot);
//  4. run the ordinary event-driven propagation over the dirty devices
//     only, splicing each device's suffix back from the snapshot as soon
//     as its clock re-converges and all its remaining inputs are known
//     snapshot-identical (the convergence cascade below).
//
// Every replayed value is computed by the same floating-point operations on
// the same inputs a full propagation would use, and every spliced value is
// a fixpoint value the full propagation would re-derive unchanged, so the
// result — including deadlock and FIFO-mismatch errors — is bit-identical
// to the full run.
//
// In probe mode (Options.Probe) the replayed clocks go to scratch and the
// snapshot is left untouched, including on error: the fixpoint keeps
// describing the accepted baseline, so a search loop's try-then-revert
// candidates each diff against that baseline instead of against the
// previous candidate, and rejected or illegal candidates cost nothing on
// later runs.
func (m *Simulator) propagateDelta(e *cost.Estimator, opt Options, res *Result) error {
	probe := opt.Probe
	D := len(m.devs)
	m.restart = growInt(m.restart, D)
	stack := m.coneStack[:0]
	for d := 0; d < D; d++ {
		ds := &m.devs[d]
		old := m.last.lists[d]
		switch {
		case old == nil:
			// Forgotten snapshot entry: replay the device from scratch.
			m.restart[d] = 0
		case len(old) == len(ds.list) && (len(old) == 0 || &old[0] == &ds.list[0]):
			m.restart[d] = len(ds.list)
		default:
			m.restart[d] = firstDiff(old, ds.list)
		}
		if h := m.last.horizon[d]; m.restart[d] > h {
			m.restart[d] = h
		}
		if m.restart[d] < len(ds.list) {
			stack = append(stack, int32(d))
		}
		if !probe {
			// Completion clocks of the clean prefix stay valid; grow the
			// array preserving them so replay can extend past the old length.
			m.last.endT[d] = growF64Keep(m.last.endT[d], len(ds.list))
		}
	}

	// Close the cone: a dirty send dirties its matched receive. Re-pushing a
	// device rescans its (tiny) comm list from the lowered restart index;
	// restart indices only decrease, so the loop terminates.
	for len(stack) > 0 {
		s := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		ds := &m.devs[s]
		rs := m.restart[s]
		for _, ci := range ds.comm {
			if int(ci) < rs {
				continue
			}
			mt := &ds.metas[ci]
			if mt.class != classSend {
				continue
			}
			if int(mt.matchIdx) < m.restart[mt.matchDev] {
				m.restart[mt.matchDev] = int(mt.matchIdx)
				stack = append(stack, mt.matchDev)
			}
		}
	}
	m.coneStack = stack[:0]

	// Initialise the propagation state: dirty devices resume at their
	// restart boundary with the snapshot clock, clean devices are already
	// done (and count as resolved senders — their in-flight messages carry
	// snapshot timings by construction).
	m.clock = growF64(m.clock, D)
	m.pc = growInt(m.pc, D)
	m.inQueue = growBool(m.inQueue, D)
	m.queue = m.queue[:0]
	m.convIdx = growInt(m.convIdx, D)
	m.convSuf = growInt(m.convSuf, D)
	m.resolved = growBool(m.resolved, D)
	m.lastDiffSend = growInt(m.lastDiffSend, D)
	m.wrote = growInt(m.wrote, D)
	anyDirty := false
	for d := 0; d < D; d++ {
		ds := &m.devs[d]
		r := m.restart[d]
		m.convIdx[d] = noConverge
		m.convSuf[d] = noConverge
		if r >= len(ds.list) {
			m.pc[d] = len(ds.list)
			m.resolved[d] = true
			switch {
			case m.last.lists[d] != nil && len(m.last.lists[d]) == len(ds.list):
				m.clock[d] = m.last.clock[d]
			case r > 0:
				// Prefix-equal truncation: the final clock is the completion
				// time of the (unchanged) last surviving instruction, not the
				// snapshot clock, which included the removed suffix.
				m.clock[d] = m.last.endT[d][r-1]
			default:
				m.clock[d] = 0
			}
			continue
		}
		anyDirty = true
		m.pc[d] = r
		if r > 0 {
			m.clock[d] = m.last.endT[d][r-1]
		} else {
			m.clock[d] = 0
		}
		m.resolved[d] = false
		m.lastDiffSend[d] = -1
		m.wrote[d] = len(ds.list)
		m.inQueue[d] = true
		m.queue = append(m.queue, int32(d))
		m.stats.Replayed += int64(len(ds.list) - r)
		m.stats.Spliced += int64(r)
	}
	// Convergence eligibility. A replaying device may abandon its replay at
	// instruction i and splice the remaining suffix from the snapshot when
	// (a) every instruction after i is snapshot-identical content at the
	// same index (convSuf, from a backward content scan), (b) every receive
	// after i has a snapshot-identical input — no remaining message from a
	// sender whose arrivals are undetermined or known to differ (convIdx,
	// recomputed as senders resolve so convergence cascades outward from
	// the edit), and (c) its replayed clock bit-equals the snapshot clock
	// at i (checked in runDevice). Devices with a poisoned endT tail or a
	// resized list never converge.
	for d := 0; d < D; d++ {
		ds := &m.devs[d]
		if m.restart[d] >= len(ds.list) {
			continue
		}
		old := m.last.lists[d]
		if old == nil || len(old) != len(ds.list) || m.last.horizon[d] < len(ds.list) {
			continue
		}
		if &old[0] == &ds.list[0] {
			m.convSuf[d] = -1 // identical content; only inputs constrain
			continue
		}
		suf := len(ds.list) - 1
		for suf >= 0 && old[suf] == ds.list[suf] {
			suf--
		}
		m.convSuf[d] = suf
	}
	for d := 0; d < D; d++ {
		if m.convSuf[d] != noConverge {
			m.recomputeConv(d)
		}
	}
	m.stats.Runs++
	if !anyDirty {
		// Identical schedule (or only identity moves): the snapshot is the
		// answer.
		for d := 0; d < D; d++ {
			m.stats.Spliced += int64(len(m.devs[d].list))
			if m.clock[d] > res.Total {
				res.Total = m.clock[d]
			}
		}
		if !probe {
			m.refreshSnapshotLists()
		} else {
			m.probeOK = true
		}
		return nil
	}
	m.setOut(probe)
	m.inDelta = true

	// Reset the link state and prefill each FIFO with the snapshot messages
	// of clean sends whose matched receive replays. Devices are walked in
	// ascending order and comm lists in list order; each link has a single
	// sender, so the prefill lands in send order, and every replayed send is
	// appended after its device's clean prefix — FIFO order is exactly the
	// full run's.
	nLinks := m.nLinks
	if cap(m.fifos) >= nLinks {
		m.fifos = m.fifos[:nLinks]
	} else {
		grown := make([][]fifoMsg, nLinks)
		copy(grown, m.fifos)
		m.fifos = grown
	}
	m.fifoHead = growInt(m.fifoHead, nLinks)
	m.linkWait = growInt32(m.linkWait, nLinks)
	for l := 0; l < nLinks; l++ {
		m.fifos[l] = m.fifos[l][:0]
		m.fifoHead[l] = 0
		m.linkWait[l] = -1
	}
	for d := 0; d < D; d++ {
		ds := &m.devs[d]
		rs := m.restart[d]
		if rs == 0 || !anyDirtyPeer(m.restart, m.devs, ds.peers) {
			continue
		}
		old := m.last.endT[d]
		for _, ci := range ds.comm {
			if int(ci) >= rs {
				break // comm is in list order; the rest replays
			}
			mt := &ds.metas[ci]
			if mt.class != classSend {
				continue
			}
			if int(mt.matchIdx) < m.restart[mt.matchDev] {
				continue // the receive already consumed it in the snapshot
			}
			m.fifos[mt.link] = append(m.fifos[mt.link], fifoMsg{
				dev: mt.matchDev, idx: mt.matchIdx,
				arrive: old[ci] + mt.comm,
			})
		}
	}

	for head := 0; head < len(m.queue); head++ {
		d := int(m.queue[head])
		m.inQueue[d] = false
		if err := m.runDevice(d, e, opt, res); err != nil {
			m.inDelta = false
			if !probe {
				m.poisonReplayed()
			}
			return err
		}
		if !m.resolved[d] && m.pc[d] >= len(m.devs[d].list) {
			// The device finished its replay: every arrival it delivers is
			// now determined, so receivers' convergence thresholds may drop
			// to its last genuinely differing send.
			m.resolved[d] = true
			for _, p := range m.devs[d].peers {
				if m.convSuf[p] != noConverge {
					m.recomputeConv(int(p))
				}
			}
		}
	}
	m.inDelta = false
	for d := 0; d < D; d++ {
		if m.pc[d] < len(m.devs[d].list) {
			if !probe {
				m.poisonReplayed()
			}
			return fmt.Errorf("%w: device %d blocked at %s", ErrDeadlock, d, m.devs[d].list[m.pc[d]])
		}
		if m.clock[d] > res.Total {
			res.Total = m.clock[d]
		}
	}
	if !probe {
		// The spliced prefixes plus the replayed suffixes are the new
		// fixpoint.
		m.refreshSnapshotLists()
		for d := 0; d < D; d++ {
			m.last.clock[d] = m.clock[d]
			m.last.horizon[d] = len(m.devs[d].list)
		}
	} else {
		m.probeOK = true
	}
	return nil
}

// Commit adopts the engine's most recent simulation as the delta baseline
// when that call was a successful probe run of exactly the given schedule:
// the probe's replayed clocks are copied over the snapshot entries and the
// snapshot re-keys onto the schedule's lists. This turns a search loop's
// winning probe into the next baseline for the cost of a memcpy instead of
// an extra adopting re-simulation. Returns false — leaving the baseline
// untouched — when the conditions do not hold (the last call was not a
// probe, it failed, or it simulated a different schedule); the caller then
// falls back to a plain (non-probe) Simulate of the accepted schedule.
func (m *Simulator) Commit(s *pipeline.Schedule) bool {
	if !m.probeOK || !m.last.valid || len(m.devs) != s.NumDevices() {
		return false
	}
	for d := range m.devs {
		dl := m.devs[d].list
		l := s.Lists[d]
		if len(dl) != len(l) || (len(l) > 0 && &dl[0] != &l[0]) {
			return false
		}
	}
	for d := range m.devs {
		ds := &m.devs[d]
		n := len(ds.list)
		if r := m.restart[d]; r < n {
			// Replayed region from the probe scratch; entries past wrote[d]
			// were spliced and already hold the (identical) snapshot values.
			m.last.endT[d] = growF64Keep(m.last.endT[d], n)
			copy(m.last.endT[d][r:m.wrote[d]], m.probeT[d][r:m.wrote[d]])
		}
		m.last.lists[d] = ds.list
		m.last.clock[d] = m.clock[d]
		m.last.horizon[d] = n
	}
	m.probeOK = false
	return true
}

// poisonReplayed records, after an adopting delta replay ended in an error,
// that the replayed regions of endT no longer describe the snapshot
// fixpoint: the trustworthy horizon of every dirty device shrinks to its
// restart index. The snapshot itself stays valid — the next run diffs
// against the same old lists and simply replays past the horizon.
func (m *Simulator) poisonReplayed() {
	for d := range m.devs {
		if r := m.restart[d]; r < m.last.horizon[d] {
			m.last.horizon[d] = r
		}
	}
}

// spliceSuffix finishes device d's replay from the snapshot after the
// convergence check in runDevice fired at instruction i: the remaining
// sends whose receiver is replaying are delivered with their snapshot
// timings, and the device jumps to its snapshot final clock. Snapshot endT
// entries past i hold the (identical) values the skipped replay would have
// produced; an adopting run keeps them as its fixpoint entries, a probe run
// never copies them.
func (m *Simulator) spliceSuffix(d, i int) float64 {
	ds := &m.devs[d]
	ends := m.last.endT[d]
	m.resolved[d] = true
	m.wrote[d] = i // entries from i on keep their snapshot values
	for _, ci := range ds.comm {
		if int(ci) <= i {
			continue
		}
		mt := &ds.metas[ci]
		if mt.class != classSend || int(mt.matchIdx) < m.restart[mt.matchDev] {
			continue
		}
		m.fifos[mt.link] = append(m.fifos[mt.link], fifoMsg{
			dev: mt.matchDev, idx: mt.matchIdx,
			arrive: ends[ci] + mt.comm,
		})
		if w := m.linkWait[mt.link]; w >= 0 {
			m.linkWait[mt.link] = -1
			m.enqueue(w)
		}
	}
	// This device's remaining sends now deliver snapshot timings, so its
	// receivers' convergence thresholds may drop — the cascade that lets
	// the whole cone collapse back onto the snapshot.
	for _, p := range ds.peers {
		if m.convSuf[p] != noConverge {
			m.recomputeConv(int(p))
		}
	}
	skipped := int64(len(ds.list) - 1 - i)
	m.stats.Replayed -= skipped
	m.stats.Spliced += skipped
	return ends[len(ds.list)-1]
}

// recomputeConv re-derives device d's convergence threshold: the larger of
// its content threshold (convSuf) and the index of its last receive whose
// matched send is not yet known to deliver a snapshot-identical arrival —
// either the sender is still replaying (undetermined), or it resolved and
// this send's completion genuinely differed from the snapshot. The comm list
// is ascending, so walking it backward finds that last receive at the first
// constraining entry and stops.
func (m *Simulator) recomputeConv(d int) {
	ds := &m.devs[d]
	c := m.convSuf[d]
	r := m.restart[d]
	for k := len(ds.comm) - 1; k >= 0; k-- {
		ci := int(ds.comm[k])
		if ci <= c || ci < r {
			break // everything earlier is below the floor
		}
		mt := &ds.metas[ci]
		if mt.class != classRecv {
			continue
		}
		s := int(mt.matchDev)
		si := int(mt.matchIdx)
		if si < m.restart[s] {
			continue // clean-prefix send: snapshot timing by construction
		}
		if m.resolved[s] && si > m.lastDiffSend[s] {
			continue // determined and bit-equal to the snapshot
		}
		c = ci
		break
	}
	m.convIdx[d] = c
}

// refreshSnapshotLists re-keys the snapshot on the current list identities
// after a successful adopting delta run.
func (m *Simulator) refreshSnapshotLists() {
	for d := range m.devs {
		m.last.lists[d] = m.devs[d].list
	}
}

// anyDirtyPeer reports whether any of the listed peer devices replays.
func anyDirtyPeer(restart []int, devs []devState, peers []int32) bool {
	for _, p := range peers {
		if restart[p] < len(devs[p].list) {
			return true
		}
	}
	return false
}

// growF64Keep grows s to n entries preserving the existing prefix (unlike
// growF64, which may discard it).
func growF64Keep(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	grown := make([]float64, n)
	copy(grown, s)
	return grown
}

// DeltaStats returns the engine's delta-simulation counters.
func (m *Simulator) DeltaStats() DeltaStats { return m.stats }

// EndTimes returns a copy of the completion clock of every instruction of
// device dev from the engine's snapshot fixpoint (the last adopting
// simulation — probe runs leave it untouched), or nil when the engine holds
// no valid fixpoint for the device. It exists for the differential test
// harness (internal/sim/difftest), which byte-compares delta-simulated
// timings against a fresh full run.
func (m *Simulator) EndTimes(dev int) []float64 {
	if !m.last.valid || dev < 0 || dev >= len(m.last.lists) || dev >= len(m.last.endT) {
		return nil
	}
	old := m.last.lists[dev]
	if old == nil || len(m.last.endT[dev]) < len(old) {
		return nil
	}
	return append([]float64(nil), m.last.endT[dev][:len(old)]...)
}
