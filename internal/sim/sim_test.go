package sim

import (
	"math"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
)

func build(t *testing.T, s pipeline.Scheme, cfg scheme.Config) *pipeline.Schedule {
	t.Helper()
	sched, err := scheme.Build(s, cfg)
	if err != nil {
		t.Fatalf("Build(%s, %+v): %v", s, cfg, err)
	}
	return sched
}

func simulate(t *testing.T, s *pipeline.Schedule, e *cost.Estimator, opt Options) *Result {
	t.Helper()
	r, err := Simulate(s, e, opt)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return r
}

// Test1F1BIdealMakespan checks the textbook 1F1B makespan with unit costs
// (F = 1, B = 2, free comm): total = (N + D - 1) * (F + B). For D=4, N=4
// this is the 21t baseline of the paper's Figure 2.
func Test1F1BIdealMakespan(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{4, 4}, {4, 8}, {8, 8}, {8, 16}, {2, 2}} {
		s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: tc.d, Micros: tc.n})
		e := cost.Uniform(tc.d, 1, 2, 0.25)
		r := simulate(t, s, e, Options{})
		want := float64((tc.n + tc.d - 1) * 3)
		if math.Abs(r.Total-want) > 1e-9 {
			t.Errorf("D=%d N=%d: makespan = %v, want %v", tc.d, tc.n, r.Total, want)
		}
	}
}

// TestGPipeIdealMakespan checks GPipe's fill-drain makespan with unit costs:
// same critical path as 1F1B, (N + D - 1) * (F + B).
func TestGPipeIdealMakespan(t *testing.T) {
	s := build(t, pipeline.SchemeGPipe, scheme.Config{Devices: 4, Micros: 4})
	e := cost.Uniform(4, 1, 2, 0.25)
	r := simulate(t, s, e, Options{})
	if want := 21.0; math.Abs(r.Total-want) > 1e-9 {
		t.Errorf("GPipe makespan = %v, want %v", r.Total, want)
	}
}

// TestGPipeRendezvous runs GPipe under fully synchronous sends; the
// fill-drain structure must not deadlock.
func TestGPipeRendezvous(t *testing.T) {
	s := build(t, pipeline.SchemeGPipe, scheme.Config{Devices: 4, Micros: 4})
	e := cost.Uniform(4, 1, 2, 0.25)
	r := simulate(t, s, e, Options{Rendezvous: true})
	if r.Total <= 0 {
		t.Fatalf("rendezvous GPipe produced non-positive makespan %v", r.Total)
	}
}

// TestTimelineMonotonic checks that per-device spans are non-overlapping and
// ordered on every scheme.
func TestTimelineMonotonic(t *testing.T) {
	for _, tc := range []struct {
		s   pipeline.Scheme
		cfg scheme.Config
	}{
		{pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeGPipe, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeInterleave, scheme.Config{Devices: 4, Micros: 8, Chunks: 2}},
	} {
		sch := build(t, tc.s, tc.cfg)
		e := cost.Uniform(sch.NumStages(), 1, 2, 0.25)
		r := simulate(t, sch, e, Options{})
		for d, spans := range r.Timeline {
			last := 0.0
			for _, sp := range spans {
				if sp.Start < last-1e-9 {
					t.Errorf("%s dev%d: span %v starts at %v before previous end %v", tc.s, d, sp.Instr, sp.Start, last)
				}
				if sp.End < sp.Start {
					t.Errorf("%s dev%d: span %v ends before it starts", tc.s, d, sp.Instr)
				}
				last = sp.End
			}
		}
	}
}

// TestChimeraFasterThan1F1B: with N = D, Chimera's bidirectional overlap
// beats 1F1B's makespan (its headline property).
func TestChimeraFasterThan1F1B(t *testing.T) {
	const d, n = 8, 8
	v := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	x := build(t, pipeline.SchemeChimera, scheme.Config{Devices: d, Micros: n})
	e := cost.Uniform(d, 1, 2, 0.25)
	rv := simulate(t, v, e, Options{})
	rx := simulate(t, x, e, Options{})
	if rx.Total >= rv.Total {
		t.Errorf("Chimera makespan %v not better than 1F1B %v at N=D", rx.Total, rv.Total)
	}
}

// TestMemoryImbalance1F1B: the first device holds ~D on-the-fly activation
// replicas and the last exactly one (§1: "the activation of the first device
// can be 16 times larger than that on the last device").
func TestMemoryImbalance1F1B(t *testing.T) {
	const d, n = 8, 16
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	e := cost.Uniform(d, 1, 2, 0.25)
	r := simulate(t, s, e, Options{})
	if got, want := r.PeakMem[0], float64(d); math.Abs(got-want) > 1e-9 {
		t.Errorf("first device peak = %v activation replicas, want %v", got, want)
	}
	if got, want := r.PeakMem[d-1], 1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("last device peak = %v activation replicas, want %v", got, want)
	}
}

// TestOOMFlag checks that the memory limit marks over-budget devices.
func TestOOMFlag(t *testing.T) {
	const d, n = 4, 8
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	e := cost.Uniform(d, 1, 2, 0.25)
	r := simulate(t, s, e, Options{MemLimit: 2.5})
	if !r.OOM {
		t.Fatal("expected OOM with limit below first-device peak")
	}
	if len(r.OOMDevices) == 0 || r.OOMDevices[0] != 0 {
		t.Fatalf("OOMDevices = %v, want leading devices", r.OOMDevices)
	}
	r = simulate(t, s, e, Options{MemLimit: 100})
	if r.OOM {
		t.Fatal("unexpected OOM with generous limit")
	}
}

// TestThroughputScalesWithDP: doubling DP doubles samples per second minus
// the (here zero-cost) all-reduce.
func TestThroughputScalesWithDP(t *testing.T) {
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	r1 := simulate(t, s, e, Options{DP: 1})
	r2 := simulate(t, s, e, Options{DP: 2})
	if r2.SamplesPerSec <= r1.SamplesPerSec {
		t.Errorf("DP=2 throughput %v not above DP=1 %v", r2.SamplesPerSec, r1.SamplesPerSec)
	}
}

// TestBubbleRatio1F1B: the classic 1F1B bubble fraction on device 0 is
// (D-1)/(N+D-1) with uniform stages.
func TestBubbleRatio1F1B(t *testing.T) {
	const d, n = 4, 4
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	e := cost.Uniform(d, 1, 2, 0.25)
	r := simulate(t, s, e, Options{})
	want := float64(d-1) / float64(n+d-1)
	if got := r.BubbleRatio(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("bubble ratio = %v, want %v", got, want)
	}
}
