package sim

import (
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
)

// editDevice returns a copy-on-write clone of parent with the n-th adjacent
// compute pair of device d swapped — the graph tuner's candidate shape, and a
// distinct identity per (d, n).
func editDevice(t *testing.T, parent *pipeline.Schedule, d, n int) *pipeline.Schedule {
	t.Helper()
	c := parent.Clone()
	list := c.MutableList(d)
	seen := 0
	for i := 0; i+1 < len(list); i++ {
		if list[i].Kind.IsCompute() && list[i+1].Kind.IsCompute() {
			if seen == n {
				list[i], list[i+1] = list[i+1], list[i]
				return c
			}
			seen++
		}
	}
	t.Fatalf("device %d has fewer than %d adjacent compute pairs", d, n+1)
	return nil
}

// reverseList scrambles a buffer in place, standing in for a pool handing the
// recycled memory to an unrelated user.
func reverseList(l []pipeline.Instr) {
	for i, j := 0, len(l)-1; i < j; i, j = i+1, j-1 {
		l[i], l[j] = l[j], l[i]
	}
}

// TestHoldsCoversDeltaState pins the full identity matrix Holds must report
// after delta simulation: the active metadata entry, the depth-2 revert
// snapshot, the delta-snapshot lists, and the pinned base fixpoint — every
// buffer the engine may later read by value. A recycling pool consults Holds
// before reusing a buffer, so a missing class here is an aliasing hole.
func TestHoldsCoversDeltaState(t *testing.T) {
	parent := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	opt := Options{NoTimeline: true}
	eng := &Simulator{}

	assertSameOutcome(t, "parent", eng, parent, e, opt)
	pl := parent.Lists[0]
	if !eng.Holds(0, pl) {
		t.Fatal("active list not held after the first adopting run")
	}

	child := editDevice(t, parent, 0, 0)
	assertSameOutcome(t, "child", eng, child, e, opt)
	chl := child.Lists[0]
	if !eng.Holds(0, chl) {
		t.Error("candidate list (active entry + delta snapshot) not held")
	}
	if !eng.Holds(0, pl) {
		t.Error("parent list (depth-2 snapshot + pinned base) not held")
	}

	// A second, different edit retires the first candidate into the depth-2
	// slot; the parent list now survives only inside the pinned base.
	child2 := editDevice(t, parent, 0, 1)
	assertSameOutcome(t, "child2", eng, child2, e, opt)
	if !eng.Holds(0, chl) {
		t.Error("retired candidate (depth-2 snapshot) not held")
	}
	if !eng.Holds(0, pl) {
		t.Error("base-only identity not held: restoreBase would read a recycled buffer")
	}

	// Negative space: wrong device, unrelated list, empty list.
	if eng.Holds(1, pl) {
		t.Error("device 0's list reported held on device 1")
	}
	if eng.Holds(0, parent.Lists[1]) {
		t.Error("device 1's list reported held on device 0")
	}
	if eng.Holds(0, nil) {
		t.Error("nil list reported held")
	}
}

// TestForgetRecycledBufferSafety drives the pool-recycling protocol through
// the dirty-cone caches: after Forget releases a retired candidate buffer,
// overwriting it in place must not perturb any simulation — neither of the
// current schedule (whose delta run would otherwise diff against the poisoned
// contents) nor of a new schedule reusing the buffer's identity.
func TestForgetRecycledBufferSafety(t *testing.T) {
	parent := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	opt := Options{NoTimeline: true}
	eng := &Simulator{}

	assertSameOutcome(t, "parent", eng, parent, e, opt)
	child := editDevice(t, parent, 0, 0)
	assertSameOutcome(t, "child", eng, child, e, opt)
	// Reverting to the parent exercises the depth-2 swap restore and leaves
	// the candidate list only in the revert snapshot.
	assertSameOutcome(t, "parent-again", eng, parent, e, opt)

	chl := child.Lists[0]
	if !eng.Holds(0, chl) {
		t.Fatal("retired candidate list not held before Forget")
	}
	eng.Forget(0, chl)
	if eng.Holds(0, chl) {
		t.Fatal("candidate list still held after Forget")
	}

	// The pool hands the buffer to an unrelated user.
	reverseList(chl)

	// The engine must neither read the poisoned buffer when re-simulating the
	// current schedule, nor confuse the new content with the old identity.
	assertSameOutcome(t, "parent-after-poison", eng, parent, e, opt)
	assertSameOutcome(t, "poisoned-content", eng, child, e, opt)
	assertSameOutcome(t, "parent-recovered", eng, parent, e, opt)
}

// TestDetachBasePinAndForget covers the engine-pooling hand-off: Detach
// re-keys identity-matching state onto engine-owned copies, but a base entry
// pinned on a list the search walked away from stays referenced — Holds must
// say so, Forget must release it, and the post-Detach restore must still be
// bit-exact after the caller reclaims and overwrites every released buffer.
func TestDetachBasePinAndForget(t *testing.T) {
	parent := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	opt := Options{NoTimeline: true}
	eng := &Simulator{}

	assertSameOutcome(t, "parent", eng, parent, e, opt) // pins base on parent
	child := editDevice(t, parent, 0, 0)
	assertSameOutcome(t, "child", eng, child, e, opt)
	child2 := editDevice(t, parent, 0, 1)
	assertSameOutcome(t, "child2", eng, child2, e, opt)

	pl := parent.Lists[0]
	eng.Detach()
	// Devices whose identity never changed were re-keyed onto owned copies
	// and their caller buffers are free.
	for d := 1; d < len(parent.Lists); d++ {
		if eng.Holds(d, parent.Lists[d]) {
			t.Errorf("device %d: caller buffer still held after Detach", d)
		}
	}
	if eng.Holds(0, child2.Lists[0]) {
		t.Error("detached active list still held under the caller's identity")
	}
	// Device 0's base entry could not be re-keyed (the search left the
	// starting list behind); it is still read by the armed base restore.
	if !eng.Holds(0, pl) {
		t.Fatal("pinned base identity not reported held after Detach")
	}
	eng.Forget(0, pl)
	if eng.Holds(0, pl) {
		t.Fatal("pinned base identity still held after Forget")
	}

	// The caller reclaims everything the engine released.
	for d := range parent.Lists {
		reverseList(parent.Lists[d])
	}
	reverseList(child2.Lists[0])

	// A fresh build of the same starting content (the tuner's next run over
	// the same grid point) must simulate bit-identically: the restore splices
	// the surviving base devices and fully replays the forgotten one.
	fresh := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	assertSameOutcome(t, "fresh-after-detach", eng, fresh, e, opt)
	assertSameOutcome(t, "fresh-again", eng, fresh, e, opt)
}

// TestForgetInvalidatesProbeCommit: a successful probe whose schedule buffer
// is forgotten (recycled) before adoption must not Commit — the memcpy
// shortcut would re-key the snapshot onto a buffer the pool may already have
// reused. The caller's fallback, a plain adopting simulation, stays exact.
func TestForgetInvalidatesProbeCommit(t *testing.T) {
	parent := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	opt := Options{NoTimeline: true}
	eng := &Simulator{}

	if _, err := eng.Simulate(parent, e, opt); err != nil {
		t.Fatal(err)
	}
	child := editDevice(t, parent, 0, 0)
	popt := opt
	popt.Probe = true
	assertSameOutcome(t, "probe", eng, child, e, popt)

	eng.Forget(0, child.Lists[0])
	if eng.Commit(child) {
		t.Fatal("Commit adopted a schedule whose list identity was forgotten")
	}
	assertSameOutcome(t, "adopt-after-forget", eng, child, e, opt)
}
