package sim

import (
	"mario/internal/cost"
	"mario/internal/pipeline"
)

// MemSim is the device-level memory simulation of §5.2: static memory
// (framework + per-stage training state) is accumulated once, and the dynamic
// activation memory is tracked instruction by instruction in list order,
// recording the peak.
//
// Accounting rules (per micro-batch m on stage s):
//
//   - Forward     +ActFull[s]      retained until the Backward releases it;
//   - CkptForward +ActStash[s]     only the stage input survives; while the
//     instruction runs the transient working set ActWork[s] is also live;
//   - Recompute   +ActFull[s]      the activations are restored and live
//     until the Backward;
//   - Backward    −ActFull[s] and, if the forward was checkpointed,
//     −ActStash[s]; while it runs the ActWork[s] gradient working set is
//     live;
//   - BackwardInput  (the B half of a split backward) −ActFull[s] (and
//     −ActStash[s] if checkpointed) +WGradBytes[s]: the input gradient
//     consumes the activations and leaves behind the stash its deferred
//     weight-gradient half still needs. When the estimator provides no
//     WGradBytes, the stash defaults to everything the activations held, so
//     the pair's accounting degenerates to the fused rule exactly;
//   - BackwardWeight −(the stash its BackwardInput left); while it runs the
//     ActWork[s] working set is live;
//   - a Buffered SendAct holds the stage output (ActP2PBytes) from its
//     CkptForward until the send executes (§5.1 pass 4, scenario 2).
//
// A MemSim incrementally replays the accounting above for one device, one
// instruction at a time. The cluster emulator drives it alongside execution
// to attribute memory to instructions in its event stream; each iteration's
// allocations release by iteration end, so stepping the same list repeatedly
// is valid.
type MemSim struct {
	e          *cost.Estimator
	stages     int
	cur, peak  float64
	inst       float64 // instantaneous high-water of the last Step
	bufferedSA []bool
	ckpted     []bool
	// wgrad holds, per (micro, stage) cell, the weight-gradient stash a
	// BackwardInput acquired and its BackwardWeight will release.
	wgrad []float64
}

// NewMemSim builds the tracker for device d of the schedule, starting at the
// device's static memory (framework + owned weights).
func NewMemSim(s *pipeline.Schedule, e *cost.Estimator, d int) *MemSim {
	m := &MemSim{}
	static := e.FrameworkMem
	for _, st := range deviceStages(s, d) {
		static += e.WeightBytes[st]
	}
	m.rebind(e, s.Micros, s.NumStages(), static, s.Lists[d])
	return m
}

// rebind reinitialises the tracker in place for another device list, reusing
// the bitmap storage; the Simulator's per-device memory walks go through it
// so re-deriving a cached peak allocates nothing.
func (m *MemSim) rebind(e *cost.Estimator, micros, stages int, static float64, list []pipeline.Instr) {
	m.e = e
	m.stages = stages
	m.cur, m.peak = static, static

	// bufferedSA marks (micro, stage) pairs whose SendAct is buffered, so
	// the CkptForward must allocate the staging buffer; ckpted marks pairs
	// whose forward ran checkpointed, so the Backward also releases the
	// stash. Both are flat bitmaps indexed micro*S+stage.
	cells := micros * stages
	if cap(m.bufferedSA) >= cells {
		m.bufferedSA = m.bufferedSA[:cells]
		m.ckpted = m.ckpted[:cells]
		m.wgrad = m.wgrad[:cells]
		clear(m.bufferedSA)
		clear(m.ckpted)
		clear(m.wgrad)
	} else {
		m.bufferedSA = make([]bool, cells)
		m.ckpted = make([]bool, cells)
		m.wgrad = make([]float64, cells)
	}
	for _, in := range list {
		if in.Kind == pipeline.SendAct && in.Buffered {
			m.bufferedSA[m.cell(in)] = true
		}
	}
}

func (m *MemSim) cell(in pipeline.Instr) int { return in.Micro*m.stages + in.Stage }

func (m *MemSim) bump(v float64) {
	m.cur += v
	if m.cur > m.inst {
		m.inst = m.cur
	}
	if m.cur > m.peak {
		m.peak = m.cur
	}
}

// transient records a working set live only while the instruction runs.
func (m *MemSim) transient(v float64) {
	if m.cur+v > m.inst {
		m.inst = m.cur + v
	}
	if m.cur+v > m.peak {
		m.peak = m.cur + v
	}
}

// Step applies one instruction's memory effect and returns the resident
// bytes after it completes (transient working sets count toward Peak but
// not toward the returned value).
func (m *MemSim) Step(in pipeline.Instr) float64 {
	e := m.e
	m.inst = m.cur
	switch in.Kind {
	case pipeline.Forward:
		m.bump(e.ActFull[in.Stage])
	case pipeline.CkptForward:
		m.transient(e.ActWork[in.Stage])
		m.bump(e.ActStash[in.Stage])
		m.ckpted[m.cell(in)] = true
		if m.bufferedSA[m.cell(in)] {
			m.bump(e.ActP2PBytes)
		}
	case pipeline.Recompute:
		m.bump(e.ActFull[in.Stage])
	case pipeline.Backward:
		m.transient(e.ActWork[in.Stage])
		m.cur -= e.ActFull[in.Stage]
		if m.ckpted[m.cell(in)] {
			m.cur -= e.ActStash[in.Stage]
		}
	case pipeline.BackwardInput:
		// The input gradient consumes the activations and leaves behind the
		// weight-gradient stash; without a WGradBytes model the stash keeps
		// everything the activations held, making the BI+WG pair's
		// accounting step-for-step identical to the fused Backward's.
		m.transient(e.ActWork[in.Stage])
		released := e.ActFull[in.Stage]
		if m.ckpted[m.cell(in)] {
			released += e.ActStash[in.Stage]
		}
		m.cur -= released
		g := released
		if e.WGradBytes != nil {
			g = e.WGradBytes[in.Stage]
		}
		m.wgrad[m.cell(in)] = g
		m.bump(g)
	case pipeline.BackwardWeight:
		m.transient(e.ActWork[in.Stage])
		m.cur -= m.wgrad[m.cell(in)]
		m.wgrad[m.cell(in)] = 0
	case pipeline.SendAct:
		if in.Buffered {
			m.cur -= e.ActP2PBytes
		}
	}
	return m.cur
}

// Cur returns the resident bytes after the last Step.
func (m *MemSim) Cur() float64 { return m.cur }

// Peak returns the high-water mark, transients included.
func (m *MemSim) Peak() float64 { return m.peak }

// PeakMemory returns the per-device peak memory of the schedule under the
// estimator's memory model, without running the timing simulation. The
// cluster emulator reuses it as the allocator ground truth.
func PeakMemory(s *pipeline.Schedule, e *cost.Estimator) []float64 {
	peaks := make([]float64, s.NumDevices())
	for d, list := range s.Lists {
		ms := NewMemSim(s, e, d)
		for _, in := range list {
			ms.Step(in)
		}
		peaks[d] = ms.Peak()
	}
	return peaks
}
