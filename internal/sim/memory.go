package sim

import (
	"mario/internal/cost"
	"mario/internal/pipeline"
)

// simulateMemory performs the device-level memory simulation of §5.2: static
// memory (framework + per-stage training state) is accumulated once, and the
// dynamic activation memory is tracked instruction by instruction in list
// order, recording the peak.
//
// Accounting rules (per micro-batch m on stage s):
//
//   - Forward     +ActFull[s]      retained until the Backward releases it;
//   - CkptForward +ActStash[s]     only the stage input survives; while the
//     instruction runs the transient working set ActWork[s] is also live;
//   - Recompute   +ActFull[s]      the activations are restored and live
//     until the Backward;
//   - Backward    −ActFull[s] and, if the forward was checkpointed,
//     −ActStash[s]; while it runs the ActWork[s] gradient working set is
//     live;
//   - a Buffered SendAct holds the stage output (ActP2PBytes) from its
//     CkptForward until the send executes (§5.1 pass 4, scenario 2).
func simulateMemory(s *pipeline.Schedule, e *cost.Estimator, res *Result) {
	copy(res.PeakMem, PeakMemory(s, e))
}

// PeakMemory returns the per-device peak memory of the schedule under the
// estimator's memory model, without running the timing simulation. The
// cluster emulator reuses it as the allocator ground truth.
func PeakMemory(s *pipeline.Schedule, e *cost.Estimator) []float64 {
	peaks := make([]float64, s.NumDevices())
	for d, list := range s.Lists {
		static := e.FrameworkMem
		for _, st := range deviceStages(s, d) {
			static += e.WeightBytes[st]
		}
		cur := static
		peak := cur

		// bufferedSA marks (micro, stage) pairs whose SendAct is buffered,
		// so the CkptForward must allocate the staging buffer; ckpted marks
		// pairs whose forward ran checkpointed, so the Backward also
		// releases the stash. Both are flat bitmaps indexed micro*S+stage.
		S := s.NumStages()
		cell := func(in pipeline.Instr) int { return in.Micro*S + in.Stage }
		bufferedSA := make([]bool, s.Micros*S)
		ckpted := make([]bool, s.Micros*S)
		for _, in := range list {
			if in.Kind == pipeline.SendAct && in.Buffered {
				bufferedSA[cell(in)] = true
			}
		}

		bump := func(v float64) {
			cur += v
			if cur > peak {
				peak = cur
			}
		}
		transient := func(v float64) {
			if cur+v > peak {
				peak = cur + v
			}
		}

		for _, in := range list {
			switch in.Kind {
			case pipeline.Forward:
				bump(e.ActFull[in.Stage])
			case pipeline.CkptForward:
				transient(e.ActWork[in.Stage])
				bump(e.ActStash[in.Stage])
				ckpted[cell(in)] = true
				if bufferedSA[cell(in)] {
					bump(e.ActP2PBytes)
				}
			case pipeline.Recompute:
				bump(e.ActFull[in.Stage])
			case pipeline.Backward, pipeline.BackwardWeight:
				// A whole backward releases the activations when it
				// finishes; a split backward holds them until the deferred
				// weight-gradient half runs (ZB-H1's memory trade-off).
				transient(e.ActWork[in.Stage])
				cur -= e.ActFull[in.Stage]
				if ckpted[cell(in)] {
					cur -= e.ActStash[in.Stage]
				}
			case pipeline.BackwardInput:
				transient(e.ActWork[in.Stage])
			case pipeline.SendAct:
				if in.Buffered {
					cur -= e.ActP2PBytes
				}
			}
		}
		peaks[d] = peak
	}
	return peaks
}
