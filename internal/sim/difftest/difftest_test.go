package difftest

import (
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// TestDeltaVsFullRandomized is the harness's bread and butter: many seeds,
// many steps each, every step differentially checked. Run under -race it
// also covers the engine's scratch reuse across probe/adopt interleavings.
func TestDeltaVsFullRandomized(t *testing.T) {
	steps := 40
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		h, err := NewHarness(int64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := h.Run(steps); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestDeltaVsFullEdgeSchedules pins the equivalence on the shapes the random
// generator visits rarely: single device, one micro-batch, two-device
// minimum pipelines, and a rendezvous workload.
func TestDeltaVsFullEdgeSchedules(t *testing.T) {
	cases := []struct {
		name    string
		scheme  pipeline.Scheme
		devs    int
		micros  int
		rdv     bool
		memLim  float64
		mutates int
	}{
		{name: "single-device", scheme: pipeline.Scheme1F1B, devs: 1, micros: 4, mutates: 6},
		{name: "one-micro", scheme: pipeline.Scheme1F1B, devs: 3, micros: 1, mutates: 6},
		{name: "two-device", scheme: pipeline.Scheme1F1B, devs: 2, micros: 2, mutates: 8},
		{name: "rendezvous", scheme: pipeline.Scheme1F1B, devs: 4, micros: 4, rdv: true, mutates: 6},
		{name: "memlimited", scheme: pipeline.Scheme1F1B, devs: 4, micros: 6, memLim: 1, mutates: 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := scheme.Build(tc.scheme, scheme.Config{Devices: tc.devs, Micros: tc.micros})
			if err != nil {
				t.Fatal(err)
			}
			w := &Workload{
				S:   s,
				Est: cost.Uniform(s.NumStages(), 5, 9, 1),
				Opt: sim.Options{Rendezvous: tc.rdv, MemLimit: tc.memLim},
			}
			w.seed(7)
			h := &Harness{W: w}
			for i := 0; i < tc.mutates; i++ {
				if err := h.Step(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCanonDetectsDivergence makes sure the byte-compare machinery itself
// can see a difference in every section it encodes.
func TestCanonDetectsDivergence(t *testing.T) {
	base := func() *sim.Result {
		return &sim.Result{
			Total:         10,
			SamplesPerSec: 3,
			PeakMem:       []float64{1, 2},
			ComputeBusy:   []float64{4, 5},
			OOMDevices:    []int{},
			Timeline: [][]sim.Span{{
				{Instr: pipeline.Instr{Kind: pipeline.Forward}, Start: 0, End: 1},
			}},
		}
	}
	mutations := []struct {
		name    string
		mutate  func(*sim.Result)
		section string
	}{
		{"total", func(r *sim.Result) { r.Total++ }, "Total"},
		{"samples", func(r *sim.Result) { r.SamplesPerSec++ }, "SamplesPerSec"},
		{"oom", func(r *sim.Result) { r.OOM = true }, "OOM"},
		{"oomdevs", func(r *sim.Result) { r.OOMDevices = append(r.OOMDevices, 1) }, "OOMDevices"},
		{"peak", func(r *sim.Result) { r.PeakMem[1]++ }, "PeakMem"},
		{"busy", func(r *sim.Result) { r.ComputeBusy[0]++ }, "ComputeBusy"},
		{"span-end", func(r *sim.Result) { r.Timeline[0][0].End++ }, "Timeline"},
		{"span-kind", func(r *sim.Result) { r.Timeline[0][0].Instr.Kind = pipeline.Backward }, "Timeline"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			a, b := base(), base()
			m.mutate(b)
			off, section := Diff(Canon(a), Canon(b))
			if off < 0 {
				t.Fatalf("mutation %s not detected", m.name)
			}
			if section != m.section {
				t.Fatalf("mutation %s attributed to section %q, want %q", m.name, section, m.section)
			}
			if err := Compare(a, nil, b, nil); err == nil {
				t.Fatalf("Compare missed the %s divergence", m.name)
			}
			if err := Compare(a, nil, base(), nil); err != nil {
				t.Fatalf("Compare flagged identical results: %v", err)
			}
		})
	}
}

// FuzzDeltaSimEquivalence lets the fuzzer drive the workload seed and step
// count; any counterexample is a schedule+mutation sequence on which delta
// re-simulation diverges from a full run.
func FuzzDeltaSimEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(12))
	f.Add(int64(42), uint8(30))
	f.Add(int64(-7), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		h, err := NewHarness(seed)
		if err != nil {
			t.Skip()
		}
		n := int(steps)%48 + 1
		if err := h.Run(n); err != nil {
			t.Fatal(err)
		}
	})
}
