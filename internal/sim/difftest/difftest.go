// Package difftest is the differential harness behind the simulator's
// equivalence guarantees: delta re-simulation on a reused engine must be
// byte-identical to a full propagation on a fresh engine — same makespan
// bits, same peaks, same timeline spans, same error — for every reachable
// engine state. The harness generates seeded random workloads (schedule,
// estimator, options), drives a long-lived "delta" engine through randomized
// single-device mutations, probe runs, commits, reverts, and cache
// maintenance (Detach, Invalidate, Forget), and after every step checks the
// reused engine's answer against a fresh full simulation of the same
// schedule, failing on the first diverging byte of a canonical encoding.
//
// The tuner's branch-and-bound tests reuse the same canonical-encoding
// helpers (Canon sections, Compare) to prove bnb-vs-grid equivalence, so
// both halves of the search stack share one notion of "identical".
package difftest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// Workload is one randomized simulation subject: a schedule, an estimator,
// and the simulation options every check of this workload uses. Mutations
// rewrite single devices under fresh list identities (the engine contract:
// a cached list's backing array is immutable) and keep the retired lists so
// a revert restores the exact previous identity — the depth-2 snapshot's
// fast path.
type Workload struct {
	S   *pipeline.Schedule
	Est *cost.Estimator
	Opt sim.Options

	rng *rand.Rand
	// prev holds, per device, the list the last mutation replaced (nil when
	// the device was never mutated or was just reverted).
	prev [][]pipeline.Instr
	// desc describes the last mutation for failure messages.
	desc string
}

// NewWorkload builds a deterministic random workload from the seed: scheme,
// device count, micro-batch count, per-stage cost perturbations, optional
// checkpoint passes, memory limit, and DP degree all derive from the seed.
func NewWorkload(seed int64) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{rng: rng}

	devs := 2 + rng.Intn(3) // 2..4
	micros := 3 + rng.Intn(6)
	var sch pipeline.Scheme
	switch rng.Intn(5) {
	case 0:
		sch = pipeline.Scheme1F1B
	case 1:
		sch = pipeline.SchemeChimera
		if devs%2 != 0 {
			devs++
		}
		if micros%2 != 0 {
			micros++
		}
	case 2:
		sch = pipeline.SchemeZBH1
	case 3:
		sch = pipeline.SchemeDualPipeD
		if devs%2 != 0 {
			devs++
		}
		if micros%2 != 0 {
			micros++
		}
	default:
		sch = pipeline.SchemeInterleave
	}
	s, err := scheme.Build(sch, scheme.Config{Devices: devs, Micros: micros, Chunks: 2})
	if err != nil {
		// Scheme constraints (odd Chimera shapes, indivisible Interleave):
		// fall back to 1F1B, which accepts any shape.
		s, err = scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: devs, Micros: micros})
		if err != nil {
			return nil, err
		}
	}

	stages := s.NumStages()
	est := cost.Uniform(stages, 4+rng.Float64()*4, 6+rng.Float64()*6, 1+rng.Float64())
	for st := 0; st < stages; st++ {
		f := 0.5 + rng.Float64()
		est.FwTime[st] *= f
		est.RcTime[st] *= f
		est.BwTime[st] *= 0.5 + rng.Float64()
		est.ActFull[st] *= 0.5 + rng.Float64()
		est.ActStash[st] *= 0.5 + rng.Float64()
		est.ActWork[st] *= 0.5 + rng.Float64()
		est.WeightBytes[st] *= 0.5 + rng.Float64()
	}
	est.LinkLatency = rng.Float64() * 0.5
	est.LaunchOverhead = rng.Float64() * 0.2
	est.FrameworkMem = rng.Float64() * 4
	// Half the workloads model the split-backward weight-gradient stash
	// explicitly; the rest leave WGradBytes nil to exercise the fused-
	// equivalent fallback accounting.
	if rng.Intn(2) == 0 {
		est.WGradBytes = make([]float64, stages)
		for st := range est.WGradBytes {
			est.WGradBytes[st] = est.ActFull[st] * rng.Float64()
		}
	}

	if rng.Intn(2) == 0 {
		graph.ApplyCheckpoint(s)
		graph.OverlapRecompute(s)
		if rng.Intn(2) == 0 {
			graph.RemoveRedundancy(s)
		}
	}

	opt := sim.Options{}
	if rng.Intn(3) == 0 {
		opt.DP = 1 + rng.Intn(3)
	}
	if rng.Intn(2) == 0 {
		// A limit between the smallest and largest device peak makes the OOM
		// flags and device sets part of the differential surface.
		peaks := sim.PeakMemory(s, est)
		lo, hi := peaks[0], peaks[0]
		for _, p := range peaks {
			lo, hi = math.Min(lo, p), math.Max(hi, p)
		}
		opt.MemLimit = lo + rng.Float64()*(hi-lo+1)
	}
	if rng.Intn(8) == 0 {
		// Rendezvous disables delta eligibility; keep a slice of coverage on
		// the reused engine's full-path fallback.
		opt.Rendezvous = true
	}

	w.S = s
	w.Est = est
	w.prev = make([][]pipeline.Instr, s.NumDevices())
	w.Opt = opt
	return w, nil
}

// Desc returns a description of the last mutation (for failure messages).
func (w *Workload) Desc() string { return w.desc }

// seed initializes the mutation source and revert history of a hand-built
// workload; NewWorkload does this itself.
func (w *Workload) seed(s int64) {
	w.rng = rand.New(rand.NewSource(s))
	w.prev = make([][]pipeline.Instr, w.S.NumDevices())
}

// Mutate applies one random single-device mutation under a fresh list
// identity and reports a description of it. Mutations may produce schedules
// that deadlock or mismatch — the differential property covers error results
// too — but always change exactly one device, which is the shape the delta
// engine's dirty-cone analysis is built for.
func (w *Workload) Mutate() string {
	rng := w.rng
	d := rng.Intn(w.S.NumDevices())
	old := w.S.Lists[d]
	n := len(old)
	if n < 2 {
		w.desc = "noop (short list)"
		return w.desc
	}

	kind := rng.Intn(4)
	if kind == 3 && w.prev[d] == nil {
		kind = rng.Intn(3)
	}
	switch kind {
	case 0: // swap two nearby instructions
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(minInt(16, n-i-1))
		if j >= n {
			j = n - 1
		}
		nl := append([]pipeline.Instr(nil), old...)
		nl[i], nl[j] = nl[j], nl[i]
		w.prev[d] = old
		w.S.SetList(d, nl)
		w.desc = fmt.Sprintf("dev%d: swap %d<->%d", d, i, j)
	case 1: // rotate an instruction to an earlier slot (prepose-like)
		j := 1 + rng.Intn(n-1)
		i := j - 1 - rng.Intn(minInt(16, j))
		nl := append([]pipeline.Instr(nil), old...)
		moved := nl[j]
		copy(nl[i+1:j+1], nl[i:j])
		nl[i] = moved
		w.prev[d] = old
		w.S.SetList(d, nl)
		w.desc = fmt.Sprintf("dev%d: rotate %d->%d", d, j, i)
	case 2: // toggle a SendAct's Buffered flag
		var sends []int
		for i, in := range old {
			if in.Kind == pipeline.SendAct {
				sends = append(sends, i)
			}
		}
		if len(sends) == 0 {
			w.desc = "noop (no sends)"
			return w.desc
		}
		i := sends[rng.Intn(len(sends))]
		nl := append([]pipeline.Instr(nil), old...)
		nl[i].Buffered = !nl[i].Buffered
		w.prev[d] = old
		w.S.SetList(d, nl)
		w.desc = fmt.Sprintf("dev%d: flip Buffered at %d", d, i)
	default: // revert to the exact previous identity (depth-2 swap path)
		w.S.SetList(d, w.prev[d])
		w.prev[d] = nil
		w.desc = fmt.Sprintf("dev%d: revert", d)
	}
	return w.desc
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Harness drives a long-lived delta engine against fresh-full references.
type Harness struct {
	W *Workload
	// Delta is the engine under test: reused across steps so it exercises
	// the delta path, probe mode, Commit, snapshot reverts, and the rebuild
	// plans.
	Delta sim.Simulator
	steps int
}

// NewHarness builds a harness over a fresh workload for the seed.
func NewHarness(seed int64) (*Harness, error) {
	w, err := NewWorkload(seed)
	if err != nil {
		return nil, err
	}
	return &Harness{W: w}, nil
}

// Step advances the harness once: maybe mutate the workload, maybe exercise
// an engine-maintenance entry point, run the delta engine (randomly in probe
// mode, sometimes committing the probe), run a fresh full reference, and
// compare byte-for-byte. A non-nil error is a disproof of the equivalence.
func (h *Harness) Step() error {
	w := h.W
	rng := w.rng
	h.steps++

	if h.steps > 1 && rng.Intn(4) != 0 {
		w.Mutate()
	}
	switch rng.Intn(12) {
	case 0:
		h.Delta.Detach()
	case 1:
		h.Delta.Invalidate()
	case 2:
		d := rng.Intn(w.S.NumDevices())
		if h.Delta.Holds(d, w.S.Lists[d]) {
			h.Delta.Forget(d, w.S.Lists[d])
		}
	}

	opt := w.Opt
	opt.NoTimeline = rng.Intn(3) == 0
	probe := rng.Intn(3) == 0

	dOpt := opt
	dOpt.Probe = probe
	runs0 := h.Delta.DeltaStats().Runs
	dRes, dErr := h.Delta.Simulate(w.S, w.Est, dOpt)
	if dErr == nil && probe && rng.Intn(2) == 0 {
		// Commit must adopt a successful probe the engine answered via the
		// delta path; on a full-path probe (fresh engine, rendezvous) it is
		// allowed to refuse and the caller re-simulates, so only the delta
		// case is a hard requirement.
		wasDelta := h.Delta.DeltaStats().Runs > runs0
		if !h.Delta.Commit(w.S) && wasDelta {
			return fmt.Errorf("step %d (%s): Commit refused a successful delta probe of the same schedule", h.steps, w.desc)
		}
	}

	fOpt := opt
	fOpt.NoDelta = true
	ref := &sim.Simulator{}
	fRes, fErr := ref.Simulate(w.S, w.Est, fOpt)

	if err := Compare(dRes, dErr, fRes, fErr); err != nil {
		return fmt.Errorf("step %d (%s, probe=%t): %w", h.steps, w.desc, probe, err)
	}
	return nil
}

// Run executes n steps and returns the first divergence, if any.
func (h *Harness) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := h.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Compare checks two (result, error) pairs for byte-identical agreement:
// the errors must match sentinel-for-sentinel, and the results must encode
// to identical bytes. The returned error names the first diverging byte and
// the canonical section it falls in.
func Compare(a *sim.Result, aErr error, b *sim.Result, bErr error) error {
	if (aErr == nil) != (bErr == nil) {
		return fmt.Errorf("error mismatch: delta=%v full=%v", aErr, bErr)
	}
	if aErr != nil {
		for _, sentinel := range []error{sim.ErrDeadlock, sim.ErrCommMismatch} {
			if errors.Is(aErr, sentinel) != errors.Is(bErr, sentinel) {
				return fmt.Errorf("error class mismatch: delta=%v full=%v", aErr, bErr)
			}
		}
		return nil
	}
	ca, cb := Canon(a), Canon(b)
	if off, section := Diff(ca, cb); off >= 0 {
		return fmt.Errorf("results diverge at byte %d (%s): delta=%s full=%s",
			off, section, hexAround(ca, off), hexAround(cb, off))
	}
	return nil
}

// canonSection tags each region of the canonical encoding so a diverging
// byte offset maps back to a named field.
type canonSection struct {
	name string
	end  int
}

type canonBuf struct {
	b        []byte
	sections []canonSection
}

func (c *canonBuf) section(name string) {
	c.sections = append(c.sections, canonSection{name: name, end: -1})
}

func (c *canonBuf) close() {
	if n := len(c.sections); n > 0 && c.sections[n-1].end < 0 {
		c.sections[n-1].end = len(c.b)
	}
}

func (c *canonBuf) f64(v float64) {
	c.b = binary.BigEndian.AppendUint64(c.b, math.Float64bits(v))
}

func (c *canonBuf) i64(v int64) {
	c.b = binary.BigEndian.AppendUint64(c.b, uint64(v))
}

func (c *canonBuf) bool(v bool) {
	if v {
		c.b = append(c.b, 1)
	} else {
		c.b = append(c.b, 0)
	}
}

func (c *canonBuf) instr(in pipeline.Instr) {
	c.b = append(c.b, byte(in.Kind))
	c.i64(int64(in.Micro))
	c.i64(int64(in.Part))
	c.i64(int64(in.Stage))
	c.bool(in.Buffered)
}

// Canon serializes a Result canonically: float bits big-endian, slices
// length-prefixed, timeline spans in device-then-list order. Two Results are
// equal as values iff their canonical encodings are equal as bytes.
func Canon(r *sim.Result) []byte {
	c := &canonBuf{}
	c.section("Total")
	c.f64(r.Total)
	c.close()
	c.section("SamplesPerSec")
	c.f64(r.SamplesPerSec)
	c.close()
	c.section("OOM")
	c.bool(r.OOM)
	c.close()
	c.section("OOMDevices")
	c.i64(int64(len(r.OOMDevices)))
	for _, d := range r.OOMDevices {
		c.i64(int64(d))
	}
	c.close()
	c.section("PeakMem")
	c.i64(int64(len(r.PeakMem)))
	for _, p := range r.PeakMem {
		c.f64(p)
	}
	c.close()
	c.section("ComputeBusy")
	c.i64(int64(len(r.ComputeBusy)))
	for _, p := range r.ComputeBusy {
		c.f64(p)
	}
	c.close()
	c.section("Timeline")
	c.bool(r.Timeline != nil)
	c.i64(int64(len(r.Timeline)))
	for _, spans := range r.Timeline {
		c.i64(int64(len(spans)))
		for _, sp := range spans {
			c.instr(sp.Instr)
			c.f64(sp.Start)
			c.f64(sp.End)
		}
	}
	c.close()
	return c.markers()
}

// markers flattens the tagged buffer: the section table rides in front so
// Diff can name the section of an offset without re-deriving the layout.
func (c *canonBuf) markers() []byte {
	// Header: count, then (name length, name bytes, end offset) per section;
	// payload follows. Offsets in Diff are payload-relative.
	hdr := binary.BigEndian.AppendUint64(nil, uint64(len(c.sections)))
	for _, s := range c.sections {
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(s.name)))
		hdr = append(hdr, s.name...)
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(s.end))
	}
	return append(hdr, c.b...)
}

// Diff returns the first payload byte where the two canonical encodings
// diverge and the section it falls in, or (-1, "") when identical.
func Diff(a, b []byte) (int, string) {
	sa, pa := splitCanon(a)
	sb, pb := splitCanon(b)
	n := minInt(len(pa), len(pb))
	for i := 0; i < n; i++ {
		if pa[i] != pb[i] {
			return i, sectionAt(sa, i)
		}
	}
	if len(pa) != len(pb) {
		longer := sa
		if len(pb) > len(pa) {
			longer = sb
		}
		return n, sectionAt(longer, n)
	}
	return -1, ""
}

func splitCanon(buf []byte) ([]canonSection, []byte) {
	if len(buf) < 8 {
		return nil, buf
	}
	n := binary.BigEndian.Uint64(buf)
	off := 8
	sections := make([]canonSection, 0, n)
	for i := uint64(0); i < n; i++ {
		if off+8 > len(buf) {
			return nil, buf
		}
		l := int(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		if off+l+8 > len(buf) {
			return nil, buf
		}
		name := string(buf[off : off+l])
		off += l
		end := int(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		sections = append(sections, canonSection{name: name, end: end})
	}
	return sections, buf[off:]
}

func sectionAt(sections []canonSection, off int) string {
	for _, s := range sections {
		if off < s.end {
			return s.name
		}
	}
	return "trailing"
}

func hexAround(buf []byte, off int) string {
	_, p := splitCanon(buf)
	lo := maxInt(0, off-4)
	hi := minInt(len(p), off+4)
	return fmt.Sprintf("%x", p[lo:hi])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
