// Package sim implements Mario's simulator-based performance model (§5.2).
//
// Given a schedule (instruction lists) and a latency/memory estimator, the
// simulator derives the earliest start time of every instruction by
// propagating the horizontal dependencies (list order within a device) and
// vertical dependencies (matched communication pairs across devices) — the
// dynamic-programming formulation of the paper, with no hand-identified
// critical path. It also performs the device-level memory simulation and
// flags out-of-memory configurations.
//
// The paper reports ~700 ms to simulate GPT3-13B (64 micro-batches, Chimera,
// 32 GPUs); this implementation precomputes all cross-device matches into
// flat arrays so the propagation loop runs allocation-free, and simulates
// the same size in a few milliseconds.
package sim

import (
	"errors"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// ErrDeadlock is returned when rendezvous communication can make no
// progress; the error text names a blocked instruction.
var ErrDeadlock = errors.New("sim: communication deadlock")

// ErrCommMismatch is returned when a receive pops a message other than the
// one it expects from the FIFO link, i.e. the schedule posts sends and
// receives on a device pair in inconsistent orders. This is the failure mode
// pass 4 of the graph tuner must avoid by buffering SendAct instructions.
var ErrCommMismatch = errors.New("sim: send/recv order mismatch on link")

// Options configures a simulation run.
type Options struct {
	// DP is the data-parallel degree; it sizes the cool-down all-reduce.
	// Zero means 1 (no data parallelism).
	DP int
	// Rendezvous makes sends block until the matching receive is posted
	// (fully synchronous p2p). The default is eager sends through a FIFO
	// link per device pair and channel, which matches NCCL-style tagged
	// p2p: a send completes into the link buffer, and receives must pop
	// messages in send order.
	Rendezvous bool
	// MemLimit is the per-device memory capacity in bytes; peaks above it
	// mark the result OOM. Zero disables the check.
	MemLimit float64
	// NoTimeline skips recording per-instruction spans (saves allocation
	// in search loops that only need totals).
	NoTimeline bool
	// NoDelta disables delta re-simulation on a reused Simulator, forcing
	// every call to re-propagate the full timeline. Delta simulation is
	// bit-identical to the full run by construction (see delta.go), so this
	// exists as an escape hatch and for the differential tests that prove
	// the equivalence. It never affects results, only speed.
	NoDelta bool
	// Probe marks the run as a throwaway candidate evaluation: a delta
	// replay diffs against the engine's snapshot as usual but writes its
	// completion clocks to scratch, leaving the snapshot fixpoint (and its
	// trustworthy horizon) untouched — a probe that deadlocks or
	// mismatches costs nothing on later runs, and every probe diffs
	// against the same accepted baseline instead of the previous
	// candidate. Search loops that evaluate many try-then-revert
	// mutations of one accepted schedule set it; runs that establish a
	// new accepted state leave it unset so the fixpoint follows. Like
	// NoDelta it never affects results, only speed.
	Probe bool
}

// Span records the simulated execution interval of one instruction.
type Span struct {
	Instr      pipeline.Instr
	Start, End float64
}

// Result is the simulator output.
type Result struct {
	// Total is the iteration makespan in seconds.
	Total float64
	// Timeline holds per-device instruction spans in execution order
	// (nil when Options.NoTimeline is set).
	Timeline [][]Span
	// PeakMem is the per-device peak memory in bytes.
	PeakMem []float64
	// OOM reports whether any device exceeded Options.MemLimit.
	OOM bool
	// OOMDevices lists the devices that exceeded the limit.
	OOMDevices []int
	// ComputeBusy is the per-device time spent in compute instructions.
	ComputeBusy []float64
	// SamplesPerSec is the end-to-end training throughput
	// (micros × micro-batch size × dp / Total).
	SamplesPerSec float64
}

// BubbleRatio returns the fraction of the makespan the given device spends
// outside compute instructions.
func (r *Result) BubbleRatio(dev int) float64 {
	if r.Total <= 0 {
		return 0
	}
	return 1 - r.ComputeBusy[dev]/r.Total
}

// MinMaxPeak returns the smallest and largest per-device peak memory, the
// (Min,Max GB) columns of Table 5.
func (r *Result) MinMaxPeak() (lo, hi float64) {
	lo, hi = r.PeakMem[0], r.PeakMem[0]
	for _, p := range r.PeakMem[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi
}

// instClass partitions instruction kinds by simulator behaviour.
type instClass uint8

const (
	classCompute instClass = iota
	classSend
	classRecv
)

// meta is the precomputed per-instruction simulation metadata.
type meta struct {
	class instClass
	// dur is the compute duration (overhead included) for classCompute.
	dur float64
	// comm is the transfer latency for sends/receives.
	comm float64
	// matchDev/matchIdx locate the paired instruction for comm classes
	// (-1 when unmatched, which Validate would reject).
	matchDev, matchIdx int32
	// link indexes the FIFO this comm instruction uses.
	link int32
	// compute marks kinds counted into ComputeBusy.
	compute bool
}

// Simulate runs the dynamic-programming timeline and memory simulation.
//
// It delegates to a zero-value Simulator, so the package-level function and a
// reused engine are the same code path; search loops that evaluate many
// schedule candidates should hold a Simulator to amortise the metadata
// precomputation and working buffers across calls.
func Simulate(s *pipeline.Schedule, e *cost.Estimator, opt Options) (*Result, error) {
	var eng Simulator
	return eng.Simulate(s, e, opt)
}

// channelOf maps a communication kind to its link channel: activations and
// gradients travel on independent tagged channels.
func channelOf(k pipeline.Kind) int {
	if k == pipeline.SendGrad || k == pipeline.RecvGrad {
		return 1
	}
	return 0
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// deviceStages returns the distinct stages whose weights device dev holds
// (two for Chimera devices, one per chunk for interleaved devices).
func deviceStages(s *pipeline.Schedule, dev int) []int {
	return appendDeviceStages(nil, s.Placement, dev)
}

// appendDeviceStages is the append-style form of deviceStages; the Simulator
// uses it to fill its per-device cache without allocating.
func appendDeviceStages(out []int, pl pipeline.Placement, dev int) []int {
	for st := 0; st < pl.NumStages(); st++ {
		for p := 0; p < pl.NumParts(); p++ {
			if pl.Device(p, st) == dev {
				out = append(out, st)
				break
			}
		}
	}
	return out
}
