// Package sim implements Mario's simulator-based performance model (§5.2).
//
// Given a schedule (instruction lists) and a latency/memory estimator, the
// simulator derives the earliest start time of every instruction by
// propagating the horizontal dependencies (list order within a device) and
// vertical dependencies (matched communication pairs across devices) — the
// dynamic-programming formulation of the paper, with no hand-identified
// critical path. It also performs the device-level memory simulation and
// flags out-of-memory configurations.
//
// The paper reports ~700 ms to simulate GPT3-13B (64 micro-batches, Chimera,
// 32 GPUs); this implementation precomputes all cross-device matches into
// flat arrays so the propagation loop runs allocation-free, and simulates
// the same size in a few milliseconds.
package sim

import (
	"errors"
	"fmt"
	"math"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// ErrDeadlock is returned when rendezvous communication can make no
// progress; the error text names a blocked instruction.
var ErrDeadlock = errors.New("sim: communication deadlock")

// ErrCommMismatch is returned when a receive pops a message other than the
// one it expects from the FIFO link, i.e. the schedule posts sends and
// receives on a device pair in inconsistent orders. This is the failure mode
// pass 4 of the graph tuner must avoid by buffering SendAct instructions.
var ErrCommMismatch = errors.New("sim: send/recv order mismatch on link")

// Options configures a simulation run.
type Options struct {
	// DP is the data-parallel degree; it sizes the cool-down all-reduce.
	// Zero means 1 (no data parallelism).
	DP int
	// Rendezvous makes sends block until the matching receive is posted
	// (fully synchronous p2p). The default is eager sends through a FIFO
	// link per device pair and channel, which matches NCCL-style tagged
	// p2p: a send completes into the link buffer, and receives must pop
	// messages in send order.
	Rendezvous bool
	// MemLimit is the per-device memory capacity in bytes; peaks above it
	// mark the result OOM. Zero disables the check.
	MemLimit float64
	// NoTimeline skips recording per-instruction spans (saves allocation
	// in search loops that only need totals).
	NoTimeline bool
}

// Span records the simulated execution interval of one instruction.
type Span struct {
	Instr      pipeline.Instr
	Start, End float64
}

// Result is the simulator output.
type Result struct {
	// Total is the iteration makespan in seconds.
	Total float64
	// Timeline holds per-device instruction spans in execution order
	// (nil when Options.NoTimeline is set).
	Timeline [][]Span
	// PeakMem is the per-device peak memory in bytes.
	PeakMem []float64
	// OOM reports whether any device exceeded Options.MemLimit.
	OOM bool
	// OOMDevices lists the devices that exceeded the limit.
	OOMDevices []int
	// ComputeBusy is the per-device time spent in compute instructions.
	ComputeBusy []float64
	// SamplesPerSec is the end-to-end training throughput
	// (micros × micro-batch size × dp / Total).
	SamplesPerSec float64
}

// BubbleRatio returns the fraction of the makespan the given device spends
// outside compute instructions.
func (r *Result) BubbleRatio(dev int) float64 {
	if r.Total <= 0 {
		return 0
	}
	return 1 - r.ComputeBusy[dev]/r.Total
}

// MinMaxPeak returns the smallest and largest per-device peak memory, the
// (Min,Max GB) columns of Table 5.
func (r *Result) MinMaxPeak() (lo, hi float64) {
	lo, hi = r.PeakMem[0], r.PeakMem[0]
	for _, p := range r.PeakMem[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi
}

// instClass partitions instruction kinds by simulator behaviour.
type instClass uint8

const (
	classCompute instClass = iota
	classSend
	classRecv
)

// meta is the precomputed per-instruction simulation metadata.
type meta struct {
	class instClass
	// dur is the compute duration (overhead included) for classCompute.
	dur float64
	// comm is the transfer latency for sends/receives.
	comm float64
	// matchDev/matchIdx locate the paired instruction for comm classes
	// (-1 when unmatched, which Validate would reject).
	matchDev, matchIdx int32
	// link indexes the FIFO this comm instruction uses.
	link int32
	// compute marks kinds counted into ComputeBusy.
	compute bool
}

// Simulate runs the dynamic-programming timeline and memory simulation.
func Simulate(s *pipeline.Schedule, e *cost.Estimator, opt Options) (*Result, error) {
	if e.Stages != s.NumStages() {
		return nil, fmt.Errorf("sim: estimator built for %d stages, schedule has %d", e.Stages, s.NumStages())
	}
	dp := opt.DP
	if dp <= 0 {
		dp = 1
	}
	D := s.NumDevices()
	res := &Result{
		PeakMem:     make([]float64, D),
		ComputeBusy: make([]float64, D),
	}
	if !opt.NoTimeline {
		res.Timeline = make([][]Span, D)
	}

	metas, nLinks, err := precompute(s, e, dp)
	if err != nil {
		return nil, err
	}

	clock := make([]float64, D)
	pc := make([]int, D)
	// posted[d][i] is the time device d reached instruction i (NaN before).
	posted := make([][]float64, D)
	// done[d][i] is the completion time of receive i on device d (NaN
	// before); rendezvous senders read their match's slot.
	done := make([][]float64, D)
	for d := 0; d < D; d++ {
		posted[d] = nanSlice(len(s.Lists[d]))
		done[d] = nanSlice(len(s.Lists[d]))
	}
	type fifoMsg struct {
		dev, idx int32
		arrive   float64
	}
	fifos := make([][]fifoMsg, nLinks)
	fifoHead := make([]int, nLinks)

	progress := true
	for progress {
		progress = false
		for d := 0; d < D; d++ {
		deviceLoop:
			for pc[d] < len(s.Lists[d]) {
				i := pc[d]
				m := &metas[d][i]
				start := clock[d]
				if math.IsNaN(posted[d][i]) {
					posted[d][i] = start
				}
				switch m.class {
				case classCompute:
					clock[d] = start + m.dur
					if m.compute {
						res.ComputeBusy[d] += m.dur
					}
				case classSend:
					if opt.Rendezvous {
						peerPost := posted[m.matchDev][m.matchIdx]
						if math.IsNaN(peerPost) {
							break deviceLoop
						}
						t := max64(start, peerPost) + e.LaunchOverhead + m.comm
						done[m.matchDev][m.matchIdx] = t
						clock[d] = t
					} else {
						fifos[m.link] = append(fifos[m.link], fifoMsg{
							dev: m.matchDev, idx: m.matchIdx,
							arrive: start + e.LaunchOverhead + m.comm,
						})
						clock[d] = start + e.LaunchOverhead
					}
				case classRecv:
					if opt.Rendezvous {
						if t := done[d][i]; !math.IsNaN(t) {
							clock[d] = t
							break
						}
						peerPost := posted[m.matchDev][m.matchIdx]
						if math.IsNaN(peerPost) {
							break deviceLoop
						}
						t := max64(start, peerPost) + e.LaunchOverhead + m.comm
						done[d][i] = t
						clock[d] = t
					} else {
						q := fifos[m.link]
						h := fifoHead[m.link]
						if h >= len(q) {
							break deviceLoop
						}
						msg := q[h]
						if int(msg.dev) != d || int(msg.idx) != i {
							return nil, fmt.Errorf("%w: device %d expects %s but link head is for dev%d[%d]",
								ErrCommMismatch, d, s.Lists[d][i], msg.dev, msg.idx)
						}
						fifoHead[m.link] = h + 1
						clock[d] = max64(start+e.LaunchOverhead, msg.arrive)
					}
				}
				if !opt.NoTimeline {
					res.Timeline[d] = append(res.Timeline[d], Span{Instr: s.Lists[d][i], Start: start, End: clock[d]})
				}
				pc[d]++
				progress = true
			}
		}
	}
	for d := 0; d < D; d++ {
		if pc[d] < len(s.Lists[d]) {
			return nil, fmt.Errorf("%w: device %d blocked at %s", ErrDeadlock, d, s.Lists[d][pc[d]])
		}
		if clock[d] > res.Total {
			res.Total = clock[d]
		}
	}

	simulateMemory(s, e, res)
	if opt.MemLimit > 0 {
		for d, p := range res.PeakMem {
			if p > opt.MemLimit {
				res.OOM = true
				res.OOMDevices = append(res.OOMDevices, d)
			}
		}
	}
	if res.Total > 0 {
		res.SamplesPerSec = float64(s.Micros*e.MicroBatch*dp) / res.Total
	}
	return res, nil
}

// precompute resolves durations and communication matches once.
func precompute(s *pipeline.Schedule, e *cost.Estimator, dp int) ([][]meta, int, error) {
	D := s.NumDevices()
	idx := make(map[uint64][2]int32, s.TotalInstrs())
	for d, list := range s.Lists {
		for i, in := range list {
			idx[in.Key().Pack()] = [2]int32{int32(d), int32(i)}
		}
	}
	metas := make([][]meta, D)
	linkIDs := make(map[[3]int]int32)
	for d := 0; d < D; d++ {
		metas[d] = make([]meta, len(s.Lists[d]))
		for i, in := range s.Lists[d] {
			m := &metas[d][i]
			m.matchDev, m.matchIdx = -1, -1
			switch in.Kind {
			case pipeline.Forward, pipeline.CkptForward:
				m.dur = e.LaunchOverhead + e.FwTime[in.Stage]
				m.compute = true
			case pipeline.Backward:
				m.dur = e.LaunchOverhead + e.BwTime[in.Stage]
				m.compute = true
			case pipeline.BackwardInput:
				m.dur = e.LaunchOverhead + e.BwTime[in.Stage]*e.BwSplitRatio
				m.compute = true
			case pipeline.BackwardWeight:
				m.dur = e.LaunchOverhead + e.BwTime[in.Stage]*(1-e.BwSplitRatio)
				m.compute = true
			case pipeline.Recompute:
				m.dur = e.LaunchOverhead + e.RcTime[in.Stage]
				m.compute = true
			case pipeline.AllReduce:
				m.dur = e.LaunchOverhead + e.AllReduceTime(dp, deviceStages(s, d))
				m.compute = true
			case pipeline.OptimizerStep:
				m.dur = e.LaunchOverhead + e.OptTime
				m.compute = true
			case pipeline.SendAct, pipeline.SendGrad, pipeline.RecvAct, pipeline.RecvGrad:
				bytes := e.ActP2PBytes
				if in.Kind == pipeline.SendGrad || in.Kind == pipeline.RecvGrad {
					bytes = e.GradP2PBytes
				}
				m.comm = e.CommTime(bytes)
				loc, ok := idx[s.MatchKey(in).Pack()]
				if !ok {
					return nil, 0, fmt.Errorf("sim: %s on device %d has no matching instruction", in, d)
				}
				m.matchDev, m.matchIdx = loc[0], loc[1]
				peer := s.PeerDevice(d, in)
				var lk [3]int
				if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
					m.class = classSend
					lk = [3]int{d, peer, channelOf(in.Kind)}
				} else {
					m.class = classRecv
					lk = [3]int{peer, d, channelOf(in.Kind)}
				}
				id, ok := linkIDs[lk]
				if !ok {
					id = int32(len(linkIDs))
					linkIDs[lk] = id
				}
				m.link = id
			default:
				m.dur = e.LaunchOverhead
			}
		}
	}
	return metas, len(linkIDs), nil
}

func nanSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.NaN()
	}
	return s
}

// channelOf maps a communication kind to its link channel: activations and
// gradients travel on independent tagged channels.
func channelOf(k pipeline.Kind) int {
	if k == pipeline.SendGrad || k == pipeline.RecvGrad {
		return 1
	}
	return 0
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// deviceStages returns the distinct stages whose weights device dev holds
// (two for Chimera devices, one per chunk for interleaved devices).
func deviceStages(s *pipeline.Schedule, dev int) []int {
	var out []int
	pl := s.Placement
	for st := 0; st < pl.NumStages(); st++ {
		for p := 0; p < pl.NumParts(); p++ {
			if pl.Device(p, st) == dev {
				out = append(out, st)
				break
			}
		}
	}
	return out
}
