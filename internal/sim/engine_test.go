package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
)

// assertSameOutcome simulates s on the (possibly warm) engine and on the
// package-level Simulate and requires bit-identical results — including
// identical error strings on failure paths.
func assertSameOutcome(t *testing.T, name string, eng *Simulator, s *pipeline.Schedule, e *cost.Estimator, opt Options) {
	t.Helper()
	want, wantErr := Simulate(s, e, opt)
	got, gotErr := eng.Simulate(s, e, opt)
	if (wantErr == nil) != (gotErr == nil) ||
		(wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("%s: error mismatch: fresh=%v engine=%v", name, wantErr, gotErr)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: engine result differs from fresh Simulate\nfresh:  %+v\nengine: %+v", name, want, got)
	}
}

// TestSimulatorMatchesSimulate runs one shared engine across the full
// scheme × options matrix — interleaved, so every call hits a cache carrying
// another schedule's state — and requires bit-identical output to a fresh
// package-level Simulate each time.
func TestSimulatorMatchesSimulate(t *testing.T) {
	type sc struct {
		name string
		s    *pipeline.Schedule
		e    *cost.Estimator
	}
	var scheds []sc
	add := func(name string, sch pipeline.Scheme, cfg scheme.Config, stages int) {
		scheds = append(scheds, sc{name: name, s: build(t, sch, cfg), e: cost.Uniform(stages, 1, 2, 0.25)})
	}
	add("gpipe", pipeline.SchemeGPipe, scheme.Config{Devices: 4, Micros: 6}, 4)
	add("1f1b", pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8}, 4)
	add("chimera", pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 4}, 4)
	add("interleave", pipeline.SchemeInterleave, scheme.Config{Devices: 4, Micros: 8, Chunks: 2}, 8)

	opts := []struct {
		name string
		opt  Options
	}{
		{"default", Options{}},
		{"notimeline", Options{NoTimeline: true}},
		{"dp4", Options{DP: 4}},
		{"oom", Options{MemLimit: 1}}, // absurdly small: every device OOMs
		{"rendezvous", Options{Rendezvous: true}},
		{"rendezvous-notimeline", Options{Rendezvous: true, NoTimeline: true}},
	}

	eng := &Simulator{}
	// Two passes so the second visit of every (schedule, options) pair runs
	// against a fully warm cache last touched by a different schedule.
	for pass := 0; pass < 2; pass++ {
		for _, tc := range scheds {
			for _, o := range opts {
				name := fmt.Sprintf("pass%d/%s/%s", pass, tc.name, o.name)
				assertSameOutcome(t, name, eng, tc.s, tc.e, o.opt)
			}
		}
	}
}

// TestSimulatorIncrementalEdits drives one engine over a chain of
// copy-on-write candidates — each sharing all but one list with its parent —
// alternating parent and child, and requires every outcome (including the
// error outcomes that in-list reorderings can produce) to match a fresh
// Simulate. This is the graph tuner's exact access pattern.
func TestSimulatorIncrementalEdits(t *testing.T) {
	parent := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	eng := &Simulator{}
	opt := Options{NoTimeline: true}

	assertSameOutcome(t, "parent", eng, parent, e, opt)
	for d := 0; d < parent.NumDevices(); d++ {
		c := parent.Clone()
		list := c.MutableList(d)
		// Swap the first two compute instructions of the device; depending
		// on the device this yields a different-but-legal schedule or a
		// comm-order error — both must match the fresh simulator.
		swapped := false
		for i := 0; i+1 < len(list) && !swapped; i++ {
			if list[i].Kind.IsCompute() && list[i+1].Kind.IsCompute() {
				list[i], list[i+1] = list[i+1], list[i]
				swapped = true
			}
		}
		assertSameOutcome(t, fmt.Sprintf("child-%d", d), eng, c, e, opt)
		// Re-simulating the parent right after exercises the cache-restore
		// path for the edited device.
		assertSameOutcome(t, fmt.Sprintf("parent-after-%d", d), eng, parent, e, opt)
	}
}

// TestSimulatorErrorPathsMatch pins the two hand-built failure modes — a
// rendezvous cycle (deadlock) and an eager send/recv reorder (comm
// mismatch) — and requires the engine to report byte-identical errors, then
// to recover on the next valid schedule.
func TestSimulatorErrorPathsMatch(t *testing.T) {
	e := cost.Uniform(2, 1, 2, 0.25)
	eng := &Simulator{}

	// Deadlock under rendezvous: dev0 sends before receiving, dev1 sends
	// before receiving — a circular wait.
	dead := &pipeline.Schedule{
		Scheme:    pipeline.Scheme1F1B,
		Placement: pipeline.NewLinearPlacement(2),
		Micros:    1,
		Lists: [][]pipeline.Instr{
			{
				{Kind: pipeline.Forward, Micro: 0, Stage: 0},
				{Kind: pipeline.SendAct, Micro: 0, Stage: 0},
				{Kind: pipeline.RecvGrad, Micro: 0, Stage: 0},
				{Kind: pipeline.Backward, Micro: 0, Stage: 0},
			},
			{
				{Kind: pipeline.SendGrad, Micro: 0, Stage: 1},
				{Kind: pipeline.RecvAct, Micro: 0, Stage: 1},
				{Kind: pipeline.Forward, Micro: 0, Stage: 1},
				{Kind: pipeline.Backward, Micro: 0, Stage: 1},
			},
		},
	}
	assertSameOutcome(t, "deadlock", eng, dead, e, Options{Rendezvous: true})

	// Comm mismatch under eager FIFOs: dev0 sends micro 0 then 1, dev1
	// receives micro 1 then 0.
	mism := &pipeline.Schedule{
		Scheme:    pipeline.Scheme1F1B,
		Placement: pipeline.NewLinearPlacement(2),
		Micros:    2,
		Lists: [][]pipeline.Instr{
			{
				{Kind: pipeline.Forward, Micro: 0, Stage: 0},
				{Kind: pipeline.SendAct, Micro: 0, Stage: 0},
				{Kind: pipeline.Forward, Micro: 1, Stage: 0},
				{Kind: pipeline.SendAct, Micro: 1, Stage: 0},
			},
			{
				{Kind: pipeline.RecvAct, Micro: 1, Stage: 1},
				{Kind: pipeline.Forward, Micro: 1, Stage: 1},
				{Kind: pipeline.RecvAct, Micro: 0, Stage: 1},
				{Kind: pipeline.Forward, Micro: 0, Stage: 1},
			},
		},
	}
	assertSameOutcome(t, "mismatch", eng, mism, e, Options{})

	// After an error the engine must rebuild cleanly.
	good := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 2, Micros: 4})
	assertSameOutcome(t, "recovery", eng, good, e, Options{})
}

// TestSimulatorSteadyStateAllocs proves the tentpole's O(1) claim: once
// warm, re-simulating the same schedule allocates only the returned Result
// (one struct + two per-device slices), independent of schedule size.
func TestSimulatorSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		d, n int
	}{
		{"small", 4, 8},
		{"large", 8, 32},
	} {
		s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: tc.d, Micros: tc.n})
		e := cost.Uniform(tc.d, 1, 2, 0.25)
		eng := &Simulator{}
		opt := Options{NoTimeline: true}
		if _, err := eng.Simulate(s, e, opt); err != nil {
			t.Fatalf("%s: warmup: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := eng.Simulate(s, e, opt); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		})
		// 3 expected (Result + PeakMem + ComputeBusy); leave headroom for
		// runtime noise but stay far below anything size-dependent.
		if allocs > 6 {
			t.Errorf("%s: steady-state Simulate allocates %.0f objects/run, want ≤ 6", tc.name, allocs)
		}
	}
}

// TestSimulatorRebindsAcrossEstimators checks that swapping the estimator or
// options invalidates the engine's caches rather than serving stale
// durations.
func TestSimulatorRebindsAcrossEstimators(t *testing.T) {
	s := build(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	e1 := cost.Uniform(4, 1, 2, 0.25)
	e2 := cost.Uniform(4, 2, 4, 0.5)
	eng := &Simulator{}
	assertSameOutcome(t, "e1", eng, s, e1, Options{})
	assertSameOutcome(t, "e2", eng, s, e2, Options{})
	assertSameOutcome(t, "e1-again", eng, s, e1, Options{DP: 8})
	r1, err := eng.Simulate(s, e1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Simulate(s, e2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total == r2.Total {
		t.Error("different estimators produced identical makespans; cache not invalidated?")
	}
	if math.IsNaN(r1.Total) || math.IsNaN(r2.Total) {
		t.Error("NaN makespan")
	}
}
