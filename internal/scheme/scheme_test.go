package scheme

import (
	"testing"
	"testing/quick"

	"mario/internal/pipeline"
)

func mustBuild(t *testing.T, s pipeline.Scheme, cfg Config) *pipeline.Schedule {
	t.Helper()
	sched, err := Build(s, cfg)
	if err != nil {
		t.Fatalf("Build(%s, %+v): %v", s, cfg, err)
	}
	return sched
}

// TestAllSchemesValidate builds every scheme over a grid of sizes; Build
// already runs pipeline.Validate, so success means all structural invariants
// hold.
func TestAllSchemesValidate(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		for _, n := range []int{8, 16} {
			mustBuild(t, pipeline.SchemeGPipe, Config{Devices: d, Micros: n})
			mustBuild(t, pipeline.Scheme1F1B, Config{Devices: d, Micros: n})
			mustBuild(t, pipeline.SchemeChimera, Config{Devices: d, Micros: n})
			for _, v := range []int{2, 4} {
				mustBuild(t, pipeline.SchemeInterleave, Config{Devices: d, Micros: n, Chunks: v})
			}
		}
	}
}

func TestBuildRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		s   pipeline.Scheme
		cfg Config
	}{
		{pipeline.Scheme1F1B, Config{Devices: 0, Micros: 4}},
		{pipeline.Scheme1F1B, Config{Devices: 4, Micros: 0}},
		{pipeline.SchemeChimera, Config{Devices: 3, Micros: 4}},
		{pipeline.SchemeInterleave, Config{Devices: 4, Micros: 6}},
		{pipeline.Scheme("Nope"), Config{Devices: 4, Micros: 4}},
	}
	for _, tc := range cases {
		if _, err := Build(tc.s, tc.cfg); err == nil {
			t.Errorf("Build(%s, %+v) should fail", tc.s, tc.cfg)
		}
	}
}

// Test1F1BWarmupDepth: device d of a D-device 1F1B pipeline runs exactly
// D-1-d forwards before its first backward.
func Test1F1BWarmupDepth(t *testing.T) {
	const d, n = 4, 8
	s := mustBuild(t, pipeline.Scheme1F1B, Config{Devices: d, Micros: n})
	for dev, list := range s.Lists {
		fwd := 0
		for _, in := range list {
			if in.Kind == pipeline.Forward {
				fwd++
			}
			if in.Kind == pipeline.Backward {
				break
			}
		}
		// The steady phase starts with one more forward before the first BW.
		want := d - 1 - dev + 1
		if dev == d-1 {
			want = 1
		}
		if fwd != want {
			t.Errorf("dev%d: %d forwards before first backward, want %d", dev, fwd, want)
		}
	}
}

// Test1F1BOnTheFlyMicros: the peak number of unfinished micro-batches on
// device d is min(N, D-d) — the source of Table 1's [Mθ, D·Mθ] activation
// range.
func Test1F1BOnTheFlyMicros(t *testing.T) {
	const d, n = 8, 16
	s := mustBuild(t, pipeline.Scheme1F1B, Config{Devices: d, Micros: n})
	for dev, list := range s.Lists {
		cur, peak := 0, 0
		for _, in := range list {
			switch in.Kind {
			case pipeline.Forward:
				cur++
				if cur > peak {
					peak = cur
				}
			case pipeline.Backward:
				cur--
			}
		}
		want := d - dev
		if want > n {
			want = n
		}
		if peak != want {
			t.Errorf("dev%d: peak on-the-fly micros = %d, want %d", dev, peak, want)
		}
	}
}

// TestGPipeShape: all forwards precede all backwards on every device.
func TestGPipeShape(t *testing.T) {
	s := mustBuild(t, pipeline.SchemeGPipe, Config{Devices: 4, Micros: 8})
	for dev, list := range s.Lists {
		seenBW := false
		for _, in := range list {
			if in.Kind == pipeline.Backward {
				seenBW = true
			}
			if in.Kind == pipeline.Forward && seenBW {
				t.Errorf("dev%d: forward after backward in GPipe", dev)
			}
		}
	}
}

// TestChimeraBidirectional: both parts appear, part 0 micros start on device
// 0 and part 1 micros on device D-1, and each device's weights cover two
// stages (2×Mw, Table 1).
func TestChimeraBidirectional(t *testing.T) {
	const d, n = 4, 8
	s := mustBuild(t, pipeline.SchemeChimera, Config{Devices: d, Micros: n})
	if s.Placement.WeightReplicas() != 2 {
		t.Error("Chimera placement should report 2 weight replicas")
	}
	parts := map[int]bool{}
	for _, list := range s.Lists {
		for _, in := range list {
			if in.Kind == pipeline.Forward {
				parts[in.Part] = true
				if in.Stage == 0 {
					wantDev := 0
					if in.Part == 1 {
						wantDev = d - 1
					}
					if got := s.Placement.Device(in.Part, 0); got != wantDev {
						t.Errorf("part %d stage 0 on device %d, want %d", in.Part, got, wantDev)
					}
				}
			}
		}
	}
	if !parts[0] || !parts[1] {
		t.Errorf("expected both pipeline directions, got %v", parts)
	}
}

// TestChimeraMicroSplit: micro-batches alternate between directions in
// blocks of D/2.
func TestChimeraMicroSplit(t *testing.T) {
	const d, n = 4, 8
	s := mustBuild(t, pipeline.SchemeChimera, Config{Devices: d, Micros: n})
	partOf := make(map[int]int)
	for _, list := range s.Lists {
		for _, in := range list {
			if in.Kind == pipeline.Forward {
				partOf[in.Micro] = in.Part
			}
		}
	}
	for m := 0; m < n; m++ {
		want := (m / (d / 2)) % 2
		if partOf[m] != want {
			t.Errorf("micro %d in part %d, want %d", m, partOf[m], want)
		}
	}
}

// TestInterleaveChunkWalk: forwards on a device walk chunks in ascending
// order within each micro-batch group, backwards in descending order.
func TestInterleaveChunkWalk(t *testing.T) {
	const d, n, v = 4, 8, 2
	s := mustBuild(t, pipeline.SchemeInterleave, Config{Devices: d, Micros: n, Chunks: v})
	list := s.Lists[0]
	var fwChunks []int
	for _, in := range list {
		if in.Kind == pipeline.Forward {
			fwChunks = append(fwChunks, in.Part)
		}
	}
	// First D forwards are chunk 0, next D chunk 1 (group structure).
	for i := 0; i < d && i < len(fwChunks); i++ {
		if fwChunks[i] != 0 {
			t.Errorf("forward %d on chunk %d, want 0", i, fwChunks[i])
		}
	}
	for i := d; i < 2*d && i < len(fwChunks); i++ {
		if fwChunks[i] != 1 {
			t.Errorf("forward %d on chunk %d, want 1", i, fwChunks[i])
		}
	}
}

// TestSchemeInstructionCounts: every scheme carries exactly N forwards and N
// backwards per stage, distributed per its placement.
func TestSchemeInstructionCounts(t *testing.T) {
	f := func(dRaw, nRaw uint8) bool {
		d := 2 * (int(dRaw)%4 + 1) // 2..8 even
		n := d * (int(nRaw)%3 + 1) // multiple of d
		for _, sch := range []pipeline.Scheme{pipeline.SchemeGPipe, pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave} {
			s, err := Build(sch, Config{Devices: d, Micros: n})
			if err != nil {
				return false
			}
			if s.CountKind(-1, pipeline.Forward) != n*s.NumStages() {
				return false
			}
			if s.CountKind(-1, pipeline.Backward) != n*s.NumStages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDefaultChunks: Interleave defaults to 2 chunks.
func TestDefaultChunks(t *testing.T) {
	s := mustBuild(t, pipeline.SchemeInterleave, Config{Devices: 4, Micros: 8})
	if got := s.NumStages(); got != 8 {
		t.Errorf("default interleave stages = %d, want 8", got)
	}
}
