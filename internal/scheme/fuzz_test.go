package scheme

import (
	"testing"

	"mario/internal/pipeline"
)

// fuzzScheme maps a fuzz byte to a scheme under test.
func fuzzScheme(sel uint8) pipeline.Scheme {
	schemes := []pipeline.Scheme{
		pipeline.SchemeGPipe,
		pipeline.Scheme1F1B,
		pipeline.SchemeChimera,
		pipeline.SchemeInterleave,
		pipeline.SchemeZBH1,
		pipeline.SchemeDualPipeD,
	}
	return schemes[int(sel)%len(schemes)]
}

// FuzzSchemeBuild drives Build across the whole (scheme, devices, micros,
// chunks) input space. Constraint rejections are fine; any successfully
// built schedule must uphold the generator's invariants:
//
//   - it passes pipeline.Validate (Build checks this itself; re-checked so
//     the fuzz target stays meaningful if Build ever skips it),
//   - instruction identities are unique — no duplicate (kind, micro, part,
//     stage) on any device,
//   - compute work is conserved: exactly Micros forwards per global stage,
//     plus Micros fused backwards (fused-backward schemes) or Micros
//     BackwardInput/BackwardWeight pairs (split-backward schemes), and zero
//     checkpoint kinds.
func FuzzSchemeBuild(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(8), uint8(2))
	f.Add(uint8(1), uint8(4), uint8(4), uint8(2))
	f.Add(uint8(2), uint8(6), uint8(12), uint8(1))
	f.Add(uint8(3), uint8(4), uint8(8), uint8(3))
	f.Add(uint8(3), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(4), uint8(4), uint8(8), uint8(0))
	f.Add(uint8(5), uint8(4), uint8(8), uint8(0))
	f.Add(uint8(5), uint8(2), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, sel, devices, micros, chunks uint8) {
		d := int(devices)%12 + 1
		n := int(micros)%24 + 1
		v := int(chunks) % 5 // 0 exercises the Chunks default
		s := fuzzScheme(sel)
		sched, err := Build(s, Config{Devices: d, Micros: n, Chunks: v})
		if err != nil {
			return // constraint rejection is a valid outcome
		}
		if err := pipeline.Validate(sched); err != nil {
			t.Fatalf("%s d=%d n=%d v=%d: built schedule invalid: %v", s, d, n, v, err)
		}
		seen := make(map[pipeline.Key]bool, sched.TotalInstrs())
		for dev, list := range sched.Lists {
			for _, in := range list {
				k := in.Key()
				if in.Kind == pipeline.AllReduce || in.Kind == pipeline.OptimizerStep {
					continue // per-device collectives share (micro, stage)
				}
				if seen[k] {
					t.Fatalf("%s d=%d n=%d v=%d: duplicate instruction %v on device %d", s, d, n, v, in, dev)
				}
				seen[k] = true
			}
		}
		stages := sched.NumStages()
		if fw := sched.CountKind(-1, pipeline.Forward); fw != n*stages {
			t.Fatalf("%s d=%d n=%d v=%d: %d forwards, want micros×stages = %d", s, d, n, v, fw, n*stages)
		}
		bw := sched.CountKind(-1, pipeline.Backward)
		bi := sched.CountKind(-1, pipeline.BackwardInput)
		wg := sched.CountKind(-1, pipeline.BackwardWeight)
		if s.SplitsBackward() {
			if bw != 0 || bi != n*stages || wg != n*stages {
				t.Fatalf("%s d=%d n=%d v=%d: BW=%d BI=%d WG=%d, want 0 fused and micros×stages = %d split pairs",
					s, d, n, v, bw, bi, wg, n*stages)
			}
		} else {
			if bw != n*stages || bi != 0 || wg != 0 {
				t.Fatalf("%s d=%d n=%d v=%d: BW=%d BI=%d WG=%d, want micros×stages = %d fused and no split halves",
					s, d, n, v, bw, bi, wg, n*stages)
			}
		}
		for _, k := range []pipeline.Kind{pipeline.CkptForward, pipeline.Recompute} {
			if c := sched.CountKind(-1, k); c != 0 {
				t.Fatalf("%s d=%d n=%d v=%d: freshly built schedule contains %d %v", s, d, n, v, c, k)
			}
		}
	})
}
