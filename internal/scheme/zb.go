package scheme

import (
	"fmt"

	"mario/internal/pipeline"
)

// buildZBH1 constructs the ZB-H1 zero-bubble schedule ("Z"-shape) of Qi et
// al., Zero Bubble Pipeline Parallelism: the 1F1B dependency structure with
// every backward split into its input-gradient half (BI, which alone sits on
// the cross-stage critical path) and weight-gradient half (WG, which has no
// cross-device dependents). The list scheduler sinks the deferred WG units
// into what were 1F1B's warm-up and drain bubbles, shrinking the bubble
// while the 1F1B injection window keeps stage s's in-flight micro-batch
// bound at S-s — activation memory stays at 1F1B's level and only the
// weight-gradient stashes are held longer.
func buildZBH1(cfg Config) *pipeline.Schedule {
	d, n := cfg.Devices, cfg.Micros
	pl := pipeline.NewLinearPlacement(d)
	micros := make([]microAssign, n)
	for m := 0; m < n; m++ {
		micros[m] = microAssign{micro: m}
	}
	lists := greedyScheduleSplit(pl, micros, unitTimes{})
	return &pipeline.Schedule{
		Scheme:    pipeline.SchemeZBH1,
		Placement: pl,
		Micros:    n,
		Lists:     lists,
	}
}

// buildDualPipeD constructs the bidirectional split-backward "D"-shape
// schedule in the style of DeepSeek's DualPipe: micro-batches are cut in
// half, the first half flows up the pipeline (part 0, entering at device 0)
// while the second half flows down (part 1, entering at device D-1), and
// every backward is split so deferred weight-gradient units fill the gaps
// where the two streams interleave. Each device holds two stages' weights
// (one per direction), like Chimera; unlike Chimera's alternating waves the
// two streams are injected simultaneously from both ends.
func buildDualPipeD(cfg Config) *pipeline.Schedule {
	d, n := cfg.Devices, cfg.Micros
	pl := pipeline.NewBidirPlacement(d)
	half := n / 2
	micros := make([]microAssign, n)
	for m := 0; m < n; m++ {
		part := 0
		if m >= half {
			part = 1
		}
		micros[m] = microAssign{micro: m, part: part}
	}
	lists := greedyScheduleSplit(pl, micros, unitTimes{})
	return &pipeline.Schedule{
		Scheme:    pipeline.SchemeDualPipeD,
		Placement: pl,
		Micros:    n,
		Lists:     lists,
	}
}

// checkDualPipeD rejects configurations the bidirectional placement cannot
// express: the device count must be even (each device pairs a stage from
// each direction) and the micro-batch count must be even so the two streams
// carry equal halves.
func checkDualPipeD(cfg Config) error {
	if cfg.Devices%2 != 0 {
		return fmt.Errorf("scheme: DualPipe-D requires an even device count, got %d", cfg.Devices)
	}
	if cfg.Micros%2 != 0 {
		return fmt.Errorf("scheme: DualPipe-D requires an even micro-batch count, got %d", cfg.Micros)
	}
	return nil
}
