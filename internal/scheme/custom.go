package scheme

import (
	"fmt"

	"mario/internal/pipeline"
)

// CustomConfig describes a user-defined pipeline structure to be scheduled
// by the greedy list scheduler — the paper's extension hook for exploring
// new pipeline shapes beyond V/X/W ("Mario supports more pipelines … through
// the virtual pipeline abstraction and heuristics, which is applicable to
// explore new pipeline structures", §5.2).
type CustomConfig struct {
	// Name labels the resulting schedule's Scheme field.
	Name pipeline.Scheme
	// Placement maps (part, stage) to devices; any pipeline.Placement
	// implementation works, including user-defined ones.
	Placement pipeline.Placement
	// Parts assigns each micro-batch (by index) to a partition id; its
	// length is the micro-batch count N. For interleaved placements the
	// per-stage partition is derived from the placement and the entries
	// here are ignored.
	Parts []int
	// FwTime and BwTime weight the greedy scheduler's ordering decisions;
	// zero values default to the canonical 1 and 2.
	FwTime, BwTime float64
}

// BuildCustom constructs a validated schedule for a custom pipeline
// structure: compute order is decided by the greedy earliest-ready scheduler
// under the virtual-pipeline dependencies and 1F1B injection windows, then
// communication instructions are inserted and the result validated.
func BuildCustom(cfg CustomConfig) (*pipeline.Schedule, error) {
	if cfg.Placement == nil {
		return nil, fmt.Errorf("scheme: custom config needs a placement")
	}
	if len(cfg.Parts) == 0 {
		return nil, fmt.Errorf("scheme: custom config needs at least one micro-batch")
	}
	fw, bw := cfg.FwTime, cfg.BwTime
	if fw <= 0 {
		fw = 1
	}
	if bw <= 0 {
		bw = 2
	}
	name := cfg.Name
	if name == "" {
		name = "Custom"
	}
	micros := make([]microAssign, len(cfg.Parts))
	for m, p := range cfg.Parts {
		if p < 0 || p >= cfg.Placement.NumParts() {
			return nil, fmt.Errorf("scheme: micro %d assigned to part %d, placement has %d parts", m, p, cfg.Placement.NumParts())
		}
		micros[m] = microAssign{micro: m, part: p}
	}
	s := &pipeline.Schedule{
		Scheme:    name,
		Placement: cfg.Placement,
		Micros:    len(cfg.Parts),
		Lists:     greedySchedule(cfg.Placement, micros, fw, bw),
	}
	pipeline.InsertComm(s)
	if err := pipeline.Validate(s); err != nil {
		return nil, fmt.Errorf("scheme: custom schedule invalid: %w", err)
	}
	return s, nil
}
