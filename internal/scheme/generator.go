package scheme

import (
	"fmt"

	"mario/internal/pipeline"
)

// generator composes one scheme family from orthogonal ingredients: an
// optional structural check over the configuration and a builder that emits
// the compute skeleton. Builders either run a closed-form emitter whose exact
// shape is pinned by tests (GPipe, 1F1B, Interleave) or compose a depGraph —
// placement + unit families + dependency rules — and hand it to the greedy
// list scheduler (Chimera, ZB-H1, DualPipe-D; BuildCustom follows the same
// path outside the registry). Build looks schemes up here, so adding a scheme
// is one registry entry plus its ingredients.
type generator struct {
	check func(Config) error // scheme-specific structural constraints (nil: none)
	build func(Config) *pipeline.Schedule
}

var generators = map[pipeline.Scheme]generator{
	pipeline.SchemeGPipe:      {build: buildGPipe},
	pipeline.Scheme1F1B:       {build: build1F1B},
	pipeline.SchemeChimera:    {check: checkChimera, build: buildChimera},
	pipeline.SchemeInterleave: {check: checkInterleave, build: buildInterleave},
	pipeline.SchemeZBH1:       {build: buildZBH1},
	pipeline.SchemeDualPipeD:  {check: checkDualPipeD, build: buildDualPipeD},
}

// schemeOrder fixes the deterministic catalogue order of the registry:
// fused-backward schemes first in historical order, then the split-backward
// family.
var schemeOrder = []pipeline.Scheme{
	pipeline.SchemeGPipe,
	pipeline.Scheme1F1B,
	pipeline.SchemeChimera,
	pipeline.SchemeInterleave,
	pipeline.SchemeZBH1,
	pipeline.SchemeDualPipeD,
}

// Schemes returns every registered scheme in deterministic catalogue order.
func Schemes() []pipeline.Scheme {
	return append([]pipeline.Scheme(nil), schemeOrder...)
}

// checkChimera rejects odd device counts: the bidirectional placement pairs
// each up-stream stage with a mirrored down-stream stage per device.
func checkChimera(cfg Config) error {
	if cfg.Devices%2 != 0 {
		return fmt.Errorf("scheme: Chimera requires an even device count, got %d", cfg.Devices)
	}
	return nil
}

// checkInterleave rejects configurations Megatron's interleaved schedule
// cannot express: the chunk count must be positive and the micro-batch count
// divisible by the device count (micro-batches advance in groups of D per
// chunk).
func checkInterleave(cfg Config) error {
	if cfg.Chunks < 1 {
		return fmt.Errorf("scheme: Interleave chunk count %d must be positive", cfg.Chunks)
	}
	if cfg.Micros%cfg.Devices != 0 {
		return fmt.Errorf("scheme: Interleave requires micros (%d) divisible by devices (%d)", cfg.Micros, cfg.Devices)
	}
	return nil
}
