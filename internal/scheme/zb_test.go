package scheme

import (
	"sync"
	"testing"

	"mario/internal/pipeline"
)

// TestSplitSchemesValidate builds the split-backward schemes over a grid of
// sizes; Build already runs pipeline.Validate, so success means the split
// coverage invariants (one BI+WG pair per micro and stage) hold.
func TestSplitSchemesValidate(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		for _, n := range []int{8, 16} {
			mustBuild(t, pipeline.SchemeZBH1, Config{Devices: d, Micros: n})
			mustBuild(t, pipeline.SchemeDualPipeD, Config{Devices: d, Micros: n})
		}
	}
	// ZB-H1 has no parity constraints; DualPipe-D rejects odd shapes.
	mustBuild(t, pipeline.SchemeZBH1, Config{Devices: 3, Micros: 5})
	if _, err := Build(pipeline.SchemeDualPipeD, Config{Devices: 3, Micros: 8}); err == nil {
		t.Error("DualPipe-D should reject odd device counts")
	}
	if _, err := Build(pipeline.SchemeDualPipeD, Config{Devices: 4, Micros: 7}); err == nil {
		t.Error("DualPipe-D should reject odd micro counts")
	}
}

// TestSplitSchemeCounts: split schemes carry exactly N forwards and N BI/WG
// pairs per stage and no fused backwards.
func TestSplitSchemeCounts(t *testing.T) {
	for _, sch := range []pipeline.Scheme{pipeline.SchemeZBH1, pipeline.SchemeDualPipeD} {
		s := mustBuild(t, sch, Config{Devices: 4, Micros: 8})
		stages := s.NumStages()
		if got := s.CountKind(-1, pipeline.Forward); got != 8*stages {
			t.Errorf("%s: %d forwards, want %d", sch, got, 8*stages)
		}
		if got := s.CountKind(-1, pipeline.Backward); got != 0 {
			t.Errorf("%s: %d fused backwards, want 0", sch, got)
		}
		if got := s.CountKind(-1, pipeline.BackwardInput); got != 8*stages {
			t.Errorf("%s: %d BI, want %d", sch, got, 8*stages)
		}
		if got := s.CountKind(-1, pipeline.BackwardWeight); got != 8*stages {
			t.Errorf("%s: %d WG, want %d", sch, got, 8*stages)
		}
	}
}

// TestZBH1WarmupMatches1F1B: ZB-H1 keeps 1F1B's memory discipline — the peak
// number of micro-batches whose activations are live on device d (forward
// done, input-gradient half not yet) is min(N, D-d), exactly the 1F1B bound.
func TestZBH1WarmupMatches1F1B(t *testing.T) {
	const d, n = 8, 16
	s := mustBuild(t, pipeline.SchemeZBH1, Config{Devices: d, Micros: n})
	for dev, list := range s.Lists {
		cur, peak := 0, 0
		for _, in := range list {
			switch in.Kind {
			case pipeline.Forward:
				cur++
				if cur > peak {
					peak = cur
				}
			case pipeline.BackwardInput:
				cur--
			}
		}
		want := d - dev
		if want > n {
			want = n
		}
		if peak != want {
			t.Errorf("dev%d: peak on-the-fly micros = %d, want %d", dev, peak, want)
		}
	}
}

// TestZBH1SinksWeightGrads: on the first device, at least one weight-gradient
// unit runs before the last forward — the scheduler fills former 1F1B
// bubbles with deferred W work instead of queueing all of it behind the
// drain.
func TestZBH1SinksWeightGrads(t *testing.T) {
	s := mustBuild(t, pipeline.SchemeZBH1, Config{Devices: 4, Micros: 8})
	list := s.Lists[0]
	lastFW := -1
	for i, in := range list {
		if in.Kind == pipeline.Forward {
			lastFW = i
		}
	}
	sunk := false
	for i, in := range list {
		if in.Kind == pipeline.BackwardWeight && i < lastFW {
			sunk = true
		}
	}
	if !sunk {
		t.Error("ZB-H1 dev0: no weight-gradient unit scheduled before the last forward")
	}
}

// TestDualPipeDBidirectional: both directions appear, the first half of the
// micro-batches enters at device 0 (part 0) and the second half at device
// D-1 (part 1), and each device holds two stages' weights.
func TestDualPipeDBidirectional(t *testing.T) {
	const d, n = 4, 8
	s := mustBuild(t, pipeline.SchemeDualPipeD, Config{Devices: d, Micros: n})
	if s.Placement.WeightReplicas() != 2 {
		t.Error("DualPipe-D placement should report 2 weight replicas")
	}
	partOf := make(map[int]int)
	for _, list := range s.Lists {
		for _, in := range list {
			if in.Kind == pipeline.Forward {
				partOf[in.Micro] = in.Part
			}
		}
	}
	for m := 0; m < n; m++ {
		want := 0
		if m >= n/2 {
			want = 1
		}
		if partOf[m] != want {
			t.Errorf("micro %d in part %d, want %d", m, partOf[m], want)
		}
	}
	// Both streams start immediately: the first instruction of device 0 and
	// of device D-1 is a forward of the respective stream's first micro.
	if in := s.Lists[0][0]; in.Kind != pipeline.Forward || in.Part != 0 {
		t.Errorf("dev0 starts with %v, want a part-0 forward", in)
	}
	if in := s.Lists[d-1][0]; in.Kind != pipeline.Forward || in.Part != 1 {
		t.Errorf("dev%d starts with %v, want a part-1 forward", d-1, in)
	}
}

// TestWeightGradAfterInputGrad: on every device list of every split scheme,
// each WG appears after its matching BI (Validate checks this too; asserted
// directly so the property is pinned independent of Validate's evolution).
func TestWeightGradAfterInputGrad(t *testing.T) {
	for _, sch := range []pipeline.Scheme{pipeline.SchemeZBH1, pipeline.SchemeDualPipeD} {
		s := mustBuild(t, sch, Config{Devices: 4, Micros: 8})
		for dev, list := range s.Lists {
			pos := map[pipeline.Key]int{}
			for i, in := range list {
				pos[in.Key()] = i
			}
			for _, in := range list {
				if in.Kind != pipeline.BackwardWeight {
					continue
				}
				bi := pipeline.Key{Kind: pipeline.BackwardInput, Micro: in.Micro, Part: in.Part, Stage: in.Stage}
				j, ok := pos[bi]
				if !ok || j > pos[in.Key()] {
					t.Errorf("%s dev%d: %v not preceded by its BI", sch, dev, in)
				}
			}
		}
	}
}

// TestSchemeBuildDeterministic builds every registered scheme concurrently
// from worker pools of 1 and 4 goroutines and requires byte-identical
// schedules across all workers and pool sizes — the generator path must be
// free of map-iteration-order and data-race nondeterminism (run under -race
// by `make schemes-smoke`).
func TestSchemeBuildDeterministic(t *testing.T) {
	cfg := Config{Devices: 4, Micros: 8}
	baseline := map[pipeline.Scheme]string{}
	for _, sch := range Schemes() {
		baseline[sch] = mustBuild(t, sch, cfg).String()
	}
	for _, workers := range []int{1, 4} {
		for _, sch := range Schemes() {
			got := make([]string, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s, err := Build(sch, cfg)
					if err != nil {
						t.Errorf("workers=%d %s: %v", workers, sch, err)
						return
					}
					got[w] = s.String()
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if got[w] != baseline[sch] {
					t.Errorf("workers=%d %s: worker %d built a different schedule", workers, sch, w)
				}
			}
		}
	}
}
