package scheme

import (
	"testing"

	"mario/internal/pipeline"
)

// TestBuildCustomDownOnlyChimera: a custom structure where every micro-batch
// flows through Chimera's down pipeline — effectively a reversed 1F1B —
// builds and validates.
func TestBuildCustomDownOnlyChimera(t *testing.T) {
	const d, n = 4, 8
	parts := make([]int, n)
	for i := range parts {
		parts[i] = 1 // down direction only
	}
	s, err := BuildCustom(CustomConfig{
		Name:      "ReverseV",
		Placement: pipeline.NewBidirPlacement(d),
		Parts:     parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0 of the down pipeline lives on device D-1, so device D-1 must
	// start the pipeline (first compute instruction at stage 0).
	first := pipeline.ComputeOnly(s.Lists[d-1])[0]
	if first.Stage != 0 {
		t.Errorf("device %d first compute = %s, want a stage-0 forward", d-1, first)
	}
	if got := s.CountKind(-1, pipeline.Forward); got != n*d {
		t.Errorf("forward count = %d, want %d", got, n*d)
	}
}

// TestBuildCustomMixedDirections: an asymmetric 3:1 up/down split still
// yields a valid schedule (the structure-exploration use case).
func TestBuildCustomMixedDirections(t *testing.T) {
	const d, n = 4, 8
	parts := make([]int, n)
	for i := range parts {
		if i%4 == 3 {
			parts[i] = 1
		}
	}
	s, err := BuildCustom(CustomConfig{Placement: pipeline.NewBidirPlacement(d), Parts: parts})
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheme != "Custom" {
		t.Errorf("default name = %q", s.Scheme)
	}
}

// TestBuildCustomInterleaved: the greedy scheduler also handles interleaved
// placements (chunked stages).
func TestBuildCustomInterleaved(t *testing.T) {
	const d, v, n = 4, 2, 8
	s, err := BuildCustom(CustomConfig{
		Name:      "GreedyW",
		Placement: pipeline.NewInterleavedPlacement(d, v),
		Parts:     make([]int, n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStages() != d*v {
		t.Errorf("stages = %d, want %d", s.NumStages(), d*v)
	}
}

func TestBuildCustomValidation(t *testing.T) {
	if _, err := BuildCustom(CustomConfig{}); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := BuildCustom(CustomConfig{Placement: pipeline.NewLinearPlacement(2)}); err == nil {
		t.Error("zero micros accepted")
	}
	if _, err := BuildCustom(CustomConfig{
		Placement: pipeline.NewLinearPlacement(2),
		Parts:     []int{5},
	}); err == nil {
		t.Error("out-of-range part accepted")
	}
}
