// Package scheme generates the initial per-device instruction lists for the
// pipeline parallelism schemes Mario supports: GPipe, 1F1B ("V"), Chimera
// ("X"), Interleave ("W"), and the split-backward family ZB-H1 ("Z") and
// DualPipe-D ("D"). Schemes are registered as composable generators — a
// structural check plus a builder that either emits a closed-form shape or
// composes a dependency graph for the greedy list scheduler (see depGraph).
// The generated schedules are the input of the graph tuner (internal/graph);
// they carry explicit communication instructions and pass pipeline.Validate.
package scheme

import (
	"fmt"

	"mario/internal/pipeline"
)

// Config parameterises schedule generation.
type Config struct {
	// Devices is the pipeline-parallel dimension D (one device per pipeline
	// rank).
	Devices int
	// Micros is the number of micro-batches N in one training iteration.
	Micros int
	// Chunks is the number of model chunks per device for Interleave
	// ("W"-shape); ignored by other schemes. Defaults to 2.
	Chunks int
}

func (c Config) withDefaults() Config {
	if c.Chunks == 0 {
		c.Chunks = 2
	}
	return c
}

func (c Config) check(s pipeline.Scheme) error {
	if c.Devices <= 0 {
		return fmt.Errorf("scheme: %s: device count %d must be positive", s, c.Devices)
	}
	if c.Micros <= 0 {
		return fmt.Errorf("scheme: %s: micro-batch count %d must be positive", s, c.Micros)
	}
	return nil
}

// Build expands the named scheme into a validated schedule with explicit
// communication instructions. The scheme is resolved through the generator
// registry; its generic and scheme-specific structural checks run first, the
// registered builder emits the compute skeleton, and the result is completed
// with communication instructions and validated.
func Build(s pipeline.Scheme, cfg Config) (*pipeline.Schedule, error) {
	cfg = cfg.withDefaults()
	g, ok := generators[s]
	if !ok {
		return nil, fmt.Errorf("scheme: unsupported scheme %q", s)
	}
	if err := cfg.check(s); err != nil {
		return nil, err
	}
	if g.check != nil {
		if err := g.check(cfg); err != nil {
			return nil, err
		}
	}
	sched := g.build(cfg)
	pipeline.InsertComm(sched)
	if err := pipeline.Validate(sched); err != nil {
		return nil, fmt.Errorf("scheme: generated %s schedule is invalid: %w", s, err)
	}
	return sched, nil
}

// buildGPipe emits all forwards followed by all backwards in reverse
// micro-batch order (GPipe's fill-drain schedule).
func buildGPipe(cfg Config) *pipeline.Schedule {
	d := cfg.Devices
	sched := &pipeline.Schedule{
		Scheme:    pipeline.SchemeGPipe,
		Placement: pipeline.NewLinearPlacement(d),
		Micros:    cfg.Micros,
		Lists:     make([][]pipeline.Instr, d),
	}
	for dev := 0; dev < d; dev++ {
		list := make([]pipeline.Instr, 0, 2*cfg.Micros)
		for m := 0; m < cfg.Micros; m++ {
			list = append(list, pipeline.Instr{Kind: pipeline.Forward, Micro: m, Stage: dev})
		}
		for m := cfg.Micros - 1; m >= 0; m-- {
			list = append(list, pipeline.Instr{Kind: pipeline.Backward, Micro: m, Stage: dev})
		}
		sched.Lists[dev] = list
	}
	return sched
}

// build1F1B emits the one-forward-one-backward schedule of DAPPLE /
// PipeDream-Flush: device d runs D-1-d warm-up forwards, then alternates
// forward and backward in the steady phase, then drains the remaining
// backwards.
func build1F1B(cfg Config) *pipeline.Schedule {
	d := cfg.Devices
	n := cfg.Micros
	sched := &pipeline.Schedule{
		Scheme:    pipeline.Scheme1F1B,
		Placement: pipeline.NewLinearPlacement(d),
		Micros:    n,
		Lists:     make([][]pipeline.Instr, d),
	}
	for dev := 0; dev < d; dev++ {
		warmup := d - 1 - dev
		if warmup > n {
			warmup = n
		}
		list := make([]pipeline.Instr, 0, 2*n)
		for m := 0; m < warmup; m++ {
			list = append(list, pipeline.Instr{Kind: pipeline.Forward, Micro: m, Stage: dev})
		}
		for j := 0; j < n-warmup; j++ {
			list = append(list,
				pipeline.Instr{Kind: pipeline.Forward, Micro: warmup + j, Stage: dev},
				pipeline.Instr{Kind: pipeline.Backward, Micro: j, Stage: dev},
			)
		}
		for m := n - warmup; m < n; m++ {
			list = append(list, pipeline.Instr{Kind: pipeline.Backward, Micro: m, Stage: dev})
		}
		sched.Lists[dev] = list
	}
	return sched
}

// buildInterleave emits Megatron-LM's interleaved 1F1B schedule with
// cfg.Chunks model chunks per device. A device processes micro-batches in
// groups of D per chunk; forwards walk the chunks in ascending order and
// backwards in descending order, interleaved 1F1B-style after a warm-up of
// (D-1-d)*2 + (V-1)*D forward units.
func buildInterleave(cfg Config) *pipeline.Schedule {
	d, v, n := cfg.Devices, cfg.Chunks, cfg.Micros
	sched := &pipeline.Schedule{
		Scheme:    pipeline.SchemeInterleave,
		Placement: pipeline.NewInterleavedPlacement(d, v),
		Micros:    n,
		Lists:     make([][]pipeline.Instr, d),
	}
	total := n * v
	group := d * v
	// fwUnit maps the k-th forward unit executed by a device to its
	// (micro, chunk) coordinates, per Megatron's get_model_chunk_id.
	fwUnit := func(k int) (micro, chunk int) {
		g, r := k/group, k%group
		return g*d + r%d, r / d
	}
	bwUnit := func(k int) (micro, chunk int) {
		g, r := k/group, k%group
		return g*d + r%d, v - 1 - r/d
	}
	for dev := 0; dev < d; dev++ {
		warmup := (d-1-dev)*2 + (v-1)*d
		if warmup > total {
			warmup = total
		}
		list := make([]pipeline.Instr, 0, 2*total)
		emitF := func(k int) {
			m, c := fwUnit(k)
			list = append(list, pipeline.Instr{Kind: pipeline.Forward, Micro: m, Part: c, Stage: c*d + dev})
		}
		emitB := func(k int) {
			m, c := bwUnit(k)
			list = append(list, pipeline.Instr{Kind: pipeline.Backward, Micro: m, Part: c, Stage: c*d + dev})
		}
		for k := 0; k < warmup; k++ {
			emitF(k)
		}
		for j := 0; j < total-warmup; j++ {
			emitF(warmup + j)
			emitB(j)
		}
		for k := total - warmup; k < total; k++ {
			emitB(k)
		}
		sched.Lists[dev] = list
	}
	return sched
}
