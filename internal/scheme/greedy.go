package scheme

import (
	"mario/internal/pipeline"
)

// unit is one compute instruction to be placed by the greedy list scheduler.
type unit struct {
	kind  pipeline.Kind // Forward, Backward, BackwardInput or BackwardWeight
	micro int
	part  int
	stage int
	dev   int

	// dependency bookkeeping
	waiting int     // unresolved predecessors
	succs   []int   // indices of dependent units
	ready   float64 // max finish time of resolved predecessors
}

// unitTimes weights the greedy scheduler's ordering decisions. Zero fields
// default to the canonical unit times (forward 1, backward 2) with the
// backward split evenly between its input-gradient and weight-gradient
// halves.
type unitTimes struct {
	fw, bw, bi, wg float64
}

func (t unitTimes) withDefaults() unitTimes {
	if t.fw <= 0 {
		t.fw = 1
	}
	if t.bw <= 0 {
		t.bw = 2
	}
	if t.bi <= 0 {
		t.bi = t.bw / 2
	}
	if t.wg <= 0 {
		t.wg = t.bw - t.bw/2
	}
	return t
}

// dur returns the scheduling weight of a unit kind.
func (t unitTimes) dur(k pipeline.Kind) float64 {
	switch k {
	case pipeline.Backward:
		return t.bw
	case pipeline.BackwardInput:
		return t.bi
	case pipeline.BackwardWeight:
		return t.wg
	}
	return t.fw
}

// depGraph is the composable dependency-graph program behind schedule
// generation: a scheme generator picks a placement, adds the compute units of
// each micro-batch (fused or split backward), layers dependency rules on top
// (vertical chains, 1F1B injection windows, arbitrary extra edges via
// addDep), and finally runs the deterministic earliest-start greedy list
// scheduler over the whole graph. Chimera, ZB-H1, DualPipe-D and BuildCustom
// all compose their schedules this way; the closed-form emitters (GPipe,
// 1F1B, Interleave) bypass it because their exact shapes are pinned by tests.
type depGraph struct {
	pl    pipeline.Placement
	times unitTimes
	units []unit
	index map[pipeline.Key]int
}

// newDepGraph starts an empty dependency graph over the given placement.
func newDepGraph(pl pipeline.Placement, times unitTimes) *depGraph {
	return &depGraph{pl: pl, times: times.withDefaults(), index: make(map[pipeline.Key]int)}
}

// addUnit registers one compute unit at its placement-assigned device.
func (g *depGraph) addUnit(k pipeline.Kind, micro, part, stage int) {
	u := unit{kind: k, micro: micro, part: part, stage: stage, dev: g.pl.Device(part, stage)}
	g.index[pipeline.Key{Kind: k, Micro: micro, Part: part, Stage: stage}] = len(g.units)
	g.units = append(g.units, u)
}

// addDep records that the unit keyed by `to` may not start before the unit
// keyed by `from` has finished. Both units must already be registered.
func (g *depGraph) addDep(from, to pipeline.Key) {
	f, t := g.index[from], g.index[to]
	g.units[f].succs = append(g.units[f].succs, t)
	g.units[t].waiting++
}

// bwAnchor is the kind that anchors a micro-batch's backward at a stage: the
// fused Backward, or its input-gradient half when the backward is split.
func bwAnchor(split bool) pipeline.Kind {
	if split {
		return pipeline.BackwardInput
	}
	return pipeline.Backward
}

// addMicroUnits adds one micro-batch's per-stage compute units together with
// the virtual-pipeline dependencies that tie them together: the forward chain
// down the stages (FW(m,s) after FW(m,s-1)), the backward chain up the stages
// (BW(m,s) after BW(m,s+1)), and FW(m,s) before BW(m,s). With split=true the
// fused BW is replaced by the BackwardInput/BackwardWeight pair: the
// input-gradient half inherits all of BW's edges (it alone sits on the
// cross-stage critical path), and the weight-gradient half depends only on
// its BI, which frees the scheduler to sink it into pipeline bubbles.
func (g *depGraph) addMicroUnits(ma microAssign, split bool) {
	S := g.pl.NumStages()
	anchor := bwAnchor(split)
	for s := 0; s < S; s++ {
		part := ma.partAt(g.pl, s)
		g.addUnit(pipeline.Forward, ma.micro, part, s)
		g.addUnit(anchor, ma.micro, part, s)
		if split {
			g.addUnit(pipeline.BackwardWeight, ma.micro, part, s)
		}
	}
	for s := 0; s < S; s++ {
		part := ma.partAt(g.pl, s)
		fw := pipeline.Key{Kind: pipeline.Forward, Micro: ma.micro, Part: part, Stage: s}
		bw := pipeline.Key{Kind: anchor, Micro: ma.micro, Part: part, Stage: s}
		g.addDep(fw, bw)
		if split {
			g.addDep(bw, pipeline.Key{Kind: pipeline.BackwardWeight, Micro: ma.micro, Part: part, Stage: s})
		}
		if s > 0 {
			prev := pipeline.Key{Kind: pipeline.Forward, Micro: ma.micro, Part: ma.partAt(g.pl, s-1), Stage: s - 1}
			g.addDep(prev, fw)
			prevBW := pipeline.Key{Kind: anchor, Micro: ma.micro, Part: ma.partAt(g.pl, s-1), Stage: s - 1}
			g.addDep(bw, prevBW)
		}
	}
}

// addInjectionWindows layers the 1F1B memory discipline over the graph:
// within each partition (pipeline direction), the forward of the k-th
// micro-batch at stage s may not start before the backward anchor of the
// (k-(S-s))-th micro-batch of the same partition at the same stage has
// finished. This bounds the in-flight micro-batches per direction at stage s
// to S-s — exactly the memory discipline of 1F1B — so merged bidirectional
// schedules stay within Table 1's ≈D·Mθ peak instead of flooding early
// bubbles with forwards, and split-backward schedules hold no more live
// activations than 1F1B (the deferred W units retain only weight-gradient
// stashes).
func (g *depGraph) addInjectionWindows(micros []microAssign, split bool) {
	S := g.pl.NumStages()
	anchor := bwAnchor(split)
	byPart := map[int][]microAssign{}
	for _, ma := range micros {
		byPart[ma.part] = append(byPart[ma.part], ma)
	}
	for _, seq := range byPart {
		for k, ma := range seq {
			for s := 0; s < S; s++ {
				part := ma.partAt(g.pl, s)
				w := S - s
				if k-w < 0 {
					continue
				}
				prev := seq[k-w]
				g.addDep(
					pipeline.Key{Kind: anchor, Micro: prev.micro, Part: prev.partAt(g.pl, s), Stage: s},
					pipeline.Key{Kind: pipeline.Forward, Micro: ma.micro, Part: part, Stage: s},
				)
			}
		}
	}
}

// schedule runs deterministic earliest-start list scheduling of the graph's
// units onto devices and returns the per-device instruction lists. Ordering
// decisions use the graph's unit times plus a small communication epsilon so
// that cross-device transfers break ties deterministically; the result
// depends only on the dependency set and unit registration order, never on
// map iteration order (ready times are maxima and the ready-queue order is a
// strict total order over units).
func (g *depGraph) schedule() [][]pipeline.Instr {
	const commEps = 1e-3
	units := g.units
	devFree := make([]float64, g.pl.NumDevices())
	lists := make([][]pipeline.Instr, g.pl.NumDevices())
	rq := &readyQueue{units: units}
	for i := range units {
		if units[i].waiting == 0 {
			rq.idx = append(rq.idx, i)
		}
	}
	for rq.Len() > 0 {
		i := rq.popBest(devFree)
		u := &units[i]
		start := u.ready
		if devFree[u.dev] > start {
			start = devFree[u.dev]
		}
		finish := start + g.times.dur(u.kind)
		devFree[u.dev] = finish
		lists[u.dev] = append(lists[u.dev], pipeline.Instr{Kind: u.kind, Micro: u.micro, Part: u.part, Stage: u.stage})
		for _, si := range u.succs {
			s := &units[si]
			arrive := finish
			if s.dev != u.dev {
				arrive += commEps
			}
			if arrive > s.ready {
				s.ready = arrive
			}
			s.waiting--
			if s.waiting == 0 {
				rq.idx = append(rq.idx, si)
			}
		}
	}
	return lists
}

// greedySchedule performs deterministic earliest-start list scheduling of
// fused forward/backward units onto devices. It is the convenience entry for
// fused-backward shapes: Chimera's two mirrored 1F1B pipelines (the paper
// picks its Chimera schedule from the released chimera_pipeline_rank.py; the
// greedy merge reproduces its bidirectional bubble-overlap structure) and
// BuildCustom's user-defined pipelines (§5.2, "Visualization").
func greedySchedule(pl pipeline.Placement, micros []microAssign, fwTime, bwTime float64) [][]pipeline.Instr {
	g := newDepGraph(pl, unitTimes{fw: fwTime, bw: bwTime})
	for _, ma := range micros {
		g.addMicroUnits(ma, false)
	}
	g.addInjectionWindows(micros, false)
	return g.schedule()
}

// greedyScheduleSplit is the split-backward variant of greedySchedule: every
// micro-batch's backward is emitted as a BackwardInput/BackwardWeight pair,
// the injection windows anchor on the input-gradient half, and the scheduler
// fills device idle gaps with deferred weight-gradient units (Zero Bubble's
// central scheduling move).
func greedyScheduleSplit(pl pipeline.Placement, micros []microAssign, times unitTimes) [][]pipeline.Instr {
	g := newDepGraph(pl, times)
	for _, ma := range micros {
		g.addMicroUnits(ma, true)
	}
	g.addInjectionWindows(micros, true)
	return g.schedule()
}

// microAssign assigns a micro-batch to a partition (pipeline direction or
// chunk sequence).
type microAssign struct {
	micro int
	part  int // fixed partition for bidirectional schemes
}

// partAt resolves the partition id the micro-batch uses at the given stage.
func (ma microAssign) partAt(pl pipeline.Placement, stage int) int {
	if ip, ok := pl.(pipeline.InterleavedPlacement); ok {
		return ip.PartOfStage(stage)
	}
	return ma.part
}

// readyQueue holds the indices of schedulable units. popBest selects the
// unit with the minimal effective start; among equals it prefers backward
// anchors (BW/BI) over forwards (bounding activation memory), forwards over
// deferred weight-gradient units (which exist to fill bubbles, not to delay
// the critical path), and then lower micro ids for determinism.
type readyQueue struct {
	units []unit
	idx   []int
}

// Len returns the number of schedulable units.
func (q *readyQueue) Len() int { return len(q.idx) }

// popBest removes and returns the best schedulable unit: minimal effective
// start time max(ready, devFree), then backward-anchor before Forward before
// BackwardWeight, then lowest micro, part and stage ids.
func (q *readyQueue) popBest(devFree []float64) int {
	best := -1
	for pos, i := range q.idx {
		if best == -1 || q.better(i, q.idx[best], devFree) {
			best = pos
		}
	}
	i := q.idx[best]
	q.idx[best] = q.idx[len(q.idx)-1]
	q.idx = q.idx[:len(q.idx)-1]
	return i
}

// kindRank orders unit kinds at equal effective start: backward anchors
// first (they unblock downstream devices), then forwards, then deferred
// weight-gradient work last.
func kindRank(k pipeline.Kind) int {
	switch k {
	case pipeline.Backward, pipeline.BackwardInput:
		return 0
	case pipeline.BackwardWeight:
		return 2
	}
	return 1
}

func (q *readyQueue) better(a, b int, devFree []float64) bool {
	ua, ub := q.units[a], q.units[b]
	ea, eb := ua.ready, ub.ready
	if devFree[ua.dev] > ea {
		ea = devFree[ua.dev]
	}
	if devFree[ub.dev] > eb {
		eb = devFree[ub.dev]
	}
	if ea != eb {
		return ea < eb
	}
	if ra, rb := kindRank(ua.kind), kindRank(ub.kind); ra != rb {
		return ra < rb
	}
	if ua.micro != ub.micro {
		return ua.micro < ub.micro
	}
	if ua.part != ub.part {
		return ua.part < ub.part
	}
	return ua.stage < ub.stage
}

// buildChimera constructs the bidirectional "X"-shape schedule: micro-batches
// are split between the up pipeline (part 0, stage s on device s) and the
// down pipeline (part 1, stage s on device D-1-s) in alternating blocks of
// D/2 per wave, then the two streams are merged per device by the greedy
// scheduler.
func buildChimera(cfg Config) *pipeline.Schedule {
	d, n := cfg.Devices, cfg.Micros
	pl := pipeline.NewBidirPlacement(d)
	half := d / 2
	micros := make([]microAssign, n)
	for m := 0; m < n; m++ {
		// Waves of D micro-batches: the first D/2 flow up, the next D/2 down.
		if (m/half)%2 == 0 {
			micros[m] = microAssign{micro: m, part: 0}
		} else {
			micros[m] = microAssign{micro: m, part: 1}
		}
	}
	lists := greedySchedule(pl, micros, 1, 2)
	return &pipeline.Schedule{
		Scheme:    pipeline.SchemeChimera,
		Placement: pl,
		Micros:    n,
		Lists:     lists,
	}
}
