package scheme

import (
	"mario/internal/pipeline"
)

// unit is one compute instruction to be placed by the greedy list scheduler.
type unit struct {
	kind  pipeline.Kind // Forward or Backward
	micro int
	part  int
	stage int
	dev   int

	// dependency bookkeeping
	waiting int     // unresolved predecessors
	succs   []int   // indices of dependent units
	ready   float64 // max finish time of resolved predecessors
}

// greedySchedule performs deterministic earliest-start list scheduling of
// forward/backward units onto devices. It is used to merge Chimera's two
// mirrored 1F1B pipelines into per-device instruction lists (the paper picks
// its Chimera schedule from the released chimera_pipeline_rank.py; the greedy
// merge reproduces its bidirectional bubble-overlap structure) and is also
// the extension hook for exploring new pipeline shapes (§5.2,
// "Visualization").
//
// Units are related by the virtual-pipeline dependencies: FW(m,s) after
// FW(m,s-1); BW(m,s) after BW(m,s+1) and FW(m,s). Ordering decisions use the
// canonical unit times (forward 1, backward 2) plus a small communication
// epsilon so that cross-device transfers break ties deterministically.
func greedySchedule(pl pipeline.Placement, micros []microAssign, fwTime, bwTime float64) [][]pipeline.Instr {
	const commEps = 1e-3
	S := pl.NumStages()
	units := make([]unit, 0, 2*S*len(micros))
	index := make(map[pipeline.Key]int)
	for _, ma := range micros {
		for s := 0; s < S; s++ {
			part := ma.partAt(pl, s)
			for _, k := range []pipeline.Kind{pipeline.Forward, pipeline.Backward} {
				u := unit{kind: k, micro: ma.micro, part: part, stage: s, dev: pl.Device(part, s)}
				index[pipeline.Key{Kind: k, Micro: ma.micro, Part: part, Stage: s}] = len(units)
				units = append(units, u)
			}
		}
	}
	addDep := func(from, to pipeline.Key) {
		f, t := index[from], index[to]
		units[f].succs = append(units[f].succs, t)
		units[t].waiting++
	}
	for _, ma := range micros {
		for s := 0; s < S; s++ {
			part := ma.partAt(pl, s)
			fw := pipeline.Key{Kind: pipeline.Forward, Micro: ma.micro, Part: part, Stage: s}
			bw := pipeline.Key{Kind: pipeline.Backward, Micro: ma.micro, Part: part, Stage: s}
			addDep(fw, bw)
			if s > 0 {
				prev := pipeline.Key{Kind: pipeline.Forward, Micro: ma.micro, Part: ma.partAt(pl, s-1), Stage: s - 1}
				addDep(prev, fw)
				prevBW := pipeline.Key{Kind: pipeline.Backward, Micro: ma.micro, Part: ma.partAt(pl, s-1), Stage: s - 1}
				addDep(bw, prevBW)
			}
		}
	}
	// 1F1B injection windows: within each partition (pipeline direction),
	// the forward of the k-th micro-batch at stage s may not start before
	// the backward of the (k-(S-s))-th micro-batch of the same partition at
	// the same stage has finished. This bounds the in-flight micro-batches
	// per direction at stage s to S-s — exactly the memory discipline of
	// 1F1B — so the merged bidirectional schedule stays within Table 1's
	// ≈D·Mθ peak instead of flooding early bubbles with forwards.
	byPart := map[int][]microAssign{}
	for _, ma := range micros {
		byPart[ma.part] = append(byPart[ma.part], ma)
	}
	for _, seq := range byPart {
		for k, ma := range seq {
			for s := 0; s < S; s++ {
				part := ma.partAt(pl, s)
				w := S - s
				if k-w < 0 {
					continue
				}
				prev := seq[k-w]
				addDep(
					pipeline.Key{Kind: pipeline.Backward, Micro: prev.micro, Part: prev.partAt(pl, s), Stage: s},
					pipeline.Key{Kind: pipeline.Forward, Micro: ma.micro, Part: part, Stage: s},
				)
			}
		}
	}

	devFree := make([]float64, pl.NumDevices())
	lists := make([][]pipeline.Instr, pl.NumDevices())
	rq := &readyQueue{units: units}
	for i := range units {
		if units[i].waiting == 0 {
			rq.idx = append(rq.idx, i)
		}
	}
	for rq.Len() > 0 {
		i := rq.popBest(devFree)
		u := &units[i]
		start := u.ready
		if devFree[u.dev] > start {
			start = devFree[u.dev]
		}
		dur := fwTime
		if u.kind == pipeline.Backward {
			dur = bwTime
		}
		finish := start + dur
		devFree[u.dev] = finish
		lists[u.dev] = append(lists[u.dev], pipeline.Instr{Kind: u.kind, Micro: u.micro, Part: u.part, Stage: u.stage})
		for _, si := range u.succs {
			s := &units[si]
			arrive := finish
			if s.dev != u.dev {
				arrive += commEps
			}
			if arrive > s.ready {
				s.ready = arrive
			}
			s.waiting--
			if s.waiting == 0 {
				rq.idx = append(rq.idx, si)
			}
		}
	}
	return lists
}

// microAssign assigns a micro-batch to a partition (pipeline direction or
// chunk sequence).
type microAssign struct {
	micro int
	part  int // fixed partition for bidirectional schemes
}

// partAt resolves the partition id the micro-batch uses at the given stage.
func (ma microAssign) partAt(pl pipeline.Placement, stage int) int {
	if ip, ok := pl.(pipeline.InterleavedPlacement); ok {
		return ip.PartOfStage(stage)
	}
	return ma.part
}

// readyQueue holds the indices of schedulable units. popBest selects the
// unit with the minimal effective start; among equals it prefers backwards
// over forwards (bounding activation memory) and then lower micro ids for
// determinism.
type readyQueue struct {
	units []unit
	idx   []int
}

// Len returns the number of schedulable units.
func (q *readyQueue) Len() int { return len(q.idx) }

// popBest removes and returns the best schedulable unit: minimal effective
// start time max(ready, devFree), then Backward before Forward, then lowest
// micro, part and stage ids.
func (q *readyQueue) popBest(devFree []float64) int {
	best := -1
	for pos, i := range q.idx {
		if best == -1 || q.better(i, q.idx[best], devFree) {
			best = pos
		}
	}
	i := q.idx[best]
	q.idx[best] = q.idx[len(q.idx)-1]
	q.idx = q.idx[:len(q.idx)-1]
	return i
}

func (q *readyQueue) better(a, b int, devFree []float64) bool {
	ua, ub := q.units[a], q.units[b]
	ea, eb := ua.ready, ub.ready
	if devFree[ua.dev] > ea {
		ea = devFree[ua.dev]
	}
	if devFree[ub.dev] > eb {
		eb = devFree[ub.dev]
	}
	if ea != eb {
		return ea < eb
	}
	if (ua.kind == pipeline.Backward) != (ub.kind == pipeline.Backward) {
		return ua.kind == pipeline.Backward
	}
	if ua.micro != ub.micro {
		return ua.micro < ub.micro
	}
	if ua.part != ub.part {
		return ua.part < ub.part
	}
	return ua.stage < ub.stage
}

// buildChimera constructs the bidirectional "X"-shape schedule: micro-batches
// are split between the up pipeline (part 0, stage s on device s) and the
// down pipeline (part 1, stage s on device D-1-s) in alternating blocks of
// D/2 per wave, then the two streams are merged per device by the greedy
// scheduler.
func buildChimera(cfg Config) *pipeline.Schedule {
	d, n := cfg.Devices, cfg.Micros
	pl := pipeline.NewBidirPlacement(d)
	half := d / 2
	micros := make([]microAssign, n)
	for m := 0; m < n; m++ {
		// Waves of D micro-batches: the first D/2 flow up, the next D/2 down.
		if (m/half)%2 == 0 {
			micros[m] = microAssign{micro: m, part: 0}
		} else {
			micros[m] = microAssign{micro: m, part: 1}
		}
	}
	lists := greedySchedule(pl, micros, 1, 2)
	return &pipeline.Schedule{
		Scheme:    pipeline.SchemeChimera,
		Placement: pl,
		Micros:    n,
		Lists:     lists,
	}
}
