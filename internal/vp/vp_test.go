package vp

import (
	"testing"

	"mario/internal/pipeline"
)

func TestOneF1B(t *testing.T) {
	r, err := For(pipeline.Scheme1F1B, pipeline.NewLinearPlacement(4))
	if err != nil {
		t.Fatal(err)
	}
	// Forward on device 1 came from device 0 and feeds device 2.
	fw := Ref{Device: 1, Micro: 3, Kind: pipeline.Forward}
	if prev, ok := r.FindPrevInst(fw); !ok || prev.Device != 0 {
		t.Errorf("FindPrevInst(FW dev1) = %+v ok=%v, want dev0", prev, ok)
	}
	if next, ok := r.FindNextInst(fw); !ok || next.Device != 2 {
		t.Errorf("FindNextInst(FW dev1) = %+v ok=%v, want dev2", next, ok)
	}
	// Backward flows the opposite way.
	bw := Ref{Device: 1, Micro: 3, Kind: pipeline.Backward}
	if prev, ok := r.FindPrevInst(bw); !ok || prev.Device != 2 {
		t.Errorf("FindPrevInst(BW dev1) = %+v ok=%v, want dev2", prev, ok)
	}
	// Boundaries.
	if _, ok := r.FindPrevInst(Ref{Device: 0, Kind: pipeline.Forward}); ok {
		t.Error("FW on device 0 should have no predecessor")
	}
	if _, ok := r.FindNextInst(Ref{Device: 3, Kind: pipeline.Forward}); ok {
		t.Error("FW on device 3 should have no successor")
	}
}

func TestChimeraDirections(t *testing.T) {
	r, err := For(pipeline.SchemeChimera, pipeline.NewBidirPlacement(4))
	if err != nil {
		t.Fatal(err)
	}
	// Up pipeline (part 0) moves like 1F1B.
	up := Ref{Device: 1, Part: 0, Kind: pipeline.Forward}
	if next, ok := r.FindNextInst(up); !ok || next.Device != 2 {
		t.Errorf("up FW next = %+v, want dev2", next)
	}
	// Down pipeline (part 1) moves the opposite way: forward goes to a
	// lower device id.
	down := Ref{Device: 2, Part: 1, Kind: pipeline.Forward}
	if next, ok := r.FindNextInst(down); !ok || next.Device != 1 {
		t.Errorf("down FW next = %+v, want dev1", next)
	}
	// Down backward moves toward higher device ids.
	dbw := Ref{Device: 1, Part: 1, Kind: pipeline.Backward}
	if next, ok := r.FindNextInst(dbw); !ok || next.Device != 2 {
		t.Errorf("down BW next = %+v, want dev2", next)
	}
}

func TestInterleaveWrap(t *testing.T) {
	r, err := For(pipeline.SchemeInterleave, pipeline.NewInterleavedPlacement(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	// FW on the last device of chunk 0 wraps to device 0, chunk 1
	// (Algorithm 1 lines 9-10).
	fw := Ref{Device: 3, Part: 0, Kind: pipeline.Forward}
	next, ok := r.FindNextInst(fw)
	if !ok || next.Device != 0 || next.Part != 1 {
		t.Errorf("FindNextInst(FW dev3 chunk0) = %+v ok=%v, want dev0 chunk1", next, ok)
	}
	// And the inverse direction undoes it.
	prev, ok := r.FindPrevInst(next)
	if !ok || prev != fw {
		t.Errorf("FindPrevInst round-trip = %+v ok=%v, want %+v", prev, ok, fw)
	}
	// Chunk boundary at the top of the model.
	top := Ref{Device: 3, Part: 1, Kind: pipeline.Forward}
	if _, ok := r.FindNextInst(top); ok {
		t.Error("last stage should have no forward successor")
	}
}

func TestRegisterCustomScheme(t *testing.T) {
	const custom = pipeline.Scheme("Custom")
	Register(custom, func(pl pipeline.Placement) Resolver {
		return oneF1B{devices: pl.NumDevices()}
	})
	r, err := For(custom, pipeline.NewLinearPlacement(2))
	if err != nil {
		t.Fatalf("For(custom): %v", err)
	}
	if next, ok := r.FindNextInst(Ref{Device: 0, Kind: pipeline.Forward}); !ok || next.Device != 1 {
		t.Errorf("custom resolver broken: %+v ok=%v", next, ok)
	}
	if _, err := For(pipeline.Scheme("Missing"), pipeline.NewLinearPlacement(2)); err == nil {
		t.Error("expected error for unregistered scheme")
	}
}

// TestResolverMatchesPlacement cross-checks Algorithm 1 against the
// placement-derived dependency used by the rest of the system: for every
// (device, part) the resolver's next-device must equal the placement's
// device of stage+1.
func TestResolverMatchesPlacement(t *testing.T) {
	t.Run("chimera", func(t *testing.T) {
		pl := pipeline.NewBidirPlacement(8)
		r, _ := For(pipeline.SchemeChimera, pl)
		for part := 0; part < 2; part++ {
			for st := 0; st < pl.NumStages()-1; st++ {
				dev := pl.Device(part, st)
				next, ok := r.FindNextInst(Ref{Device: dev, Part: part, Kind: pipeline.Forward})
				if !ok {
					t.Fatalf("part %d stage %d: no next", part, st)
				}
				if want := pl.Device(part, st+1); next.Device != want {
					t.Errorf("part %d stage %d: resolver dev %d, placement dev %d", part, st, next.Device, want)
				}
			}
		}
	})
	t.Run("interleave", func(t *testing.T) {
		pl := pipeline.NewInterleavedPlacement(4, 3)
		r, _ := For(pipeline.SchemeInterleave, pl)
		for st := 0; st < pl.NumStages()-1; st++ {
			part := pl.PartOfStage(st)
			dev := pl.Device(part, st)
			next, ok := r.FindNextInst(Ref{Device: dev, Part: part, Kind: pipeline.Forward})
			if !ok {
				t.Fatalf("stage %d: no next", st)
			}
			if want := pl.Device(pl.PartOfStage(st+1), st+1); next.Device != want {
				t.Errorf("stage %d: resolver dev %d, placement dev %d", st, next.Device, want)
			}
			if want := pl.PartOfStage(st + 1); next.Part != want {
				t.Errorf("stage %d: resolver part %d, placement part %d", st, next.Part, want)
			}
		}
	})
}
