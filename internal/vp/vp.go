// Package vp implements the paper's virtual pipeline abstraction (§5.2,
// Algorithm 1): a uniform way to locate the cross-device ("vertical")
// dependency of a pipeline instruction regardless of scheme. All schemes
// obey the fundamental principle that forward instructions execute across
// all stages in order, followed by backward instructions in reverse order,
// for each micro-batch; the virtual pipeline encodes how (device, micro,
// part) coordinates move one logical step along that order.
package vp

import (
	"fmt"

	"mario/internal/pipeline"
)

// Ref identifies an instruction by the coordinates of Algorithm 1: device
// id, micro id, partition id and instruction kind.
type Ref struct {
	Device int
	Micro  int
	Part   int
	Kind   pipeline.Kind
}

// Resolver finds the previous/next instruction in the virtual pipeline for a
// scheme. Implementations exist for 1F1B, Chimera and Interleave; new
// schemes plug in through Register (the "flexible interface for users" of
// Algorithm 1, line 12).
type Resolver interface {
	// FindPrevInst locates the instruction in the previous stage of the
	// virtual pipeline: the producer a forward consumes from, or the
	// backward that consumes this stage's gradients. ok is false at the
	// boundary of the pipeline.
	FindPrevInst(r Ref) (Ref, bool)
	// FindNextInst locates the instruction in the next stage.
	FindNextInst(r Ref) (Ref, bool)
}

// step returns the logical direction of motion: forward instructions advance
// +1 stage, backward instructions advance -1 (Algorithm 1, line 2).
func step(k pipeline.Kind, next bool) int {
	s := 1
	if !next {
		s = -1
	}
	if k == pipeline.Backward {
		s = -s
	}
	return s
}

// oneF1B resolves dependencies for linear placements (GPipe and 1F1B):
// device ±1 along the logical direction (Algorithm 1, line 5).
type oneF1B struct {
	devices int
}

func (v oneF1B) find(r Ref, next bool) (Ref, bool) {
	r.Device += step(r.Kind, next)
	if r.Device < 0 || r.Device >= v.devices {
		return Ref{}, false
	}
	return r, true
}

func (v oneF1B) FindPrevInst(r Ref) (Ref, bool) { return v.find(r, false) }
func (v oneF1B) FindNextInst(r Ref) (Ref, bool) { return v.find(r, true) }

// chimera resolves the bidirectional pipelines: the up pipeline (part 0)
// follows the logical direction, the down pipeline (part 1) the opposite
// (Algorithm 1, line 7).
type chimera struct {
	devices int
}

func (v chimera) find(r Ref, next bool) (Ref, bool) {
	s := step(r.Kind, next)
	if r.Part == 1 {
		s = -s
	}
	r.Device += s
	if r.Device < 0 || r.Device >= v.devices {
		return Ref{}, false
	}
	return r, true
}

func (v chimera) FindPrevInst(r Ref) (Ref, bool) { return v.find(r, false) }
func (v chimera) FindNextInst(r Ref) (Ref, bool) { return v.find(r, true) }

// interleave resolves the cyclic placement: the device index moves in the
// logical direction modulo the device count, adjusting the partition (chunk)
// id when the motion wraps across a chunk boundary (Algorithm 1, lines 9-10).
type interleave struct {
	devices int
	chunks  int
}

func (v interleave) find(r Ref, next bool) (Ref, bool) {
	s := step(r.Kind, next)
	nd := (r.Device + s + v.devices) % v.devices
	np := r.Part
	if nd != r.Device+s {
		np += s
	}
	if np < 0 || np >= v.chunks {
		return Ref{}, false
	}
	r.Device, r.Part = nd, np
	return r, true
}

func (v interleave) FindPrevInst(r Ref) (Ref, bool) { return v.find(r, false) }
func (v interleave) FindNextInst(r Ref) (Ref, bool) { return v.find(r, true) }

// registry holds user-registered resolvers for emerging pipeline schemes.
var registry = map[pipeline.Scheme]func(pl pipeline.Placement) Resolver{}

// Register installs a resolver factory for a custom scheme, extending
// Algorithm 1 beyond the built-in cases.
func Register(s pipeline.Scheme, f func(pl pipeline.Placement) Resolver) {
	registry[s] = f
}

// For returns the resolver for a scheme over the given placement.
func For(s pipeline.Scheme, pl pipeline.Placement) (Resolver, error) {
	switch s {
	case pipeline.Scheme1F1B, pipeline.SchemeGPipe:
		return oneF1B{devices: pl.NumDevices()}, nil
	case pipeline.SchemeChimera:
		return chimera{devices: pl.NumDevices()}, nil
	case pipeline.SchemeInterleave:
		return interleave{devices: pl.NumDevices(), chunks: pl.NumParts()}, nil
	}
	if f, ok := registry[s]; ok {
		return f(pl), nil
	}
	return nil, fmt.Errorf("vp: no resolver for scheme %q", s)
}
