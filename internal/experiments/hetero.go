package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/place"
	"mario/internal/profile"
	"mario/internal/tuner"
)

// HeteroRow is one placement mode of the heterogeneity demo: the best
// candidate the tuner found under that mode, its layer partition and
// stage→device placement, and the predicted (simulator) vs measured
// (emulated cluster) throughput.
type HeteroRow struct {
	Mode      place.Mode
	Label     string
	Partition []int
	DeviceOf  []int
	Predicted float64
	Measured  float64
}

// HeteroResult compares the uniform-split identity-placement baseline with
// the co-optimized partitioning+placement plan on the pinned heterogeneous
// scenario: GPT3-13B on 8 devices, one of which runs at 0.8× nominal speed,
// under a 72G per-device cap that rules out pp=4 (its checkpointed peak is
// ~84G for any placement), so the search settles at pp=8 where the uneven
// stack gives the co-optimizer real freedom.
type HeteroResult struct {
	Rows []HeteroRow
}

// Hetero runs the tuner twice over the pinned scenario — once forced to the
// uniform baseline, once forced to co-optimize — and executes each winner on
// an emulated cluster whose truth estimator carries the same partition and
// per-rank speed factors. Fully deterministic for a given Opts.Fast value.
func Hetero(opt Opts) (*HeteroResult, error) {
	gbs, iters := 64, 3
	if opt.Fast {
		gbs, iters = 32, 2
	}
	speeds := []float64{1, 1, 1, 0.8, 1, 1, 1, 1}
	hw := cost.A100_40G
	hw.MemBytes = 72 << 30
	prof := &profile.Profiler{
		Model:   cost.GPT3_13B,
		HW:      hw,
		Spec:    profile.DefaultMachine,
		Devices: 4,
		Iters:   10,
	}

	res := &HeteroResult{}
	for _, mode := range []place.Mode{place.ModeUniform, place.ModeCoOpt} {
		tn := &tuner.Tuner{Prof: prof, MaxRounds: 8}
		best, _, err := tn.Search(tuner.Space{
			Devices:      8,
			GlobalBatch:  gbs,
			Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
			MicroBatches: []int{2},
			DeviceMem:    float64(hw.MemBytes),
			Workers:      1,
			DeviceSpeeds: speeds,
			Placement:    mode,
		})
		if err != nil {
			return nil, fmt.Errorf("hetero %s: %w", mode, err)
		}
		if best.Place == nil {
			return nil, fmt.Errorf("hetero %s: best candidate carries no assignment", mode)
		}
		mach, err := prof.NewMachinePartitioned(prof.Model, best.Schedule.NumStages(),
			best.MicroBatch, 1, best.Place.LayersPerStage, best.Place.RankSpeed)
		if err != nil {
			return nil, fmt.Errorf("hetero %s: %w", mode, err)
		}
		mach.DP = best.DP
		rep, err := mach.Run(best.Schedule, iters)
		if err != nil {
			return nil, fmt.Errorf("hetero %s: %w", mode, err)
		}
		res.Rows = append(res.Rows, HeteroRow{
			Mode:      mode,
			Label:     best.Label(),
			Partition: best.Place.LayersPerStage,
			DeviceOf:  best.Place.DeviceOf,
			Predicted: best.Throughput,
			Measured:  rep.SamplesPerSec,
		})
	}
	return res, nil
}

// PrintHetero renders the comparison plus the co-opt gain over the baseline.
func PrintHetero(w io.Writer, r *HeteroResult) {
	fmt.Fprintf(w, "%-8s  %-22s  %-28s  %-20s  %10s  %10s\n",
		"mode", "config", "layers/stage", "stage→device", "pred thpt", "meas thpt")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s  %-22s  %-28s  %-20s  %10.4f  %10.4f\n",
			row.Mode, row.Label, fmt.Sprint(row.Partition), fmt.Sprint(row.DeviceOf),
			row.Predicted, row.Measured)
	}
	if len(r.Rows) == 2 {
		u, c := r.Rows[0], r.Rows[1]
		fmt.Fprintf(w, "co-opt vs uniform: predicted %+.2f%%, measured %+.2f%%\n",
			100*(c.Predicted/u.Predicted-1), 100*(c.Measured/u.Measured-1))
	}
}
