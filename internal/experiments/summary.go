package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Speedups summarises the headline claims of §6.1/§6.2 from throughput
// rows: the geometric-mean speedup of lmbs over base ("Mario vs pipeline
// w/o checkpointing", paper: 1.16× average on the abstract's framing,
// 1.25× in §6.1) and of ovlp over ckpt ("Mario vs pipeline w/
// checkpointing", paper: 1.57× average; 1.13× on the 32-GPU table).
type Speedups struct {
	LmbsOverBase float64
	OvlpOverCkpt float64
	OvlpOverBase float64
	N            int
}

// Summarise computes the aggregate speedups over a set of throughput rows.
func Summarise(rows []ThroughputRow) Speedups {
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Config] = r.Throughput
	}
	var s Speedups
	gLB, gOC, gOB := 1.0, 1.0, 1.0
	n := 0
	for key, base := range byKey {
		if !strings.HasSuffix(key, "-base") || base <= 0 {
			continue
		}
		prefix := strings.TrimSuffix(key, "base")
		lmbs, okL := byKey[prefix+"lmbs"]
		ovlp, okO := byKey[prefix+"ovlp"]
		ckpt, okC := byKey[prefix+"ckpt"]
		if !okL || !okO || !okC || ckpt <= 0 {
			continue
		}
		gLB *= lmbs / base
		gOC *= ovlp / ckpt
		gOB *= ovlp / base
		n++
	}
	if n > 0 {
		inv := 1 / float64(n)
		s.LmbsOverBase = math.Pow(gLB, inv)
		s.OvlpOverCkpt = math.Pow(gOC, inv)
		s.OvlpOverBase = math.Pow(gOB, inv)
		s.N = n
	}
	return s
}

// PrintSpeedups renders the aggregate claims next to the paper's.
func PrintSpeedups(w io.Writer, name string, s Speedups) {
	fmt.Fprintf(w, "%s (over %d scheme/model pairs):\n", name, s.N)
	fmt.Fprintf(w, "  Mario lmbs vs base (w/o ckpt baseline): %.2fx  (paper avg 1.16x; §6.1 per-scheme up to 1.52x)\n", s.LmbsOverBase)
	fmt.Fprintf(w, "  Mario ovlp vs naive ckpt:               %.2fx  (paper avg 1.57x framing; §6.2 reports 1.13x ovlp/ckpt)\n", s.OvlpOverCkpt)
	fmt.Fprintf(w, "  Mario ovlp vs base (overhead check):    %.2fx  (paper: 94.7%% of base on LLaMA2-13B/V)\n", s.OvlpOverBase)
}
