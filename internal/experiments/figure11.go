package experiments

import (
	"fmt"
	"io"
	"time"

	"mario/internal/cost"
	"mario/internal/tuner"
)

// Fig11Point is one tuning iteration of the cluster experiment (§6.7).
type Fig11Point struct {
	Label      string
	Throughput float64
	OOM        bool
}

// Fig11Result is the parameter-tuning curve over the 64-GPU cluster.
type Fig11Result struct {
	Points     []Fig11Point
	BestLabel  string
	BestThpt   float64
	TuningTime time.Duration
}

// Figure11 tunes GPT3-13B over a 64-GPU cluster with data parallelism
// (TP = 1, DP = 64/PP), searching pipeline scheme × PP × micro-batch size ×
// checkpointing. The paper uses a global batch of 128 and finds V-64-16 /
// X-64-16 / W-64-32 with Mario enabled as the per-scheme winners; our grid
// uses a global batch of 512 so the Interleave constraint
// (micros % PP == 0) admits deep pipelines, and sweeps mbs ∈ {1,2,4,8}.
// The paper's total tuning time is 210 s on real hardware feedback; the
// simulator-driven search here finishes in seconds.
func Figure11(opt Opts) (*Fig11Result, error) {
	devices, gbs := 64, 512
	mbs := []int{1, 2, 4, 8}
	if opt.Fast {
		devices, gbs = 8, 64
		mbs = []int{1, 2}
	}
	tn := &tuner.Tuner{Prof: newProfiler(cost.GPT3_13B), MaxRounds: 2}
	start := time.Now()
	// NoPrune keeps every feasible point in the trace: the figure plots the
	// whole tuning curve, not just the points that could still win.
	best, trace, err := tn.Search(tuner.Space{
		Devices:      devices,
		GlobalBatch:  gbs,
		MicroBatches: mbs,
		TP:           1,
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      opt.Workers,
		NoPrune:      true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{
		BestLabel:  best.Label(),
		BestThpt:   best.Throughput,
		TuningTime: time.Since(start),
	}
	for _, c := range trace {
		res.Points = append(res.Points, Fig11Point{Label: c.Label(), Throughput: c.Throughput, OOM: c.OOM})
	}
	return res, nil
}

// PrintFigure11 renders the tuning curve.
func PrintFigure11(w io.Writer, r *Fig11Result) {
	fmt.Fprintf(w, "tuning iterations: %d, best %s at %.2f samples/s, tuning time %v\n",
		len(r.Points), r.BestLabel, r.BestThpt, r.TuningTime.Round(time.Millisecond))
	for i, p := range r.Points {
		mark := ""
		if p.OOM {
			mark = " OOM"
		}
		fmt.Fprintf(w, "iter %3d  %-18s %10.2f%s\n", i, p.Label, p.Throughput, mark)
	}
}
