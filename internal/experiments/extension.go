package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// ZBRow is one row of the split-backward extension study.
type ZBRow struct {
	Config  string
	Time    float64 // makespan in t units
	PeakMem float64 // device-0 peak in Mθ units
}

// ExtensionZB quantifies the ZB-H1-style split-backward extension (§8 future
// work) on the Figure-2 pipeline: baseline, Mario checkpointing, split
// backward alone, and the composition — makespan vs. device-0 peak memory,
// exposing the bubble/memory trade-off.
func ExtensionZB(opt Opts) ([]ZBRow, error) {
	d, n := 4, 4
	if !opt.Fast {
		d, n = 8, 8
	}
	e := cost.Uniform(d, 1, 2, 0.25)
	base, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	if err != nil {
		return nil, err
	}
	var rows []ZBRow
	add := func(name string, s *pipeline.Schedule, r *sim.Result) error {
		if r == nil {
			var err error
			r, err = sim.Simulate(s, e, sim.Options{})
			if err != nil {
				return err
			}
		}
		rows = append(rows, ZBRow{Config: name, Time: r.Total, PeakMem: r.PeakMem[0]})
		return nil
	}
	if err := add("1F1B baseline", base, nil); err != nil {
		return nil, err
	}
	ckpt, rc, err := graph.Optimize(base, graph.Options{Estimator: e})
	if err != nil {
		return nil, err
	}
	if err := add("+ Mario checkpointing", ckpt, rc); err != nil {
		return nil, err
	}
	split, rs, err := graph.SplitBackward(base, graph.Options{Estimator: e})
	if err != nil {
		return nil, err
	}
	_ = split
	if err := add("+ ZB-H1 split backward", nil, rs); err != nil {
		return nil, err
	}
	both, rb, err := graph.SplitBackward(ckpt, graph.Options{Estimator: e})
	if err != nil {
		return nil, err
	}
	_ = both
	if err := add("+ Mario + split backward", nil, rb); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintExtensionZB renders the extension study.
func PrintExtensionZB(w io.Writer, rows []ZBRow) {
	fmt.Fprintf(w, "%-26s %10s %16s\n", "Config", "Time (t)", "dev0 peak (Mθ)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %10.1f %16.2f\n", r.Config, r.Time, r.PeakMem)
	}
}
