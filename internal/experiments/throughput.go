package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// ThroughputRow is one configuration of Figure 6 or Table 5.
type ThroughputRow struct {
	Model      string
	Config     string // e.g. "V-ovlp"
	GlobalBS   int
	MicroBS    int
	MemMinGB   float64
	MemMaxGB   float64
	Throughput float64 // samples/sec (simulator estimate)
	OOM        bool    // exceeds the 40 GB device (the paper's underlined rows)
	// PeakPerDevice backs Figure 7.
	PeakPerDevice []float64
}

// baseMicroBS returns the paper's Micro BS column: 2 for V and X, 1 for W
// (Interleave consumes more memory, §6.1).
func baseMicroBS(sch pipeline.Scheme) int {
	if sch == pipeline.SchemeInterleave {
		return 1
	}
	return 2
}

// throughputGrid evaluates base/ckpt/ovlp/lmbs for every scheme on one
// model — the shared engine of Figure 6 (8 devices) and Table 5 (32
// devices).
func throughputGrid(model cost.ModelConfig, devices, globalBS int) ([]ThroughputRow, error) {
	prof := newProfiler(model)
	memLimit := cost.A100_40G.MemBytes
	var rows []ThroughputRow
	for _, sch := range []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave} {
		for _, v := range allVariants {
			mbs := baseMicroBS(sch)
			if v == vLmbs {
				mbs *= 2
			}
			if globalBS%mbs != 0 {
				continue
			}
			micros := globalBS / mbs
			stages := devices
			if sch == pipeline.SchemeInterleave {
				stages = devices * 2
			}
			if model.Layers < stages {
				continue
			}
			est, err := prof.EstimatorFor(stages, mbs, 1)
			if err != nil {
				return nil, err
			}
			// The simulator's MemLimit is not passed here: like the paper's
			// underlined Table 5 rows, OOM configurations are still
			// estimated by the simulator and flagged.
			res, _, err := evalConfig(sch, devices, micros, est, v, 0)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", model.Name, shapeOf(sch, v), err)
			}
			lo, hi := res.MinMaxPeak()
			rows = append(rows, ThroughputRow{
				Model:         model.Name,
				Config:        shapeOf(sch, v),
				GlobalBS:      globalBS,
				MicroBS:       mbs,
				MemMinGB:      GB(lo),
				MemMaxGB:      GB(hi),
				Throughput:    res.SamplesPerSec,
				OOM:           hi > memLimit,
				PeakPerDevice: res.PeakMem,
			})
		}
	}
	return rows, nil
}

// Figure6 evaluates GPT3-1.6B and LLaMA2-3B on an 8-GPU pipeline with
// global batch size 128 (§6.1).
func Figure6(opt Opts) ([]ThroughputRow, error) {
	devices, gbs := 8, 128
	models := []cost.ModelConfig{cost.GPT3_1_6B, cost.LLaMA2_3B}
	if opt.Fast {
		devices, gbs = 4, 16
		models = models[:1]
	}
	var rows []ThroughputRow
	for _, m := range models {
		r, err := throughputGrid(m, devices, gbs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Table5 evaluates GPT3-13B and LLaMA2-13B on a 32-GPU pipeline with global
// batch size 128 (§6.2); rows whose max peak exceeds 40 GB correspond to
// the paper's underlined simulator-estimated values.
func Table5(opt Opts) ([]ThroughputRow, error) {
	devices, gbs := 32, 128
	models := []cost.ModelConfig{cost.GPT3_13B, cost.LLaMA2_13B}
	if opt.Fast {
		devices, gbs = 8, 32
		models = []cost.ModelConfig{cost.GPT3_13B}
	}
	var rows []ThroughputRow
	for _, m := range models {
		r, err := throughputGrid(m, devices, gbs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// PrintThroughput renders rows in the shape of Table 5.
func PrintThroughput(w io.Writer, rows []ThroughputRow) {
	fmt.Fprintf(w, "%-12s %-8s %7s %6s %18s %14s\n", "Model", "Config", "Global", "Micro", "Memory (Min,Max GB)", "Thpt (smp/s)")
	for _, r := range rows {
		oom := ""
		if r.OOM {
			oom = "  (OOM on real 40G device; simulator estimate)"
		}
		fmt.Fprintf(w, "%-12s %-8s %7d %6d   [%6.2f, %7.2f]   %12.2f%s\n",
			r.Model, r.Config, r.GlobalBS, r.MicroBS, r.MemMinGB, r.MemMaxGB, r.Throughput, oom)
	}
}

// Figure7 returns the per-device peak memory of every Figure 6
// configuration (the paper plots the same data as bars per device).
func Figure7(opt Opts) ([]ThroughputRow, error) {
	return Figure6(opt)
}

// PrintFigure7 renders per-device memory bars.
func PrintFigure7(w io.Writer, rows []ThroughputRow) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s %s:", r.Model, r.Config)
		for _, p := range r.PeakPerDevice {
			fmt.Fprintf(w, " %6.2f", GB(p))
		}
		fmt.Fprintln(w, " GB")
	}
}
