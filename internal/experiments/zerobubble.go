package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// ZeroBubbleRow is one row of the zero-bubble scheme-family study: a scheme
// simulated end to end on a fixed workload, reporting the makespan, the worst
// per-device bubble fraction, and the largest per-device peak memory.
type ZeroBubbleRow struct {
	Scheme  string
	Time    float64 // makespan in seconds
	Bubble  float64 // worst-device bubble ratio
	PeakMem float64 // largest per-device peak in GB
}

// zeroBubbleSchemes lists the compared schemes in presentation order: the
// 1F1B baseline, both native split-backward schemes, and Chimera as the
// bidirectional fused-backward reference point for DualPipe-D.
var zeroBubbleSchemes = []pipeline.Scheme{
	pipeline.Scheme1F1B,
	pipeline.SchemeZBH1,
	pipeline.SchemeDualPipeD,
	pipeline.SchemeChimera,
}

// ZeroBubble compares the split-backward scheme family against 1F1B on an
// analytically costed workload: GPT3-13B on 64 A100s with 128 micro-batches
// (micro-batch size 2), or a reduced LLaMA2-3B / 8-device shape in fast mode.
// ZB-H1 fills pipeline bubbles with deferred weight-gradient work at the cost
// of a small gradient stash; DualPipe-D additionally runs the pipeline from
// both ends, trading a second weight replica for a far shorter ramp.
func ZeroBubble(opt Opts) ([]ZeroBubbleRow, error) {
	model, devices, micros := cost.GPT3_13B, 64, 128
	if opt.Fast {
		model, devices, micros = cost.LLaMA2_3B, 8, 16
	}
	est, err := cost.Analytic(cost.AnalyticConfig{
		Model:      model,
		HW:         cost.A100_40G,
		Stages:     devices,
		MicroBatch: 2,
	})
	if err != nil {
		return nil, err
	}
	var rows []ZeroBubbleRow
	for _, sch := range zeroBubbleSchemes {
		s, err := scheme.Build(sch, scheme.Config{Devices: devices, Micros: micros})
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", sch.Shape(), err)
		}
		r, err := sim.Simulate(s, est, sim.Options{})
		if err != nil {
			return nil, fmt.Errorf("simulate %s: %w", sch.Shape(), err)
		}
		worst := 0.0
		for dev := 0; dev < devices; dev++ {
			if b := r.BubbleRatio(dev); b > worst {
				worst = b
			}
		}
		_, hi := r.MinMaxPeak()
		rows = append(rows, ZeroBubbleRow{
			Scheme:  string(sch),
			Time:    r.Total,
			Bubble:  worst,
			PeakMem: GB(hi),
		})
	}
	return rows, nil
}

// PrintZeroBubble renders the zero-bubble comparison table.
func PrintZeroBubble(w io.Writer, rows []ZeroBubbleRow) {
	fmt.Fprintf(w, "%-12s %10s %10s %12s\n", "Scheme", "Time (s)", "Bubble", "Peak (GB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10.3f %10.4f %12.1f\n", r.Scheme, r.Time, r.Bubble, r.PeakMem)
	}
}
