package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
	"mario/internal/viz"
)

// Figure5 renders the pipeline visualisations of Fig. 5: the V/X/W schedules
// without checkpointing, plus the Mario-optimized 1F1B for contrast, as
// ASCII Gantt charts.
func Figure5(w io.Writer, opt Opts) error {
	d, n := 4, 8
	if opt.Fast {
		n = 4
	}
	for _, sch := range []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave} {
		s, err := scheme.Build(sch, scheme.Config{Devices: d, Micros: n})
		if err != nil {
			return err
		}
		e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
		r, err := sim.Simulate(s, e, sim.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s (%s shape), no checkpointing ---\n%s\n", sch, sch.Shape(), viz.ASCII(r, 1))
	}
	// The same 1F1B pipeline after Mario's four passes.
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	if err != nil {
		return err
	}
	e := cost.Uniform(d, 1, 2, 0.25)
	_, r, err := graph.Optimize(s, graph.Options{Estimator: e})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "--- 1F1B with Mario checkpointing tessellated ---\n%s\n", viz.ASCII(r, 1))
	return nil
}
