package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/regress"
)

// Fig10Point pairs a configuration's simulator estimate with its measured
// value on the emulated cluster.
type Fig10Point struct {
	Config               string
	MemPredGB, MemMeasGB float64 // max-device peak
	ThptPred, ThptMeas   float64 // samples/sec
}

// Fig10Result is the simulator-accuracy evaluation of §6.6. The paper
// reports 5.1% MAPE on peak memory and 9.4% on throughput, with the partial
// order of configurations preserved.
type Fig10Result struct {
	Points      []Fig10Point
	MemMAPE     float64
	ThptMAPE    float64
	ThptKendall float64 // rank correlation of estimated vs measured
}

// Figure10 estimates GPT3-1.6B configurations on 8 GPUs with the profiled
// estimator and measures them on the emulated cluster (whose ground truth
// includes jitter and framework overheads the estimator never sees
// directly).
func Figure10(opt Opts) (*Fig10Result, error) {
	devices, iters := 8, 3
	model := cost.GPT3_1_6B
	if opt.Fast {
		devices, iters = 4, 2
	}
	prof := newProfiler(model)

	type cfg struct {
		sch pipeline.Scheme
		v   variant
		mbs int
	}
	var cfgs []cfg
	for _, sch := range []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave} {
		for _, mbs := range []int{1, 2} {
			cfgs = append(cfgs, cfg{sch, vBase, mbs}, cfg{sch, vOvlp, mbs})
		}
	}

	res := &Fig10Result{}
	var memT, memP, thT, thP []float64
	for _, c := range cfgs {
		micros := 4 * devices
		stages := devices
		if c.sch == pipeline.SchemeInterleave {
			stages = devices * 2
		}
		est, err := prof.EstimatorFor(stages, c.mbs, 1)
		if err != nil {
			return nil, err
		}
		pred, sched, err := evalConfig(c.sch, devices, micros, est, c.v, 0)
		if err != nil {
			return nil, err
		}
		mach, err := prof.NewMachine(model, stages, c.mbs, 1)
		if err != nil {
			return nil, err
		}
		meas, err := mach.Run(sched, iters)
		if err != nil {
			return nil, err
		}
		_, predHi := pred.MinMaxPeak()
		_, measHi := minMax(meas.PeakMem)
		p := Fig10Point{
			Config:    fmt.Sprintf("%s-mbs%d", shapeOf(c.sch, c.v), c.mbs),
			MemPredGB: GB(predHi), MemMeasGB: GB(measHi),
			ThptPred: pred.SamplesPerSec, ThptMeas: meas.SamplesPerSec,
		}
		res.Points = append(res.Points, p)
		memT, memP = append(memT, measHi), append(memP, predHi)
		thT, thP = append(thT, meas.SamplesPerSec), append(thP, pred.SamplesPerSec)
	}
	res.MemMAPE = regress.MAPE(memT, memP)
	res.ThptMAPE = regress.MAPE(thT, thP)
	res.ThptKendall = regress.KendallTau(thT, thP)
	return res, nil
}

// PrintFigure10 renders the accuracy table.
func PrintFigure10(w io.Writer, r *Fig10Result) {
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s\n", "Config", "Mem est GB", "Mem meas GB", "Thpt est", "Thpt meas")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-14s %12.2f %12.2f %12.2f %12.2f\n", p.Config, p.MemPredGB, p.MemMeasGB, p.ThptPred, p.ThptMeas)
	}
	fmt.Fprintf(w, "memory MAPE %.1f%% (paper 5.1%%), throughput MAPE %.1f%% (paper 9.4%%), Kendall tau %.2f\n",
		100*r.MemMAPE, 100*r.ThptMAPE, r.ThptKendall)
}
