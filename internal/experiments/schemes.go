package experiments

import (
	"fmt"
	"strings"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
	"mario/internal/viz"
)

// SchemeCatalogueEntry is one scheme of the registry rendered on the demo
// grid: an ASCII Gantt chart plus a one-line stats summary, used to pin the
// diagrams in docs/SCHEMES.md.
type SchemeCatalogueEntry struct {
	Scheme  pipeline.Scheme
	Diagram string
}

// SchemeCatalogue renders every registered scheme on the shared demo grid
// (4 devices, 8 micro-batches, uniform F=t, B=2t costs) through the
// simulator. The output is deterministic and golden-pinned in
// docs/SCHEMES.md, keyed by <!-- golden:scheme-NAME --> markers.
func SchemeCatalogue() ([]SchemeCatalogueEntry, error) {
	const d, n = 4, 8
	var entries []SchemeCatalogueEntry
	for _, sch := range scheme.Schemes() {
		s, err := scheme.Build(sch, scheme.Config{Devices: d, Micros: n})
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", sch, err)
		}
		e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
		r, err := sim.Simulate(s, e, sim.Options{})
		if err != nil {
			return nil, fmt.Errorf("simulate %s: %w", sch, err)
		}
		worst := 0.0
		for dev := 0; dev < s.NumDevices(); dev++ {
			if b := r.BubbleRatio(dev); b > worst {
				worst = b
			}
		}
		lo, hi := r.MinMaxPeak()
		var b strings.Builder
		b.WriteString(viz.ASCII(r, 1))
		fmt.Fprintf(&b, "worst bubble %.4f, peak mem [%.3g, %.3g]\n", worst, lo, hi)
		entries = append(entries, SchemeCatalogueEntry{Scheme: sch, Diagram: b.String()})
	}
	return entries, nil
}
