package experiments

import (
	"io"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/tuner"
)

// FaultsResult is the robustness demo: a base and a Mario-optimized variant
// of the same 1F1B configuration, each executed on the emulated cluster
// healthy and under the canonical fault ensemble (straggler, flaky links,
// stall), so the report shows both per-plan throughput retention and how much
// of the checkpointing gain survives degradation.
type FaultsResult struct {
	Report *tuner.RobustnessReport
}

// Faults builds the (base, mario) pair of a checkpointed 1F1B schedule and
// re-scores both under fault.DefaultEnsemble via tuner.Robustness. Fully
// deterministic for a given Opts.Fast value.
func Faults(opt Opts) (*FaultsResult, error) {
	devices, iters := 8, 3
	model := cost.GPT3_1_6B
	if opt.Fast {
		devices, iters = 4, 2
	}
	prof := newProfiler(model)
	micros := 4 * devices
	mbs := 2

	est, err := prof.EstimatorFor(devices, mbs, 1)
	if err != nil {
		return nil, err
	}
	mkCand := func(v variant, ckpt bool) (tuner.Candidate, error) {
		res, sched, err := evalConfig(pipeline.Scheme1F1B, devices, micros, est, v, 0)
		if err != nil {
			return tuner.Candidate{}, err
		}
		return tuner.Candidate{
			Scheme: pipeline.Scheme1F1B, Ckpt: ckpt,
			PP: devices, DP: 1, MicroBatch: mbs, Micros: micros,
			Throughput: res.SamplesPerSec,
			Result:     res, Schedule: sched,
		}, nil
	}
	base, err := mkCand(vBase, false)
	if err != nil {
		return nil, err
	}
	mario, err := mkCand(vOvlp, true)
	if err != nil {
		return nil, err
	}

	rep, err := tuner.Robustness(prof, []tuner.Candidate{base, mario}, tuner.RobustnessOpts{
		TopK:  2,
		Iters: iters,
		Seed:  7,
	})
	if err != nil {
		return nil, err
	}
	return &FaultsResult{Report: rep}, nil
}

// PrintFaults renders the robustness report.
func PrintFaults(w io.Writer, r *FaultsResult) {
	r.Report.Print(w)
}
