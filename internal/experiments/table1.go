package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// Table1Row reports one scheme's activation-memory footprint measured in
// units of Mθ (the activation of one micro-batch on one device's stages),
// before and after Mario, alongside the paper's closed-form range.
type Table1Row struct {
	Scheme         pipeline.Scheme
	WeightReplicas int
	// ActMin/ActMax are the measured per-device peak activation extremes
	// of the base scheme in Mθ units.
	ActMin, ActMax float64
	// PaperMin/PaperMax are the bounds of Table 1's formulas evaluated at
	// the same D and N.
	PaperMin, PaperMax float64
	// MarioMax is the measured maximum after the Mario passes.
	MarioMax float64
	// PaperMario is Table 1's post-Mario value (Mθ or Mθ/2 per device,
	// expressed here as device-Mθ so Interleave reads 1.0 as well).
	PaperMario float64
}

// Table1 measures the per-scheme activation memory ranges of Table 1 with a
// unit-cost estimator (weights and framework zeroed, one device-stage's
// activations = its share of Mθ).
func Table1(opt Opts) ([]Table1Row, error) {
	d := 8
	if opt.Fast {
		d = 4
	}
	n := 2 * d
	var rows []Table1Row
	for _, sch := range []pipeline.Scheme{pipeline.SchemeGPipe, pipeline.Scheme1F1B, pipeline.SchemeInterleave, pipeline.SchemeChimera} {
		s, err := scheme.Build(sch, scheme.Config{Devices: d, Micros: n})
		if err != nil {
			return nil, err
		}
		// Stash cost is deliberately tiny so the measured range isolates
		// the full-activation replicas the formulas count.
		est := cost.Uniform(s.NumStages(), 1, 2, 0.01)
		// Normalise so one device's full stage set costs 1 Mθ: interleaved
		// devices hold NumStages/D stages.
		perDev := float64(s.NumStages()) / float64(d)
		base := sim.PeakMemory(s, est)
		lo, hi := minMax(base)

		o, _, err := graph.Optimize(s, graph.Options{Estimator: est})
		if err != nil {
			return nil, err
		}
		_, marioHi := minMax(sim.PeakMemory(o, est))

		row := Table1Row{
			Scheme:         sch,
			WeightReplicas: s.Placement.WeightReplicas(),
			ActMin:         lo / perDev,
			ActMax:         hi / perDev,
			MarioMax:       marioHi / perDev,
			PaperMario:     1,
		}
		df, nf := float64(d), float64(n)
		switch sch {
		case pipeline.SchemeGPipe:
			row.PaperMin, row.PaperMax = nf, nf
		case pipeline.Scheme1F1B:
			row.PaperMin, row.PaperMax = 1, df
		case pipeline.SchemeInterleave:
			// [(D+1), (3D-2)] × Mθ/2, in device-Mθ units.
			row.PaperMin, row.PaperMax = (df+1)/2, (3*df-2)/2
		case pipeline.SchemeChimera:
			row.PaperMin, row.PaperMax = df/2+1, df
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders the rows like the paper's Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-12s %-8s %-22s %-22s %-18s\n", "Scheme", "Weights", "Activation (measured)", "Activation (paper)", "Activation (Mario)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %d×Mw    [%5.2f, %5.2f]×Mθ       [%5.2f, %5.2f]×Mθ       %5.2f×Mθ (paper ≈%g)\n",
			r.Scheme, r.WeightReplicas, r.ActMin, r.ActMax, r.PaperMin, r.PaperMax, r.MarioMax, r.PaperMario)
	}
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
