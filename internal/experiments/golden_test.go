package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates the golden fenced blocks in EXPERIMENTS.md and
// docs/SCHEMES.md in place:
// go test ./internal/experiments -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite EXPERIMENTS.md and docs/SCHEMES.md golden snippets from current output")

// goldenOutputs generates the deterministic fast-mode outputs documented in
// EXPERIMENTS.md, keyed by their <!-- golden:NAME --> marker.
func goldenOutputs(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)

	dr, err := Drift(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	PrintDrift(&b, dr)
	out["drift-fast"] = b.String()

	fr, err := Faults(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintFaults(&b, fr)
	out["faults-fast"] = b.String()

	st, err := SearchTrace(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintSearchTrace(&b, st)
	out["searchtrace-fast"] = b.String()

	hr, err := Hetero(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintHetero(&b, hr)
	out["hetero-fast"] = b.String()

	zb, err := ZeroBubble(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintZeroBubble(&b, zb)
	out["zerobubble-fast"] = b.String()
	return out
}

// schemeGoldenOutputs renders the scheme-catalogue diagrams pinned in
// docs/SCHEMES.md, keyed by their <!-- golden:scheme-NAME --> marker.
func schemeGoldenOutputs(t *testing.T) map[string]string {
	t.Helper()
	entries, err := SchemeCatalogue()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		out["scheme-"+string(e.Scheme)] = e.Diagram
	}
	return out
}

// experimentsPath locates the repo-root EXPERIMENTS.md from the package dir.
func experimentsPath() string {
	return filepath.Join("..", "..", "EXPERIMENTS.md")
}

// schemesPath locates docs/SCHEMES.md from the package dir.
func schemesPath() string {
	return filepath.Join("..", "..", "docs", "SCHEMES.md")
}

// extractGolden returns the contents of the fenced code block that follows
// the <!-- golden:name --> marker, or an error describing what is missing.
func extractGolden(doc, name string) (string, error) {
	marker := fmt.Sprintf("<!-- golden:%s -->", name)
	idx := strings.Index(doc, marker)
	if idx < 0 {
		return "", fmt.Errorf("marker %s not found", marker)
	}
	rest := doc[idx+len(marker):]
	open := strings.Index(rest, "```")
	if open < 0 {
		return "", fmt.Errorf("no fenced block after %s", marker)
	}
	rest = rest[open:]
	nl := strings.Index(rest, "\n")
	if nl < 0 {
		return "", fmt.Errorf("unterminated fence after %s", marker)
	}
	rest = rest[nl+1:]
	end := strings.Index(rest, "```")
	if end < 0 {
		return "", fmt.Errorf("unclosed fenced block after %s", marker)
	}
	return rest[:end], nil
}

// replaceGolden swaps the fenced block following the marker with content.
func replaceGolden(doc, name, content string) (string, error) {
	old, err := extractGolden(doc, name)
	if err != nil {
		return "", err
	}
	marker := fmt.Sprintf("<!-- golden:%s -->", name)
	idx := strings.Index(doc, marker)
	blockStart := idx + len(marker)
	rel := strings.Index(doc[blockStart:], old)
	if rel < 0 {
		return "", fmt.Errorf("golden block for %s not found for replacement", name)
	}
	pos := blockStart + rel
	return doc[:pos] + content + doc[pos+len(old):], nil
}

// TestGoldenDocs pins the expected-output snippets in EXPERIMENTS.md and the
// scheme-catalogue diagrams in docs/SCHEMES.md to the actual deterministic
// output of the corresponding renderers, so the documentation cannot drift
// from the code.
func TestGoldenDocs(t *testing.T) {
	docs := []struct {
		path    string
		outputs map[string]string
	}{
		{experimentsPath(), goldenOutputs(t)},
		{schemesPath(), schemeGoldenOutputs(t)},
	}
	for _, d := range docs {
		data, err := os.ReadFile(d.path)
		if err != nil {
			t.Errorf("reading %s: %v", d.path, err)
			continue
		}
		doc := string(data)

		if *updateGolden {
			for name, want := range d.outputs {
				doc, err = replaceGolden(doc, name, want)
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(d.path, []byte(doc), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote golden snippets in %s", d.path)
			continue
		}

		for name, want := range d.outputs {
			got, err := extractGolden(doc, name)
			if err != nil {
				t.Errorf("%s: %v (run `go test ./internal/experiments -run Golden -update-golden` after adding the marker)", d.path, err)
				continue
			}
			if got != want {
				t.Errorf("%s golden snippet %q is stale.\n--- documented ---\n%s\n--- actual ---\n%s\nRegenerate with: go test ./internal/experiments -run Golden -update-golden", d.path, name, got, want)
			}
		}
	}
}
