package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates the golden fenced blocks in EXPERIMENTS.md in
// place: go test ./internal/experiments -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite EXPERIMENTS.md golden snippets from current output")

// goldenOutputs generates the deterministic fast-mode outputs documented in
// EXPERIMENTS.md, keyed by their <!-- golden:NAME --> marker.
func goldenOutputs(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)

	dr, err := Drift(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	PrintDrift(&b, dr)
	out["drift-fast"] = b.String()

	fr, err := Faults(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintFaults(&b, fr)
	out["faults-fast"] = b.String()

	st, err := SearchTrace(Opts{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintSearchTrace(&b, st)
	out["searchtrace-fast"] = b.String()
	return out
}

// experimentsPath locates the repo-root EXPERIMENTS.md from the package dir.
func experimentsPath() string {
	return filepath.Join("..", "..", "EXPERIMENTS.md")
}

// extractGolden returns the contents of the fenced code block that follows
// the <!-- golden:name --> marker, or an error describing what is missing.
func extractGolden(doc, name string) (string, error) {
	marker := fmt.Sprintf("<!-- golden:%s -->", name)
	idx := strings.Index(doc, marker)
	if idx < 0 {
		return "", fmt.Errorf("marker %s not found", marker)
	}
	rest := doc[idx+len(marker):]
	open := strings.Index(rest, "```")
	if open < 0 {
		return "", fmt.Errorf("no fenced block after %s", marker)
	}
	rest = rest[open:]
	nl := strings.Index(rest, "\n")
	if nl < 0 {
		return "", fmt.Errorf("unterminated fence after %s", marker)
	}
	rest = rest[nl+1:]
	end := strings.Index(rest, "```")
	if end < 0 {
		return "", fmt.Errorf("unclosed fenced block after %s", marker)
	}
	return rest[:end], nil
}

// replaceGolden swaps the fenced block following the marker with content.
func replaceGolden(doc, name, content string) (string, error) {
	old, err := extractGolden(doc, name)
	if err != nil {
		return "", err
	}
	marker := fmt.Sprintf("<!-- golden:%s -->", name)
	idx := strings.Index(doc, marker)
	blockStart := idx + len(marker)
	rel := strings.Index(doc[blockStart:], old)
	if rel < 0 {
		return "", fmt.Errorf("golden block for %s not found for replacement", name)
	}
	pos := blockStart + rel
	return doc[:pos] + content + doc[pos+len(old):], nil
}

// TestGoldenDocs pins the expected-output snippets in EXPERIMENTS.md to the
// actual deterministic fast-mode output of `cmd/experiments -run drift` and
// `-run faults`, so the documentation cannot drift from the code.
func TestGoldenDocs(t *testing.T) {
	data, err := os.ReadFile(experimentsPath())
	if err != nil {
		t.Fatalf("reading EXPERIMENTS.md: %v", err)
	}
	doc := string(data)
	outputs := goldenOutputs(t)

	if *updateGolden {
		for name, want := range outputs {
			doc, err = replaceGolden(doc, name, want)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(experimentsPath(), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote golden snippets in %s", experimentsPath())
		return
	}

	for name, want := range outputs {
		got, err := extractGolden(doc, name)
		if err != nil {
			t.Errorf("%v (run `go test ./internal/experiments -run Golden -update-golden` after adding the marker)", err)
			continue
		}
		if got != want {
			t.Errorf("EXPERIMENTS.md golden snippet %q is stale.\n--- documented ---\n%s\n--- actual ---\n%s\nRegenerate with: go test ./internal/experiments -run Golden -update-golden", name, got, want)
		}
	}
}
