package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// Fig8Row reports the largest feasible model (hidden-size sweep until OOM)
// for one configuration — the parameter-scaling experiment of §6.4.
type Fig8Row struct {
	Config      string
	MaxHidden   int
	MaxParams   float64 // parameters of the largest feasible model
	ScaleVsBase float64 // MaxParams relative to the scheme's base config
}

// Figure8 sweeps the GPT3 hidden size (from 512 in steps of 256) on a
// 16-GPU pipeline — seqlen 1024, 64 layers, 32 heads, global batch 64 —
// until the simulator predicts OOM on a 40 GB device, for V/X/W × base/
// ovlp/lmbs. The paper reports V: 3B → 16B (5.3×), X: 3B → 7B (2.3×),
// W: ~20× with Mario.
func Figure8(opt Opts) ([]Fig8Row, error) {
	devices, gbs, layers := 16, 64, 64
	maxSteps := 40
	if opt.Fast {
		devices, gbs, layers = 4, 8, 16
		maxSteps = 30
	}
	base := cost.ModelConfig{Name: "GPT3-scale", Hidden: 512, Layers: layers, Heads: 32, SeqLen: 1024, Vocab: 50304}
	memLimit := cost.A100_40G.MemBytes

	type cfg struct {
		sch pipeline.Scheme
		v   variant
	}
	var cfgs []cfg
	for _, sch := range []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave} {
		for _, v := range []variant{vBase, vOvlp, vLmbs} {
			cfgs = append(cfgs, cfg{sch, v})
		}
	}

	rows := make([]Fig8Row, len(cfgs))
	baseParams := map[pipeline.Scheme]float64{}
	for ci, c := range cfgs {
		mbs := 1
		if c.v == vLmbs {
			mbs = 2
		}
		micros := gbs / mbs
		stages := devices
		if c.sch == pipeline.SchemeInterleave {
			stages = devices * 2
		}
		maxHidden, maxParams := 0, 0.0
		for step := 0; step < maxSteps; step++ {
			h := 512 + 256*step
			m := base.WithHidden(h)
			if m.Layers < stages {
				break
			}
			est, err := cost.Analytic(cost.AnalyticConfig{Model: m, HW: cost.A100_40G, Stages: stages, MicroBatch: mbs})
			if err != nil {
				return nil, err
			}
			feasible, err := feasibleUnder(c.sch, devices, micros, est, c.v, memLimit)
			if err != nil {
				return nil, err
			}
			if !feasible {
				break
			}
			maxHidden, maxParams = h, m.TotalParams()
		}
		rows[ci] = Fig8Row{Config: shapeOf(c.sch, c.v), MaxHidden: maxHidden, MaxParams: maxParams}
		if c.v == vBase {
			baseParams[c.sch] = maxParams
		}
	}
	for i, c := range cfgs {
		if bp := baseParams[c.sch]; bp > 0 {
			rows[i].ScaleVsBase = rows[i].MaxParams / bp
		}
	}
	return rows, nil
}

// feasibleUnder reports whether the configuration's simulated peak memory
// fits the device.
func feasibleUnder(sch pipeline.Scheme, devices, micros int, est *cost.Estimator, v variant, memLimit float64) (bool, error) {
	s, err := scheme.Build(sch, scheme.Config{Devices: devices, Micros: micros})
	if err != nil {
		return false, err
	}
	switch v {
	case vBase:
		r, err := sim.Simulate(s, est, sim.Options{MemLimit: memLimit, NoTimeline: true})
		if err != nil {
			return false, err
		}
		return !r.OOM, nil
	default:
		// Mario variants: checkpoint + overlap; a configuration is feasible
		// if the optimized schedule fits.
		_, r, err := graph.Optimize(s, graph.Options{
			Estimator: est,
			Sim:       sim.Options{MemLimit: memLimit, NoTimeline: true},
			MaxRounds: 2,
		})
		if err != nil {
			return false, err
		}
		return !r.OOM, nil
	}
}

// PrintFigure8 renders the parameter-scaling table.
func PrintFigure8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "%-10s %10s %12s %10s\n", "Config", "MaxHidden", "Params (B)", "vs base")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %12.2f %9.1fx\n", r.Config, r.MaxHidden, r.MaxParams/1e9, r.ScaleVsBase)
	}
}
