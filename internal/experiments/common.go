// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the emulated substrate. Each experiment has a function
// returning a typed result plus a printer that emits rows shaped like the
// paper's, so cmd/experiments can reproduce the whole evaluation and
// EXPERIMENTS.md can record paper-vs-measured values.
package experiments

import (
	"fmt"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/profile"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// Opts selects between the paper-scale experiments and reduced "fast" sizes
// for tests and benchmarks.
type Opts struct {
	// Fast shrinks device counts, batch sizes and sweeps so the experiment
	// finishes in well under a second.
	Fast bool
	// Workers bounds the concurrent tuner evaluations in experiments that
	// run the schedule tuner (Figure 11); 0 means GOMAXPROCS. The produced
	// tables and figures are identical for every value.
	Workers int
}

// GB converts bytes to binary gigabytes.
func GB(v float64) float64 { return v / (1 << 30) }

// variant names the four evaluated configurations of §6.
type variant string

const (
	vBase variant = "base" // original scheme, no checkpointing
	vCkpt variant = "ckpt" // naive checkpointing (pass 1 only)
	vOvlp variant = "ovlp" // + Mario passes 2–4
	vLmbs variant = "lmbs" // ovlp with doubled micro-batch size
)

var allVariants = []variant{vBase, vCkpt, vOvlp, vLmbs}

// evalConfig simulates one (scheme, variant) cell: it builds the schedule,
// applies the requested level of Mario optimization, and returns the
// simulation result. micros must already account for the variant's
// micro-batch size.
func evalConfig(sch pipeline.Scheme, devices, micros int, est *cost.Estimator, v variant, memLimit float64) (*sim.Result, *pipeline.Schedule, error) {
	s, err := scheme.Build(sch, scheme.Config{Devices: devices, Micros: micros})
	if err != nil {
		return nil, nil, err
	}
	opts := sim.Options{MemLimit: memLimit}
	switch v {
	case vBase:
		r, err := sim.Simulate(s, est, opts)
		return r, s, err
	case vCkpt:
		graph.ApplyCheckpoint(s)
		r, err := sim.Simulate(s, est, opts)
		return r, s, err
	case vOvlp, vLmbs:
		o, r, err := graph.Optimize(s, graph.Options{Estimator: est, Sim: opts, MaxRounds: 8})
		return r, o, err
	}
	return nil, nil, fmt.Errorf("experiments: unknown variant %q", v)
}

// newProfiler builds the standard profiler for a model on the default
// emulated A100 cluster.
func newProfiler(model cost.ModelConfig) *profile.Profiler {
	return &profile.Profiler{
		Model:   model,
		HW:      cost.A100_40G,
		Spec:    profile.DefaultMachine,
		Devices: 4,
		Iters:   10,
	}
}

// shapeOf renders "V-base"-style config labels.
func shapeOf(sch pipeline.Scheme, v variant) string {
	return fmt.Sprintf("%s-%s", sch.Shape(), v)
}
