package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// Fig2Step is one bar of Figure 2: the total time of the 4-stage 1F1B
// example after each optimization step, in units of t (the forward time).
type Fig2Step struct {
	Name  string
	Time  float64
	Paper float64
}

// Figure2 reproduces the running example of §3.1: D = 4, N = 4, F = t,
// B = 2t, free communication. The paper's step times are 21, 28, 25, 23
// and 22 t.
func Figure2(Opts) ([]Fig2Step, error) {
	const d, n = 4, 4
	e := cost.Uniform(d, 1, 2, 0.25)
	base, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	if err != nil {
		return nil, err
	}
	simT := func(s *pipeline.Schedule) (float64, error) {
		r, err := sim.Simulate(s, e, sim.Options{})
		if err != nil {
			return 0, err
		}
		return r.Total, nil
	}

	var steps []Fig2Step
	add := func(name string, t float64, paper float64) {
		steps = append(steps, Fig2Step{Name: name, Time: t, Paper: paper})
	}

	t0, err := simT(base)
	if err != nil {
		return nil, err
	}
	add("baseline (no ckpt)", t0, 21)

	s1 := base.Clone()
	graph.ApplyCheckpoint(s1)
	t1, err := simT(s1)
	if err != nil {
		return nil, err
	}
	add("step 1: apply-checkpoint", t1, 28)

	s2 := s1.Clone()
	graph.OverlapRecompute(s2)
	t2, err := simT(s2)
	if err != nil {
		return nil, err
	}
	add("step 2: overlap-recompute", t2, 25)

	s3 := s2.Clone()
	graph.RemoveRedundancy(s3)
	t3, err := simT(s3)
	if err != nil {
		return nil, err
	}
	add("step 3: remove-redundancy", t3, 23)

	_, r4, err := graph.Optimize(base, graph.Options{Estimator: e})
	if err != nil {
		return nil, err
	}
	add("step 4: prepose-forward", r4.Total, 22)
	return steps, nil
}

// PrintFigure2 renders the step table.
func PrintFigure2(w io.Writer, steps []Fig2Step) {
	fmt.Fprintf(w, "%-28s %10s %10s\n", "Step", "Time (t)", "Paper (t)")
	for _, s := range steps {
		fmt.Fprintf(w, "%-28s %10.1f %10.1f\n", s.Name, s.Time, s.Paper)
	}
}
