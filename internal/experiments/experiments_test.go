package experiments

import (
	"io"
	"math"
	"strings"
	"testing"
)

var fast = Opts{Fast: true}

// TestTable1MatchesFormulas: GPipe and 1F1B must match Table 1's closed
// forms exactly; Interleave within half a stash; Mario flattens everything
// to ≈Mθ.
func TestTable1MatchesFormulas(t *testing.T) {
	rows, err := Table1(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Scheme {
		case "GPipe", "1F1B":
			if math.Abs(r.ActMin-r.PaperMin) > 1e-6 || math.Abs(r.ActMax-r.PaperMax) > 1e-6 {
				t.Errorf("%s: measured [%v,%v], paper [%v,%v]", r.Scheme, r.ActMin, r.ActMax, r.PaperMin, r.PaperMax)
			}
		default:
			if r.ActMax > r.PaperMax*1.3 || r.ActMax < r.PaperMin {
				t.Errorf("%s: measured max %v far from paper range [%v,%v]", r.Scheme, r.ActMax, r.PaperMin, r.PaperMax)
			}
		}
		if r.MarioMax > 1.5 {
			t.Errorf("%s: Mario peak %v not ≈Mθ", r.Scheme, r.MarioMax)
		}
		if r.Scheme == "Chimera" && r.WeightReplicas != 2 {
			t.Errorf("Chimera weight replicas = %d", r.WeightReplicas)
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "GPipe") {
		t.Error("printer dropped rows")
	}
}

// TestFigure2Exact: all five staircase values match the paper's integers.
func TestFigure2Exact(t *testing.T) {
	steps, err := Figure2(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 5 {
		t.Fatalf("expected 5 steps, got %d", len(steps))
	}
	for _, s := range steps {
		if math.Abs(s.Time-s.Paper) > 1e-9 {
			t.Errorf("%s: %vt, paper %vt", s.Name, s.Time, s.Paper)
		}
	}
}

// TestFigure5Renders: the charts mention every scheme and the Mario glyphs.
func TestFigure5Renders(t *testing.T) {
	var sb strings.Builder
	if err := Figure5(&sb, fast); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"1F1B", "Chimera", "Interleave", "Mario", "R"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 5 output missing %q", want)
		}
	}
}

// TestFigure6Shape: the §6.1 ordering properties hold on the fast grid —
// ckpt is the slowest variant, ovlp recovers part of the gap, checkpointed
// variants use far less memory than base.
func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(fast)
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]ThroughputRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	for _, shape := range []string{"V", "X", "W"} {
		base, ckpt, ovlp := byCfg[shape+"-base"], byCfg[shape+"-ckpt"], byCfg[shape+"-ovlp"]
		if ckpt.Throughput >= base.Throughput {
			t.Errorf("%s: naive ckpt %v not below base %v", shape, ckpt.Throughput, base.Throughput)
		}
		if ovlp.Throughput <= ckpt.Throughput {
			t.Errorf("%s: ovlp %v not above ckpt %v (passes 2-4 must help)", shape, ovlp.Throughput, ckpt.Throughput)
		}
		if ovlp.MemMaxGB > ckpt.MemMaxGB+0.5 {
			t.Errorf("%s: ovlp memory %v above ckpt %v", shape, ovlp.MemMaxGB, ckpt.MemMaxGB)
		}
		if ckpt.MemMaxGB >= base.MemMaxGB*0.8 {
			t.Errorf("%s: checkpointing saved too little memory: %v vs %v", shape, ckpt.MemMaxGB, base.MemMaxGB)
		}
	}
}

// TestTable5MemoryBalance: checkpointed rows have a narrow [min,max] spread
// while base rows are wide (the imbalance Mario removes).
func TestTable5MemoryBalance(t *testing.T) {
	rows, err := Table5(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		spread := r.MemMaxGB - r.MemMinGB
		if strings.HasSuffix(r.Config, "-base") && strings.HasPrefix(r.Config, "V") {
			if spread < 5 {
				t.Errorf("%s: base spread %v GB suspiciously narrow", r.Config, spread)
			}
		}
		if strings.HasSuffix(r.Config, "-ovlp") {
			if spread > 5 {
				t.Errorf("%s: Mario spread %v GB not balanced", r.Config, spread)
			}
		}
	}
}

// TestFigure7PerDeviceShape: V-base decreases along device index; V-ovlp is
// flat.
func TestFigure7PerDeviceShape(t *testing.T) {
	rows, err := Figure7(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.Config, "V-") {
			continue
		}
		peaks := r.PeakPerDevice
		switch {
		case strings.HasSuffix(r.Config, "-base"):
			if peaks[0] <= peaks[len(peaks)-1] {
				t.Errorf("%s: first device %v not above last %v", r.Config, peaks[0], peaks[len(peaks)-1])
			}
		case strings.HasSuffix(r.Config, "-ovlp"):
			lo, hi := minMax(peaks)
			if hi/lo > 1.5 {
				t.Errorf("%s: imbalance ratio %v too high", r.Config, hi/lo)
			}
		}
	}
}

// TestFigure8MarioExtendsModels: ovlp reaches at least the base hidden size
// for every scheme and strictly more for at least one.
func TestFigure8MarioExtendsModels(t *testing.T) {
	rows, err := Figure8(fast)
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]Fig8Row{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	improved := false
	for _, shape := range []string{"V", "X", "W"} {
		base, ovlp := byCfg[shape+"-base"], byCfg[shape+"-ovlp"]
		if ovlp.MaxHidden < base.MaxHidden {
			t.Errorf("%s: ovlp max hidden %d below base %d", shape, ovlp.MaxHidden, base.MaxHidden)
		}
		if ovlp.MaxHidden > base.MaxHidden {
			improved = true
		}
	}
	if !improved {
		t.Error("Mario never extended the feasible model size")
	}
	// Chimera's 2×Mw replicas must cap its absolute scale below 1F1B's.
	if byCfg["X-ovlp"].MaxParams >= byCfg["V-ovlp"].MaxParams {
		t.Errorf("Chimera (%v params) should scale worse than 1F1B (%v) due to double weights",
			byCfg["X-ovlp"].MaxParams, byCfg["V-ovlp"].MaxParams)
	}
}

// TestFigure9Ordering: TP1 < TP2 < TP2+Mario on feasible sequence length.
func TestFigure9Ordering(t *testing.T) {
	rows, err := Figure9(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 configs, got %d", len(rows))
	}
	if !(rows[0].MaxSeqLen < rows[1].MaxSeqLen && rows[1].MaxSeqLen < rows[2].MaxSeqLen) {
		t.Errorf("sequence scaling not monotone: %v", rows)
	}
	if rows[2].GainVsTP1 < 1.4 {
		t.Errorf("Mario gain %v below the paper's ballpark", rows[2].GainVsTP1)
	}
}

// TestFigure10Accuracy: MAPEs stay within the paper's reported error bars
// and the partial order is essentially preserved.
func TestFigure10Accuracy(t *testing.T) {
	r, err := Figure10(fast)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemMAPE > 0.06 {
		t.Errorf("memory MAPE %v above the paper's 5.1%%", r.MemMAPE)
	}
	if r.ThptMAPE > 0.10 {
		t.Errorf("throughput MAPE %v above the paper's 9.4%%", r.ThptMAPE)
	}
	if r.ThptKendall < 0.8 {
		t.Errorf("Kendall tau %v: partial order not preserved", r.ThptKendall)
	}
	// The paper's overestimate bias shows at the full 8-device scale (see
	// EXPERIMENTS.md); at the reduced test scale the profiled device's
	// static speed factor dominates the sign, so only consistency is
	// asserted here: predictions stay within 10% of measurements per
	// config.
	for _, p := range r.Points {
		if rel := math.Abs(p.ThptPred-p.ThptMeas) / p.ThptMeas; rel > 0.10 {
			t.Errorf("%s: prediction off by %.1f%%", p.Config, 100*rel)
		}
	}
}

// TestFigure11Structure: the search finds a feasible best, OOM rows carry
// the zero penalty, and checkpointing is what makes deep pipelines feasible.
func TestFigure11Structure(t *testing.T) {
	r, err := Figure11(fast)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestThpt <= 0 {
		t.Fatal("no feasible configuration found")
	}
	if !strings.Contains(r.BestLabel, "mario") {
		t.Errorf("best config %s is not Mario-enabled; base configs should OOM on GPT3-13B", r.BestLabel)
	}
	for _, p := range r.Points {
		if p.OOM && p.Throughput != 0 {
			t.Errorf("%s: OOM with non-zero throughput %v", p.Label, p.Throughput)
		}
	}
}

// TestSummarise: the aggregates are computed over complete variant sets
// only and ovlp beats ckpt.
func TestSummarise(t *testing.T) {
	rows, err := Figure6(fast)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarise(rows)
	if s.N == 0 {
		t.Fatal("no pairs summarised")
	}
	if s.OvlpOverCkpt <= 1 {
		t.Errorf("ovlp/ckpt = %v, want > 1", s.OvlpOverCkpt)
	}
	if s.OvlpOverBase >= 1 {
		t.Errorf("ovlp/base = %v, want < 1 (recompute is not entirely free)", s.OvlpOverBase)
	}
	PrintSpeedups(io.Discard, "test", s)
}

// TestPrinters: all printers produce non-empty output without panicking.
func TestPrinters(t *testing.T) {
	rows, err := Figure6(fast)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintThroughput(&sb, rows)
	PrintFigure7(&sb, rows)
	f8, err := Figure8(fast)
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure8(&sb, f8)
	f9, err := Figure9(fast)
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure9(&sb, f9)
	f10, err := Figure10(fast)
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure10(&sb, f10)
	f11, err := Figure11(fast)
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure11(&sb, f11)
	if sb.Len() < 500 {
		t.Errorf("printers produced suspiciously little output: %d bytes", sb.Len())
	}
}

// TestExtensionZB: the split-backward staircase — time improves at each
// composition step while device-0 peak memory never decreases (the
// bubble/memory trade-off of ZB-H1).
func TestExtensionZB(t *testing.T) {
	rows, err := ExtensionZB(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	baseline, split := rows[0], rows[2]
	if split.Time >= baseline.Time {
		t.Errorf("split backward %vt not below baseline %vt", split.Time, baseline.Time)
	}
	if split.PeakMem < baseline.PeakMem-1e-9 {
		t.Errorf("split backward reduced memory (%v < %v); it should trade memory for bubbles", split.PeakMem, baseline.PeakMem)
	}
	mario, both := rows[1], rows[3]
	if both.Time >= mario.Time {
		t.Errorf("composition %vt not below Mario alone %vt", both.Time, mario.Time)
	}
	var sb strings.Builder
	PrintExtensionZB(&sb, rows)
	if !strings.Contains(sb.String(), "ZB-H1") {
		t.Error("printer lost labels")
	}
}

// TestZeroBubbleFullScale pins the zero-bubble acceptance numbers on the
// paper-scale workload (GPT3-13B, 64 A100s, 128 micro-batches): ZB-H1's
// worst-device bubble ratio must be strictly below 1F1B's, and DualPipe-D
// must be faster still while paying for a second weight replica in memory.
func TestZeroBubbleFullScale(t *testing.T) {
	rows, err := ZeroBubble(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ZeroBubbleRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	base, zb, dp := byName["1F1B"], byName["ZB-H1"], byName["DualPipe-D"]
	if zb.Bubble >= base.Bubble {
		t.Errorf("ZB-H1 bubble %v not strictly below 1F1B %v", zb.Bubble, base.Bubble)
	}
	if zb.Time >= base.Time {
		t.Errorf("ZB-H1 makespan %v not below 1F1B %v", zb.Time, base.Time)
	}
	if dp.Bubble >= zb.Bubble {
		t.Errorf("DualPipe-D bubble %v not below ZB-H1 %v", dp.Bubble, zb.Bubble)
	}
	if dp.PeakMem <= base.PeakMem {
		t.Errorf("DualPipe-D peak %vGB should exceed 1F1B %vGB (second weight replica)", dp.PeakMem, base.PeakMem)
	}
	var sb strings.Builder
	PrintZeroBubble(&sb, rows)
	for _, want := range []string{"1F1B", "ZB-H1", "DualPipe-D", "Chimera"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("printer lost %s row", want)
		}
	}
}

// TestZeroBubbleFast: the reduced shape used for the golden block preserves
// the headline ordering.
func TestZeroBubbleFast(t *testing.T) {
	rows, err := ZeroBubble(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	byName := map[string]ZeroBubbleRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	if byName["ZB-H1"].Bubble >= byName["1F1B"].Bubble {
		t.Errorf("fast shape: ZB-H1 bubble %v not below 1F1B %v", byName["ZB-H1"].Bubble, byName["1F1B"].Bubble)
	}
}
