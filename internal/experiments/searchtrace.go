package experiments

import (
	"fmt"
	"io"
	"strings"

	"mario/internal/cost"
	"mario/internal/telemetry"
	"mario/internal/tuner"
)

// SearchTraceResult is the telemetry walkthrough: one traced tuner search
// with its canonical span tree, per-phase span counts and registry
// counters — the artifacts a "why is this search slow?" investigation
// starts from.
type SearchTraceResult struct {
	Best    string
	Trace   *telemetry.Trace
	Metrics *telemetry.SearchMetrics
	// BnB and Grid are the search stats of the branch-and-bound walk (the
	// traced run above) and of a canonical grid walk over the identical
	// space: same argmax, different number of simulated points.
	BnB  tuner.SearchStats
	Grid tuner.SearchStats
}

// SearchTrace runs a grid search with a live Tracer and registry attached
// and snapshots the canonical trace. Workers is pinned to 1 so the memo
// and simulation counters are deterministic too (the canonical trace
// itself is byte-identical for every worker count; the fold-in counters
// are not, which is why this demo holds them still for the golden check).
func SearchTrace(opt Opts) (*SearchTraceResult, error) {
	devices, gbs := 8, 64
	mbs := []int{1, 2, 4}
	if opt.Fast {
		devices, gbs = 4, 16
		mbs = []int{1, 2}
	}
	tracer := telemetry.New("experiments/searchtrace").
		WithMetrics(telemetry.NewSearchMetrics(telemetry.NewRegistry()))
	root := tracer.Root(telemetry.PhaseOptimize, "")
	tn := &tuner.Tuner{
		Prof:      newProfiler(cost.GPT3_1_6B),
		MaxRounds: 1,
		Span:      root,
		Metrics:   tracer.Metrics(),
	}
	space := tuner.Space{
		Devices:      devices,
		GlobalBatch:  gbs,
		MicroBatches: mbs,
		TP:           1,
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      1,
	}
	best, _, err := tn.Search(space)
	if err != nil {
		return nil, err
	}
	root.End()

	// The strategy comparison: walk the identical space with the canonical
	// grid (bound pruning only behind the incumbent, no best-first order,
	// no admissible memory floor) and check it lands on the same argmax.
	gridSpace := space
	gridSpace.NoBnB = true
	gridTn := &tuner.Tuner{Prof: tn.Prof, MaxRounds: 1}
	gridBest, _, err := gridTn.Search(gridSpace)
	if err != nil {
		return nil, err
	}
	if gridBest.Label() != best.Label() {
		return nil, fmt.Errorf("searchtrace: grid argmax %s != bnb argmax %s", gridBest.Label(), best.Label())
	}
	return &SearchTraceResult{
		Best:    best.Label(),
		Trace:   tracer.Snapshot(),
		Metrics: tracer.Metrics(),
		BnB:     tn.StatsSnapshot(),
		Grid:    gridTn.StatsSnapshot(),
	}, nil
}

// searchTraceTreeLines bounds the documented tree excerpt; the full tree
// for even the fast grid runs to hundreds of lines.
const searchTraceTreeLines = 24

// PrintSearchTrace renders the walkthrough: winner, an excerpt of the
// canonical span tree, per-phase span counts, and the deterministic search
// counters. Wall-clock self-times are deliberately absent — they belong to
// the measured exports, not to output a golden check pins.
func PrintSearchTrace(w io.Writer, r *SearchTraceResult) {
	fmt.Fprintf(w, "best %s\n\n", r.Best)

	lines := strings.Split(strings.TrimRight(r.Trace.Tree(), "\n"), "\n")
	shown := lines
	if len(shown) > searchTraceTreeLines {
		shown = shown[:searchTraceTreeLines]
	}
	fmt.Fprintf(w, "canonical span tree (first %d of %d lines):\n", len(shown), len(lines))
	for _, l := range shown {
		fmt.Fprintf(w, "  %s\n", l)
	}

	fmt.Fprintf(w, "\nspans by phase:\n")
	for _, row := range r.Trace.PhaseSummary() {
		fmt.Fprintf(w, "  %-10s %4d\n", row.Phase, row.Count)
	}

	m := r.Metrics
	fmt.Fprintf(w, "\nsearch counters:\n")
	fmt.Fprintf(w, "  explored=%d oom=%d infeasible=%d bound_pruned=%d mem_pruned=%d improved=%d\n",
		m.PointsExplored.Value(), m.PointsOOM.Value(), m.PointsPruned.Value(),
		m.PointsBoundPruned.Value(), m.PointsMemPruned.Value(), m.PointsImproved.Value())
	fmt.Fprintf(w, "  build_memo hit=%d miss=%d  graph_memo hit=%d miss=%d\n",
		m.BuildHits.Value(), m.BuildMisses.Value(), m.GraphHits.Value(), m.GraphMisses.Value())
	fmt.Fprintf(w, "  sims=%d graph_rounds=%d\n", m.Sims.Value(), m.GraphRounds.Value())

	// Why branch-and-bound simulates fewer points: the probe pass orders the
	// grid best-first by an admissible throughput upper bound, so once the
	// true optimum is simulated every point whose bound cannot beat it is
	// cut, and the admissible memory floor rejects configurations that
	// cannot fit before any simulation. The canonical grid only skips
	// points whose bound falls behind the incumbent it happens to have.
	fmt.Fprintf(w, "\nstrategy comparison (identical argmax %s):\n", r.Best)
	for _, row := range []struct {
		name string
		st   tuner.SearchStats
	}{{"bnb", r.BnB}, {"grid", r.Grid}} {
		fmt.Fprintf(w, "  %-4s explored=%d bound_pruned=%d mem_pruned=%d infeasible=%d\n",
			row.name, row.st.Explored, row.st.BoundPruned, row.st.MemPruned, row.st.Pruned)
	}
}
