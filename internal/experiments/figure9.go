package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/pipeline"
)

// Fig9Row reports the maximum feasible sequence length of one parallel
// configuration — the sequence scaling experiment of §6.5.
type Fig9Row struct {
	Config    string
	TP        int
	Mario     bool
	MaxSeqLen int
	GainVsTP1 float64
}

// Figure9 sweeps the GPT3-1.6B sequence length upward from 1024 in steps of
// 64 on a PP=8 pipeline (16 GPUs overall when TP=2), micro-batch 1, global
// batch = 2 × stages, until the simulator predicts OOM on a 40 GB device.
// Configurations: PP8/TP1, PP8/TP2, and PP8/TP2 + Mario. The paper reports
// Mario extends the feasible sequence length by 1.49× over PP8/TP2 and
// 2.80× over PP8/TP1.
func Figure9(opt Opts) ([]Fig9Row, error) {
	devices := 8
	step := 64
	maxSteps := 512
	if opt.Fast {
		devices, step, maxSteps = 4, 256, 24
	}
	gbs := 2 * devices
	memLimit := cost.A100_40G.MemBytes

	type cfg struct {
		name  string
		tp    int
		mario bool
	}
	cfgs := []cfg{
		{fmt.Sprintf("PP:%d TP:1", devices), 1, false},
		{fmt.Sprintf("PP:%d TP:2", devices), 2, false},
		{fmt.Sprintf("PP:%d TP:2 +Mario", devices), 2, true},
	}
	rows := make([]Fig9Row, len(cfgs))
	for ci, c := range cfgs {
		maxSeq := 0
		for stepIdx := 0; stepIdx < maxSteps; stepIdx++ {
			seq := 1024 + step*stepIdx
			m := cost.GPT3_1_6B.WithSeqLen(seq)
			est, err := cost.Analytic(cost.AnalyticConfig{
				Model: m, HW: cost.A100_40G, Stages: devices, MicroBatch: 1, TP: c.tp,
			})
			if err != nil {
				return nil, err
			}
			v := vBase
			if c.mario {
				v = vOvlp
			}
			feasible, err := feasibleUnder(pipeline.Scheme1F1B, devices, gbs, est, v, memLimit)
			if err != nil {
				return nil, err
			}
			if !feasible {
				break
			}
			maxSeq = seq
		}
		rows[ci] = Fig9Row{Config: c.name, TP: c.tp, Mario: c.mario, MaxSeqLen: maxSeq}
	}
	if rows[0].MaxSeqLen > 0 {
		for i := range rows {
			rows[i].GainVsTP1 = float64(rows[i].MaxSeqLen) / float64(rows[0].MaxSeqLen)
		}
	}
	return rows, nil
}

// PrintFigure9 renders the sequence-scaling table.
func PrintFigure9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintf(w, "%-20s %12s %10s\n", "Config", "MaxSeqLen", "vs TP:1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12d %9.2fx\n", r.Config, r.MaxSeqLen, r.GainVsTP1)
	}
}
