package experiments

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/obs"
	"mario/internal/pipeline"
)

// DriftResult is the observability demo: one Mario-optimized GPT3-1.6B
// schedule estimated by the simulator and measured on the emulated cluster
// with an event recorder attached, then aligned instruction by instruction.
type DriftResult struct {
	Config string
	Stats  *obs.Stats
	Drift  *obs.DriftReport
}

// Drift runs the measured-vs-predicted alignment on a checkpointed 1F1B
// schedule: it records every executed instruction through an obs.Recorder,
// derives the per-device stats digest, and reports where the cluster's
// ground truth (jitter, launch overhead, p2p queueing) departs from the
// simulator's prediction.
func Drift(opt Opts) (*DriftResult, error) {
	devices, iters := 8, 3
	model := cost.GPT3_1_6B
	if opt.Fast {
		devices, iters = 4, 2
	}
	prof := newProfiler(model)
	micros := 4 * devices
	mbs := 2

	est, err := prof.EstimatorFor(devices, mbs, 1)
	if err != nil {
		return nil, err
	}
	pred, sched, err := evalConfig(pipeline.Scheme1F1B, devices, micros, est, vOvlp, 0)
	if err != nil {
		return nil, err
	}
	mach, err := prof.NewMachine(model, devices, mbs, 1)
	if err != nil {
		return nil, err
	}
	rec := &obs.Recorder{}
	mach.Sink = rec
	meas, err := mach.Run(sched, iters)
	if err != nil {
		return nil, err
	}
	stats := obs.Compute(rec.Events, meas.Total)
	stats.WatchdogResets = meas.WatchdogResets
	return &DriftResult{
		Config: fmt.Sprintf("%s-mbs%d", shapeOf(pipeline.Scheme1F1B, vOvlp), mbs),
		Stats:  stats,
		Drift:  obs.ComputeDrift(rec.Events, pred, meas.PeakMem),
	}, nil
}

// PrintDrift renders the stats table followed by the drift report.
func PrintDrift(w io.Writer, r *DriftResult) {
	fmt.Fprintf(w, "config %s\n", r.Config)
	io.WriteString(w, r.Stats.Table())
	io.WriteString(w, "\n")
	io.WriteString(w, r.Drift.Format())
}
