package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Plan from the compact clause syntax of `cmd/mario -faults`:
// semicolon-separated clauses, each `kind:key=value,key=value,…`.
//
//	slow:dev=1,factor=1.5[,from=0][,to=2]
//	link:from=0,to=1[,ch=act|grad][,latency=1ms][,bw=0.5][,drop=0.05][,from-t=0][,to-t=1]
//	stall:dev=2,at=0.5,dur=0.2[,wall=100ms]
//	seed=42    retries=5    backoff=1ms    name=my-scenario
//
// `dev=*` (or `from=*`/`to=*` on links) is the wildcard. Time values accept a
// float (seconds) or a Go duration string ("250ms"); `bw` is the bandwidth
// factor in (0,1]; `drop` a probability in [0,1).
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, args, hasArgs := strings.Cut(clause, ":")
		if !hasArgs {
			// Top-level key=value clause (seed=…, retries=…, backoff=…).
			key, val, ok := strings.Cut(clause, "=")
			if !ok {
				return nil, fmt.Errorf("fault: clause %q is neither kind:args nor key=value", clause)
			}
			if err := p.setTop(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
				return nil, err
			}
			continue
		}
		kv, err := parseArgs(args)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		switch strings.TrimSpace(kind) {
		case "slow":
			if err := p.addSlow(kv); err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
		case "link":
			if err := p.addLink(kv); err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
		case "stall":
			if err := p.addStall(kv); err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
		default:
			return nil, fmt.Errorf("fault: unknown clause kind %q (want slow, link or stall)", kind)
		}
	}
	return p, nil
}

// Load reads a Plan from a JSON file (the json.Marshal form of Plan).
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	p := &Plan{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("fault: parsing %s: %w", path, err)
	}
	return p, nil
}

// ParseOrLoad resolves the `-faults` CLI argument: if it names an existing
// file the JSON plan is loaded, otherwise it is parsed as an inline spec.
func ParseOrLoad(arg string) (*Plan, error) {
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		return Load(arg)
	}
	return Parse(arg)
}

func (p *Plan) setTop(key, val string) error {
	switch key {
	case "seed":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("fault: seed: %w", err)
		}
		p.Seed = v
	case "retries":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("fault: retries: %w", err)
		}
		p.MaxRetries = v
	case "backoff":
		v, err := parseSeconds(val)
		if err != nil {
			return fmt.Errorf("fault: backoff: %w", err)
		}
		p.RetryBackoff = v
	case "name":
		p.Name = val
	default:
		return fmt.Errorf("fault: unknown top-level key %q", key)
	}
	return nil
}

func (p *Plan) addSlow(kv map[string]string) error {
	sl := Slowdown{Device: -1, Factor: 1}
	for k, v := range kv {
		var err error
		switch k {
		case "dev":
			sl.Device, err = parseDev(v)
		case "factor":
			sl.Factor, err = strconv.ParseFloat(v, 64)
		case "from":
			sl.Start, err = parseSeconds(v)
		case "to":
			sl.End, err = parseSeconds(v)
		default:
			err = fmt.Errorf("unknown slow key %q", k)
		}
		if err != nil {
			return err
		}
	}
	p.Slowdowns = append(p.Slowdowns, sl)
	return nil
}

func (p *Plan) addLink(kv map[string]string) error {
	lf := LinkFault{From: -1, To: -1}
	for k, v := range kv {
		var err error
		switch k {
		case "from":
			lf.From, err = parseDev(v)
		case "to":
			lf.To, err = parseDev(v)
		case "ch":
			lf.Channel = v
		case "latency":
			lf.ExtraLatency, err = parseSeconds(v)
		case "bw":
			lf.BandwidthFactor, err = strconv.ParseFloat(v, 64)
		case "drop":
			lf.DropProb, err = strconv.ParseFloat(v, 64)
		case "from-t":
			lf.Start, err = parseSeconds(v)
		case "to-t":
			lf.End, err = parseSeconds(v)
		default:
			err = fmt.Errorf("unknown link key %q", k)
		}
		if err != nil {
			return err
		}
	}
	p.Links = append(p.Links, lf)
	return nil
}

func (p *Plan) addStall(kv map[string]string) error {
	st := Stall{}
	for k, v := range kv {
		var err error
		switch k {
		case "dev":
			st.Device, err = parseDev(v)
		case "at":
			st.At, err = parseSeconds(v)
		case "dur":
			st.Duration, err = parseSeconds(v)
		case "wall":
			var d time.Duration
			d, err = time.ParseDuration(v)
			st.Wall = d
		default:
			err = fmt.Errorf("unknown stall key %q", k)
		}
		if err != nil {
			return err
		}
	}
	p.Stalls = append(p.Stalls, st)
	return nil
}

func parseArgs(args string) (map[string]string, error) {
	kv := make(map[string]string)
	for _, pair := range strings.Split(args, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not key=value", pair)
		}
		kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kv, nil
}

// parseDev parses a device id, with "*" (or "all") as the -1 wildcard.
func parseDev(v string) (int, error) {
	if v == "*" || v == "all" {
		return -1, nil
	}
	return strconv.Atoi(v)
}

// parseSeconds accepts a float (seconds) or a Go duration string.
func parseSeconds(v string) (float64, error) {
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return f, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("%q is neither seconds nor a duration", v)
	}
	return d.Seconds(), nil
}

// DefaultEnsemble returns the canonical three-scenario fault ensemble used by
// the robustness evaluation and `cmd/experiments -run faults`: a persistent
// mid-pipeline straggler, a flaky activation fabric (latency + bandwidth
// degradation + 2% drop), and an early whole-device stall. Deterministic
// under the given seed.
func DefaultEnsemble(devices int, seed uint64) []Plan {
	straggler := devices / 2
	return []Plan{
		{
			Name: "straggler",
			Seed: seed,
			Slowdowns: []Slowdown{
				{Device: straggler, Factor: 1.35},
			},
		},
		{
			Name: "flaky-links",
			Seed: seed,
			Links: []LinkFault{
				{From: -1, To: -1, Channel: ChannelAct, ExtraLatency: 200e-6, BandwidthFactor: 0.7, DropProb: 0.02},
			},
		},
		{
			Name: "stall",
			Seed: seed,
			Stalls: []Stall{
				{Device: 0, At: 0.01, Duration: 0.02},
			},
		},
	}
}
