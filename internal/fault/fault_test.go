package fault

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"testing"
	"time"
)

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	if !(&Plan{Name: "x", Seed: 7}).Empty() {
		t.Error("plan with only metadata should be empty")
	}
	if (&Plan{Slowdowns: []Slowdown{{Device: 0, Factor: 2}}}).Empty() {
		t.Error("plan with a slowdown is not empty")
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{Slowdowns: []Slowdown{{Device: 9, Factor: 2}}},
		{Slowdowns: []Slowdown{{Device: 0, Factor: 0}}},
		{Links: []LinkFault{{From: 0, To: 9}}},
		{Links: []LinkFault{{From: 0, To: 1, Channel: "bogus"}}},
		{Links: []LinkFault{{From: 0, To: 1, DropProb: 1}}},
		{Links: []LinkFault{{From: 0, To: 1, BandwidthFactor: 1.5}}},
		{Links: []LinkFault{{From: 0, To: 1, ExtraLatency: -1}}},
		{Stalls: []Stall{{Device: -1}}},
		{Stalls: []Stall{{Device: 0, At: -1}}},
		{MaxRetries: -1},
		{RetryBackoff: -1},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("plan %d should fail validation", i)
		}
	}
	good := Plan{
		Slowdowns: []Slowdown{{Device: -1, Factor: 1.5}},
		Links:     []LinkFault{{From: -1, To: -1, Channel: ChannelAct, DropProb: 0.1}},
		Stalls:    []Stall{{Device: 3, At: 1, Duration: 0.5}},
	}
	if err := good.Validate(4); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestComputeFactorWindows(t *testing.T) {
	p := &Plan{Slowdowns: []Slowdown{
		{Device: 0, Factor: 2, Start: 1, End: 2},
		{Device: -1, Factor: 1.5}, // persistent, all devices
	}}
	inj, err := p.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	d0 := inj.Device(0)
	if f := d0.ComputeFactor(0.5); f != 1.5 {
		t.Errorf("before window: factor %g, want 1.5", f)
	}
	if f := d0.ComputeFactor(1.5); f != 3 {
		t.Errorf("inside window: factor %g, want 2*1.5=3", f)
	}
	if f := d0.ComputeFactor(2.5); f != 1.5 {
		t.Errorf("after window: factor %g, want 1.5", f)
	}
	d1 := inj.Device(1)
	if f := d1.ComputeFactor(1.5); f != 1.5 {
		t.Errorf("device 1: factor %g, want 1.5 (wildcard only)", f)
	}
	if d0.Slowed != 3 || d1.Slowed != 1 {
		t.Errorf("slowed counters %d/%d, want 3/1", d0.Slowed, d1.Slowed)
	}
}

func TestTakeStallConsumesInOrder(t *testing.T) {
	p := &Plan{Stalls: []Stall{
		{Device: 0, At: 2, Duration: 0.5},
		{Device: 0, At: 1, Duration: 0.25, Wall: 10 * time.Millisecond},
	}}
	inj, err := p.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	d := inj.Device(0)
	if delay, _ := d.TakeStall(0.5); delay != 0 {
		t.Errorf("no stall due at t=0.5, got delay %g", delay)
	}
	delay, wall := d.TakeStall(1.0)
	if delay != 0.25 || wall != 10*time.Millisecond {
		t.Errorf("stall at t=1: delay %g wall %v, want 0.25 / 10ms", delay, wall)
	}
	// Both stalls due: the later one alone remains.
	if delay, _ := d.TakeStall(5); delay != 0.5 {
		t.Errorf("stall at t=5: delay %g, want 0.5", delay)
	}
	if delay, _ := d.TakeStall(100); delay != 0 {
		t.Errorf("stalls already consumed, got delay %g", delay)
	}
	if d.StallVirtual != 0.75 {
		t.Errorf("StallVirtual %g, want 0.75", d.StallVirtual)
	}
}

func TestStalledCounter(t *testing.T) {
	inj, err := (&Plan{Stalls: []Stall{{Device: 0, At: 0, Duration: 1}}}).Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	d := inj.Device(0)
	if inj.Stalled() != 0 {
		t.Fatal("fresh injector should report 0 stalled")
	}
	d.EnterStall()
	if inj.Stalled() != 1 {
		t.Error("EnterStall should raise the counter")
	}
	d.ExitStall()
	if inj.Stalled() != 0 {
		t.Error("ExitStall should clear the counter")
	}
}

func TestTransferDegradation(t *testing.T) {
	p := &Plan{Links: []LinkFault{
		{From: 0, To: 1, Channel: ChannelAct, ExtraLatency: 1, BandwidthFactor: 0.5},
	}}
	inj, err := p.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	d := inj.Device(0)
	tr, err := d.Transfer(1, ChannelAct, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wire time 2 at half bandwidth = 4, plus 1 extra latency.
	if math.Abs(tr.Delay-5) > 1e-12 || tr.Drops != 0 {
		t.Errorf("degraded transfer delay %g drops %d, want 5 / 0", tr.Delay, tr.Drops)
	}
	// Grad channel unaffected.
	tr, err = d.Transfer(1, ChannelGrad, 2, 0)
	if err != nil || tr.Delay != 2 {
		t.Errorf("grad transfer delay %g err %v, want healthy 2", tr.Delay, err)
	}
	// Reverse direction unaffected.
	tr, err = inj.Device(1).Transfer(0, ChannelAct, 2, 0)
	if err != nil || tr.Delay != 2 {
		t.Errorf("reverse transfer delay %g err %v, want healthy 2", tr.Delay, err)
	}
}

func TestTransferDropsAreDeterministic(t *testing.T) {
	mk := func() *DeviceInjector {
		p := &Plan{
			Seed:  42,
			Links: []LinkFault{{From: 0, To: 1, DropProb: 0.5}},
		}
		inj, err := p.Compile(2)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Device(0)
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		ta, ea := a.Transfer(1, ChannelAct, 1e-3, 0)
		tb, eb := b.Transfer(1, ChannelAct, 1e-3, 0)
		if ta != tb || (ea == nil) != (eb == nil) {
			t.Fatalf("attempt %d diverged: %+v/%v vs %+v/%v", i, ta, ea, tb, eb)
		}
	}
	if a.Drops == 0 {
		t.Skip("seed produced no drops in 200 attempts (statistically impossible at p=0.5)")
	}
}

func TestTransferRetryBudgetExhaustion(t *testing.T) {
	p := &Plan{
		Seed:       1,
		MaxRetries: 2,
		Links:      []LinkFault{{From: 0, To: 1, DropProb: 0.999999999}},
	}
	inj, err := p.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = inj.Device(0).Transfer(1, ChannelAct, 1e-3, 0)
	if !errors.Is(err, ErrLinkFailure) {
		t.Fatalf("near-certain drop should exhaust the retry budget, got %v", err)
	}
}

func TestTransferBackoffAccumulates(t *testing.T) {
	// DropProb ~1 with a huge budget: after k drops the delay is
	// base + backoff*(2^k - 1). Check the first attempt's accounting by
	// bounding a single-drop outcome instead: use a deterministic stream and
	// just assert Delay grows monotonically with Drops.
	p := &Plan{
		Seed:         7,
		MaxRetries:   64,
		RetryBackoff: 1e-3,
		Links:        []LinkFault{{From: 0, To: 1, DropProb: 0.9}},
	}
	inj, err := p.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	d := inj.Device(0)
	for i := 0; i < 50; i++ {
		tr, err := d.Transfer(1, ChannelAct, 1e-3, 0)
		if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		want := 1e-3
		for k := 0; k < tr.Drops; k++ {
			want += 1e-3 * math.Pow(2, float64(k))
		}
		if math.Abs(tr.Delay-want) > 1e-15 {
			t.Fatalf("attempt %d: %d drops, delay %g, want %g", i, tr.Drops, tr.Delay, want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := Parse("seed=9; name=demo; retries=5; backoff=1ms; " +
		"slow:dev=1,factor=1.5,from=0.1,to=2; " +
		"link:from=0,to=1,ch=act,latency=250us,bw=0.5,drop=0.05; " +
		"stall:dev=2,at=0.5,dur=0.2,wall=100ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.Name != "demo" || p.MaxRetries != 5 || p.RetryBackoff != 1e-3 {
		t.Errorf("top-level fields wrong: %+v", p)
	}
	if len(p.Slowdowns) != 1 || p.Slowdowns[0] != (Slowdown{Device: 1, Factor: 1.5, Start: 0.1, End: 2}) {
		t.Errorf("slowdown wrong: %+v", p.Slowdowns)
	}
	if len(p.Links) != 1 {
		t.Fatalf("links wrong: %+v", p.Links)
	}
	lf := p.Links[0]
	if lf.From != 0 || lf.To != 1 || lf.Channel != "act" || math.Abs(lf.ExtraLatency-250e-6) > 1e-18 ||
		lf.BandwidthFactor != 0.5 || lf.DropProb != 0.05 {
		t.Errorf("link fault wrong: %+v", lf)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (Stall{Device: 2, At: 0.5, Duration: 0.2, Wall: 100 * time.Millisecond}) {
		t.Errorf("stall wrong: %+v", p.Stalls)
	}
}

func TestParseWildcardAndErrors(t *testing.T) {
	p, err := Parse("slow:dev=*,factor=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Slowdowns[0].Device != -1 {
		t.Errorf("wildcard device = %d, want -1", p.Slowdowns[0].Device)
	}
	for _, bad := range []string{
		"wobble:dev=1",
		"slow:dev=1,bogus=2",
		"slow",
		"seed=notanumber",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestJSONRoundTripAndLoad(t *testing.T) {
	p := &Plan{
		Name: "rt", Seed: 3, MaxRetries: 4, RetryBackoff: 2e-3,
		Slowdowns: []Slowdown{{Device: 1, Factor: 1.2, Start: 0.5}},
		Links:     []LinkFault{{From: -1, To: 2, Channel: ChannelGrad, DropProb: 0.01}},
		Stalls:    []Stall{{Device: 0, At: 1, Duration: 0.1}},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/plan.json"
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := ParseOrLoad(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Seed != p.Seed || len(got.Slowdowns) != 1 ||
		got.Links[0] != p.Links[0] || got.Stalls[0] != p.Stalls[0] {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// A non-file argument falls back to inline parsing.
	inline, err := ParseOrLoad("slow:dev=0,factor=3")
	if err != nil || inline.Slowdowns[0].Factor != 3 {
		t.Errorf("inline fallback failed: %+v, %v", inline, err)
	}
}

func TestDefaultEnsemble(t *testing.T) {
	plans := DefaultEnsemble(4, 11)
	if len(plans) != 3 {
		t.Fatalf("ensemble size %d, want 3", len(plans))
	}
	names := map[string]bool{}
	for i := range plans {
		names[plans[i].Name] = true
		if plans[i].Seed != 11 {
			t.Errorf("plan %s seed %d, want 11", plans[i].Name, plans[i].Seed)
		}
		if err := plans[i].Validate(4); err != nil {
			t.Errorf("plan %s invalid: %v", plans[i].Name, err)
		}
	}
	for _, want := range []string{"straggler", "flaky-links", "stall"} {
		if !names[want] {
			t.Errorf("ensemble missing %q", want)
		}
	}
}

// writeFile is a tiny helper so the test file avoids importing os at top
// level twice.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
