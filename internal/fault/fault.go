// Package fault is the deterministic fault-injection layer of the cluster
// emulator: a seeded Plan describes hardware degradation — per-device compute
// slowdowns (transient or persistent stragglers), per-link latency/bandwidth
// degradation and probabilistic message drop with bounded retry and
// exponential backoff, and whole-device stall windows — and a compiled
// Injector applies it to a run.
//
// All perturbations are expressed in virtual time, so a faulted run is as
// reproducible as a healthy one: the same seed and plan produce byte-identical
// measured traces regardless of GOMAXPROCS or scheduler interleaving. Drop
// decisions are drawn from per-link splitmix64 streams keyed on
// (seed, from, to, channel) and consumed in the sender's program order, which
// only the owning device goroutine ever advances.
//
// A stall window may additionally carry a wall-clock hold (Stall.Wall). The
// hold never changes virtual time — it exists so the cluster watchdog's
// stall-vs-deadlock classification can be exercised: a device inside an
// injected stall advertises itself through the Injector's stall counter and
// the watchdog re-arms instead of declaring a deadlock.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// ErrLinkFailure is returned when a message is dropped on every attempt of
// its bounded retry budget; the error text names the link and the attempt
// count.
var ErrLinkFailure = errors.New("fault: link failure (retry budget exhausted)")

// Channel names accepted by LinkFault.Channel. An empty Channel matches both.
const (
	ChannelAct  = "act"
	ChannelGrad = "grad"
)

// Slowdown multiplies one device's compute durations by Factor inside a
// virtual-time window — a straggler. A zero-valued window (Start = End = 0)
// or End ≤ Start with End == 0 means the slowdown is persistent.
type Slowdown struct {
	// Device is the afflicted device id; -1 applies to every device.
	Device int `json:"device"`
	// Factor multiplies compute durations (> 1 slows the device down).
	Factor float64 `json:"factor"`
	// Start and End bound the active window in virtual seconds; End 0 means
	// open-ended (persistent from Start on).
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
}

// active reports whether the window covers virtual time t.
func (sl *Slowdown) active(t float64) bool {
	return t >= sl.Start && (sl.End <= 0 || t < sl.End)
}

// LinkFault degrades one directed p2p link inside a virtual-time window:
// every transfer pays ExtraLatency, runs at BandwidthFactor of the healthy
// bandwidth, and is dropped with probability DropProb per attempt. Dropped
// messages are retransmitted under the Plan's bounded retry + exponential
// backoff policy; exhausting the budget fails the run with ErrLinkFailure.
type LinkFault struct {
	// From and To are the link endpoints; -1 is a wildcard.
	From int `json:"from"`
	To   int `json:"to"`
	// Channel restricts the fault to "act" or "grad" messages; empty matches
	// both tagged channels.
	Channel string `json:"channel,omitempty"`
	// ExtraLatency is added to every transfer, in virtual seconds.
	ExtraLatency float64 `json:"latency,omitempty"`
	// BandwidthFactor scales the effective bandwidth (0 < f ≤ 1 degrades;
	// 0 means 1, i.e. no bandwidth change). A transfer's wire time is divided
	// by this factor.
	BandwidthFactor float64 `json:"bandwidth,omitempty"`
	// DropProb is the per-attempt probability the message is lost in [0, 1).
	DropProb float64 `json:"drop,omitempty"`
	// Start and End bound the active window in virtual seconds; End 0 means
	// open-ended.
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
}

func (lf *LinkFault) active(t float64) bool {
	return t >= lf.Start && (lf.End <= 0 || t < lf.End)
}

// matches reports whether the fault applies to the (from, to, channel) link.
func (lf *LinkFault) matches(from, to int, channel string) bool {
	if lf.From >= 0 && lf.From != from {
		return false
	}
	if lf.To >= 0 && lf.To != to {
		return false
	}
	if lf.Channel != "" && lf.Channel != channel {
		return false
	}
	return true
}

// Stall freezes one device for Duration virtual seconds at the first
// instruction boundary at or after virtual time At — a transient whole-device
// hang (GC pause, preemption, thermal throttle).
type Stall struct {
	// Device is the stalled device id.
	Device int `json:"device"`
	// At is the virtual time the stall begins.
	At float64 `json:"at"`
	// Duration is the stall length in virtual seconds.
	Duration float64 `json:"duration"`
	// Wall optionally holds the device goroutine for this wall-clock span
	// while the stall is taken, without affecting virtual time. It exists to
	// exercise the watchdog's stall-vs-deadlock classification; leave zero
	// for pure virtual-time stalls.
	Wall time.Duration `json:"wall,omitempty"`
}

// Plan is a complete, deterministic fault scenario for one emulated run.
// The zero value injects nothing.
type Plan struct {
	// Name labels the plan in reports.
	Name string `json:"name,omitempty"`
	// Seed seeds the drop-decision streams; 0 means 1. Independent of the
	// Machine's jitter seed, so the same faults can be replayed on machines
	// with different noise.
	Seed uint64 `json:"seed,omitempty"`
	// MaxRetries bounds the retransmissions of a dropped message; 0 means 3.
	MaxRetries int `json:"retries,omitempty"`
	// RetryBackoff is the virtual-time base of the exponential backoff: a
	// sender that lost attempt i waits RetryBackoff·2^i before resending.
	// 0 means 500 µs.
	RetryBackoff float64 `json:"backoff,omitempty"`

	Slowdowns []Slowdown  `json:"slowdowns,omitempty"`
	Links     []LinkFault `json:"links,omitempty"`
	Stalls    []Stall     `json:"stalls,omitempty"`
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Slowdowns) == 0 && len(p.Links) == 0 && len(p.Stalls) == 0)
}

// Validate checks the plan against a device count.
func (p *Plan) Validate(devices int) error {
	for i, sl := range p.Slowdowns {
		if sl.Device < -1 || sl.Device >= devices {
			return fmt.Errorf("fault: slowdown %d: device %d out of range [0,%d)", i, sl.Device, devices)
		}
		if sl.Factor <= 0 {
			return fmt.Errorf("fault: slowdown %d: factor %g must be positive", i, sl.Factor)
		}
	}
	for i, lf := range p.Links {
		if lf.From < -1 || lf.From >= devices || lf.To < -1 || lf.To >= devices {
			return fmt.Errorf("fault: link fault %d: endpoint %d->%d out of range [0,%d)", i, lf.From, lf.To, devices)
		}
		if lf.Channel != "" && lf.Channel != ChannelAct && lf.Channel != ChannelGrad {
			return fmt.Errorf("fault: link fault %d: unknown channel %q (want %q or %q)", i, lf.Channel, ChannelAct, ChannelGrad)
		}
		if lf.DropProb < 0 || lf.DropProb >= 1 {
			return fmt.Errorf("fault: link fault %d: drop probability %g outside [0,1)", i, lf.DropProb)
		}
		if lf.BandwidthFactor < 0 || lf.BandwidthFactor > 1 {
			return fmt.Errorf("fault: link fault %d: bandwidth factor %g outside (0,1]", i, lf.BandwidthFactor)
		}
		if lf.ExtraLatency < 0 {
			return fmt.Errorf("fault: link fault %d: negative extra latency %g", i, lf.ExtraLatency)
		}
	}
	for i, st := range p.Stalls {
		if st.Device < 0 || st.Device >= devices {
			return fmt.Errorf("fault: stall %d: device %d out of range [0,%d)", i, st.Device, devices)
		}
		if st.Duration < 0 || st.At < 0 {
			return fmt.Errorf("fault: stall %d: negative time", i)
		}
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative retry budget %d", p.MaxRetries)
	}
	if p.RetryBackoff < 0 {
		return fmt.Errorf("fault: negative retry backoff %g", p.RetryBackoff)
	}
	return nil
}

// Compile validates the plan and builds its runtime Injector for a cluster of
// the given device count.
func (p *Plan) Compile(devices int) (*Injector, error) {
	if err := p.Validate(devices); err != nil {
		return nil, err
	}
	inj := &Injector{plan: p, devs: make([]DeviceInjector, devices)}
	for d := range inj.devs {
		dev := &inj.devs[d]
		dev.inj = inj
		dev.dev = d
		for i := range p.Slowdowns {
			if sl := &p.Slowdowns[i]; sl.Device == -1 || sl.Device == d {
				dev.slow = append(dev.slow, *sl)
			}
		}
		for i := range p.Stalls {
			if st := &p.Stalls[i]; st.Device == d {
				dev.stalls = append(dev.stalls, *st)
			}
		}
		// Stable order by onset time so TakeStall consumes deterministically.
		sort.SliceStable(dev.stalls, func(i, j int) bool { return dev.stalls[i].At < dev.stalls[j].At })
	}
	return inj, nil
}

// Injector is a Plan compiled against a device count. The shared state is a
// single atomic stall counter; everything else lives in per-device views that
// only the owning device goroutine touches, so a faulted run stays race-clean.
type Injector struct {
	plan *Plan
	devs []DeviceInjector
	// stalled counts devices currently holding a wall-clock stall; the
	// watchdog consults it through Stalled.
	stalled atomic.Int64
}

// Device returns device d's injector view. Each view must only be used from
// the goroutine emulating that device.
func (inj *Injector) Device(d int) *DeviceInjector { return &inj.devs[d] }

// Stalled reports how many devices are currently inside an injected
// wall-clock stall. The cluster watchdog re-arms instead of declaring a
// deadlock while this is nonzero.
func (inj *Injector) Stalled() int64 { return inj.stalled.Load() }

// retries returns the plan's retransmission budget.
func (inj *Injector) retries() int {
	if inj.plan.MaxRetries <= 0 {
		return 3
	}
	return inj.plan.MaxRetries
}

// backoff returns the plan's base backoff in virtual seconds.
func (inj *Injector) backoff() float64 {
	if inj.plan.RetryBackoff <= 0 {
		return 500e-6
	}
	return inj.plan.RetryBackoff
}

// Transfer is the outcome of one (possibly retried) faulted p2p transfer.
type Transfer struct {
	// Delay is the total virtual time from posting the send to the message
	// landing: degraded wire time of the successful attempt plus the backoff
	// of every dropped one.
	Delay float64
	// Drops counts the dropped attempts that preceded the success.
	Drops int
}

// DeviceInjector is one device's view of the compiled plan. It is not safe
// for concurrent use; the cluster gives each device goroutine its own.
type DeviceInjector struct {
	inj    *Injector
	dev    int
	slow   []Slowdown
	stalls []Stall
	next   int // first unconsumed stall
	links  map[linkID]*linkState
	// StallVirtual and Drops accumulate what the device injected over the
	// run, for the machine's fault summary.
	StallVirtual float64
	Drops        int
	Slowed       int
}

type linkID struct {
	to      int
	channel string
}

// linkState is the per-outgoing-link retry RNG and the matching plan faults.
type linkState struct {
	faults []*LinkFault
	rng    rng
}

// ComputeFactor returns the combined slowdown factor for a compute
// instruction starting at virtual time t (1 when the device is healthy). A
// nonzero factor is recorded in the device's Slowed counter.
func (d *DeviceInjector) ComputeFactor(t float64) float64 {
	f := 1.0
	for i := range d.slow {
		if d.slow[i].active(t) {
			f *= d.slow[i].Factor
		}
	}
	if f != 1 {
		d.Slowed++
	}
	return f
}

// TakeStall consumes every pending stall whose onset is at or before virtual
// time t and returns the summed virtual delay plus the longest wall-clock
// hold among them. Callers advance their clock by the delay, and — if wall is
// nonzero — bracket the hold with EnterStall/ExitStall so the watchdog can
// tell the pause from a deadlock.
func (d *DeviceInjector) TakeStall(t float64) (delay float64, wall time.Duration) {
	for d.next < len(d.stalls) && d.stalls[d.next].At <= t {
		st := &d.stalls[d.next]
		delay += st.Duration
		if st.Wall > wall {
			wall = st.Wall
		}
		d.next++
	}
	d.StallVirtual += delay
	return delay, wall
}

// EnterStall marks the device as inside an injected wall-clock stall.
func (d *DeviceInjector) EnterStall() { d.inj.stalled.Add(1) }

// ExitStall clears the EnterStall mark.
func (d *DeviceInjector) ExitStall() { d.inj.stalled.Add(-1) }

// Transfer applies the plan's link faults to one message sent at virtual time
// t on the (d.dev → to, channel) link with healthy wire time base. It returns
// the perturbed outcome, or ErrLinkFailure when every attempt in the retry
// budget was dropped. Drop decisions come from a per-link deterministic
// stream, so results do not depend on goroutine interleaving.
func (d *DeviceInjector) Transfer(to int, channel string, base, t float64) (Transfer, error) {
	ls := d.link(to, channel)
	tr := Transfer{Delay: base}
	if ls == nil {
		return tr, nil
	}
	wire := base
	drop := 0.0
	for _, lf := range ls.faults {
		if !lf.active(t) {
			continue
		}
		wire += lf.ExtraLatency
		if bf := lf.BandwidthFactor; bf > 0 && bf < 1 {
			wire = lf.ExtraLatency + (wire-lf.ExtraLatency)/bf
		}
		// Independent faults compose: the message survives only if no active
		// fault drops it.
		drop = 1 - (1-drop)*(1-lf.DropProb)
	}
	tr.Delay = wire
	if drop <= 0 {
		return tr, nil
	}
	budget := d.inj.retries()
	backoff := d.inj.backoff()
	for attempt := 0; ; attempt++ {
		if ls.rng.float64() >= drop {
			return tr, nil
		}
		tr.Drops++
		d.Drops++
		if attempt >= budget {
			return tr, fmt.Errorf("%w: link %d->%d[%s] dropped %d attempts",
				ErrLinkFailure, d.dev, to, channel, tr.Drops)
		}
		// The sender notices the loss after one backoff period and resends;
		// the lost attempt's wire time overlaps the wait.
		tr.Delay += backoff * math.Pow(2, float64(attempt))
	}
}

// link lazily resolves the fault state of the (d.dev → to, channel) link; nil
// when no plan fault can ever match it.
func (d *DeviceInjector) link(to int, channel string) *linkState {
	id := linkID{to: to, channel: channel}
	if ls, ok := d.links[id]; ok {
		return ls
	}
	var faults []*LinkFault
	for i := range d.inj.plan.Links {
		if lf := &d.inj.plan.Links[i]; lf.matches(d.dev, to, channel) {
			faults = append(faults, lf)
		}
	}
	var ls *linkState
	if len(faults) > 0 {
		seed := d.inj.plan.Seed
		if seed == 0 {
			seed = 1
		}
		ch := uint64(0)
		if channel == ChannelGrad {
			ch = 1
		}
		ls = &linkState{
			faults: faults,
			rng:    newRNG(seed, uint64(d.dev)<<20|uint64(to)<<2|ch),
		}
	}
	if d.links == nil {
		d.links = make(map[linkID]*linkState)
	}
	d.links[id] = ls
	return ls
}

// rng is the same splitmix64 generator the cluster's jitter uses, on streams
// keyed by (seed, link) so drop decisions are independent of jitter and of
// each other.
type rng struct{ state uint64 }

func newRNG(seed, stream uint64) rng {
	return rng{state: seed*0x9E3779B97F4A7C15 ^ (stream+1)*0xBF58476D1CE4E5B9}
}

func (r *rng) float64() float64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
