package telemetry

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"
)

// FlightRecord is one completed plan request as the flight recorder keeps
// it: identity, outcome, timing, and the frozen span tree.
type FlightRecord struct {
	// Seq is the recorder-assigned monotonic sequence number.
	Seq uint64
	// Fingerprint identifies the request workload.
	Fingerprint string
	// Outcome is the request's terminal state ("completed", "error",
	// "timeout", ...), as reported by the serving layer.
	Outcome string
	// Start is when the request began; Elapsed its end-to-end latency.
	Start time.Time
	// Elapsed is the request's end-to-end latency.
	Elapsed time.Duration
	// Trace is the request's frozen span tree (may be empty if the
	// request was served from cache without running a search).
	Trace *Trace
}

// FlightRecorder is mariod's black box: a ring buffer of the last N
// completed request span-trees, plus a separate slow-request log keeping
// the K slowest requests seen since boot. Both are dumpable at
// /debug/flight and on SIGQUIT. Safe for concurrent use; a nil recorder
// no-ops.
type FlightRecorder struct {
	mu      sync.Mutex
	seq     uint64
	ring    []FlightRecord // ring[(seq-1) % cap] is the newest
	cap     int
	slow    []FlightRecord // sorted by Elapsed descending, ≤ slowCap entries
	slowCap int
}

// NewFlightRecorder returns a recorder keeping the last ringSize requests
// and the slowKeep slowest. Sizes below one are raised to one.
func NewFlightRecorder(ringSize, slowKeep int) *FlightRecorder {
	if ringSize < 1 {
		ringSize = 1
	}
	if slowKeep < 1 {
		slowKeep = 1
	}
	return &FlightRecorder{cap: ringSize, slowCap: slowKeep}
}

// Record adds one completed request. Safe on nil.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	rec.Seq = f.seq
	if len(f.ring) < f.cap {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[int((f.seq-1)%uint64(f.cap))] = rec
	}
	// Insert into the slow log if it qualifies.
	if len(f.slow) < f.slowCap || rec.Elapsed > f.slow[len(f.slow)-1].Elapsed {
		f.slow = append(f.slow, rec)
		sort.SliceStable(f.slow, func(i, j int) bool { return f.slow[i].Elapsed > f.slow[j].Elapsed })
		if len(f.slow) > f.slowCap {
			f.slow = f.slow[:f.slowCap]
		}
	}
}

// Recent returns the ring contents, newest first. Safe on nil.
func (f *FlightRecorder) Recent() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, len(f.ring))
	copy(out, f.ring)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Slowest returns the slow log, slowest first. Safe on nil.
func (f *FlightRecorder) Slowest() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, len(f.slow))
	copy(out, f.slow)
	return out
}

// WriteText renders a human-readable dump: the recent ring (newest first)
// with per-request phase summaries, then the slow log. This is what
// /debug/flight and the SIGQUIT handler print. Safe on nil (prints a
// disabled notice).
func (f *FlightRecorder) WriteText(w *bytes.Buffer) {
	if f == nil {
		w.WriteString("flight recorder disabled\n")
		return
	}
	recent := f.Recent()
	fmt.Fprintf(w, "== flight recorder: %d recent request(s) ==\n", len(recent))
	for _, rec := range recent {
		writeFlightRecord(w, rec)
	}
	slow := f.Slowest()
	fmt.Fprintf(w, "== slow log: %d request(s) ==\n", len(slow))
	for _, rec := range slow {
		fmt.Fprintf(w, "#%d %s outcome=%s elapsed=%s\n",
			rec.Seq, shortFP(rec.Fingerprint), rec.Outcome, rec.Elapsed.Round(time.Microsecond))
	}
}

// writeFlightRecord renders one ring entry with its phase summary.
func writeFlightRecord(w *bytes.Buffer, rec FlightRecord) {
	fmt.Fprintf(w, "#%d %s outcome=%s elapsed=%s\n",
		rec.Seq, shortFP(rec.Fingerprint), rec.Outcome, rec.Elapsed.Round(time.Microsecond))
	if rec.Trace == nil || len(rec.Trace.Roots) == 0 {
		w.WriteString("  (no trace)\n")
		return
	}
	for _, row := range rec.Trace.PhaseSummary() {
		fmt.Fprintf(w, "  %-12s n=%-5d self=%s\n", row.Phase, row.Count, row.Self.Round(time.Microsecond))
	}
}

// Dump returns WriteText's output as bytes — the /debug/flight body and
// the SIGQUIT dump. Safe on nil.
func (f *FlightRecorder) Dump() []byte {
	var b bytes.Buffer
	f.WriteText(&b)
	return b.Bytes()
}

// shortFP abbreviates a fingerprint for dump lines.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	if fp == "" {
		return "-"
	}
	return fp
}
