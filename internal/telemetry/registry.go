package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide metrics registry: counters, gauges and
// fixed-bucket histograms, each optionally split by a label set, rendered
// in Prometheus text exposition format. It replaces the hand-rolled
// obs.ServerStats plumbing: the serve layer, the tuner search and the
// graph/sim pools all register their series here and /metrics renders the
// union in one pass.
//
// Instruments are cheap after creation (atomic adds); creation takes the
// registry lock, so callers hold onto the returned handles. Metric names
// sort lexically in the rendered output; labelled series sort by label
// value within a metric. A nil *Registry no-ops everywhere, mirroring the
// span layer's disabled state.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metricFamily{}}
}

// metricKind discriminates the instrument types of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metricFamily is every series sharing one metric name.
type metricFamily struct {
	name   string
	help   string
	kind   metricKind
	label  string // label key, "" for unlabelled families
	bounds []float64

	mu     sync.Mutex
	series map[string]any // label value ("" for unlabelled) → *Counter/*Gauge/*Histogram
}

// family returns (creating if needed) the named family, checking that the
// requested shape matches any prior registration.
func (r *Registry) family(name, help string, kind metricKind, label string, bounds []float64) *metricFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.metrics[name]
	if f == nil {
		f = &metricFamily{
			name: name, help: help, kind: kind, label: label,
			bounds: bounds, series: map[string]any{},
		}
		r.metrics[name] = f
		return f
	}
	if f.kind != kind || f.label != label {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
	}
	return f
}

// get returns (creating if needed) the series for a label value.
func (f *metricFamily) get(labelVal string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[labelVal]
	if s == nil {
		s = mk()
		f.series[labelVal] = s
	}
	return s
}

// Counter is a monotonically increasing series. The zero value works but
// is unregistered; obtain registered counters from a Registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Safe on nil.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta. Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Set replaces the gauge value. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value. Safe on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram (cumulative render, final +Inf
// bucket implicit) safe for concurrent observation.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumNano atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample (in the bounds' unit). Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
}

// ObserveDuration records a duration in seconds. Safe on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed observations. Safe on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNano.Load()) / 1e9
}

// Counter returns the registered counter with the given name (creating it
// at zero), for unlabelled use. Safe on nil (returns nil, which no-ops).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindCounter, "", nil)
	return f.get("", func() any { return &Counter{} }).(*Counter)
}

// LabeledCounter returns the counter series for one value of the family's
// single label. Safe on nil.
func (r *Registry) LabeledCounter(name, help, label, value string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindCounter, label, nil)
	return f.get(value, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the registered gauge with the given name. Safe on nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindGauge, "", nil)
	return f.get("", func() any { return &Gauge{} }).(*Gauge)
}

// LabeledGauge returns the gauge series for one label value. Safe on nil.
func (r *Registry) LabeledGauge(name, help, label, value string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindGauge, label, nil)
	return f.get(value, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the registered histogram with the given name and upper
// bucket bounds (the final +Inf bucket is implicit). Bounds must match any
// prior registration of the same name. Safe on nil.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindHistogram, "", bounds)
	return f.get("", func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// LatencyBounds are the default request-latency bucket bounds in seconds,
// spanning cache hits (sub-millisecond) to full tuner runs (minutes).
var LatencyBounds = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

// WriteProm renders every registered series in Prometheus text exposition
// format, metric names sorted lexically, label values sorted within each
// family. Safe on nil (renders nothing).
func (r *Registry) WriteProm(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	fams := make([]*metricFamily, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.metrics[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.writeProm(w)
	}
}

// writeProm renders one family.
func (f *metricFamily) writeProm(w io.Writer) {
	f.mu.Lock()
	vals := make([]string, 0, len(f.series))
	for v := range f.series {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	series := make([]any, len(vals))
	for i, v := range vals {
		series[i] = f.series[v]
	}
	f.mu.Unlock()

	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
	switch f.kind {
	case kindCounter:
		fmt.Fprintf(w, "# TYPE %s counter\n", f.name)
	case kindGauge:
		fmt.Fprintf(w, "# TYPE %s gauge\n", f.name)
	case kindHistogram:
		fmt.Fprintf(w, "# TYPE %s histogram\n", f.name)
	}
	for i, v := range vals {
		id := f.name
		suffix := func(s string) string { return id + s }
		if f.label != "" {
			lbl := fmt.Sprintf("{%s=%q}", f.label, v)
			suffix = func(s string) string { return id + s + lbl }
		}
		switch s := series[i].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s %d\n", suffix(""), s.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s %d\n", suffix(""), s.Value())
		case *Histogram:
			cum := int64(0)
			for bi, b := range s.bounds {
				cum += s.buckets[bi].Load()
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", id, promFloat(b), cum)
			}
			cum += s.buckets[len(s.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", id, cum)
			fmt.Fprintf(w, "%s_sum %s\n", id, promFloat(s.Sum()))
			fmt.Fprintf(w, "%s_count %d\n", id, s.Count())
		}
	}
}

// promFloat renders a float without trailing zeros (Prometheus-friendly).
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%g", v)
	return strings.TrimSuffix(s, ".0")
}
