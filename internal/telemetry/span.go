// Package telemetry is the observability layer of the planner's own inner
// loop — the search-side counterpart of internal/obs, which instruments the
// *execution* of a schedule. Where obs streams per-instruction events from
// the emulated cluster, telemetry records what the tuner grid search, the
// graph passes, the simulator engines and the robustness ensemble did while
// *producing* a plan: a span tree per plan request, a metrics registry the
// planning daemon renders at /metrics, and a flight recorder that keeps the
// last N request traces for post-hoc debugging.
//
// Three contracts shape the package:
//
//   - Near zero cost when off. Every Span method and every Tracer entry
//     point is safe on the zero value / nil receiver and allocates nothing —
//     the nil-sink fast path internal/obs established. Instrumented code
//     threads a Span through unconditionally; an untraced run pays a nil
//     check per call and nothing else.
//
//   - Deterministic canonical traces. Span identities derive from
//     (fingerprint, canonical path, phase), never from wall-clock or
//     goroutine scheduling, and the canonical exports (JSONL, canonical
//     Chrome trace, tree rendering) are byte-identical for every worker
//     count, GOMAXPROCS and -race — the same contract the tuner's
//     canonical-order merge gives its results. Wall-clock timings are
//     recorded alongside but only surface in the measured Chrome trace.
//
//   - One request, one Tracer. A Tracer accumulates the spans of a single
//     plan request (one Optimize call, one daemon flight); Snapshot freezes
//     it into an exportable Trace. Tracers are safe for concurrent span
//     creation (tuner workers record from many goroutines).
package telemetry

import (
	"strconv"
	"sync"
	"time"
)

// Phase names one level of the search span hierarchy. The set is closed:
// canonical ordering sorts sibling spans by phase rank before key, so every
// producer must use the package constants.
type Phase string

// The span phases, from the request root down to the innermost simulator
// work. PhaseOptimize is the root of a plan request; PhaseSearch covers one
// tuner grid search; PhasePoint one grid point; PhaseBuild / PhaseBound /
// PhaseGraph / PhaseSim its sub-steps (schedule build, bound-prune decision,
// graph-tuner run, direct simulation); PhaseRound one simulator-guided
// prepose round inside a graph run; PhaseRobust a robustness re-scoring,
// with PhaseCandidate / PhaseFault children per (schedule, fault plan) run.
const (
	PhaseOptimize  Phase = "optimize"
	PhaseSearch    Phase = "search"
	PhasePoint     Phase = "point"
	PhaseBuild     Phase = "build"
	PhaseBound     Phase = "bound"
	PhaseGraph     Phase = "graph"
	PhaseSim       Phase = "sim"
	PhaseRound     Phase = "round"
	PhaseRobust    Phase = "robustness"
	PhaseCandidate Phase = "candidate"
	PhaseFault     Phase = "fault"
)

// phaseRank fixes the canonical sibling order: spans under one parent sort
// by (rank, key). The rank follows the sequential search's program order —
// build, bound decision, then graph or direct simulation.
func phaseRank(p Phase) int {
	switch p {
	case PhaseOptimize:
		return 0
	case PhaseSearch:
		return 1
	case PhasePoint:
		return 2
	case PhaseBuild:
		return 3
	case PhaseBound:
		return 4
	case PhaseGraph:
		return 5
	case PhaseRound:
		return 6
	case PhaseSim:
		return 7
	case PhaseRobust:
		return 8
	case PhaseCandidate:
		return 9
	case PhaseFault:
		return 10
	}
	return 99
}

// Attr is one deterministic key/value pair on a span. Values are
// pre-rendered strings so a span never holds anything whose formatting
// could drift between runs (floats are formatted with strconv 'g', the
// shortest round-trip form, so bit-identical floats render identically).
type Attr struct {
	// K is the attribute name.
	K string `json:"k"`
	// V is the rendered value.
	V string `json:"v"`
}

// spanRec is one span in the tracer's arena. The arena index is the span's
// handle; parent is an arena index or -1 for roots and detached spans.
type spanRec struct {
	parent   int32
	phase    Phase
	key      string
	memoKey  string
	start    time.Time
	end      time.Time
	attrs    []Attr
	discard  bool
	detached bool
}

// Tracer collects the span tree of one plan request. The zero value is not
// usable — construct with New; a nil *Tracer is the disabled state and every
// method on it (and on the zero Span) is a free no-op.
type Tracer struct {
	// Clock supplies span timestamps; nil means time.Now. Tests install a
	// deterministic fake so measured exports golden-compare.
	Clock func() time.Time

	fingerprint string
	metrics     *SearchMetrics

	mu    sync.Mutex
	spans []spanRec
}

// New returns a Tracer for one plan request identified by fingerprint (the
// serve-layer workload fingerprint, or any stable request label — span IDs
// are derived from it).
func New(fingerprint string) *Tracer {
	return &Tracer{fingerprint: fingerprint}
}

// WithMetrics attaches a metrics sink: instrumented code found through a
// Span's Tracer also feeds these counters. Returns t for chaining; safe on
// nil (returns nil).
func (t *Tracer) WithMetrics(m *SearchMetrics) *Tracer {
	if t != nil {
		t.metrics = m
	}
	return t
}

// Metrics returns the attached metrics sink, or nil. Safe on nil.
func (t *Tracer) Metrics() *SearchMetrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Fingerprint returns the request fingerprint the tracer was created with.
// Safe on nil (returns "").
func (t *Tracer) Fingerprint() string {
	if t == nil {
		return ""
	}
	return t.fingerprint
}

// now reads the tracer clock.
func (t *Tracer) now() time.Time {
	if t.Clock != nil {
		return t.Clock()
	}
	return time.Now()
}

// alloc appends a span record and returns its handle.
func (t *Tracer) alloc(parent int32, phase Phase, key string, detached bool) Span {
	t.mu.Lock()
	t.spans = append(t.spans, spanRec{
		parent: parent, phase: phase, key: key,
		start: t.now(), detached: detached,
	})
	idx := int32(len(t.spans)) // 1-based so the zero Span is a no-op
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// Root starts a top-level span (normally the single PhaseOptimize request
// root). Safe on nil (returns the no-op Span).
func (t *Tracer) Root(phase Phase, key string) Span {
	if t == nil {
		return Span{}
	}
	return t.alloc(-1, phase, key, false)
}

// Detached starts a span with no parent yet. Workers evaluating grid points
// speculatively record into detached spans; the canonical merge loop later
// calls AttachTo (adopting the subtree at its deterministic position) or
// Discard (dropping speculative work the canonical search would not have
// done). Safe on nil.
func (t *Tracer) Detached(phase Phase, key string) Span {
	if t == nil {
		return Span{}
	}
	return t.alloc(-1, phase, key, true)
}

// Span is a lightweight handle to one span of a Tracer. The zero value is
// the disabled span: every method no-ops and spawns only more disabled
// spans, which is what makes unconditional instrumentation free when
// tracing is off.
type Span struct {
	t   *Tracer
	idx int32 // 1-based arena index; 0 = disabled
}

// Live reports whether the span actually records (false for the zero Span).
func (s Span) Live() bool { return s.t != nil && s.idx > 0 }

// Tracer returns the owning tracer, or nil for the disabled span.
func (s Span) Tracer() *Tracer {
	if !s.Live() {
		return nil
	}
	return s.t
}

// Child starts a sub-span. The key must be unique among siblings of the
// same phase (canonical ordering and span IDs depend on it); repeated
// phases embed a sequence number, e.g. "07". Safe on the zero Span.
func (s Span) Child(phase Phase, key string) Span {
	if !s.Live() {
		return Span{}
	}
	return s.t.alloc(s.idx-1, phase, key, false)
}

// End stamps the span's end time. Spans left un-ended inherit the latest
// end of their subtree at Snapshot. Safe on the zero Span.
func (s Span) End() {
	if !s.Live() {
		return
	}
	t := s.t
	t.mu.Lock()
	t.spans[s.idx-1].end = t.now()
	t.mu.Unlock()
}

// AttachTo adopts a detached span (and its subtree) under parent. The merge
// loop calls it in canonical order, which is what anchors worker-recorded
// subtrees at deterministic positions. Attaching to a disabled parent
// discards the subtree (a traced worker feeding an untraced merge cannot
// happen in practice, but the zero-value contract must hold). Safe on the
// zero Span.
func (s Span) AttachTo(parent Span) {
	if !s.Live() {
		return
	}
	if !parent.Live() || parent.t != s.t {
		s.Discard()
		return
	}
	t := s.t
	t.mu.Lock()
	r := &t.spans[s.idx-1]
	r.parent = parent.idx - 1
	r.detached = false
	t.mu.Unlock()
}

// Discard drops the span and its subtree from every export — the fate of
// speculative worker evaluations that the canonical merge replaced. Safe on
// the zero Span.
func (s Span) Discard() {
	if !s.Live() {
		return
	}
	t := s.t
	t.mu.Lock()
	t.spans[s.idx-1].discard = true
	t.mu.Unlock()
}

// RetainChildren discards every direct child whose phase is not in keep
// (with its subtree). The canonical merge uses it to trim a speculative
// full evaluation down to the prefix the sequential search would have
// recorded (build + bound for a bound-pruned point). Safe on the zero Span.
func (s Span) RetainChildren(keep ...Phase) {
	if !s.Live() {
		return
	}
	t := s.t
	t.mu.Lock()
	me := s.idx - 1
	for i := range t.spans {
		if t.spans[i].parent != me {
			continue
		}
		kept := false
		for _, p := range keep {
			if t.spans[i].phase == p {
				kept = true
				break
			}
		}
		if !kept {
			t.spans[i].discard = true
		}
	}
	t.mu.Unlock()
}

// Memo tags the span with a memoization key. Spans sharing a (phase, memo
// key) describe the same memoized computation; canonical exports attribute
// the computed subtree to the first span in canonical order (memo "first")
// and mark the rest as "shared", regardless of which worker actually ran
// the compute — the sequential-search semantics. Safe on the zero Span.
func (s Span) Memo(key string) {
	if !s.Live() {
		return
	}
	t := s.t
	t.mu.Lock()
	t.spans[s.idx-1].memoKey = key
	t.mu.Unlock()
}

// setAttr appends a pre-rendered attribute.
func (s Span) setAttr(k, v string) {
	t := s.t
	t.mu.Lock()
	r := &t.spans[s.idx-1]
	r.attrs = append(r.attrs, Attr{K: k, V: v})
	t.mu.Unlock()
}

// SetStr records a string attribute. Safe on the zero Span.
func (s Span) SetStr(k, v string) {
	if !s.Live() {
		return
	}
	s.setAttr(k, v)
}

// SetInt records an integer attribute. Safe on the zero Span.
func (s Span) SetInt(k string, v int64) {
	if !s.Live() {
		return
	}
	s.setAttr(k, strconv.FormatInt(v, 10))
}

// SetFloat records a float attribute in shortest round-trip form, so
// bit-identical floats always render identically. Safe on the zero Span.
func (s Span) SetFloat(k string, v float64) {
	if !s.Live() {
		return
	}
	s.setAttr(k, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetBool records a boolean attribute. Safe on the zero Span.
func (s Span) SetBool(k string, v bool) {
	if !s.Live() {
		return
	}
	s.setAttr(k, strconv.FormatBool(v))
}
