package telemetry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one span in a frozen Trace. Children are in canonical order
// (phase rank, then key); ID, Path and Attrs are deterministic, Start/End
// are the recorded wall-clock (or fake-clock) times and only surface in
// measured exports.
type Node struct {
	// ID is the span's deterministic identity: the first 12 hex digits of
	// SHA-256(fingerprint + "\x00" + Path).
	ID string
	// Phase is the span's level in the search hierarchy.
	Phase Phase
	// Key distinguishes the span among same-phase siblings.
	Key string
	// Path is the canonical slash-joined location, e.g.
	// "optimize/search/point[0007 X-8-4(mario)]/graph/round[02]".
	Path string
	// Memo is "" for non-memoized spans, "first" for the canonical first
	// occurrence of a memoized computation, "shared" for later reuses.
	Memo string
	// Attrs are the recorded attributes, in recording order.
	Attrs []Attr
	// Start and End are the recorded span interval.
	Start, End time.Time
	// Children are the surviving child spans in canonical order.
	Children []*Node
}

// Dur returns the span's recorded duration.
func (n *Node) Dur() time.Duration { return n.End.Sub(n.Start) }

// SelfDur returns the span's self time: its duration minus the sum of its
// children's durations, floored at zero. Because every child interval is
// clamped inside its parent at Snapshot, self times telescope exactly —
// the sum of SelfDur over a tree equals the root's Dur.
func (n *Node) SelfDur() time.Duration {
	d := n.Dur()
	for _, c := range n.Children {
		d -= c.Dur()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// attr returns the value of the named attribute, or "".
func (n *Node) attr(k string) string {
	for _, a := range n.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// Trace is a frozen, export-ready span tree for one plan request.
type Trace struct {
	// Fingerprint identifies the request; span IDs are derived from it.
	Fingerprint string
	// Roots are the surviving top-level spans in canonical order (normally
	// exactly one PhaseOptimize span).
	Roots []*Node
}

// Snapshot freezes the tracer's current spans into a canonical Trace:
// discarded subtrees and still-detached spans are dropped, children are
// sorted into canonical order, memoized spans are normalized (see below),
// child intervals are clamped inside their parents so self times
// telescope, and span IDs/paths are derived. Safe on nil (returns an
// empty Trace). The tracer remains usable afterwards; Snapshot reads a
// consistent view.
//
// Memo normalization is what makes parallel traces byte-identical to the
// sequential one: spans sharing a (phase, memo key) describe one memoized
// computation, but which span actually ran the compute — and so recorded
// its child spans — is a scheduling accident under Workers > 1, and the
// computing span may even sit in a subtree the canonical merge discarded.
// Snapshot therefore moves the compute children of every group member
// (surviving or discarded) under the group's canonically-first surviving
// span, tags it memo "first", and tags the remaining survivors "shared"
// with no children — exactly the tree the sequential search records,
// since its canonical evaluation order makes the canonically-first
// non-pruned span the computing one. (Timings of rescued children are
// clamped into the adopting span like any others, so the measured view of
// a parallel run compresses them; the sequential measured view is exact.)
func (t *Tracer) Snapshot() *Trace {
	tr := &Trace{}
	if t == nil {
		return tr
	}
	t.mu.Lock()
	recs := make([]spanRec, len(t.spans))
	copy(recs, t.spans)
	tr.Fingerprint = t.fingerprint
	t.mu.Unlock()

	canonLess := func(a, b int32) bool {
		ra, rb := phaseRank(recs[a].phase), phaseRank(recs[b].phase)
		if ra != rb {
			return ra < rb
		}
		if recs[a].key != recs[b].key {
			return recs[a].key < recs[b].key
		}
		return a < b
	}

	// deadSet propagates explicit drops (discarded or still-detached spans)
	// down the tree. Parents usually have smaller arena indices than their
	// children (alloc order), but AttachTo can adopt an earlier span under a
	// later parent — so iterate to a fixed point (tree depth bounds the
	// rounds; in practice 2).
	deadSet := func() []bool {
		dead := make([]bool, len(recs))
		for i := range recs {
			dead[i] = recs[i].discard || recs[i].detached
		}
		for changed := true; changed; {
			changed = false
			for i := range recs {
				p := recs[i].parent
				if !dead[i] && p >= 0 && dead[p] {
					dead[i] = true
					changed = true
				}
			}
		}
		return dead
	}
	// childLists builds canonical-order child lists and roots over the
	// surviving spans.
	childLists := func(dead []bool) (children [][]int32, rootIdx []int32) {
		children = make([][]int32, len(recs))
		for i := range recs {
			if dead[i] {
				continue
			}
			if p := recs[i].parent; p >= 0 {
				children[p] = append(children[p], int32(i))
			} else {
				rootIdx = append(rootIdx, int32(i))
			}
		}
		sort.Slice(rootIdx, func(i, j int) bool { return canonLess(rootIdx[i], rootIdx[j]) })
		for p := range children {
			cs := children[p]
			sort.Slice(cs, func(i, j int) bool { return canonLess(cs[i], cs[j]) })
		}
		return children, rootIdx
	}

	dead := deadSet()
	children, rootIdx := childLists(dead)

	// Canonical preorder position of every surviving span — the order memo
	// normalization picks its receivers by.
	order := make([]int, len(recs))
	pos := 0
	var number func(i int32)
	number = func(i int32) {
		order[i] = pos
		pos++
		for _, c := range children[i] {
			number(c)
		}
	}
	for _, r := range rootIdx {
		number(r)
	}

	// Memo normalization: re-parent every group member's children onto the
	// canonically-first surviving member. Children rescued out of discarded
	// subtrees come back alive, so recompute liveness and child lists after.
	groups := map[string][]int32{}
	for i := range recs {
		if recs[i].memoKey != "" {
			gk := string(recs[i].phase) + "\x00" + recs[i].memoKey
			groups[gk] = append(groups[gk], int32(i))
		}
	}
	moved := false
	for _, members := range groups {
		recv := int32(-1)
		for _, m := range members {
			if dead[m] {
				continue
			}
			if recv < 0 || order[m] < order[recv] {
				recv = m
			}
		}
		if recv < 0 {
			continue // the whole group died with its subtrees
		}
		for _, m := range members {
			if m == recv {
				continue
			}
			for i := range recs {
				if recs[i].parent == m {
					recs[i].parent = recv
					moved = true
				}
			}
		}
	}
	if moved {
		dead = deadSet()
		children, rootIdx = childLists(dead)
	}

	// Build the surviving nodes.
	nodes := make([]*Node, len(recs))
	for i := range recs {
		if dead[i] {
			continue
		}
		r := &recs[i]
		nodes[i] = &Node{
			Phase: r.phase, Key: r.key,
			Attrs: r.attrs,
			Start: r.start, End: r.end,
		}
	}

	// Walk in canonical preorder: fix up end times (un-ended spans inherit
	// the max end of their subtree), clamp children into parents, assign
	// paths/IDs, normalize memo groups, and link children.
	memoSeen := map[string]bool{}
	var walk func(i int32, parentPath string, lo, hi time.Time) *Node
	walk = func(i int32, parentPath string, lo, hi time.Time) *Node {
		n := nodes[i]
		seg := string(n.Phase)
		if n.Key != "" {
			seg += "[" + n.Key + "]"
		}
		if parentPath == "" {
			n.Path = seg
		} else {
			n.Path = parentPath + "/" + seg
		}
		sum := sha256.Sum256([]byte(tr.Fingerprint + "\x00" + n.Path))
		n.ID = hex.EncodeToString(sum[:6])

		// Un-ended spans: adopt the latest end seen in the subtree.
		if n.End.Before(n.Start) || n.End.IsZero() {
			n.End = n.Start
			for _, c := range children[i] {
				if e := recs[c].end; e.After(n.End) {
					n.End = e
				}
			}
		}
		// Clamp inside the parent interval so self times telescope.
		if !lo.IsZero() {
			if n.Start.Before(lo) {
				n.Start = lo
			}
			if n.End.After(hi) {
				n.End = hi
			}
			if n.End.Before(n.Start) {
				n.End = n.Start
			}
		}

		// Memo normalization: the canonical-first occurrence of a
		// (phase, memo key) owns the computation; later ones are bare
		// "shared" markers whatever worker actually ran the compute.
		shared := false
		if mk := recs[i].memoKey; mk != "" {
			gk := string(n.Phase) + "\x00" + mk
			if memoSeen[gk] {
				n.Memo = "shared"
				shared = true
			} else {
				memoSeen[gk] = true
				n.Memo = "first"
			}
		}
		if !shared {
			for _, c := range children[i] {
				n.Children = append(n.Children, walk(c, n.Path, n.Start, n.End))
			}
		}
		return n
	}
	for _, r := range rootIdx {
		tr.Roots = append(tr.Roots, walk(r, "", time.Time{}, time.Time{}))
	}
	return tr
}

// visit runs fn over the trace in canonical preorder, passing each node's
// depth.
func (tr *Trace) visit(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	for _, r := range tr.Roots {
		rec(r, 0)
	}
}

// Spans returns every node in canonical preorder.
func (tr *Trace) Spans() []*Node {
	var out []*Node
	tr.visit(func(n *Node, _ int) { out = append(out, n) })
	return out
}

// jsonlSpan is the canonical JSONL record for one span. It deliberately
// carries no timing: the JSONL export is the byte-identical-across-workers
// artifact.
type jsonlSpan struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Phase  Phase  `json:"phase"`
	Key    string `json:"key,omitempty"`
	Path   string `json:"path"`
	Memo   string `json:"memo,omitempty"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// WriteJSONL renders the canonical JSONL export: one span per line in
// canonical preorder, no timings, byte-identical across worker counts.
func (tr *Trace) WriteJSONL(w *bytes.Buffer) {
	enc := json.NewEncoder(w)
	var rec func(n *Node, parent string)
	rec = func(n *Node, parent string) {
		enc.Encode(jsonlSpan{
			ID: n.ID, Parent: parent, Phase: n.Phase, Key: n.Key,
			Path: n.Path, Memo: n.Memo, Attrs: n.Attrs,
		})
		for _, c := range n.Children {
			rec(c, n.ID)
		}
	}
	for _, r := range tr.Roots {
		rec(r, "")
	}
}

// JSONL returns WriteJSONL's output as bytes.
func (tr *Trace) JSONL() []byte {
	var b bytes.Buffer
	tr.WriteJSONL(&b)
	return b.Bytes()
}

// MarshalJSON renders the canonical trace as a single JSON document —
// {"fingerprint": ..., "spans": [...]} with the same records as the JSONL
// export, in canonical preorder and with no timings, so the document is
// byte-identical across worker counts. This is the form the planning
// service embeds in traced PlanResponses.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	spans := []jsonlSpan{}
	var rec func(n *Node, parent string)
	rec = func(n *Node, parent string) {
		spans = append(spans, jsonlSpan{
			ID: n.ID, Parent: parent, Phase: n.Phase, Key: n.Key,
			Path: n.Path, Memo: n.Memo, Attrs: n.Attrs,
		})
		for _, c := range n.Children {
			rec(c, n.ID)
		}
	}
	for _, r := range tr.Roots {
		rec(r, "")
	}
	return json.Marshal(struct {
		Fingerprint string      `json:"fingerprint"`
		Spans       []jsonlSpan `json:"spans"`
	}{tr.Fingerprint, spans})
}

// chromeEvent is one Chrome trace-event (same shape internal/viz emits for
// schedule timelines, kept local so telemetry stays dependency-free).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeArgs renders a node's exported args map.
func chromeArgs(n *Node) map[string]string {
	args := map[string]string{"id": n.ID, "path": n.Path}
	if n.Memo != "" {
		args["memo"] = n.Memo
	}
	for _, a := range n.Attrs {
		args[a.K] = a.V
	}
	return args
}

// chromeName renders a node's display name.
func chromeName(n *Node) string {
	if n.Key != "" {
		return string(n.Phase) + " " + n.Key
	}
	return string(n.Phase)
}

// ChromeTrace renders the canonical Chrome trace of the search: spans
// become complete ("X") events whose ts is the span's canonical preorder
// index and whose dur is its subtree size, with depth as the tid — a
// structural flame graph with no wall-clock in it, byte-identical across
// worker counts. Load in chrome://tracing or Perfetto.
func (tr *Trace) ChromeTrace() []byte {
	var events []chromeEvent
	idx := 0
	var rec func(n *Node, depth int) int
	rec = func(n *Node, depth int) int {
		my := idx
		idx++
		size := 1
		for _, c := range n.Children {
			size += rec(c, depth+1)
		}
		events = append(events, chromeEvent{
			Name: chromeName(n), Cat: string(n.Phase), Ph: "X",
			Ts: float64(my), Dur: float64(size),
			PID: 1, TID: depth, Args: chromeArgs(n),
		})
		return size
	}
	for _, r := range tr.Roots {
		rec(r, 0)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	return marshalChrome(events)
}

// ChromeTraceMeasured renders the measured Chrome trace: real recorded
// times in microseconds relative to the earliest span, greedily packed
// into lanes (tid) so overlapping worker activity stays readable. This is
// the wall-clock view — NOT byte-identical across runs.
func (tr *Trace) ChromeTraceMeasured() []byte {
	spans := tr.Spans()
	if len(spans) == 0 {
		return marshalChrome(nil)
	}
	epoch := spans[0].Start
	for _, n := range spans {
		if n.Start.Before(epoch) {
			epoch = n.Start
		}
	}
	// Sort by start for lane packing; keep canonical order on ties.
	order := make([]*Node, len(spans))
	copy(order, spans)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Start.Before(order[j].Start) })
	var laneEnd []time.Time
	events := make([]chromeEvent, 0, len(order))
	for _, n := range order {
		lane := -1
		for l, e := range laneEnd {
			if !n.Start.Before(e) {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, time.Time{})
		}
		laneEnd[lane] = n.End
		events = append(events, chromeEvent{
			Name: chromeName(n), Cat: string(n.Phase), Ph: "X",
			Ts:  float64(n.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur: float64(n.Dur()) / float64(time.Microsecond),
			PID: 1, TID: lane, Args: chromeArgs(n),
		})
	}
	return marshalChrome(events)
}

// marshalChrome renders the trace-event JSON envelope.
func marshalChrome(events []chromeEvent) []byte {
	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[")
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		raw, _ := json.Marshal(ev)
		b.Write(raw)
	}
	b.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	return b.Bytes()
}

// PhaseSelf is one row of a per-phase self-time summary.
type PhaseSelf struct {
	// Phase is the span phase the row aggregates.
	Phase Phase
	// Count is the number of surviving spans of that phase.
	Count int
	// Self is the summed self time across them.
	Self time.Duration
}

// PhaseSummary aggregates self time by phase, in canonical phase order.
// Because self times telescope, the Self column sums exactly to the root
// span's duration — the identity the acceptance criteria pins to
// wall-clock.
func (tr *Trace) PhaseSummary() []PhaseSelf {
	agg := map[Phase]*PhaseSelf{}
	tr.visit(func(n *Node, _ int) {
		// Shared memo spans keep their (reuse) self time; it is part of
		// the telescoped total like any other span.
		row := agg[n.Phase]
		if row == nil {
			row = &PhaseSelf{Phase: n.Phase}
			agg[n.Phase] = row
		}
		row.Count++
		row.Self += n.SelfDur()
	})
	var out []PhaseSelf
	for _, row := range agg {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := phaseRank(out[i].Phase), phaseRank(out[j].Phase)
		if ri != rj {
			return ri < rj
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// WriteTree renders a human-readable canonical tree: one span per line,
// indented by depth, with memo tags and result attrs but no timings —
// byte-identical across worker counts.
func (tr *Trace) WriteTree(w *bytes.Buffer) {
	tr.visit(func(n *Node, depth int) {
		w.WriteString(strings.Repeat("  ", depth))
		w.WriteString(string(n.Phase))
		if n.Key != "" {
			fmt.Fprintf(w, "[%s]", n.Key)
		}
		if n.Memo != "" {
			fmt.Fprintf(w, " memo=%s", n.Memo)
		}
		for _, a := range n.Attrs {
			fmt.Fprintf(w, " %s=%s", a.K, a.V)
		}
		w.WriteByte('\n')
	})
}

// Tree returns WriteTree's output as a string.
func (tr *Trace) Tree() string {
	var b bytes.Buffer
	tr.WriteTree(&b)
	return b.String()
}
