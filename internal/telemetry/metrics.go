package telemetry

// SearchMetrics bundles the search-side series of a Registry: what the
// tuner grid search, the graph tuner and the simulator engines did,
// exposed as first-class Prometheus series instead of the ad-hoc
// SearchStats/CacheStats structs the callers used to copy around. The
// tuner increments the deterministic counters from its canonical merge
// loop (so the totals match the sequential search bit for bit) and folds
// memo and simulation counts in as post-search deltas.
//
// A nil *SearchMetrics — or one built from a nil Registry — no-ops on
// every field, so instrumented code updates unconditionally.
type SearchMetrics struct {
	// PointsExplored counts grid points fully evaluated (simulated or
	// graph-optimized); PointsOOM, PointsPruned, PointsBoundPruned and
	// PointsMemPruned count points rejected by memory fit, structural
	// infeasibility, the admissible throughput upper bound, and the
	// branch-and-bound memory lower bound respectively; PointsImproved
	// counts evaluations that improved the incumbent.
	PointsExplored, PointsOOM, PointsPruned, PointsBoundPruned, PointsMemPruned, PointsImproved *Counter
	// BuildHits/BuildMisses and GraphHits/GraphMisses count the schedule
	// and graph-result memo caches.
	BuildHits, BuildMisses, GraphHits, GraphMisses *Counter
	// Sims counts simulator executions across every engine (direct
	// evaluations, graph inner loops and robustness runs).
	Sims *Counter
	// GraphRounds counts simulator-guided prepose rounds across graph
	// runs.
	GraphRounds *Counter
	// RobustRuns counts robustness ensemble simulations (healthy and
	// faulted).
	RobustRuns *Counter
	// Searches counts tuner grid searches started.
	Searches *Counter
	// SearchSeconds is the per-search wall-clock histogram.
	SearchSeconds *Histogram
	// FleetWaves counts fleet dispatch rounds; FleetBroadcasts the waves
	// that shipped a global incumbent to the workers.
	FleetWaves, FleetBroadcasts *Counter
	// FleetDispatched counts shard batches handed to the dispatcher and
	// FleetFallbacks the batches the coordinator evaluated locally after a
	// dispatch failure.
	FleetDispatched, FleetFallbacks *Counter
	// FleetRemoteExplored, FleetRemoteSkipped and FleetRemoteInfeasible
	// count shard-point outcomes by status; FleetForced counts skipped
	// outcomes the merge had to re-evaluate locally (protocol violations).
	FleetRemoteExplored, FleetRemoteSkipped, FleetRemoteInfeasible, FleetForced *Counter
}

// AddSims records n simulator executions. Safe on nil (the graph and
// robustness layers call it with whatever Tracer.Metrics returned).
func (m *SearchMetrics) AddSims(n int64) {
	if m != nil {
		m.Sims.Add(n)
	}
}

// AddGraphRounds records n prepose rounds. Safe on nil.
func (m *SearchMetrics) AddGraphRounds(n int64) {
	if m != nil {
		m.GraphRounds.Add(n)
	}
}

// AddRobustRuns records n robustness simulations. Safe on nil.
func (m *SearchMetrics) AddRobustRuns(n int64) {
	if m != nil {
		m.RobustRuns.Add(n)
	}
}

// NewSearchMetrics registers the search series on r and returns the
// handles. Safe on a nil registry: every handle is nil and no-ops.
func NewSearchMetrics(r *Registry) *SearchMetrics {
	return &SearchMetrics{
		PointsExplored:    r.LabeledCounter("mario_search_points_total", "Grid points by outcome.", "outcome", "explored"),
		PointsOOM:         r.LabeledCounter("mario_search_points_total", "Grid points by outcome.", "outcome", "oom"),
		PointsPruned:      r.LabeledCounter("mario_search_points_total", "Grid points by outcome.", "outcome", "infeasible"),
		PointsBoundPruned: r.LabeledCounter("mario_search_points_total", "Grid points by outcome.", "outcome", "bound_pruned"),
		PointsMemPruned:   r.LabeledCounter("mario_search_points_total", "Grid points by outcome.", "outcome", "memory_pruned"),
		PointsImproved:    r.Counter("mario_search_improved_total", "Evaluations that improved the incumbent."),
		BuildHits:         r.LabeledCounter("mario_search_build_memo_total", "Schedule-build memo lookups.", "result", "hit"),
		BuildMisses:       r.LabeledCounter("mario_search_build_memo_total", "Schedule-build memo lookups.", "result", "miss"),
		GraphHits:         r.LabeledCounter("mario_search_graph_memo_total", "Graph-result memo lookups.", "result", "hit"),
		GraphMisses:       r.LabeledCounter("mario_search_graph_memo_total", "Graph-result memo lookups.", "result", "miss"),
		Sims:              r.Counter("mario_search_sims_total", "Simulator executions across all engines."),
		GraphRounds:       r.Counter("mario_search_graph_rounds_total", "Simulator-guided prepose rounds."),
		RobustRuns:        r.Counter("mario_search_robust_runs_total", "Robustness ensemble simulations."),
		Searches:          r.Counter("mario_search_runs_total", "Tuner grid searches started."),
		SearchSeconds:     r.Histogram("mario_search_seconds", "Per-search wall-clock.", LatencyBounds),

		FleetWaves:            r.Counter("mario_search_fleet_waves_total", "Fleet dispatch rounds."),
		FleetBroadcasts:       r.Counter("mario_search_fleet_broadcasts_total", "Waves that shipped a global incumbent."),
		FleetDispatched:       r.Counter("mario_search_fleet_shards_total", "Shard batches dispatched."),
		FleetFallbacks:        r.Counter("mario_search_fleet_fallbacks_total", "Shard batches evaluated locally after a dispatch failure."),
		FleetRemoteExplored:   r.LabeledCounter("mario_search_fleet_points_total", "Dispatched shard points by outcome.", "outcome", "explored"),
		FleetRemoteSkipped:    r.LabeledCounter("mario_search_fleet_points_total", "Dispatched shard points by outcome.", "outcome", "skipped"),
		FleetRemoteInfeasible: r.LabeledCounter("mario_search_fleet_points_total", "Dispatched shard points by outcome.", "outcome", "infeasible"),
		FleetForced:           r.Counter("mario_search_fleet_forced_total", "Unconfirmed worker skips re-evaluated by the coordinator."),
	}
}
