package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a Tracer clock ticking in fixed steps from a fixed
// epoch, making measured exports deterministic in tests.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(1700000000, 0).UTC()
	return func() time.Time {
		cur := t
		t = t.Add(step)
		return cur
	}
}

// TestDisabledSpansNoOp drives the whole span API through the zero Span
// and a nil Tracer: nothing may panic and nothing may be recorded.
func TestDisabledSpansNoOp(t *testing.T) {
	var sp Span
	child := sp.Child(PhasePoint, "k")
	child.SetStr("a", "b")
	child.SetInt("n", 1)
	child.SetFloat("x", 1.5)
	child.SetBool("ok", true)
	child.Memo("m")
	child.End()
	child.AttachTo(sp)
	child.Discard()
	child.RetainChildren(PhaseBuild)
	if sp.Live() || child.Live() {
		t.Error("zero spans report Live")
	}
	if sp.Tracer() != nil {
		t.Error("zero span has a tracer")
	}

	var tr *Tracer
	root := tr.Root(PhaseOptimize, "")
	if root.Live() {
		t.Error("nil tracer produced a live span")
	}
	if snap := tr.Snapshot(); len(snap.Roots) != 0 {
		t.Error("nil tracer snapshot has roots")
	}

	var m *SearchMetrics
	m.AddSims(1)
	m.AddGraphRounds(1)
	m.AddRobustRuns(1)
}

// TestSnapshotDiscardAndRetain checks the pruning semantics Snapshot
// applies: discarded subtrees vanish, RetainChildren keeps only the listed
// phases, and detached spans that were never attached are dropped.
func TestSnapshotDiscardAndRetain(t *testing.T) {
	tr := New("fp")
	tr.Clock = fakeClock(time.Millisecond)
	root := tr.Root(PhaseOptimize, "")
	search := root.Child(PhaseSearch, "")

	// A point whose speculative graph/sim work is trimmed by a bound prune.
	p1 := tr.Detached(PhasePoint, "0001")
	b1 := p1.Child(PhaseBuild, "")
	b1.End()
	g1 := p1.Child(PhaseGraph, "")
	g1.Child(PhaseRound, "01").End()
	g1.End()
	p1.End()
	p1.RetainChildren(PhaseBuild, PhaseBound)
	p1.AttachTo(search)

	// A point discarded wholesale (stale speculative evaluation).
	p2 := tr.Detached(PhasePoint, "0002")
	p2.Child(PhaseBuild, "").End()
	p2.End()
	p2.Discard()

	// A detached point never attached: dropped at snapshot.
	p3 := tr.Detached(PhasePoint, "0003")
	p3.End()

	search.End()
	root.End()

	snap := tr.Snapshot()
	tree := snap.Tree()
	want := "optimize\n  search\n    point[0001]\n      build\n"
	if tree != want {
		t.Errorf("tree:\n%s\nwant:\n%s", tree, want)
	}
}

// TestSnapshotMemoDonation reproduces the parallel-scheduling accident memo
// normalization exists for: the span that computed a memoized result (and
// holds its child spans) is canonically later than another group member —
// or even discarded — yet the canonical-first survivor must end up owning
// the children, tagged memo=first.
func TestSnapshotMemoDonation(t *testing.T) {
	tr := New("fp")
	tr.Clock = fakeClock(time.Millisecond)
	root := tr.Root(PhaseOptimize, "")
	search := root.Child(PhaseSearch, "")

	// Worker A evaluates point 0002 first and runs the compute under its
	// graph span; the span is later discarded (stale best).
	pa := tr.Detached(PhasePoint, "0002")
	ga := pa.Child(PhaseGraph, "")
	ga.Memo("shared-key")
	ga.Child(PhaseRound, "01").End()
	ga.Child(PhaseRound, "02").End()
	ga.End()
	pa.End()
	pa.Discard()

	// Worker B's canonically-first point reuses the memo: bare span.
	pb := tr.Detached(PhasePoint, "0001")
	gb := pb.Child(PhaseGraph, "")
	gb.Memo("shared-key")
	gb.End()
	pb.End()
	pb.AttachTo(search)

	// Worker A re-evaluates 0002 (fresh flight), also a memo hit.
	pc := tr.Detached(PhasePoint, "0002")
	gc := pc.Child(PhaseGraph, "")
	gc.Memo("shared-key")
	gc.End()
	pc.End()
	pc.AttachTo(search)

	search.End()
	root.End()

	tree := tr.Snapshot().Tree()
	want := strings.Join([]string{
		"optimize",
		"  search",
		"    point[0001]",
		"      graph memo=first",
		"        round[01]",
		"        round[02]",
		"    point[0002]",
		"      graph memo=shared",
		"",
	}, "\n")
	if tree != want {
		t.Errorf("memo donation tree:\n%s\nwant:\n%s", tree, want)
	}
}

// TestSnapshotTelescoping checks the self-time identity on a fake clock:
// child intervals are clamped into parents and Σ self == root duration.
func TestSnapshotTelescoping(t *testing.T) {
	tr := New("fp")
	tr.Clock = fakeClock(time.Second)
	root := tr.Root(PhaseOptimize, "")
	s1 := root.Child(PhaseSearch, "")
	p1 := s1.Child(PhasePoint, "0001")
	p1.End()
	s1.End()
	root.End()

	snap := tr.Snapshot()
	var selfSum time.Duration
	for _, row := range snap.PhaseSummary() {
		selfSum += row.Self
	}
	if rootDur := snap.Roots[0].Dur(); selfSum != rootDur {
		t.Errorf("self sum %v != root duration %v", selfSum, rootDur)
	}
}

// TestSpanIDsDeterministic pins the ID derivation: IDs depend only on
// (fingerprint, canonical path), so the same search traced twice — or under
// a different worker count — yields the same IDs, and a different
// fingerprint yields different ones.
func TestSpanIDsDeterministic(t *testing.T) {
	build := func(fp string) *Trace {
		tr := New(fp)
		tr.Clock = fakeClock(time.Millisecond)
		root := tr.Root(PhaseOptimize, "")
		root.Child(PhaseSearch, "").End()
		root.End()
		return tr.Snapshot()
	}
	a, b, c := build("fp"), build("fp"), build("other")
	if a.Roots[0].ID != b.Roots[0].ID {
		t.Errorf("same fingerprint, different IDs: %s vs %s", a.Roots[0].ID, b.Roots[0].ID)
	}
	if a.Roots[0].ID == c.Roots[0].ID {
		t.Error("different fingerprints produced the same span ID")
	}
	if got := len(a.Roots[0].ID); got != 12 {
		t.Errorf("span ID length %d, want 12", got)
	}
}

// TestRegistry exercises counters, gauges, labelled series and histograms,
// including the nil-registry no-op contract.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "Things.")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if again := r.Counter("t_total", "Things."); again != c {
		t.Error("re-registration returned a different counter instance")
	}
	g := r.Gauge("t_gauge", "Level.")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}
	lc := r.LabeledCounter("t_labeled_total", "Split things.", "kind", "a")
	lc.Inc()
	r.LabeledCounter("t_labeled_total", "Split things.", "kind", "b").Add(4)
	h := r.Histogram("t_seconds", "Latency.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if h.Sum() != 105.5 {
		t.Errorf("histogram sum = %g, want 105.5", h.Sum())
	}

	var buf bytes.Buffer
	r.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP t_total Things.\n# TYPE t_total counter\nt_total 3\n",
		"t_gauge 3\n",
		"t_labeled_total{kind=\"a\"} 1\n",
		"t_labeled_total{kind=\"b\"} 4\n",
		"t_seconds_bucket{le=\"1\"} 1\n",
		"t_seconds_bucket{le=\"10\"} 2\n",
		"t_seconds_bucket{le=\"+Inf\"} 3\n",
		"t_seconds_sum 105.5\n",
		"t_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm missing %q in:\n%s", want, out)
		}
	}
	// Names must render in lexical order.
	if strings.Index(out, "t_gauge") > strings.Index(out, "t_labeled_total") ||
		strings.Index(out, "t_labeled_total") > strings.Index(out, "t_seconds") {
		t.Error("metric families not in lexical order")
	}

	var nilReg *Registry
	nilReg.Counter("x", "").Inc()
	nilReg.Gauge("x", "").Set(1)
	nilReg.Histogram("x", "", LatencyBounds).Observe(1)
	var nilBuf bytes.Buffer
	nilReg.WriteProm(&nilBuf)
	if nilBuf.Len() != 0 {
		t.Error("nil registry rendered output")
	}
}

// TestRegistryShapeConflict pins the misuse guard: re-registering a name
// as a different instrument kind panics.
func TestRegistryShapeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dup", "")
}

// TestFlightRecorder checks ring overwrite, slow-log ordering and the text
// dump (including the nil no-op).
func TestFlightRecorder(t *testing.T) {
	fr := NewFlightRecorder(2, 2)
	mk := func(fp string, d time.Duration) FlightRecord {
		return FlightRecord{Fingerprint: fp, Outcome: "completed", Elapsed: d}
	}
	fr.Record(mk("aaaaaaaaaaaaaaaa", 3*time.Second))
	fr.Record(mk("bbbbbbbbbbbbbbbb", 1*time.Second))
	fr.Record(mk("cccccccccccccccc", 2*time.Second))

	recent := fr.Recent()
	if len(recent) != 2 || recent[0].Fingerprint[0] != 'c' || recent[1].Fingerprint[0] != 'b' {
		t.Errorf("ring contents wrong: %+v", recent)
	}
	if recent[0].Seq != 3 {
		t.Errorf("newest seq = %d, want 3", recent[0].Seq)
	}
	slow := fr.Slowest()
	if len(slow) != 2 || slow[0].Elapsed != 3*time.Second || slow[1].Elapsed != 2*time.Second {
		t.Errorf("slow log wrong: %+v", slow)
	}

	dump := string(fr.Dump())
	for _, want := range []string{"2 recent request(s)", "aaaaaaaaaaaa", "(no trace)", "slow log: 2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q in:\n%s", want, dump)
		}
	}

	var nilRec *FlightRecorder
	nilRec.Record(mk("x", time.Second))
	if nilRec.Recent() != nil || nilRec.Slowest() != nil {
		t.Error("nil recorder returned records")
	}
	if !strings.Contains(string(nilRec.Dump()), "disabled") {
		t.Error("nil recorder dump misses the disabled notice")
	}
}
