package telemetry

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenTrace builds one representative search trace on a fake clock: a
// root optimize span, a search with three points (explored with graph
// rounds + sim, memo-hit, bound-pruned with trimmed children), and a
// robustness ensemble. Every export format renders from this one tree so
// the goldens stay mutually consistent.
func goldenTrace() *Trace {
	tr := New("deadbeefdeadbeefdeadbeefdeadbeef")
	tr.Clock = fakeClock(time.Millisecond)

	root := tr.Root(PhaseOptimize, "")
	root.SetStr("model", "demo")
	search := root.Child(PhaseSearch, "")
	search.SetInt("points", 3)

	// Point 0: fully evaluated, with graph rounds and a simulation.
	p0 := tr.Detached(PhasePoint, "0000 X-4-2(mario)")
	b0 := p0.Child(PhaseBuild, "")
	b0.SetInt("stages", 4)
	b0.End()
	g0 := p0.Child(PhaseGraph, "")
	g0.Memo("g0")
	r0 := g0.Child(PhaseRound, "01")
	r0.Child(PhaseSim, "").End()
	r0.End()
	r1 := g0.Child(PhaseRound, "02")
	r1.Child(PhaseSim, "").End()
	r1.End()
	g0.End()
	s0 := p0.Child(PhaseSim, "")
	s0.SetFloat("throughput", 12.5)
	s0.End()
	p0.SetBool("improved", true)
	p0.End()
	p0.AttachTo(search)

	// Point 1: identical graph work resolved from the memo.
	p1 := tr.Detached(PhasePoint, "0001 X-2-4(mario)")
	p1.Child(PhaseBuild, "").End()
	g1 := p1.Child(PhaseGraph, "")
	g1.Memo("g0")
	g1.End()
	p1.Child(PhaseSim, "").End()
	p1.End()
	p1.AttachTo(search)

	// Point 2: rejected by the admissible bound; speculative children
	// beyond build/bound are trimmed.
	p2 := tr.Detached(PhasePoint, "0002 X-8-1(base)")
	p2.Child(PhaseBuild, "").End()
	bd := p2.Child(PhaseBound, "")
	bd.SetStr("decision", "pruned")
	bd.End()
	p2.Child(PhaseSim, "").End()
	p2.End()
	p2.RetainChildren(PhaseBuild, PhaseBound)
	p2.AttachTo(search)

	search.End()

	rb := root.Child(PhaseRobust, "")
	f0 := rb.Child(PhaseFault, "healthy")
	f0.Child(PhaseSim, "").End()
	f0.End()
	f1 := rb.Child(PhaseFault, "straggler")
	f1.Child(PhaseSim, "").End()
	f1.End()
	rb.End()
	root.End()

	return tr.Snapshot()
}

// goldenRegistry populates the full search + latency series with fixed
// values matching the goldenTrace storyline.
func goldenRegistry() *Registry {
	r := NewRegistry()
	m := NewSearchMetrics(r)
	m.Searches.Inc()
	m.PointsExplored.Add(2)
	m.PointsBoundPruned.Inc()
	m.PointsMemPruned.Inc()
	m.PointsImproved.Inc()
	m.BuildMisses.Add(3)
	m.GraphHits.Inc()
	m.GraphMisses.Inc()
	m.AddSims(6)
	m.AddGraphRounds(2)
	m.AddRobustRuns(2)
	m.SearchSeconds.Observe(0.042)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with go test ./internal/telemetry -run TestGolden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden; inspect and regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenExports pins every render of the canonical trace — JSONL,
// Chrome trace (canonical and measured), tree, phase summary — and the
// Prometheus exposition of a populated registry, byte for byte.
func TestGoldenExports(t *testing.T) {
	snap := goldenTrace()
	checkGolden(t, "trace_jsonl", snap.JSONL())
	checkGolden(t, "trace_chrome", snap.ChromeTrace())
	checkGolden(t, "trace_chrome_measured", snap.ChromeTraceMeasured())
	checkGolden(t, "trace_tree", []byte(snap.Tree()))

	var sum bytes.Buffer
	for _, row := range snap.PhaseSummary() {
		fmt.Fprintf(&sum, "%-12s spans=%d self=%s\n", row.Phase, row.Count, row.Self)
	}
	checkGolden(t, "trace_summary", sum.Bytes())

	var prom bytes.Buffer
	goldenRegistry().WriteProm(&prom)
	checkGolden(t, "metrics_prom", prom.Bytes())
}
