package pipeline

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildSkeleton1F1B makes a tiny compute-only schedule for InsertComm tests.
func buildSkeleton1F1B(d, n int) *Schedule {
	s := &Schedule{
		Scheme:    Scheme1F1B,
		Placement: NewLinearPlacement(d),
		Micros:    n,
		Lists:     make([][]Instr, d),
	}
	for dev := 0; dev < d; dev++ {
		for m := 0; m < n; m++ {
			s.Lists[dev] = append(s.Lists[dev], Instr{Kind: Forward, Micro: m, Stage: dev})
		}
		for m := n - 1; m >= 0; m-- {
			s.Lists[dev] = append(s.Lists[dev], Instr{Kind: Backward, Micro: m, Stage: dev})
		}
	}
	return s
}

// TestInsertCommStructure: comm instructions appear in the canonical slots
// and only across device boundaries, AR/OS are appended, and the result
// validates.
func TestInsertCommStructure(t *testing.T) {
	s := buildSkeleton1F1B(3, 2)
	InsertComm(s)
	if err := Validate(s); err != nil {
		t.Fatalf("invalid after InsertComm: %v", err)
	}
	// Device 0: no receives of activations (first stage), sends only.
	for _, in := range s.Lists[0] {
		if in.Kind == RecvAct || in.Kind == SendGrad {
			t.Errorf("dev0 should not %s", in)
		}
	}
	// Device 2 (last): no SendAct/RecvGrad.
	for _, in := range s.Lists[2] {
		if in.Kind == SendAct || in.Kind == RecvGrad {
			t.Errorf("dev2 should not %s", in)
		}
	}
	// Every list ends with AR then OS.
	for d, list := range s.Lists {
		if list[len(list)-2].Kind != AllReduce || list[len(list)-1].Kind != OptimizerStep {
			t.Errorf("dev%d does not end with AR, OS", d)
		}
	}
}

// TestInsertCommSingleDevice: a one-device pipeline needs no communication.
func TestInsertCommSingleDevice(t *testing.T) {
	s := buildSkeleton1F1B(1, 2)
	InsertComm(s)
	for _, in := range s.Lists[0] {
		if in.Kind.IsComm() {
			t.Errorf("single device got %s", in)
		}
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
}

// TestMatchKeyInverse: MatchKey is an involution on every comm instruction.
func TestMatchKeyInverse(t *testing.T) {
	s := buildSkeleton1F1B(4, 2)
	InsertComm(s)
	idx := s.Index()
	for d, list := range s.Lists {
		for _, in := range list {
			if !in.Kind.IsComm() {
				continue
			}
			mk := s.MatchKey(in)
			loc, ok := idx[mk]
			if !ok {
				t.Fatalf("dev%d: %s has no match", d, in)
			}
			other := s.Lists[loc[0]][loc[1]]
			back := s.MatchKey(other)
			if back != in.Key() {
				t.Errorf("MatchKey not involutive: %s -> %v -> %v", in, mk, back)
			}
		}
	}
}

// TestMatchKeyPanicsOnCompute guards the contract.
func TestMatchKeyPanicsOnCompute(t *testing.T) {
	s := buildSkeleton1F1B(2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.MatchKey(Instr{Kind: Forward})
}

// TestPackUniqueness: distinct keys in realistic ranges pack to distinct
// integers.
func TestPackUniqueness(t *testing.T) {
	f := func(m1, m2 uint16, s1, s2 uint8, k1, k2 uint8) bool {
		a := Key{Kind: Kind(k1 % uint8(numKinds)), Micro: int(m1), Part: int(s1 % 4), Stage: int(s2)}
		b := Key{Kind: Kind(k2 % uint8(numKinds)), Micro: int(m2), Part: int(s2 % 4), Stage: int(s1)}
		if a == b {
			return a.Pack() == b.Pack()
		}
		return a.Pack() != b.Pack()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// NoMicro packs distinctly from micro 0.
	a := Key{Kind: AllReduce, Micro: NoMicro}
	b := Key{Kind: AllReduce, Micro: 0}
	if a.Pack() == b.Pack() {
		t.Error("NoMicro collides with micro 0")
	}
}

// TestScheduleString renders device rows.
func TestScheduleString(t *testing.T) {
	s := buildSkeleton1F1B(2, 1)
	out := s.String()
	if !strings.Contains(out, "dev0:") || !strings.Contains(out, "FW0^0") {
		t.Errorf("String output unexpected:\n%s", out)
	}
}

// TestPlacementAccessors exercises the trivial interface methods directly.
func TestPlacementAccessors(t *testing.T) {
	lin := NewLinearPlacement(4)
	if lin.NumParts() != 1 || lin.WeightReplicas() != 1 || lin.NumStages() != 4 {
		t.Error("linear accessors wrong")
	}
	bid := NewBidirPlacement(4)
	if bid.NumParts() != 2 || bid.WeightReplicas() != 2 || bid.NumDevices() != 4 {
		t.Error("bidir accessors wrong")
	}
	il := NewInterleavedPlacement(4, 3)
	if il.NumParts() != 3 || il.WeightReplicas() != 1 || il.NumStages() != 12 || il.NumDevices() != 4 {
		t.Error("interleaved accessors wrong")
	}
}

// TestIsBackwardLike covers the split-backward classifier.
func TestIsBackwardLike(t *testing.T) {
	for _, k := range []Kind{Backward, BackwardInput, BackwardWeight} {
		if !k.IsBackwardLike() {
			t.Errorf("%s should be backward-like", k)
		}
	}
	if Forward.IsBackwardLike() || Recompute.IsBackwardLike() {
		t.Error("forward kinds misclassified")
	}
}

// TestSplitKindNames: the new kinds have stable mnemonics.
func TestSplitKindNames(t *testing.T) {
	if BackwardInput.String() != "BI" || BackwardWeight.String() != "WG" {
		t.Errorf("split kind names: %s, %s", BackwardInput, BackwardWeight)
	}
	if !BackwardInput.IsCompute() || !BackwardWeight.IsCompute() {
		t.Error("split kinds should be compute")
	}
}
