package pipeline

// InsertComm expands a compute-only skeleton (Forward/Backward instructions)
// into a complete instruction list by inserting the auxiliary communication
// instructions of Table 3:
//
//   - RecvAct  immediately before each Forward whose stage has a predecessor
//     on another device,
//   - SendAct  immediately after each Forward whose stage has a successor on
//     another device,
//   - RecvGrad immediately before each Backward (or BackwardInput, when the
//     backward is split) whose stage has a successor on another device,
//   - SendGrad immediately after each Backward (or BackwardInput) whose stage
//     has a predecessor on another device,
//
// and appending the cool-down collective instructions (AllReduce for DP,
// OptimizerStep) to every device.
//
// An activation transfer across the stage boundary s→s+1 is represented by
// the pair SendAct{Stage: s} on the producer and RecvAct{Stage: s+1} on the
// consumer; a gradient transfer across s+1→s by SendGrad{Stage: s+1} and
// RecvGrad{Stage: s}. Matching is therefore by (Micro, Stage) alone and is
// independent of partition ids, which may change across chunk boundaries in
// interleaved schedules.
func InsertComm(s *Schedule) {
	S := s.NumStages()
	for d, list := range s.Lists {
		out := make([]Instr, 0, len(list)*2+2)
		for _, in := range list {
			switch in.Kind {
			case Forward, CkptForward:
				if in.Stage > 0 && crossesDevice(s, in.Part, in.Stage-1, in.Stage, d) {
					out = append(out, Instr{Kind: RecvAct, Micro: in.Micro, Part: in.Part, Stage: in.Stage})
				}
				out = append(out, in)
				if in.Stage < S-1 && crossesDevice(s, in.Part, in.Stage, in.Stage+1, d) {
					out = append(out, Instr{Kind: SendAct, Micro: in.Micro, Part: in.Part, Stage: in.Stage})
				}
			case Backward, BackwardInput:
				// The input-gradient half anchors the gradient transfers when
				// the backward is split; the weight-gradient half has no
				// cross-device dependents and passes through unchanged.
				if in.Stage < S-1 && crossesDevice(s, in.Part, in.Stage, in.Stage+1, d) {
					out = append(out, Instr{Kind: RecvGrad, Micro: in.Micro, Part: in.Part, Stage: in.Stage})
				}
				out = append(out, in)
				if in.Stage > 0 && crossesDevice(s, in.Part, in.Stage-1, in.Stage, d) {
					out = append(out, Instr{Kind: SendGrad, Micro: in.Micro, Part: in.Part, Stage: in.Stage})
				}
			default:
				out = append(out, in)
			}
		}
		out = append(out,
			Instr{Kind: AllReduce, Micro: NoMicro},
			Instr{Kind: OptimizerStep, Micro: NoMicro},
		)
		s.SetList(d, out)
	}
}

// crossesDevice reports whether the boundary between loStage and hiStage
// (hiStage = loStage+1) is a cross-device edge as seen from device d holding
// one of its endpoints. part is the partition id of the endpoint on d.
func crossesDevice(s *Schedule, part, loStage, hiStage, d int) bool {
	other := hiStage
	if s.deviceOfStage(part, loStage) == d {
		// d holds the low endpoint.
		return s.deviceOfStage(partOfStage(s, part, other), other) != d
	}
	return s.deviceOfStage(partOfStage(s, part, loStage), loStage) != d
}

// deviceOfStage resolves the device owning (part, stage) through the
// placement, resolving interleaved chunk ids from the stage when needed.
func (s *Schedule) deviceOfStage(part, stage int) int {
	return s.Placement.Device(part, stage)
}

// partOfStage returns the partition id the scheme assigns to the given
// stage, given that a neighbouring instruction carries partition id part.
// For interleaved placements the part is a function of the stage; for all
// other placements a micro-batch keeps its partition across stages.
func partOfStage(s *Schedule, part, stage int) int {
	if ip, ok := s.Placement.(InterleavedPlacement); ok {
		return ip.PartOfStage(stage)
	}
	return part
}

// PeerDevice returns, for a communication instruction on device d, the
// device on the other end of the transfer.
func (s *Schedule) PeerDevice(d int, in Instr) int {
	switch in.Kind {
	case SendAct: // producer at in.Stage, consumer at in.Stage+1
		return s.deviceOfStage(partOfStage(s, in.Part, in.Stage+1), in.Stage+1)
	case RecvAct: // consumer at in.Stage, producer at in.Stage-1
		return s.deviceOfStage(partOfStage(s, in.Part, in.Stage-1), in.Stage-1)
	case SendGrad: // producer at in.Stage, consumer at in.Stage-1
		return s.deviceOfStage(partOfStage(s, in.Part, in.Stage-1), in.Stage-1)
	case RecvGrad: // consumer at in.Stage, producer at in.Stage+1
		return s.deviceOfStage(partOfStage(s, in.Part, in.Stage+1), in.Stage+1)
	}
	return d
}

// MatchKey returns the key of the instruction on the other side of a
// communication pair: SA(m,s) ↔ RA(m,s+1) and SG(m,s) ↔ RG(m,s-1).
// It panics for non-communication instructions.
func (s *Schedule) MatchKey(in Instr) Key {
	switch in.Kind {
	case SendAct:
		return Key{Kind: RecvAct, Micro: in.Micro, Part: partOfStage(s, in.Part, in.Stage+1), Stage: in.Stage + 1}
	case RecvAct:
		return Key{Kind: SendAct, Micro: in.Micro, Part: partOfStage(s, in.Part, in.Stage-1), Stage: in.Stage - 1}
	case SendGrad:
		return Key{Kind: RecvGrad, Micro: in.Micro, Part: partOfStage(s, in.Part, in.Stage-1), Stage: in.Stage - 1}
	case RecvGrad:
		return Key{Kind: SendGrad, Micro: in.Micro, Part: partOfStage(s, in.Part, in.Stage+1), Stage: in.Stage + 1}
	}
	panic("pipeline: MatchKey on non-communication instruction " + in.String())
}
