package pipeline

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Forward: "FW", CkptForward: "CFW", Backward: "BW", Recompute: "RC",
		SendAct: "SA", RecvAct: "RA", SendGrad: "SG", RecvGrad: "RG",
		AllReduce: "AR", OptimizerStep: "OS",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindClassifiers(t *testing.T) {
	for _, k := range []Kind{Forward, CkptForward, Backward, Recompute, OptimizerStep} {
		if !k.IsCompute() {
			t.Errorf("%s should be compute", k)
		}
		if k.IsComm() {
			t.Errorf("%s should not be comm", k)
		}
	}
	for _, k := range []Kind{SendAct, RecvAct, SendGrad, RecvGrad} {
		if !k.IsComm() {
			t.Errorf("%s should be comm", k)
		}
		if k.IsCompute() {
			t.Errorf("%s should not be compute", k)
		}
	}
	if !Forward.IsForwardLike() || !CkptForward.IsForwardLike() || !Recompute.IsForwardLike() {
		t.Error("forward-like classification broken")
	}
	if Backward.IsForwardLike() {
		t.Error("Backward misclassified as forward-like")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Kind: Forward, Micro: 3, Part: 1, Stage: 2}
	if got, want := in.String(), "FW3^1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	ar := Instr{Kind: AllReduce, Micro: NoMicro}
	if got, want := ar.String(), "AR"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseScheme(t *testing.T) {
	for in, want := range map[string]Scheme{
		"V": Scheme1F1B, "1f1b": Scheme1F1B, "x": SchemeChimera,
		"Chimera": SchemeChimera, "W": SchemeInterleave, "interleave": SchemeInterleave,
		"gpipe": SchemeGPipe, " Hanayo ": SchemeHanayo,
	} {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme should reject unknown names")
	}
}

func TestShapes(t *testing.T) {
	if Scheme1F1B.Shape() != "V" || SchemeChimera.Shape() != "X" || SchemeInterleave.Shape() != "W" {
		t.Error("shape aliases broken")
	}
	if SchemeGPipe.Shape() != "GPipe" {
		t.Errorf("GPipe shape = %q", SchemeGPipe.Shape())
	}
}

// TestBidirPlacementProperty: for all even D and stages s, part 0 and part 1
// place stage s on mirrored devices, and each device owns exactly one stage
// per part.
func TestBidirPlacementProperty(t *testing.T) {
	f := func(dRaw uint8, sRaw uint8) bool {
		d := 2 * (int(dRaw)%16 + 1) // even, 2..32
		p := NewBidirPlacement(d)
		s := int(sRaw) % d
		return p.Device(0, s)+p.Device(1, s) == d-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInterleavedPlacementProperty: stage s lives on device s mod D with
// chunk s / D.
func TestInterleavedPlacementProperty(t *testing.T) {
	f := func(dRaw, vRaw, sRaw uint8) bool {
		d := int(dRaw)%16 + 1
		v := int(vRaw)%4 + 1
		p := NewInterleavedPlacement(d, v)
		s := int(sRaw) % p.NumStages()
		return p.Device(0, s) == s%d && p.PartOfStage(s) == s/d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacementPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"linear zero":   func() { NewLinearPlacement(0) },
		"bidir odd":     func() { NewBidirPlacement(3) },
		"interleave -1": func() { NewInterleavedPlacement(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCloneIsCopyOnWrite(t *testing.T) {
	s := &Schedule{
		Scheme:    Scheme1F1B,
		Placement: NewLinearPlacement(2),
		Micros:    1,
		Lists: [][]Instr{
			{{Kind: Forward}, {Kind: Backward}},
			{{Kind: Forward, Stage: 1}, {Kind: Backward, Stage: 1}},
		},
	}
	c := s.Clone()
	// Unmutated lists are shared storage.
	if &c.Lists[0][0] != &s.Lists[0][0] {
		t.Error("Clone copied a list eagerly; want shared storage until mutation")
	}
	// A mutation through MutableList copies first and never leaks back.
	l := c.MutableList(0)
	l[0].Kind = CkptForward
	if s.Lists[0][0].Kind != Forward {
		t.Error("MutableList mutation leaked into the parent schedule")
	}
	if c.Lists[0][0].Kind != CkptForward {
		t.Error("MutableList mutation not visible through the clone")
	}
	// The other device's list is still shared (copy was per-list).
	if &c.Lists[1][0] != &s.Lists[1][0] {
		t.Error("mutating one device's list copied another device's list")
	}
	// The parent, too, must copy before writing: it no longer owns its lists.
	pl := s.MutableList(1)
	pl[0].Kind = CkptForward
	if c.Lists[1][0].Kind != Forward {
		t.Error("parent mutation after Clone leaked into the clone")
	}
	// SetList hands ownership to the schedule; a later MutableList call must
	// not copy again.
	owned := []Instr{{Kind: Forward, Stage: 1}}
	c.SetList(1, owned)
	if got := c.MutableList(1); &got[0] != &owned[0] {
		t.Error("MutableList copied a list the schedule already owns")
	}
}

func TestFindAndIndex(t *testing.T) {
	s := &Schedule{
		Scheme:    Scheme1F1B,
		Placement: NewLinearPlacement(2),
		Micros:    1,
		Lists: [][]Instr{
			{{Kind: Forward, Micro: 0, Stage: 0}},
			{{Kind: Forward, Micro: 0, Stage: 1}, {Kind: Backward, Micro: 0, Stage: 1}},
		},
	}
	d, i := s.Find(Key{Kind: Backward, Micro: 0, Stage: 1})
	if d != 1 || i != 1 {
		t.Errorf("Find = (%d,%d), want (1,1)", d, i)
	}
	if d, i := s.Find(Key{Kind: Recompute}); d != -1 || i != -1 {
		t.Errorf("Find(absent) = (%d,%d), want (-1,-1)", d, i)
	}
	idx := s.Index()
	if loc := idx[Key{Kind: Forward, Micro: 0, Stage: 1}]; loc != [2]int{1, 0} {
		t.Errorf("Index lookup = %v", loc)
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	mk := func() *Schedule {
		return &Schedule{
			Scheme:    Scheme1F1B,
			Placement: NewLinearPlacement(1),
			Micros:    1,
			Lists:     [][]Instr{{{Kind: Forward, Micro: 0, Stage: 0}, {Kind: Backward, Micro: 0, Stage: 0}}},
		}
	}
	if err := Validate(mk()); err != nil {
		t.Fatalf("minimal schedule should validate: %v", err)
	}

	missingBW := mk()
	missingBW.Lists[0] = missingBW.Lists[0][:1]
	if err := Validate(missingBW); err == nil {
		t.Error("missing backward not caught")
	}

	bwFirst := mk()
	bwFirst.Lists[0][0], bwFirst.Lists[0][1] = bwFirst.Lists[0][1], bwFirst.Lists[0][0]
	if err := Validate(bwFirst); err == nil {
		t.Error("backward-before-forward not caught")
	}

	danglingRC := mk()
	danglingRC.Lists[0] = []Instr{
		{Kind: Forward, Micro: 0, Stage: 0},
		{Kind: Recompute, Micro: 0, Stage: 0},
		{Kind: Backward, Micro: 0, Stage: 0},
	}
	if err := Validate(danglingRC); err == nil {
		t.Error("recompute without checkpointed forward not caught")
	}

	ckptNoRC := mk()
	ckptNoRC.Lists[0][0].Kind = CkptForward
	if err := Validate(ckptNoRC); err == nil {
		t.Error("checkpointed forward without recompute not caught")
	}

	wrongDevice := &Schedule{
		Scheme:    Scheme1F1B,
		Placement: NewLinearPlacement(2),
		Micros:    1,
		Lists: [][]Instr{
			{{Kind: Forward, Micro: 0, Stage: 1}, {Kind: Backward, Micro: 0, Stage: 1}},
			{{Kind: Forward, Micro: 0, Stage: 0}, {Kind: Backward, Micro: 0, Stage: 0}},
		},
	}
	if err := Validate(wrongDevice); err == nil {
		t.Error("misplaced instructions not caught")
	}
}

func TestComputeOnly(t *testing.T) {
	list := []Instr{
		{Kind: RecvAct}, {Kind: Forward}, {Kind: SendAct},
		{Kind: RecvGrad}, {Kind: Backward}, {Kind: SendGrad},
		{Kind: AllReduce}, {Kind: OptimizerStep},
	}
	got := ComputeOnly(list)
	if len(got) != 3 {
		t.Fatalf("ComputeOnly kept %d instrs, want 3 (FW, BW, OS)", len(got))
	}
}

func TestCountKindScopes(t *testing.T) {
	s := &Schedule{
		Scheme:    SchemeGPipe,
		Placement: NewLinearPlacement(2),
		Micros:    1,
		Lists: [][]Instr{
			{{Kind: Forward, Stage: 0}, {Kind: Backward, Stage: 0}},
			{{Kind: Forward, Stage: 1}, {Kind: Backward, Stage: 1}},
		},
	}
	if got := s.CountKind(-1, Forward); got != 2 {
		t.Errorf("global FW count = %d", got)
	}
	if got := s.CountKind(1, Forward); got != 1 {
		t.Errorf("dev1 FW count = %d", got)
	}
	if got := s.TotalInstrs(); got != 4 {
		t.Errorf("TotalInstrs = %d", got)
	}
}
