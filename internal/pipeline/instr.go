// Package pipeline defines the instruction-level intermediate representation
// (IR) of a pipeline-parallel training iteration, as described in §4 and §5.1
// of the Mario paper (PPoPP '25).
//
// A training iteration is represented as one ordered instruction list per
// device. List order encodes the paper's horizontal dependencies (an
// instruction may not start before its predecessor in the same list has
// finished issuing); vertical dependencies across devices are derived from
// the (stage, micro) coordinates of each instruction through a Placement.
package pipeline

import "fmt"

// Kind identifies the operation an instruction performs (Table 3 of the
// paper).
type Kind uint8

// Instruction kinds. The two-letter comments give the paper's notation.
const (
	// Forward is an ordinary forward computation that retains its full
	// activations in memory until the matching Backward consumes them. (FW)
	Forward Kind = iota
	// CkptForward is a checkpointed forward computation: it stashes only the
	// stage input and drops intermediate activations. (CFW)
	CkptForward
	// Backward computes gradients; it requires the full activations of the
	// matching Forward (or Recompute) to be resident. (BW)
	Backward
	// Recompute replays the forward computation from the stashed stage input
	// to restore the activations a Backward needs. (RC)
	Recompute
	// SendAct sends the stage output activation to the next stage. (SA)
	SendAct
	// RecvAct receives the stage input activation from the previous stage. (RA)
	RecvAct
	// SendGrad sends the input gradient to the previous stage. (SG)
	SendGrad
	// RecvGrad receives the output gradient from the next stage. (RG)
	RecvGrad
	// AllReduce synchronises gradients across the data-parallel group. (AR)
	AllReduce
	// OptimizerStep applies the optimizer update after gradient sync. (OS)
	OptimizerStep
	// BackwardInput is the input-gradient half of a split backward (ZB-H1's
	// "B" part): it sits on the critical path because the upstream stage's
	// backward depends on it. (BI)
	BackwardInput
	// BackwardWeight is the weight-gradient half of a split backward
	// (ZB-H1's "W" part): it has no cross-device dependents and can be
	// sunk into pipeline bubbles, at the cost of holding the activations
	// longer. (BW̄, rendered "WG")
	BackwardWeight

	numKinds
)

var kindNames = [numKinds]string{
	Forward:        "FW",
	CkptForward:    "CFW",
	Backward:       "BW",
	Recompute:      "RC",
	SendAct:        "SA",
	RecvAct:        "RA",
	SendGrad:       "SG",
	RecvGrad:       "RG",
	AllReduce:      "AR",
	OptimizerStep:  "OS",
	BackwardInput:  "BI",
	BackwardWeight: "WG",
}

// String returns the paper's mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsCompute reports whether the kind occupies the device's compute resource
// (as opposed to the communication engine).
func (k Kind) IsCompute() bool {
	switch k {
	case Forward, CkptForward, Backward, Recompute, OptimizerStep,
		BackwardInput, BackwardWeight:
		return true
	}
	return false
}

// IsBackwardLike reports whether the kind performs (part of) a backward
// computation.
func (k Kind) IsBackwardLike() bool {
	return k == Backward || k == BackwardInput || k == BackwardWeight
}

// IsComm reports whether the kind is a point-to-point communication.
func (k Kind) IsComm() bool {
	switch k {
	case SendAct, RecvAct, SendGrad, RecvGrad:
		return true
	}
	return false
}

// IsForwardLike reports whether the kind performs forward computation
// (Forward, CkptForward or Recompute).
func (k Kind) IsForwardLike() bool {
	return k == Forward || k == CkptForward || k == Recompute
}

// NoMicro is the Micro value used by instructions that are not associated
// with a particular micro-batch (AllReduce, OptimizerStep).
const NoMicro = -1

// Instr is a single pipeline instruction. The paper writes an instruction as
// Kind_m^p where m is the micro-batch id (subscript) and p the partition id
// (superscript).
type Instr struct {
	Kind Kind
	// Micro is the micro-batch id, or NoMicro for AR/OS.
	Micro int
	// Part is the partition id: 0 for single-partition schemes (GPipe,
	// 1F1B), the pipeline direction (0=up, 1=down) for Chimera, and the
	// model-chunk id for Interleave.
	Part int
	// Stage is the global pipeline stage the instruction belongs to,
	// in [0, Stages).
	Stage int
	// Buffered marks a SendAct whose producer CkptForward was preposed while
	// the consumer on the next device was not (§5.1 pass 4 scenario 2): the
	// output sits in a staging buffer until the original SA slot sends it.
	Buffered bool
}

// String renders the instruction in the paper's notation, e.g. "FW3^0".
func (in Instr) String() string {
	if in.Micro == NoMicro {
		return in.Kind.String()
	}
	return fmt.Sprintf("%s%d^%d", in.Kind, in.Micro, in.Part)
}

// Key uniquely identifies a compute or communication instruction within a
// schedule so cross-device matches (SA↔RA, SG↔RG) and semantic dependencies
// (FW→BW) can be located in O(1).
type Key struct {
	Kind  Kind
	Micro int
	Part  int
	Stage int
}

// Key returns the identifying key of the instruction.
func (in Instr) Key() Key {
	return Key{Kind: in.Kind, Micro: in.Micro, Part: in.Part, Stage: in.Stage}
}

// Pack encodes the key into a single integer so hot paths can index
// instructions without hashing a struct. Micro is offset by one so NoMicro
// packs cleanly; fields beyond the generous bit budgets (16M micros, 255
// parts, 64K stages) would alias, far outside any realistic schedule.
func (k Key) Pack() uint64 {
	return uint64(k.Kind)<<56 |
		(uint64(uint32(k.Micro+1))&0xFFFFFF)<<32 |
		uint64(uint8(k.Part))<<16 |
		uint64(uint16(k.Stage))
}
