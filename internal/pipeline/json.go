package pipeline

import (
	"encoding/json"
	"fmt"
)

// The JSON encoding makes schedules durable artifacts: Mario optimizes ahead
// of time (§4) and the resulting instruction lists can be stored, diffed and
// loaded by an executor later. The format is stable and compact: one object
// per instruction with single-letter field names.

type instrJSON struct {
	Kind  string `json:"k"`
	Micro int    `json:"m"`
	Part  int    `json:"p,omitempty"`
	Stage int    `json:"s"`
	Buf   bool   `json:"buf,omitempty"`
}

type placementJSON struct {
	Type    string `json:"type"` // "linear", "bidir", "interleaved"
	Devices int    `json:"devices"`
	Chunks  int    `json:"chunks,omitempty"`
}

type scheduleJSON struct {
	Scheme       string        `json:"scheme"`
	Micros       int           `json:"micros"`
	Checkpointed bool          `json:"checkpointed,omitempty"`
	Placement    placementJSON `json:"placement"`
	Lists        [][]instrJSON `json:"lists"`
}

// kindByName inverts the Kind mnemonics.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// MarshalJSON implements json.Marshaler.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{
		Scheme:       string(s.Scheme),
		Micros:       s.Micros,
		Checkpointed: s.Checkpointed,
		Lists:        make([][]instrJSON, len(s.Lists)),
	}
	switch p := s.Placement.(type) {
	case LinearPlacement:
		out.Placement = placementJSON{Type: "linear", Devices: p.D}
	case BidirPlacement:
		out.Placement = placementJSON{Type: "bidir", Devices: p.D}
	case InterleavedPlacement:
		out.Placement = placementJSON{Type: "interleaved", Devices: p.D, Chunks: p.V}
	default:
		return nil, fmt.Errorf("pipeline: placement %T is not serialisable", s.Placement)
	}
	for d, list := range s.Lists {
		out.Lists[d] = make([]instrJSON, len(list))
		for i, in := range list {
			out.Lists[d][i] = instrJSON{
				Kind: in.Kind.String(), Micro: in.Micro, Part: in.Part, Stage: in.Stage, Buf: in.Buffered,
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler; the decoded schedule is
// re-validated so corrupted files are rejected.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("pipeline: decoding schedule: %w", err)
	}
	switch in.Placement.Type {
	case "linear":
		s.Placement = NewLinearPlacement(in.Placement.Devices)
	case "bidir":
		s.Placement = NewBidirPlacement(in.Placement.Devices)
	case "interleaved":
		s.Placement = NewInterleavedPlacement(in.Placement.Devices, in.Placement.Chunks)
	default:
		return fmt.Errorf("pipeline: unknown placement type %q", in.Placement.Type)
	}
	s.Scheme = Scheme(in.Scheme)
	s.Micros = in.Micros
	s.Checkpointed = in.Checkpointed
	s.Lists = make([][]Instr, len(in.Lists))
	for d, list := range in.Lists {
		s.Lists[d] = make([]Instr, len(list))
		for i, ij := range list {
			k, ok := kindByName[ij.Kind]
			if !ok {
				return fmt.Errorf("pipeline: unknown instruction kind %q", ij.Kind)
			}
			s.Lists[d][i] = Instr{Kind: k, Micro: ij.Micro, Part: ij.Part, Stage: ij.Stage, Buffered: ij.Buf}
		}
	}
	if err := Validate(s); err != nil {
		return fmt.Errorf("pipeline: decoded schedule invalid: %w", err)
	}
	return nil
}
