package pipeline

import "fmt"

// Placement maps a (part, stage) coordinate to the device that owns it.
//
// Every pipeline scheme distributes the model's Stages pipeline stages over
// Devices devices; some schemes place more than one stage per device
// (Interleave), and some place the same stage on different devices depending
// on the partition (Chimera's bidirectional pipelines, which hold a second
// weight replica).
type Placement interface {
	// Device returns the device owning the given stage for the given
	// partition id.
	Device(part, stage int) int
	// NumDevices is the number of devices in the pipeline.
	NumDevices() int
	// NumStages is the number of global pipeline stages.
	NumStages() int
	// NumParts is the number of partition ids the scheme uses.
	NumParts() int
	// WeightReplicas is the number of weight replicas each device holds
	// (2 for Chimera, 1 otherwise). It scales the static weight memory.
	WeightReplicas() int
}

// LinearPlacement places stage s on device s. Used by GPipe and 1F1B, where
// Stages == Devices and there is a single partition.
type LinearPlacement struct {
	D int
}

// NewLinearPlacement returns the placement for a D-device, D-stage pipeline.
func NewLinearPlacement(d int) LinearPlacement {
	if d <= 0 {
		panic(fmt.Sprintf("pipeline: non-positive device count %d", d))
	}
	return LinearPlacement{D: d}
}

// Device implements Placement.
func (p LinearPlacement) Device(_, stage int) int { return stage }

// NumDevices implements Placement.
func (p LinearPlacement) NumDevices() int { return p.D }

// NumStages implements Placement.
func (p LinearPlacement) NumStages() int { return p.D }

// NumParts implements Placement.
func (p LinearPlacement) NumParts() int { return 1 }

// WeightReplicas implements Placement.
func (p LinearPlacement) WeightReplicas() int { return 1 }

// BidirPlacement is Chimera's bidirectional placement: the "up" pipeline
// (part 0) places stage s on device s, the "down" pipeline (part 1) places
// stage s on device D-1-s. Each device therefore holds two stages' weights
// (one per direction), i.e. two model replicas in aggregate.
type BidirPlacement struct {
	D int
}

// NewBidirPlacement returns Chimera's placement for D devices. D must be
// even, matching the Chimera paper's requirement.
func NewBidirPlacement(d int) BidirPlacement {
	if d <= 0 || d%2 != 0 {
		panic(fmt.Sprintf("pipeline: Chimera requires an even positive device count, got %d", d))
	}
	return BidirPlacement{D: d}
}

// Device implements Placement.
func (p BidirPlacement) Device(part, stage int) int {
	if part == 0 {
		return stage
	}
	return p.D - 1 - stage
}

// NumDevices implements Placement.
func (p BidirPlacement) NumDevices() int { return p.D }

// NumStages implements Placement.
func (p BidirPlacement) NumStages() int { return p.D }

// NumParts implements Placement.
func (p BidirPlacement) NumParts() int { return 2 }

// WeightReplicas implements Placement.
func (p BidirPlacement) WeightReplicas() int { return 2 }

// InterleavedPlacement is Megatron-LM's interleaved ("W"-shape) placement:
// with V model chunks per device, global stage s lives on device s mod D and
// belongs to chunk (partition) s / D, so device d owns stages
// {d, d+D, d+2D, ...}.
type InterleavedPlacement struct {
	D int // devices
	V int // model chunks per device
}

// NewInterleavedPlacement returns the interleaved placement for d devices
// with v chunks per device (v >= 2 for a genuine "W" shape).
func NewInterleavedPlacement(d, v int) InterleavedPlacement {
	if d <= 0 || v <= 0 {
		panic(fmt.Sprintf("pipeline: invalid interleaved placement d=%d v=%d", d, v))
	}
	return InterleavedPlacement{D: d, V: v}
}

// Device implements Placement. The part argument is redundant (it equals
// stage/D) and is ignored.
func (p InterleavedPlacement) Device(_, stage int) int { return stage % p.D }

// NumDevices implements Placement.
func (p InterleavedPlacement) NumDevices() int { return p.D }

// NumStages implements Placement.
func (p InterleavedPlacement) NumStages() int { return p.D * p.V }

// NumParts implements Placement.
func (p InterleavedPlacement) NumParts() int { return p.V }

// WeightReplicas implements Placement.
func (p InterleavedPlacement) WeightReplicas() int { return 1 }

// PartOfStage returns the chunk id owning the given global stage.
func (p InterleavedPlacement) PartOfStage(stage int) int { return stage / p.D }
