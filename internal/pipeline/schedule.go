package pipeline

import (
	"fmt"
	"strings"
)

// Scheme names the pipeline parallelism scheme a schedule was generated from.
// The paper abbreviates schemes by their visualisation shape: V (1F1B),
// X (Chimera), W (Interleave).
type Scheme string

// Supported schemes.
const (
	SchemeGPipe      Scheme = "GPipe"
	Scheme1F1B       Scheme = "1F1B"       // "V"
	SchemeChimera    Scheme = "Chimera"    // "X"
	SchemeInterleave Scheme = "Interleave" // "W"
	SchemeHanayo     Scheme = "Hanayo"     // wave-like (extension)
)

// Shape returns the single-letter shape alias used in the paper's evaluation
// (V, X, W); other schemes return their full name.
func (s Scheme) Shape() string {
	switch s {
	case Scheme1F1B:
		return "V"
	case SchemeChimera:
		return "X"
	case SchemeInterleave:
		return "W"
	}
	return string(s)
}

// ParseScheme resolves a scheme name or shape alias. It accepts both the
// long names ("1F1B") and the paper's shape aliases ("V", "X", "W").
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "GPIPE":
		return SchemeGPipe, nil
	case "1F1B", "V":
		return Scheme1F1B, nil
	case "CHIMERA", "X":
		return SchemeChimera, nil
	case "INTERLEAVE", "W":
		return SchemeInterleave, nil
	case "HANAYO":
		return SchemeHanayo, nil
	}
	return "", fmt.Errorf("pipeline: unknown scheme %q", name)
}

// Schedule is the expanded IR of one training iteration: one ordered
// instruction list per device plus the placement that locates each (part,
// stage) coordinate.
type Schedule struct {
	Scheme    Scheme
	Placement Placement
	// Micros is the number of micro-batches N in one iteration.
	Micros int
	// Lists holds the per-device instruction lists; Lists[d] is executed in
	// order by device d.
	Lists [][]Instr
	// Checkpointed records whether the apply-checkpoint pass has run.
	Checkpointed bool
}

// NumDevices returns the device count.
func (s *Schedule) NumDevices() int { return s.Placement.NumDevices() }

// NumStages returns the global stage count.
func (s *Schedule) NumStages() int { return s.Placement.NumStages() }

// Clone returns a deep copy of the schedule (instruction lists are copied;
// the placement, which is immutable, is shared).
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.Lists = make([][]Instr, len(s.Lists))
	for d, list := range s.Lists {
		c.Lists[d] = append([]Instr(nil), list...)
	}
	return &c
}

// TotalInstrs returns the total number of instructions across all devices.
func (s *Schedule) TotalInstrs() int {
	n := 0
	for _, l := range s.Lists {
		n += len(l)
	}
	return n
}

// CountKind returns the number of instructions of the given kind on device
// d, or across all devices when d is negative.
func (s *Schedule) CountKind(d int, k Kind) int {
	n := 0
	for dev, l := range s.Lists {
		if d >= 0 && dev != d {
			continue
		}
		for _, in := range l {
			if in.Kind == k {
				n++
			}
		}
	}
	return n
}

// Find returns the device and list index of the instruction with the given
// key, or (-1, -1) if absent.
func (s *Schedule) Find(key Key) (dev, idx int) {
	for d, l := range s.Lists {
		for i, in := range l {
			if in.Key() == key {
				return d, i
			}
		}
	}
	return -1, -1
}

// Index builds a lookup table from instruction key to (device, index).
// The table is invalidated by any mutation of the schedule.
func (s *Schedule) Index() map[Key][2]int {
	m := make(map[Key][2]int, s.TotalInstrs())
	for d, l := range s.Lists {
		for i, in := range l {
			m[in.Key()] = [2]int{d, i}
		}
	}
	return m
}

// String renders a compact textual form of the schedule, one device per line.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s D=%d S=%d N=%d ckpt=%v\n",
		s.Scheme, s.NumDevices(), s.NumStages(), s.Micros, s.Checkpointed)
	for d, l := range s.Lists {
		fmt.Fprintf(&b, "dev%d:", d)
		for _, in := range l {
			b.WriteByte(' ')
			b.WriteString(in.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ComputeOnly returns a copy of the device list with communication and
// collective instructions removed; useful for tests and visualisation.
func ComputeOnly(list []Instr) []Instr {
	var out []Instr
	for _, in := range list {
		if in.Kind.IsCompute() {
			out = append(out, in)
		}
	}
	return out
}
