package pipeline

import (
	"fmt"
	"strings"
)

// Scheme names the pipeline parallelism scheme a schedule was generated from.
// The paper abbreviates schemes by their visualisation shape: V (1F1B),
// X (Chimera), W (Interleave).
type Scheme string

// Supported schemes.
const (
	SchemeGPipe      Scheme = "GPipe"
	Scheme1F1B       Scheme = "1F1B"       // "V"
	SchemeChimera    Scheme = "Chimera"    // "X"
	SchemeInterleave Scheme = "Interleave" // "W"
	SchemeHanayo     Scheme = "Hanayo"     // wave-like (extension)
	SchemeZBH1       Scheme = "ZB-H1"      // "Z": zero-bubble handcrafted-1
	SchemeDualPipeD  Scheme = "DualPipe-D" // "D": bidirectional split-backward
)

// Shape returns the single-letter shape alias used in the paper's evaluation
// (V, X, W) and its extensions (Z for ZB-H1, D for DualPipe-D); other schemes
// return their full name.
func (s Scheme) Shape() string {
	switch s {
	case Scheme1F1B:
		return "V"
	case SchemeChimera:
		return "X"
	case SchemeInterleave:
		return "W"
	case SchemeZBH1:
		return "Z"
	case SchemeDualPipeD:
		return "D"
	}
	return string(s)
}

// SplitsBackward reports whether the scheme emits split backward units
// (BackwardInput + BackwardWeight) instead of fused Backward instructions.
func (s Scheme) SplitsBackward() bool {
	return s == SchemeZBH1 || s == SchemeDualPipeD
}

// ParseScheme resolves a scheme name or shape alias. It accepts both the
// long names ("1F1B") and the paper's shape aliases ("V", "X", "W").
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "GPIPE":
		return SchemeGPipe, nil
	case "1F1B", "V":
		return Scheme1F1B, nil
	case "CHIMERA", "X":
		return SchemeChimera, nil
	case "INTERLEAVE", "W":
		return SchemeInterleave, nil
	case "HANAYO":
		return SchemeHanayo, nil
	case "ZB-H1", "ZBH1", "Z":
		return SchemeZBH1, nil
	case "DUALPIPE-D", "DUALPIPED", "DUALPIPE", "D":
		return SchemeDualPipeD, nil
	}
	return "", fmt.Errorf("pipeline: unknown scheme %q", name)
}

// Schedule is the expanded IR of one training iteration: one ordered
// instruction list per device plus the placement that locates each (part,
// stage) coordinate.
type Schedule struct {
	Scheme    Scheme
	Placement Placement
	// Micros is the number of micro-batches N in one iteration.
	Micros int
	// Lists holds the per-device instruction lists; Lists[d] is executed in
	// order by device d.
	Lists [][]Instr
	// Checkpointed records whether the apply-checkpoint pass has run.
	Checkpointed bool

	// shared, when non-nil, marks Lists[d] as aliased with at least one
	// other schedule (set by Clone on both the child and the receiver).
	// MutableList copies such a list before returning it; nil means this
	// schedule solely owns every list and may edit them in place.
	shared []bool
}

// NumDevices returns the device count.
func (s *Schedule) NumDevices() int { return s.Placement.NumDevices() }

// NumStages returns the global stage count.
func (s *Schedule) NumStages() int { return s.Placement.NumStages() }

// Clone returns a copy-on-write copy of the schedule: the per-device
// instruction lists are shared between the receiver and the copy (the
// placement, which is immutable, is shared too), and a list is only copied
// when one side first mutates it through MutableList or replaces it through
// SetList. Direct in-place writes to Lists[d] elements after Clone are
// therefore visible in both schedules — all mutation must go through
// MutableList/SetList, which every pass in this repository does.
//
// Cloning marks the receiver's lists shared as well. That write makes a
// first Clone racy when the same schedule is cloned from several goroutines
// at once; call Freeze once before sharing a schedule across goroutines and
// the concurrent Clones become read-only on the receiver.
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.Lists = append(make([][]Instr, 0, len(s.Lists)), s.Lists...)
	c.shared = sharedAll(len(s.Lists))
	if s.shared == nil {
		s.shared = sharedAll(len(s.Lists))
	} else {
		for d, sh := range s.shared {
			if !sh {
				s.shared[d] = true
			}
		}
	}
	return &c
}

// Freeze marks every list of s as shared, so any later mutation — by s or by
// one of its clones — goes through a copy. It makes subsequent concurrent
// Clone calls safe: they no longer need to write the receiver's share marks.
func (s *Schedule) Freeze() {
	if s.shared == nil {
		s.shared = sharedAll(len(s.Lists))
		return
	}
	for d, sh := range s.shared {
		if !sh {
			s.shared[d] = true
		}
	}
}

// MutableList returns device d's instruction list, first copying it if it is
// shared with another schedule. Callers that edit list elements in place
// must obtain the list through here; the returned list stays owned by s
// until the next Clone.
func (s *Schedule) MutableList(d int) []Instr {
	if s.shared != nil && s.shared[d] {
		s.Lists[d] = append([]Instr(nil), s.Lists[d]...)
		s.shared[d] = false
	}
	return s.Lists[d]
}

// SetList replaces device d's instruction list with one the caller built,
// which s then owns exclusively.
func (s *Schedule) SetList(d int, list []Instr) {
	s.Lists[d] = list
	if s.shared != nil {
		s.shared[d] = false
	}
}

func sharedAll(n int) []bool {
	sh := make([]bool, n)
	for i := range sh {
		sh[i] = true
	}
	return sh
}

// TotalInstrs returns the total number of instructions across all devices.
func (s *Schedule) TotalInstrs() int {
	n := 0
	for _, l := range s.Lists {
		n += len(l)
	}
	return n
}

// CountKind returns the number of instructions of the given kind on device
// d, or across all devices when d is negative.
func (s *Schedule) CountKind(d int, k Kind) int {
	n := 0
	for dev, l := range s.Lists {
		if d >= 0 && dev != d {
			continue
		}
		for _, in := range l {
			if in.Kind == k {
				n++
			}
		}
	}
	return n
}

// Find returns the device and list index of the instruction with the given
// key, or (-1, -1) if absent.
func (s *Schedule) Find(key Key) (dev, idx int) {
	for d, l := range s.Lists {
		for i, in := range l {
			if in.Key() == key {
				return d, i
			}
		}
	}
	return -1, -1
}

// Index builds a lookup table from instruction key to (device, index).
// The table is invalidated by any mutation of the schedule.
func (s *Schedule) Index() map[Key][2]int {
	m := make(map[Key][2]int, s.TotalInstrs())
	for d, l := range s.Lists {
		for i, in := range l {
			m[in.Key()] = [2]int{d, i}
		}
	}
	return m
}

// String renders a compact textual form of the schedule, one device per line.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s D=%d S=%d N=%d ckpt=%v\n",
		s.Scheme, s.NumDevices(), s.NumStages(), s.Micros, s.Checkpointed)
	for d, l := range s.Lists {
		fmt.Fprintf(&b, "dev%d:", d)
		for _, in := range l {
			b.WriteByte(' ')
			b.WriteString(in.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ComputeOnly returns a copy of the device list with communication and
// collective instructions removed; useful for tests and visualisation.
func ComputeOnly(list []Instr) []Instr {
	var out []Instr
	for _, in := range list {
		if in.Kind.IsCompute() {
			out = append(out, in)
		}
	}
	return out
}
