package pipeline

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInvalidSchedule wraps all validation failures so callers can test with
// errors.Is.
var ErrInvalidSchedule = errors.New("pipeline: invalid schedule")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSchedule, fmt.Sprintf(format, args...))
}

// valScratch is the reusable lookup state behind Validate. Keys are dense in
// (kind, part, micro+1, stage) — micro is offset by one so NoMicro packs at
// zero — so position and device lookups are flat-array reads instead of map
// operations on this per-candidate hot path. Entries are valid only when
// their generation tag matches the current pass, which makes clearing between
// devices (and between pooled uses) a single counter increment. Coordinates
// outside the schedule's box fall back to a tiny overflow map with identical
// semantics.
type valScratch struct {
	parts, micros, stages int
	val                   []int32
	gen                   []uint32
	cur                   uint32
	overflow              map[uint64]int32

	// cov is the per-(micro, stage) coverage counter array, kept here so the
	// hot per-candidate path does not reallocate it every call.
	cov []covCell
	// comm collects the coordinates of communication instructions during the
	// main walk, so the final matching phase only revisits those instead of
	// re-scanning every list.
	comm []commPos
	// devTab and peerTab cache the placement's Device and PeerDevice answers
	// per (part, stage) and (comm kind, part, stage) — placement walks are
	// interface calls, and every instruction of every device needs one.
	devTab  []int32
	peerTab []int32
}

type covCell struct{ fw, bw, bi, wg, rc int32 }

// commPos addresses one communication instruction: device and list index.
type commPos struct{ d, i int32 }

var valPool = sync.Pool{New: func() any { return new(valScratch) }}

// reset sizes the scratch for a schedule's coordinate box and invalidates
// every entry.
func (v *valScratch) reset(parts, micros, stages int) {
	v.parts, v.micros, v.stages = parts, micros, stages
	n := int(numKinds) * parts * (micros + 1) * stages
	if cap(v.val) < n {
		v.val = make([]int32, n)
		v.gen = make([]uint32, n)
		v.cur = 0
	}
	v.val = v.val[:n]
	v.gen = v.gen[:n]
	np := parts * stages
	if cap(v.devTab) < np {
		v.devTab = make([]int32, np)
	}
	v.devTab = v.devTab[:np]
	for i := range v.devTab {
		v.devTab[i] = -2
	}
	if cap(v.peerTab) < 4*np {
		v.peerTab = make([]int32, 4*np)
	}
	v.peerTab = v.peerTab[:4*np]
	for i := range v.peerTab {
		v.peerTab[i] = -2
	}
	v.bump()
}

// deviceOf is Placement.Device through the scratch's (part, stage) cache;
// coordinates outside the box fall back to the direct call.
func (v *valScratch) deviceOf(s *Schedule, part, stage int) int {
	if part < 0 || part >= v.parts || stage < 0 || stage >= v.stages {
		return s.Placement.Device(part, stage)
	}
	c := part*v.stages + stage
	d := v.devTab[c]
	if d == -2 {
		d = int32(s.Placement.Device(part, stage))
		v.devTab[c] = d
	}
	return int(d)
}

// peerOf is PeerDevice through the scratch's (kind, part, stage) cache —
// valid because a communication instruction's peer is placement-determined
// and independent of the device it sits on.
func (v *valScratch) peerOf(s *Schedule, d int, in Instr) int {
	if in.Part < 0 || in.Part >= v.parts || in.Stage < 0 || in.Stage >= v.stages {
		return s.PeerDevice(d, in)
	}
	var k int
	switch in.Kind {
	case SendAct:
		k = 0
	case RecvAct:
		k = 1
	case SendGrad:
		k = 2
	default:
		k = 3
	}
	c := (k*v.parts+in.Part)*v.stages + in.Stage
	p := v.peerTab[c]
	if p == -2 {
		p = int32(s.PeerDevice(d, in))
		v.peerTab[c] = p
	}
	return int(p)
}

// bump starts a new pass: all previous entries become invalid.
func (v *valScratch) bump() {
	v.cur++
	if v.cur == 0 { // generation counter wrapped: hard-clear the tags
		for i := range v.gen {
			v.gen[i] = 0
		}
		v.cur = 1
	}
	if len(v.overflow) > 0 {
		clear(v.overflow)
	}
}

// slot returns the dense index of a key, or -1 when a coordinate falls
// outside the schedule's box (the caller then uses the overflow map).
func (v *valScratch) slot(k Key) int {
	m := k.Micro + 1
	if int(k.Kind) >= int(numKinds) || m < 0 || m > v.micros ||
		k.Part < 0 || k.Part >= v.parts || k.Stage < 0 || k.Stage >= v.stages {
		return -1
	}
	return ((int(k.Kind)*v.parts+k.Part)*(v.micros+1)+m)*v.stages + k.Stage
}

// put records key → value for the current pass and reports whether the key
// was already present.
func (v *valScratch) put(k Key, val int32) (dup bool) {
	if s := v.slot(k); s >= 0 {
		if v.gen[s] == v.cur {
			return true
		}
		v.gen[s] = v.cur
		v.val[s] = val
		return false
	}
	if v.overflow == nil {
		v.overflow = make(map[uint64]int32)
	}
	p := k.Pack()
	if _, dup := v.overflow[p]; dup {
		return true
	}
	v.overflow[p] = val
	return false
}

// set records key → value for the current pass, overwriting any earlier
// entry (the comm index keeps the last registration, like the map it
// replaced).
func (v *valScratch) set(k Key, val int32) {
	if s := v.slot(k); s >= 0 {
		v.gen[s] = v.cur
		v.val[s] = val
		return
	}
	if v.overflow == nil {
		v.overflow = make(map[uint64]int32)
	}
	v.overflow[k.Pack()] = val
}

// get looks up a key recorded in the current pass.
func (v *valScratch) get(k Key) (int32, bool) {
	if s := v.slot(k); s >= 0 {
		if v.gen[s] != v.cur {
			return 0, false
		}
		return v.val[s], true
	}
	val, ok := v.overflow[k.Pack()]
	return val, ok
}

// Validate checks the structural invariants every executable schedule must
// satisfy, independent of the scheme that produced it:
//
//  1. every micro-batch runs Forward (or CkptForward) exactly once on every
//     stage and Backward exactly once on every stage;
//  2. instructions live on the device the placement assigns to their
//     (part, stage) coordinate;
//  3. per-device ordering: a stage's FW/CFW precedes its SA; RA precedes its
//     FW/CFW; RG precedes its BW; BW precedes its SG; FW/CFW of (m,s)
//     precedes BW of (m,s); a Recompute lies strictly between its CFW and BW;
//  4. every SendAct/SendGrad has exactly one matching receive and vice versa;
//  5. a Recompute exists for a (m,s) iff its forward is checkpointed and the
//     pair was not reverted by remove-redundancy.
func Validate(s *Schedule) error {
	if s.Placement == nil {
		return invalidf("nil placement")
	}
	if len(s.Lists) != s.NumDevices() {
		return invalidf("have %d lists for %d devices", len(s.Lists), s.NumDevices())
	}
	v := valPool.Get().(*valScratch)
	defer valPool.Put(v)
	v.reset(s.Placement.NumParts(), s.Micros, s.NumStages())
	if err := validateDevices(s, v); err != nil {
		return err
	}
	if err := validateCoverageCounts(s, v); err != nil {
		return err
	}
	return validateCommMatching(s, v)
}

// validateDevices runs the per-device work in two fused walks per list: the
// first records key positions while checking ranges, placement, and
// duplicates and accumulating the coverage counters and the comm-instruction
// index; the second checks intra-device ordering against the recorded
// positions. Fusing the walks keeps Validate at two passes over each list —
// it sits on graph.Optimize's per-call path, so list walks dominate its cost.
func validateDevices(s *Schedule, pos *valScratch) error {
	S := s.NumStages()
	n := s.Micros * S
	if cap(pos.cov) < n {
		pos.cov = make([]covCell, n)
	}
	seen := pos.cov[:n]
	for i := range seen {
		seen[i] = covCell{}
	}
	pos.comm = pos.comm[:0]
	for d, list := range s.Lists {
		// pos maps each key to its list index for intra-device order checks;
		// starting a new generation invalidates the previous device's
		// entries without touching memory.
		pos.bump()
		for i, in := range list {
			if in.Micro != NoMicro {
				if in.Micro < 0 || in.Micro >= s.Micros {
					return invalidf("dev%d: %s has micro out of range [0,%d)", d, in, s.Micros)
				}
				if in.Stage < 0 || in.Stage >= S {
					return invalidf("dev%d: %s has stage out of range [0,%d)", d, in, S)
				}
				if got := pos.deviceOf(s, in.Part, in.Stage); got != d {
					return invalidf("dev%d: %s belongs on dev%d per placement", d, in, got)
				}
				switch in.Kind {
				case Forward, CkptForward:
					seen[in.Micro*S+in.Stage].fw++
				case Backward:
					seen[in.Micro*S+in.Stage].bw++
				case BackwardInput:
					seen[in.Micro*S+in.Stage].bi++
				case BackwardWeight:
					seen[in.Micro*S+in.Stage].wg++
				case Recompute:
					seen[in.Micro*S+in.Stage].rc++
				}
			}
			if pos.put(in.Key(), int32(i)) {
				return invalidf("dev%d: duplicate instruction %s", d, in)
			}
			if in.Kind.IsComm() {
				pos.comm = append(pos.comm, commPos{d: int32(d), i: int32(i)})
			}
		}
		for i32, in := range list {
			i := int32(i32)
			switch in.Kind {
			case SendAct:
				if !in.Buffered {
					if j, ok := findForward(pos, in.Micro, in.Part, in.Stage); !ok || j > i {
						return invalidf("dev%d: %s not preceded by its forward", d, in)
					}
				} else {
					// A buffered SA reads a staging buffer written by a
					// preposed CFW; the CFW must still precede it.
					if j, ok := pos.get(Key{Kind: CkptForward, Micro: in.Micro, Part: in.Part, Stage: in.Stage}); !ok || j > i {
						return invalidf("dev%d: buffered %s not preceded by its CFW", d, in)
					}
				}
			case RecvAct:
				if j, ok := findForward(pos, in.Micro, in.Part, in.Stage); !ok || j < i {
					return invalidf("dev%d: %s not followed by its forward", d, in)
				}
			case RecvGrad:
				if j, ok := findBackwardAnchor(pos, in.Micro, in.Part, in.Stage); !ok || j < i {
					return invalidf("dev%d: %s not followed by its backward", d, in)
				}
			case SendGrad:
				if j, ok := findBackwardAnchor(pos, in.Micro, in.Part, in.Stage); !ok || j > i {
					return invalidf("dev%d: %s not preceded by its backward", d, in)
				}
			case BackwardWeight:
				if j, ok := pos.get(Key{Kind: BackwardInput, Micro: in.Micro, Part: in.Part, Stage: in.Stage}); !ok || j > i {
					return invalidf("dev%d: %s not preceded by its input-gradient half", d, in)
				}
			case Backward, BackwardInput:
				j, ok := findForward(pos, in.Micro, in.Part, in.Stage)
				if !ok || j > i {
					return invalidf("dev%d: %s not preceded by its forward", d, in)
				}
				// A checkpointed forward requires a recompute before the
				// backward (after remove-redundancy the forward is reverted
				// to a plain FW, so this stays an iff).
				ckpt := list[j].Kind == CkptForward
				r, hasRC := pos.get(Key{Kind: Recompute, Micro: in.Micro, Part: in.Part, Stage: in.Stage})
				if ckpt && (!hasRC || r < j || r > i) {
					return invalidf("dev%d: %s checkpointed but recompute missing or misplaced", d, in)
				}
				if !ckpt && hasRC {
					return invalidf("dev%d: %s has a recompute but its forward is not checkpointed", d, in)
				}
			}
		}
	}
	return nil
}

// findForward locates the Forward or CkptForward for (m, part, stage).
func findForward(pos *valScratch, m, part, stage int) (int32, bool) {
	if j, ok := pos.get(Key{Kind: Forward, Micro: m, Part: part, Stage: stage}); ok {
		return j, true
	}
	return pos.get(Key{Kind: CkptForward, Micro: m, Part: part, Stage: stage})
}

// findBackwardAnchor locates the Backward, or its input-gradient half when
// split, for (m, part, stage) — the instruction gradient communication
// anchors to.
func findBackwardAnchor(pos *valScratch, m, part, stage int) (int32, bool) {
	if j, ok := pos.get(Key{Kind: Backward, Micro: m, Part: part, Stage: stage}); ok {
		return j, true
	}
	return pos.get(Key{Kind: BackwardInput, Micro: m, Part: part, Stage: stage})
}

// validateCoverageCounts checks the counters accumulated by validateDevices:
// exactly one forward and one (whole or split) backward per (micro, stage),
// at most one recompute.
func validateCoverageCounts(s *Schedule, v *valScratch) error {
	S := s.NumStages()
	for i, c := range v.cov[:s.Micros*S] {
		m, st := i/S, i%S
		if c.fw != 1 {
			return invalidf("micro %d stage %d: %d forward instructions, want 1", m, st, c.fw)
		}
		whole := c.bw == 1 && c.bi == 0 && c.wg == 0
		split := c.bw == 0 && c.bi == 1 && c.wg == 1
		if !whole && !split {
			return invalidf("micro %d stage %d: backward counts BW=%d BI=%d WG=%d, want one BW or one BI+WG pair",
				m, st, c.bw, c.bi, c.wg)
		}
		if c.rc > 1 {
			return invalidf("micro %d stage %d: %d recomputes, want at most 1", m, st, c.rc)
		}
	}
	return nil
}

func validateCommMatching(s *Schedule, idx *valScratch) error {
	// A dense index of the communication instructions, valued by device,
	// visiting only the coordinates validateDevices collected.
	idx.bump()
	for _, c := range idx.comm {
		idx.set(s.Lists[c.d][c.i].Key(), c.d)
	}
	for _, c := range idx.comm {
		d, in := int(c.d), s.Lists[c.d][c.i]
		mk := s.MatchKey(in)
		dev, ok := idx.get(mk)
		if !ok {
			return invalidf("dev%d: %s has no matching %s", d, in, mk.Kind)
		}
		if peer := idx.peerOf(s, d, in); int(dev) != peer {
			return invalidf("dev%d: %s matches on dev%d, want dev%d", d, in, dev, peer)
		}
	}
	return nil
}
