package pipeline

import (
	"errors"
	"fmt"
)

// ErrInvalidSchedule wraps all validation failures so callers can test with
// errors.Is.
var ErrInvalidSchedule = errors.New("pipeline: invalid schedule")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSchedule, fmt.Sprintf(format, args...))
}

// Validate checks the structural invariants every executable schedule must
// satisfy, independent of the scheme that produced it:
//
//  1. every micro-batch runs Forward (or CkptForward) exactly once on every
//     stage and Backward exactly once on every stage;
//  2. instructions live on the device the placement assigns to their
//     (part, stage) coordinate;
//  3. per-device ordering: a stage's FW/CFW precedes its SA; RA precedes its
//     FW/CFW; RG precedes its BW; BW precedes its SG; FW/CFW of (m,s)
//     precedes BW of (m,s); a Recompute lies strictly between its CFW and BW;
//  4. every SendAct/SendGrad has exactly one matching receive and vice versa;
//  5. a Recompute exists for a (m,s) iff its forward is checkpointed and the
//     pair was not reverted by remove-redundancy.
func Validate(s *Schedule) error {
	if s.Placement == nil {
		return invalidf("nil placement")
	}
	if len(s.Lists) != s.NumDevices() {
		return invalidf("have %d lists for %d devices", len(s.Lists), s.NumDevices())
	}
	if err := validateCoverage(s); err != nil {
		return err
	}
	if err := validatePlacementAndOrder(s); err != nil {
		return err
	}
	return validateCommMatching(s)
}

func validateCoverage(s *Schedule) error {
	S := s.NumStages()
	type cell struct{ fw, bw, bi, wg, rc int }
	seen := make([]cell, s.Micros*S)
	for d, list := range s.Lists {
		for _, in := range list {
			if in.Micro == NoMicro {
				continue
			}
			if in.Micro < 0 || in.Micro >= s.Micros {
				return invalidf("dev%d: %s has micro out of range [0,%d)", d, in, s.Micros)
			}
			if in.Stage < 0 || in.Stage >= S {
				return invalidf("dev%d: %s has stage out of range [0,%d)", d, in, S)
			}
			c := &seen[in.Micro*S+in.Stage]
			switch in.Kind {
			case Forward, CkptForward:
				c.fw++
			case Backward:
				c.bw++
			case BackwardInput:
				c.bi++
			case BackwardWeight:
				c.wg++
			case Recompute:
				c.rc++
			}
		}
	}
	for i, c := range seen {
		m, st := i/S, i%S
		if c.fw != 1 {
			return invalidf("micro %d stage %d: %d forward instructions, want 1", m, st, c.fw)
		}
		whole := c.bw == 1 && c.bi == 0 && c.wg == 0
		split := c.bw == 0 && c.bi == 1 && c.wg == 1
		if !whole && !split {
			return invalidf("micro %d stage %d: backward counts BW=%d BI=%d WG=%d, want one BW or one BI+WG pair",
				m, st, c.bw, c.bi, c.wg)
		}
		if c.rc > 1 {
			return invalidf("micro %d stage %d: %d recomputes, want at most 1", m, st, c.rc)
		}
	}
	return nil
}

func validatePlacementAndOrder(s *Schedule) error {
	pos := make(map[uint64]int)
	for d, list := range s.Lists {
		// pos maps a packed key to its list index for intra-device order
		// checks; packed keys hash as plain integers, far cheaper than the
		// four-field Key struct on this per-candidate hot path.
		clear(pos)
		for i, in := range list {
			if in.Micro != NoMicro {
				if got := s.Placement.Device(in.Part, in.Stage); got != d {
					return invalidf("dev%d: %s belongs on dev%d per placement", d, in, got)
				}
			}
			k := in.Key().Pack()
			if _, dup := pos[k]; dup {
				return invalidf("dev%d: duplicate instruction %s", d, in)
			}
			pos[k] = i
		}
		for _, in := range list {
			i := pos[in.Key().Pack()]
			switch in.Kind {
			case SendAct:
				if !in.Buffered {
					if j, ok := findForward(pos, in.Micro, in.Part, in.Stage); !ok || j > i {
						return invalidf("dev%d: %s not preceded by its forward", d, in)
					}
				} else {
					// A buffered SA reads a staging buffer written by a
					// preposed CFW; the CFW must still precede it.
					if j, ok := pos[Key{Kind: CkptForward, Micro: in.Micro, Part: in.Part, Stage: in.Stage}.Pack()]; !ok || j > i {
						return invalidf("dev%d: buffered %s not preceded by its CFW", d, in)
					}
				}
			case RecvAct:
				if j, ok := findForward(pos, in.Micro, in.Part, in.Stage); !ok || j < i {
					return invalidf("dev%d: %s not followed by its forward", d, in)
				}
			case RecvGrad:
				if j, ok := findBackwardAnchor(pos, in.Micro, in.Part, in.Stage); !ok || j < i {
					return invalidf("dev%d: %s not followed by its backward", d, in)
				}
			case SendGrad:
				if j, ok := findBackwardAnchor(pos, in.Micro, in.Part, in.Stage); !ok || j > i {
					return invalidf("dev%d: %s not preceded by its backward", d, in)
				}
			case BackwardWeight:
				if j, ok := pos[Key{Kind: BackwardInput, Micro: in.Micro, Part: in.Part, Stage: in.Stage}.Pack()]; !ok || j > i {
					return invalidf("dev%d: %s not preceded by its input-gradient half", d, in)
				}
			case Backward, BackwardInput:
				j, ok := findForward(pos, in.Micro, in.Part, in.Stage)
				if !ok || j > i {
					return invalidf("dev%d: %s not preceded by its forward", d, in)
				}
				// A checkpointed forward requires a recompute before the
				// backward (after remove-redundancy the forward is reverted
				// to a plain FW, so this stays an iff).
				ckpt := list[j].Kind == CkptForward
				r, hasRC := pos[Key{Kind: Recompute, Micro: in.Micro, Part: in.Part, Stage: in.Stage}.Pack()]
				if ckpt && (!hasRC || r < j || r > i) {
					return invalidf("dev%d: %s checkpointed but recompute missing or misplaced", d, in)
				}
				if !ckpt && hasRC {
					return invalidf("dev%d: %s has a recompute but its forward is not checkpointed", d, in)
				}
			}
		}
	}
	return nil
}

// findForward locates the Forward or CkptForward for (m, part, stage).
func findForward(pos map[uint64]int, m, part, stage int) (int, bool) {
	if j, ok := pos[Key{Kind: Forward, Micro: m, Part: part, Stage: stage}.Pack()]; ok {
		return j, true
	}
	j, ok := pos[Key{Kind: CkptForward, Micro: m, Part: part, Stage: stage}.Pack()]
	return j, ok
}

// findBackwardAnchor locates the Backward, or its input-gradient half when
// split, for (m, part, stage) — the instruction gradient communication
// anchors to.
func findBackwardAnchor(pos map[uint64]int, m, part, stage int) (int, bool) {
	if j, ok := pos[Key{Kind: Backward, Micro: m, Part: part, Stage: stage}.Pack()]; ok {
		return j, true
	}
	j, ok := pos[Key{Kind: BackwardInput, Micro: m, Part: part, Stage: stage}.Pack()]
	return j, ok
}

func validateCommMatching(s *Schedule) error {
	// A packed-key index of the communication instructions, built inline
	// rather than through Index() to avoid hashing Key structs.
	idx := make(map[uint64]int)
	for d, list := range s.Lists {
		for _, in := range list {
			if in.Kind.IsComm() {
				idx[in.Key().Pack()] = d
			}
		}
	}
	for d, list := range s.Lists {
		for _, in := range list {
			if !in.Kind.IsComm() {
				continue
			}
			mk := s.MatchKey(in)
			dev, ok := idx[mk.Pack()]
			if !ok {
				return invalidf("dev%d: %s has no matching %s", d, in, mk.Kind)
			}
			if peer := s.PeerDevice(d, in); dev != peer {
				return invalidf("dev%d: %s matches on dev%d, want dev%d", d, in, dev, peer)
			}
		}
	}
	return nil
}
