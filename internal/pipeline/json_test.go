package pipeline

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleSchedule() *Schedule {
	return &Schedule{
		Scheme:    Scheme1F1B,
		Placement: NewLinearPlacement(2),
		Micros:    1,
		Lists: [][]Instr{
			{
				{Kind: Forward, Micro: 0, Stage: 0},
				{Kind: SendAct, Micro: 0, Stage: 0},
				{Kind: RecvGrad, Micro: 0, Stage: 0},
				{Kind: Backward, Micro: 0, Stage: 0},
				{Kind: AllReduce, Micro: NoMicro},
				{Kind: OptimizerStep, Micro: NoMicro},
			},
			{
				{Kind: RecvAct, Micro: 0, Stage: 1},
				{Kind: Forward, Micro: 0, Stage: 1},
				{Kind: Backward, Micro: 0, Stage: 1},
				{Kind: SendGrad, Micro: 0, Stage: 1},
				{Kind: AllReduce, Micro: NoMicro},
				{Kind: OptimizerStep, Micro: NoMicro},
			},
		},
	}
}

// TestJSONRoundTrip: marshal → unmarshal reproduces the schedule exactly
// for every placement family.
func TestJSONRoundTrip(t *testing.T) {
	cases := []*Schedule{sampleSchedule()}
	bidir := sampleSchedule()
	bidir.Scheme = SchemeChimera
	bidir.Placement = NewBidirPlacement(2)
	bidir.Lists[0][0].Part = 0
	cases = append(cases, bidir)

	for _, s := range cases {
		if err := Validate(s); err != nil {
			t.Fatalf("sample invalid: %v", err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Scheme, err)
		}
		var got Schedule
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", s.Scheme, err)
		}
		if got.Scheme != s.Scheme || got.Micros != s.Micros {
			t.Errorf("%s: header mismatch", s.Scheme)
		}
		if !reflect.DeepEqual(got.Lists, s.Lists) {
			t.Errorf("%s: lists differ after round trip", s.Scheme)
		}
		if got.NumDevices() != s.NumDevices() {
			t.Errorf("%s: placement mismatch", s.Scheme)
		}
	}
}

// TestJSONPreservesBufferedFlag: the pass-4 Buffered marker survives.
func TestJSONPreservesBufferedFlag(t *testing.T) {
	s := sampleSchedule()
	s.Lists[0][0].Kind = CkptForward
	s.Lists[0][1].Buffered = true
	s.Lists[0] = append(s.Lists[0][:2],
		append([]Instr{{Kind: RecvGrad, Micro: 0, Stage: 0}, {Kind: Recompute, Micro: 0, Stage: 0}, {Kind: Backward, Micro: 0, Stage: 0}},
			s.Lists[0][4:]...)...)
	if err := Validate(s); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schedule
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Lists[0][1].Buffered {
		t.Error("Buffered flag lost")
	}
	if got.Lists[0][0].Kind != CkptForward {
		t.Error("CFW kind lost")
	}
}

// TestJSONRejectsCorrupted: decoding enforces validation and kind names.
func TestJSONRejectsCorrupted(t *testing.T) {
	s := sampleSchedule()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown kind.
	bad := strings.Replace(string(data), `"k":"FW"`, `"k":"ZZ"`, 1)
	var got Schedule
	if err := json.Unmarshal([]byte(bad), &got); err == nil {
		t.Error("unknown kind accepted")
	}
	// Structurally broken: drop a backward.
	bad = strings.Replace(string(data), `{"k":"BW","m":0,"s":0},`, ``, 1)
	if err := json.Unmarshal([]byte(bad), &got); err == nil {
		t.Error("missing backward accepted")
	}
	// Unknown placement.
	bad = strings.Replace(string(data), `"type":"linear"`, `"type":"mystery"`, 1)
	if err := json.Unmarshal([]byte(bad), &got); err == nil {
		t.Error("unknown placement accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &got); err == nil {
		t.Error("syntactic garbage accepted")
	}
}
