package viz

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

func sample(t *testing.T) (*pipeline.Schedule, *sim.Result) {
	t.Helper()
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(s, cost.Uniform(4, 1, 2, 0.25), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestASCIIContainsAllDevices(t *testing.T) {
	_, r := sample(t)
	out := ASCII(r, 1)
	for _, want := range []string{"dev0", "dev3", "F", "B", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// Warmup staircase: device 3 starts later than device 0, so its row has
	// leading blanks inside the frame.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[3], "| ") {
		t.Errorf("device 3 should start with a bubble:\n%s", out)
	}
}

func TestASCIIShowsRecompute(t *testing.T) {
	s, _ := sample(t)
	opt, r, err := graph.Optimize(s, graph.Options{Estimator: cost.Uniform(4, 1, 2, 0.25)})
	if err != nil {
		t.Fatal(err)
	}
	_ = opt
	out := ASCII(r, 1)
	if !strings.Contains(out, "R") || !strings.Contains(out, "C") {
		t.Errorf("checkpointed timeline missing R/C glyphs:\n%s", out)
	}
}

func TestScheduleASCII(t *testing.T) {
	s, _ := sample(t)
	out := ScheduleASCII(s)
	if !strings.Contains(out, "1F1B") || !strings.Contains(out, "dev0") {
		t.Errorf("ScheduleASCII missing headers:\n%s", out)
	}
}

func TestSVGWellFormed(t *testing.T) {
	_, r := sample(t)
	var buf bytes.Buffer
	if err := SVG(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("SVG output not well formed")
	}
	if strings.Count(out, "<rect") < 8 {
		t.Errorf("SVG has too few rects:\n%s", out[:200])
	}
	if err := SVG(&buf, &sim.Result{}); err == nil {
		t.Error("empty timeline accepted")
	}
}

func TestChromeTraceParses(t *testing.T) {
	_, r := sample(t)
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	seenPID3 := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has phase %q", ev.Name, ev.Ph)
		}
		if ev.PID == 3 {
			seenPID3 = true
		}
	}
	if !seenPID3 {
		t.Error("device 3 missing from trace")
	}
}

func TestMemoryBars(t *testing.T) {
	out := MemoryBars([]float64{4 << 30, 2 << 30}, 3<<30)
	if !strings.Contains(out, "OOM") {
		t.Errorf("over-limit device not marked:\n%s", out)
	}
	if !strings.Contains(out, "limit") {
		t.Errorf("limit line missing:\n%s", out)
	}
	if MemoryBars(nil, 0) == "" {
		// Degenerate input should not panic and may be empty.
		t.Log("empty bars ok")
	}
}
