package viz

import (
	"strings"
	"testing"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// TestASCIIShowsSplitBackwardGlyphs: split backwards render as 'b' (input
// half) and 'w' (weight half).
func TestASCIIShowsSplitBackwardGlyphs(t *testing.T) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := cost.Uniform(4, 1, 2, 0.25)
	split, r, err := graph.SplitBackward(s, graph.Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	_ = split
	out := ASCII(r, 0.5)
	if !strings.Contains(out, "b") || !strings.Contains(out, "w") {
		t.Errorf("split glyphs missing:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "dev") && strings.Contains(line, "B") {
			t.Errorf("whole-backward glyph should be gone: %s", line)
		}
	}
}

// TestASCIIDefaultQuantum: quantum ≤ 0 picks one automatically.
func TestASCIIDefaultQuantum(t *testing.T) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 2, Micros: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(s, cost.Uniform(2, 1, 2, 0.25), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out := ASCII(r, 0); !strings.Contains(out, "total") {
		t.Errorf("auto-quantum chart broken:\n%s", out)
	}
}

// TestSVGEscapesTitles: SVG titles include the instruction notation and the
// document stays balanced for checkpointed schedules.
func TestSVGChartForCheckpointed(t *testing.T) {
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := cost.Uniform(4, 1, 2, 0.25)
	_, r, err := graph.Optimize(s, graph.Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SVG(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "RC") || !strings.Contains(out, "CFW") {
		t.Errorf("SVG titles missing checkpoint instructions")
	}
	if strings.Count(out, "<rect") != strings.Count(out, "</rect>") {
		t.Error("unbalanced rects")
	}
}

// TestMemoryBarsNoLimit: without a limit no OOM markers or limit line
// appear.
func TestMemoryBarsNoLimit(t *testing.T) {
	out := MemoryBars([]float64{1 << 30, 2 << 30}, 0)
	if strings.Contains(out, "OOM") || strings.Contains(out, "limit") {
		t.Errorf("unexpected limit annotations:\n%s", out)
	}
}
