// Package viz renders pipeline schedules and simulated timelines (§5.2
// "Visualization", Fig. 5): an ASCII Gantt chart for terminals, an SVG
// export, and a Chrome-trace JSON export loadable in chrome://tracing or
// Perfetto. Visualisation lets users observe pipeline execution states and
// bubble distribution instead of relying solely on throughput numbers.
package viz

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/sim"
)

// cell is the glyph per instruction kind in the ASCII chart.
func cell(k pipeline.Kind) byte {
	switch k {
	case pipeline.Forward:
		return 'F'
	case pipeline.CkptForward:
		return 'C'
	case pipeline.Backward:
		return 'B'
	case pipeline.Recompute:
		return 'R'
	case pipeline.AllReduce:
		return 'A'
	case pipeline.OptimizerStep:
		return 'O'
	case pipeline.BackwardInput:
		return 'b'
	case pipeline.BackwardWeight:
		return 'w'
	}
	return '.'
}

// ASCII renders the simulated timeline as a Gantt chart with one row per
// device and one column per time quantum; bubbles appear as spaces.
// Communication instructions are omitted (they overlap compute in the
// charts of the paper). quantum ≤ 0 picks one that fits the chart into
// width ~160 columns.
func ASCII(res *sim.Result, quantum float64) string {
	if quantum <= 0 {
		quantum = res.Total / 160
		if quantum <= 0 {
			quantum = 1
		}
	}
	var b strings.Builder
	cols := int(math.Ceil(res.Total/quantum)) + 1
	for d, spans := range res.Timeline {
		row := make([]byte, cols)
		for i := range row {
			row[i] = ' '
		}
		for _, sp := range spans {
			if !sp.Instr.Kind.IsCompute() {
				continue
			}
			lo := int(sp.Start / quantum)
			hi := int(math.Ceil(sp.End / quantum))
			if hi <= lo {
				hi = lo + 1
			}
			g := cell(sp.Instr.Kind)
			for i := lo; i < hi && i < cols; i++ {
				row[i] = g
			}
		}
		fmt.Fprintf(&b, "dev%-2d |%s|\n", d, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "total %.4g (F=forward C=ckpt-forward B=backward b=bwd-input w=bwd-weight R=recompute A=allreduce O=optstep)\n", res.Total)
	return b.String()
}

// ScheduleASCII renders an unsimulated schedule grid: one column per list
// position, useful for eyeballing instruction order before timing exists.
func ScheduleASCII(s *pipeline.Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s D=%d N=%d\n", s.Scheme, s.NumDevices(), s.Micros)
	for d, list := range s.Lists {
		fmt.Fprintf(&b, "dev%-2d |", d)
		for _, in := range list {
			if !in.Kind.IsCompute() {
				continue
			}
			fmt.Fprintf(&b, "%c%-2d", cell(in.Kind), in.Micro)
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// svgColor maps kinds to fill colours.
func svgColor(k pipeline.Kind) string {
	switch k {
	case pipeline.Forward:
		return "#4C78A8"
	case pipeline.CkptForward:
		return "#72B7B2"
	case pipeline.Backward:
		return "#F58518"
	case pipeline.Recompute:
		return "#E45756"
	case pipeline.AllReduce:
		return "#B279A2"
	case pipeline.OptimizerStep:
		return "#54A24B"
	}
	return "#BAB0AC"
}

// SVG writes the timeline as a standalone SVG document.
func SVG(w io.Writer, res *sim.Result) error {
	const rowH, pad, width = 28, 4, 1200
	if res.Total <= 0 {
		return fmt.Errorf("viz: empty timeline")
	}
	scale := float64(width-2*pad) / res.Total
	height := len(res.Timeline)*rowH + 2*pad
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n",
		width, height); err != nil {
		return err
	}
	for d, spans := range res.Timeline {
		y := pad + d*rowH
		for _, sp := range spans {
			if !sp.Instr.Kind.IsCompute() {
				continue
			}
			x := pad + int(sp.Start*scale)
			wd := int((sp.End - sp.Start) * scale)
			if wd < 1 {
				wd = 1
			}
			if _, err := fmt.Fprintf(w,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>dev%d %s [%.4g,%.4g]</title></rect>`+"\n",
				x, y, wd, rowH-6, svgColor(sp.Instr.Kind), d, sp.Instr, sp.Start, sp.End); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, `<text x="%d" y="%d" fill="#333">dev%d</text>`+"\n", pad, y+rowH-10, d); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

// traceEvent is one Chrome-trace "complete" event.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace writes the simulator's predicted timeline in the Chrome
// trace-event JSON format (open with chrome://tracing or Perfetto). Compute
// instructions land on tid 0, communication on tid 1, of the device's pid.
func ChromeTrace(w io.Writer, res *sim.Result) error {
	var events []traceEvent
	for d, spans := range res.Timeline {
		for _, sp := range spans {
			tid, cat := 0, "compute"
			if sp.Instr.Kind.IsComm() {
				tid, cat = 1, "comm"
			}
			events = append(events, traceEvent{
				Name: sp.Instr.String(),
				Cat:  cat,
				Ph:   "X",
				Ts:   sp.Start * 1e6,
				Dur:  (sp.End - sp.Start) * 1e6,
				PID:  d,
				TID:  tid,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// ChromeTraceMeasured writes a measured run's obs event stream in the Chrome
// trace-event JSON format — the measured counterpart of ChromeTrace, so a
// predicted and a measured trace of the same schedule can be opened side by
// side in Perfetto. Each event carries its iteration, queue wait and modeled
// memory as args.
func ChromeTraceMeasured(w io.Writer, events []obs.Event) error {
	out := make([]traceEvent, 0, len(events))
	for _, e := range events {
		tid, cat := 0, "compute"
		if e.Kind.IsComm() {
			tid, cat = 1, "comm"
		}
		args := map[string]any{"iter": e.Iter}
		if e.Wait > 0 {
			args["wait_us"] = e.Wait * 1e6
		}
		if e.Mem > 0 {
			args["mem_bytes"] = e.Mem
		}
		out = append(out, traceEvent{
			Name: e.Instr().String(),
			Cat:  cat,
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  e.Dur() * 1e6,
			PID:  e.Device,
			TID:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// MemoryBars renders per-device peak memory as a horizontal ASCII bar chart
// in GB (used by the Figure 7 experiment output).
func MemoryBars(peaks []float64, limit float64) string {
	var b strings.Builder
	maxV := limit
	for _, p := range peaks {
		if p > maxV {
			maxV = p
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	const width = 60
	for d, p := range peaks {
		n := int(p / maxV * width)
		marker := ""
		if limit > 0 && p > limit {
			marker = "  << OOM"
		}
		fmt.Fprintf(&b, "dev%-2d %7.2f GB |%s%s\n", d, p/(1<<30), strings.Repeat("#", n), marker)
	}
	if limit > 0 {
		fmt.Fprintf(&b, "limit %6.2f GB\n", limit/(1<<30))
	}
	return b.String()
}
