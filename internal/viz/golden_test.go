package viz

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mario/internal/cost"
	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting the file when
// -update is set. Export formats are consumed by external tooling (Perfetto,
// chrome://tracing, JSONL pipelines), so any byte-level change must be a
// conscious review decision, not a drive-by.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/viz -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n got: %s\nwant: %s\nIf the change is intentional, regenerate with -update and call it out in review.",
			name, got, want)
	}
}

// goldenResult simulates a tiny deterministic pipeline for the predicted
// exports: 2-device 1F1B, 2 micro-batches, Fig. 2's F=1,B=2 grid world.
func goldenResult(t *testing.T) *sim.Result {
	t.Helper()
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 2, Micros: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Simulate(s, cost.Uniform(2, 1, 2, 0.25), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// goldenEvents is a hand-written measured event stream covering the optional
// fields (wait, memory, buffered sends) of the measured exports.
func goldenEvents() []obs.Event {
	return []obs.Event{
		{Device: 0, Iter: 0, Kind: pipeline.Forward, Micro: 0, Stage: 0, Peer: -1, Start: 0, End: 1.25, Mem: 2048},
		{Device: 0, Iter: 0, Kind: pipeline.SendAct, Micro: 0, Stage: 0, Peer: 1, Start: 1.25, End: 1.5, Bytes: 512, Buffered: true},
		{Device: 1, Iter: 0, Kind: pipeline.RecvAct, Micro: 0, Stage: 1, Peer: 0, Start: 0, End: 1.5, Wait: 1.25, Bytes: 512},
		{Device: 1, Iter: 0, Kind: pipeline.Backward, Micro: 0, Stage: 1, Peer: -1, Start: 1.5, End: 4, Mem: 1024},
		{Device: 1, Iter: 1, Kind: pipeline.OptimizerStep, Micro: pipeline.NoMicro, Stage: -1, Peer: -1, Start: 4, End: 4.5},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, goldenResult(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.golden.json", buf.Bytes())
}

func TestChromeTraceMeasuredGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTraceMeasured(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace_measured.golden.json", buf.Bytes())
}
