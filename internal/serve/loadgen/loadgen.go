// Package loadgen drives synthetic request load against a mariod planning
// fleet and reports latency quantiles and outcome rates. It is the engine
// behind cmd/loadgen, the BenchmarkServeLoadgen* service benchmarks and the
// fleet selfcheck's burst phase.
//
// The generator speaks raw HTTP rather than the service client so that
// admission pushback (429 from a full queue, 503 from a draining member)
// is observable as a counted outcome instead of a retried-away error: the
// point of a load test is to see the server push back.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mario/internal/serve/api"
)

// Options configures one load run.
type Options struct {
	// Targets are the fleet members' base URLs; requests round-robin over
	// them, so with routing enabled the fleet's peer-forwarding shows up in
	// the Peer count.
	Targets []string
	// Workloads are the plan requests to mix; request i sends workload
	// i mod len(Workloads). Repeats of one workload exercise the cache.
	Workloads []api.PlanRequest
	// Requests is the total number of requests to send.
	Requests int
	// Concurrency is how many requests are kept in flight; 0 means 32.
	Concurrency int
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
}

// Result is the aggregate outcome of one load run.
type Result struct {
	Total   int           `json:"total"`
	OK      int           `json:"ok"`      // 200 responses
	Cached  int           `json:"cached"`  // OK answered from a plan cache
	Shared  int           `json:"shared"`  // OK answered by singleflight sharing
	Peer    int           `json:"peer"`    // OK answered by a routed peer
	Rej429  int           `json:"rej_429"` // admission pushback: queue full
	Rej503  int           `json:"rej_503"` // admission pushback: draining
	Errors  int           `json:"errors"`  // transport failures and other statuses
	P50     time.Duration `json:"p50_ns"`
	P90     time.Duration `json:"p90_ns"`
	P99     time.Duration `json:"p99_ns"`
	Max     time.Duration `json:"max_ns"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// ReqPerSec is Total divided by the wall-clock of the whole run.
	ReqPerSec float64 `json:"req_per_sec"`
}

// Summary renders the result as a compact human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests  %d in %v (%.0f req/s)\n", r.Total, r.Elapsed.Round(time.Millisecond), r.ReqPerSec)
	fmt.Fprintf(&b, "outcomes  ok=%d cached=%d shared=%d peer=%d 429=%d 503=%d err=%d\n",
		r.OK, r.Cached, r.Shared, r.Peer, r.Rej429, r.Rej503, r.Errors)
	fmt.Fprintf(&b, "latency   p50=%v p90=%v p99=%v max=%v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	return b.String()
}

type sample struct {
	latency time.Duration
	status  int
	cached  bool
	shared  bool
	peer    bool
	err     bool
}

// Run executes the load described by opts and aggregates the outcomes.
// It returns an error only for unusable options or a cancelled context;
// individual request failures are counted, not fatal.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if len(opts.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if len(opts.Workloads) == 0 {
		return nil, fmt.Errorf("loadgen: no workloads")
	}
	if opts.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be positive")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 32
	}
	if conc > opts.Requests {
		conc = opts.Requests
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	bodies := make([][]byte, len(opts.Workloads))
	for i, w := range opts.Workloads {
		b, err := json.Marshal(w)
		if err != nil {
			return nil, fmt.Errorf("loadgen: encoding workload %d: %w", i, err)
		}
		bodies[i] = b
	}

	samples := make([]sample, opts.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests || ctx.Err() != nil {
					return
				}
				samples[i] = fire(ctx, hc,
					opts.Targets[i%len(opts.Targets)],
					bodies[i%len(bodies)])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return aggregate(samples, time.Since(start)), nil
}

// fire sends one plan request and classifies the outcome.
func fire(ctx context.Context, hc *http.Client, target string, body []byte) sample {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		return sample{err: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return sample{latency: time.Since(t0), err: true}
	}
	defer resp.Body.Close()
	s := sample{status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		var pr struct {
			Cached bool   `json:"cached"`
			Shared bool   `json:"shared"`
			Peer   string `json:"peer"`
		}
		if json.NewDecoder(resp.Body).Decode(&pr) == nil {
			s.cached, s.shared, s.peer = pr.Cached, pr.Shared, pr.Peer != ""
		}
	}
	io.Copy(io.Discard, resp.Body)
	s.latency = time.Since(t0)
	return s
}

func aggregate(samples []sample, elapsed time.Duration) *Result {
	r := &Result{Total: len(samples), Elapsed: elapsed}
	if elapsed > 0 {
		r.ReqPerSec = float64(len(samples)) / elapsed.Seconds()
	}
	lat := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		lat = append(lat, s.latency)
		switch {
		case s.err:
			r.Errors++
		case s.status == http.StatusOK:
			r.OK++
			if s.cached {
				r.Cached++
			}
			if s.shared {
				r.Shared++
			}
			if s.peer {
				r.Peer++
			}
		case s.status == http.StatusTooManyRequests:
			r.Rej429++
		case s.status == http.StatusServiceUnavailable:
			r.Rej503++
		default:
			r.Errors++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	r.P50 = quantile(lat, 0.50)
	r.P90 = quantile(lat, 0.90)
	r.P99 = quantile(lat, 0.99)
	r.Max = lat[len(lat)-1]
	return r
}

// quantile returns the nearest-rank q-quantile of sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// MixedWorkloads builds n plan-request variants of base, stepping the
// global batch size so each variant has a distinct fingerprint. With a
// request count well above n, the run is a cache-hit-dominated mix — the
// steady state a planning fleet actually serves.
func MixedWorkloads(base api.PlanRequest, n int) []api.PlanRequest {
	if n <= 1 {
		return []api.PlanRequest{base}
	}
	ws := make([]api.PlanRequest, n)
	for i := range ws {
		w := base
		w.GlobalBatch = base.GlobalBatch * (i + 1)
		ws[i] = w
	}
	return ws
}
