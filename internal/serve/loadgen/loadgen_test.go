package loadgen_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mario/internal/serve/api"
	"mario/internal/serve/loadgen"
)

// TestRunClassifiesOutcomes drives the generator against a scripted server
// and checks every outcome bucket: fresh 200s, cached 200s, peer-routed
// 200s, 429 and 503 pushback, and hard failures.
func TestRunClassifiesOutcomes(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 6 {
		case 1:
			json.NewEncoder(w).Encode(api.PlanResponse{Plan: json.RawMessage(`{}`)})
		case 2:
			json.NewEncoder(w).Encode(api.PlanResponse{Cached: true, Plan: json.RawMessage(`{}`)})
		case 3:
			json.NewEncoder(w).Encode(api.PlanResponse{Cached: true, Peer: "http://other", Plan: json.RawMessage(`{}`)})
		case 4:
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
		case 5:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
		case 0:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	const total = 60 // 10 full cycles of the 6-outcome script
	res, err := loadgen.Run(context.Background(), loadgen.Options{
		Targets:     []string{ts.URL},
		Workloads:   []api.PlanRequest{{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16}},
		Requests:    total,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != total {
		t.Fatalf("total = %d, want %d", res.Total, total)
	}
	want := map[string]int{"ok": 30, "cached": 20, "peer": 10, "429": 10, "503": 10, "err": 10}
	got := map[string]int{"ok": res.OK, "cached": res.Cached, "peer": res.Peer,
		"429": res.Rej429, "503": res.Rej503, "err": res.Errors}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %d, want %d (full: %+v)", k, got[k], w, res)
		}
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("quantiles not ordered: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.ReqPerSec <= 0 {
		t.Error("zero throughput")
	}
}

func TestRunOptionValidation(t *testing.T) {
	ctx := context.Background()
	w := []api.PlanRequest{{Model: "LLaMA2-3B"}}
	if _, err := loadgen.Run(ctx, loadgen.Options{Workloads: w, Requests: 1}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := loadgen.Run(ctx, loadgen.Options{Targets: []string{"http://x"}, Requests: 1}); err == nil {
		t.Error("no workloads accepted")
	}
	if _, err := loadgen.Run(ctx, loadgen.Options{Targets: []string{"http://x"}, Workloads: w}); err == nil {
		t.Error("zero requests accepted")
	}
}

// TestMixedWorkloads pins that every variant gets a distinct fingerprint —
// otherwise the "mix" silently collapses to one cache entry.
func TestMixedWorkloads(t *testing.T) {
	base := api.PlanRequest{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16, MicroBatches: []int{1, 2}}
	ws := loadgen.MixedWorkloads(base, 4)
	if len(ws) != 4 {
		t.Fatalf("got %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		model, err := w.Validate()
		if err != nil {
			t.Fatalf("variant gbs=%d invalid: %v", w.GlobalBatch, err)
		}
		fp := w.Fingerprint(model)
		if seen[fp] {
			t.Fatalf("duplicate fingerprint for gbs=%d", w.GlobalBatch)
		}
		seen[fp] = true
	}
}
