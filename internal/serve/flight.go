package serve

import (
	"context"
	"sync"
)

// flight is one in-progress tuner run that any number of identical requests
// share (singleflight). The first request creates it and enqueues it on the
// worker pool; later identical requests join as waiters. When the last
// waiter abandons (deadline, disconnect), the flight's context is cancelled
// so the tuner stops burning a worker on a result nobody wants.
type flight struct {
	fp  string
	req PlanRequest

	// ctx governs the tuner run; cancel is called when the last waiter
	// leaves or the server shuts down hard.
	ctx    context.Context
	cancel context.CancelFunc

	// waiters is guarded by the server mutex (join/leave go through the
	// server, which also owns the flights map).
	waiters int

	mu   sync.Mutex
	subs []chan ProgressEvent

	// done is closed exactly once, after data/err/trace are set.
	done chan struct{}
	data []byte
	err  error
	// trace is the run's canonical search trace JSON, set by runFlight
	// before finish; waiters that asked for ?trace=1 embed it in their
	// response.
	trace []byte
}

func newFlight(fp string, req PlanRequest) *flight {
	ctx, cancel := context.WithCancel(context.Background())
	return &flight{fp: fp, req: req, ctx: ctx, cancel: cancel, waiters: 1, done: make(chan struct{})}
}

// subscribe registers a progress channel. The channel is buffered; broadcast
// drops events for subscribers that fall behind rather than stalling the
// tuner's merge loop.
func (f *flight) subscribe() chan ProgressEvent {
	ch := make(chan ProgressEvent, 64)
	f.mu.Lock()
	f.subs = append(f.subs, ch)
	f.mu.Unlock()
	return ch
}

// broadcast fans one progress event out to every subscriber, never blocking.
func (f *flight) broadcast(ev ProgressEvent) {
	f.mu.Lock()
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default: // subscriber behind; it will catch up on a later snapshot
		}
	}
	f.mu.Unlock()
}

// finish publishes the outcome and wakes every waiter. It must be called
// exactly once.
func (f *flight) finish(data []byte, err error) {
	f.data, f.err = data, err
	close(f.done)
}
