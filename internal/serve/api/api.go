// Package api holds the wire types of the mariod planning service: the
// plan request/response bodies, the streaming progress record, the health
// report and the fleet shard protocol. It exists so the server
// (internal/serve) and the client (internal/serve/client) can share one
// vocabulary without importing each other — the server dispatches shard
// batches through the client when it coordinates a fleet.
//
// Compatibility note: internal/serve re-exports these types under their
// historical names (serve.PlanRequest = api.PlanRequest, …), so existing
// callers see no change.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"mario"
	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/place"
	"mario/internal/profile"
	"mario/internal/tuner"
)

// PlanRequest is the body of POST /v1/plan and /v1/plan/stream: a JSON
// mirror of mario.Config plus a model reference. Fields that steer the plan
// (model, cluster shape, search space, machine spec, tuner knobs) enter the
// workload fingerprint; resource hints (Workers, TimeoutSec) do not — by the
// tuner's determinism contract they cannot change the result, only how fast
// or how long the server is willing to chase it.
type PlanRequest struct {
	// Model names a built-in preset (GPT3-13B, LLaMA2-3B, …). Exactly one
	// of Model and ModelConfig must be set.
	Model string `json:"model,omitempty"`
	// ModelConfig describes a custom model inline.
	ModelConfig *cost.ModelConfig `json:"model_config,omitempty"`
	// Scheme is "Auto" (default), a scheme name or a shape alias, as in
	// mario.Config.PipelineScheme.
	Scheme string `json:"scheme,omitempty"`
	// GlobalBatch and Devices shape the job (both required).
	GlobalBatch int `json:"global_batch"`
	Devices     int `json:"devices"`
	// Memory is the per-device budget ("40G", "512M", bytes); empty keeps
	// the hardware default.
	Memory string `json:"memory,omitempty"`
	// TP is the fixed tensor-parallel degree; 0 means 1.
	TP int `json:"tp,omitempty"`
	// Checkpoint forces Mario's checkpointing on or off; nil lets the
	// tuner decide.
	Checkpoint *bool `json:"checkpoint,omitempty"`
	// SplitBackward additionally tries the ZB-H1 split-backward pass.
	SplitBackward bool `json:"split_backward,omitempty"`
	// MicroBatches restricts the candidate micro-batch sizes; nil means
	// powers of two. Order matters (it is the grid iteration order), so it
	// is fingerprinted as given.
	MicroBatches []int `json:"micro_batches,omitempty"`
	// MinPP and MaxPP bound the pipeline dimension.
	MinPP int `json:"min_pp,omitempty"`
	MaxPP int `json:"max_pp,omitempty"`
	// NoPrune disables the upper-bound prune so the trace holds the full
	// Fig. 11 curve. It changes the trace, hence it is fingerprinted.
	NoPrune bool `json:"no_prune,omitempty"`
	// NoBnB replaces the branch-and-bound search with the canonical-order
	// grid walk. The best plan is identical, but the trace and search stats
	// differ, hence it is fingerprinted.
	NoBnB bool `json:"no_bnb,omitempty"`
	// Machine overrides the emulated hardware imperfections; nil uses
	// profile.DefaultMachine.
	Machine *profile.MachineSpec `json:"machine,omitempty"`
	// Hardware overrides the device description; nil uses A100-40G.
	Hardware *cost.Hardware `json:"hardware,omitempty"`
	// DeviceSpeeds declares per-device relative compute speeds (1 = nominal);
	// empty means homogeneous. When set it must hold exactly Devices positive
	// entries. Heterogeneous speeds open the tuner's partitioning/placement
	// axis, so the field is fingerprinted (all-nominal lists canonicalize to
	// nil first).
	DeviceSpeeds []float64 `json:"device_speeds,omitempty"`
	// Placement selects the partitioning/placement search mode ("auto",
	// "uniform", "coopt"); empty means auto. Fingerprinted (canonicalized to
	// lower case, with "auto" normalized to empty).
	Placement string `json:"placement,omitempty"`

	// NoDelta disables delta re-simulation inside the graph passes. Not
	// fingerprinted: the plan is bit-identical either way (it is a speed
	// control, like Workers).
	NoDelta bool `json:"no_delta,omitempty"`
	// Workers is a per-request hint for tuner parallelism, capped by the
	// server; 0 uses the server default. Not fingerprinted: the plan is
	// identical for every worker count.
	Workers int `json:"workers,omitempty"`
	// TimeoutSec overrides the server's default per-request deadline,
	// capped by the server's maximum. Not fingerprinted.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// Validate checks the request and canonicalizes the fields the fingerprint
// depends on: the scheme is resolved to its canonical name, the memory spec
// to bytes, and the model reference to a concrete configuration. It returns
// the resolved model.
func (r *PlanRequest) Validate() (cost.ModelConfig, error) {
	var model cost.ModelConfig
	switch {
	case r.Model != "" && r.ModelConfig != nil:
		return model, fmt.Errorf("serve: set model or model_config, not both")
	case r.ModelConfig != nil:
		model = *r.ModelConfig
	case r.Model != "":
		m, ok := mario.Models()[r.Model]
		if !ok {
			return model, fmt.Errorf("serve: unknown model %q", r.Model)
		}
		model = m
	default:
		return model, fmt.Errorf("serve: model or model_config is required")
	}
	if err := model.Validate(); err != nil {
		return model, err
	}
	if r.Devices <= 0 || r.GlobalBatch <= 0 {
		return model, fmt.Errorf("serve: devices (%d) and global_batch (%d) must be positive", r.Devices, r.GlobalBatch)
	}
	if name := strings.TrimSpace(r.Scheme); name == "" || strings.EqualFold(name, "auto") {
		r.Scheme = "Auto"
	} else {
		s, err := pipeline.ParseScheme(name)
		if err != nil {
			return model, err
		}
		r.Scheme = string(s)
	}
	if r.Memory != "" {
		if _, err := mario.ParseMemory(r.Memory); err != nil {
			return model, err
		}
	}
	for _, m := range r.MicroBatches {
		if m <= 0 {
			return model, fmt.Errorf("serve: micro_batches entries must be positive (got %d)", m)
		}
	}
	if len(r.DeviceSpeeds) != 0 && len(r.DeviceSpeeds) != r.Devices {
		return model, fmt.Errorf("serve: %d device_speeds entries for %d devices", len(r.DeviceSpeeds), r.Devices)
	}
	for d, v := range r.DeviceSpeeds {
		if v <= 0 {
			return model, fmt.Errorf("serve: device_speeds[%d] = %g must be positive", d, v)
		}
	}
	if place.Homogeneous(r.DeviceSpeeds) {
		r.DeviceSpeeds = nil // all-nominal speeds are the homogeneous workload
	}
	pmode, err := place.ParseMode(r.Placement)
	if err != nil {
		return model, err
	}
	if pmode == place.ModeAuto {
		r.Placement = "" // the default mode fingerprints like an absent field
	} else {
		r.Placement = string(pmode)
	}
	if r.TimeoutSec < 0 {
		return model, fmt.Errorf("serve: timeout_sec must not be negative")
	}
	return model, nil
}

// fingerprintKey is the canonical identity of a planning workload. Field
// order is fixed and every field is either a value or a canonicalized
// pointer, so encoding/json renders identical requests to identical bytes.
type fingerprintKey struct {
	Model        cost.ModelConfig     `json:"model"`
	Scheme       string               `json:"scheme"`
	GlobalBatch  int                  `json:"global_batch"`
	Devices      int                  `json:"devices"`
	MemoryBytes  float64              `json:"memory_bytes"`
	TP           int                  `json:"tp"`
	Checkpoint   *bool                `json:"checkpoint"`
	Split        bool                 `json:"split"`
	MicroBatches []int                `json:"micro_batches"`
	MinPP        int                  `json:"min_pp"`
	MaxPP        int                  `json:"max_pp"`
	NoPrune      bool                 `json:"no_prune"`
	NoBnB        bool                 `json:"no_bnb"`
	Machine      *profile.MachineSpec `json:"machine"`
	Hardware     *cost.Hardware       `json:"hardware"`
	DeviceSpeeds []float64            `json:"device_speeds"`
	Placement    string               `json:"placement"`
}

// Fingerprint returns the workload fingerprint: a hex SHA-256 over the
// canonical JSON of every plan-steering field. Call Validate first — the
// fingerprint assumes canonicalized scheme and memory fields.
func (r *PlanRequest) Fingerprint(model cost.ModelConfig) string {
	memBytes := 0.0
	if r.Memory != "" {
		memBytes, _ = mario.ParseMemory(r.Memory) // validated already
	}
	key := fingerprintKey{
		Model:        model,
		Scheme:       r.Scheme,
		GlobalBatch:  r.GlobalBatch,
		Devices:      r.Devices,
		MemoryBytes:  memBytes,
		TP:           r.TP,
		Checkpoint:   r.Checkpoint,
		Split:        r.SplitBackward,
		MicroBatches: r.MicroBatches,
		MinPP:        r.MinPP,
		MaxPP:        r.MaxPP,
		NoPrune:      r.NoPrune,
		NoBnB:        r.NoBnB,
		Machine:      r.Machine,
		Hardware:     r.Hardware,
		DeviceSpeeds: r.DeviceSpeeds,
		Placement:    r.Placement,
	}
	data, err := json.Marshal(key)
	if err != nil {
		// Unreachable: every field is a plain value. Fail closed with a
		// never-matching fingerprint rather than panicking a server.
		return fmt.Sprintf("unfingerprintable:%v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Config translates the request into a mario.Config. workers is the resolved
// tuner parallelism (the server caps the request's hint).
func (r *PlanRequest) Config(workers int) mario.Config {
	conf := mario.Config{
		PipelineScheme:  r.Scheme,
		GlobalBatchSize: r.GlobalBatch,
		NumDevices:      r.Devices,
		MemoryPerDevice: r.Memory,
		TP:              r.TP,
		Checkpoint:      r.Checkpoint,
		SplitBackward:   r.SplitBackward,
		MicroBatchSizes: r.MicroBatches,
		MinPP:           r.MinPP,
		MaxPP:           r.MaxPP,
		NoPrune:         r.NoPrune,
		NoBnB:           r.NoBnB,
		NoDelta:         r.NoDelta,
		Workers:         workers,
		DeviceSpeeds:    r.DeviceSpeeds,
		Placement:       r.Placement,
	}
	if r.Machine != nil {
		conf.Machine = *r.Machine
	}
	if r.Hardware != nil {
		conf.Hardware = r.Hardware
	}
	return conf
}

// Timeout resolves the request's deadline against the server's default and
// ceiling.
func (r *PlanRequest) Timeout(def, max time.Duration) time.Duration {
	d := def
	if r.TimeoutSec > 0 {
		d = time.Duration(r.TimeoutSec * float64(time.Second))
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// PlanResponse is the body of a successful POST /v1/plan (and the terminal
// record of the streaming endpoint carries the same fields).
type PlanResponse struct {
	// Fingerprint is the canonical workload identity the plan is cached
	// under.
	Fingerprint string `json:"fingerprint"`
	// Cached reports that the plan came from the LRU cache; Shared that the
	// request joined an already-running identical flight. Both false means
	// this request's flight computed the plan.
	Cached bool `json:"cached"`
	Shared bool `json:"shared,omitempty"`
	// Peer is the base URL of the fleet member that answered, set when the
	// consistent-hash router forwarded this request to the workload's
	// owner. The plan bytes are identical either way.
	Peer string `json:"peer,omitempty"`
	// Plan is the plan JSON (mario.LoadPlan decodes it). Byte-identical to
	// json.Marshal of the mario.Optimize result for the same inputs,
	// whether cached, shared, fresh or peer-answered.
	Plan json.RawMessage `json:"plan"`
	// Trace is the canonical search trace ({"fingerprint":..,"spans":[..]}),
	// present when the request asked for ?trace=1 and a tuner run answered
	// it (cache hits carry no trace — the original run's trace lives in the
	// flight recorder). Byte-identical across worker counts.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ProgressEvent is one tuner progress update, streamed to every subscriber
// of a flight as it searches. Events arrive in canonical grid order (the
// tuner's merge-loop contract); a slow subscriber may observe gaps — each
// event is a complete snapshot, so dropping intermediate ones loses nothing
// but granularity.
type ProgressEvent struct {
	// Explored is the number of candidates merged so far.
	Explored int `json:"explored"`
	// Best and BestThroughput describe the best configuration found so far.
	Best           string  `json:"best"`
	BestThroughput float64 `json:"throughput"`
}

// Health is the /healthz body.
type Health struct {
	// OK is false while the server is draining.
	OK bool `json:"ok"`
	// Draining reports that shutdown has begun (new plan requests are
	// refused; in-flight ones are finishing).
	Draining bool `json:"draining"`
	// InFlight and Queued describe current load; CachedPlans the LRU fill.
	InFlight    int64 `json:"in_flight"`
	Queued      int   `json:"queued"`
	CachedPlans int   `json:"cached_plans"`
}

// RoutedHeader marks a plan request already forwarded once by the
// consistent-hash router; the receiving member answers locally instead of
// routing again, so ring disagreement during membership changes cannot
// bounce a request around the fleet.
const RoutedHeader = "X-Mario-Routed"

// ShardProtoVersion is the fleet shard protocol version. A coordinator and
// its workers must agree exactly: a worker refuses a mismatched Proto with
// 400, and the coordinator's local fallback keeps the search exact while a
// mixed-version fleet rolls. Version 2 added the partitioning/placement
// workload fields (device_speeds, placement), which change the enumerated
// grid — a version-1 worker would index a different point list.
const ShardProtoVersion = 2

// ShardRequest is the body of POST /v1/shard: one coordinator-probed batch
// of grid points for the worker to evaluate against the given workload.
type ShardRequest struct {
	// Proto is the shard protocol version (ShardProtoVersion).
	Proto int `json:"proto"`
	// Workload identifies the search the points index into. The worker
	// validates and fingerprints it exactly like a plan request, so the
	// enumerated grid is the coordinator's bit for bit.
	Workload PlanRequest `json:"workload"`
	// Points are the probed grid points, in dispatch order.
	Points []tuner.ShardPoint `json:"points"`
	// Incumbent is the coordinator's best throughput so far; nil means no
	// incumbent yet (first wave).
	Incumbent *float64 `json:"incumbent,omitempty"`
}

// ShardResponse is the worker's reply: one outcome per dispatched point.
type ShardResponse struct {
	// Proto echoes the shard protocol version.
	Proto int `json:"proto"`
	// Fingerprint is the workload fingerprint the worker resolved — a
	// cross-check that both sides enumerated the same grid.
	Fingerprint string `json:"fingerprint"`
	// Outcomes mirror Points order, keyed by Idx.
	Outcomes []tuner.ShardOutcome `json:"outcomes"`
}
