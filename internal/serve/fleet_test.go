package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mario"
	"mario/internal/serve/api"
	"mario/internal/serve/client"
	"mario/internal/telemetry"
	"mario/internal/tuner"
)

// TestHashRing pins the router's determinism: the ring is a pure function
// of the member set (order-independent), every member owns a share of
// fingerprints, and ownership is stable.
func TestHashRing(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := newHashRing(members)
	r2 := newHashRing([]string{members[2], members[0], members[1], members[0]}) // shuffled + dup
	owned := map[string]int{}
	for i := 0; i < 200; i++ {
		fp := fmt.Sprintf("fingerprint-%d", i)
		o := r1.owner(fp)
		if o2 := r2.owner(fp); o2 != o {
			t.Fatalf("ring not order-independent: %q owned by %s vs %s", fp, o, o2)
		}
		owned[o]++
	}
	for _, m := range members {
		if owned[m] == 0 {
			t.Errorf("member %s owns no fingerprints (distribution %v)", m, owned)
		}
	}
	if (&hashRing{}).owner("x") != "" {
		t.Error("empty ring returned an owner")
	}
}

// promValue extracts one series' value from a Prometheus text exposition.
func promValue(t *testing.T, metrics, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Fatalf("unparseable series %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s not found", series)
	return 0
}

// smallWorkload is the cheap real-tuner request the fleet HTTP tests share.
func smallWorkload() PlanRequest {
	return PlanRequest{
		Model:        "LLaMA2-3B",
		Devices:      4,
		GlobalBatch:  16,
		Memory:       "40G",
		MicroBatches: []int{1, 2},
	}
}

// TestShardEndpoint exercises the worker half of the shard protocol over
// real HTTP: a valid batch returns explored outcomes with candidates, a
// protocol-version mismatch is refused with 400, and a draining member
// answers 503.
func TestShardEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real tuner evaluation")
	}
	s := New(Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	req := api.ShardRequest{
		Proto:    api.ShardProtoVersion,
		Workload: smallWorkload(),
		Points:   []tuner.ShardPoint{{Idx: 0, Unbounded: true}, {Idx: 1, Unbounded: true}},
	}
	resp, err := cl.Shard(ctx, req)
	if err != nil {
		t.Fatalf("shard: %v", err)
	}
	if resp.Proto != api.ShardProtoVersion || resp.Fingerprint == "" {
		t.Fatalf("bad shard response header: %+v", resp)
	}
	if len(resp.Outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(resp.Outcomes))
	}
	for i, oc := range resp.Outcomes {
		if oc.Status != tuner.ShardExplored || oc.Cand == nil {
			t.Errorf("outcome %d = %+v, want explored with candidate", i, oc)
		}
	}

	// Incumbent above every bound: the worker must skip, not simulate.
	inc := 1e18
	req.Points = []tuner.ShardPoint{{Idx: 0, UB: 1}}
	req.Incumbent = &inc
	resp, err = cl.Shard(ctx, req)
	if err != nil {
		t.Fatalf("shard with incumbent: %v", err)
	}
	if resp.Outcomes[0].Status != tuner.ShardSkipped {
		t.Fatalf("outcome = %+v, want skipped", resp.Outcomes[0])
	}

	req.Proto = api.ShardProtoVersion + 1
	if _, err := cl.Shard(ctx, req); err == nil || !strings.Contains(err.Error(), "shard protocol") {
		t.Fatalf("proto mismatch error = %v, want shard protocol refusal", err)
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	req.Proto = api.ShardProtoVersion
	if _, err := cl.Shard(ctx, req); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("draining shard error = %v, want draining refusal", err)
	}
}

// TestBodyLimit413 is the request-size satellite: bodies over MaxBodyBytes
// are refused with 413 on the plan, stream and shard endpoints, and the
// error path still returns well-formed JSON.
func TestBodyLimit413(t *testing.T) {
	s := New(Options{MaxBodyBytes: 512})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := make([]int, 4096)
	for i := range big {
		big[i] = 1
	}
	body, _ := json.Marshal(PlanRequest{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16, MicroBatches: big})
	for _, path := range []string{"/v1/plan", "/v1/plan/stream", "/v1/shard"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var e struct {
			Error string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
		if derr != nil || e.Error == "" {
			t.Errorf("%s: 413 body not an error JSON (decode err %v)", path, derr)
		}
	}

	// A small body still works end to end (shard decode path).
	small, _ := json.Marshal(api.ShardRequest{Proto: api.ShardProtoVersion + 9, Workload: smallWorkload()})
	resp, err := http.Post(ts.URL+"/v1/shard", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("small shard body: status %d, want 400 (proto mismatch)", resp.StatusCode)
	}
}

// newFleet boots n worker servers plus one coordinator whose Fleet lists
// them, all on loopback HTTP. extra mutates the coordinator options.
func newFleet(t *testing.T, n int, extra func(*Options)) (*Server, *client.Client, []*Server, func()) {
	t.Helper()
	var workers []*Server
	var urls []string
	var closers []func()
	for i := 0; i < n; i++ {
		w := New(Options{})
		ws := httptest.NewServer(w.Handler())
		workers = append(workers, w)
		urls = append(urls, ws.URL)
		closers = append(closers, func() { ws.Close(); w.Close() })
	}
	opts := Options{Fleet: urls}
	if extra != nil {
		extra(&opts)
	}
	co := New(opts)
	cs := httptest.NewServer(co.Handler())
	closers = append(closers, func() { cs.Close(); co.Close() })
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	return co, client.New(cs.URL), workers, cleanup
}

// TestFleetEndToEndByteIdentity is the acceptance contract over real HTTP:
// a coordinator that distributes its branch-and-bound search across two
// loopback workers serves plan bytes identical to a direct mario.Optimize,
// candidates and all surviving the shard wire format; the fleet series
// prove remote work actually happened.
func TestFleetEndToEndByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real tuner searches over loopback HTTP")
	}
	req := smallWorkload()
	model, err := req.Validate()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mario.Optimize(req.Config(0), model)
	if err != nil {
		t.Fatalf("direct optimize: %v", err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	_, cl, workers, cleanup := newFleet(t, 2, nil)
	defer cleanup()
	ctx := context.Background()

	fresh, err := cl.Plan(ctx, req)
	if err != nil {
		t.Fatalf("fleet plan: %v", err)
	}
	if fresh.Cached {
		t.Fatal("first fleet request reported cached")
	}
	if !bytes.Equal(fresh.Plan, want) {
		t.Fatalf("fleet plan differs from direct Optimize (%d vs %d bytes)", len(fresh.Plan), len(want))
	}

	hit, err := cl.Plan(ctx, req)
	if err != nil {
		t.Fatalf("cached fleet plan: %v", err)
	}
	if !hit.Cached || !bytes.Equal(hit.Plan, want) {
		t.Fatal("fleet cache hit not byte-identical")
	}

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for series, want := range map[string]bool{
		`mario_serve_shard_dispatch_total{result="ok"}`:    true,
		`mario_serve_shard_dispatch_total{result="error"}`: false,
		"mario_search_fleet_waves_total":                   true,
	} {
		if got := promValue(t, metrics, series) > 0; got != want {
			t.Errorf("coordinator series %s nonzero = %v, want %v", series, got, want)
		}
	}
	served := 0
	for _, w := range workers {
		var buf bytes.Buffer
		w.Registry().WriteProm(&buf)
		if promValue(t, buf.String(), "mario_serve_shard_requests_total") > 0 {
			served++
		}
	}
	if served == 0 {
		t.Error("no worker served a shard batch")
	}
}

// TestFleetDeadPeerFallback points the coordinator at one healthy worker
// and one unroutable address: the plan must still be byte-identical (the
// tuner evaluates lost batches locally) and the dispatch-error series must
// record the damage.
func TestFleetDeadPeerFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real tuner searches over loopback HTTP")
	}
	req := smallWorkload()
	model, err := req.Validate()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mario.Optimize(req.Config(0), model)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)

	w := New(Options{})
	defer w.Close()
	ws := httptest.NewServer(w.Handler())
	defer ws.Close()
	co := New(Options{Fleet: []string{ws.URL, "http://127.0.0.1:9"}}) // port 9: discard, never listening
	defer co.Close()
	cs := httptest.NewServer(co.Handler())
	defer cs.Close()

	resp, err := client.New(cs.URL).Plan(context.Background(), req)
	if err != nil {
		t.Fatalf("plan with dead peer: %v", err)
	}
	if !bytes.Equal(resp.Plan, want) {
		t.Fatal("dead-peer fleet plan not byte-identical to direct Optimize")
	}
	var buf bytes.Buffer
	co.Registry().WriteProm(&buf)
	if promValue(t, buf.String(), `mario_serve_shard_dispatch_total{result="error"}`) == 0 {
		t.Error("dead peer produced no dispatch errors")
	}
	if promValue(t, buf.String(), "mario_search_fleet_fallbacks_total") == 0 {
		t.Error("no fleet fallbacks recorded")
	}
}

// stubFleetPair boots two routing members A and B whose run functions are
// replaced with stubs returning distinct bytes, so tests observe which
// member computed a plan without running the tuner.
func stubFleetPair(t *testing.T) (aURL, bURL string, a, b *Server, cleanup func()) {
	t.Helper()
	var ah, bh http.Handler
	as := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { ah.ServeHTTP(w, r) }))
	bs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { bh.ServeHTTP(w, r) }))
	a = New(Options{Self: as.URL, Fleet: []string{bs.URL}})
	b = New(Options{Self: bs.URL, Fleet: []string{as.URL}})
	stub := func(name string) func(context.Context, PlanRequest, *telemetry.Tracer, func(ProgressEvent)) ([]byte, error) {
		return func(context.Context, PlanRequest, *telemetry.Tracer, func(ProgressEvent)) ([]byte, error) {
			return []byte(`{"from":"` + name + `"}`), nil
		}
	}
	a.run, b.run = stub("a"), stub("b")
	ah, bh = a.Handler(), b.Handler()
	return as.URL, bs.URL, a, b, func() { as.Close(); bs.Close(); a.Close(); b.Close() }
}

// workloadOwnedBy searches batch sizes until the workload's fingerprint
// lands on the wanted ring member.
func workloadOwnedBy(t *testing.T, ring *hashRing, owner string) (PlanRequest, string) {
	t.Helper()
	for gb := 1; gb <= 512; gb++ {
		req := PlanRequest{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: gb, MicroBatches: []int{1}}
		model, err := req.Validate()
		if err != nil {
			t.Fatal(err)
		}
		fp := req.Fingerprint(model)
		if ring.owner(fp) == owner {
			return req, fp
		}
	}
	t.Fatal("no workload hashed onto the wanted member")
	return PlanRequest{}, ""
}

// TestFleetPeerRouting pins the consistent-hash router: a request owned by
// the other member is answered by that member (Peer stamped, its bytes
// served), a request owned locally is computed locally, and the routed
// header stops a second hop.
func TestFleetPeerRouting(t *testing.T) {
	aURL, bURL, a, _, cleanup := stubFleetPair(t)
	defer cleanup()
	ring := newHashRing([]string{aURL, bURL})
	ctx := context.Background()
	ca := client.New(aURL)

	reqB, _ := workloadOwnedBy(t, ring, bURL)
	resp, err := ca.Plan(ctx, reqB)
	if err != nil {
		t.Fatalf("routed plan: %v", err)
	}
	if resp.Peer != bURL {
		t.Fatalf("peer = %q, want %q", resp.Peer, bURL)
	}
	if string(resp.Plan) != `{"from":"b"}` {
		t.Fatalf("routed plan bytes %s, want b's", resp.Plan)
	}

	reqA, _ := workloadOwnedBy(t, ring, aURL)
	resp, err = ca.Plan(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Peer != "" || string(resp.Plan) != `{"from":"a"}` {
		t.Fatalf("locally owned request answered by %q with %s", resp.Peer, resp.Plan)
	}

	// The loop guard: a pre-routed request for b's workload must be
	// answered by a itself, not forwarded again.
	resp, err = ca.PlanRouted(ctx, reqB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Peer != "" || string(resp.Plan) != `{"from":"a"}` {
		t.Fatalf("routed-header request still forwarded: peer=%q plan=%s", resp.Peer, resp.Plan)
	}

	var buf bytes.Buffer
	a.Registry().WriteProm(&buf)
	if !strings.Contains(buf.String(), `mario_serve_peer_routed_total{result="ok"} 1`) {
		t.Error("routing success not counted")
	}
}

// TestFleetPeerRoutingFallback kills the owner and requires the router to
// compute locally instead of failing the request.
func TestFleetPeerRoutingFallback(t *testing.T) {
	aURL, bURL, a, _, cleanup := stubFleetPair(t)
	ring := newHashRing([]string{aURL, bURL})
	reqB, _ := workloadOwnedBy(t, ring, bURL)

	// Tear down only b's listener; a stays up.
	cleanupA := cleanup
	_ = cleanupA
	// Rebuild: simpler to just point a at a dead peer.
	cleanup()
	var ah http.Handler
	as := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { ah.ServeHTTP(w, r) }))
	defer as.Close()
	a = New(Options{Self: as.URL, Fleet: []string{bURL}}) // bURL no longer listening
	defer a.Close()
	a.run = func(context.Context, PlanRequest, *telemetry.Tracer, func(ProgressEvent)) ([]byte, error) {
		return []byte(`{"from":"a"}`), nil
	}
	ah = a.Handler()

	// a's ring still contains bURL; reqB may hash to either member of the
	// rebuilt pair, so force a b-owned workload against the fresh ring.
	ring = newHashRing([]string{as.URL, bURL})
	reqB, _ = workloadOwnedBy(t, ring, bURL)
	resp, err := client.New(as.URL).Plan(context.Background(), reqB)
	if err != nil {
		t.Fatalf("plan with dead owner: %v", err)
	}
	if resp.Peer != "" || string(resp.Plan) != `{"from":"a"}` {
		t.Fatalf("dead-owner request: peer=%q plan=%s, want local compute", resp.Peer, resp.Plan)
	}
	var buf bytes.Buffer
	a.Registry().WriteProm(&buf)
	if !strings.Contains(buf.String(), `mario_serve_peer_routed_total{result="error"} 1`) {
		t.Error("routing failure not counted")
	}
}
