// Package serve turns the mario optimizer into a resident planning service:
// an HTTP/JSON daemon that canonicalizes Optimize requests into workload
// fingerprints, answers repeats from an LRU plan cache, collapses concurrent
// identical requests onto one tuner run (singleflight), bounds concurrent
// tuner work with a worker pool plus admission control, streams tuner
// progress as newline-delimited JSON, and drains gracefully on shutdown.
// Configured with fleet peers, a server also acts as a distributed-planning
// member: it routes plan requests to each workload's consistent-hash owner,
// answers shard batches other coordinators dispatch, and distributes its own
// branch-and-bound searches across the fleet (see fleet.go).
//
// The cache contract leans on the determinism the tuner already guarantees:
// the same fingerprint always produces byte-identical plan JSON, so a cache
// hit is indistinguishable from a fresh Optimize — the paper's "near
// zero-cost" move applied to planning itself.
package serve

import "mario/internal/serve/api"

// The wire types live in mario/internal/serve/api so the server and the
// client can share them without importing each other; these aliases keep
// the historical serve.* names working.
type (
	// PlanRequest is the body of POST /v1/plan and /v1/plan/stream.
	PlanRequest = api.PlanRequest
	// PlanResponse is the body of a successful POST /v1/plan.
	PlanResponse = api.PlanResponse
	// ProgressEvent is one streamed tuner progress update.
	ProgressEvent = api.ProgressEvent
	// Health is the /healthz body.
	Health = api.Health
	// ShardRequest is one fleet shard batch (POST /v1/shard).
	ShardRequest = api.ShardRequest
	// ShardResponse is a worker's answer to one shard batch.
	ShardResponse = api.ShardResponse
)
