package serve

import (
	"strings"
	"testing"

	"mario"
)

// TestRequestValidateErrors pins the error message of every PlanRequest
// reject path, so HTTP clients get a diagnosable 400 body rather than a
// generic failure.
func TestRequestValidateErrors(t *testing.T) {
	valid := func() PlanRequest {
		return PlanRequest{Model: "LLaMA2-3B", Devices: 8, GlobalBatch: 64}
	}
	cases := []struct {
		name    string
		mut     func(*PlanRequest)
		wantErr string
	}{
		{"model and model_config", func(r *PlanRequest) {
			m := mario.Models()["LLaMA2-3B"]
			r.ModelConfig = &m
		}, "model or model_config, not both"},
		{"unknown model", func(r *PlanRequest) { r.Model = "GPT9-999T" }, `unknown model "GPT9-999T"`},
		{"missing model", func(r *PlanRequest) { r.Model = "" }, "model or model_config is required"},
		{"zero devices", func(r *PlanRequest) { r.Devices = 0 }, "must be positive"},
		{"negative global batch", func(r *PlanRequest) { r.GlobalBatch = -1 }, "must be positive"},
		{"bad scheme", func(r *PlanRequest) { r.Scheme = "zigzag" }, "unknown scheme"},
		{"bad memory", func(r *PlanRequest) { r.Memory = "lots" }, "invalid memory spec"},
		{"zero micro batch", func(r *PlanRequest) { r.MicroBatches = []int{4, 0} }, "micro_batches entries must be positive"},
		{"negative timeout", func(r *PlanRequest) { r.TimeoutSec = -1 }, "timeout_sec must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := valid()
			tc.mut(&r)
			if _, err := r.Validate(); err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() error = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestFingerprintStrategyFields pins which of the search-strategy knobs are
// part of the workload identity. NoPrune and NoBnB change the trace and the
// search stats, so they must produce distinct cache entries; NoDelta, Workers
// and TimeoutSec are speed controls with bit-identical plans, so they must
// share one.
func TestFingerprintStrategyFields(t *testing.T) {
	fp := func(mut func(*PlanRequest)) string {
		r := PlanRequest{Model: "LLaMA2-3B", Devices: 8, GlobalBatch: 64}
		if mut != nil {
			mut(&r)
		}
		model, err := r.Validate()
		if err != nil {
			t.Fatal(err)
		}
		return r.Fingerprint(model)
	}
	base := fp(nil)

	for name, mut := range map[string]func(*PlanRequest){
		"no_prune": func(r *PlanRequest) { r.NoPrune = true },
		"no_bnb":   func(r *PlanRequest) { r.NoBnB = true },
	} {
		if fp(mut) == base {
			t.Errorf("%s: fingerprint unchanged, want a distinct cache identity", name)
		}
	}
	for name, mut := range map[string]func(*PlanRequest){
		"no_delta":    func(r *PlanRequest) { r.NoDelta = true },
		"workers":     func(r *PlanRequest) { r.Workers = 7 },
		"timeout_sec": func(r *PlanRequest) { r.TimeoutSec = 3 },
	} {
		if fp(mut) != base {
			t.Errorf("%s: fingerprint changed, but the plan is bit-identical — cache would split", name)
		}
	}

	// Scheme canonicalization: the "auto" spellings share one identity.
	if fp(func(r *PlanRequest) { r.Scheme = "auto" }) != base || fp(func(r *PlanRequest) { r.Scheme = "Auto" }) != base {
		t.Error("auto-scheme spellings produce distinct fingerprints")
	}
}

// TestRequestConfigPlumbing: every strategy knob on the wire reaches the
// optimizer config — a silently dropped field would make the daemon ignore
// what the client asked for.
func TestRequestConfigPlumbing(t *testing.T) {
	r := PlanRequest{
		Model: "LLaMA2-3B", Devices: 8, GlobalBatch: 64,
		NoPrune: true, NoBnB: true, NoDelta: true,
	}
	if _, err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	conf := r.Config(3)
	if !conf.NoPrune || !conf.NoBnB || !conf.NoDelta {
		t.Errorf("config dropped a strategy knob: NoPrune=%v NoBnB=%v NoDelta=%v", conf.NoPrune, conf.NoBnB, conf.NoDelta)
	}
	if conf.Workers != 3 {
		t.Errorf("config.Workers = %d, want the resolved value 3", conf.Workers)
	}
}
