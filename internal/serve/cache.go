package serve

import (
	"container/list"
	"sync"
)

// planCache is a bounded LRU mapping workload fingerprints to marshaled plan
// JSON. It stores bytes, not *mario.Plan: responses serve the stored bytes
// verbatim, which is what makes a cache hit byte-identical to the Optimize
// run that populated it.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one fingerprint → plan-bytes pair.
type cacheEntry struct {
	fp   string
	data []byte
}

// newPlanCache returns a cache bounded to capacity entries (minimum 1).
func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached plan bytes for fp and marks the entry recently
// used. The returned slice must be treated as immutable.
func (c *planCache) get(fp string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[fp]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// add inserts (or refreshes) an entry and evicts the least recently used one
// when over capacity.
func (c *planCache) add(fp string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		el.Value.(*cacheEntry).data = data
		c.order.MoveToFront(el)
		return
	}
	c.items[fp] = c.order.PushFront(&cacheEntry{fp: fp, data: data})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).fp)
	}
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
