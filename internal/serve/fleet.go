package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"mario"
	"mario/internal/serve/api"
	"mario/internal/serve/client"
	"mario/internal/tuner"
)

// This file is the serve half of the distributed planning fleet. A server
// configured with Options.Fleet plays three roles at once:
//
//   - Coordinator: its own branch-and-bound searches run the probe pass
//     locally and dispatch waves of sorted grid points to the fleet over
//     POST /v1/shard (fleetDispatcher, a tuner.ShardDispatcher over the
//     service client). The merged plan is byte-identical to a single-node
//     run for every fleet shape — the tuner's merge contract — so the plan
//     cache and every downstream consumer are fleet-oblivious.
//   - Worker: it answers /v1/shard batches from other coordinators,
//     memoizing a ShardWorker per workload fingerprint so repeated shards
//     of one search share schedule builds and graph results.
//   - Router: with Self set, blocking plan requests are forwarded to the
//     workload's consistent-hash owner, so a fleet computes each plan once
//     and answers repeats from the owner's cache (peer cache hits).
//     Streaming requests always run locally — proxying an NDJSON stream
//     buys nothing over just computing, since the plan is deterministic.

// hashRing is a consistent-hash ring over the fleet members. Each member
// gets ringVnodes virtual points; a fingerprint is owned by the first
// member clockwise from its hash. The ring is deterministic in the member
// list alone, so every member routes identically without coordination.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

const ringVnodes = 64

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newHashRing builds the ring from the member base URLs (deduplicated).
func newHashRing(members []string) *hashRing {
	seen := map[string]bool{}
	r := &hashRing{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// owner returns the member owning fp, or "" on an empty ring.
func (r *hashRing) owner(fp string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(fp)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// fleetState is everything a fleet member holds beyond a standalone server:
// the peer list and their clients, the routing ring, and the shard-worker
// cache serving /v1/shard.
type fleetState struct {
	self    string
	peers   []string // other members, sorted
	clients map[string]*client.Client
	ring    *hashRing // nil unless Self is set
	shards  int
	chunk   int
	noShare bool

	mu      sync.Mutex
	workers map[string]*workerEntry // fingerprint → shard worker (LRU)
	order   []string                // LRU order, oldest first
	cap     int
}

type workerEntry struct {
	fp string
	w  *mario.ShardWorker
}

// newFleetState builds the fleet side of a server. It is always non-nil:
// even a server with no Fleet configured keeps the worker cache, because a
// coordinator elsewhere may list it as a peer and dispatch shards to it;
// only dispatch and routing require Fleet/Self.
func newFleetState(opts Options) *fleetState {
	fs := &fleetState{
		self:    opts.Self,
		clients: map[string]*client.Client{},
		workers: map[string]*workerEntry{},
		cap:     opts.WorkerCache,
		shards:  opts.Shards,
		chunk:   opts.ShardChunk,
		noShare: opts.NoShareIncumbent,
	}
	seen := map[string]bool{opts.Self: true, "": true}
	for _, p := range opts.Fleet {
		if seen[p] {
			continue
		}
		seen[p] = true
		fs.peers = append(fs.peers, p)
		cl := client.New(p)
		cl.Retries = opts.FleetRetries
		cl.Backoff = opts.FleetBackoff
		fs.clients[p] = cl
	}
	sort.Strings(fs.peers)
	if fs.shards <= 0 {
		fs.shards = len(fs.peers)
	}
	if opts.Self != "" && len(fs.peers) > 0 {
		fs.ring = newHashRing(append([]string{opts.Self}, fs.peers...))
	}
	return fs
}

// workerFor returns the memoized shard worker for a validated workload,
// creating (and LRU-evicting) under the lock. metrics receives the worker
// tuner's simulation counts.
func (fs *fleetState) workerFor(fp string, req PlanRequest, workers int, s *Server) (*mario.ShardWorker, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if e, ok := fs.workers[fp]; ok {
		for i, o := range fs.order {
			if o == fp {
				fs.order = append(append(fs.order[:i:i], fs.order[i+1:]...), fp)
				break
			}
		}
		return e.w, nil
	}
	model, err := req.Validate()
	if err != nil {
		return nil, err
	}
	w, err := mario.NewShardWorker(req.Config(workers), model, s.search)
	if err != nil {
		return nil, err
	}
	fs.workers[fp] = &workerEntry{fp: fp, w: w}
	fs.order = append(fs.order, fp)
	for len(fs.order) > fs.cap {
		old := fs.order[0]
		fs.order = fs.order[1:]
		delete(fs.workers, old)
	}
	return w, nil
}

// handleShard answers one coordinator-dispatched shard batch. Draining
// members refuse with 503 (the coordinator falls back locally), and a
// protocol-version mismatch is a 400 — never a silent best-effort answer.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := decodeInto(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		errorJSON(w, decodeStatus(err), err)
		return
	}
	if req.Proto != api.ShardProtoVersion {
		errorJSON(w, http.StatusBadRequest,
			fmt.Errorf("serve: shard protocol %d, want %d", req.Proto, api.ShardProtoVersion))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		errorJSON(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	s.sm.shardRequests.Inc()
	model, err := req.Workload.Validate()
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	fp := req.Workload.Fingerprint(model)
	workers := req.Workload.Workers
	if s.opts.TunerWorkers > 0 && (workers <= 0 || workers > s.opts.TunerWorkers) {
		workers = s.opts.TunerWorkers
	}
	sw, err := s.fleet.workerFor(fp, req.Workload, workers, s)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), req.Workload.Timeout(s.opts.DefaultTimeout, s.opts.MaxTimeout))
	defer cancel()
	outcomes, err := sw.EvalShard(ctx, req.Points, req.Incumbent)
	if err != nil {
		s.sm.shardErrors.Inc()
		errorJSON(w, http.StatusInternalServerError, err)
		return
	}
	s.sm.shardPoints.Add(int64(len(outcomes)))
	writeJSON(w, ShardResponse{Proto: api.ShardProtoVersion, Fingerprint: fp, Outcomes: outcomes})
}

// routeToPeer forwards a blocking plan request to the workload's
// consistent-hash owner when that owner is another member. It returns the
// owner's response (with Peer stamped) and true when routing happened; any
// peer failure falls back to local computation — routing is an
// optimization, never a correctness dependency.
func (s *Server) routeToPeer(r *http.Request, fp string, req PlanRequest) (*PlanResponse, bool) {
	fs := s.fleet
	if fs == nil || fs.ring == nil || r.Header.Get(api.RoutedHeader) != "" {
		return nil, false
	}
	owner := fs.ring.owner(fp)
	if owner == "" || owner == fs.self {
		return nil, false
	}
	cl, ok := fs.clients[owner]
	if !ok {
		return nil, false
	}
	resp, err := cl.PlanRouted(r.Context(), req)
	if err != nil {
		s.sm.peerRoutedErr.Inc()
		return nil, false // compute locally instead
	}
	s.sm.peerRoutedOK.Inc()
	resp.Peer = owner
	return resp, true
}

// fleetDispatcher adapts the fleet's /v1/shard protocol to the tuner's
// ShardDispatcher interface for one coordinator search. Shard s of a wave
// goes to peer s mod len(peers); the workload request travels with every
// batch so workers resolve (and memoize) the right grid.
type fleetDispatcher struct {
	s        *Server
	fs       *fleetState
	workload PlanRequest
}

func (d *fleetDispatcher) Shards() int    { return d.fs.shards }
func (d *fleetDispatcher) ChunkSize() int { return d.fs.chunk }

func (d *fleetDispatcher) Dispatch(ctx context.Context, shard int, points []tuner.ShardPoint, incumbent float64, hasIncumbent bool) ([]tuner.ShardOutcome, error) {
	peer := d.fs.peers[shard%len(d.fs.peers)]
	req := api.ShardRequest{Proto: api.ShardProtoVersion, Workload: d.workload, Points: points}
	if hasIncumbent && !d.fs.noShare {
		inc := incumbent
		req.Incumbent = &inc
	}
	resp, err := d.fs.clients[peer].Shard(ctx, req)
	if err != nil {
		d.s.sm.shardDispatchErr.Inc()
		return nil, err
	}
	d.s.sm.shardDispatchOK.Inc()
	return resp.Outcomes, nil
}

// sharderFor returns the dispatcher for one coordinator search, or nil
// when the server has no fleet to dispatch to.
func (s *Server) sharderFor(req PlanRequest) tuner.ShardDispatcher {
	if s.fleet == nil || len(s.fleet.peers) == 0 {
		return nil
	}
	return &fleetDispatcher{s: s, fs: s.fleet, workload: req}
}
