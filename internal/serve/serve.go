package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"mario"
	"mario/internal/telemetry"
)

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// CacheSize bounds the LRU plan cache; 0 means 64 plans.
	CacheSize int
	// Workers is the tuner worker-pool size — how many plan computations
	// may run concurrently; 0 means 2.
	Workers int
	// QueueDepth bounds how many flights may wait for a worker beyond the
	// ones running; a full queue rejects new work with 429. 0 means 16.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request does not
	// set one; 0 means 5 minutes.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines; 0 means 15 minutes.
	MaxTimeout time.Duration
	// TunerWorkers caps the per-run tuner parallelism (mario.Config.Workers)
	// a request may ask for; 0 leaves requests uncapped (0 = GOMAXPROCS).
	TunerWorkers int
	// NoDelta forces full-fixpoint re-simulation (mario.Config.NoDelta) on
	// every run, regardless of what requests ask. Plans are bit-identical
	// either way, so the cache is unaffected; this is the server-wide
	// escape hatch.
	NoDelta bool
	// Registry receives the server's metric series (and the search
	// metrics of every tuner run); nil allocates a private registry.
	// /metrics renders everything registered on it.
	Registry *telemetry.Registry
	// FlightRing is how many recent request traces the flight recorder
	// keeps; 0 means 64. FlightSlow is the slow-log size; 0 means 8.
	FlightRing int
	FlightSlow int
	// MaxBodyBytes bounds request bodies on the plan, stream and shard
	// endpoints (oversized bodies get 413); 0 means 1 MiB.
	MaxBodyBytes int64

	// Fleet lists the base URLs of the other planning-fleet members. A
	// non-empty fleet makes this server a coordinator: its branch-and-bound
	// searches are dispatched across the members in shard waves, and (when
	// Self is also set) plan requests are routed to each workload's
	// consistent-hash owner.
	Fleet []string
	// Self is this member's own advertised base URL. Required for peer
	// routing (it places this member on the hash ring); optional for shard
	// dispatch.
	Self string
	// Shards is the number of shard partitions per dispatch wave; 0 means
	// one per fleet member.
	Shards int
	// ShardChunk is the number of sorted grid points per shard per wave; 0
	// means tuner.DefaultShardChunk.
	ShardChunk int
	// FleetRetries and FleetBackoff configure the shard clients' bounded
	// retry (client.Client Retries/Backoff); zero means no retries — the
	// coordinator's local fallback already keeps results exact.
	FleetRetries int
	FleetBackoff time.Duration
	// NoShareIncumbent stops the coordinator from broadcasting its
	// incumbent to workers. Results are identical; workers just simulate
	// points the incumbent would have skipped. It exists as the
	// benchmarking control for the incumbent-sharing win.
	NoShareIncumbent bool
	// WorkerCache bounds the per-workload shard-worker cache (memoized
	// tuners serving /v1/shard); 0 means 8.
	WorkerCache int
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 5 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 15 * time.Minute
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	if o.FlightRing <= 0 {
		o.FlightRing = 64
	}
	if o.FlightSlow <= 0 {
		o.FlightSlow = 8
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.WorkerCache <= 0 {
		o.WorkerCache = 8
	}
	return o
}

// Server is the planning service: an http.Handler that answers Optimize
// requests from a fingerprint-keyed plan cache, deduplicates concurrent
// identical requests onto shared flights, and executes cache misses on a
// bounded worker pool. Every tuner run is traced with a telemetry.Tracer
// keyed by the workload fingerprint; the canonical trace is returned to
// clients that ask (?trace=1) and kept in the flight recorder either way.
// Create one with New, mount Handler, and call Drain (or Close) on
// shutdown.
type Server struct {
	opts      Options
	reg       *telemetry.Registry
	sm        *serverMetrics
	search    *telemetry.SearchMetrics
	flightRec *telemetry.FlightRecorder
	cache     *planCache
	fleet     *fleetState // peer routing, shard dispatch and the shard-worker cache

	mu       sync.Mutex
	flights  map[string]*flight
	draining bool

	jobs chan *flight
	wg   sync.WaitGroup

	// run computes one flight's plan bytes, recording its spans on tracer;
	// tests replace it to make admission and drain behaviour deterministic.
	run func(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error)
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		reg:       opts.Registry,
		sm:        newServerMetrics(opts.Registry),
		search:    telemetry.NewSearchMetrics(opts.Registry),
		flightRec: telemetry.NewFlightRecorder(opts.FlightRing, opts.FlightSlow),
		cache:     newPlanCache(opts.CacheSize),
		flights:   make(map[string]*flight),
		jobs:      make(chan *flight, opts.QueueDepth),
	}
	s.sm.cacheCapacity.Set(int64(opts.CacheSize))
	s.fleet = newFleetState(opts)
	s.run = s.optimize
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the metrics registry /metrics renders.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// FlightRecorder returns the server's black box — the ring of recent
// request traces /debug/flight dumps.
func (s *Server) FlightRecorder() *telemetry.FlightRecorder { return s.flightRec }

// Handler returns the service's HTTP routes:
//
//	POST /v1/plan         blocking plan request → PlanResponse JSON
//	POST /v1/plan/stream  same request, NDJSON progress stream + final plan
//	POST /v1/shard        fleet shard batch → ShardResponse JSON
//	GET  /v1/models       built-in model presets
//	GET  /healthz         readiness (503 while draining)
//	GET  /metrics         Prometheus text exposition
//	GET  /debug/flight    flight-recorder dump (recent traces + slow log)
//
// The plan endpoints accept ?trace=1 to embed the run's canonical search
// trace in the response.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/plan/stream", s.handleStream)
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	return mux
}

// Drain stops admitting new plan requests, lets queued and running flights
// finish, and returns when the worker pool has exited (or ctx expires).
// In-flight HTTP waiters are not interrupted — pair Drain with
// http.Server.Shutdown, which waits for them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Drain without grace: it cancels every in-progress flight and
// waits for the workers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs)
	}
	for _, f := range s.flights {
		f.cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// errBusy and errDraining are the admission-control refusals.
var (
	errBusy     = errors.New("serve: worker queue full")
	errDraining = errors.New("serve: server is draining")
)

// admit resolves one validated request under the server mutex: a cache hit
// returns the stored bytes; an identical in-progress flight is joined; and
// otherwise a new flight is created and enqueued — unless the queue is full
// or the server is draining.
func (s *Server) admit(fp string, req PlanRequest) (data []byte, f *flight, created bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.cache.get(fp); ok {
		return d, nil, false, nil
	}
	if s.draining {
		return nil, nil, false, errDraining
	}
	if f, ok := s.flights[fp]; ok {
		f.waiters++
		return nil, f, false, nil
	}
	f = newFlight(fp, req)
	select {
	case s.jobs <- f:
		s.flights[fp] = f
		return nil, f, true, nil
	default:
		f.cancel()
		return nil, nil, false, errBusy
	}
}

// leave drops one waiter from a flight; the last waiter out cancels the
// flight's context so an abandoned tuner run stops burning a worker.
func (s *Server) leave(f *flight) {
	s.mu.Lock()
	f.waiters--
	if f.waiters <= 0 {
		f.cancel()
	}
	s.mu.Unlock()
}

// worker executes flights off the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for f := range s.jobs {
		s.runFlight(f)
	}
}

// flightOutcome maps a run error to the flight recorder's outcome label.
func flightOutcome(err error) string {
	switch {
	case err == nil:
		return "completed"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

// runFlight computes one flight's plan under a fingerprint-keyed tracer,
// populates the cache on success, files the trace with the flight recorder,
// and wakes the waiters. The flight leaves the dedup map before finish so a
// late identical request either hits the cache (success) or starts a fresh
// flight (failure) — it can never join a finished one.
func (s *Server) runFlight(f *flight) {
	if err := f.ctx.Err(); err != nil {
		s.removeFlight(f)
		f.finish(nil, err)
		return
	}
	s.sm.tunerRuns.Inc()
	tracer := telemetry.New(f.fp).WithMetrics(s.search)
	start := time.Now()
	data, err := s.run(f.ctx, f.req, tracer, f.broadcast)
	elapsed := time.Since(start)
	tr := tracer.Snapshot()
	if raw, merr := json.Marshal(tr); merr == nil {
		f.trace = raw
	}
	s.flightRec.Record(telemetry.FlightRecord{
		Fingerprint: f.fp,
		Outcome:     flightOutcome(err),
		Start:       start,
		Elapsed:     elapsed,
		Trace:       tr,
	})
	if err == nil {
		s.cache.add(f.fp, data)
	}
	s.removeFlight(f)
	f.finish(data, err)
}

func (s *Server) removeFlight(f *flight) {
	s.mu.Lock()
	if cur, ok := s.flights[f.fp]; ok && cur == f {
		delete(s.flights, f.fp)
	}
	s.mu.Unlock()
}

// optimize is the production run function: it resolves the request into a
// mario.Config, executes OptimizeContext with the flight's tracer and
// progress forwarding, and marshals the plan with the deterministic Plan
// codec.
func (s *Server) optimize(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error) {
	model, err := req.Validate()
	if err != nil {
		return nil, err
	}
	workers := req.Workers
	if s.opts.TunerWorkers > 0 && (workers <= 0 || workers > s.opts.TunerWorkers) {
		workers = s.opts.TunerWorkers
	}
	conf := req.Config(workers)
	if s.opts.NoDelta {
		conf.NoDelta = true
	}
	// A configured fleet turns this run into a coordinator search: probe
	// locally, dispatch shard waves to the peers. The tuner guarantees the
	// plan bytes are identical to a local run (and falls back locally on
	// any dispatch failure), so nothing downstream can tell.
	conf.Sharder = s.sharderFor(req)
	conf.Tracer = tracer
	conf.Progress = func(n int, best string, throughput float64) {
		progress(ProgressEvent{Explored: n, Best: best, BestThroughput: throughput})
	}
	plan, err := mario.OptimizeContext(ctx, conf, model)
	if err != nil {
		return nil, err
	}
	return json.Marshal(plan)
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// decodeRequest parses and validates the request body. The body is bounded
// by Options.MaxBodyBytes: an oversized request surfaces as
// *http.MaxBytesError, which the handlers map to 413.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (PlanRequest, string, error) {
	var req PlanRequest
	if err := decodeInto(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		return req, "", err
	}
	model, err := req.Validate()
	if err != nil {
		return req, "", err
	}
	return req, req.Fingerprint(model), nil
}

// decodeInto strictly decodes a JSON body bounded to max bytes.
func decodeInto(w http.ResponseWriter, r *http.Request, max int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, max))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request: %w", err)
	}
	return nil
}

// decodeStatus maps a request-decoding failure to its HTTP status: 413 for
// a body over the MaxBodyBytes cap, 400 otherwise.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// wantTrace reports whether the request asked for the search trace.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// admissionStatus maps an admission refusal to its HTTP status.
func admissionStatus(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, fp, err := s.decodeRequest(w, r)
	if err != nil {
		errorJSON(w, decodeStatus(err), err)
		return
	}
	if resp, ok := s.routeToPeer(r, fp, req); ok {
		s.sm.requests.Inc()
		s.sm.latency.ObserveDuration(time.Since(start))
		writeJSON(w, *resp)
		return
	}
	s.sm.requests.Inc()
	s.sm.inFlight.Add(1)
	defer func() {
		s.sm.inFlight.Add(-1)
		s.sm.latency.ObserveDuration(time.Since(start))
	}()

	data, f, created, err := s.admit(fp, req)
	if err != nil {
		s.sm.rejected.Inc()
		errorJSON(w, admissionStatus(err), err)
		return
	}
	if data != nil {
		s.sm.cacheHits.Inc()
		s.sm.completed.Inc()
		writeJSON(w, PlanResponse{Fingerprint: fp, Cached: true, Plan: data})
		return
	}
	s.sm.cacheMisses.Inc()
	if !created {
		s.sm.flightsShared.Inc()
	}

	ctx, cancel := context.WithTimeout(r.Context(), req.Timeout(s.opts.DefaultTimeout, s.opts.MaxTimeout))
	defer cancel()
	select {
	case <-f.done:
	case <-ctx.Done():
		s.leave(f)
		s.sm.timeouts.Inc()
		errorJSON(w, http.StatusGatewayTimeout, fmt.Errorf("serve: request abandoned: %w", ctx.Err()))
		return
	}
	if f.err != nil {
		s.sm.errors.Inc()
		errorJSON(w, http.StatusInternalServerError, f.err)
		return
	}
	s.sm.completed.Inc()
	resp := PlanResponse{Fingerprint: fp, Shared: !created, Plan: f.data}
	if wantTrace(r) {
		resp.Trace = f.trace
	}
	writeJSON(w, resp)
}

// streamRecord is one NDJSON line of the streaming endpoint. Type is
// "progress" (Explored/Best/BestThroughput set), "plan" (the terminal
// PlanResponse fields set) or "error".
type streamRecord struct {
	Type string `json:"type"`
	// Progress fields.
	Explored       int     `json:"explored,omitempty"`
	Best           string  `json:"best,omitempty"`
	BestThroughput float64 `json:"throughput,omitempty"`
	// Terminal fields.
	Fingerprint string          `json:"fingerprint,omitempty"`
	Cached      bool            `json:"cached,omitempty"`
	Shared      bool            `json:"shared,omitempty"`
	Plan        json.RawMessage `json:"plan,omitempty"`
	Trace       json.RawMessage `json:"trace,omitempty"`
	Error       string          `json:"error,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, fp, err := s.decodeRequest(w, r)
	if err != nil {
		errorJSON(w, decodeStatus(err), err)
		return
	}
	s.sm.requests.Inc()
	s.sm.inFlight.Add(1)
	defer func() {
		s.sm.inFlight.Add(-1)
		s.sm.latency.ObserveDuration(time.Since(start))
	}()

	data, f, created, err := s.admit(fp, req)
	if err != nil {
		s.sm.rejected.Inc()
		errorJSON(w, admissionStatus(err), err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(rec streamRecord) {
		enc.Encode(rec)
		if flusher != nil {
			flusher.Flush()
		}
	}

	if data != nil {
		s.sm.cacheHits.Inc()
		s.sm.completed.Inc()
		emit(streamRecord{Type: "plan", Fingerprint: fp, Cached: true, Plan: data})
		return
	}
	s.sm.cacheMisses.Inc()
	if !created {
		s.sm.flightsShared.Inc()
	}

	sub := f.subscribe()
	ctx, cancel := context.WithTimeout(r.Context(), req.Timeout(s.opts.DefaultTimeout, s.opts.MaxTimeout))
	defer cancel()
	for {
		select {
		case ev := <-sub:
			emit(streamRecord{Type: "progress", Explored: ev.Explored, Best: ev.Best, BestThroughput: ev.BestThroughput})
		case <-f.done:
			// Deliver progress still sitting in the buffer (broadcast
			// happens-before finish) so fast runs stream a coherent story.
			for drained := false; !drained; {
				select {
				case ev := <-sub:
					emit(streamRecord{Type: "progress", Explored: ev.Explored, Best: ev.Best, BestThroughput: ev.BestThroughput})
				default:
					drained = true
				}
			}
			if f.err != nil {
				s.sm.errors.Inc()
				emit(streamRecord{Type: "error", Error: f.err.Error()})
				return
			}
			s.sm.completed.Inc()
			term := streamRecord{Type: "plan", Fingerprint: fp, Shared: !created, Plan: f.data}
			if wantTrace(r) {
				term.Trace = f.trace
			}
			emit(term)
			return
		case <-ctx.Done():
			s.leave(f)
			s.sm.timeouts.Inc()
			emit(streamRecord{Type: "error", Error: fmt.Sprintf("serve: request abandoned: %v", ctx.Err())})
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{
		OK:          !draining,
		Draining:    draining,
		InFlight:    s.sm.inFlight.Value(),
		Queued:      len(s.jobs),
		CachedPlans: s.cache.len(),
	}
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Scrape-time gauges: refreshed here so the registry render is the
	// whole exposition.
	s.sm.queueDepth.Set(int64(len(s.jobs)))
	s.sm.cachedPlans.Set(int64(s.cache.len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteProm(w)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(s.flightRec.Dump())
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(mario.Models()))
	for name := range mario.Models() {
		names = append(names, name)
	}
	sort.Strings(names)
	writeJSON(w, map[string][]string{"models": names})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
