package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mario/internal/telemetry"
)

// benchServer builds a server whose run stub returns instantly with a
// small traced span tree — the service-layer overhead (HTTP, singleflight,
// cache, metrics, flight recorder) is the thing under test, not the tuner.
func benchServer() (*Server, *httptest.Server) {
	s := New(Options{Workers: 2, QueueDepth: 64})
	s.run = func(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error) {
		root := tracer.Root(telemetry.PhaseOptimize, "")
		search := root.Child(telemetry.PhaseSearch, "")
		p := search.Child(telemetry.PhasePoint, "0000")
		p.Child(telemetry.PhaseSim, "").End()
		p.End()
		search.End()
		root.End()
		return []byte(fmt.Sprintf(`{"gbs":%d}`, req.GlobalBatch)), nil
	}
	return s, httptest.NewServer(s.Handler())
}

func benchPost(b *testing.B, url string, body []byte) {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServePlanCacheHit measures the steady-state request path: the
// plan is in cache, so one request costs routing, fingerprinting, a cache
// lookup and response encoding.
func BenchmarkServePlanCacheHit(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	body, _ := json.Marshal(testRequest(16))
	benchPost(b, ts.URL+"/v1/plan", body) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/plan", body)
	}
}

// BenchmarkServePlanFresh measures a full miss: every request carries a
// distinct global batch, so each one runs the (instant) stub through the
// worker pool, records a flight, and populates the cache.
func BenchmarkServePlanFresh(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(testRequest(8 + 8*i)) // unique fingerprint per iteration
		benchPost(b, ts.URL+"/v1/plan", body)
	}
}

// BenchmarkServePlanTraced is the fresh path with ?trace=1: adds the span
// snapshot, canonical-ID derivation and trace JSON embedding.
func BenchmarkServePlanTraced(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(testRequest(8 + 8*i))
		benchPost(b, ts.URL+"/v1/plan?trace=1", body)
	}
}

// BenchmarkServeMetricsScrape prices one /metrics render of the full
// serve + search registry.
func BenchmarkServeMetricsScrape(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	body, _ := json.Marshal(testRequest(16))
	benchPost(b, ts.URL+"/v1/plan", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
