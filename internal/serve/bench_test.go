package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mario/internal/serve/loadgen"
	"mario/internal/telemetry"
)

// benchServer builds a server whose run stub returns instantly with a
// small traced span tree — the service-layer overhead (HTTP, singleflight,
// cache, metrics, flight recorder) is the thing under test, not the tuner.
func benchServer() (*Server, *httptest.Server) {
	s := New(Options{Workers: 2, QueueDepth: 64})
	s.run = func(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error) {
		root := tracer.Root(telemetry.PhaseOptimize, "")
		search := root.Child(telemetry.PhaseSearch, "")
		p := search.Child(telemetry.PhasePoint, "0000")
		p.Child(telemetry.PhaseSim, "").End()
		p.End()
		search.End()
		root.End()
		return []byte(fmt.Sprintf(`{"gbs":%d}`, req.GlobalBatch)), nil
	}
	return s, httptest.NewServer(s.Handler())
}

func benchPost(b *testing.B, url string, body []byte) {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServePlanCacheHit measures the steady-state request path: the
// plan is in cache, so one request costs routing, fingerprinting, a cache
// lookup and response encoding.
func BenchmarkServePlanCacheHit(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	body, _ := json.Marshal(testRequest(16))
	benchPost(b, ts.URL+"/v1/plan", body) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/plan", body)
	}
}

// BenchmarkServePlanFresh measures a full miss: every request carries a
// distinct global batch, so each one runs the (instant) stub through the
// worker pool, records a flight, and populates the cache.
func BenchmarkServePlanFresh(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(testRequest(8 + 8*i)) // unique fingerprint per iteration
		benchPost(b, ts.URL+"/v1/plan", body)
	}
}

// BenchmarkServePlanTraced is the fresh path with ?trace=1: adds the span
// snapshot, canonical-ID derivation and trace JSON embedding.
func BenchmarkServePlanTraced(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(testRequest(8 + 8*i))
		benchPost(b, ts.URL+"/v1/plan?trace=1", body)
	}
}

// reportLoadgen folds a load-run's quantiles into the benchmark output;
// benchjson preserves the custom units under "extra" in BENCH_serve.json.
func reportLoadgen(b *testing.B, res *loadgen.Result) {
	b.Helper()
	if res.Errors > 0 || res.Rej429 > 0 || res.Rej503 > 0 {
		b.Fatalf("load run degraded: %+v", res)
	}
	b.ReportMetric(float64(res.P50.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
	b.ReportMetric(res.ReqPerSec, "req/s")
	b.ReportMetric(float64(res.Cached)/float64(res.Total), "cache-rate")
}

// BenchmarkServeLoadgenBurst measures the request path under concurrent
// mixed load on one member: 4 workload fingerprints cycled by 16 in-flight
// clients, so after the first misses the run is the cache-hit steady state.
// p50/p99/req-s land in BENCH_serve.json via the custom metrics.
func BenchmarkServeLoadgenBurst(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	base := testRequest(16)
	b.ReportAllocs()
	b.ResetTimer()
	res, err := loadgen.Run(context.Background(), loadgen.Options{
		Targets:     []string{ts.URL},
		Workloads:   loadgen.MixedWorkloads(base, 4),
		Requests:    b.N,
		Concurrency: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	reportLoadgen(b, res)
}

// BenchmarkServeLoadgenFleet is the burst against a routed three-member
// loopback fleet: requests spray across all members and consistent-hash
// routing forwards each workload to its owner, so the numbers price the
// extra peer hop on top of the single-member path.
func BenchmarkServeLoadgenFleet(b *testing.B) {
	const members = 3
	handlers := make([]http.Handler, members)
	urls := make([]string, members)
	var tss []*httptest.Server
	for i := range handlers {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		tss = append(tss, ts)
		urls[i] = ts.URL
	}
	for i := range handlers {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		s := New(Options{Self: urls[i], Fleet: peers, Workers: 2, QueueDepth: 64})
		s.run = func(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error) {
			return []byte(fmt.Sprintf(`{"gbs":%d}`, req.GlobalBatch)), nil
		}
		handlers[i] = s.Handler()
		defer s.Close()
	}
	defer func() {
		for _, ts := range tss {
			ts.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	res, err := loadgen.Run(context.Background(), loadgen.Options{
		Targets:     urls,
		Workloads:   loadgen.MixedWorkloads(testRequest(16), 4),
		Requests:    b.N,
		Concurrency: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Peer)/float64(res.Total), "peer-rate")
	reportLoadgen(b, res)
}

// BenchmarkServeMetricsScrape prices one /metrics render of the full
// serve + search registry.
func BenchmarkServeMetricsScrape(b *testing.B) {
	s, ts := benchServer()
	defer ts.Close()
	defer s.Close()
	body, _ := json.Marshal(testRequest(16))
	benchPost(b, ts.URL+"/v1/plan", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
