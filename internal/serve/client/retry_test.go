package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mario/internal/serve"
	"mario/internal/serve/client"
)

// flakyServer fails the first `fail` requests with the given status (0
// means slam the connection shut), then answers every request with a valid
// plan response. It counts attempts.
func flakyServer(fail int, status int) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if int(n) <= fail {
			if status == 0 {
				hj, _ := w.(http.Hijacker)
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":"flaky %d"}`, status)
			return
		}
		json.NewEncoder(w).Encode(serve.PlanResponse{Fingerprint: "fp", Plan: json.RawMessage(`{"v":1}`)})
	}))
	return ts, &hits
}

// TestRetryFlakyServer is the retry satellite's table test: transient
// statuses and transport failures are retried up to Retries times with
// backoff, non-retryable statuses fail immediately, and the default
// configuration never retries at all.
func TestRetryFlakyServer(t *testing.T) {
	cases := []struct {
		name     string
		fail     int
		status   int
		retries  int
		wantOK   bool
		wantHits int64
	}{
		{name: "default no retries", fail: 1, status: http.StatusServiceUnavailable, retries: 0, wantOK: false, wantHits: 1},
		{name: "503 recovers within budget", fail: 2, status: http.StatusServiceUnavailable, retries: 3, wantOK: true, wantHits: 3},
		{name: "429 recovers within budget", fail: 1, status: http.StatusTooManyRequests, retries: 2, wantOK: true, wantHits: 2},
		{name: "transport error recovers", fail: 1, status: 0, retries: 2, wantOK: true, wantHits: 2},
		{name: "budget exhausted", fail: 5, status: http.StatusServiceUnavailable, retries: 2, wantOK: false, wantHits: 3},
		{name: "400 never retried", fail: 3, status: http.StatusBadRequest, retries: 3, wantOK: false, wantHits: 1},
	}
	req := serve.PlanRequest{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, hits := flakyServer(tc.fail, tc.status)
			defer ts.Close()
			cl := client.New(ts.URL)
			cl.Retries = tc.retries
			cl.Backoff = time.Millisecond
			resp, err := cl.Plan(context.Background(), req)
			if tc.wantOK != (err == nil) {
				t.Fatalf("err = %v, wantOK = %v", err, tc.wantOK)
			}
			if tc.wantOK && string(resp.Plan) != `{"v":1}` {
				t.Errorf("plan = %s", resp.Plan)
			}
			if !tc.wantOK && tc.status == http.StatusBadRequest && !strings.Contains(err.Error(), "flaky 400") {
				t.Errorf("400 error lost the server body: %v", err)
			}
			if got := hits.Load(); got != tc.wantHits {
				t.Errorf("server saw %d attempts, want %d", got, tc.wantHits)
			}
		})
	}
}

// TestRetryHonorsContext pins that backoff sleeps abort when the caller's
// context is cancelled rather than running out the retry budget.
func TestRetryHonorsContext(t *testing.T) {
	ts, hits := flakyServer(1000, http.StatusServiceUnavailable)
	defer ts.Close()
	cl := client.New(ts.URL)
	cl.Retries = 1000
	cl.Backoff = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Plan(ctx, serve.PlanRequest{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16})
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored context for %v", elapsed)
	}
	if hits.Load() != 1 {
		t.Errorf("server saw %d attempts, want 1 before the cancelled backoff", hits.Load())
	}
}
