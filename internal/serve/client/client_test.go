package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"mario"
	"mario/internal/serve"
	"mario/internal/serve/client"
)

// TestEndToEndByteIdentity runs the full stack — client, HTTP, service,
// real tuner — and requires the served plan to be byte-identical to a
// direct mario.Optimize of the same workload, for the fresh run and the
// cache hit alike.
func TestEndToEndByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real tuner search")
	}
	s := serve.New(serve.Options{Workers: 2, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := serve.PlanRequest{
		Model:        "LLaMA2-3B",
		Devices:      4,
		GlobalBatch:  16,
		Memory:       "40G",
		MicroBatches: []int{1, 2},
	}
	direct, err := mario.Optimize(mario.Config{
		PipelineScheme:  "Auto",
		GlobalBatchSize: 16,
		NumDevices:      4,
		MemoryPerDevice: "40G",
		MicroBatchSizes: []int{1, 2},
	}, mario.Models()["LLaMA2-3B"])
	if err != nil {
		t.Fatalf("direct optimize: %v", err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatalf("marshal direct plan: %v", err)
	}

	c := client.New(ts.URL)
	ctx := context.Background()

	fresh, err := c.Plan(ctx, req)
	if err != nil {
		t.Fatalf("fresh plan: %v", err)
	}
	if fresh.Cached {
		t.Fatal("first request reported cached")
	}
	if !bytes.Equal(fresh.Plan, want) {
		t.Fatalf("fresh served plan differs from direct Optimize (%d vs %d bytes)", len(fresh.Plan), len(want))
	}

	events := 0
	hit, err := c.PlanStream(ctx, req, func(serve.ProgressEvent) { events++ })
	if err != nil {
		t.Fatalf("cached plan: %v", err)
	}
	if !hit.Cached {
		t.Fatal("second request missed the cache")
	}
	if events != 0 {
		t.Fatalf("cache hit streamed %d progress events, want 0", events)
	}
	if !bytes.Equal(hit.Plan, want) {
		t.Fatal("cache hit not byte-identical to direct Optimize")
	}
	if hit.Fingerprint != fresh.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", fresh.Fingerprint, hit.Fingerprint)
	}

	plan, err := client.Decode(hit)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if plan.Best.Label() != direct.Best.Label() || plan.Best.Throughput != direct.Best.Throughput {
		t.Fatalf("decoded best %s/%.4f, direct %s/%.4f",
			plan.Best.Label(), plan.Best.Throughput, direct.Best.Label(), direct.Best.Throughput)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if !h.OK || h.CachedPlans != 1 {
		t.Fatalf("health = %+v", h)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"mario_serve_tuner_runs_total 1",
		"mario_serve_cache_hits_total 1",
		"mario_serve_cache_misses_total 1",
		"mario_serve_request_seconds_count 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestStreamProgressOnFreshRun requires a fresh streamed run to surface
// tuner progress before the terminal plan.
func TestStreamProgressOnFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real tuner search")
	}
	s := serve.New(serve.Options{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL)
	events := 0
	resp, err := c.PlanStream(context.Background(), serve.PlanRequest{
		Model:        "LLaMA2-3B",
		Devices:      4,
		GlobalBatch:  16,
		Memory:       "40G",
		MicroBatches: []int{1, 2},
	}, func(serve.ProgressEvent) { events++ })
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if resp.Cached || resp.Shared {
		t.Fatalf("fresh run reported cached=%v shared=%v", resp.Cached, resp.Shared)
	}
	if events == 0 {
		t.Fatal("fresh streamed run produced no progress events")
	}
	if _, err := client.Decode(resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
}
