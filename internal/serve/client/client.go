// Package client is the Go client for the mariod planning service
// (internal/serve): it submits PlanRequests over HTTP, optionally follows
// the NDJSON progress stream, and decodes the returned plan JSON back into
// a *mario.Plan with mario.LoadPlan.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"mario"
	"mario/internal/serve/api"
)

// Client talks to one mariod instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTPClient overrides the transport; nil uses a client with no overall
	// timeout (plan requests are bounded server-side and by ctx).
	HTTPClient *http.Client
	// Trace asks the plan endpoints for the run's canonical search trace
	// (?trace=1); when the request is answered by a tuner run, the
	// response's Trace field carries it.
	Trace bool
	// Retries is how many times a POST is re-sent after a transient
	// failure (a transport error, or a 429/502/503/504 status). 0 — the
	// default — disables retries entirely; requests are deterministic and
	// idempotent, so retrying is always safe, just not always wanted.
	Retries int
	// Backoff is the base delay of the exponential backoff between
	// retries (doubled per attempt, with ±50% jitter); 0 means 50ms when
	// Retries is set.
	Backoff time.Duration
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{}
}

// apiError decodes the service's {"error": ...} body into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("client: server returned %s", resp.Status)
}

// retryableStatus reports whether a response status is worth re-sending
// the request for: admission pushback and gateway-style transient errors.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoffDelay is the sleep before retry attempt n (0-based): the base
// doubled per attempt, with ±50% jitter so a fleet of clients does not
// retry in lockstep.
func (c *Client) backoffDelay(attempt int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << uint(attempt)
	jitter := 0.5 + rand.Float64() // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// postJSON sends one JSON body to path, retrying transient failures up to
// c.Retries times. The caller owns the returned response body. hdr holds
// extra header key/value pairs.
func (c *Client) postJSON(ctx context.Context, url string, body []byte, hdr ...string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		for i := 0; i+1 < len(hdr); i += 2 {
			hreq.Header.Set(hdr[i], hdr[i+1])
		}
		resp, err := c.http().Do(hreq)
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode == http.StatusOK:
			return resp, nil
		default:
			apiErr := apiError(resp)
			resp.Body.Close()
			if !retryableStatus(resp.StatusCode) {
				return nil, apiErr
			}
			lastErr = apiErr
		}
		if attempt >= c.Retries {
			return nil, lastErr
		}
		select {
		case <-time.After(c.backoffDelay(attempt)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (c *Client) post(ctx context.Context, path string, req api.PlanRequest, hdr ...string) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	url := c.BaseURL + path
	if c.Trace {
		url += "?trace=1"
	}
	return c.postJSON(ctx, url, body, hdr...)
}

// PlanRouted is Plan with the fleet routing guard set: the receiving
// member answers locally instead of consulting its hash ring again. Fleet
// members use it to forward a request to the workload's owner exactly
// once.
func (c *Client) PlanRouted(ctx context.Context, req api.PlanRequest) (*api.PlanResponse, error) {
	resp, err := c.post(ctx, "/v1/plan", req, api.RoutedHeader, "1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var pr api.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &pr, nil
}

// Shard dispatches one fleet shard batch (POST /v1/shard) and returns the
// worker's outcomes. Coordinators use it through the fleet dispatcher;
// protocol-version mismatches surface as the server's 400 error.
func (c *Client) Shard(ctx context.Context, req api.ShardRequest) (*api.ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding shard request: %w", err)
	}
	resp, err := c.postJSON(ctx, c.BaseURL+"/v1/shard", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sr api.ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("client: decoding shard response: %w", err)
	}
	return &sr, nil
}

// Plan submits a blocking plan request and returns the raw response. Use
// Decode (or mario.LoadPlan) to turn the response's Plan bytes into a
// *mario.Plan.
func (c *Client) Plan(ctx context.Context, req api.PlanRequest) (*api.PlanResponse, error) {
	resp, err := c.post(ctx, "/v1/plan", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var pr api.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &pr, nil
}

// PlanStream submits a streaming plan request, invoking onProgress (when
// non-nil) for every progress record, and returns the terminal plan
// response.
func (c *Client) PlanStream(ctx context.Context, req api.PlanRequest, onProgress func(api.ProgressEvent)) (*api.PlanResponse, error) {
	resp, err := c.post(ctx, "/v1/plan/stream", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // plan records carry the full trace
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Type           string          `json:"type"`
			Explored       int             `json:"explored"`
			Best           string          `json:"best"`
			BestThroughput float64         `json:"throughput"`
			Fingerprint    string          `json:"fingerprint"`
			Cached         bool            `json:"cached"`
			Shared         bool            `json:"shared"`
			Plan           json.RawMessage `json:"plan"`
			Trace          json.RawMessage `json:"trace"`
			Error          string          `json:"error"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("client: decoding stream record: %w", err)
		}
		switch rec.Type {
		case "progress":
			if onProgress != nil {
				onProgress(api.ProgressEvent{Explored: rec.Explored, Best: rec.Best, BestThroughput: rec.BestThroughput})
			}
		case "plan":
			return &api.PlanResponse{Fingerprint: rec.Fingerprint, Cached: rec.Cached, Shared: rec.Shared, Plan: rec.Plan, Trace: rec.Trace}, nil
		case "error":
			return nil, fmt.Errorf("client: server error: %s", rec.Error)
		default:
			return nil, fmt.Errorf("client: unknown stream record type %q", rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading stream: %w", err)
	}
	return nil, fmt.Errorf("client: stream ended without a terminal record")
}

// Decode turns a plan response's raw bytes into a *mario.Plan.
func Decode(pr *api.PlanResponse) (*mario.Plan, error) {
	return mario.LoadPlan(pr.Plan)
}

// Health fetches /healthz. The returned Health is valid even when the
// server reports 503 (draining); other statuses are errors.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, apiError(resp)
	}
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("client: decoding health: %w", err)
	}
	return &h, nil
}

// Metrics fetches the raw Prometheus text exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Flight fetches the flight-recorder dump (recent request traces + slow
// log) from /debug/flight as plain text.
func (c *Client) Flight(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/debug/flight", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// WaitReady polls /healthz until the server answers OK, ctx expires, or the
// given budget elapses. Useful right after spawning a mariod process.
func (c *Client) WaitReady(ctx context.Context, budget time.Duration) error {
	deadline := time.NewTimer(budget)
	defer deadline.Stop()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	var last error
	for {
		h, err := c.Health(ctx)
		if err == nil && h.OK {
			return nil
		}
		if err == nil {
			err = fmt.Errorf("client: server draining")
		}
		last = err
		select {
		case <-tick.C:
		case <-deadline.C:
			return fmt.Errorf("client: server not ready after %v: %w", budget, last)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
