package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"

	"testing"
	"time"

	"mario/internal/telemetry"
)

// testRequest returns a valid request; gbs varies the fingerprint.
func testRequest(gbs int) PlanRequest {
	return PlanRequest{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: gbs, Memory: "40G", MicroBatches: []int{1, 2}}
}

// blockingRun is a run stub whose executions park until released. It lets
// tests hold the worker pool in a known state without real tuner work.
type blockingRun struct {
	started chan string   // receives the request fingerprint-ish label when a run starts
	release chan struct{} // closed (or sent to) to let runs finish
	result  func(req PlanRequest) ([]byte, error)
}

func newBlockingRun() *blockingRun {
	return &blockingRun{
		started: make(chan string, 32),
		release: make(chan struct{}),
		result: func(req PlanRequest) ([]byte, error) {
			return []byte(fmt.Sprintf(`{"gbs":%d}`, req.GlobalBatch)), nil
		},
	}
}

func (b *blockingRun) run(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error) {
	b.started <- fmt.Sprintf("gbs=%d", req.GlobalBatch)
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.result(req)
}

func postPlan(t *testing.T, url string, req PlanRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestSingleflightCollapse sends N identical concurrent requests and
// requires exactly one tuner run, with every response carrying the same
// plan bytes.
func TestSingleflightCollapse(t *testing.T) {
	br := newBlockingRun()
	s := New(Options{Workers: 2, QueueDepth: 8})
	s.run = br.run
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	type outcome struct {
		status int
		resp   PlanResponse
	}
	results := make([]outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postPlan(t, ts.URL, testRequest(16))
			results[i].status = resp.StatusCode
			json.Unmarshal(data, &results[i].resp)
		}(i)
	}

	<-br.started // one run began…
	select {
	case label := <-br.started:
		t.Fatalf("second tuner run started (%s); singleflight failed", label)
	case <-time.After(100 * time.Millisecond):
	}
	close(br.release)
	wg.Wait()

	want := []byte(`{"gbs":16}`)
	shared := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		if !bytes.Equal(r.resp.Plan, want) {
			t.Fatalf("request %d: plan %s, want %s", i, r.resp.Plan, want)
		}
		if r.resp.Shared {
			shared++
		}
	}
	if got := s.sm.tunerRuns.Value(); got != 1 {
		t.Fatalf("TunerRuns = %d, want 1", got)
	}
	if got := s.sm.flightsShared.Value(); got != n-1 {
		t.Fatalf("FlightsShared = %d, want %d", got, n-1)
	}
	if shared != n-1 {
		t.Fatalf("%d responses marked shared, want %d", shared, n-1)
	}
	if hits, misses := s.sm.cacheHits.Value(), s.sm.cacheMisses.Value(); hits != 0 || misses != int64(n) {
		t.Fatalf("cache hits/misses = %d/%d, want 0/%d", hits, misses, n)
	}

	// The flight populated the cache: a repeat is a hit with the same bytes.
	resp, data := postPlan(t, ts.URL, testRequest(16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	var pr PlanResponse
	json.Unmarshal(data, &pr)
	if !pr.Cached || !bytes.Equal(pr.Plan, want) {
		t.Fatalf("repeat not served verbatim from cache: cached=%v plan=%s", pr.Cached, pr.Plan)
	}
	if got := s.sm.cacheHits.Value(); got != 1 {
		t.Fatalf("CacheHits = %d, want 1", got)
	}
}

// TestAdmissionRejection saturates a 1-worker, depth-1 server and requires
// the next distinct request to be refused with 429.
func TestAdmissionRejection(t *testing.T) {
	br := newBlockingRun()
	s := New(Options{Workers: 1, QueueDepth: 1})
	s.run = br.run
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postPlan(t, ts.URL, testRequest(16)) // occupies the worker
	}()
	<-br.started // worker busy; queue empty

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postPlan(t, ts.URL, testRequest(32)) // fills the queue slot
	}()
	// Wait until the queued flight is actually in the channel.
	for i := 0; ; i++ {
		if len(s.jobs) == 1 {
			break
		}
		if i > 200 {
			t.Fatal("queued flight never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := postPlan(t, ts.URL, testRequest(64))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d (%s), want 429", resp.StatusCode, body)
	}
	if got := s.sm.rejected.Value(); got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	close(br.release)
	<-done
	wg.Wait()
}

// TestGracefulDrain verifies Drain finishes in-flight work (the waiter gets
// its plan) while refusing new requests with 503.
func TestGracefulDrain(t *testing.T) {
	br := newBlockingRun()
	s := New(Options{Workers: 1, QueueDepth: 4})
	s.run = br.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		resp   PlanResponse
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, data := postPlan(t, ts.URL, testRequest(16))
		var pr PlanResponse
		json.Unmarshal(data, &pr)
		inFlight <- result{resp.StatusCode, pr}
	}()
	<-br.started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining must be visible before the flight finishes: healthz flips
	// and new requests bounce.
	for i := 0; ; i++ {
		hr, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		hr.Body.Close()
		if hr.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if i > 200 {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := postPlan(t, ts.URL, testRequest(32))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", resp.StatusCode)
	}

	close(br.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-inFlight
	if r.status != http.StatusOK || !bytes.Equal(r.resp.Plan, []byte(`{"gbs":16}`)) {
		t.Fatalf("in-flight request during drain: status %d plan %s", r.status, r.resp.Plan)
	}
}

// TestAbandonCancelsFlight verifies that when the only waiter times out,
// the flight's context is cancelled so the tuner run stops.
func TestAbandonCancelsFlight(t *testing.T) {
	br := newBlockingRun()
	s := New(Options{Workers: 1, QueueDepth: 4, DefaultTimeout: 50 * time.Millisecond})
	s.run = br.run
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postPlan(t, ts.URL, testRequest(16))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got := s.sm.timeouts.Value(); got != 1 {
		t.Fatalf("Timeouts = %d, want 1", got)
	}
	// The run stub returns ctx.Err() once cancelled; the worker then frees
	// up, which we observe by running another flight to completion.
	close(br.release)
	resp, data := postPlan(t, ts.URL, testRequest(32))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d (%s)", resp.StatusCode, data)
	}
	// The abandoned flight must not have cached anything: retrying the
	// abandoned workload is a miss, not a hit.
	resp, data = postPlan(t, ts.URL, testRequest(16))
	var pr PlanResponse
	json.Unmarshal(data, &pr)
	if resp.StatusCode != http.StatusOK || pr.Cached {
		t.Fatalf("retry after abandon: status %d cached=%v (abandoned run must not populate the cache)", resp.StatusCode, pr.Cached)
	}
}

// TestStreamEndpoint checks the NDJSON contract: progress records then a
// terminal plan record.
func TestStreamEndpoint(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	s.run = func(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error) {
		for i := 1; i <= 3; i++ {
			progress(ProgressEvent{Explored: i, Best: "1F1B", BestThroughput: float64(i)})
		}
		return []byte(`{"ok":true}`), nil
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testRequest(16))
	resp, err := http.Post(ts.URL+"/v1/plan/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	last := lines[len(lines)-1]
	var term streamRecord
	if err := json.Unmarshal(last, &term); err != nil {
		t.Fatalf("terminal record: %v", err)
	}
	if term.Type != "plan" || !bytes.Equal(term.Plan, []byte(`{"ok":true}`)) {
		t.Fatalf("terminal record = %s", last)
	}
	for _, line := range lines[:len(lines)-1] {
		var rec streamRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Type != "progress" {
			t.Fatalf("non-progress record before terminal: %s", line)
		}
	}
}

// TestValidationErrors exercises the 400 paths.
func TestValidationErrors(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []PlanRequest{
		{}, // no model
		{Model: "NoSuchModel", Devices: 4, GlobalBatch: 16},
		{Model: "LLaMA2-3B", Devices: 0, GlobalBatch: 16}, // devices
		{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16, Scheme: "bogus"},
		{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16, Memory: "12X"},
		{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16, MicroBatches: []int{0}},
		{Model: "LLaMA2-3B", Devices: 4, GlobalBatch: 16, TimeoutSec: -1},
	}
	for i, req := range cases {
		resp, body := postPlan(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, resp.StatusCode, body)
		}
	}
}

// TestTraceAndFlightRecorder covers the observability surface: ?trace=1
// embeds the run's canonical trace, cache hits carry none, /debug/flight
// dumps the recorded flight, and /metrics renders the registry (serve and
// search series together).
func TestTraceAndFlightRecorder(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	s.run = func(ctx context.Context, req PlanRequest, tracer *telemetry.Tracer, progress func(ProgressEvent)) ([]byte, error) {
		root := tracer.Root(telemetry.PhaseOptimize, "")
		search := root.Child(telemetry.PhaseSearch, "")
		search.End()
		root.End()
		return []byte(`{"ok":true}`), nil
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testRequest(16))
	resp, err := http.Post(ts.URL+"/v1/plan?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var pr PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("decode: %v (%s)", err, raw)
	}
	if len(pr.Trace) == 0 {
		t.Fatal("traced request returned no trace")
	}
	var tr struct {
		Fingerprint string `json:"fingerprint"`
		Spans       []struct {
			Phase string `json:"phase"`
			Path  string `json:"path"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(pr.Trace, &tr); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if tr.Fingerprint != pr.Fingerprint {
		t.Errorf("trace fingerprint %q != response fingerprint %q", tr.Fingerprint, pr.Fingerprint)
	}
	if len(tr.Spans) != 2 || tr.Spans[0].Phase != "optimize" || tr.Spans[1].Path != "optimize/search" {
		t.Errorf("unexpected trace spans: %+v", tr.Spans)
	}

	// Cache hit: no trace even when asked (the run's trace lives in the
	// flight recorder).
	resp2, data := postPlan(t, ts.URL, testRequest(16))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	var hit PlanResponse
	json.Unmarshal(data, &hit)
	if !hit.Cached || len(hit.Trace) != 0 {
		t.Errorf("cache hit: cached=%v trace=%d bytes, want cached with no trace", hit.Cached, len(hit.Trace))
	}

	// The flight recorder holds the completed run with its phase summary.
	fresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatalf("flight: %v", err)
	}
	fdump, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	for _, want := range []string{"1 recent request(s)", "outcome=completed", "optimize", pr.Fingerprint[:12]} {
		if !bytes.Contains(fdump, []byte(want)) {
			t.Errorf("/debug/flight missing %q in:\n%s", want, fdump)
		}
	}

	// /metrics renders the whole registry: serve counters, scrape-time
	// gauges and the search series registered at boot.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mdump, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"mario_serve_tuner_runs_total 1",
		"mario_serve_cache_hits_total 1",
		"mario_serve_completed_total 2",
		"mario_serve_cached_plans 1",
		"mario_serve_cache_capacity 64",
		"mario_serve_request_seconds_count 2",
		"mario_search_runs_total 0",
		`mario_search_points_total{outcome="explored"} 0`,
	} {
		if !bytes.Contains(mdump, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
