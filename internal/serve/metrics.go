package serve

import "mario/internal/telemetry"

// serverMetrics are the planning service's registry-backed instruments.
// The series names are the service's stable monitoring interface (the
// mariod selfcheck and the ops docs grep for them), unchanged from the
// hand-rolled obs.ServerStats counters they replaced.
type serverMetrics struct {
	// requests counts plan requests that passed validation (both the
	// blocking and the streaming endpoint).
	requests *telemetry.Counter
	// cacheHits and cacheMisses count plan-cache lookups.
	cacheHits, cacheMisses *telemetry.Counter
	// flightsShared counts requests that joined an already-running tuner
	// flight instead of starting their own (singleflight deduplication).
	flightsShared *telemetry.Counter
	// tunerRuns counts tuner executions actually started — the number the
	// singleflight/cache layers exist to minimise.
	tunerRuns *telemetry.Counter
	// rejected counts requests refused by admission control; timeouts
	// requests that gave up waiting; errors requests that failed
	// internally; completed requests answered with a plan.
	rejected, timeouts, errors, completed *telemetry.Counter
	// inFlight is the number of plan requests currently being handled.
	inFlight *telemetry.Gauge
	// queueDepth, cachedPlans and cacheCapacity are scrape-time gauges the
	// metrics handler refreshes before rendering.
	queueDepth, cachedPlans, cacheCapacity *telemetry.Gauge
	// latency is the end-to-end plan-request latency histogram.
	latency *telemetry.Histogram
	// peerRoutedOK and peerRoutedErr count blocking plan requests forwarded
	// to their consistent-hash owner, by outcome (an error falls back to
	// local computation).
	peerRoutedOK, peerRoutedErr *telemetry.Counter
	// shardRequests counts /v1/shard batches served for other coordinators;
	// shardErrors the ones that failed; shardPoints the point outcomes
	// returned.
	shardRequests, shardErrors, shardPoints *telemetry.Counter
	// shardDispatchOK and shardDispatchErr count shard batches this server
	// dispatched to its fleet as a coordinator, by outcome (an error is
	// recovered by the tuner's local fallback).
	shardDispatchOK, shardDispatchErr *telemetry.Counter
}

// newServerMetrics registers the mario_serve_* series on r.
func newServerMetrics(r *telemetry.Registry) *serverMetrics {
	return &serverMetrics{
		requests:      r.Counter("mario_serve_requests_total", "Validated plan requests."),
		cacheHits:     r.Counter("mario_serve_cache_hits_total", "Plan-cache hits."),
		cacheMisses:   r.Counter("mario_serve_cache_misses_total", "Plan-cache misses."),
		flightsShared: r.Counter("mario_serve_flights_shared_total", "Requests deduplicated onto a running flight."),
		tunerRuns:     r.Counter("mario_serve_tuner_runs_total", "Tuner executions started."),
		rejected:      r.Counter("mario_serve_rejected_total", "Requests refused by admission control."),
		timeouts:      r.Counter("mario_serve_timeouts_total", "Requests that gave up waiting."),
		errors:        r.Counter("mario_serve_errors_total", "Requests failed with an internal error."),
		completed:     r.Counter("mario_serve_completed_total", "Requests answered with a plan."),
		inFlight:      r.Gauge("mario_serve_in_flight", "Plan requests currently being handled."),
		queueDepth:    r.Gauge("mario_serve_queue_depth", "Flights waiting for a worker."),
		cachedPlans:   r.Gauge("mario_serve_cached_plans", "Plans in the LRU cache."),
		cacheCapacity: r.Gauge("mario_serve_cache_capacity", "LRU cache capacity."),
		latency:       r.Histogram("mario_serve_request_seconds", "End-to-end plan-request latency.", telemetry.LatencyBounds),

		peerRoutedOK:     r.LabeledCounter("mario_serve_peer_routed_total", "Plan requests forwarded to their hash-ring owner.", "result", "ok"),
		peerRoutedErr:    r.LabeledCounter("mario_serve_peer_routed_total", "Plan requests forwarded to their hash-ring owner.", "result", "error"),
		shardRequests:    r.Counter("mario_serve_shard_requests_total", "Fleet shard batches served."),
		shardErrors:      r.Counter("mario_serve_shard_errors_total", "Fleet shard batches that failed."),
		shardPoints:      r.Counter("mario_serve_shard_points_total", "Shard point outcomes returned."),
		shardDispatchOK:  r.LabeledCounter("mario_serve_shard_dispatch_total", "Shard batches dispatched to the fleet.", "result", "ok"),
		shardDispatchErr: r.LabeledCounter("mario_serve_shard_dispatch_total", "Shard batches dispatched to the fleet.", "result", "error"),
	}
}
