// Package nn provides transformer-style layers with hand-written forward and
// backward passes: Linear, GELU, LayerNorm, single-head causal
// self-attention, and the Block that composes them. Together with
// internal/train it forms the miniature training framework this
// reproduction substitutes for Megatron-DeepSpeed: activation checkpointing
// here really drops and recomputes tensors, so the semantic claims of the
// paper's schedules (identical losses, reduced live memory) are checked on
// real numbers.
package nn

import (
	"math"

	"mario/internal/tensor"
)

// Param is a trainable weight with its gradient accumulator. Gradients are
// accumulated in float64 so that accumulation order (which differs between
// pipeline schedules) does not perturb the result beyond float64 rounding.
type Param struct {
	W    *tensor.Tensor
	Grad []float64
}

func newParam(w *tensor.Tensor) *Param {
	return &Param{W: w, Grad: make([]float64, w.Len())}
}

// accumulate adds g into the float64 gradient buffer.
func (p *Param) accumulate(g *tensor.Tensor) {
	for i, v := range g.Data {
		p.Grad[i] += float64(v)
	}
}

// Step applies plain SGD with the given learning rate over the accumulated
// gradient divided by scale (the micro-batch count), then clears it.
func (p *Param) Step(lr float64, scale float64) {
	for i := range p.W.Data {
		p.W.Data[i] -= float32(lr * p.Grad[i] / scale)
		p.Grad[i] = 0
	}
}

// Cache holds the intermediate tensors a layer retains for its backward
// pass; Bytes reports its live footprint for the memory accounting.
type Cache interface {
	Bytes() int
}

// WeightWork is the deferred weight-gradient half of a split backward pass
// (zero-bubble B/W decomposition): invoking it accumulates the parameter
// gradients that BackwardInput postponed. It closes over the activations and
// output gradients it needs, so those tensors stay live until it runs.
type WeightWork func()

// noWeight is the weight work of a parameterless layer.
var noWeight WeightWork = func() {}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes y and the cache needed by Backward.
	Forward(x *tensor.Tensor) (*tensor.Tensor, Cache)
	// Backward consumes the cache and the output gradient, accumulates
	// parameter gradients, and returns the input gradient. It is exactly
	// BackwardInput followed by the returned WeightWork, so fused and
	// split executions of the same schedule are bit-identical.
	Backward(c Cache, dy *tensor.Tensor) *tensor.Tensor
	// BackwardInput computes only the input gradient (the critical-path B
	// half of a split backward) and returns the weight-gradient work as a
	// deferred closure (the W half, free to run in a pipeline bubble).
	BackwardInput(c Cache, dy *tensor.Tensor) (*tensor.Tensor, WeightWork)
	// Params returns the trainable parameters.
	Params() []*Param
}

// ---------------------------------------------------------------- Linear

// Linear is y = x·W + b.
type Linear struct {
	W *Param // [in, out]
	B *Param // [out]
}

// NewLinear initialises a Linear layer with scaled-normal weights.
func NewLinear(r *tensor.RNG, in, out int) *Linear {
	return &Linear{
		W: newParam(tensor.Randn(r, 1/math.Sqrt(float64(in)), in, out)),
		B: newParam(tensor.New(out)),
	}
}

type linearCache struct{ x *tensor.Tensor }

func (c *linearCache) Bytes() int { return c.x.Bytes() }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	y := tensor.AddRowVec(tensor.MatMul(x, l.W.W), l.B.W)
	return y, &linearCache{x: x}
}

// Backward implements Layer.
func (l *Linear) Backward(c Cache, dy *tensor.Tensor) *tensor.Tensor {
	dx, w := l.BackwardInput(c, dy)
	w()
	return dx
}

// BackwardInput implements Layer. dx needs only the weight; dW = xᵀ·dy and
// dB = Σrows(dy) read the cached input and the output gradient, so both stay
// live inside the returned work.
func (l *Linear) BackwardInput(c Cache, dy *tensor.Tensor) (*tensor.Tensor, WeightWork) {
	lc := c.(*linearCache)
	w := func() {
		l.W.accumulate(tensor.MatMulT1(lc.x, dy))
		l.B.accumulate(tensor.SumRows(dy))
	}
	return tensor.MatMulT2(dy, l.W.W), w
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ---------------------------------------------------------------- GELU

// GELU is the tanh-approximated Gaussian error linear unit.
type GELU struct{}

type geluCache struct{ x *tensor.Tensor }

func (c *geluCache) Bytes() int { return c.x.Bytes() }

const geluK = 0.7978845608028654 // sqrt(2/pi)

// Forward implements Layer.
func (GELU) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		xf := float64(v)
		y.Data[i] = float32(0.5 * xf * (1 + math.Tanh(geluK*(xf+0.044715*xf*xf*xf))))
	}
	return y, &geluCache{x: x}
}

// Backward implements Layer.
func (GELU) Backward(c Cache, dy *tensor.Tensor) *tensor.Tensor {
	x := c.(*geluCache).x
	dx := tensor.New(x.Shape...)
	for i, v := range x.Data {
		xf := float64(v)
		u := geluK * (xf + 0.044715*xf*xf*xf)
		t := math.Tanh(u)
		du := geluK * (1 + 3*0.044715*xf*xf)
		g := 0.5*(1+t) + 0.5*xf*(1-t*t)*du
		dx.Data[i] = dy.Data[i] * float32(g)
	}
	return dx
}

// BackwardInput implements Layer; GELU has no parameters, so the weight half
// is empty.
func (g GELU) BackwardInput(c Cache, dy *tensor.Tensor) (*tensor.Tensor, WeightWork) {
	return g.Backward(c, dy), noWeight
}

// Params implements Layer.
func (GELU) Params() []*Param { return nil }

// ---------------------------------------------------------------- LayerNorm

// LayerNorm normalises the last dimension with learned gain and bias.
type LayerNorm struct {
	G, B *Param
	Eps  float64
}

// NewLayerNorm returns a LayerNorm over vectors of width d.
func NewLayerNorm(d int) *LayerNorm {
	g := tensor.New(d)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{G: newParam(g), B: newParam(tensor.New(d)), Eps: 1e-5}
}

type lnCache struct {
	xhat *tensor.Tensor
	inv  []float64 // per-row 1/std
}

func (c *lnCache) Bytes() int { return c.xhat.Bytes() + 8*len(c.inv) }

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	rows, d := x.Shape[0], x.Shape[1]
	y := tensor.New(x.Shape...)
	xhat := tensor.New(x.Shape...)
	inv := make([]float64, rows)
	for i := 0; i < rows; i++ {
		row := x.Data[i*d : (i+1)*d]
		var mu float64
		for _, v := range row {
			mu += float64(v)
		}
		mu /= float64(d)
		var va float64
		for _, v := range row {
			dv := float64(v) - mu
			va += dv * dv
		}
		va /= float64(d)
		iv := 1 / math.Sqrt(va+l.Eps)
		inv[i] = iv
		for j, v := range row {
			h := (float64(v) - mu) * iv
			xhat.Data[i*d+j] = float32(h)
			y.Data[i*d+j] = float32(h)*l.G.W.Data[j] + l.B.W.Data[j]
		}
	}
	return y, &lnCache{xhat: xhat, inv: inv}
}

// Backward implements Layer.
func (l *LayerNorm) Backward(c Cache, dy *tensor.Tensor) *tensor.Tensor {
	dx, w := l.BackwardInput(c, dy)
	w()
	return dx
}

// BackwardInput implements Layer. dx depends only on the gain, x̂ and the
// per-row statistics; dG = Σ dy·x̂ and dB = Σ dy are deferred, keeping x̂ and
// dy live in the returned work.
func (l *LayerNorm) BackwardInput(c Cache, dy *tensor.Tensor) (*tensor.Tensor, WeightWork) {
	lc := c.(*lnCache)
	rows, d := dy.Shape[0], dy.Shape[1]
	dx := tensor.New(dy.Shape...)
	for i := 0; i < rows; i++ {
		var sumDh, sumDhXhat float64
		for j := 0; j < d; j++ {
			dh := float64(dy.Data[i*d+j]) * float64(l.G.W.Data[j])
			sumDh += dh
			sumDhXhat += dh * float64(lc.xhat.Data[i*d+j])
		}
		for j := 0; j < d; j++ {
			dh := float64(dy.Data[i*d+j]) * float64(l.G.W.Data[j])
			xh := float64(lc.xhat.Data[i*d+j])
			dx.Data[i*d+j] = float32(lc.inv[i] * (dh - sumDh/float64(d) - xh*sumDhXhat/float64(d)))
		}
	}
	w := func() {
		dg := tensor.New(d)
		db := tensor.New(d)
		for i := 0; i < rows; i++ {
			for j := 0; j < d; j++ {
				dyv := float64(dy.Data[i*d+j])
				dg.Data[j] += float32(dyv * float64(lc.xhat.Data[i*d+j]))
				db.Data[j] += float32(dyv)
			}
		}
		l.G.accumulate(dg)
		l.B.accumulate(db)
	}
	return dx, w
}

// Params implements Layer.
func (l *LayerNorm) Params() []*Param { return []*Param{l.G, l.B} }
