package nn

import (
	"math"
	"testing"

	"mario/internal/tensor"
)

func TestEmbeddingForwardBackward(t *testing.T) {
	r := tensor.NewRNG(1)
	e := NewEmbedding(r, 10, 4)
	ids := []int{3, 7, 3}
	y := e.Forward(ids)
	if y.Shape[0] != 3 || y.Shape[1] != 4 {
		t.Fatalf("shape %v", y.Shape)
	}
	// Rows 0 and 2 are the same embedding.
	for j := 0; j < 4; j++ {
		if y.At(0, j) != y.At(2, j) {
			t.Fatal("same token embedded differently")
		}
	}
	dy := tensor.New(3, 4)
	for i := range dy.Data {
		dy.Data[i] = 1
	}
	e.Backward(ids, dy)
	// Token 3 appears twice → gradient 2 per element; token 7 once; others 0.
	if e.W.Grad[3*4] != 2 || e.W.Grad[7*4] != 1 || e.W.Grad[0] != 0 {
		t.Errorf("grads: tok3=%v tok7=%v tok0=%v", e.W.Grad[3*4], e.W.Grad[7*4], e.W.Grad[0])
	}
}

func TestEmbeddingPanicsOutOfVocab(t *testing.T) {
	e := NewEmbedding(tensor.NewRNG(1), 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.Forward([]int{4})
}

// TestCrossEntropyMatchesClosedForm: uniform logits give loss = ln(vocab)
// and gradient (1/V - onehot)/rows.
func TestCrossEntropyMatchesClosedForm(t *testing.T) {
	const rows, vocab = 2, 8
	logits := tensor.New(rows, vocab)
	loss, grad := CrossEntropy(logits, []int{1, 5})
	if want := math.Log(vocab); math.Abs(loss-want) > 1e-6 {
		t.Errorf("uniform loss = %v, want ln(%d)=%v", loss, vocab, want)
	}
	p := 1.0 / vocab / rows
	if math.Abs(float64(grad.At(0, 0))-p) > 1e-6 {
		t.Errorf("non-target grad = %v, want %v", grad.At(0, 0), p)
	}
	if math.Abs(float64(grad.At(0, 1))-(p-0.5)) > 1e-6 {
		t.Errorf("target grad = %v, want %v", grad.At(0, 1), p-0.5)
	}
}

// TestCrossEntropyGradCheck: finite differences on random logits.
func TestCrossEntropyGradCheck(t *testing.T) {
	r := tensor.NewRNG(4)
	logits := tensor.Randn(r, 1, 3, 5)
	targets := []int{2, 0, 4}
	_, grad := CrossEntropy(logits, targets)
	const eps = 1e-3
	for _, idx := range []int{0, 7, 14} {
		orig := logits.Data[idx]
		logits.Data[idx] = orig + eps
		lp, _ := CrossEntropy(logits, targets)
		logits.Data[idx] = orig - eps
		lm, _ := CrossEntropy(logits, targets)
		logits.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[idx])) > 1e-3 {
			t.Errorf("dlogits[%d]: analytic %v vs numeric %v", idx, grad.Data[idx], num)
		}
	}
}

// TestLMHeadGradCheck: input gradient of the projection.
func TestLMHeadGradCheck(t *testing.T) {
	r := tensor.NewRNG(5)
	h := NewLMHead(r, 6, 4)
	x := tensor.Randn(r, 1, 3, 4)
	logits, c := h.Forward(x)
	g := tensor.Randn(r, 1, logits.Shape...)
	dx := h.Backward(c, g)
	const eps = 1e-3
	i := 5
	orig := x.Data[i]
	x.Data[i] = orig + eps
	yp, _ := h.Forward(x)
	x.Data[i] = orig - eps
	ym, _ := h.Forward(x)
	x.Data[i] = orig
	num := (tensor.Dot(yp, g) - tensor.Dot(ym, g)) / (2 * eps)
	if math.Abs(num-float64(dx.Data[i])) > 2e-2*math.Max(1, math.Abs(num)) {
		t.Errorf("dx[%d]: analytic %v vs numeric %v", i, dx.Data[i], num)
	}
}

// TestTiedHeadSharesGradient: with tied weights, both the embedding gather
// and the head projection accumulate into one table.
func TestTiedHeadSharesGradient(t *testing.T) {
	r := tensor.NewRNG(6)
	e := NewEmbedding(r, 8, 4)
	h := NewTiedLMHead(e)
	if h.W != e.W {
		t.Fatal("head not tied")
	}
	ids := []int{1, 2}
	x := e.Forward(ids)
	logits, c := h.Forward(x)
	_, dlogits := CrossEntropy(logits, []int{2, 3})
	dx := h.Backward(c, dlogits)
	e.Backward(ids, dx)
	var nz int
	for _, g := range e.W.Grad {
		if g != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Error("tied table received no gradient")
	}
}

// TestLanguageModelLearnsCyclicSequence: a toy GPT learns to predict a
// deterministic cyclic token stream, driving the loss well below the
// uniform-prediction ln(V) baseline — end-to-end proof that the substrate
// trains a real language model.
func TestLanguageModelLearnsCyclicSequence(t *testing.T) {
	const vocab, dim, layers, seqLen = 6, 16, 1, 12
	m := NewLanguageModel(tensor.NewRNG(7), vocab, dim, layers, seqLen)
	tokens := make([]int, seqLen)
	targets := make([]int, seqLen)
	for i := range tokens {
		tokens[i] = i % vocab
		targets[i] = (i + 1) % vocab
	}
	first := m.Step(tokens, targets, 0.1)
	var last float64
	for i := 0; i < 120; i++ {
		last = m.Step(tokens, targets, 0.1)
	}
	if base := math.Log(vocab); first < base*0.5 {
		t.Fatalf("initial loss %v suspiciously below uniform baseline %v", first, base)
	}
	if last > first*0.3 {
		t.Errorf("loss did not drop: first %v, last %v", first, last)
	}
	t.Logf("loss %v -> %v over 120 steps (uniform baseline %v)", first, last, math.Log(vocab))
}
