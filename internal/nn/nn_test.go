package nn

import (
	"math"
	"testing"

	"mario/internal/tensor"
)

// gradCheck compares the analytic input gradient of a layer against central
// finite differences of a scalar loss L = Σ y⊙g for a fixed random g.
func gradCheck(t *testing.T, name string, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	r := tensor.NewRNG(99)
	y, c := layer.Forward(x)
	g := tensor.Randn(r, 1, y.Shape...)
	dx := layer.Backward(c, g)

	const eps = 1e-3
	for _, i := range []int{0, x.Len() / 2, x.Len() - 1} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		yp, _ := layer.Forward(x)
		x.Data[i] = orig - eps
		ym, _ := layer.Forward(x)
		x.Data[i] = orig
		num := (tensor.Dot(yp, g) - tensor.Dot(ym, g)) / (2 * eps)
		ana := float64(dx.Data[i])
		scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
		if math.Abs(num-ana)/scale > tol {
			t.Errorf("%s: dx[%d] analytic %v vs numeric %v", name, i, ana, num)
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	r := tensor.NewRNG(1)
	gradCheck(t, "linear", NewLinear(r, 6, 5), tensor.Randn(r, 1, 4, 6), 2e-2)
}

func TestGELUGradCheck(t *testing.T) {
	r := tensor.NewRNG(2)
	gradCheck(t, "gelu", GELU{}, tensor.Randn(r, 1, 3, 7), 2e-2)
}

func TestLayerNormGradCheck(t *testing.T) {
	r := tensor.NewRNG(3)
	gradCheck(t, "layernorm", NewLayerNorm(8), tensor.Randn(r, 1, 4, 8), 2e-2)
}

func TestAttentionGradCheck(t *testing.T) {
	r := tensor.NewRNG(4)
	const d, T, B = 8, 4, 2
	gradCheck(t, "attention", NewAttention(r, d, T), tensor.Randn(r, 1, B*T, d), 3e-2)
}

func TestBlockGradCheck(t *testing.T) {
	r := tensor.NewRNG(5)
	const d, T = 8, 4
	gradCheck(t, "block", NewBlock(r, d, T), tensor.Randn(r, 1, T, d), 3e-2)
}

// TestLinearWeightGradient checks dW against finite differences.
func TestLinearWeightGradient(t *testing.T) {
	r := tensor.NewRNG(6)
	l := NewLinear(r, 4, 3)
	x := tensor.Randn(r, 1, 2, 4)
	y, c := l.Forward(x)
	g := tensor.Randn(r, 1, y.Shape...)
	l.Backward(c, g)

	const eps = 1e-3
	i := 5 // some weight index
	orig := l.W.W.Data[i]
	l.W.W.Data[i] = orig + eps
	yp, _ := l.Forward(x)
	l.W.W.Data[i] = orig - eps
	ym, _ := l.Forward(x)
	l.W.W.Data[i] = orig
	num := (tensor.Dot(yp, g) - tensor.Dot(ym, g)) / (2 * eps)
	if math.Abs(num-l.W.Grad[i]) > 2e-2*math.Max(1, math.Abs(num)) {
		t.Errorf("dW[%d]: analytic %v vs numeric %v", i, l.W.Grad[i], num)
	}
}

// TestAttentionCausality: a change in a later token must not affect earlier
// outputs.
func TestAttentionCausality(t *testing.T) {
	r := tensor.NewRNG(7)
	const d, T = 6, 5
	a := NewAttention(r, d, T)
	x := tensor.Randn(r, 1, T, d)
	y1, _ := a.Forward(x)
	x2 := x.Clone()
	for j := 0; j < d; j++ {
		x2.Set(T-1, j, x2.At(T-1, j)+1)
	}
	y2, _ := a.Forward(x2)
	for i := 0; i < T-1; i++ {
		for j := 0; j < d; j++ {
			if y1.At(i, j) != y2.At(i, j) {
				t.Fatalf("token %d output changed by future token", i)
			}
		}
	}
	// The last token's output must change.
	changed := false
	for j := 0; j < d; j++ {
		if y1.At(T-1, j) != y2.At(T-1, j) {
			changed = true
		}
	}
	if !changed {
		t.Error("last token output unaffected by its own input")
	}
}

// TestForwardDroppedMatchesForward: the checkpointed forward produces
// bit-identical outputs.
func TestForwardDroppedMatchesForward(t *testing.T) {
	r := tensor.NewRNG(8)
	const d, T = 8, 4
	s := NewStage(r, 2, d, T)
	x := tensor.Randn(r, 1, T, d)
	y1, c := s.Forward(x)
	y2 := s.ForwardDropped(x)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("dropped forward diverged at %d: %v vs %v", i, y1.Data[i], y2.Data[i])
		}
	}
	if c.Bytes() <= 0 {
		t.Error("retained cache reports no bytes")
	}
}

// TestStageBackwardAfterRecompute: BW through a recomputed cache equals BW
// through the original cache.
func TestStageBackwardAfterRecompute(t *testing.T) {
	r := tensor.NewRNG(9)
	const d, T = 8, 4
	mk := func() *Stage { return NewStage(tensor.NewRNG(123), 2, d, T) }
	x := tensor.Randn(r, 1, T, d)
	dy := tensor.Randn(r, 1, T, d)

	s1 := mk()
	_, c1 := s1.Forward(x)
	dx1 := s1.Backward(c1, dy)

	s2 := mk()
	_ = s2.ForwardDropped(x) // CFW drops everything
	_, c2 := s2.Forward(x)   // RC restores the cache
	dx2 := s2.Backward(c2, dy)

	for i := range dx1.Data {
		if dx1.Data[i] != dx2.Data[i] {
			t.Fatalf("recompute-path gradient differs at %d", i)
		}
	}
	p1, p2 := s1.Params(), s2.Params()
	for i := range p1 {
		for j := range p1[i].Grad {
			if p1[i].Grad[j] != p2[i].Grad[j] {
				t.Fatalf("weight gradient differs at param %d elem %d", i, j)
			}
		}
	}
}

// TestParamStep: SGD updates move weights against the gradient and clear it.
func TestParamStep(t *testing.T) {
	p := newParam(tensor.FromSlice([]float32{1, 2}, 2))
	p.Grad[0], p.Grad[1] = 10, -10
	p.Step(0.1, 2)
	if math.Abs(float64(p.W.Data[0])-0.5) > 1e-6 || math.Abs(float64(p.W.Data[1])-2.5) > 1e-6 {
		t.Errorf("step result %v", p.W.Data)
	}
	if p.Grad[0] != 0 || p.Grad[1] != 0 {
		t.Error("gradient not cleared")
	}
}

func TestStageParamsCount(t *testing.T) {
	s := NewStage(tensor.NewRNG(1), 3, 8, 4)
	// Per block: LN1(2) + Attn(4) + LN2(2) + FC1(2) + FC2(2) = 12 params.
	if got, want := len(s.Params()), 3*12; got != want {
		t.Errorf("param count = %d, want %d", got, want)
	}
}
