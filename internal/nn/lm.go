package nn

import (
	"fmt"
	"math"

	"mario/internal/tensor"
)

// Embedding maps token ids to vectors — the first-stage module of a GPT-style
// pipeline (the paper's first stage carries the token embedding, which is
// why its profile differs from middle stages).
type Embedding struct {
	W     *Param // [vocab, dim]
	Vocab int
	Dim   int
}

// NewEmbedding initialises a scaled-normal embedding table.
func NewEmbedding(r *tensor.RNG, vocab, dim int) *Embedding {
	return &Embedding{
		W:     newParam(tensor.Randn(r, 0.02, vocab, dim)),
		Vocab: vocab,
		Dim:   dim,
	}
}

// Forward gathers the rows for the given token ids into a [len(ids), dim]
// tensor.
func (e *Embedding) Forward(ids []int) *tensor.Tensor {
	out := tensor.New(len(ids), e.Dim)
	for i, id := range ids {
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("nn: token id %d out of vocabulary [0,%d)", id, e.Vocab))
		}
		copy(out.Data[i*e.Dim:(i+1)*e.Dim], e.W.W.Data[id*e.Dim:(id+1)*e.Dim])
	}
	return out
}

// Backward scatters the output gradient back into the embedding rows.
func (e *Embedding) Backward(ids []int, dy *tensor.Tensor) {
	for i, id := range ids {
		for j := 0; j < e.Dim; j++ {
			e.W.Grad[id*e.Dim+j] += float64(dy.Data[i*e.Dim+j])
		}
	}
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }

// LMHead projects hidden states to vocabulary logits. The weight may be the
// embedding table itself (tied weights, as in GPT; gradients then accumulate
// into the shared parameter from both uses).
type LMHead struct {
	W *Param // [vocab, dim]
}

// NewLMHead creates an untied head.
func NewLMHead(r *tensor.RNG, vocab, dim int) *LMHead {
	return &LMHead{W: newParam(tensor.Randn(r, 0.02, vocab, dim))}
}

// NewTiedLMHead shares the embedding's table.
func NewTiedLMHead(e *Embedding) *LMHead { return &LMHead{W: e.W} }

type lmHeadCache struct{ x *tensor.Tensor }

func (c *lmHeadCache) Bytes() int { return c.x.Bytes() }

// Forward computes logits = x·Wᵀ, shape [rows, vocab].
func (h *LMHead) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	return tensor.MatMulT2(x, h.W.W), &lmHeadCache{x: x}
}

// Backward consumes dlogits, accumulating dW and returning dx.
func (h *LMHead) Backward(c Cache, dlogits *tensor.Tensor) *tensor.Tensor {
	dx, w := h.BackwardInput(c, dlogits)
	w()
	return dx
}

// BackwardInput computes dx = dlogits·W immediately and defers the
// projection gradient dW = dlogitsᵀ·x into the returned weight work.
func (h *LMHead) BackwardInput(c Cache, dlogits *tensor.Tensor) (*tensor.Tensor, WeightWork) {
	x := c.(*lmHeadCache).x
	w := func() { h.W.accumulate(tensor.MatMulT1(dlogits, x)) }
	return tensor.MatMul(dlogits, h.W.W), w
}

// Params returns the projection weight.
func (h *LMHead) Params() []*Param { return []*Param{h.W} }

// CrossEntropy computes the mean next-token loss over logits [rows, vocab]
// against the target ids and returns the logits gradient
// (softmax − one-hot)/rows. Numerically stabilised by the row max.
func CrossEntropy(logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	rows, vocab := logits.Shape[0], logits.Shape[1]
	if len(targets) != rows {
		panic(fmt.Sprintf("nn: %d logits rows but %d targets", rows, len(targets)))
	}
	grad := tensor.New(rows, vocab)
	var loss float64
	for i := 0; i < rows; i++ {
		row := logits.Data[i*vocab : (i+1)*vocab]
		maxv := float64(row[0])
		for _, v := range row[1:] {
			if float64(v) > maxv {
				maxv = float64(v)
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v) - maxv)
		}
		logZ := math.Log(sum) + maxv
		tgt := targets[i]
		if tgt < 0 || tgt >= vocab {
			panic(fmt.Sprintf("nn: target %d out of vocabulary [0,%d)", tgt, vocab))
		}
		loss += logZ - float64(row[tgt])
		for j := 0; j < vocab; j++ {
			p := math.Exp(float64(row[j]) - logZ)
			g := p
			if j == tgt {
				g -= 1
			}
			grad.Data[i*vocab+j] = float32(g / float64(rows))
		}
	}
	return loss / float64(rows), grad
}

// LanguageModel is a complete single-device GPT-style model: embedding,
// transformer blocks, tied LM head. It demonstrates that the nn substrate
// expresses the paper's full model family; the pipeline runtime
// (internal/train) partitions the block stack the same way the paper
// partitions transformer layers.
type LanguageModel struct {
	Embed  *Embedding
	Blocks *Stage
	Head   *LMHead
	SeqLen int
}

// NewLanguageModel builds a tied-weight toy GPT.
func NewLanguageModel(r *tensor.RNG, vocab, dim, layers, seqLen int) *LanguageModel {
	e := NewEmbedding(r, vocab, dim)
	return &LanguageModel{
		Embed:  e,
		Blocks: NewStage(r, layers, dim, seqLen),
		Head:   NewTiedLMHead(e),
		SeqLen: seqLen,
	}
}

// Step runs one training step on a token window predicting the next token at
// every position, returning the loss before the update.
func (m *LanguageModel) Step(tokens, targets []int, lr float64) float64 {
	x := m.Embed.Forward(tokens)
	h, cache := m.Blocks.Forward(x)
	logits, hc := m.Head.Forward(h)
	loss, dlogits := CrossEntropy(logits, targets)
	dh := m.Head.Backward(hc, dlogits)
	dx := m.Blocks.Backward(cache, dh)
	m.Embed.Backward(tokens, dx)
	for _, p := range m.Params() {
		p.Step(lr, 1)
	}
	return loss
}

// Params returns all parameters once (the tied table appears once).
func (m *LanguageModel) Params() []*Param {
	ps := []*Param{m.Embed.W}
	ps = append(ps, m.Blocks.Params()...)
	return ps
}
