package nn

import "mario/internal/tensor"

// Stage is one pipeline stage: a sequence of transformer blocks. It exposes
// the three operations the pipeline runtime schedules: a retaining forward
// (FW), a checkpointed forward that keeps nothing but its input (CFW — the
// recompute replays it with retention), and the backward (BW).
type Stage struct {
	Blocks []*Block
}

// NewStage builds a stage of n blocks of width d over sequences of length
// seqLen.
func NewStage(r *tensor.RNG, n, d, seqLen int) *Stage {
	s := &Stage{Blocks: make([]*Block, n)}
	for i := range s.Blocks {
		s.Blocks[i] = NewBlock(r, d, seqLen)
	}
	return s
}

// StageCache is the retained state of one stage forward.
type StageCache struct {
	caches []Cache
}

// Bytes reports the live activation footprint of the cache.
func (c *StageCache) Bytes() int {
	n := 0
	for _, cc := range c.caches {
		n += cc.Bytes()
	}
	return n
}

// Forward runs the stage retaining all intermediate activations (plain FW).
func (s *Stage) Forward(x *tensor.Tensor) (*tensor.Tensor, *StageCache) {
	caches := make([]Cache, len(s.Blocks))
	for i, b := range s.Blocks {
		x, caches[i] = b.Forward(x)
	}
	return x, &StageCache{caches: caches}
}

// ForwardDropped runs the stage without retaining anything (CFW): the caller
// keeps only the stage input for the later recompute. The result is
// bit-identical to Forward's output.
func (s *Stage) ForwardDropped(x *tensor.Tensor) *tensor.Tensor {
	for _, b := range s.Blocks {
		x, _ = b.Forward(x)
	}
	return x
}

// Backward runs the stage backward through the retained cache. It is
// BackwardInput followed immediately by the weight work, so fused and split
// executions of a schedule accumulate bit-identical gradients.
func (s *Stage) Backward(c *StageCache, dy *tensor.Tensor) *tensor.Tensor {
	dx, w := s.BackwardInput(c, dy)
	w()
	return dx
}

// BackwardInput runs only the input-gradient (B) half over the whole stage
// and returns the deferred weight-gradient (W) half. The work replays the
// per-block weight halves in the same last-to-first order the fused backward
// accumulates them.
func (s *Stage) BackwardInput(c *StageCache, dy *tensor.Tensor) (*tensor.Tensor, WeightWork) {
	ws := make([]WeightWork, len(s.Blocks))
	for i := len(s.Blocks) - 1; i >= 0; i-- {
		dy, ws[i] = s.Blocks[i].BackwardInput(c.caches[i], dy)
	}
	w := func() {
		for i := len(ws) - 1; i >= 0; i-- {
			ws[i]()
		}
	}
	return dy, w
}

// Params returns all trainable parameters of the stage.
func (s *Stage) Params() []*Param {
	var ps []*Param
	for _, b := range s.Blocks {
		ps = append(ps, b.Params()...)
	}
	return ps
}
