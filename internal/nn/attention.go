package nn

import (
	"math"

	"mario/internal/tensor"
)

// Attention is single-head causal self-attention. Inputs are [B·T, d]
// tensors holding B samples of T tokens each; attention is block-diagonal
// over samples.
type Attention struct {
	Wq, Wk, Wv, Wo *Param
	SeqLen         int
	dim            int
}

// NewAttention creates a causal attention layer of width d over sequences of
// length seqLen.
func NewAttention(r *tensor.RNG, d, seqLen int) *Attention {
	scale := 1 / math.Sqrt(float64(d))
	return &Attention{
		Wq:     newParam(tensor.Randn(r, scale, d, d)),
		Wk:     newParam(tensor.Randn(r, scale, d, d)),
		Wv:     newParam(tensor.Randn(r, scale, d, d)),
		Wo:     newParam(tensor.Randn(r, scale, d, d)),
		SeqLen: seqLen,
		dim:    d,
	}
}

type attnCache struct {
	x, q, k, v, o *tensor.Tensor
	attn          []*tensor.Tensor // per-sample [T,T] softmax matrices
}

func (c *attnCache) Bytes() int {
	n := c.x.Bytes() + c.q.Bytes() + c.k.Bytes() + c.v.Bytes() + c.o.Bytes()
	for _, a := range c.attn {
		n += a.Bytes()
	}
	return n
}

// Forward implements Layer.
func (a *Attention) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	bt := x.Shape[0]
	T := a.SeqLen
	if bt%T != 0 {
		panic("nn: attention input rows not a multiple of seqLen")
	}
	B := bt / T
	q := tensor.MatMul(x, a.Wq.W)
	k := tensor.MatMul(x, a.Wk.W)
	v := tensor.MatMul(x, a.Wv.W)
	o := tensor.New(bt, a.dim)
	invSqrt := 1 / math.Sqrt(float64(a.dim))
	attns := make([]*tensor.Tensor, B)
	for b := 0; b < B; b++ {
		qs := slice2D(q, b*T, T)
		ks := slice2D(k, b*T, T)
		vs := slice2D(v, b*T, T)
		s := tensor.MatMulT2(qs, ks) // [T,T]
		// Causal softmax with scaling.
		att := tensor.New(T, T)
		for i := 0; i < T; i++ {
			maxv := math.Inf(-1)
			for j := 0; j <= i; j++ {
				sv := float64(s.At(i, j)) * invSqrt
				if sv > maxv {
					maxv = sv
				}
			}
			var sum float64
			for j := 0; j <= i; j++ {
				e := math.Exp(float64(s.At(i, j))*invSqrt - maxv)
				att.Set(i, j, float32(e))
				sum += e
			}
			for j := 0; j <= i; j++ {
				att.Set(i, j, att.At(i, j)/float32(sum))
			}
		}
		attns[b] = att
		ob := tensor.MatMul(att, vs)
		copy(o.Data[b*T*a.dim:(b+1)*T*a.dim], ob.Data)
	}
	y := tensor.MatMul(o, a.Wo.W)
	return y, &attnCache{x: x, q: q, k: k, v: v, o: o, attn: attns}
}

// Backward implements Layer.
func (a *Attention) Backward(c Cache, dy *tensor.Tensor) *tensor.Tensor {
	dx, w := a.BackwardInput(c, dy)
	w()
	return dx
}

// BackwardInput implements Layer. The projection gradients dWo = oᵀ·dy and
// dW{q,k,v} = xᵀ·d{q,k,v} are deferred; the work closes over the cache, the
// output gradient and the intermediate d{q,k,v} tensors.
func (a *Attention) BackwardInput(c Cache, dy *tensor.Tensor) (*tensor.Tensor, WeightWork) {
	ac := c.(*attnCache)
	T := a.SeqLen
	B := ac.x.Shape[0] / T
	invSqrt := 1 / math.Sqrt(float64(a.dim))

	do := tensor.MatMulT2(dy, a.Wo.W)

	dq := tensor.New(ac.x.Shape[0], a.dim)
	dk := tensor.New(ac.x.Shape[0], a.dim)
	dv := tensor.New(ac.x.Shape[0], a.dim)
	for b := 0; b < B; b++ {
		att := ac.attn[b]
		dob := slice2D(do, b*T, T)
		qs := slice2D(ac.q, b*T, T)
		ks := slice2D(ac.k, b*T, T)
		vs := slice2D(ac.v, b*T, T)

		dvb := tensor.MatMulT1(att, dob) // [T,d]
		copy(dv.Data[b*T*a.dim:(b+1)*T*a.dim], dvb.Data)

		dAtt := tensor.MatMulT2(dob, vs) // [T,T]
		// Softmax backward per row, respecting the causal mask.
		dS := tensor.New(T, T)
		for i := 0; i < T; i++ {
			var dot float64
			for j := 0; j <= i; j++ {
				dot += float64(att.At(i, j)) * float64(dAtt.At(i, j))
			}
			for j := 0; j <= i; j++ {
				dS.Set(i, j, float32(float64(att.At(i, j))*(float64(dAtt.At(i, j))-dot)*invSqrt))
			}
		}
		dqb := tensor.MatMul(dS, ks)
		dkb := tensor.MatMulT1(dS, qs)
		copy(dq.Data[b*T*a.dim:(b+1)*T*a.dim], dqb.Data)
		copy(dk.Data[b*T*a.dim:(b+1)*T*a.dim], dkb.Data)
	}

	w := func() {
		a.Wo.accumulate(tensor.MatMulT1(ac.o, dy))
		a.Wq.accumulate(tensor.MatMulT1(ac.x, dq))
		a.Wk.accumulate(tensor.MatMulT1(ac.x, dk))
		a.Wv.accumulate(tensor.MatMulT1(ac.x, dv))
	}

	dx := tensor.MatMulT2(dq, a.Wq.W)
	tensor.AddInPlace(dx, tensor.MatMulT2(dk, a.Wk.W))
	tensor.AddInPlace(dx, tensor.MatMulT2(dv, a.Wv.W))
	return dx, w
}

// Params implements Layer.
func (a *Attention) Params() []*Param { return []*Param{a.Wq, a.Wk, a.Wv, a.Wo} }

// slice2D views rows [start, start+rows) of a 2-D tensor without copying.
func slice2D(t *tensor.Tensor, start, rows int) *tensor.Tensor {
	d := t.Shape[1]
	return tensor.FromSlice(t.Data[start*d:(start+rows)*d], rows, d)
}

// Block is one transformer block: pre-norm attention and MLP with residual
// connections.
type Block struct {
	LN1  *LayerNorm
	Attn *Attention
	LN2  *LayerNorm
	FC1  *Linear
	Act  GELU
	FC2  *Linear
}

// NewBlock builds a block of width d with a 4d MLP over sequences of length
// seqLen.
func NewBlock(r *tensor.RNG, d, seqLen int) *Block {
	return &Block{
		LN1:  NewLayerNorm(d),
		Attn: NewAttention(r, d, seqLen),
		LN2:  NewLayerNorm(d),
		FC1:  NewLinear(r, d, 4*d),
		FC2:  NewLinear(r, 4*d, d),
	}
}

type blockCache struct {
	c1, ca, c2, cf1, cg, cf2 Cache
}

func (c *blockCache) Bytes() int {
	return c.c1.Bytes() + c.ca.Bytes() + c.c2.Bytes() + c.cf1.Bytes() + c.cg.Bytes() + c.cf2.Bytes()
}

// Forward implements Layer.
func (b *Block) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	h1, c1 := b.LN1.Forward(x)
	at, ca := b.Attn.Forward(h1)
	r1 := tensor.Add(x, at)
	h2, c2 := b.LN2.Forward(r1)
	f1, cf1 := b.FC1.Forward(h2)
	g, cg := b.Act.Forward(f1)
	f2, cf2 := b.FC2.Forward(g)
	y := tensor.Add(r1, f2)
	return y, &blockCache{c1: c1, ca: ca, c2: c2, cf1: cf1, cg: cg, cf2: cf2}
}

// Backward implements Layer.
func (b *Block) Backward(c Cache, dy *tensor.Tensor) *tensor.Tensor {
	dx, w := b.BackwardInput(c, dy)
	w()
	return dx
}

// BackwardInput implements Layer: the input-gradient chain runs through all
// sub-layers immediately; their weight halves are composed in the same order
// the fused backward accumulates them.
func (b *Block) BackwardInput(c Cache, dy *tensor.Tensor) (*tensor.Tensor, WeightWork) {
	bc := c.(*blockCache)
	df2, w2 := b.FC2.BackwardInput(bc.cf2, dy)
	dg, _ := b.Act.BackwardInput(bc.cg, df2) // GELU has no weights
	dh2, w1 := b.FC1.BackwardInput(bc.cf1, dg)
	dr1, wn2 := b.LN2.BackwardInput(bc.c2, dh2)
	tensor.AddInPlace(dr1, dy) // residual
	dat, wa := b.Attn.BackwardInput(bc.ca, dr1)
	dx, wn1 := b.LN1.BackwardInput(bc.c1, dat)
	tensor.AddInPlace(dx, dr1) // residual
	w := func() { w2(); w1(); wn2(); wa(); wn1() }
	return dx, w
}

// Params implements Layer.
func (b *Block) Params() []*Param {
	var ps []*Param
	for _, l := range []Layer{b.LN1, b.Attn, b.LN2, b.FC1, b.Act, b.FC2} {
		ps = append(ps, l.Params()...)
	}
	return ps
}
