// Package tensor is a minimal dense float32 tensor library backing the
// miniature training stack (internal/nn, internal/train) that this
// reproduction substitutes for the paper's Megatron-DeepSpeed deployment.
// It provides exactly the operations transformer-style blocks need, with a
// row-parallel matrix multiply to exploit multiple cores.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Data  []float32
	Shape []int
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Data: make([]float32, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := &Tensor{Data: data, Shape: append([]int(nil), shape...)}
	if t.Len() != len(data) {
		panic(fmt.Sprintf("tensor: %v needs %d elements, got %d", shape, t.Len(), len(data)))
	}
	return t
}

// Len returns the element count.
func (t *Tensor) Len() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Bytes returns the storage footprint in bytes.
func (t *Tensor) Bytes() int { return 4 * t.Len() }

// Rows and Cols interpret a 2-D tensor.
func (t *Tensor) Rows() int { t.check2D(); return t.Shape[0] }

// Cols returns the second dimension of a 2-D tensor.
func (t *Tensor) Cols() int { t.check2D(); return t.Shape[1] }

func (t *Tensor) check2D() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2-D, got %v", t.Shape))
	}
}

// At returns the element at (i, j) of a 2-D tensor.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.Shape[1]+j] }

// Set stores v at (i, j) of a 2-D tensor.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.Shape[1]+j] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// RNG is a splitmix64 deterministic generator for reproducible weights and
// data.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

func (r *RNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Normal returns a standard normal value (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Randn fills a new tensor with scaled normal values.
func Randn(r *RNG, scale float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.Normal() * scale)
	}
	return t
}

// MatMul returns a·b for 2-D tensors, parallelised over rows of a.
func MatMul(a, b *Tensor) *Tensor {
	a.check2D()
	b.check2D()
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			oi := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				for j := range oi {
					oi[j] += av * bp[j]
				}
			}
		}
	})
	return out
}

// MatMulT1 returns aᵀ·b (a is [k,m], result [m,n]); used by weight-gradient
// computation.
func MatMulT1(a, b *Tensor) *Tensor {
	a.check2D()
	b.check2D()
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: matmulT1 shape mismatch %v × %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			oi := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				for j := range oi {
					oi[j] += av * bp[j]
				}
			}
		}
	})
	return out
}

// MatMulT2 returns a·bᵀ (b is [n,k], a is [m,k], result [m,n]); used by
// input-gradient computation.
func MatMulT2(a, b *Tensor) *Tensor {
	a.check2D()
	b.check2D()
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: matmulT2 shape mismatch %v × %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			oi := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += ai[p] * bj[p]
				}
				oi[j] = s
			}
		}
	})
	return out
}

// parallelRows splits [0, m) across workers when m is large enough to pay
// for the goroutines.
func parallelRows(m int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m < 16 {
		f(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns a ⊙ b elementwise.
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	sameShape(a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddRowVec adds a length-n vector to every row of a [m,n] tensor.
func AddRowVec(a, v *Tensor) *Tensor {
	a.check2D()
	n := a.Shape[1]
	if v.Len() != n {
		panic(fmt.Sprintf("tensor: row vector %v does not match %v", v.Shape, a.Shape))
	}
	out := New(a.Shape...)
	for i := 0; i < a.Shape[0]; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + v.Data[j]
		}
	}
	return out
}

// SumRows sums a [m,n] tensor over rows into a length-n vector; the bias
// gradient.
func SumRows(a *Tensor) *Tensor {
	a.check2D()
	n := a.Shape[1]
	out := New(n)
	for i := 0; i < a.Shape[0]; i++ {
		for j := 0; j < n; j++ {
			out.Data[j] += a.Data[i*n+j]
		}
	}
	return out
}

func sameShape(a, b *Tensor) {
	if len(a.Shape) != len(b.Shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
		}
	}
}

// Dot returns the flat inner product of equally-shaped tensors in float64
// (order-stable accumulation for tests).
func Dot(a, b *Tensor) float64 {
	sameShape(a, b)
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// MSE returns mean((a-b)²) in float64 and the gradient d/da.
func MSE(a, b *Tensor) (float64, *Tensor) {
	sameShape(a, b)
	n := float64(a.Len())
	grad := New(a.Shape...)
	var loss float64
	for i := range a.Data {
		d := float64(a.Data[i]) - float64(b.Data[i])
		loss += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return loss / n, grad
}
