package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	a := New(3, 4)
	if a.Len() != 12 || a.Rows() != 3 || a.Cols() != 4 || a.Bytes() != 48 {
		t.Errorf("basic accessors wrong: %+v", a)
	}
	a.Set(2, 3, 5)
	if a.At(2, 3) != 5 {
		t.Error("At/Set broken")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(3, 0)
}

func TestFromSlice(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if a.At(1, 0) != 3 {
		t.Error("FromSlice layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	FromSlice([]float32{1}, 2, 2)
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

// TestMatMulTransposesConsistent: MatMulT1(a,b) == MatMul(aᵀ,b) and
// MatMulT2(a,b) == MatMul(a,bᵀ), via random matrices.
func TestMatMulTransposesConsistent(t *testing.T) {
	r := NewRNG(11)
	a := Randn(r, 1, 5, 7)
	b := Randn(r, 1, 5, 3)
	t1 := MatMulT1(a, b) // aᵀ·b, [7,3]
	at := transpose(a)
	ref := MatMul(at, b)
	for i := range ref.Data {
		if math.Abs(float64(t1.Data[i]-ref.Data[i])) > 1e-4 {
			t.Fatalf("MatMulT1 mismatch at %d", i)
		}
	}
	c := Randn(r, 1, 4, 7)
	d := Randn(r, 1, 6, 7)
	t2 := MatMulT2(c, d) // c·dᵀ, [4,6]
	ref2 := MatMul(c, transpose(d))
	for i := range ref2.Data {
		if math.Abs(float64(t2.Data[i]-ref2.Data[i])) > 1e-4 {
			t.Fatalf("MatMulT2 mismatch at %d", i)
		}
	}
}

func transpose(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// TestMatMulParallelMatchesSerial: large matmul (which fans out goroutines)
// agrees with a naive serial product.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	r := NewRNG(13)
	a := Randn(r, 1, 64, 32)
	b := Randn(r, 1, 32, 48)
	got := MatMul(a, b)
	for _, probe := range [][2]int{{0, 0}, {63, 47}, {31, 17}} {
		i, j := probe[0], probe[1]
		var s float64
		for p := 0; p < 32; p++ {
			s += float64(a.At(i, p)) * float64(b.At(p, j))
		}
		if math.Abs(float64(got.At(i, j))-s) > 1e-3 {
			t.Errorf("parallel MatMul[%d,%d] = %v, serial %v", i, j, got.At(i, j), s)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	if got := Add(a, b); got.Data[3] != 12 {
		t.Error("Add broken")
	}
	if got := Sub(b, a); got.Data[0] != 4 {
		t.Error("Sub broken")
	}
	if got := Mul(a, b); got.Data[1] != 12 {
		t.Error("Mul broken")
	}
	if got := Scale(a, 2); got.Data[2] != 6 {
		t.Error("Scale broken")
	}
	c := a.Clone()
	AddInPlace(c, b)
	if c.Data[0] != 6 || a.Data[0] != 1 {
		t.Error("AddInPlace broken or Clone shallow")
	}
}

func TestRowOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float32{10, 20}, 2)
	if got := AddRowVec(a, v); got.At(1, 1) != 24 {
		t.Error("AddRowVec broken")
	}
	if got := SumRows(a); got.Data[0] != 4 || got.Data[1] != 6 {
		t.Error("SumRows broken")
	}
}

func TestMSE(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{0, 0}, 2)
	loss, grad := MSE(a, b)
	if math.Abs(loss-2.5) > 1e-9 {
		t.Errorf("MSE = %v, want 2.5", loss)
	}
	if math.Abs(float64(grad.Data[1])-2) > 1e-6 {
		t.Errorf("grad = %v", grad.Data)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(5).Float64() == NewRNG(6).Float64() {
		t.Error("different seeds produced same first value")
	}
}

// TestNormalMoments: the Box–Muller output has roughly zero mean and unit
// variance.
func TestNormalMoments(t *testing.T) {
	r := NewRNG(77)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("variance = %v", variance)
	}
}

// TestDotSymmetry property: Dot(a,b) == Dot(b,a).
func TestDotSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := Randn(r, 1, 3, 3)
		b := Randn(r, 1, 3, 3)
		return Dot(a, b) == Dot(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
