// Package cost provides model and hardware descriptions plus analytic
// estimators for per-instruction execution time and memory footprint.
//
// The paper obtains these numbers from lightweight profiling on real GPUs
// (§5.2 "Lightweight Profiling"); this reproduction has no GPUs, so the
// ground-truth latencies are generated from first-principles transformer
// FLOP and byte counts (the standard Megatron accounting) and the
// profiling/regression pipeline (internal/profile) fits the paper's
// y = a·n + b estimators against an emulator driven by these costs.
package cost

import "fmt"

// ModelConfig describes a transformer language model (Table 4 of the paper).
type ModelConfig struct {
	Name   string
	Hidden int // hidden size h
	Layers int // number of transformer layers
	Heads  int // attention heads a
	SeqLen int // sequence length s
	Vocab  int // vocabulary size (embedding + LM head)
}

// Validate reports whether the configuration is internally consistent.
func (m ModelConfig) Validate() error {
	switch {
	case m.Hidden <= 0:
		return fmt.Errorf("cost: %s: hidden size must be positive", m.Name)
	case m.Layers <= 0:
		return fmt.Errorf("cost: %s: layer count must be positive", m.Name)
	case m.Heads <= 0:
		return fmt.Errorf("cost: %s: head count must be positive", m.Name)
	case m.SeqLen <= 0:
		return fmt.Errorf("cost: %s: sequence length must be positive", m.Name)
	case m.Vocab <= 0:
		return fmt.Errorf("cost: %s: vocabulary size must be positive", m.Name)
	case m.Hidden%m.Heads != 0:
		return fmt.Errorf("cost: %s: hidden size %d not divisible by %d heads", m.Name, m.Hidden, m.Heads)
	}
	return nil
}

// ParamsPerLayer returns the parameter count of one transformer layer
// (attention 4h² + MLP 8h², biases and norms ignored).
func (m ModelConfig) ParamsPerLayer() float64 {
	h := float64(m.Hidden)
	return 12 * h * h
}

// EmbeddingParams returns the parameter count of the (tied) token embedding.
func (m ModelConfig) EmbeddingParams() float64 {
	return float64(m.Vocab) * float64(m.Hidden)
}

// TotalParams returns the total parameter count, embedding included once
// (tied input/output embedding, as in GPT-3).
func (m ModelConfig) TotalParams() float64 {
	return m.ParamsPerLayer()*float64(m.Layers) + m.EmbeddingParams()
}

// WithSeqLen returns a copy with the sequence length replaced; used by the
// sequence-length scaling experiment (Fig. 9).
func (m ModelConfig) WithSeqLen(s int) ModelConfig {
	m.SeqLen = s
	m.Name = fmt.Sprintf("%s-seq%d", m.Name, s)
	return m
}

// WithLayers returns a copy with the layer count replaced; used by the
// profiler's block-count sweep.
func (m ModelConfig) WithLayers(l int) ModelConfig {
	m.Layers = l
	m.Name = fmt.Sprintf("%s-L%d", m.Name, l)
	return m
}

// WithHidden returns a copy with the hidden size replaced; used by the
// parameter scaling experiment (Fig. 8).
func (m ModelConfig) WithHidden(h int) ModelConfig {
	m.Hidden = h
	m.Name = fmt.Sprintf("%s-h%d", m.Name, h)
	return m
}

// Model presets from Table 4. Vocabulary sizes follow the public GPT-3
// (50257, rounded to the Megatron-padded 50304) and LLaMA-2 (32000) configs.
var (
	GPT3_1_6B  = ModelConfig{Name: "GPT3-1.6B", Hidden: 1024, Layers: 128, Heads: 16, SeqLen: 1024, Vocab: 50304}
	GPT3_13B   = ModelConfig{Name: "GPT3-13B", Hidden: 3000, Layers: 128, Heads: 40, SeqLen: 1024, Vocab: 50304}
	LLaMA2_3B  = ModelConfig{Name: "LLaMA2-3B", Hidden: 2048, Layers: 64, Heads: 16, SeqLen: 1024, Vocab: 32000}
	LLaMA2_13B = ModelConfig{Name: "LLaMA2-13B", Hidden: 4096, Layers: 64, Heads: 32, SeqLen: 1024, Vocab: 32000}
)

// Models lists the presets by name.
var Models = map[string]ModelConfig{
	GPT3_1_6B.Name:  GPT3_1_6B,
	GPT3_13B.Name:   GPT3_13B,
	LLaMA2_3B.Name:  LLaMA2_3B,
	LLaMA2_13B.Name: LLaMA2_13B,
}

// Hardware describes one accelerator and its interconnect. The defaults
// model the paper's testbed: A100-40G GPUs, four per node, nodes linked by
// InfiniBand.
type Hardware struct {
	// FLOPS is the achievable dense compute throughput in FLOP/s
	// (A100 fp16 peak is 312 TFLOP/s; ~45% is a typical Megatron MFU).
	FLOPS float64
	// MemBytes is device memory capacity in bytes.
	MemBytes float64
	// LinkBandwidth is p2p bandwidth between neighbouring pipeline ranks in
	// bytes/s.
	LinkBandwidth float64
	// LinkLatency is the fixed p2p latency per transfer in seconds.
	LinkLatency float64
	// LaunchOverhead is the per-instruction framework overhead in seconds
	// (DeepSpeed instruction dispatch, kernel launch); this is the bias b
	// that the paper's linear-regression estimators learn.
	LaunchOverhead float64
	// FrameworkMem is the static memory consumed by the framework stack
	// (Megatron + DeepSpeed + PyTorch + CUDA context); the paper's simulator
	// measures it at about 2 GB (§6.6).
	FrameworkMem float64
	// BackwardRatio is T_bw / T_fw for a transformer block. The paper cites
	// about 1.6 for a real transformer layer and uses 2 in illustrations.
	BackwardRatio float64
}

// A100_40G is the paper's GPU, with effective (not peak) throughput.
var A100_40G = Hardware{
	FLOPS:          140e12,
	MemBytes:       40 * (1 << 30),
	LinkBandwidth:  25e9,
	LinkLatency:    8e-6,
	LaunchOverhead: 120e-6,
	FrameworkMem:   2 * (1 << 30),
	BackwardRatio:  1.8,
}

// H100_80G models the larger-system scenario of §7.3 (6,144 H100 GPUs
// training a 462B model): roughly 3× the effective compute, double the
// memory and faster links.
var H100_80G = Hardware{
	FLOPS:          420e12,
	MemBytes:       80 * (1 << 30),
	LinkBandwidth:  50e9,
	LinkLatency:    6e-6,
	LaunchOverhead: 100e-6,
	FrameworkMem:   2 * (1 << 30),
	BackwardRatio:  1.8,
}

// BytesPerParamTraining is the per-parameter training state in bytes under
// mixed-precision Adam without ZeRO partitioning: fp16 weights (2) + fp16
// gradients (2) + fp32 master weights, momentum and variance (12).
const BytesPerParamTraining = 16

// BytesPerActElem is the storage width of activation elements (fp16).
const BytesPerActElem = 2
