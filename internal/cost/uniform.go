package cost

// Uniform returns an idealised estimator with identical per-stage costs and
// free communication: forward time fw, backward time bw, recompute time fw,
// zero launch overhead and zero p2p latency. It reproduces the grid-world
// setting of the paper's illustrations (Fig. 2: F = t, B = 2t) and is used
// by tests and the Figure 2 experiment.
//
// Memory is expressed in abstract units: one full activation replica per
// stage costs 1, a checkpoint stash costs stash (Mθ-relative), weights cost
// nothing. The transient working set is folded into the full activation.
func Uniform(stages int, fw, bw, stash float64) *Estimator {
	e := &Estimator{
		Stages:        stages,
		MicroBatch:    1,
		TP:            1,
		FwTime:        make([]float64, stages),
		BwTime:        make([]float64, stages),
		RcTime:        make([]float64, stages),
		ActFull:       make([]float64, stages),
		ActStash:      make([]float64, stages),
		ActWork:       make([]float64, stages),
		WeightBytes:   make([]float64, stages),
		LinkBandwidth: 1,
		BwSplitRatio:  0.5,
	}
	for i := 0; i < stages; i++ {
		e.FwTime[i] = fw
		e.BwTime[i] = bw
		e.RcTime[i] = fw
		e.ActFull[i] = 1
		e.ActStash[i] = stash
	}
	return e
}
