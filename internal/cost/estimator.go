package cost

import "fmt"

// Partition splits layers across stages as evenly as possible, assigning the
// remainder to the earliest stages (the even partitioning used by
// Megatron-LM, Chimera and Hanayo; see §7.1 of the paper for why Mario keeps
// even partitioning).
func Partition(layers, stages int) []int {
	if stages <= 0 || layers < stages {
		panic(fmt.Sprintf("cost: cannot partition %d layers into %d stages", layers, stages))
	}
	out := make([]int, stages)
	base, rem := layers/stages, layers%stages
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// ValidatePartition checks that part is a well-formed layer→stage split:
// exactly stages entries, every stage holding at least one layer, and the
// entries summing to layers.
func ValidatePartition(part []int, layers, stages int) error {
	if len(part) != stages {
		return fmt.Errorf("cost: partition has %d stages, want %d", len(part), stages)
	}
	sum := 0
	for s, n := range part {
		if n < 1 {
			return fmt.Errorf("cost: partition stage %d holds %d layers, want at least 1", s, n)
		}
		sum += n
	}
	if sum != layers {
		return fmt.Errorf("cost: partition covers %d layers, model has %d", sum, layers)
	}
	return nil
}

// Estimator provides per-instruction latency and memory estimates for a
// concrete (model, hardware, pipeline, micro-batch size, TP) configuration.
// It is the E of Equation 1. Estimators are produced either analytically
// (Analytic, first-principles FLOP counts) or by fitting profiled data
// (internal/profile), both yielding the same struct so the simulator is
// agnostic to the source.
type Estimator struct {
	// Stages is the number of global pipeline stages.
	Stages int
	// MicroBatch is the micro-batch size the estimates assume.
	MicroBatch int
	// TP is the tensor-parallel degree folded into the per-stage costs.
	TP int

	// FwTime, BwTime and RcTime are per-stage compute latencies in seconds.
	// Recompute replays the forward, so RcTime ≈ FwTime.
	FwTime, BwTime, RcTime []float64
	// ActFull is the full activation footprint of one micro-batch per stage
	// in bytes (retained by Forward until Backward).
	ActFull []float64
	// ActStash is the checkpointed footprint per stage in bytes: only the
	// stage input survives a CkptForward.
	ActStash []float64
	// ActWork is the transient working set of a forward-like computation in
	// bytes (roughly one layer's activations); it exists only while the
	// instruction runs and bounds the peak of checkpointed forwards.
	ActWork []float64
	// WeightBytes is the static per-stage training state (weights,
	// gradients, optimizer states) in bytes.
	WeightBytes []float64
	// GradP2PBytes and ActP2PBytes are the transfer sizes between
	// neighbouring stages in bytes.
	ActP2PBytes, GradP2PBytes float64
	// LinkBandwidth and LinkLatency describe the p2p links.
	LinkBandwidth, LinkLatency float64
	// LaunchOverhead is the fixed per-instruction framework overhead in
	// seconds (the regression bias b of §5.2).
	LaunchOverhead float64
	// FrameworkMem is the static framework memory in bytes.
	FrameworkMem float64
	// OptTime is the optimizer-step latency per device in seconds.
	OptTime float64
	// BwSplitRatio is the fraction of BwTime attributable to computing the
	// input gradient (the "B" part of ZB-H1's B/W split); the remaining
	// fraction computes weight gradients and can be deferred. Used by the
	// split-backward schemes (ZB-H1, DualPipe-D) and the split-backward
	// graph pass.
	BwSplitRatio float64
	// WGradBytes is the per-stage stash a BackwardInput leaves behind for its
	// deferred BackwardWeight half: the linear-layer inputs and output
	// gradients the weight-gradient matmuls still need after the input
	// gradient released the full activations. When nil, the memory simulation
	// falls back to holding the full activations (and checkpoint stash) until
	// the weight-gradient half runs, which reproduces the fused-backward
	// accounting exactly.
	WGradBytes []float64
	// DeviceSpeed is the relative compute speed of each pipeline rank
	// (1 = nominal, 0.8 = runs compute 25% slower). nil means a homogeneous
	// cluster. Compute-bound work (forward, backward, recompute, optimizer,
	// all-reduce) on rank d is scaled by 1/DeviceSpeed[d]; p2p transfers are
	// link-bound and stay unscaled.
	DeviceSpeed []float64
}

// SlowOf returns the compute slowdown multiplier of pipeline rank d:
// 1/DeviceSpeed[d], or exactly 1 when the cluster is homogeneous, the rank is
// out of range, or the recorded speed is non-positive. Multiplying a duration
// by the homogeneous value 1 is bit-exact, so callers may apply it
// unconditionally.
func (e *Estimator) SlowOf(d int) float64 {
	if d < 0 || d >= len(e.DeviceSpeed) {
		return 1
	}
	if s := e.DeviceSpeed[d]; s > 0 {
		return 1 / s
	}
	return 1
}

// CommTime returns the latency of a p2p transfer of the given size.
func (e *Estimator) CommTime(bytes float64) float64 {
	return e.LinkLatency + bytes/e.LinkBandwidth
}

// AllReduceTime returns the gradient all-reduce latency for the given
// data-parallel degree on the device holding the given stages (ring
// all-reduce over fp16 gradients).
func (e *Estimator) AllReduceTime(dp int, stages []int) float64 {
	if dp <= 1 {
		return 0
	}
	var bytes float64
	for _, s := range stages {
		// fp16 gradients are 2 of the 16 training-state bytes per parameter.
		bytes += e.WeightBytes[s] * 2 / BytesPerParamTraining
	}
	return 2 * float64(dp-1) / float64(dp) * bytes / e.LinkBandwidth
}

// AnalyticConfig bundles the inputs of the analytic estimator.
type AnalyticConfig struct {
	Model      ModelConfig
	HW         Hardware
	Stages     int
	MicroBatch int
	// TP is the tensor (and sequence) parallel degree; 0 or 1 disables TP.
	TP int
	// NVLinkBandwidth is the intra-node bandwidth used by TP collectives;
	// defaults to 150 GB/s when zero.
	NVLinkBandwidth float64
	// Partition overrides the uniform layer→stage split: Partition[s] is the
	// number of transformer layers on stage s. nil keeps the even
	// Partition(Layers, Stages) split. When set it must have exactly Stages
	// entries, every entry at least 1, and sum to Model.Layers.
	Partition []int
}

// Analytic builds an estimator from first-principles FLOP and byte counts.
//
// Per transformer layer and token, the forward pass costs 2·params FLOPs
// (params ≈ 12h²) plus the attention-score terms 4·s·h; activations follow
// the Megatron accounting of Korthikanti et al.: 34·s·b·h + 5·a·s²·b bytes
// per layer in fp16. The first stage additionally holds the token embedding
// and the last stage the LM head (tied weights, so parameters are counted on
// both but the LM-head matmul cost only on the last stage).
func Analytic(cfg AnalyticConfig) (*Estimator, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stages <= 0 {
		return nil, fmt.Errorf("cost: stage count %d must be positive", cfg.Stages)
	}
	if cfg.MicroBatch <= 0 {
		return nil, fmt.Errorf("cost: micro-batch size %d must be positive", cfg.MicroBatch)
	}
	tp := cfg.TP
	if tp <= 0 {
		tp = 1
	}
	nvlink := cfg.NVLinkBandwidth
	if nvlink == 0 {
		nvlink = 150e9
	}
	if cfg.Model.Layers < cfg.Stages {
		return nil, fmt.Errorf("cost: %d layers cannot fill %d stages", cfg.Model.Layers, cfg.Stages)
	}

	m, hw := cfg.Model, cfg.HW
	h := float64(m.Hidden)
	s := float64(m.SeqLen)
	b := float64(cfg.MicroBatch)
	a := float64(m.Heads)
	v := float64(m.Vocab)
	ftp := float64(tp)

	// Forward FLOPs of one transformer layer for one micro-batch.
	layerFwFLOPs := 2*m.ParamsPerLayer()*s*b + 4*s*s*h*b
	// Kernel utilisation grows with the micro-batch size (small batches
	// underfill the SMs); this saturating factor is what makes the paper's
	// lmbs configurations profitable (§6.1: "larger micro-batch size to
	// utilize available memory and improve computational efficiency").
	util := b / (b + 1)
	effFLOPS := hw.FLOPS * util
	// TP collectives per layer: two all-reduces in forward (attention + MLP
	// outputs), two in backward; each moves s·b·h fp16 elements.
	tpCommFw := 0.0
	if tp > 1 {
		tpCommFw = 2 * 2 * float64(tp-1) / ftp * s * b * h * BytesPerActElem / nvlink
	}
	// Embedding lookup is memory-bound and cheap; the LM-head projection is
	// a real matmul on the last stage.
	lmHeadFLOPs := 2 * h * v * s * b
	// Full activation bytes per layer (Korthikanti et al., fp16, no flash
	// attention), divided by the TP degree under sequence parallelism.
	layerActBytes := (34*s*b*h + 5*a*s*s*b) / ftp
	// The stage input stash kept by a checkpointed forward.
	stashBytes := s * b * h * BytesPerActElem / ftp

	layersPerStage := cfg.Partition
	if layersPerStage == nil {
		layersPerStage = Partition(m.Layers, cfg.Stages)
	} else if err := ValidatePartition(layersPerStage, m.Layers, cfg.Stages); err != nil {
		return nil, err
	}

	e := &Estimator{
		Stages:         cfg.Stages,
		MicroBatch:     cfg.MicroBatch,
		TP:             tp,
		FwTime:         make([]float64, cfg.Stages),
		BwTime:         make([]float64, cfg.Stages),
		RcTime:         make([]float64, cfg.Stages),
		ActFull:        make([]float64, cfg.Stages),
		ActStash:       make([]float64, cfg.Stages),
		ActWork:        make([]float64, cfg.Stages),
		WGradBytes:     make([]float64, cfg.Stages),
		WeightBytes:    make([]float64, cfg.Stages),
		ActP2PBytes:    s * b * h * BytesPerActElem / ftp,
		GradP2PBytes:   s * b * h * BytesPerActElem / ftp,
		LinkBandwidth:  hw.LinkBandwidth,
		LinkLatency:    hw.LinkLatency,
		LaunchOverhead: hw.LaunchOverhead,
		FrameworkMem:   hw.FrameworkMem,
		BwSplitRatio:   0.5,
	}
	for st, nl := range layersPerStage {
		fl := float64(nl)
		fw := (layerFwFLOPs*fl/ftp)/effFLOPS + tpCommFw*fl
		extraParams := 0.0
		if st == 0 {
			extraParams += m.EmbeddingParams()
		}
		if st == cfg.Stages-1 {
			extraParams += m.EmbeddingParams() // tied LM head replica
			fw += (lmHeadFLOPs / ftp) / effFLOPS
		}
		e.FwTime[st] = fw
		e.BwTime[st] = fw * hw.BackwardRatio
		e.RcTime[st] = fw
		e.ActFull[st] = layerActBytes * fl
		e.ActStash[st] = stashBytes
		e.ActWork[st] = layerActBytes
		// After the input gradient releases the full activations, the
		// deferred weight-gradient matmuls only need each linear layer's
		// input and output gradient — roughly a third of the Korthikanti
		// per-layer footprint (the attention scores, softmax outputs and
		// dropout masks are consumed by the input gradient).
		e.WGradBytes[st] = layerActBytes * fl / 3

		e.WeightBytes[st] = (m.ParamsPerLayer()*fl + extraParams) / ftp * BytesPerParamTraining
	}
	// Optimizer step: elementwise Adam over the device's parameters,
	// memory-bandwidth bound; approximate with a fixed cost proportional to
	// state size over HBM bandwidth (~1.5 TB/s).
	var maxW float64
	for _, w := range e.WeightBytes {
		if w > maxW {
			maxW = w
		}
	}
	e.OptTime = maxW / 1.5e12
	return e, nil
}
