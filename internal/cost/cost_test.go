package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelPresetsValidate(t *testing.T) {
	for name, m := range Models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestModelValidateRejects(t *testing.T) {
	bad := []ModelConfig{
		{Name: "h0", Hidden: 0, Layers: 1, Heads: 1, SeqLen: 1, Vocab: 1},
		{Name: "l0", Hidden: 64, Layers: 0, Heads: 1, SeqLen: 1, Vocab: 1},
		{Name: "heads", Hidden: 65, Layers: 1, Heads: 2, SeqLen: 1, Vocab: 1},
		{Name: "seq", Hidden: 64, Layers: 1, Heads: 2, SeqLen: 0, Vocab: 1},
		{Name: "vocab", Hidden: 64, Layers: 1, Heads: 2, SeqLen: 8, Vocab: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
}

// TestTotalParamsMatchesNames: the preset names reflect their approximate
// parameter counts.
func TestTotalParamsMatchesNames(t *testing.T) {
	cases := []struct {
		m    ModelConfig
		want float64 // billions
		tol  float64
	}{
		{GPT3_1_6B, 1.6e9, 0.3e9},
		{GPT3_13B, 13e9, 1.5e9},
		{LLaMA2_3B, 3e9, 0.5e9},
		{LLaMA2_13B, 13e9, 1.5e9},
	}
	for _, tc := range cases {
		if got := tc.m.TotalParams(); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: params = %.2fB, want ≈%.1fB", tc.m.Name, got/1e9, tc.want/1e9)
		}
	}
}

func TestPartition(t *testing.T) {
	if got := Partition(128, 32); len(got) != 32 || got[0] != 4 || got[31] != 4 {
		t.Errorf("Partition(128,32) = %v", got)
	}
	got := Partition(10, 4)
	sum := 0
	for i, g := range got {
		sum += g
		if i > 0 && g > got[i-1] {
			t.Errorf("Partition remainder should go to earliest stages: %v", got)
		}
	}
	if sum != 10 {
		t.Errorf("Partition(10,4) sums to %d", sum)
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(lRaw, sRaw uint8) bool {
		s := int(sRaw)%8 + 1
		l := s + int(lRaw)%64
		parts := Partition(l, s)
		sum, lo, hi := 0, parts[0], parts[0]
		for _, p := range parts {
			sum += p
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		return sum == l && hi-lo <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for layers < stages")
		}
	}()
	Partition(3, 4)
}

func TestAnalyticBasics(t *testing.T) {
	e, err := Analytic(AnalyticConfig{Model: GPT3_1_6B, HW: A100_40G, Stages: 8, MicroBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stages != 8 || len(e.FwTime) != 8 {
		t.Fatalf("estimator stage mismatch: %+v", e)
	}
	for st := 0; st < 8; st++ {
		if e.FwTime[st] <= 0 || e.BwTime[st] <= e.FwTime[st] {
			t.Errorf("stage %d: fw=%v bw=%v; want 0 < fw < bw", st, e.FwTime[st], e.BwTime[st])
		}
		if math.Abs(e.RcTime[st]-e.FwTime[st]) > 1e-12 {
			t.Errorf("stage %d: recompute %v != forward %v", st, e.RcTime[st], e.FwTime[st])
		}
		if e.ActStash[st] >= e.ActFull[st] {
			t.Errorf("stage %d: stash %v not below full activation %v", st, e.ActStash[st], e.ActFull[st])
		}
	}
	// Embedding weights boost the first and last stages.
	if e.WeightBytes[0] <= e.WeightBytes[1] || e.WeightBytes[7] <= e.WeightBytes[1] {
		t.Errorf("embedding stages not heavier: %v", e.WeightBytes)
	}
	// The LM head makes the last stage's forward slower.
	if e.FwTime[7] <= e.FwTime[1] {
		t.Errorf("LM-head stage not slower: %v vs %v", e.FwTime[7], e.FwTime[1])
	}
}

// TestAnalyticScalesWithMicroBatch: doubling the micro-batch size doubles
// activation memory; compute time grows sub-linearly (between 1.5× and 2×)
// because larger batches raise kernel utilisation — the effect that makes
// the paper's lmbs configurations profitable.
func TestAnalyticScalesWithMicroBatch(t *testing.T) {
	e1, _ := Analytic(AnalyticConfig{Model: LLaMA2_3B, HW: A100_40G, Stages: 8, MicroBatch: 1})
	e2, _ := Analytic(AnalyticConfig{Model: LLaMA2_3B, HW: A100_40G, Stages: 8, MicroBatch: 2})
	if r := e2.FwTime[1] / e1.FwTime[1]; r < 1.5 || r > 2 {
		t.Errorf("fw time ratio = %v, want in [1.5, 2]", r)
	}
	if r := e2.ActFull[1] / e1.ActFull[1]; math.Abs(r-2) > 1e-9 {
		t.Errorf("activation ratio = %v, want 2", r)
	}
	// Per-sample time must improve with the larger micro-batch.
	if perSample1, perSample2 := e1.FwTime[1], e2.FwTime[1]/2; perSample2 >= perSample1 {
		t.Errorf("per-sample fw time did not improve: %v vs %v", perSample2, perSample1)
	}
}

// TestAnalyticTPReducesLoad: TP=2 halves per-stage compute (modulo the
// collective overhead) and activation memory.
func TestAnalyticTPReducesLoad(t *testing.T) {
	e1, _ := Analytic(AnalyticConfig{Model: GPT3_1_6B, HW: A100_40G, Stages: 8, MicroBatch: 1, TP: 1})
	e2, _ := Analytic(AnalyticConfig{Model: GPT3_1_6B, HW: A100_40G, Stages: 8, MicroBatch: 1, TP: 2})
	if e2.ActFull[1] >= e1.ActFull[1]*0.6 {
		t.Errorf("TP=2 activation %v not roughly half of %v", e2.ActFull[1], e1.ActFull[1])
	}
	if e2.WeightBytes[1] >= e1.WeightBytes[1]*0.6 {
		t.Errorf("TP=2 weights %v not roughly half of %v", e2.WeightBytes[1], e1.WeightBytes[1])
	}
	if e2.FwTime[1] >= e1.FwTime[1] {
		t.Errorf("TP=2 forward %v not below TP=1 %v", e2.FwTime[1], e1.FwTime[1])
	}
}

func TestAnalyticErrors(t *testing.T) {
	if _, err := Analytic(AnalyticConfig{Model: GPT3_1_6B, HW: A100_40G, Stages: 0, MicroBatch: 1}); err == nil {
		t.Error("stages=0 accepted")
	}
	if _, err := Analytic(AnalyticConfig{Model: GPT3_1_6B, HW: A100_40G, Stages: 8, MicroBatch: 0}); err == nil {
		t.Error("mbs=0 accepted")
	}
	if _, err := Analytic(AnalyticConfig{Model: LLaMA2_3B, HW: A100_40G, Stages: 128, MicroBatch: 1}); err == nil {
		t.Error("more stages than layers accepted")
	}
	bad := GPT3_1_6B
	bad.Hidden = 0
	if _, err := Analytic(AnalyticConfig{Model: bad, HW: A100_40G, Stages: 4, MicroBatch: 1}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestCommTime(t *testing.T) {
	e := &Estimator{LinkBandwidth: 1e9, LinkLatency: 1e-6}
	if got, want := e.CommTime(1e9), 1.000001; math.Abs(got-want) > 1e-9 {
		t.Errorf("CommTime = %v, want %v", got, want)
	}
}

func TestAllReduceTime(t *testing.T) {
	e := &Estimator{LinkBandwidth: 1e9, WeightBytes: []float64{16e9, 16e9}}
	if got := e.AllReduceTime(1, []int{0}); got != 0 {
		t.Errorf("dp=1 all-reduce = %v, want 0", got)
	}
	// dp=2: 2*(1/2)*gradBytes/bw; gradBytes = 16e9 * 2/16 = 2e9 → 2s·(1/2)·2=2
	if got, want := e.AllReduceTime(2, []int{0}), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("dp=2 all-reduce = %v, want %v", got, want)
	}
	// More stages on the device → proportionally more gradient traffic.
	if got := e.AllReduceTime(2, []int{0, 1}); math.Abs(got-4.0) > 1e-9 {
		t.Errorf("two-stage all-reduce = %v, want 4", got)
	}
}

func TestWithHelpers(t *testing.T) {
	m := GPT3_1_6B.WithSeqLen(2048)
	if m.SeqLen != 2048 || m.Name == GPT3_1_6B.Name {
		t.Errorf("WithSeqLen produced %+v", m)
	}
	m2 := GPT3_1_6B.WithHidden(512)
	if m2.Hidden != 512 || m2.Name == GPT3_1_6B.Name {
		t.Errorf("WithHidden produced %+v", m2)
	}
}

func TestUniform(t *testing.T) {
	e := Uniform(4, 1, 2, 0.25)
	if e.CommTime(0) != 0 {
		t.Errorf("uniform comm should be free, got %v", e.CommTime(0))
	}
	for i := 0; i < 4; i++ {
		if e.FwTime[i] != 1 || e.BwTime[i] != 2 || e.RcTime[i] != 1 {
			t.Errorf("stage %d times wrong: %v %v %v", i, e.FwTime[i], e.BwTime[i], e.RcTime[i])
		}
	}
}

func TestH100Preset(t *testing.T) {
	if H100_80G.FLOPS <= A100_40G.FLOPS || H100_80G.MemBytes <= A100_40G.MemBytes {
		t.Error("H100 preset should dominate A100")
	}
	// The preset drives a valid estimator.
	if _, err := Analytic(AnalyticConfig{Model: GPT3_13B, HW: H100_80G, Stages: 16, MicroBatch: 2}); err != nil {
		t.Fatal(err)
	}
}
