// Package graph implements Mario's graph tuner (§5.1): four optimization
// passes that tessellate activation checkpointing into a pipeline schedule by
// identifying and substituting instruction patterns. Passes 1–3 are local
// list rewrites; pass 4 (prepose-forward) is guided by the lightweight
// simulator, accepting only moves that reduce the simulated makespan.
package graph

import (
	"context"
	"fmt"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/sim"
	"mario/internal/telemetry"
)

// ApplyCheckpoint is pass 1: apply activation checkpointing to all paired
// forward and backward instructions. Every Forward becomes a CkptForward and
// a Recompute is inserted immediately before the corresponding Backward, so
// only one activation replica per stage is live at a time.
func ApplyCheckpoint(s *pipeline.Schedule) {
	ApplyCheckpointStages(s, func(int) bool { return true })
}

// ApplyCheckpointStages applies pass 1 selectively: only stages for which
// keep returns true are checkpointed. This is the knob AdaPipe-style
// selective recomputation turns (§8 related work); Mario itself uses the
// all-stages form and lets remove-redundancy revert the useless cases.
func ApplyCheckpointStages(s *pipeline.Schedule, keep func(stage int) bool) {
	for d, list := range s.Lists {
		// Count the Recompute insertions first so the rewritten list is
		// allocated exactly once at its final size; this runs on Optimize's
		// per-call path, where append regrowth is measurable GC pressure.
		extra := 0
		for _, in := range list {
			if (in.Kind == pipeline.Backward || in.Kind == pipeline.BackwardInput) && keep(in.Stage) {
				extra++
			}
		}
		out := make([]pipeline.Instr, 0, len(list)+extra)
		for _, in := range list {
			switch {
			case in.Kind == pipeline.Forward && keep(in.Stage):
				in.Kind = pipeline.CkptForward
				out = append(out, in)
			case (in.Kind == pipeline.Backward || in.Kind == pipeline.BackwardInput) && keep(in.Stage):
				// On split-backward schedules the recompute precedes the
				// input-gradient half — the B/W boundary is a legal split
				// point, and the deferred weight-gradient half reads only the
				// stash its BI left, never the recomputed activations.
				out = append(out,
					pipeline.Instr{Kind: pipeline.Recompute, Micro: in.Micro, Part: in.Part, Stage: in.Stage},
					in,
				)
			default:
				out = append(out, in)
			}
		}
		s.SetList(d, out)
	}
	s.Checkpointed = true
}

// OverlapRecompute is pass 2: prepose each Recompute past the RecvGrad
// instructions that precede it, so the recomputation runs concurrently with
// the next device's backward instead of serialising behind the gradient
// receive. (If RC_i were left after RG_i it would transitively wait for
// BW_i on the next device, losing the overlap — §5.1.)
func OverlapRecompute(s *pipeline.Schedule) {
	for d := range s.Lists {
		list := s.Lists[d]
		mutable := false
		for i := 0; i < len(list); i++ {
			if list[i].Kind != pipeline.Recompute {
				continue
			}
			j := i
			for j > 0 && list[j-1].Kind == pipeline.RecvGrad {
				if !mutable {
					list = s.MutableList(d)
					mutable = true
				}
				list[j-1], list[j] = list[j], list[j-1]
				j--
			}
		}
	}
}

// RemoveRedundancy is pass 3: when a CkptForward and its Backward are
// adjacent (no other compute instruction between them on the device), the
// activation would be dropped and instantly restored; revert the pair to a
// plain Forward and delete the Recompute.
func RemoveRedundancy(s *pipeline.Schedule) {
	S := s.NumStages()
	cells := s.Micros * S
	// Flat position indices per (micro, stage) cell, shared across devices,
	// replace the old per-device key→index maps. Parts are verified on use;
	// no supported placement puts two parts of the same (micro, stage) on one
	// device, and a part mismatch only skips the (inapplicable) rewrite.
	bwPos := make([]int32, cells)
	rcPos := make([]int32, cells)
	saPos := make([]int32, cells)
	var dropped []bool
	for d := range s.Lists {
		list := s.Lists[d]
		for c := 0; c < cells; c++ {
			bwPos[c], rcPos[c], saPos[c] = -1, -1, -1
		}
		for i, in := range list {
			if in.Micro < 0 {
				continue
			}
			switch in.Kind {
			case pipeline.Backward, pipeline.BackwardInput:
				// The input-gradient half is the backward anchor on split
				// schedules: it is what consumes the (re)computed activations.
				bwPos[in.Micro*S+in.Stage] = int32(i)
			case pipeline.Recompute:
				rcPos[in.Micro*S+in.Stage] = int32(i)
			case pipeline.SendAct:
				saPos[in.Micro*S+in.Stage] = int32(i)
			}
		}
		if cap(dropped) >= len(list) {
			dropped = dropped[:len(list)]
			for i := range dropped {
				dropped[i] = false
			}
		} else {
			dropped = make([]bool, len(list))
		}
		nDropped := 0
		mutable := false
		for i := 0; i < len(list); i++ {
			in := list[i]
			if in.Kind != pipeline.CkptForward {
				continue
			}
			c := in.Micro*S + in.Stage
			bwIdx := int(bwPos[c])
			if bwIdx < i || list[bwIdx].Part != in.Part { // bwIdx < i covers the -1 "absent" case
				continue
			}
			rcIdx := int(rcPos[c])
			hasRC := rcIdx >= 0 && list[rcIdx].Part == in.Part
			redundant := true
			for k := i + 1; k < bwIdx; k++ {
				if list[k].Kind.IsCompute() && !(hasRC && k == rcIdx) {
					redundant = false
					break
				}
			}
			if !redundant {
				continue
			}
			if !mutable {
				list = s.MutableList(d)
				mutable = true
			}
			list[i].Kind = pipeline.Forward
			if hasRC {
				dropped[rcIdx] = true
				nDropped++
			}
			// The send no longer reads a checkpoint staging buffer.
			if saIdx := int(saPos[c]); saIdx >= 0 && list[saIdx].Part == in.Part {
				list[saIdx].Buffered = false
			}
		}
		if nDropped > 0 {
			out := list[:0]
			for i, in := range list {
				if !dropped[i] {
					out = append(out, in)
				}
			}
			s.SetList(d, out)
		}
	}
}

// Options parameterises the simulator-guided passes and the overall
// Optimize driver.
type Options struct {
	// Estimator supplies per-instruction latencies and memory for the
	// simulator; required by PreposeForward and Optimize.
	Estimator *cost.Estimator
	// Sim configures the acceptance simulations (memory limit, DP, link
	// semantics).
	Sim sim.Options
	// MaxPrepose bounds the number of forward groups preposed per device;
	// zero means no bound beyond the schedule length.
	MaxPrepose int
	// MaxRounds bounds the iterative pass applications; zero means 16.
	MaxRounds int
	// Workers bounds the goroutines simulating prepose candidates
	// concurrently; 0 or 1 evaluates inline. The winner is selected in
	// canonical device order, so the optimized schedule is byte-identical
	// for every worker count.
	Workers int
	// Span, when live, parents the run's telemetry: OptimizeContext records
	// one PhaseRound child per simulator-guided prepose round, with
	// deterministic attributes (moves, improvement, makespan). The zero
	// Span disables tracing at zero cost.
	Span telemetry.Span
	// Metrics, when non-nil, receives round and simulation counts.
	Metrics *telemetry.SearchMetrics
}

// Optimize applies the full pass pipeline — apply-checkpoint once, then
// overlap-recompute, remove-redundancy and prepose-forward iteratively until
// the simulated makespan stops improving. It returns the optimized schedule
// (the input is not modified) and its simulation result.
func Optimize(s *pipeline.Schedule, opt Options) (*pipeline.Schedule, *sim.Result, error) {
	return OptimizeContext(context.Background(), s, opt)
}

// OptimizeContext is Optimize with cancellation: the cheap structural passes
// always run, but the simulator-guided prepose rounds — the expensive part —
// check ctx between rounds and between candidate simulations, and a
// cancelled context aborts the call with ctx's error. A completed
// OptimizeContext is byte-identical to Optimize for every worker count.
func OptimizeContext(ctx context.Context, s *pipeline.Schedule, opt Options) (*pipeline.Schedule, *sim.Result, error) {
	if opt.Estimator == nil {
		return nil, nil, fmt.Errorf("graph: Optimize requires an estimator")
	}
	cur := s.Clone()
	ApplyCheckpoint(cur)
	OverlapRecompute(cur)
	RemoveRedundancy(cur)
	// remove-redundancy may expose new overlap opportunities and vice
	// versa; they are cheap, so run them to a (two-round) fixpoint before
	// the guided pass.
	OverlapRecompute(cur)
	eng := acquireEngines(opt.Workers)
	defer eng.release()
	defer func() { opt.Metrics.AddSims(eng.sims()) }()
	// Candidate acceptance only compares makespans and peaks, so the inner
	// loop always runs without timeline recording; the caller-visible result
	// is re-derived with the requested options at the end.
	inner := opt
	inner.Sim.NoTimeline = true
	best, err := eng.main.Simulate(cur, opt.Estimator, inner.Sim)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: simulating checkpointed schedule: %w", err)
	}
	rounds := opt.MaxRounds
	if rounds <= 0 {
		rounds = 16
	}
	// Total prepose budget across rounds: MaxPrepose extra forward groups
	// per device, unlimited when zero.
	budget := -1
	if opt.MaxPrepose > 0 {
		budget = opt.MaxPrepose * cur.NumDevices()
	}
	for r := 0; r < rounds; r++ {
		if budget == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		rs := opt.Span.Child(telemetry.PhaseRound, fmt.Sprintf("%02d", r+1))
		next, nextRes, moves, err := preposeRound(ctx, cur, best, inner, budget, eng)
		if err != nil {
			rs.Discard()
			return nil, nil, err
		}
		opt.Metrics.AddGraphRounds(1)
		rs.SetBool("improved", nextRes != best && nextRes.Total < best.Total)
		rs.SetInt("moves", int64(moves))
		rs.SetFloat("makespan", nextRes.Total)
		rs.End()
		if nextRes == best {
			break
		}
		if moves > 0 && budget > 0 {
			budget -= moves
			if budget < 0 {
				budget = 0
			}
		}
		if nextRes.Total >= best.Total {
			break
		}
		cur, best = next, nextRes
		// Re-base the main engine's delta snapshot onto the accepted
		// schedule (candidate probes left it keyed on the previous base), so
		// the next round's probes diff against it. When the winner was the
		// main engine's own last probe — the common case — Commit adopts its
		// already-computed clocks for free; otherwise one adopting delta sim
		// re-derives them.
		if !eng.main.Commit(cur) {
			if _, err := eng.main.Simulate(cur, opt.Estimator, inner.Sim); err != nil {
				return nil, nil, fmt.Errorf("graph: re-basing accepted schedule: %w", err)
			}
		}
		// Recycle list buffers of candidates this round retired; lists an
		// engine still keys on stay out of the pool until pushed out of its
		// depth-2 cache by later rebuilds.
		eng.endRound(cur)
	}
	if err := pipeline.Validate(cur); err != nil {
		return nil, nil, fmt.Errorf("graph: optimized schedule invalid: %w", err)
	}
	if !opt.Sim.NoTimeline {
		best, err = eng.main.Simulate(cur, opt.Estimator, opt.Sim)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: simulating optimized schedule: %w", err)
		}
	}
	return cur, best, nil
}
