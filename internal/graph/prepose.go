package graph

import (
	"errors"

	"mario/internal/pipeline"
	"mario/internal/sim"
)

// A forward group is the contiguous [RecvAct?, CkptForward, SendAct?] run of
// one micro-batch on one device. Pass 4 moves such groups from the steady
// phase into the leading bubble region ("prepose the checkpointed forward
// instructions to the earliest pipeline bubbles").
type fwGroup struct {
	start, end int // half-open index range in the device list
	cfwIdx     int
	saIdx      int // index of the SendAct inside [start,end) or -1
}

// findBoundary returns the index of the first backward-like compute
// instruction (Backward or Recompute) on the list; preposed groups are
// inserted immediately before it. Returns -1 when the device has no
// backward region (nothing to prepose past).
func findBoundary(list []pipeline.Instr) int {
	for i, in := range list {
		if in.Kind == pipeline.Backward || in.Kind == pipeline.Recompute {
			return i
		}
	}
	return -1
}

// nextGroupAfter locates the first forward group starting at or after idx.
func nextGroupAfter(list []pipeline.Instr, idx int) (fwGroup, bool) {
	for i := idx; i < len(list); i++ {
		if list[i].Kind != pipeline.CkptForward {
			continue
		}
		g := fwGroup{start: i, end: i + 1, cfwIdx: i, saIdx: -1}
		if i > 0 && list[i-1].Kind == pipeline.RecvAct &&
			list[i-1].Micro == list[i].Micro && list[i-1].Stage == list[i].Stage {
			g.start = i - 1
		}
		if i+1 < len(list) && list[i+1].Kind == pipeline.SendAct &&
			list[i+1].Micro == list[i].Micro && list[i+1].Stage == list[i].Stage {
			g.end = i + 2
			g.saIdx = i + 1
		}
		return g, true
	}
	return fwGroup{}, false
}

// consumerPreposed reports whether the consumer of the (micro, stage)
// activation executes its forward inside its own leading forward region —
// §5.1 pass 4's "CFW in the next device is also preposed" test, which
// decides whether the SendAct may travel with the CkptForward or must stay
// buffered in place.
func consumerPreposed(s *pipeline.Schedule, micro, part, stage int) bool {
	if stage+1 >= s.NumStages() {
		return true // no consumer; nothing constrains the send
	}
	sa := pipeline.Instr{Kind: pipeline.SendAct, Micro: micro, Part: part, Stage: stage}
	dev := s.PeerDevice(s.Placement.Device(part, stage), sa)
	list := s.Lists[dev]
	b := findBoundary(list)
	if b < 0 {
		return true
	}
	match := s.MatchKey(sa)
	for i := 0; i < b; i++ {
		in := list[i]
		if in.Kind == pipeline.RecvAct && in.Key() == match {
			return true
		}
	}
	return false
}

// preposeDevice builds a candidate schedule with the next steady-phase
// forward group of device d moved to the leading bubble region. It returns
// false when the device has no group to prepose.
func preposeDevice(s *pipeline.Schedule, d int) (*pipeline.Schedule, bool) {
	list := s.Lists[d]
	b := findBoundary(list)
	if b < 0 {
		return nil, false
	}
	g, ok := nextGroupAfter(list, b)
	if !ok {
		return nil, false
	}
	cfw := list[g.cfwIdx]
	moveSA := g.saIdx >= 0 && consumerPreposed(s, cfw.Micro, cfw.Part, cfw.Stage)

	c := s.Clone()
	nl := make([]pipeline.Instr, 0, len(list))
	var moved []pipeline.Instr
	for i := g.start; i < g.end; i++ {
		if i == g.saIdx && !moveSA {
			continue
		}
		moved = append(moved, list[i])
	}
	for i := 0; i < len(list); i++ {
		if i == b {
			nl = append(nl, moved...)
		}
		if i >= g.start && i < g.end {
			if i == g.saIdx && !moveSA {
				// SendAct stays put, reading from the staging buffer
				// (§5.1 pass 4 scenario 2).
				sa := list[i]
				sa.Buffered = true
				nl = append(nl, sa)
			}
			continue
		}
		nl = append(nl, list[i])
	}
	c.Lists[d] = nl
	return c, true
}

// promoteBufferedSends builds a candidate where every Buffered SendAct whose
// consumer has since been preposed is moved back next to its CkptForward.
// Returns false when nothing was promotable.
func promoteBufferedSends(s *pipeline.Schedule) (*pipeline.Schedule, bool) {
	c := s.Clone()
	changed := false
	for _, list := range c.Lists {
		for i := 0; i < len(list); i++ {
			in := list[i]
			if in.Kind != pipeline.SendAct || !in.Buffered {
				continue
			}
			if !consumerPreposed(c, in.Micro, in.Part, in.Stage) {
				continue
			}
			// Find the producing CkptForward and move the send right after it.
			for j := 0; j < i; j++ {
				p := list[j]
				if p.Kind == pipeline.CkptForward && p.Micro == in.Micro && p.Stage == in.Stage {
					in.Buffered = false
					copy(list[j+2:i+1], list[j+1:i])
					list[j+1] = in
					changed = true
					break
				}
			}
		}
	}
	return c, changed
}

// preposeRound evaluates one greedy round of pass 4: preposing one group on
// each single device, preposing one group on all devices at once (to enable
// cascaded moves none of which helps alone), and promoting buffered sends.
// The best strictly-improving, non-OOM candidate wins. budget bounds the
// number of group moves this round may perform (negative = unlimited); the
// round reports how many it used.
func preposeRound(cur *pipeline.Schedule, best *sim.Result, opt Options, budget int) (*pipeline.Schedule, *sim.Result, int, error) {
	type cand struct {
		s     *pipeline.Schedule
		r     *sim.Result
		moves int
	}
	var winner *cand

	try := func(c *pipeline.Schedule, moves int) error {
		r, err := sim.Simulate(c, opt.Estimator, opt.Sim)
		if err != nil {
			if errors.Is(err, sim.ErrCommMismatch) || errors.Is(err, sim.ErrDeadlock) {
				return nil // illegal move; skip silently
			}
			return err
		}
		if opt.Sim.MemLimit > 0 && r.OOM {
			return nil
		}
		const eps = 1e-12
		if r.Total < best.Total-eps && (winner == nil || r.Total < winner.r.Total) {
			winner = &cand{s: c, r: r, moves: moves}
		}
		return nil
	}

	// Composite candidate first — one prepose on every device — because the
	// cascaded move is both the usual winner and a single simulation. Only
	// when it fails to improve do we pay for the per-device scan.
	comp := cur
	moves := 0
	for d := 0; d < cur.NumDevices(); d++ {
		if budget >= 0 && moves >= budget {
			break
		}
		if c, ok := preposeDevice(comp, d); ok {
			comp = c
			moves++
		}
	}
	if moves > 0 {
		if err := try(comp, moves); err != nil {
			return nil, nil, 0, err
		}
	}
	if c, ok := promoteBufferedSends(cur); ok {
		if err := try(c, 0); err != nil {
			return nil, nil, 0, err
		}
	}
	if winner == nil && (budget < 0 || budget >= 1) {
		for d := 0; d < cur.NumDevices(); d++ {
			if c, ok := preposeDevice(cur, d); ok {
				if err := try(c, 1); err != nil {
					return nil, nil, 0, err
				}
			}
		}
	}
	if winner == nil {
		return cur, best, 0, nil
	}
	return winner.s, winner.r, winner.moves, nil
}
