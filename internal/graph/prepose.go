package graph

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"mario/internal/pipeline"
	"mario/internal/sim"
)

// engines bundles the reusable Simulators an Optimize run evaluates its
// candidates on: main is used by the sequential driver, pool by the
// prepose-round worker goroutines. Reusing the engines across rounds is what
// makes candidate evaluation allocation-free — each candidate shares all but
// one list with the current schedule, so only that device's metadata is
// rebuilt.
type engines struct {
	main *sim.Simulator
	pool []*sim.Simulator

	// Candidate-list buffer pool. Lists built for losing candidates are
	// recycled once no engine still caches their identity (Simulator.Holds)
	// and they are not part of the current schedule; tracked remembers which
	// device each created list was set on, since an engine only ever caches a
	// list under that device's slot.
	free    [][]pipeline.Instr
	tracked []trackedList
}

type trackedList struct {
	dev  int
	list []pipeline.Instr
}

func newEngines(workers int) *engines {
	e := &engines{main: &sim.Simulator{}}
	for i := 1; i < workers; i++ {
		e.pool = append(e.pool, &sim.Simulator{})
	}
	return e
}

// getList returns an empty instruction list with capacity for at least n
// entries, reusing a recycled candidate buffer when one fits.
func (e *engines) getList(n int) []pipeline.Instr {
	for i := len(e.free) - 1; i >= 0; i-- {
		if cap(e.free[i]) >= n {
			l := e.free[i][:0]
			e.free[i] = e.free[len(e.free)-1]
			e.free[len(e.free)-1] = nil
			e.free = e.free[:len(e.free)-1]
			return l
		}
	}
	return make([]pipeline.Instr, 0, n)
}

func (e *engines) track(dev int, list []pipeline.Instr) {
	e.tracked = append(e.tracked, trackedList{dev: dev, list: list})
}

// endRound recycles candidate-list buffers the finished round retired: every
// tracked list that is not part of cur returns to the free pool, after
// evicting any engine cache entry still keyed on it (such entries are stale —
// future candidates derive from cur, so a retired identity can never match
// again). Lists in cur stay tracked and are re-checked after later rounds.
func (e *engines) endRound(cur *pipeline.Schedule) {
	kept := e.tracked[:0]
	for _, t := range e.tracked {
		if sameList(cur.Lists[t.dev], t.list) {
			kept = append(kept, t)
			continue
		}
		if e.cached(t.dev, t.list) {
			e.main.Forget(t.dev, t.list)
			for _, m := range e.pool {
				m.Forget(t.dev, t.list)
			}
		}
		e.free = append(e.free, t.list)
	}
	for i := len(kept); i < len(e.tracked); i++ {
		e.tracked[i] = trackedList{}
	}
	e.tracked = kept
}

func (e *engines) cached(dev int, list []pipeline.Instr) bool {
	if e.main.Holds(dev, list) {
		return true
	}
	for _, m := range e.pool {
		if m.Holds(dev, list) {
			return true
		}
	}
	return false
}

func sameList(a, b []pipeline.Instr) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// sims sums the Simulate-call counters across the bundle's engines; the
// driver folds the total into the telemetry registry.
func (e *engines) sims() int64 {
	n := e.main.Sims
	for _, m := range e.pool {
		n += m.Sims
	}
	return n
}

// A forward group is the contiguous [RecvAct?, CkptForward, SendAct?] run of
// one micro-batch on one device. Pass 4 moves such groups from the steady
// phase into the leading bubble region ("prepose the checkpointed forward
// instructions to the earliest pipeline bubbles").
type fwGroup struct {
	start, end int // half-open index range in the device list
	cfwIdx     int
	saIdx      int // index of the SendAct inside [start,end) or -1
}

// findBoundary returns the index of the first backward-like compute
// instruction (Backward or Recompute) on the list; preposed groups are
// inserted immediately before it. Returns -1 when the device has no
// backward region (nothing to prepose past).
func findBoundary(list []pipeline.Instr) int {
	for i, in := range list {
		if in.Kind == pipeline.Backward || in.Kind == pipeline.Recompute {
			return i
		}
	}
	return -1
}

// nextGroupAfter locates the first forward group starting at or after idx.
func nextGroupAfter(list []pipeline.Instr, idx int) (fwGroup, bool) {
	for i := idx; i < len(list); i++ {
		if list[i].Kind != pipeline.CkptForward {
			continue
		}
		g := fwGroup{start: i, end: i + 1, cfwIdx: i, saIdx: -1}
		if i > 0 && list[i-1].Kind == pipeline.RecvAct &&
			list[i-1].Micro == list[i].Micro && list[i-1].Stage == list[i].Stage {
			g.start = i - 1
		}
		if i+1 < len(list) && list[i+1].Kind == pipeline.SendAct &&
			list[i+1].Micro == list[i].Micro && list[i+1].Stage == list[i].Stage {
			g.end = i + 2
			g.saIdx = i + 1
		}
		return g, true
	}
	return fwGroup{}, false
}

// consumerPreposed reports whether the consumer of the (micro, stage)
// activation executes its forward inside its own leading forward region —
// §5.1 pass 4's "CFW in the next device is also preposed" test, which
// decides whether the SendAct may travel with the CkptForward or must stay
// buffered in place.
func consumerPreposed(s *pipeline.Schedule, micro, part, stage int) bool {
	if stage+1 >= s.NumStages() {
		return true // no consumer; nothing constrains the send
	}
	sa := pipeline.Instr{Kind: pipeline.SendAct, Micro: micro, Part: part, Stage: stage}
	dev := s.PeerDevice(s.Placement.Device(part, stage), sa)
	list := s.Lists[dev]
	b := findBoundary(list)
	if b < 0 {
		return true
	}
	match := s.MatchKey(sa)
	for i := 0; i < b; i++ {
		in := list[i]
		if in.Kind == pipeline.RecvAct && in.Key() == match {
			return true
		}
	}
	return false
}

// canPrepose reports whether a device list has a steady-phase forward group
// left to move — the cheap pre-check that avoids cloning a schedule for a
// device that cannot produce a candidate.
func canPrepose(list []pipeline.Instr) bool {
	b := findBoundary(list)
	if b < 0 {
		return false
	}
	_, ok := nextGroupAfter(list, b)
	return ok
}

// preposeDevice builds a candidate schedule with the next steady-phase
// forward group of device d moved to the leading bubble region. It returns
// false when the device has no group to prepose.
func preposeDevice(s *pipeline.Schedule, d int) (*pipeline.Schedule, bool) {
	if !canPrepose(s.Lists[d]) {
		return nil, false
	}
	c := s.Clone()
	preposeList(nil, c, d)
	return c, true
}

// preposeList rewrites device d of c in place, moving its next steady-phase
// forward group to the leading bubble region. The caller owns c (a private
// clone of the candidate base); when eng is non-nil the rewritten list is
// drawn from and tracked by the engines' buffer pool. Returns false when the
// device has no group to move.
func preposeList(eng *engines, c *pipeline.Schedule, d int) bool {
	list := c.Lists[d]
	b := findBoundary(list)
	if b < 0 {
		return false
	}
	g, ok := nextGroupAfter(list, b)
	if !ok {
		return false
	}
	cfw := list[g.cfwIdx]
	moveSA := g.saIdx >= 0 && consumerPreposed(c, cfw.Micro, cfw.Part, cfw.Stage)

	var nl []pipeline.Instr
	if eng != nil {
		nl = eng.getList(len(list))
	} else {
		nl = make([]pipeline.Instr, 0, len(list))
	}
	var movedArr [3]pipeline.Instr
	moved := movedArr[:0]
	for i := g.start; i < g.end; i++ {
		if i == g.saIdx && !moveSA {
			continue
		}
		moved = append(moved, list[i])
	}
	for i := 0; i < len(list); i++ {
		if i == b {
			nl = append(nl, moved...)
		}
		if i >= g.start && i < g.end {
			if i == g.saIdx && !moveSA {
				// SendAct stays put, reading from the staging buffer
				// (§5.1 pass 4 scenario 2).
				sa := list[i]
				sa.Buffered = true
				nl = append(nl, sa)
			}
			continue
		}
		nl = append(nl, list[i])
	}
	c.SetList(d, nl)
	if eng != nil {
		eng.track(d, nl)
	}
	return true
}

// promoteBufferedSends builds a candidate where every Buffered SendAct whose
// consumer has since been preposed is moved back next to its CkptForward.
// Returns false when nothing was promotable.
func promoteBufferedSends(s *pipeline.Schedule) (*pipeline.Schedule, bool) {
	c := s.Clone()
	changed := false
	for d := range c.Lists {
		list := c.Lists[d]
		mutable := false
		for i := 0; i < len(list); i++ {
			in := list[i]
			if in.Kind != pipeline.SendAct || !in.Buffered {
				continue
			}
			if !consumerPreposed(c, in.Micro, in.Part, in.Stage) {
				continue
			}
			// Find the producing CkptForward and move the send right after it.
			for j := 0; j < i; j++ {
				p := list[j]
				if p.Kind == pipeline.CkptForward && p.Micro == in.Micro && p.Stage == in.Stage {
					if !mutable {
						list = c.MutableList(d)
						mutable = true
					}
					in.Buffered = false
					copy(list[j+2:i+1], list[j+1:i])
					list[j+1] = in
					changed = true
					break
				}
			}
		}
	}
	return c, changed
}

// simCandidate evaluates one candidate on the given engine. It returns a nil
// result (and nil error) when the candidate is illegal — deadlocked,
// comm-mismatched, or over the memory limit — and must simply be skipped.
func simCandidate(eng *sim.Simulator, c *pipeline.Schedule, opt Options) (*sim.Result, error) {
	r, err := eng.Simulate(c, opt.Estimator, opt.Sim)
	if err != nil {
		if errors.Is(err, sim.ErrCommMismatch) || errors.Is(err, sim.ErrDeadlock) {
			return nil, nil
		}
		return nil, err
	}
	if opt.Sim.MemLimit > 0 && r.OOM {
		return nil, nil
	}
	return r, nil
}

// preposeRound evaluates one greedy round of pass 4: preposing one group on
// each single device, preposing one group on all devices at once (to enable
// cascaded moves none of which helps alone), and promoting buffered sends.
// The best strictly-improving, non-OOM candidate wins. budget bounds the
// number of group moves this round may perform (negative = unlimited); the
// round reports how many it used.
//
// The per-device candidates are simulated concurrently when the engines carry
// a worker pool. The winner is still chosen by scanning the results in
// ascending device order with a strict-improvement comparison — exactly the
// sequential selection — so the outcome is byte-identical for every worker
// count (the determinism-first contract the outer tuner grid established).
//
// ctx is checked before each candidate simulation (including by the worker
// goroutines); a cancelled round returns ctx's error.
func preposeRound(ctx context.Context, cur *pipeline.Schedule, best *sim.Result, opt Options, budget int, eng *engines) (*pipeline.Schedule, *sim.Result, int, error) {
	type cand struct {
		s     *pipeline.Schedule
		r     *sim.Result
		moves int
	}
	var winner *cand

	const eps = 1e-12
	consider := func(c *pipeline.Schedule, r *sim.Result, moves int) {
		if r != nil && r.Total < best.Total-eps && (winner == nil || r.Total < winner.r.Total) {
			winner = &cand{s: c, r: r, moves: moves}
		}
	}

	// Composite candidate first — one prepose on every device — because the
	// cascaded move is both the usual winner and a single simulation. Only
	// when it fails to improve do we pay for the per-device scan. One clone
	// serves all the device rewrites; it is created lazily so a round with no
	// movable groups allocates nothing.
	var comp *pipeline.Schedule
	moves := 0
	for d := 0; d < cur.NumDevices(); d++ {
		if budget >= 0 && moves >= budget {
			break
		}
		if comp == nil {
			if !canPrepose(cur.Lists[d]) {
				continue
			}
			comp = cur.Clone()
		}
		if preposeList(eng, comp, d) {
			moves++
		}
	}
	if moves > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		r, err := simCandidate(eng.main, comp, opt)
		if err != nil {
			return nil, nil, 0, err
		}
		consider(comp, r, moves)
	}
	if c, ok := promoteBufferedSends(cur); ok {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		r, err := simCandidate(eng.main, c, opt)
		if err != nil {
			return nil, nil, 0, err
		}
		consider(c, r, 0)
	}
	if winner == nil && (budget < 0 || budget >= 1) {
		D := cur.NumDevices()
		// Build every candidate on this goroutine — candidate construction
		// Clones cur, and concurrent first Clones of the same schedule would
		// race on its share marks — then fan the simulations out.
		cands := make([]*pipeline.Schedule, D)
		jobs := make([]int, 0, D)
		for d := 0; d < D; d++ {
			if !canPrepose(cur.Lists[d]) {
				continue
			}
			c := cur.Clone()
			preposeList(eng, c, d)
			cands[d] = c
			jobs = append(jobs, d)
		}
		results := make([]*sim.Result, D)
		errs := make([]error, D)
		if w := min(len(eng.pool), len(jobs)-1); w > 0 {
			var next atomic.Int64
			run := func(e *sim.Simulator) {
				for {
					j := int(next.Add(1)) - 1
					if j >= len(jobs) {
						return
					}
					d := jobs[j]
					if err := ctx.Err(); err != nil {
						errs[d] = err
						continue
					}
					results[d], errs[d] = simCandidate(e, cands[d], opt)
				}
			}
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func(e *sim.Simulator) {
					defer wg.Done()
					run(e)
				}(eng.pool[i])
			}
			run(eng.main)
			wg.Wait()
		} else {
			for _, d := range jobs {
				if err := ctx.Err(); err != nil {
					errs[d] = err
					break
				}
				results[d], errs[d] = simCandidate(eng.main, cands[d], opt)
			}
		}
		for d := 0; d < D; d++ {
			if errs[d] != nil {
				return nil, nil, 0, errs[d]
			}
			consider(cands[d], results[d], 1)
		}
	}
	if winner == nil {
		return cur, best, 0, nil
	}
	return winner.s, winner.r, winner.moves, nil
}
