package graph

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"mario/internal/pipeline"
	"mario/internal/sim"
)

// engines bundles the reusable Simulators an Optimize run evaluates its
// candidates on: main is used by the sequential driver, pool by the
// prepose-round worker goroutines. Reusing the engines across rounds is what
// makes candidate evaluation allocation-free — each candidate shares all but
// one list with the current schedule, so only that device's metadata is
// rebuilt.
type engines struct {
	main *sim.Simulator
	pool []*sim.Simulator

	// Candidate-list buffer pool. Lists built for losing candidates are
	// recycled once no engine still caches their identity (Simulator.Holds)
	// and they are not part of the current schedule; tracked remembers which
	// device each created list was set on, since an engine only ever caches a
	// list under that device's slot.
	free    [][]pipeline.Instr
	tracked []trackedList

	// sims0 is the simsTotal() baseline taken at acquire time; sims()
	// subtracts it so pooled reuse never double-counts telemetry.
	sims0 int64

	feas feasScratch
}

// feasScratch is the reusable state of engines.feasible. Candidates are
// constructed and screened on the driver goroutine before any worker fan-out,
// so one scratch per bundle suffices.
type feasScratch struct {
	sendKeys [][]pipeline.Key // per link: keys of its sends, in push order
	recvOrd  []int32          // per link: receives popped so far
	sentByPC []int32          // per link: sends executed so far
	recvWait []int32          // per link: device blocked on it, -1 none
	pc       []int32          // per device: next instruction index
	queue    []int32
	inQueue  []bool
	// Placement-peer cache: PeerDevice is placement-determined and
	// device-independent for communication kinds, so (kind, part, stage)
	// fully keys the answer across all the candidates of one run.
	placement pipeline.Placement
	peerTab   []int32
}

// linkFor resolves the flat link id of a communication instruction through
// the scratch's peer cache (same layout as linkOf, minus the repeated
// placement walks).
func (f *feasScratch) linkFor(s *pipeline.Schedule, D, d int, in pipeline.Instr, nParts, nStages int) int {
	if in.Part < 0 || in.Part >= nParts || in.Stage < 0 || in.Stage >= nStages {
		return linkOf(s, D, d, in)
	}
	ci := (commKindIdx(in.Kind)*nParts+in.Part)*nStages + in.Stage
	peer := f.peerTab[ci]
	if peer == -2 {
		peer = int32(s.PeerDevice(d, in))
		f.peerTab[ci] = peer
	}
	if peer < 0 || int(peer) >= D {
		return -1
	}
	ch := 0
	if in.Kind == pipeline.SendGrad || in.Kind == pipeline.RecvGrad {
		ch = 1
	}
	if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
		return (d*D+int(peer))*2 + ch
	}
	return (int(peer)*D+d)*2 + ch
}

// commKindIdx maps the four communication kinds to 0..3 for flat tables.
func commKindIdx(k pipeline.Kind) int {
	switch k {
	case pipeline.SendAct:
		return 0
	case pipeline.RecvAct:
		return 1
	case pipeline.SendGrad:
		return 2
	default:
		return 3
	}
}

// feasible reports whether every instruction of the schedule can execute
// under the eager FIFO link semantics the simulator implements: per link
// (sender, receiver, channel) messages are delivered in the sender's list
// order and popped in the receiver's list order, with each pop requiring the
// matching key. Sends never block, so executability — including the
// deadlock/mismatch verdict — is independent of timing, and this untimed
// check is exactly "Simulate would not return ErrDeadlock/ErrCommMismatch".
// The prepose driver screens candidates with it before paying for a
// simulation: illegal candidates are skipped either way, so the optimization
// result is unchanged.
func (e *engines) feasible(s *pipeline.Schedule) bool {
	D := s.NumDevices()
	nl := 2 * D * D
	nParts := s.Placement.NumParts()
	nStages := s.Placement.NumStages()
	f := &e.feas
	f.sendKeys = growOuter(f.sendKeys, nl)
	f.recvOrd = growI32(f.recvOrd, nl)
	f.sentByPC = growI32(f.sentByPC, nl)
	f.recvWait = growI32(f.recvWait, nl)
	f.pc = growI32(f.pc, D)
	f.inQueue = growBools(f.inQueue, D)
	if f.placement != s.Placement || len(f.peerTab) != 4*nParts*nStages {
		f.placement = s.Placement
		f.peerTab = growI32(f.peerTab, 4*nParts*nStages)
		for i := range f.peerTab {
			f.peerTab[i] = -2
		}
	}
	for l := 0; l < nl; l++ {
		f.sendKeys[l] = f.sendKeys[l][:0]
		f.recvOrd[l] = 0
		f.sentByPC[l] = 0
		f.recvWait[l] = -1
	}
	// Gather each link's send-key sequence (the order messages arrive in).
	for d := 0; d < D; d++ {
		for _, in := range s.Lists[d] {
			if in.Kind != pipeline.SendAct && in.Kind != pipeline.SendGrad {
				continue
			}
			l := f.linkFor(s, D, d, in, nParts, nStages)
			if l < 0 {
				return false // dangling peer; Simulate would reject it too
			}
			f.sendKeys[l] = append(f.sendKeys[l], in.Key())
		}
	}
	// Untimed execution: run every device until it blocks on an undelivered
	// message; a send wakes the link's waiting receiver. All-executed means
	// feasible; a blocked or mispaired pop means Simulate errors.
	f.queue = f.queue[:0]
	for d := 0; d < D; d++ {
		f.pc[d] = 0
		f.inQueue[d] = true
		f.queue = append(f.queue, int32(d))
	}
	done := 0
	for head := 0; head < len(f.queue); head++ {
		d := int(f.queue[head])
		f.inQueue[d] = false
		list := s.Lists[d]
		i := int(f.pc[d])
		blocked := false
		for i < len(list) && !blocked {
			in := list[i]
			switch in.Kind {
			case pipeline.SendAct, pipeline.SendGrad:
				l := f.linkFor(s, D, d, in, nParts, nStages)
				f.sentByPC[l]++
				if w := f.recvWait[l]; w >= 0 {
					f.recvWait[l] = -1
					if !f.inQueue[w] {
						f.inQueue[w] = true
						f.queue = append(f.queue, w)
					}
				}
			case pipeline.RecvAct, pipeline.RecvGrad:
				l := f.linkFor(s, D, d, in, nParts, nStages)
				if l < 0 {
					return false
				}
				k := f.recvOrd[l]
				if k >= f.sentByPC[l] {
					// Not delivered yet; block here until the sender pushes.
					f.recvWait[l] = int32(d)
					blocked = true
					continue
				}
				sk := f.sendKeys[l][k]
				send := pipeline.Instr{Kind: sk.Kind, Micro: sk.Micro, Part: sk.Part, Stage: sk.Stage}
				if s.MatchKey(send) != in.Key() {
					return false // mispaired pop: ErrCommMismatch
				}
				f.recvOrd[l] = k + 1
			}
			i++
		}
		f.pc[d] = int32(i)
		if !blocked {
			done++
		}
	}
	return done == D
}

// linkOf returns the flat id of the FIFO link a communication instruction of
// device d uses — (sender, receiver, channel) like the simulator's — or -1
// when the placement peer falls outside the device range.
func linkOf(s *pipeline.Schedule, D, d int, in pipeline.Instr) int {
	peer := s.PeerDevice(d, in)
	if peer < 0 || peer >= D {
		return -1
	}
	ch := 0
	if in.Kind == pipeline.SendGrad || in.Kind == pipeline.RecvGrad {
		ch = 1
	}
	if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
		return (d*D+peer)*2 + ch
	}
	return (peer*D+d)*2 + ch
}

func growOuter(s [][]pipeline.Key, n int) [][]pipeline.Key {
	if cap(s) >= n {
		return s[:n]
	}
	grown := make([][]pipeline.Key, n)
	copy(grown, s)
	return grown
}

func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

type trackedList struct {
	dev  int
	list []pipeline.Instr
}

func newEngines(workers int) *engines {
	e := &engines{main: &sim.Simulator{}}
	for i := 1; i < workers; i++ {
		e.pool = append(e.pool, &sim.Simulator{})
	}
	return e
}

// engPool recycles engine bundles across Optimize calls so a tuner sweeping
// hundreds of grid points reuses warm simulator buffers instead of
// reallocating them per point. Identity caches are dropped on release
// (Simulator.Invalidate) because the previous run's result schedule owns
// lists the engines still key on; only capacity survives.
var engPool = sync.Pool{New: func() any { return newEngines(1) }}

// acquireEngines returns a bundle sized for the requested worker count, with
// per-run counters rebased so sims() reports this run's simulations only.
func acquireEngines(workers int) *engines {
	e := engPool.Get().(*engines)
	for len(e.pool) < workers-1 {
		e.pool = append(e.pool, &sim.Simulator{})
	}
	if len(e.pool) > workers-1 && workers >= 1 {
		for i := workers - 1; i < len(e.pool); i++ {
			e.pool[i] = nil
		}
		e.pool = e.pool[:workers-1]
	}
	e.sims0 = e.simsTotal()
	return e
}

// release returns the bundle to the pool. Result lists escape to the caller,
// so tracked entries are dropped without recycling their buffers (free-list
// buffers never appear in a result and stay pooled), and every engine
// forgets its cached identities.
func (e *engines) release() {
	for i := range e.tracked {
		e.tracked[i] = trackedList{}
	}
	e.tracked = e.tracked[:0]
	// The main engine re-keys its caches onto owned copies: a pooled bundle
	// often sees a near-identical schedule next (tuner grid neighbours), so
	// its warm metadata and delta snapshot keep paying off. Worker engines
	// only ever simulate scan candidates whose buffers are recycled below —
	// their identities are worthless and are dropped outright.
	e.main.Detach()
	for _, m := range e.pool {
		m.Invalidate()
	}
	engPool.Put(e)
}

// getList returns an empty instruction list with capacity for at least n
// entries, reusing a recycled candidate buffer when one fits.
func (e *engines) getList(n int) []pipeline.Instr {
	for i := len(e.free) - 1; i >= 0; i-- {
		if cap(e.free[i]) >= n {
			l := e.free[i][:0]
			e.free[i] = e.free[len(e.free)-1]
			e.free[len(e.free)-1] = nil
			e.free = e.free[:len(e.free)-1]
			return l
		}
	}
	return make([]pipeline.Instr, 0, n)
}

func (e *engines) track(dev int, list []pipeline.Instr) {
	e.tracked = append(e.tracked, trackedList{dev: dev, list: list})
}

// endRound recycles candidate-list buffers the finished round retired: every
// tracked list that is not part of cur returns to the free pool, after
// evicting any engine cache entry still keyed on it (such entries are stale —
// future candidates derive from cur, so a retired identity can never match
// again). Lists in cur stay tracked and are re-checked after later rounds.
func (e *engines) endRound(cur *pipeline.Schedule) {
	kept := e.tracked[:0]
	for _, t := range e.tracked {
		if sameList(cur.Lists[t.dev], t.list) {
			kept = append(kept, t)
			continue
		}
		if e.cached(t.dev, t.list) {
			e.main.Forget(t.dev, t.list)
			for _, m := range e.pool {
				m.Forget(t.dev, t.list)
			}
		}
		e.free = append(e.free, t.list)
	}
	for i := len(kept); i < len(e.tracked); i++ {
		e.tracked[i] = trackedList{}
	}
	e.tracked = kept
}

func (e *engines) cached(dev int, list []pipeline.Instr) bool {
	if e.main.Holds(dev, list) {
		return true
	}
	for _, m := range e.pool {
		if m.Holds(dev, list) {
			return true
		}
	}
	return false
}

func sameList(a, b []pipeline.Instr) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// simsTotal sums the lifetime Simulate-call counters across the bundle's
// engines (monotone across pooled reuse).
func (e *engines) simsTotal() int64 {
	n := e.main.Sims
	for _, m := range e.pool {
		n += m.Sims
	}
	return n
}

// sims reports the Simulate calls issued since this bundle was acquired; the
// driver folds the total into the telemetry registry.
func (e *engines) sims() int64 {
	return e.simsTotal() - e.sims0
}

// A forward group is the contiguous [RecvAct?, CkptForward, SendAct?] run of
// one micro-batch on one device. Pass 4 moves such groups from the steady
// phase into the leading bubble region ("prepose the checkpointed forward
// instructions to the earliest pipeline bubbles").
type fwGroup struct {
	start, end int // half-open index range in the device list
	cfwIdx     int
	saIdx      int // index of the SendAct inside [start,end) or -1
}

// findBoundary returns the index of the first backward-like compute
// instruction (Backward or Recompute) on the list; preposed groups are
// inserted immediately before it. Returns -1 when the device has no
// backward region (nothing to prepose past).
func findBoundary(list []pipeline.Instr) int {
	for i, in := range list {
		if in.Kind == pipeline.Backward || in.Kind == pipeline.Recompute {
			return i
		}
	}
	return -1
}

// nextGroupAfter locates the first forward group starting at or after idx.
func nextGroupAfter(list []pipeline.Instr, idx int) (fwGroup, bool) {
	for i := idx; i < len(list); i++ {
		if list[i].Kind != pipeline.CkptForward {
			continue
		}
		g := fwGroup{start: i, end: i + 1, cfwIdx: i, saIdx: -1}
		if i > 0 && list[i-1].Kind == pipeline.RecvAct &&
			list[i-1].Micro == list[i].Micro && list[i-1].Stage == list[i].Stage {
			g.start = i - 1
		}
		if i+1 < len(list) && list[i+1].Kind == pipeline.SendAct &&
			list[i+1].Micro == list[i].Micro && list[i+1].Stage == list[i].Stage {
			g.end = i + 2
			g.saIdx = i + 1
		}
		return g, true
	}
	return fwGroup{}, false
}

// consumerPreposed reports whether the consumer of the (micro, stage)
// activation executes its forward inside its own leading forward region —
// §5.1 pass 4's "CFW in the next device is also preposed" test, which
// decides whether the SendAct may travel with the CkptForward or must stay
// buffered in place.
func consumerPreposed(s *pipeline.Schedule, micro, part, stage int) bool {
	if stage+1 >= s.NumStages() {
		return true // no consumer; nothing constrains the send
	}
	sa := pipeline.Instr{Kind: pipeline.SendAct, Micro: micro, Part: part, Stage: stage}
	dev := s.PeerDevice(s.Placement.Device(part, stage), sa)
	list := s.Lists[dev]
	b := findBoundary(list)
	if b < 0 {
		return true
	}
	match := s.MatchKey(sa)
	for i := 0; i < b; i++ {
		in := list[i]
		if in.Kind == pipeline.RecvAct && in.Key() == match {
			return true
		}
	}
	return false
}

// canPrepose reports whether a device list has a steady-phase forward group
// left to move — the cheap pre-check that avoids cloning a schedule for a
// device that cannot produce a candidate.
func canPrepose(list []pipeline.Instr) bool {
	b := findBoundary(list)
	if b < 0 {
		return false
	}
	_, ok := nextGroupAfter(list, b)
	return ok
}

// preposeReorders reports whether moving device d's next steady-phase
// forward group would reorder the device's sends or receives on some FIFO
// link relative to same-link communication it crosses. A single-device
// candidate with such a reorder is guaranteed to deadlock or comm-mismatch —
// the peers' pop and push orders are unchanged, so the first affected pop
// meets the wrong key — and the per-device scan skips simulating it. The
// composite candidate must not use this test: it rewrites both endpoints of
// a link, and matching reorders on the two sides can cancel out.
func preposeReorders(s *pipeline.Schedule, d int) bool {
	list := s.Lists[d]
	b := findBoundary(list)
	if b < 0 {
		return false
	}
	g, ok := nextGroupAfter(list, b)
	if !ok {
		return false
	}
	cfw := list[g.cfwIdx]
	moveSA := g.saIdx >= 0 && consumerPreposed(s, cfw.Micro, cfw.Part, cfw.Stage)
	hasRA := g.start < g.cfwIdx
	for i := b; i < g.start; i++ {
		in := list[i]
		switch in.Kind {
		case pipeline.RecvAct:
			if hasRA && s.PeerDevice(d, in) == s.PeerDevice(d, list[g.start]) {
				return true
			}
		case pipeline.SendAct:
			if moveSA && s.PeerDevice(d, in) == s.PeerDevice(d, list[g.saIdx]) {
				return true
			}
		}
	}
	return false
}

// preposeBlocked reports whether the single-device prepose candidate for
// device d is guaranteed to deadlock on a two-device wait cycle: the moved
// group's RecvAct blocks d at the insertion point, while the producing peer
// sits behind a RecvGrad whose matching SendGrad on d is ordered after that
// insertion point (every SendGrad follows its Backward, hence the boundary).
// Neither device can advance, so the simulation is skipped. Cycles through
// third devices are left for the simulator to detect.
func preposeBlocked(s *pipeline.Schedule, d int) bool {
	list := s.Lists[d]
	b := findBoundary(list)
	if b < 0 {
		return false
	}
	g, ok := nextGroupAfter(list, b)
	if !ok || g.start == g.cfwIdx {
		return false // no RecvAct travels with the group
	}
	ra := list[g.start]
	p := s.PeerDevice(d, ra)
	match := s.MatchKey(ra)
	for _, in := range s.Lists[p] {
		if in.Key() == match {
			return false // producer send reachable before any grad wait on d
		}
		if in.Kind != pipeline.RecvGrad || s.PeerDevice(p, in) != d {
			continue
		}
		// The peer waits for a gradient from d. Its SendGrad on d follows
		// d's first backward, i.e. lands after the moved group's insertion
		// point — unless it was somehow already in the forward prefix.
		sg := s.MatchKey(in)
		early := false
		for i := 0; i < b; i++ {
			if list[i].Key() == sg {
				early = true
				break
			}
		}
		if !early {
			return true
		}
	}
	return false
}

// preposeDevice builds a candidate schedule with the next steady-phase
// forward group of device d moved to the leading bubble region. It returns
// false when the device has no group to prepose.
func preposeDevice(s *pipeline.Schedule, d int) (*pipeline.Schedule, bool) {
	if !canPrepose(s.Lists[d]) {
		return nil, false
	}
	c := s.Clone()
	preposeList(nil, c, d)
	return c, true
}

// preposeList rewrites device d of c in place, moving its next steady-phase
// forward group to the leading bubble region. The caller owns c (a private
// clone of the candidate base); when eng is non-nil the rewritten list is
// drawn from and tracked by the engines' buffer pool. Returns false when the
// device has no group to move.
func preposeList(eng *engines, c *pipeline.Schedule, d int) bool {
	list := c.Lists[d]
	b := findBoundary(list)
	if b < 0 {
		return false
	}
	g, ok := nextGroupAfter(list, b)
	if !ok {
		return false
	}
	cfw := list[g.cfwIdx]
	moveSA := g.saIdx >= 0 && consumerPreposed(c, cfw.Micro, cfw.Part, cfw.Stage)

	var nl []pipeline.Instr
	if eng != nil {
		nl = eng.getList(len(list))
	} else {
		nl = make([]pipeline.Instr, 0, len(list))
	}
	var movedArr [3]pipeline.Instr
	moved := movedArr[:0]
	for i := g.start; i < g.end; i++ {
		if i == g.saIdx && !moveSA {
			continue
		}
		moved = append(moved, list[i])
	}
	for i := 0; i < len(list); i++ {
		if i == b {
			nl = append(nl, moved...)
		}
		if i >= g.start && i < g.end {
			if i == g.saIdx && !moveSA {
				// SendAct stays put, reading from the staging buffer
				// (§5.1 pass 4 scenario 2).
				sa := list[i]
				sa.Buffered = true
				nl = append(nl, sa)
			}
			continue
		}
		nl = append(nl, list[i])
	}
	c.SetList(d, nl)
	if eng != nil {
		eng.track(d, nl)
	}
	return true
}

// promoteBufferedSends builds a candidate where every Buffered SendAct whose
// consumer has since been preposed is moved back next to its CkptForward.
// Returns false when nothing was promotable.
func promoteBufferedSends(s *pipeline.Schedule) (*pipeline.Schedule, bool) {
	c := s.Clone()
	changed := false
	for d := range c.Lists {
		list := c.Lists[d]
		mutable := false
		for i := 0; i < len(list); i++ {
			in := list[i]
			if in.Kind != pipeline.SendAct || !in.Buffered {
				continue
			}
			if !consumerPreposed(c, in.Micro, in.Part, in.Stage) {
				continue
			}
			// Find the producing CkptForward and move the send right after it.
			for j := 0; j < i; j++ {
				p := list[j]
				if p.Kind == pipeline.CkptForward && p.Micro == in.Micro && p.Stage == in.Stage {
					if !mutable {
						list = c.MutableList(d)
						mutable = true
					}
					in.Buffered = false
					copy(list[j+2:i+1], list[j+1:i])
					list[j+1] = in
					changed = true
					break
				}
			}
		}
	}
	return c, changed
}

// simCandidate evaluates one candidate on the given engine. It returns a nil
// result (and nil error) when the candidate is illegal — deadlocked,
// comm-mismatched, or over the memory limit — and must simply be skipped.
func simCandidate(eng *sim.Simulator, c *pipeline.Schedule, opt Options) (*sim.Result, error) {
	r, err := eng.Simulate(c, opt.Estimator, opt.Sim)
	if err != nil {
		if errors.Is(err, sim.ErrCommMismatch) || errors.Is(err, sim.ErrDeadlock) {
			return nil, nil
		}
		return nil, err
	}
	if opt.Sim.MemLimit > 0 && r.OOM {
		return nil, nil
	}
	return r, nil
}

// preposeRound evaluates one greedy round of pass 4: preposing one group on
// each single device, preposing one group on all devices at once (to enable
// cascaded moves none of which helps alone), and promoting buffered sends.
// The best strictly-improving, non-OOM candidate wins. budget bounds the
// number of group moves this round may perform (negative = unlimited); the
// round reports how many it used.
//
// The per-device candidates are simulated concurrently when the engines carry
// a worker pool. The winner is still chosen by scanning the results in
// ascending device order with a strict-improvement comparison — exactly the
// sequential selection — so the outcome is byte-identical for every worker
// count (the determinism-first contract the outer tuner grid established).
//
// ctx is checked before each candidate simulation (including by the worker
// goroutines); a cancelled round returns ctx's error.
func preposeRound(ctx context.Context, cur *pipeline.Schedule, best *sim.Result, opt Options, budget int, eng *engines) (*pipeline.Schedule, *sim.Result, int, error) {
	// Candidate evaluations are throwaway probes: each diffs against the
	// engine's accepted baseline instead of re-keying the delta snapshot on
	// every try-then-revert mutation (opt is a by-value copy; the caller's
	// options are unchanged). OptimizeContext re-bases the baseline when a
	// round's winner is accepted.
	opt.Sim.Probe = true
	type cand struct {
		s     *pipeline.Schedule
		r     *sim.Result
		moves int
	}
	var winner *cand

	const eps = 1e-12
	consider := func(c *pipeline.Schedule, r *sim.Result, moves int) {
		if r != nil && r.Total < best.Total-eps && (winner == nil || r.Total < winner.r.Total) {
			winner = &cand{s: c, r: r, moves: moves}
		}
	}

	// The buffered-send promotion candidate goes first so the composite —
	// the usual winner — is the main engine's most recent probe when the
	// round ends, letting OptimizeContext adopt its clocks with Commit
	// instead of an extra re-basing simulation. (Order only matters on exact
	// makespan ties: the earlier candidate wins them.)
	if c, ok := promoteBufferedSends(cur); ok {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		r, err := simCandidate(eng.main, c, opt)
		if err != nil {
			return nil, nil, 0, err
		}
		consider(c, r, 0)
	}
	// Composite candidate — one prepose on every device — because the
	// cascaded move is both the usual winner and a single simulation. Only
	// when it fails to improve do we pay for the per-device scan. One clone
	// serves all the device rewrites; it is created lazily so a round with no
	// movable groups allocates nothing.
	var comp *pipeline.Schedule
	moves := 0
	for d := 0; d < cur.NumDevices(); d++ {
		if budget >= 0 && moves >= budget {
			break
		}
		if comp == nil {
			if !canPrepose(cur.Lists[d]) {
				continue
			}
			comp = cur.Clone()
		}
		if preposeList(eng, comp, d) {
			moves++
		}
	}
	if moves > 0 && eng.feasible(comp) {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		r, err := simCandidate(eng.main, comp, opt)
		if err != nil {
			return nil, nil, 0, err
		}
		consider(comp, r, moves)
	}
	if winner == nil && (budget < 0 || budget >= 1) {
		D := cur.NumDevices()
		// Build every candidate on this goroutine — candidate construction
		// Clones cur, and concurrent first Clones of the same schedule would
		// race on its share marks — then fan the simulations out.
		cands := make([]*pipeline.Schedule, D)
		jobs := make([]int, 0, D)
		for d := 0; d < D; d++ {
			if !canPrepose(cur.Lists[d]) || preposeReorders(cur, d) || preposeBlocked(cur, d) {
				continue
			}
			c := cur.Clone()
			preposeList(eng, c, d)
			cands[d] = c
			jobs = append(jobs, d)
		}
		results := make([]*sim.Result, D)
		errs := make([]error, D)
		if w := min(len(eng.pool), len(jobs)-1); w > 0 {
			var next atomic.Int64
			run := func(e *sim.Simulator) {
				for {
					j := int(next.Add(1)) - 1
					if j >= len(jobs) {
						return
					}
					d := jobs[j]
					if err := ctx.Err(); err != nil {
						errs[d] = err
						continue
					}
					results[d], errs[d] = simCandidate(e, cands[d], opt)
				}
			}
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func(e *sim.Simulator) {
					defer wg.Done()
					run(e)
				}(eng.pool[i])
			}
			run(eng.main)
			wg.Wait()
		} else {
			for _, d := range jobs {
				if err := ctx.Err(); err != nil {
					errs[d] = err
					break
				}
				results[d], errs[d] = simCandidate(eng.main, cands[d], opt)
			}
		}
		for d := 0; d < D; d++ {
			if errs[d] != nil {
				return nil, nil, 0, errs[d]
			}
			consider(cands[d], results[d], 1)
		}
	}
	if winner == nil {
		return cur, best, 0, nil
	}
	return winner.s, winner.r, winner.moves, nil
}
