package graph

import (
	"testing"

	"mario/internal/pipeline"
	"mario/internal/scheme"
)

// countKinds tallies the per-kind instruction counts of a schedule.
func countKinds(s *pipeline.Schedule) map[pipeline.Kind]int {
	out := make(map[pipeline.Kind]int)
	for _, list := range s.Lists {
		for _, in := range list {
			out[in.Kind]++
		}
	}
	return out
}

// FuzzGraphPassInvariants runs the local rewrite passes (apply-checkpoint,
// overlap-recompute, remove-redundancy) over fuzz-chosen schedules and checks
// the structural invariants the simulator and executor rely on:
//
//   - instruction-count conservation: forward-like work (Forward +
//     CkptForward) and Backward counts are unchanged, every CkptForward has
//     exactly one Recompute, and communication instructions are neither
//     created nor destroyed;
//   - no duplicate (device, micro, part) FW/BW pairs: each compute identity
//     (kind, micro, part, stage) appears at most once;
//   - the rewritten schedule still passes pipeline.Validate.
func FuzzGraphPassInvariants(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(8), uint8(2))
	f.Add(uint8(1), uint8(4), uint8(6), uint8(2))
	f.Add(uint8(2), uint8(6), uint8(12), uint8(2))
	f.Add(uint8(3), uint8(4), uint8(8), uint8(2))
	f.Add(uint8(1), uint8(8), uint8(3), uint8(1))
	f.Add(uint8(4), uint8(4), uint8(8), uint8(2))
	f.Add(uint8(5), uint8(4), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, sel, devices, micros, chunks uint8) {
		schemes := []pipeline.Scheme{
			pipeline.SchemeGPipe,
			pipeline.Scheme1F1B,
			pipeline.SchemeChimera,
			pipeline.SchemeInterleave,
			pipeline.SchemeZBH1,
			pipeline.SchemeDualPipeD,
		}
		s := schemes[int(sel)%len(schemes)]
		d := int(devices)%10 + 1
		n := int(micros)%16 + 1
		v := int(chunks)%3 + 1
		sched, err := scheme.Build(s, scheme.Config{Devices: d, Micros: n, Chunks: v})
		if err != nil {
			return
		}
		before := countKinds(sched)

		c := sched.Clone()
		ApplyCheckpoint(c)
		OverlapRecompute(c)
		RemoveRedundancy(c)
		OverlapRecompute(c)

		after := countKinds(c)
		if got, want := after[pipeline.Forward]+after[pipeline.CkptForward],
			before[pipeline.Forward]; got != want {
			t.Fatalf("%s d=%d n=%d v=%d: forward-like count %d, want %d", s, d, n, v, got, want)
		}
		for _, k := range []pipeline.Kind{pipeline.Backward, pipeline.BackwardInput, pipeline.BackwardWeight} {
			if got, want := after[k], before[k]; got != want {
				t.Fatalf("%s d=%d n=%d v=%d: %v count %d, want %d", s, d, n, v, k, got, want)
			}
		}
		if got, want := after[pipeline.Recompute], after[pipeline.CkptForward]; got != want {
			t.Fatalf("%s d=%d n=%d v=%d: %d recomputes for %d checkpointed forwards", s, d, n, v, got, want)
		}
		for _, k := range []pipeline.Kind{
			pipeline.SendAct, pipeline.RecvAct, pipeline.SendGrad, pipeline.RecvGrad,
			pipeline.AllReduce, pipeline.OptimizerStep,
		} {
			if after[k] != before[k] {
				t.Fatalf("%s d=%d n=%d v=%d: %v count changed %d -> %d", s, d, n, v, k, before[k], after[k])
			}
		}

		// No duplicate compute identities: at most one forward-like, one
		// backward, one recompute per (device, micro, part, stage).
		seen := make(map[pipeline.Key]int)
		for dev, list := range c.Lists {
			for _, in := range list {
				if !in.Kind.IsCompute() || in.Kind == pipeline.AllReduce || in.Kind == pipeline.OptimizerStep {
					continue
				}
				k := in.Key()
				// Fold Forward and CkptForward into one identity: a micro's
				// forward must run exactly once either way.
				if k.Kind == pipeline.CkptForward {
					k.Kind = pipeline.Forward
				}
				if prev, dup := seen[k]; dup {
					t.Fatalf("%s d=%d n=%d v=%d: duplicate %v on device %d (first on %d)", s, d, n, v, in, dev, prev)
				}
				seen[k] = dev
			}
		}

		if err := pipeline.Validate(c); err != nil {
			t.Fatalf("%s d=%d n=%d v=%d: rewritten schedule invalid: %v", s, d, n, v, err)
		}
	})
}
