package graph

import (
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/sim"
)

// TestSplitBackwardStructure: after the split, every micro has a BI+WG pair
// per stage, SendGrads follow the input half, and the schedule validates.
func TestSplitBackwardStructure(t *testing.T) {
	const d, n = 4, 4
	s := build1f1b(t, d, n)
	e := cost.Uniform(d, 1, 2, 0.25)
	split, _, err := SplitBackward(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.Validate(split); err != nil {
		t.Fatalf("split schedule invalid: %v", err)
	}
	if got := split.CountKind(-1, pipeline.Backward); got != 0 {
		t.Errorf("%d whole backwards remain", got)
	}
	if got, want := split.CountKind(-1, pipeline.BackwardInput), d*n; got != want {
		t.Errorf("BI count = %d, want %d", got, want)
	}
	if got, want := split.CountKind(-1, pipeline.BackwardWeight), d*n; got != want {
		t.Errorf("WG count = %d, want %d", got, want)
	}
	// Gradient sends must come before the corresponding weight half on each
	// device (SG anchored to BI, not WG).
	for dev, list := range split.Lists {
		pos := map[pipeline.Key]int{}
		for i, in := range list {
			pos[in.Key()] = i
		}
		for _, in := range list {
			if in.Kind != pipeline.SendGrad {
				continue
			}
			wg := pipeline.Key{Kind: pipeline.BackwardWeight, Micro: in.Micro, Part: in.Part, Stage: in.Stage}
			if j, ok := pos[wg]; ok && j < pos[in.Key()] {
				t.Errorf("dev%d: %s after its weight half", dev, in)
			}
		}
	}
}

// TestSplitBackwardReducesMakespan: with F=1, B=2 split evenly, the ZB-H1
// transformation shortens the 1F1B iteration (upstream backwards unblock a
// full B/2 earlier per stage).
func TestSplitBackwardReducesMakespan(t *testing.T) {
	const d, n = 4, 4
	s := build1f1b(t, d, n)
	e := cost.Uniform(d, 1, 2, 0.25)
	base := mustSim(t, s, e)
	_, res, err := SplitBackward(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total >= base.Total {
		t.Errorf("split backward did not help: %v vs baseline %v", res.Total, base.Total)
	}
	t.Logf("baseline %vt, ZB-H1 split %vt", base.Total, res.Total)
}

// TestSplitBackwardMemoryTradeoff: sinking the weight halves delays the
// activation release, so peak memory must not drop and typically rises —
// the "trade off memory efficiency for reduced bubbles" of §1.
func TestSplitBackwardMemoryTradeoff(t *testing.T) {
	const d, n = 4, 8
	s := build1f1b(t, d, n)
	e := cost.Uniform(d, 1, 2, 0.25)
	base := mustSim(t, s, e)
	split, res, err := SplitBackward(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	_ = split
	for dev := range res.PeakMem {
		if res.PeakMem[dev] < base.PeakMem[dev]-1e-9 {
			t.Errorf("dev%d: split peak %v below baseline %v", dev, res.PeakMem[dev], base.PeakMem[dev])
		}
	}
}

// TestSplitBackwardRespectsMemLimit: with a tight budget, sinking that would
// OOM is rejected and the result stays within the limit.
func TestSplitBackwardRespectsMemLimit(t *testing.T) {
	const d, n = 4, 8
	s := build1f1b(t, d, n)
	e := cost.Uniform(d, 1, 2, 0.25)
	base := mustSim(t, s, e)
	limit := base.PeakMem[0] // no headroom on the hottest device
	_, res, err := SplitBackward(s, Options{Estimator: e, Sim: sim.Options{MemLimit: limit}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Errorf("split schedule exceeds the memory limit: %v > %v", res.PeakMem, limit)
	}
}

// TestSplitBackwardComposesWithCheckpoint: the split applies on top of the
// Mario-optimized checkpointed schedule and still validates.
func TestSplitBackwardComposesWithCheckpoint(t *testing.T) {
	const d, n = 4, 4
	s := build1f1b(t, d, n)
	e := cost.Uniform(d, 1, 2, 0.25)
	opt, optRes, err := Optimize(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	split, res, err := SplitBackward(opt, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.Validate(split); err != nil {
		t.Fatalf("composed schedule invalid: %v", err)
	}
	if res.Total > optRes.Total+1e-9 {
		t.Errorf("composition regressed: %v vs %v", res.Total, optRes.Total)
	}
	t.Logf("ckpt-optimized %vt, +split backward %vt", optRes.Total, res.Total)
}
