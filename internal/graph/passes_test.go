package graph

import (
	"math"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

func build1f1b(t *testing.T, d, n int) *pipeline.Schedule {
	t.Helper()
	s, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: n})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func mustSim(t *testing.T, s *pipeline.Schedule, e *cost.Estimator) *sim.Result {
	t.Helper()
	r, err := sim.Simulate(s, e, sim.Options{})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return r
}

// TestFigure2Steps reproduces the running example of §3.1 (Figure 2):
// a 4-stage 1F1B pipeline with F = t, B = 2t, free communication.
//
//	baseline (no checkpointing)                 21t
//	step 1: naive checkpointing (pass 1)        28t
//	step 2: + overlap-recompute (pass 2)        25t
//	step 3: + remove-redundancy (pass 3)        23t
//	step 4: + prepose-forward (pass 4)          22t
func TestFigure2Steps(t *testing.T) {
	const d, n = 4, 4
	e := cost.Uniform(d, 1, 2, 0.25)
	base := build1f1b(t, d, n)
	if r := mustSim(t, base, e); math.Abs(r.Total-21) > 1e-9 {
		t.Fatalf("baseline = %vt, want 21t", r.Total)
	}

	step1 := base.Clone()
	ApplyCheckpoint(step1)
	if err := pipeline.Validate(step1); err != nil {
		t.Fatalf("step1 invalid: %v", err)
	}
	r1 := mustSim(t, step1, e)

	step2 := step1.Clone()
	OverlapRecompute(step2)
	if err := pipeline.Validate(step2); err != nil {
		t.Fatalf("step2 invalid: %v", err)
	}
	r2 := mustSim(t, step2, e)

	step3 := step2.Clone()
	RemoveRedundancy(step3)
	if err := pipeline.Validate(step3); err != nil {
		t.Fatalf("step3 invalid: %v", err)
	}
	r3 := mustSim(t, step3, e)

	opt, r4, err := Optimize(base, Options{Estimator: e})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := pipeline.Validate(opt); err != nil {
		t.Fatalf("step4 invalid: %v", err)
	}

	t.Logf("baseline=21 step1=%v step2=%v step3=%v step4=%v", r1.Total, r2.Total, r3.Total, r4.Total)

	if math.Abs(r1.Total-28) > 1e-9 {
		t.Errorf("step1 (apply-checkpoint) = %vt, want 28t", r1.Total)
	}
	if math.Abs(r2.Total-25) > 1e-9 {
		t.Errorf("step2 (overlap-recompute) = %vt, want 25t", r2.Total)
	}
	if math.Abs(r3.Total-23) > 1e-9 {
		t.Errorf("step3 (remove-redundancy) = %vt, want 23t", r3.Total)
	}
	if math.Abs(r4.Total-22) > 1e-9 {
		t.Errorf("step4 (prepose-forward) = %vt, want 22t", r4.Total)
	}
}

// TestCheckpointBalancesMemory: after the passes, peak activation memory is
// ~Mθ on every device (Table 1's last column) instead of growing linearly
// with the device index.
func TestCheckpointBalancesMemory(t *testing.T) {
	const d, n = 8, 16
	e := cost.Uniform(d, 1, 2, 0.125)
	base := build1f1b(t, d, n)
	opt, res, err := Optimize(base, Options{Estimator: e})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := pipeline.Validate(opt); err != nil {
		t.Fatalf("optimized schedule invalid: %v", err)
	}
	for dev, p := range res.PeakMem {
		// One full activation replica plus on-the-fly stashes; far below
		// the baseline's D replicas on device 0.
		if p > 1.0+float64(n)*0.125+1e-9 {
			t.Errorf("device %d peak %v exceeds Mθ + N stashes", dev, p)
		}
	}
	baseRes := mustSim(t, base, e)
	if res.PeakMem[0] >= baseRes.PeakMem[0]/2 {
		t.Errorf("optimized first-device peak %v not well below baseline %v", res.PeakMem[0], baseRes.PeakMem[0])
	}
}

// TestApplyCheckpointStructure: every FW becomes CFW and gains exactly one
// RC before its BW.
func TestApplyCheckpointStructure(t *testing.T) {
	s := build1f1b(t, 4, 8)
	ApplyCheckpoint(s)
	if got := s.CountKind(-1, pipeline.Forward); got != 0 {
		t.Errorf("plain forwards remain: %d", got)
	}
	if got, want := s.CountKind(-1, pipeline.CkptForward), 4*8; got != want {
		t.Errorf("CFW count = %d, want %d", got, want)
	}
	if got, want := s.CountKind(-1, pipeline.Recompute), 4*8; got != want {
		t.Errorf("RC count = %d, want %d", got, want)
	}
	if !s.Checkpointed {
		t.Error("Checkpointed flag not set")
	}
}

// TestRemoveRedundancyLastStage: on the last 1F1B device FW and BW are
// adjacent, so checkpointing there must be fully reverted.
func TestRemoveRedundancyLastStage(t *testing.T) {
	const d, n = 4, 8
	s := build1f1b(t, d, n)
	ApplyCheckpoint(s)
	OverlapRecompute(s)
	RemoveRedundancy(s)
	if err := pipeline.Validate(s); err != nil {
		t.Fatalf("invalid after passes: %v", err)
	}
	if got := s.CountKind(d-1, pipeline.Recompute); got != 0 {
		t.Errorf("last device still has %d recomputes", got)
	}
	if got, want := s.CountKind(d-1, pipeline.Forward), n; got != want {
		t.Errorf("last device plain forwards = %d, want %d", got, want)
	}
}

// TestOverlapRecomputeOrder: after pass 2, no Recompute directly follows a
// RecvGrad on any device.
func TestOverlapRecomputeOrder(t *testing.T) {
	s := build1f1b(t, 4, 8)
	ApplyCheckpoint(s)
	OverlapRecompute(s)
	for dev, list := range s.Lists {
		for i := 1; i < len(list); i++ {
			if list[i].Kind == pipeline.Recompute && list[i-1].Kind == pipeline.RecvGrad {
				t.Errorf("dev%d: %s still follows %s", dev, list[i], list[i-1])
			}
		}
	}
	if err := pipeline.Validate(s); err != nil {
		t.Fatalf("invalid after pass 2: %v", err)
	}
}

// TestOptimizeAllSchemes: the full pass pipeline produces valid schedules
// and never increases simulated cost versus naive checkpointing, for every
// supported scheme.
func TestOptimizeAllSchemes(t *testing.T) {
	for _, tc := range []struct {
		sch pipeline.Scheme
		cfg scheme.Config
	}{
		{pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeGPipe, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeInterleave, scheme.Config{Devices: 4, Micros: 8, Chunks: 2}},
	} {
		s, err := scheme.Build(tc.sch, tc.cfg)
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.sch, err)
		}
		e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
		naive := s.Clone()
		ApplyCheckpoint(naive)
		rn := mustSim(t, naive, e)
		opt, ro, err := Optimize(s, Options{Estimator: e})
		if err != nil {
			t.Fatalf("Optimize(%s): %v", tc.sch, err)
		}
		if err := pipeline.Validate(opt); err != nil {
			t.Errorf("%s: optimized schedule invalid: %v", tc.sch, err)
		}
		if ro.Total > rn.Total+1e-9 {
			t.Errorf("%s: optimized %v slower than naive checkpointing %v", tc.sch, ro.Total, rn.Total)
		}
	}
}

// TestApplyCheckpointStagesSelective: checkpointing only the first half of
// the stages reduces memory there and leaves the rest untouched.
func TestApplyCheckpointStagesSelective(t *testing.T) {
	const d, n = 4, 8
	s := build1f1b(t, d, n)
	e := cost.Uniform(d, 1, 2, 0.125)
	full := mustSim(t, s, e)

	sel := s.Clone()
	ApplyCheckpointStages(sel, func(stage int) bool { return stage < d/2 })
	OverlapRecompute(sel)
	if err := pipeline.Validate(sel); err != nil {
		t.Fatalf("selective schedule invalid: %v", err)
	}
	res := mustSim(t, sel, e)
	// Checkpointed early stages shrink dramatically.
	if res.PeakMem[0] >= full.PeakMem[0]/2 {
		t.Errorf("stage 0 peak %v not halved from %v", res.PeakMem[0], full.PeakMem[0])
	}
	// Untouched late stages keep their baseline footprint.
	if res.PeakMem[d-1] != full.PeakMem[d-1] {
		t.Errorf("stage %d peak changed: %v vs %v", d-1, res.PeakMem[d-1], full.PeakMem[d-1])
	}
	// No recomputes on unselected stages.
	for dev := d / 2; dev < d; dev++ {
		if got := sel.CountKind(dev, pipeline.Recompute); got != 0 {
			t.Errorf("dev%d has %d recomputes despite not being selected", dev, got)
		}
	}
}
