package graph

import (
	"errors"
	"fmt"

	"mario/internal/pipeline"
	"mario/internal/sim"
)

// SplitBackward implements the ZB-H1-style extension the paper lists as
// future work (§8: "Mario can further adopt the split backward parts of
// ZB-H1 to overlap remaining bubbles"): every Backward is split into its
// input-gradient half (BackwardInput, which the upstream stage's backward
// transitively waits on) and its weight-gradient half (BackwardWeight, which
// nothing waits on). The SendGrad re-anchors directly after the
// input-gradient half, unblocking the upstream device earlier; the
// weight-gradient halves are then sunk into later bubbles when the simulator
// confirms an improvement within the memory budget.
//
// The input schedule is not modified. Estimator.BwSplitRatio controls the
// B/W split of the backward latency.
func SplitBackward(s *pipeline.Schedule, opt Options) (*pipeline.Schedule, *sim.Result, error) {
	if opt.Estimator == nil {
		return nil, nil, fmt.Errorf("graph: SplitBackward requires an estimator")
	}
	eng := &sim.Simulator{}
	defer func() { opt.Metrics.AddSims(eng.Sims) }()
	// As in Optimize, candidate acceptance needs no timeline; the returned
	// result is re-derived with the caller's options at the end.
	innerSim := opt.Sim
	innerSim.NoTimeline = true
	cur := splitAll(s)
	best, err := eng.Simulate(cur, opt.Estimator, innerSim)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: simulating split schedule: %w", err)
	}
	// Reject the plain split if it regressed (possible when extra launch
	// overheads outweigh the unblocking benefit).
	if base, err := sim.Simulate(s, opt.Estimator, innerSim); err == nil && base.Total < best.Total {
		if !opt.Sim.NoTimeline {
			if base, err = sim.Simulate(s, opt.Estimator, opt.Sim); err != nil {
				return nil, nil, fmt.Errorf("graph: simulating unsplit schedule: %w", err)
			}
		}
		return s.Clone(), base, nil
	}

	// Sink candidates: all weight-gradient halves per device to the end of
	// the iteration (just before AllReduce), accepted device by device when
	// the simulator improves without OOM.
	for d := 0; d < cur.NumDevices(); d++ {
		cand := cur.Clone()
		if !sinkWeightGrads(cand, d) {
			continue
		}
		r, err := eng.Simulate(cand, opt.Estimator, innerSim)
		if err != nil {
			if errors.Is(err, sim.ErrCommMismatch) || errors.Is(err, sim.ErrDeadlock) {
				continue
			}
			return nil, nil, err
		}
		if opt.Sim.MemLimit > 0 && r.OOM {
			continue
		}
		if r.Total < best.Total-1e-12 {
			cur, best = cand, r
		}
	}
	if err := pipeline.Validate(cur); err != nil {
		return nil, nil, fmt.Errorf("graph: split schedule invalid: %w", err)
	}
	if !opt.Sim.NoTimeline {
		best, err = eng.Simulate(cur, opt.Estimator, opt.Sim)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: simulating split schedule: %w", err)
		}
	}
	return cur, best, nil
}

// splitAll rewrites every Backward into [BackwardInput, (SendGrad),
// BackwardWeight], keeping the gradient send immediately after the
// input-gradient half.
func splitAll(s *pipeline.Schedule) *pipeline.Schedule {
	c := s.Clone()
	for d, list := range c.Lists {
		out := make([]pipeline.Instr, 0, len(list)+len(list)/3)
		for i := 0; i < len(list); i++ {
			in := list[i]
			if in.Kind != pipeline.Backward {
				out = append(out, in)
				continue
			}
			bi := in
			bi.Kind = pipeline.BackwardInput
			wg := in
			wg.Kind = pipeline.BackwardWeight
			out = append(out, bi)
			if i+1 < len(list) {
				next := list[i+1]
				if next.Kind == pipeline.SendGrad && next.Micro == in.Micro && next.Stage == in.Stage {
					out = append(out, next)
					i++
				}
			}
			out = append(out, wg)
		}
		c.SetList(d, out)
	}
	return c
}

// sinkWeightGrads moves all BackwardWeight instructions of device d to just
// before its AllReduce (or the end of the list), preserving their relative
// order. Returns false when the device has none to move.
func sinkWeightGrads(s *pipeline.Schedule, d int) bool {
	list := s.Lists[d]
	var kept, sunk []pipeline.Instr
	insertAt := -1
	for _, in := range list {
		if in.Kind == pipeline.BackwardWeight {
			sunk = append(sunk, in)
			continue
		}
		if in.Kind == pipeline.AllReduce && insertAt < 0 {
			insertAt = len(kept)
		}
		kept = append(kept, in)
	}
	if len(sunk) == 0 {
		return false
	}
	if insertAt < 0 {
		insertAt = len(kept)
	}
	out := make([]pipeline.Instr, 0, len(list))
	out = append(out, kept[:insertAt]...)
	out = append(out, sunk...)
	out = append(out, kept[insertAt:]...)
	s.SetList(d, out)
	return true
}
