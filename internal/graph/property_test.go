package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// TestOptimizeValidityProperty: for random (scheme, devices, micros), the
// full pass pipeline always yields a schedule that (a) passes structural
// validation and (b) simulates without FIFO mismatches or deadlocks.
func TestOptimizeValidityProperty(t *testing.T) {
	schemes := []pipeline.Scheme{
		pipeline.Scheme1F1B, pipeline.SchemeGPipe, pipeline.SchemeChimera,
		pipeline.SchemeInterleave, pipeline.SchemeZBH1, pipeline.SchemeDualPipeD,
	}
	f := func(schRaw, dRaw, nRaw uint8) bool {
		sch := schemes[int(schRaw)%len(schemes)]
		d := 2 * (int(dRaw)%3 + 1) // 2, 4, 6
		n := d * (int(nRaw)%3 + 1) // d..3d
		s, err := scheme.Build(sch, scheme.Config{Devices: d, Micros: n})
		if err != nil {
			return false
		}
		e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
		opt, res, err := Optimize(s, Options{Estimator: e})
		if err != nil {
			t.Logf("%s d=%d n=%d: %v", sch, d, n, err)
			return false
		}
		if err := pipeline.Validate(opt); err != nil {
			t.Logf("%s d=%d n=%d: %v", sch, d, n, err)
			return false
		}
		return res.Total > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestOptimizeDeterministic: the optimizer is a pure function of its input.
func TestOptimizeDeterministic(t *testing.T) {
	s := build1f1b(t, 4, 8)
	e := cost.Uniform(4, 1, 2, 0.25)
	a, ra, err := Optimize(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := Optimize(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Lists, b.Lists) {
		t.Error("optimizer output differs between runs")
	}
	if ra.Total != rb.Total {
		t.Errorf("makespans differ: %v vs %v", ra.Total, rb.Total)
	}
}

// TestPassesIdempotent: overlap-recompute and remove-redundancy are
// fixpoints after one application each (on 1F1B).
func TestPassesIdempotent(t *testing.T) {
	s := build1f1b(t, 4, 8)
	ApplyCheckpoint(s)
	OverlapRecompute(s)
	once := s.Clone()
	OverlapRecompute(s)
	if !reflect.DeepEqual(once.Lists, s.Lists) {
		t.Error("OverlapRecompute not idempotent")
	}
	RemoveRedundancy(s)
	once = s.Clone()
	RemoveRedundancy(s)
	if !reflect.DeepEqual(once.Lists, s.Lists) {
		t.Error("RemoveRedundancy not idempotent")
	}
}

// TestBufferedSendsKeepFIFOConsistent: optimized schedules contain buffered
// SendActs (pass 4 scenario 2); the eager FIFO simulation must complete
// without order mismatches — the deadlock-avoidance design of §5.1.
func TestBufferedSendsKeepFIFOConsistent(t *testing.T) {
	s := build1f1b(t, 4, 8)
	e := cost.Uniform(4, 1, 2, 0.25)
	opt, _, err := Optimize(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	buffered := 0
	for _, list := range opt.Lists {
		for _, in := range list {
			if in.Kind == pipeline.SendAct && in.Buffered {
				buffered++
			}
		}
	}
	if buffered == 0 {
		t.Fatal("expected pass 4 to produce buffered sends on this pipeline")
	}
	if _, err := sim.Simulate(opt, e, sim.Options{}); err != nil {
		t.Fatalf("eager simulation of buffered schedule failed: %v", err)
	}
}

// TestNaivelyMovedSendBreaksFIFO: the counterfactual of pass 4's scenario 2
// — moving the SendAct next to its preposed CkptForward instead of
// buffering it — reorders the link FIFO and is rejected by the simulator,
// which is exactly why Mario keeps the send in place.
func TestNaivelyMovedSendBreaksFIFO(t *testing.T) {
	s := build1f1b(t, 4, 8)
	e := cost.Uniform(4, 1, 2, 0.25)
	opt, _, err := Optimize(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	// Move every buffered SendAct directly after its CkptForward.
	broken := opt.Clone()
	moved := false
	for d := range broken.Lists {
		list := broken.MutableList(d)
		for i := 0; i < len(list); i++ {
			in := list[i]
			if in.Kind != pipeline.SendAct || !in.Buffered {
				continue
			}
			for j := 0; j < i; j++ {
				p := list[j]
				if p.Kind == pipeline.CkptForward && p.Micro == in.Micro && p.Stage == in.Stage {
					in.Buffered = false
					copy(list[j+2:i+1], list[j+1:i])
					list[j+1] = in
					moved = true
					break
				}
			}
		}
	}
	if !moved {
		t.Skip("no buffered send to break")
	}
	_, err = sim.Simulate(broken, e, sim.Options{})
	if err == nil {
		// Moving the send may coincidentally keep per-link order if the
		// consumer is adjacent; at minimum the structure must still
		// validate — but for this pipeline we expect a mismatch.
		t.Log("moved sends survived; schedule-specific ordering was benign")
	} else {
		t.Logf("simulator rejected the naive move as expected: %v", err)
	}
}

// leadingGroups counts forward groups in each device's leading bubble
// region (before the first backward-like compute).
func leadingGroups(s *pipeline.Schedule) int {
	n := 0
	for _, list := range s.Lists {
		b := findBoundary(list)
		if b < 0 {
			continue
		}
		for _, in := range list[:b] {
			if in.Kind == pipeline.CkptForward || in.Kind == pipeline.Forward {
				n++
			}
		}
	}
	return n
}

// TestMaxPreposeBudget: the MaxPrepose bound stops the guided pass from
// moving more forward groups than its budget allows, and bounding can only
// cost (never gain) makespan.
func TestMaxPreposeBudget(t *testing.T) {
	s := build1f1b(t, 4, 8)
	e := cost.Uniform(4, 1, 2, 0.25)

	// Reference without any preposing: passes 1-3 only.
	ref := s.Clone()
	ApplyCheckpoint(ref)
	OverlapRecompute(ref)
	RemoveRedundancy(ref)
	OverlapRecompute(ref)
	base := leadingGroups(ref)

	unbounded, ru, err := Optimize(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	bounded, rb, err := Optimize(s, Options{Estimator: e, MaxPrepose: 1})
	if err != nil {
		t.Fatal(err)
	}
	budget := 1 * bounded.NumDevices()
	if moved := leadingGroups(bounded) - base; moved > budget {
		t.Errorf("bounded run moved %d groups, budget %d", moved, budget)
	}
	if leadingGroups(bounded) > leadingGroups(unbounded) {
		t.Errorf("bounded (%d) preposed more than unbounded (%d)",
			leadingGroups(bounded), leadingGroups(unbounded))
	}
	if rb.Total < ru.Total-1e-9 {
		t.Errorf("bounded makespan %v beats unbounded %v", rb.Total, ru.Total)
	}
}

// TestSplitBackwardRequiresEstimator covers the guard.
func TestSplitBackwardRequiresEstimator(t *testing.T) {
	s := build1f1b(t, 2, 2)
	if _, _, err := SplitBackward(s, Options{}); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, _, err := Optimize(s, Options{}); err == nil {
		t.Error("Optimize nil estimator accepted")
	}
}

// TestSplitBackwardRejectsRegressions: when the split cannot win (backward
// ratio 0 makes each half pure launch overhead), the original schedule is
// returned unchanged.
func TestSplitBackwardRejectsRegressions(t *testing.T) {
	s := build1f1b(t, 2, 2)
	e := cost.Uniform(2, 1, 2, 0.25)
	e.LaunchOverhead = 5 // overhead dwarfs compute: splitting always loses
	out, _, err := SplitBackward(s, Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.CountKind(-1, pipeline.BackwardInput); got != 0 {
		t.Errorf("regressing split kept %d BI instructions", got)
	}
	if got := out.CountKind(-1, pipeline.Backward); got != 2*2 {
		t.Errorf("whole backwards = %d, want 4", got)
	}
}
