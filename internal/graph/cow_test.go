package graph

import (
	"reflect"
	"runtime"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// TestPassesDoNotLeakIntoParent: under copy-on-write Clone, every mutating
// pass applied to a clone must leave the parent schedule byte-identical —
// each call site must route its edits through MutableList/SetList.
func TestPassesDoNotLeakIntoParent(t *testing.T) {
	e := cost.Uniform(4, 1, 2, 0.25)
	passes := map[string]func(*pipeline.Schedule){
		"ApplyCheckpoint":  ApplyCheckpoint,
		"OverlapRecompute": func(s *pipeline.Schedule) { ApplyCheckpoint(s); OverlapRecompute(s) },
		"RemoveRedundancy": func(s *pipeline.Schedule) { ApplyCheckpoint(s); RemoveRedundancy(s) },
		"preposeDevice": func(s *pipeline.Schedule) {
			ApplyCheckpoint(s)
			for d := 0; d < s.NumDevices(); d++ {
				if c, ok := preposeDevice(s, d); ok {
					// The candidate's own edits must not reach s either.
					cl := c.MutableList(d)
					if len(cl) > 0 {
						cl[0].Kind = pipeline.OptimizerStep
					}
				}
			}
		},
		"promoteBufferedSends": func(s *pipeline.Schedule) {
			ApplyCheckpoint(s)
			promoteBufferedSends(s)
		},
		"splitAll": func(s *pipeline.Schedule) { splitAll(s) },
		"sinkWeightGrads": func(s *pipeline.Schedule) {
			c := splitAll(s)
			for d := 0; d < c.NumDevices(); d++ {
				sinkWeightGrads(c, d)
			}
		},
		"Optimize": func(s *pipeline.Schedule) {
			if _, _, err := Optimize(s, Options{Estimator: e}); err != nil {
				t.Fatal(err)
			}
		},
		"SplitBackward": func(s *pipeline.Schedule) {
			ApplyCheckpoint(s)
			OverlapRecompute(s)
			if _, _, err := SplitBackward(s, Options{Estimator: e}); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, pass := range passes {
		t.Run(name, func(t *testing.T) {
			parent := build1f1b(t, 4, 8)
			want := parent.String()
			pass(parent.Clone())
			if got := parent.String(); got != want {
				t.Errorf("pass mutated the parent schedule through a shared list\nbefore:\n%s\nafter:\n%s", want, got)
			}
		})
	}
}

// TestOptimizeInputUnmodified re-pins Optimize's documented contract ("the
// input is not modified") now that the initial Clone is copy-on-write.
func TestOptimizeInputUnmodified(t *testing.T) {
	s := build1f1b(t, 4, 8)
	want := s.String()
	e := cost.Uniform(4, 1, 2, 0.25)
	if _, _, err := Optimize(s, Options{Estimator: e}); err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != want {
		t.Errorf("Optimize modified its input:\nbefore:\n%s\nafter:\n%s", want, got)
	}
}

// TestListPoolSafety pins the candidate-buffer recycling contract: endRound
// must never recycle a list that is part of the current schedule, and after
// it recycles a retired list no engine may still key a cache entry on that
// buffer (Simulator.Holds must be false), so the next getList can hand the
// buffer out without aliasing a cached identity. Re-simulating the current
// schedule afterwards must still agree bit-for-bit with a fresh simulation.
func TestListPoolSafety(t *testing.T) {
	s := build1f1b(t, 4, 8)
	ApplyCheckpoint(s)
	e := cost.Uniform(4, 1, 2, 0.25)
	opts := sim.Options{NoTimeline: true}
	eng := newEngines(2)

	// Candidate on device 0, simulated on both engines so both cache it.
	c := s.Clone()
	if !preposeList(eng, c, 0) {
		t.Fatal("no group to prepose on device 0")
	}
	cl := c.Lists[0]
	for _, m := range []*sim.Simulator{eng.main, eng.pool[0]} {
		if _, err := m.Simulate(c, e, opts); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.main.Holds(0, cl) || !eng.pool[0].Holds(0, cl) {
		t.Fatal("engines should cache the candidate list before endRound")
	}

	// The candidate lost: cur stays s, so endRound must recycle its list and
	// evict it from every engine.
	eng.endRound(s)
	if len(eng.free) != 1 || len(eng.tracked) != 0 {
		t.Fatalf("after losing round: free=%d tracked=%d, want 1 and 0", len(eng.free), len(eng.tracked))
	}
	if eng.main.Holds(0, cl) || eng.pool[0].Holds(0, cl) {
		t.Error("engines still hold the recycled list")
	}
	buf := eng.getList(len(cl))
	if len(cl) == 0 || &buf[:1][0] != &cl[:1][0] {
		t.Error("getList did not hand back the recycled buffer")
	}
	// Reuse is the hazard the Holds protocol guards against: overwrite the
	// recycled buffer with unrelated content. Every cache class that keys on
	// it by identity — the active entry, the depth-2 revert snapshot, the
	// delta snapshot, and the pinned base fixpoint — must already have
	// dropped it, or the bit-for-bit re-simulations below read this garbage.
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = pipeline.Instr{Kind: pipeline.OptimizerStep, Micro: pipeline.NoMicro}
	}

	// A winning candidate's list is part of cur and must stay out of the pool.
	w := s.Clone()
	if !preposeList(eng, w, 1) {
		t.Fatal("no group to prepose on device 1")
	}
	wl := w.Lists[1]
	eng.endRound(w)
	if len(eng.free) != 0 || len(eng.tracked) != 1 || !sameList(eng.tracked[0].list, wl) {
		t.Fatalf("winning list was not kept tracked (free=%d tracked=%d)", len(eng.free), len(eng.tracked))
	}

	// Cache integrity after the evictions: engine re-simulation of the winner
	// agrees bit-for-bit with a fresh one-shot simulation.
	want, err := sim.Simulate(w, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range []*sim.Simulator{eng.main, eng.pool[0]} {
		got, err := m.Simulate(w, e, opts)
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("engine %d: post-eviction result differs from fresh simulation (%.17g vs %.17g)", i, got.Total, want.Total)
		}
	}
}

// TestOptimizeWorkerDeterminism: the parallel prepose sweep must return a
// byte-identical schedule and a bit-identical simulation result for every
// worker count. Run under -race this also proves the candidate fan-out and
// the copy-on-write share marks are data-race free.
func TestOptimizeWorkerDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		scheme pipeline.Scheme
		cfg    scheme.Config
		stages int
	}{
		{"1f1b-8x16", pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 16}, 8},
		{"chimera-8x8", pipeline.SchemeChimera, scheme.Config{Devices: 8, Micros: 8}, 8},
		{"interleave-4x8", pipeline.SchemeInterleave, scheme.Config{Devices: 4, Micros: 8, Chunks: 2}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := scheme.Build(tc.scheme, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			e := cost.Uniform(tc.stages, 1, 2, 0.25)
			opts := Options{Estimator: e, Sim: sim.Options{NoTimeline: true}}

			type out struct {
				sched string
				res   *sim.Result
			}
			var base *out
			for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				opts.Workers = w
				optSched, res, err := Optimize(s, opts)
				if err != nil {
					t.Fatalf("Workers=%d: %v", w, err)
				}
				cur := &out{sched: optSched.String(), res: res}
				if base == nil {
					base = cur
					continue
				}
				if cur.sched != base.sched {
					t.Errorf("Workers=%d: schedule differs from Workers=1", w)
				}
				if !reflect.DeepEqual(cur.res, base.res) {
					t.Errorf("Workers=%d: result differs from Workers=1 (%.17g vs %.17g)", w, cur.res.Total, base.res.Total)
				}
			}
		})
	}
}
