package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mario/internal/pipeline"
	"mario/internal/regress"
	"mario/internal/sim"
)

// KindDrift is the per-kind latency drift between the simulator's predicted
// spans and the measured events.
type KindDrift struct {
	Kind pipeline.Kind
	// Pairs counts the aligned (device, instruction) sites.
	Pairs int
	// PredMean and MeasMean are the mean span durations in seconds.
	PredMean, MeasMean float64
	// MAPE is the mean absolute percentage error of the predicted durations
	// against the measured ones (relative to measured, like §6.6).
	MAPE float64
}

// DriftItem is one worst-offending instruction site.
type DriftItem struct {
	Device int
	Instr  pipeline.Instr
	// Pred and Meas are span durations in seconds (measured averaged over
	// iterations).
	Pred, Meas float64
	// AbsErr is |Meas − Pred| in seconds; RelErr is AbsErr / Meas.
	AbsErr, RelErr float64
}

// DriftReport quantifies where and how much the simulator's prediction
// diverged from a measured run — the Fig. 10 accuracy evaluation extended to
// instruction granularity.
type DriftReport struct {
	// Kinds holds per-kind latency drift, sorted by kind.
	Kinds []KindDrift
	// Worst lists the aligned sites with the largest absolute error.
	Worst []DriftItem
	// Unmatched counts measured sites with no predicted span (and vice
	// versa); nonzero values mean the schedules diverged, not just the
	// timings.
	UnmatchedMeasured, UnmatchedPredicted int
	// TotalPred and TotalMeas are the per-iteration makespans, and TotalErr
	// their relative error against the measured value.
	TotalPred, TotalMeas, TotalErr float64
	// MemMAPE is the MAPE of predicted vs measured per-device peak memory
	// (zero when no measured peaks were supplied).
	MemMAPE float64
	// MemPred and MemMeas are the per-device peak-memory vectors compared.
	MemPred, MemMeas []float64
	// FaultPlan labels the fault plan the measured run executed under; empty
	// for a healthy run. Set by the caller before Format to switch the report
	// into "faulted drift" mode: the drift then reads as the gap between the
	// healthy prediction and the degraded measurement, not as simulator error.
	FaultPlan string
	// FaultSlowed, FaultDrops and FaultStall summarise the injected faults
	// observed in the measured events (see Stats for the same counters).
	FaultSlowed, FaultDrops int
	FaultStall              float64
}

// siteKey identifies an instruction site across the predicted timeline and
// the measured event stream.
type siteKey struct {
	dev int
	key pipeline.Key
}

// ComputeDrift aligns measured events with the predicted timeline by
// (device, kind, micro, part, stage) and reports per-kind latency MAPE, the
// worst-offending sites, makespan drift and (when measPeakMem is non-nil)
// peak-memory MAPE against pred.PeakMem. Measured durations are averaged
// over iterations before alignment.
func ComputeDrift(events []Event, pred *sim.Result, measPeakMem []float64) *DriftReport {
	r := &DriftReport{}

	predDur := make(map[siteKey]float64)
	for d, spans := range pred.Timeline {
		for _, sp := range spans {
			predDur[siteKey{d, sp.Instr.Key()}] = sp.End - sp.Start
		}
	}

	type acc struct {
		sum float64
		n   int
	}
	meas := make(map[siteKey]*acc)
	iters := 0
	measEnd := 0.0
	for _, e := range events {
		k := siteKey{e.Device, e.Key()}
		a := meas[k]
		if a == nil {
			a = &acc{}
			meas[k] = a
		}
		a.sum += e.Dur()
		a.n++
		if e.Iter+1 > iters {
			iters = e.Iter + 1
		}
		if e.End > measEnd {
			measEnd = e.End
		}
		if e.FaultSlow != 0 && e.FaultSlow != 1 {
			r.FaultSlowed++
		}
		r.FaultDrops += e.FaultDrops
		r.FaultStall += e.FaultStall
	}

	type kindAcc struct {
		pairs            int
		predSum, measSum float64
		apeSum           float64
	}
	kinds := make(map[pipeline.Kind]*kindAcc)
	var items []DriftItem
	for k, a := range meas {
		p, ok := predDur[k]
		if !ok {
			r.UnmatchedMeasured++
			continue
		}
		m := a.sum / float64(a.n)
		ka := kinds[k.key.Kind]
		if ka == nil {
			ka = &kindAcc{}
			kinds[k.key.Kind] = ka
		}
		ka.pairs++
		ka.predSum += p
		ka.measSum += m
		if m != 0 {
			ka.apeSum += math.Abs(p-m) / math.Abs(m)
		}
		items = append(items, DriftItem{
			Device: k.dev,
			Instr:  pipeline.Instr{Kind: k.key.Kind, Micro: k.key.Micro, Part: k.key.Part, Stage: k.key.Stage},
			Pred:   p, Meas: m,
			AbsErr: math.Abs(m - p),
			RelErr: relErr(p, m),
		})
	}
	for k := range predDur {
		if meas[k] == nil {
			r.UnmatchedPredicted++
		}
	}

	for kind, ka := range kinds {
		r.Kinds = append(r.Kinds, KindDrift{
			Kind:     kind,
			Pairs:    ka.pairs,
			PredMean: ka.predSum / float64(ka.pairs),
			MeasMean: ka.measSum / float64(ka.pairs),
			MAPE:     ka.apeSum / float64(ka.pairs),
		})
	}
	sort.Slice(r.Kinds, func(i, j int) bool { return r.Kinds[i].Kind < r.Kinds[j].Kind })

	sort.Slice(items, func(i, j int) bool {
		if items[i].AbsErr != items[j].AbsErr {
			return items[i].AbsErr > items[j].AbsErr
		}
		if items[i].Device != items[j].Device {
			return items[i].Device < items[j].Device
		}
		return items[i].Instr.String() < items[j].Instr.String()
	})
	const worstN = 8
	if len(items) > worstN {
		items = items[:worstN]
	}
	r.Worst = items

	r.TotalPred = pred.Total
	if iters > 0 {
		r.TotalMeas = measEnd / float64(iters)
	}
	r.TotalErr = relErr(r.TotalPred, r.TotalMeas)

	if measPeakMem != nil {
		r.MemPred = append([]float64(nil), pred.PeakMem...)
		r.MemMeas = append([]float64(nil), measPeakMem...)
		if len(r.MemPred) == len(r.MemMeas) {
			r.MemMAPE = regress.MAPE(r.MemMeas, r.MemPred)
		}
	}
	return r
}

// relErr is |pred − meas| relative to the measured truth.
func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	return math.Abs(pred-meas) / math.Abs(meas)
}

// Faulted reports whether the measured run carried injected faults (either a
// labelled plan or nonzero fault counters in the events).
func (r *DriftReport) Faulted() bool {
	return r.FaultPlan != "" || r.FaultSlowed > 0 || r.FaultDrops > 0 || r.FaultStall > 0
}

// Format renders the drift report as an ASCII table. When the measured run
// was faulted, the header switches to "faulted drift": the gap quantifies how
// far the degraded hardware fell from the healthy prediction.
func (r *DriftReport) Format() string {
	var b strings.Builder
	if r.Faulted() {
		plan := r.FaultPlan
		if plan == "" {
			plan = "unnamed plan"
		}
		fmt.Fprintf(&b, "faulted drift (%s): predicted healthy iter %.4g s vs measured faulted %.4g s (%.1f%% gap)\n",
			plan, r.TotalPred, r.TotalMeas, 100*r.TotalErr)
		fmt.Fprintf(&b, "injected: %d slowed instrs, %d dropped p2p attempts, %.4g s stalled\n",
			r.FaultSlowed, r.FaultDrops, r.FaultStall)
	} else {
		fmt.Fprintf(&b, "drift report: predicted iter %.4g s vs measured %.4g s (%.1f%% error)\n",
			r.TotalPred, r.TotalMeas, 100*r.TotalErr)
	}
	fmt.Fprintf(&b, "%-5s %6s %12s %12s %7s\n", "kind", "pairs", "pred-mean(s)", "meas-mean(s)", "MAPE%")
	for _, k := range r.Kinds {
		fmt.Fprintf(&b, "%-5s %6d %12.4g %12.4g %7.1f\n", k.Kind, k.Pairs, k.PredMean, k.MeasMean, 100*k.MAPE)
	}
	if len(r.MemMeas) > 0 {
		fmt.Fprintf(&b, "peak memory MAPE: %.1f%% over %d devices\n", 100*r.MemMAPE, len(r.MemMeas))
	}
	if r.UnmatchedMeasured+r.UnmatchedPredicted > 0 {
		fmt.Fprintf(&b, "unmatched sites: %d measured, %d predicted (schedules diverged)\n",
			r.UnmatchedMeasured, r.UnmatchedPredicted)
	}
	if len(r.Worst) > 0 {
		b.WriteString("worst offenders (by absolute error):\n")
		for _, it := range r.Worst {
			fmt.Fprintf(&b, "  dev%-2d %-8s pred %.4g s  meas %.4g s  (+%.4g s, %.1f%%)\n",
				it.Device, it.Instr, it.Pred, it.Meas, it.AbsErr, 100*it.RelErr)
		}
	}
	return b.String()
}
