package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mario/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONLGolden locks the JSONL event wire format to a golden file:
// downstream pipelines parse these lines, so field names, omitempty
// behaviour and number formatting may only change deliberately.
func TestJSONLGolden(t *testing.T) {
	events := []Event{
		{Device: 0, Iter: 0, Kind: pipeline.Forward, Micro: 0, Stage: 0, Peer: -1, Start: 0, End: 1.25, Mem: 2048},
		{Device: 0, Iter: 0, Kind: pipeline.CkptForward, Micro: 1, Stage: 0, Peer: -1, Start: 1.25, End: 2.5, Mem: 2304},
		{Device: 0, Iter: 0, Kind: pipeline.SendAct, Micro: 0, Stage: 0, Peer: 1, Start: 2.5, End: 2.75, Bytes: 512, Buffered: true},
		{Device: 1, Iter: 0, Kind: pipeline.RecvAct, Micro: 0, Part: 1, Stage: 1, Peer: 0, Start: 0, End: 2.75, Wait: 2.5, Bytes: 512},
		{Device: 1, Iter: 0, Kind: pipeline.Recompute, Micro: 0, Stage: 1, Peer: -1, Start: 2.75, End: 3.75},
		{Device: 1, Iter: 1, Kind: pipeline.OptimizerStep, Micro: pipeline.NoMicro, Stage: -1, Peer: -1, Start: 4, End: 4.5},
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "events.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/obs -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSONL export drifted from golden file.\n got: %s\nwant: %s\nIf the change is intentional, regenerate with -update and call it out in review.",
			buf.Bytes(), want)
	}
}
