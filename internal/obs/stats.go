package obs

import (
	"fmt"
	"sort"
	"strings"

	"mario/internal/pipeline"
)

// DeviceStats aggregates one device's measured behaviour over a run.
type DeviceStats struct {
	Device int
	// Instrs counts executed instructions; Sends and Recvs count p2p
	// messages by direction.
	Instrs, Sends, Recvs int
	// Busy is the time spent outside p2p communication — the same
	// classification as sim.Result.ComputeBusy, so measured and predicted
	// bubble ratios are directly comparable.
	Busy float64
	// SendStall and RecvStall sum the p2p queue waits by direction. Under
	// the emulator's eager links sends never stall in virtual time, so
	// SendStall is nonzero only for producers that model blocking sends.
	SendStall, RecvStall float64
	// PeakMem is the high-water mark of the events' modeled memory, and
	// PeakKind the kind of the instruction executing when it was reached.
	PeakMem  float64
	PeakKind pipeline.Kind
}

// LinkStats aggregates the traffic of one directed p2p link.
type LinkStats struct {
	From, To int
	// Channel is "act" or "grad" (the emulator's tagged channels).
	Channel string
	Bytes   float64
	Msgs    int
}

// Stats is the run-level roll-up of an event stream.
type Stats struct {
	// Total is the run makespan the ratios are computed against.
	Total float64
	// Iters is the number of training iterations observed.
	Iters   int
	Devices []DeviceStats
	// Links holds per-link traffic, sorted by (from, to, channel).
	Links []LinkStats
	// Instrs and Msgs are the run-wide counters.
	Instrs, Msgs int
	// WatchdogResets counts how many times the producer's no-progress
	// watchdog observed progress and re-armed (filled in by the caller
	// from the run report; it is not derivable from the events).
	WatchdogResets int
	// FaultSlowed, FaultDrops and FaultStall summarise injected faults seen
	// in the event stream: slowed compute instructions, dropped-and-retried
	// p2p attempts, and total injected stall time in virtual seconds. All
	// zero for a healthy run.
	FaultSlowed, FaultDrops int
	FaultStall              float64
}

// Utilization returns the fraction of the makespan the device spent busy.
func (s *Stats) Utilization(dev int) float64 {
	if s.Total <= 0 {
		return 0
	}
	return s.Devices[dev].Busy / s.Total
}

// BubbleRatio is the measured counterpart of sim.Result.BubbleRatio: the
// fraction of the makespan the device spent outside compute.
func (s *Stats) BubbleRatio(dev int) float64 {
	return 1 - s.Utilization(dev)
}

// channelName maps a comm kind to its link channel tag.
func channelName(k pipeline.Kind) string {
	if k == pipeline.SendGrad || k == pipeline.RecvGrad {
		return "grad"
	}
	return "act"
}

// Compute derives per-device and per-link statistics from an event stream.
// total is the run makespan; pass 0 to use the latest event end time.
func Compute(events []Event, total float64) *Stats {
	st := &Stats{Total: total}
	maxDev := -1
	for _, e := range events {
		if e.Device > maxDev {
			maxDev = e.Device
		}
		if e.End > st.Total && total <= 0 {
			st.Total = e.End
		}
		if e.Iter+1 > st.Iters {
			st.Iters = e.Iter + 1
		}
	}
	st.Devices = make([]DeviceStats, maxDev+1)
	for d := range st.Devices {
		st.Devices[d].Device = d
	}
	type linkKey struct {
		from, to int
		ch       string
	}
	links := make(map[linkKey]*LinkStats)
	for _, e := range events {
		ds := &st.Devices[e.Device]
		ds.Instrs++
		st.Instrs++
		if e.Mem > ds.PeakMem {
			ds.PeakMem = e.Mem
			ds.PeakKind = e.Kind
		}
		if e.FaultSlow != 0 && e.FaultSlow != 1 {
			st.FaultSlowed++
		}
		st.FaultDrops += e.FaultDrops
		st.FaultStall += e.FaultStall
		switch e.Kind {
		case pipeline.SendAct, pipeline.SendGrad:
			ds.Sends++
			st.Msgs++
			ds.SendStall += e.Wait
			lk := linkKey{e.Device, e.Peer, channelName(e.Kind)}
			l := links[lk]
			if l == nil {
				l = &LinkStats{From: e.Device, To: e.Peer, Channel: lk.ch}
				links[lk] = l
			}
			l.Bytes += e.Bytes
			l.Msgs++
		case pipeline.RecvAct, pipeline.RecvGrad:
			ds.Recvs++
			ds.RecvStall += e.Wait
		default:
			ds.Busy += e.Dur()
		}
	}
	for _, l := range links {
		st.Links = append(st.Links, *l)
	}
	sort.Slice(st.Links, func(i, j int) bool {
		a, b := st.Links[i], st.Links[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Channel < b.Channel
	})
	return st
}

// Table renders the stats as an ASCII table: one row per device plus a link
// and counter summary.
func (s *Stats) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "measured run: %d iterations, makespan %.4g s, %d instructions, %d messages\n",
		s.Iters, s.Total, s.Instrs, s.Msgs)
	fmt.Fprintf(&b, "%-6s %7s %6s %10s %11s %11s %6s %8s %10s %s\n",
		"device", "instrs", "msgs", "busy(s)", "sendstall(s)", "recvstall(s)", "util%", "bubble%", "peak-mem", "peak-at")
	for d := range s.Devices {
		ds := &s.Devices[d]
		fmt.Fprintf(&b, "dev%-3d %7d %6d %10.4g %11.4g %11.4g %6.1f %8.1f %10s %s\n",
			d, ds.Instrs, ds.Sends+ds.Recvs, ds.Busy, ds.SendStall, ds.RecvStall,
			100*s.Utilization(d), 100*s.BubbleRatio(d), humanBytes(ds.PeakMem), ds.PeakKind)
	}
	if len(s.Links) > 0 {
		b.WriteString("links:\n")
		for _, l := range s.Links {
			fmt.Fprintf(&b, "  %d->%d[%s] %10s in %d msgs\n", l.From, l.To, l.Channel, humanBytes(l.Bytes), l.Msgs)
		}
	}
	fmt.Fprintf(&b, "watchdog resets: %d\n", s.WatchdogResets)
	if s.FaultSlowed > 0 || s.FaultDrops > 0 || s.FaultStall > 0 {
		fmt.Fprintf(&b, "injected faults: %d slowed instrs, %d dropped p2p attempts, %.4g s stalled\n",
			s.FaultSlowed, s.FaultDrops, s.FaultStall)
	}
	return b.String()
}

// humanBytes renders a byte count with a binary unit.
func humanBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KB", v/(1<<10))
	}
	return fmt.Sprintf("%.0f B", v)
}
