// Package obs is the observability layer of the emulated cluster and the
// miniature trainer: a pluggable, zero-cost-when-disabled event stream of
// per-instruction execution records, plus the derived artifacts the paper
// motivates with its timeline figures — per-device utilization/bubble/stall
// metrics (Fig. 5's measured counterpart), export sinks (Chrome trace,
// JSONL), and a predicted-vs-measured drift report that extends the Fig. 10
// simulator-accuracy machinery down to instruction granularity.
//
// Producers (internal/cluster, internal/train) collect events in per-device
// slices on the hot path — no locks, no clock perturbation — and deliver
// them to the Sink after the run completes, in deterministic order
// (device-major, execution order). A nil sink costs nothing: no events are
// allocated at all.
package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"mario/internal/pipeline"
)

// Event is one measured instruction execution. Times are in seconds on the
// producer's clock: virtual time for the cluster emulator, wall-clock time
// since iteration start for the real-tensor trainer.
type Event struct {
	// Device is the executing device id.
	Device int
	// Iter is the training-iteration index within the run.
	Iter int
	// Kind, Micro, Part and Stage identify the instruction (pipeline.Key).
	Kind  pipeline.Kind
	Micro int
	Part  int
	Stage int
	// Peer is the other endpoint for p2p kinds, -1 otherwise.
	Peer int
	// Start and End bound the instruction's execution interval, including
	// any time spent blocked on a link.
	Start, End float64
	// Wait is the p2p queue wait folded into [Start, End]: how long the
	// device sat idle before the message it needed arrived. Zero for
	// non-receive kinds (eager sends complete into the link buffer).
	Wait float64
	// Bytes is the p2p payload size for communication kinds.
	Bytes float64
	// Mem is the modeled device memory after the instruction in bytes
	// (allocator slack excluded); zero when the producer has no memory
	// model attached.
	Mem float64
	// Buffered marks a SendAct draining a §5.1-pass-4 staging buffer.
	Buffered bool
	// FaultSlow is the injected compute-slowdown factor applied to this
	// instruction (0 or 1 when the device ran at full speed).
	FaultSlow float64
	// FaultDrops counts injected p2p drops retried before this send landed.
	FaultDrops int
	// FaultStall is injected whole-device stall time consumed at this
	// instruction's boundary, in virtual seconds (folded into Start).
	FaultStall float64
}

// Dur returns the event's duration in seconds.
func (e Event) Dur() float64 { return e.End - e.Start }

// Instr reconstructs the pipeline instruction the event describes.
func (e Event) Instr() pipeline.Instr {
	return pipeline.Instr{Kind: e.Kind, Micro: e.Micro, Part: e.Part, Stage: e.Stage, Buffered: e.Buffered}
}

// Key returns the instruction identity used to align measured events with
// predicted spans.
func (e Event) Key() pipeline.Key {
	return pipeline.Key{Kind: e.Kind, Micro: e.Micro, Part: e.Part, Stage: e.Stage}
}

// jsonEvent is the JSONL wire form; the kind travels as its mnemonic.
type jsonEvent struct {
	Device int     `json:"dev"`
	Iter   int     `json:"iter"`
	Kind   string  `json:"kind"`
	Micro  int     `json:"micro"`
	Part   int     `json:"part"`
	Stage  int     `json:"stage"`
	Peer   int     `json:"peer,omitempty"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Wait   float64 `json:"wait,omitempty"`
	Bytes  float64 `json:"bytes,omitempty"`
	Mem    float64 `json:"mem,omitempty"`
	Buf    bool    `json:"buffered,omitempty"`
	Slow   float64 `json:"fault_slow,omitempty"`
	Drops  int     `json:"fault_drops,omitempty"`
	Stall  float64 `json:"fault_stall,omitempty"`
}

// MarshalJSON renders the event with the kind as its paper mnemonic.
func (e Event) MarshalJSON() ([]byte, error) {
	slow := e.FaultSlow
	if slow == 1 {
		slow = 0 // healthy; keep the key out of the line
	}
	return json.Marshal(jsonEvent{
		Device: e.Device, Iter: e.Iter, Kind: e.Kind.String(),
		Micro: e.Micro, Part: e.Part, Stage: e.Stage, Peer: e.Peer,
		Start: e.Start, End: e.End, Wait: e.Wait, Bytes: e.Bytes,
		Mem: e.Mem, Buf: e.Buffered,
		Slow: slow, Drops: e.FaultDrops, Stall: e.FaultStall,
	})
}

// Sink consumes measured events. Producers call Emit from a single
// goroutine, after the run completes, in deterministic order; sinks need no
// internal locking.
type Sink interface {
	Emit(Event)
}

// Recorder is an in-memory sink that retains every event.
type Recorder struct {
	Events []Event
}

// Emit appends the event.
func (r *Recorder) Emit(e Event) { r.Events = append(r.Events, e) }

// Reset drops the recorded events, keeping the backing array.
func (r *Recorder) Reset() { r.Events = r.Events[:0] }

// multiSink fans events out to several sinks.
type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi returns a sink that forwards every event to all of the given sinks
// (nil entries are skipped).
func Multi(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// JSONL is a sink that writes one JSON object per event, newline-delimited.
// Call Flush when the run is done; the first write error is sticky and is
// reported there.
type JSONL struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL wraps w in a buffered JSONL event sink.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes the event as one JSON line.
func (j *JSONL) Emit(e Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Flush drains the buffer and returns the first error seen.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}
