package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// ServerStats is the counter set of the planning service (internal/serve):
// request outcomes, cache effectiveness, singleflight sharing and tuner
// executions, plus a request-latency histogram. All fields are atomic, so
// the HTTP handlers update them lock-free and /metrics reads them while
// requests are in flight. The zero value is ready to use.
type ServerStats struct {
	// Requests counts plan requests that passed validation (both the
	// blocking and the streaming endpoint).
	Requests atomic.Int64
	// CacheHits and CacheMisses count plan-cache lookups.
	CacheHits, CacheMisses atomic.Int64
	// FlightsShared counts requests that joined an already-running tuner
	// flight instead of starting their own (singleflight deduplication).
	FlightsShared atomic.Int64
	// TunerRuns counts tuner executions actually started — the number the
	// singleflight/cache layers exist to minimise.
	TunerRuns atomic.Int64
	// Rejected counts requests refused by admission control (full queue or
	// draining server).
	Rejected atomic.Int64
	// Timeouts counts requests that gave up waiting (per-request deadline
	// or client disconnect).
	Timeouts atomic.Int64
	// Errors counts requests that failed with an internal error.
	Errors atomic.Int64
	// Completed counts requests answered with a plan (fresh, shared or
	// cached).
	Completed atomic.Int64
	// InFlight is the number of plan requests currently being handled — a
	// gauge, not a counter.
	InFlight atomic.Int64
	// Latency is the end-to-end plan-request latency histogram.
	Latency LatencyHist
}

// latencyBounds are the histogram's upper bucket bounds in seconds; the
// implicit final bucket is +Inf. The range spans cache hits (sub-millisecond)
// to full tuner runs (minutes).
var latencyBounds = [...]float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

// LatencyHist is a fixed-bucket latency histogram safe for concurrent use.
// The zero value is ready to use.
type LatencyHist struct {
	buckets [len(latencyBounds) + 1]atomic.Int64
	count   atomic.Int64
	sumNano atomic.Int64
}

// Observe records one request duration.
func (h *LatencyHist) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(d))
}

// Count returns the number of observations.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *LatencyHist) Sum() time.Duration { return time.Duration(h.sumNano.Load()) }

// writeProm renders the histogram in Prometheus text format under the given
// metric name (cumulative buckets, plus _sum and _count).
func (h *LatencyHist) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, b := range latencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, trimFloat(b), cum)
	}
	cum += h.buckets[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, trimFloat(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// trimFloat renders a float without trailing zeros (Prometheus-friendly).
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm renders every counter (and the latency histogram) in Prometheus
// text exposition format under the mario_serve_* namespace. The caller may
// append its own gauge lines (queue depth, cache size) after it.
func (s *ServerStats) WriteProm(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("mario_serve_requests_total", "Validated plan requests.", s.Requests.Load())
	counter("mario_serve_cache_hits_total", "Plan-cache hits.", s.CacheHits.Load())
	counter("mario_serve_cache_misses_total", "Plan-cache misses.", s.CacheMisses.Load())
	counter("mario_serve_flights_shared_total", "Requests deduplicated onto a running flight.", s.FlightsShared.Load())
	counter("mario_serve_tuner_runs_total", "Tuner executions started.", s.TunerRuns.Load())
	counter("mario_serve_rejected_total", "Requests refused by admission control.", s.Rejected.Load())
	counter("mario_serve_timeouts_total", "Requests that gave up waiting.", s.Timeouts.Load())
	counter("mario_serve_errors_total", "Requests failed with an internal error.", s.Errors.Load())
	counter("mario_serve_completed_total", "Requests answered with a plan.", s.Completed.Load())
	fmt.Fprintf(w, "# HELP mario_serve_in_flight Plan requests currently being handled.\n# TYPE mario_serve_in_flight gauge\nmario_serve_in_flight %d\n", s.InFlight.Load())
	s.Latency.writeProm(w, "mario_serve_request_seconds")
}
