package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mario/internal/pipeline"
	"mario/internal/sim"
)

func ev(dev, iter int, k pipeline.Kind, micro int, start, end float64) Event {
	return Event{Device: dev, Iter: iter, Kind: k, Micro: micro, Peer: -1, Start: start, End: end}
}

func TestRecorder(t *testing.T) {
	r := &Recorder{}
	r.Emit(ev(0, 0, pipeline.Forward, 0, 0, 1))
	r.Emit(ev(1, 0, pipeline.Backward, 0, 1, 3))
	if len(r.Events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(r.Events))
	}
	if got := r.Events[1].Dur(); got != 2 {
		t.Errorf("Dur = %v, want 2", got)
	}
	r.Reset()
	if len(r.Events) != 0 {
		t.Errorf("Reset left %d events", len(r.Events))
	}
}

func TestMulti(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	s := Multi(nil, a, nil, b)
	s.Emit(ev(0, 0, pipeline.Forward, 0, 0, 1))
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("fan-out missed a sink: a=%d b=%d", len(a.Events), len(b.Events))
	}
	// A single non-nil sink is returned unwrapped.
	if got := Multi(nil, a); got != Sink(a) {
		t.Errorf("Multi with one sink should return it directly")
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	in := Event{Device: 2, Iter: 1, Kind: pipeline.RecvAct, Micro: 3, Stage: 2,
		Peer: 1, Start: 0.5, End: 0.75, Wait: 0.1, Bytes: 1024}
	j.Emit(in)
	j.Emit(ev(0, 0, pipeline.Forward, 0, 1, 2))
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSONL line: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "RA" || lines[0]["dev"] != 2.0 || lines[0]["wait"] != 0.1 {
		t.Errorf("unexpected first line: %v", lines[0])
	}
	if lines[1]["kind"] != "FW" {
		t.Errorf("unexpected second line: %v", lines[1])
	}
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(failWriter{})
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		j.Emit(ev(0, 0, pipeline.Forward, i, 0, 1))
	}
	if err := j.Flush(); err == nil {
		t.Fatal("Flush should report the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "boom" }

func TestComputeStats(t *testing.T) {
	events := []Event{
		ev(0, 0, pipeline.Forward, 0, 0, 1),
		ev(0, 0, pipeline.OptimizerStep, 0, 1, 1.5), // non-p2p counts as busy
		{Device: 0, Kind: pipeline.SendAct, Micro: 0, Peer: 1, Start: 1.5, End: 1.5, Bytes: 100},
		{Device: 1, Kind: pipeline.RecvAct, Micro: 0, Peer: 0, Start: 0, End: 2, Wait: 2},
		ev(1, 1, pipeline.Backward, 0, 2, 4),
		{Device: 0, Kind: pipeline.SendAct, Micro: 1, Peer: 1, Start: 2, End: 2, Bytes: 50},
		{Device: 0, Kind: pipeline.SendGrad, Micro: 0, Peer: 1, Start: 2, End: 2, Bytes: 7},
	}
	st := Compute(events, 4)

	if st.Instrs != 7 || st.Msgs != 3 {
		t.Errorf("Instrs=%d Msgs=%d, want 7 and 3", st.Instrs, st.Msgs)
	}
	if st.Iters != 2 {
		t.Errorf("Iters=%d, want 2", st.Iters)
	}
	d0 := st.Devices[0]
	if d0.Busy != 1.5 || d0.Sends != 3 || d0.Recvs != 0 {
		t.Errorf("dev0: busy=%v sends=%d recvs=%d", d0.Busy, d0.Sends, d0.Recvs)
	}
	d1 := st.Devices[1]
	if d1.Busy != 2 || d1.Recvs != 1 || d1.RecvStall != 2 {
		t.Errorf("dev1: busy=%v recvs=%d recvstall=%v", d1.Busy, d1.Recvs, d1.RecvStall)
	}
	if got := st.Utilization(1); got != 0.5 {
		t.Errorf("Utilization(1)=%v, want 0.5", got)
	}
	if got := st.BubbleRatio(1); got != 0.5 {
		t.Errorf("BubbleRatio(1)=%v, want 0.5", got)
	}
	// Links: 0->1[act] with 2 msgs / 150 bytes, then 0->1[grad].
	if len(st.Links) != 2 {
		t.Fatalf("got %d links, want 2", len(st.Links))
	}
	if l := st.Links[0]; l.Channel != "act" || l.Bytes != 150 || l.Msgs != 2 {
		t.Errorf("act link: %+v", l)
	}
	if l := st.Links[1]; l.Channel != "grad" || l.Bytes != 7 || l.Msgs != 1 {
		t.Errorf("grad link: %+v", l)
	}
	if !strings.Contains(st.Table(), "dev0") {
		t.Error("Table should mention dev0")
	}
}

func TestComputeStatsPeakMem(t *testing.T) {
	events := []Event{
		{Device: 0, Kind: pipeline.Forward, Start: 0, End: 1, Mem: 100},
		{Device: 0, Kind: pipeline.CkptForward, Micro: 1, Start: 1, End: 2, Mem: 300},
		{Device: 0, Kind: pipeline.Backward, Start: 2, End: 3, Mem: 200},
	}
	st := Compute(events, 3)
	d := st.Devices[0]
	if d.PeakMem != 300 || d.PeakKind != pipeline.CkptForward {
		t.Errorf("peak=%v at %s, want 300 at CFW", d.PeakMem, d.PeakKind)
	}
}

func TestComputeDrift(t *testing.T) {
	// Predicted timeline: dev0 runs FW0 for 1s, BW0 for 2s; dev1 runs FW0
	// for 1s. Measured: FW0 on dev0 takes 1.1s and 0.9s over two iterations
	// (mean 1.0 → zero error), BW0 takes 2.5s (25% error vs measured... pred
	// 2, meas 2.5 → |2-2.5|/2.5 = 20%), and dev1 executes an RC the
	// prediction lacks.
	pred := &sim.Result{
		Total: 3,
		Timeline: [][]sim.Span{
			{
				{Instr: pipeline.Instr{Kind: pipeline.Forward, Stage: 0}, Start: 0, End: 1},
				{Instr: pipeline.Instr{Kind: pipeline.Backward, Stage: 0}, Start: 1, End: 3},
			},
			{
				{Instr: pipeline.Instr{Kind: pipeline.Forward, Stage: 1}, Start: 0, End: 1},
			},
		},
		PeakMem: []float64{100, 100},
	}
	events := []Event{
		{Device: 0, Iter: 0, Kind: pipeline.Forward, Stage: 0, Start: 0, End: 1.1},
		{Device: 0, Iter: 1, Kind: pipeline.Forward, Stage: 0, Start: 3, End: 3.9},
		{Device: 0, Iter: 0, Kind: pipeline.Backward, Stage: 0, Start: 1.1, End: 3.6},
		{Device: 1, Iter: 0, Kind: pipeline.Recompute, Stage: 1, Start: 0, End: 1},
	}
	r := ComputeDrift(events, pred, []float64{110, 90})

	if r.UnmatchedMeasured != 1 {
		t.Errorf("UnmatchedMeasured=%d, want 1 (the RC)", r.UnmatchedMeasured)
	}
	if r.UnmatchedPredicted != 1 {
		t.Errorf("UnmatchedPredicted=%d, want 1 (dev1 FW)", r.UnmatchedPredicted)
	}
	var fw, bw *KindDrift
	for i := range r.Kinds {
		switch r.Kinds[i].Kind {
		case pipeline.Forward:
			fw = &r.Kinds[i]
		case pipeline.Backward:
			bw = &r.Kinds[i]
		}
	}
	if fw == nil || bw == nil {
		t.Fatalf("missing kinds in %+v", r.Kinds)
	}
	if fw.Pairs != 1 || math.Abs(fw.MeasMean-1.0) > 1e-9 || fw.MAPE > 1e-9 {
		t.Errorf("FW drift: %+v (measured mean should average to 1.0)", *fw)
	}
	if bw.Pairs != 1 || math.Abs(bw.MAPE-0.2) > 1e-9 {
		t.Errorf("BW drift: %+v, want MAPE 0.2", *bw)
	}
	// Worst offender is the backward (0.5s absolute error).
	if len(r.Worst) == 0 || r.Worst[0].Instr.Kind != pipeline.Backward ||
		math.Abs(r.Worst[0].AbsErr-0.5) > 1e-9 {
		t.Errorf("Worst: %+v", r.Worst)
	}
	// Measured makespan 3.9 over 2 iterations → 1.95 per iteration.
	if math.Abs(r.TotalMeas-1.95) > 1e-9 || r.TotalPred != 3 {
		t.Errorf("TotalMeas=%v TotalPred=%v", r.TotalMeas, r.TotalPred)
	}
	// Memory MAPE: (|100-110|/110 + |100-90|/90) / 2.
	wantMem := (10.0/110 + 10.0/90) / 2
	if math.Abs(r.MemMAPE-wantMem) > 1e-9 {
		t.Errorf("MemMAPE=%v, want %v", r.MemMAPE, wantMem)
	}
	out := r.Format()
	for _, want := range []string{"drift report", "FW", "BW", "worst offenders", "unmatched sites"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestEventMarshalJSON(t *testing.T) {
	e := Event{Device: 1, Kind: pipeline.CkptForward, Micro: 2, Stage: 1, Peer: -1, Start: 1, End: 2}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"CFW"`) {
		t.Errorf("marshalled event should carry the kind mnemonic: %s", b)
	}
}
