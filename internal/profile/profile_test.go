package profile

import (
	"math"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

func newProfiler() *Profiler {
	return &Profiler{
		Model:   cost.LLaMA2_3B,
		HW:      cost.A100_40G,
		Spec:    DefaultMachine,
		Devices: 4,
		Iters:   10,
	}
}

// TestProfiledEstimatorTracksTruth: the profiled per-stage forward/backward
// times land within ~15% of the analytic ground truth on middle stages (the
// jitter is ±4% and the extra overhead is visible to the fit's bias).
func TestProfiledEstimatorTracksTruth(t *testing.T) {
	p := newProfiler()
	const stages, mbs = 8, 2
	got, err := p.EstimatorFor(stages, mbs, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := cost.Analytic(cost.AnalyticConfig{Model: p.Model, HW: p.HW, Stages: stages, MicroBatch: mbs})
	if err != nil {
		t.Fatal(err)
	}
	for st := 1; st < stages-1; st++ {
		if rel := math.Abs(got.FwTime[st]-truth.FwTime[st]) / truth.FwTime[st]; rel > 0.15 {
			t.Errorf("stage %d: profiled fw %v vs truth %v (rel %v)", st, got.FwTime[st], truth.FwTime[st], rel)
		}
		if rel := math.Abs(got.BwTime[st]-truth.BwTime[st]) / truth.BwTime[st]; rel > 0.15 {
			t.Errorf("stage %d: profiled bw %v vs truth %v (rel %v)", st, got.BwTime[st], truth.BwTime[st], rel)
		}
		if rel := math.Abs(got.ActFull[st]-truth.ActFull[st]) / truth.ActFull[st]; rel > 0.15 {
			t.Errorf("stage %d: profiled act %v vs truth %v (rel %v)", st, got.ActFull[st], truth.ActFull[st], rel)
		}
	}
	// The learned bias must reflect the hidden extra overhead.
	if got.LaunchOverhead < truth.LaunchOverhead {
		t.Errorf("profiled overhead %v below the known launch overhead %v", got.LaunchOverhead, truth.LaunchOverhead)
	}
}

// TestEstimatorEndToEndAccuracy is the heart of Fig. 10: simulate with the
// profiled estimator, measure on the emulated cluster, and require a small
// relative error on iteration time — the paper reports 9.4% MAPE on
// throughput.
func TestEstimatorEndToEndAccuracy(t *testing.T) {
	p := newProfiler()
	const d, mbs = 4, 2
	est, err := p.EstimatorFor(d, mbs, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: 16})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := sim.Simulate(sched, est, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := p.NewMachine(p.Model, d, mbs, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mach.Run(sched, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(pred.Total-rep.IterTime) / rep.IterTime
	if rel > 0.15 {
		t.Errorf("simulated %v vs measured %v: relative error %v > 15%%", pred.Total, rep.IterTime, rel)
	}
}

// TestProfilerCache: the second request with identical (mbs, tp) does not
// re-probe (observable via pointer identity of the cached fit through
// identical outputs) and different keys produce different estimators.
func TestProfilerCache(t *testing.T) {
	p := newProfiler()
	a, err := p.EstimatorFor(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.EstimatorFor(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.FwTime[1] != b.FwTime[1] {
		t.Error("cache miss changed results for identical key")
	}
	c, err := p.EstimatorFor(8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.FwTime[1] <= a.FwTime[1] {
		t.Error("larger micro-batch should be slower per stage")
	}
}

// TestEstimatorForRejectsTooManyStages guards the layers-per-stage bound.
func TestEstimatorForRejectsTooManyStages(t *testing.T) {
	p := newProfiler()
	if _, err := p.EstimatorFor(p.Model.Layers+1, 1, 1); err == nil {
		t.Error("stage count above layer count accepted")
	}
}

// TestEmbeddingStagesSlower: the profiled estimator reflects the LM head on
// the last stage.
func TestEmbeddingStagesSlower(t *testing.T) {
	p := newProfiler()
	e, err := p.EstimatorFor(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.FwTime[7] <= e.FwTime[3] {
		t.Errorf("last stage fw %v not above middle stage %v", e.FwTime[7], e.FwTime[3])
	}
	if e.WeightBytes[0] <= e.WeightBytes[3] {
		t.Errorf("first stage weights %v not above middle stage %v", e.WeightBytes[0], e.WeightBytes[3])
	}
}

// TestFrameworkMemRecovered: the regression intercept recovers the ~2 GB
// framework footprint within a factor of two.
func TestFrameworkMemRecovered(t *testing.T) {
	p := newProfiler()
	e, err := p.EstimatorFor(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	truthFw := cost.A100_40G.FrameworkMem
	if e.FrameworkMem < truthFw/2 || e.FrameworkMem > truthFw*2 {
		t.Errorf("recovered framework memory %v not within 2x of %v", e.FrameworkMem, truthFw)
	}
}

// TestSortedKeysDeterministic: the profiling-table helper orders keys by
// kind then stage.
func TestSortedKeysDeterministic(t *testing.T) {
	p := newProfiler()
	mach, err := p.NewMachine(p.Model, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mach.Run(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys := SortedKeys(rep.Durations)
	if len(keys) == 0 {
		t.Fatal("no sample keys")
	}
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.Stage > b.Stage) {
			t.Fatalf("keys out of order: %v before %v", a, b)
		}
	}
}
